(** Attack taxonomy and payload-construction helpers, RIPE-style.

    An attack instance is a vulnerable MiniC victim plus an input payload
    built from the attacker's knowledge of the deployed binary. *)

module Prog = Levee_ir.Prog
module M = Levee_machine

type technique =
  | Direct_overflow      (** contiguous overflow from an unchecked write *)
  | Indirect_ptr         (** corrupt a data pointer, then write through it *)
  | Use_after_free       (** dangling pointer into a recycled allocation *)

type location = Stack_loc | Heap_loc | Global_loc

type target =
  | Ret_addr
  | Fptr_stack
  | Fptr_global
  | Fptr_heap
  | Struct_fptr_stack
  | Struct_fptr_heap
  | Longjmp_buf
  | Vtable_fake          (** redirect a vtable pointer to attacker data *)
  | Vtable_swap          (** redirect it at another legitimate table *)

type payload =
  | To_function          (** return-to-libc style: a function entry *)
  | To_gadget            (** ROP style: mid-function code address *)
  | To_callsite          (** call-preceded gadget (defeats coarse CFI) *)
  | Shellcode            (** injected code in a data page (needs DEP off) *)
  | To_function_leak     (** function entry, ASLR slide leaked *)

val technique_name : technique -> string
val location_name : location -> string
val target_name : target -> string
val payload_name : payload -> string

(** Does this target category count as a stack-based attack? *)
val is_stack_attack : target -> bool

(** Attacker's view: the deployed image, the attacker's no-slide model of
    it, and a reference image of the unprotected build (for offsets that a
    protection moved out of reach). *)
type view = {
  deployed : M.Loader.image;
  plain : M.Loader.image;
  reference : M.Loader.image;
}

(** The image absolute addresses are computed on (deployed iff leak). *)
val image_for : view -> payload -> M.Loader.image

val backdoor_entry : view -> payload -> int

(** A mid-function gadget that reaches system(); guaranteed distinct from
    the function entry. *)
val gadget_addr : view -> payload -> int

(** A call-preceded gadget address (valid coarse-CFI return target). *)
val callsite_gadget_addr : view -> payload -> int

(** Ordered allocas (register, type) of a function. *)
val allocas_of : Prog.func -> (int * Levee_ir.Ty.t) list

val nth_slot : M.Loader.image -> string -> int -> M.Loader.slot

(** Frame base of the innermost function of a direct call chain rooted at
    main, mirroring the machine's frame arithmetic. *)
val frame_base : M.Loader.image -> string list -> int

(** Like {!frame_base} for a chain rooted at spawned thread [tid]'s entry
    function (its frames live in the thread's own stack window). *)
val thread_frame_base : M.Loader.image -> tid:int -> string list -> int

(** The k-th alloca slot as the attacker sees it (deployed layout, falling
    back to the unprotected reference when the slot moved to the safe
    stack). *)
val slot_for : view -> string -> int -> M.Loader.slot

val global_of : view -> payload -> string -> int
val global_distance : view -> from:string -> to_:string -> int

(** [overflow_payload ~dist v] = [dist] filler words then [v]. *)
val overflow_payload : ?fill:int -> dist:int -> int -> int array

val stack_distance : M.Loader.slot -> int -> int
