(** Vulnerable victim programs, one per RIPE dimension combination.

    Each victim is a small MiniC program with a planted memory-corruption
    vulnerability whose benign runs terminate cleanly, plus a payload
    builder that uses the attacker's view of the deployed binary. *)

type victim = {
  vid : string;
  technique : Attack.technique;
  location : Attack.location;
  target : Attack.target;
  source : string;                     (** MiniC source of the victim *)
  payloads : Attack.payload list;      (** applicable payload kinds *)
  beyond_ripe : bool;                  (** the CPS-relaxation demo, outside
                                           the RIPE matrix *)
  build : Attack.view -> Attack.payload -> int array;
                                       (** construct the input payload *)
}

(** All victims: the hand-written dimension matrix plus mechanically
    derived strcpy/attacker-length-memcpy variants of every direct-overflow
    victim (RIPE's vulnerable-function dimension). *)
val all : victim list
