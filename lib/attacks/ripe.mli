(** RIPE-style attack matrix runner (paper Section 5.1).

    Enumerates every (victim x payload) combination, runs each under each
    protection configuration, and tabulates which attacks succeed, which a
    defense stops, and which merely crash. *)

module P = Levee_core.Pipeline
module M = Levee_machine

type instance = {
  victim : Victims.victim;
  payload : Attack.payload;
}

type run = {
  instance : instance;
  protection : P.protection;
  outcome : M.Trap.outcome;
}

(** All attack instances (excluding the beyond-RIPE CPS-relaxation demo
    unless requested). *)
val instances : ?include_beyond_ripe:bool -> unit -> instance list

(** Did the attack reach its goal? *)
val succeeded : run -> bool

(** Was it stopped by an explicit defense (vs. a mere crash)? *)
val trapped : run -> bool

(** Compile each victim once, with its unprotected reference image. *)
val compile_victims :
  unit -> (Victims.victim * Levee_ir.Prog.t * M.Loader.image) list

(** Run one attack instance against one protected build. *)
val run_instance : reference:M.Loader.image -> P.built -> instance -> run

(** Does the victim behave benignly (no attack input) under this build? *)
val benign_ok : P.built -> bool

type summary = {
  protection : P.protection;
  total : int;
  hijacked : int;
  trapped_count : int;
  crashed : int;
  stack_hijacked : int;   (** successful attacks that were stack-based *)
  runs : run list;
}

(** Run the full matrix for the given protections (default: the paper's
    eight configurations). *)
val run_matrix :
  ?include_beyond_ripe:bool -> ?protections:P.protection list -> unit ->
  summary list
