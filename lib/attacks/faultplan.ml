(* Deterministic fault-injection plans: symbolic corruption schedules
   compiled down to Interp faults against one deployed image (see
   faultplan.mli for the model). *)

module M = Levee_machine
module Rng = Levee_support.Rng

type site =
  | Stack of int
  | Heap of int
  | Global of string * int
  | Safe_site of int
  | Ret_slot of string list
  | Var_slot of { chain : string list; index : int }
  | Thread_stack of { tid : int; off : int }
  | Thread_safe of { tid : int; off : int }
  | Thread_ret of { tid : int; chain : string list }

type value_spec =
  | Value of int
  | Code_entry of string

type action =
  | Flip of { site : site; bit : int }
  | Write of { site : site; value : value_spec }
  | Desync of { site : site; delta : int }
  | Drop_meta of site
  | Stall of { cycles : int }
  | Kill_worker of { tid : int }

type event = { step : int; action : action }

type t = { name : string; seed : int; events : event list }

let make ~name ?(seed = 0) events = { name; seed; events }

let random ~name ~seed ~events ~max_step =
  let rng = Rng.create seed in
  let site () =
    (* Blind probing favours the regular region; occasionally aim at the
       safe region to exercise the isolation boundary. *)
    match Rng.int rng 10 with
    | 0 | 1 -> Safe_site (Rng.int rng 256)
    | 2 | 3 | 4 -> Heap (Rng.int rng 1024)
    | _ -> Stack (Rng.int rng 512)
  in
  let action () =
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 -> Flip { site = site (); bit = Rng.int rng 31 }
    | 4 | 5 | 6 | 7 ->
      Write { site = site (); value = Value (Rng.int rng 0x40000000) }
    | 8 -> Desync { site = site (); delta = Rng.range rng 1 8 }
    | _ -> Drop_meta (site ())
  in
  let ev _ = { step = Rng.int rng (max 1 max_step); action = action () } in
  { name; seed; events = List.init (max 0 events) ev }

let site_of = function
  | Flip { site; _ } | Write { site; _ } | Desync { site; _ }
  | Drop_meta site -> Some site
  | Stall _ | Kill_worker _ -> None

(* Stall/Kill_worker are availability faults — crashes and slowness, not
   isolation bypass — so they stay inside the attacker model: CPI promises
   integrity, not liveness, and the "never hijacked" invariant must hold
   mid-degradation too. *)
let within_attacker_model p =
  List.for_all
    (fun e -> match e.action with Desync _ | Drop_meta _ -> false | _ -> true)
    p.events

(* Metadata attacks (safe-store desync / drop) are the plans that separate
   safe-region backends from keyed ones: cpi-crypt has no metadata table,
   so these events hit nothing — dropping metadata is not leaking the key. *)
let targets_metadata p =
  List.exists
    (fun e -> match e.action with Desync _ | Drop_meta _ -> true | _ -> false)
    p.events

(* Every event is a metadata attack: under a keyed backend the whole plan
   hits an empty safe store, so the faulted run must be observationally
   identical to the un-faulted baseline (class "masked"). *)
let pure_metadata p =
  p.events <> []
  && List.for_all
       (fun e ->
         match e.action with Desync _ | Drop_meta _ -> true | _ -> false)
       p.events

let has_availability_faults p =
  List.exists
    (fun e -> match e.action with Stall _ | Kill_worker _ -> true | _ -> false)
    p.events

let pure_safe_tamper p =
  p.events <> []
  && List.for_all
       (fun e ->
         match e.action, site_of e.action with
         | (Flip _ | Write _), Some (Safe_site _ | Thread_safe _) -> true
         | _ -> false)
       p.events

(* ---------- resolution ---------- *)

let last = function
  | [] -> invalid_arg "Faultplan: empty call chain"
  | l -> List.nth l (List.length l - 1)

let resolve ~(reference : M.Loader.image) ~(deployed : M.Loader.image) p =
  let rebase = deployed.M.Loader.slide - reference.M.Loader.slide in
  let layout fname =
    match Hashtbl.find_opt reference.M.Loader.layouts fname with
    | Some l -> l
    | None -> invalid_arg ("Faultplan: unknown function " ^ fname)
  in
  let addr_of = function
    | Stack off -> M.Layout.stack_top + deployed.M.Loader.slide - off
    | Heap off -> M.Layout.heap_base + deployed.M.Loader.slide + off
    | Global (g, off) ->
      (match Hashtbl.find_opt deployed.M.Loader.global_addr g with
       | Some a -> a + off
       | None -> invalid_arg ("Faultplan: unknown global " ^ g))
    | Safe_site off -> M.Layout.safe_stack_top + deployed.M.Loader.slide - off
    | Ret_slot chain ->
      Attack.frame_base reference chain
      - (layout (last chain)).M.Loader.fl_ret_offset
      + rebase
    | Var_slot { chain; index } ->
      let slot = Attack.nth_slot reference (last chain) index in
      Attack.frame_base reference chain - slot.M.Loader.sl_offset + rebase
    | Thread_stack { tid; off } ->
      M.Layout.thread_stack_top tid + deployed.M.Loader.slide - off
    | Thread_safe { tid; off } ->
      M.Layout.thread_safe_stack_top tid + deployed.M.Loader.slide - off
    | Thread_ret { tid; chain } ->
      Attack.thread_frame_base reference ~tid chain
      - (layout (last chain)).M.Loader.fl_ret_offset
      + rebase
  in
  let value_of = function
    | Value v -> v
    | Code_entry fn -> M.Loader.entry_addr deployed fn
  in
  List.map
    (fun e ->
      let f =
        match e.action with
        | Flip { site; bit } -> M.Interp.Flip_bit { addr = addr_of site; bit }
        | Write { site; value } ->
          M.Interp.Arb_write { addr = addr_of site; value = value_of value }
        | Desync { site; delta } ->
          M.Interp.Store_desync { addr = addr_of site; delta }
        | Drop_meta site -> M.Interp.Meta_drop { addr = addr_of site }
        | Stall { cycles } -> M.Interp.Stall { cycles }
        | Kill_worker { tid } -> M.Interp.Worker_kill { tid }
      in
      (e.step, f))
    p.events
