(** Attack taxonomy and payload-construction helpers, RIPE-style [49].

    An attack instance is a vulnerable MiniC victim plus an input payload
    built from the attacker's knowledge of the deployed binary. The
    dimensions follow RIPE: overflow technique, buffer location, corrupted
    code-pointer target, and payload destination. *)

module Prog = Levee_ir.Prog
module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module M = Levee_machine

type technique =
  | Direct_overflow      (* contiguous overflow from an unchecked write *)
  | Indirect_ptr         (* corrupt a data pointer, then write through it *)
  | Use_after_free       (* dangling pointer into a recycled allocation *)

type location = Stack_loc | Heap_loc | Global_loc

type target =
  | Ret_addr
  | Fptr_stack
  | Fptr_global
  | Fptr_heap
  | Struct_fptr_stack
  | Struct_fptr_heap
  | Longjmp_buf
  | Vtable_fake          (* redirect a vtable pointer to attacker data *)
  | Vtable_swap          (* redirect a vtable pointer to another legit table *)

type payload =
  | To_function          (* return-to-libc style: a function entry *)
  | To_gadget            (* ROP style: mid-function code address *)
  | To_callsite          (* call-preceded gadget (defeats coarse CFI) *)
  | Shellcode            (* injected code in a data page (needs DEP off) *)
  | To_function_leak     (* function entry, ASLR slide known via info leak *)

let technique_name = function
  | Direct_overflow -> "direct"
  | Indirect_ptr -> "indirect"
  | Use_after_free -> "uaf"

let location_name = function
  | Stack_loc -> "stack"
  | Heap_loc -> "heap"
  | Global_loc -> "global"

let target_name = function
  | Ret_addr -> "ret-addr"
  | Fptr_stack -> "fptr-stack"
  | Fptr_global -> "fptr-global"
  | Fptr_heap -> "fptr-heap"
  | Struct_fptr_stack -> "struct-fptr-stack"
  | Struct_fptr_heap -> "struct-fptr-heap"
  | Longjmp_buf -> "longjmp-buf"
  | Vtable_fake -> "vtable-fake"
  | Vtable_swap -> "vtable-swap"

let payload_name = function
  | To_function -> "ret2libc"
  | To_gadget -> "rop-gadget"
  | To_callsite -> "callsite-gadget"
  | Shellcode -> "shellcode"
  | To_function_leak -> "ret2libc+leak"

(** Does this target category count as a stack-based attack? (used to
    check the paper's claim that the safe stack alone stops all
    stack-based RIPE attacks) *)
let is_stack_attack = function
  | Ret_addr | Fptr_stack | Struct_fptr_stack -> true
  | Fptr_global | Fptr_heap | Struct_fptr_heap | Longjmp_buf | Vtable_fake
  | Vtable_swap -> false

(* ---------- Payload address helpers ---------- *)

(** Attacker's view: the deployed image (real layout, with ASLR slide),
    the attacker's model of it (same binary, no slide), and a reference
    image of the unprotected build (used when a protection moved the target
    out of the regular frame entirely — the attacker's offsets go stale).
    Absent an information leak, absolute addresses come from the plain
    image; relative distances are slide-invariant and come from the
    deployed binary. *)
type view = {
  deployed : M.Loader.image;
  plain : M.Loader.image;
  reference : M.Loader.image;
}

let image_for view = function
  | To_function_leak -> view.deployed
  | To_function | To_gadget | To_callsite | Shellcode -> view.plain

(** Code address of the backdoor function's entry. *)
let backdoor_entry view payload =
  M.Loader.entry_addr (image_for view payload) "backdoor"

(** Code address of the system() call inside the backdoor: a mid-function
    gadget that still reaches the attacker's goal. *)
let gadget_addr view payload =
  let image = image_for view payload in
  let fn = Prog.find_func image.M.Loader.prog "backdoor" in
  let found = ref None in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iteri
        (fun idx instr ->
          match instr, !found with
          | I.Intrin { op = I.I_system; _ }, None ->
            found := Some (M.Loader.point_addr image "backdoor" b.Prog.bid idx)
          | _ -> ())
        b.Prog.instrs)
    fn.Prog.blocks;
  match !found with
  | Some a ->
    if M.Loader.is_function_entry image a then
      invalid_arg "gadget_addr: gadget coincides with the function entry";
    a
  | None -> invalid_arg "gadget_addr: backdoor has no system() call"

(** Call-preceded gadget: the address of the call to [do_backdoor] inside
    [staging], which immediately follows another call and is therefore a
    valid return site for coarse-grained CFI. *)
let callsite_gadget_addr view payload =
  let image = image_for view payload in
  let fn = Prog.find_func image.M.Loader.prog "staging" in
  let found = ref None in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iteri
        (fun idx instr ->
          match instr, !found with
          | I.Call { callee = I.Direct "do_backdoor"; _ }, None ->
            found := Some (M.Loader.point_addr image "staging" b.Prog.bid idx)
          | _ -> ())
        b.Prog.instrs)
    fn.Prog.blocks;
  match !found with
  | Some a -> a
  | None -> invalid_arg "callsite_gadget_addr: staging has no do_backdoor call"

(** Ordered allocas (register, type) of a function. *)
let allocas_of (fn : Prog.func) =
  let acc = ref [] in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Alloca { dst; ty; _ } -> acc := (dst, ty) :: !acc
      | _ -> ());
  List.rev !acc

(** The [k]-th alloca slot of [fname] in [image]'s frame layout. *)
let nth_slot image fname k =
  let fn = Prog.find_func image.M.Loader.prog fname in
  let reg, _ = List.nth (allocas_of fn) k in
  let layout = Hashtbl.find image.M.Loader.layouts fname in
  Hashtbl.find layout.M.Loader.fl_slots reg

(** Frame base address of the innermost function of [chain] (a direct call
    chain rooted at main), mirroring the machine's frame arithmetic: main's
    frame base is the initial stack pointer, each callee's base is the
    caller's base minus the caller's regular frame size. *)
let frame_base_from (image : M.Loader.image) ~top chain =
  let size fname =
    (Hashtbl.find image.M.Loader.layouts fname).M.Loader.fl_regular_size
  in
  let rec go base = function
    | [] -> invalid_arg "frame_base: empty chain"
    | [ _innermost ] -> base
    | fname :: rest -> go (base - size fname) rest
  in
  go (top + image.M.Loader.slide) chain

let frame_base image chain = frame_base_from image ~top:M.Layout.stack_top chain

(** Same arithmetic for a call chain rooted at spawned thread [tid]'s
    entry function: the thread's frames are carved from its own stack
    window, so the chain's base is that window's top. *)
let thread_frame_base image ~tid chain =
  frame_base_from image ~top:(M.Layout.thread_stack_top tid) chain

(** The [k]-th alloca slot of [fname] as the attacker sees it: the deployed
    layout, falling back to the unprotected reference layout when the slot
    was moved to the safe stack (the attacker's offsets go stale — and the
    region is unreachable anyway). *)
let slot_for view fname k =
  let s = nth_slot view.deployed fname k in
  if s.M.Loader.sl_on_safe then nth_slot view.reference fname k else s

(** Address of global [name] (absolute: plain image unless leak). *)
let global_of view payload name =
  Hashtbl.find (image_for view payload).M.Loader.global_addr name

(** Distance between two globals (slide-invariant: deployed image). *)
let global_distance view ~from ~to_ =
  Hashtbl.find view.deployed.M.Loader.global_addr to_
  - Hashtbl.find view.deployed.M.Loader.global_addr from

(** Direct-overflow payload: [dist] filler words, then [value]. *)
let overflow_payload ?(fill = 0x41) ~dist value =
  let p = Array.make (dist + 1) fill in
  p.(dist) <- value;
  p

(** Distance in words from buffer slot [buf] to target slot [tgt] within
    one frame (both on the regular stack; the buffer overflows upward). *)
let stack_distance (buf : M.Loader.slot) (tgt_offset : int) =
  buf.M.Loader.sl_offset - tgt_offset
