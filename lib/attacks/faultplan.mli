(** Deterministic fault-injection plans (the campaign vocabulary).

    A plan is a named, seeded schedule of memory corruptions expressed
    against *symbolic* sites — stack/heap/global offsets, the return
    address or an alloca slot of a call chain, the safe region — rather
    than raw addresses. [resolve] compiles a plan down to the machine's
    [(step, Interp.fault)] pairs for one deployed image, using the
    unprotected reference build for layout knowledge the way the RIPE
    attacker does: a protection that moves a slot out of the regular
    region silently invalidates the attacker's offsets, which is exactly
    the effect the campaign measures.

    Everything is deterministic: [random] draws from the seeded SplitMix
    generator, so the same [(name, seed)] replays byte-identically. *)

module M = Levee_machine

(** Where a fault lands, symbolically. *)
type site =
  | Stack of int
      (** words below the regular stack top (attacker-style blind offset) *)
  | Heap of int   (** words above the heap base *)
  | Global of string * int  (** a global variable plus a word offset *)
  | Safe_site of int
      (** words below the safe-stack top: attempted safe-region tamper *)
  | Ret_slot of string list
      (** return-address slot of a direct call chain rooted at [main],
          located via the unprotected reference layout *)
  | Var_slot of { chain : string list; index : int }
      (** the [index]-th alloca of the chain's innermost function,
          located via the unprotected reference layout *)
  | Thread_stack of { tid : int; off : int }
      (** words below spawned thread [tid]'s regular stack top:
          cross-thread corruption of another thread's frames *)
  | Thread_safe of { tid : int; off : int }
      (** words below spawned thread [tid]'s safe stack top: attempted
          cross-thread tamper with another thread's safe stack *)
  | Thread_ret of { tid : int; chain : string list }
      (** return-address slot of a call chain rooted at thread [tid]'s
          entry function, located via the reference layout *)

(** What gets written. *)
type value_spec =
  | Value of int
  | Code_entry of string  (** entry address of a function, deployed image *)

type action =
  | Flip of { site : site; bit : int }   (** single bit flip *)
  | Write of { site : site; value : value_spec }
      (** arbitrary-write primitive through the plain access path *)
  | Desync of { site : site; delta : int }
      (** skew an existing safe-store entry's value: metadata desync,
          models an attacker already past isolation *)
  | Drop_meta of site
      (** erase a safe-store entry: ditto *)
  | Stall of { cycles : int }
      (** availability fault: the machine loses [cycles] simulated cycles
          to an external stall (slow request injection) *)
  | Kill_worker of { tid : int }
      (** availability fault: spawned thread [tid] crashes mid-run; its
          joiners observe [-1], mutexes it held stay held *)

type event = { step : int; action : action }

type t = { name : string; seed : int; events : event list }

val make : name:string -> ?seed:int -> event list -> t

(** [random ~name ~seed ~events ~max_step] draws [events] corruptions at
    steps uniform in [0, max_step), over stack/heap/safe sites, mixing
    flips, arbitrary writes and (rarely) store desyncs. *)
val random : name:string -> seed:int -> events:int -> max_step:int -> t

(** No [Desync]/[Drop_meta] events: the plan stays inside the software
    attacker model the paper defends against (arbitrary reads/writes of
    the regular region, no isolation bypass). The campaign's "CPI never
    hijacked" invariant quantifies over exactly these plans.
    [Stall]/[Kill_worker] are inside the model: CPI promises integrity,
    not liveness, so the invariant must hold mid-degradation too. *)
val within_attacker_model : t -> bool

(** At least one [Desync]/[Drop_meta] event: the plan attacks the
    safe-store metadata itself. These are exactly the plans that separate
    safe-region backends from keyed in-place encryption — cpi-crypt keeps
    no metadata table, so dropping metadata is not leaking the key. *)
val targets_metadata : t -> bool

(** Every event is a [Desync]/[Drop_meta]: under a keyed backend the plan
    hits an empty safe store end to end, so the faulted run must be
    observationally identical to the baseline. *)
val pure_metadata : t -> bool

(** The plan injects at least one [Stall] or [Kill_worker]: a
    degradation plan in the resilient-server sense. *)
val has_availability_faults : t -> bool

(** Every event lands on a safe-region site ([Safe_site] or
    [Thread_safe]) through the plain access path:
    the run must end in [Isolation_violation] once the first one fires
    (in every configuration — the safe region is always enforced). *)
val pure_safe_tamper : t -> bool

(** Compile to machine faults for one build. [reference] is the
    unprotected (vanilla, no-ASLR) build supplying frame layouts;
    [deployed] supplies the slide, global addresses and code entry
    points. @raise Invalid_argument on unknown globals/functions. *)
val resolve :
  reference:M.Loader.image -> deployed:M.Loader.image ->
  t -> (int * M.Interp.fault) list
