(** RIPE-style attack matrix runner (Section 5.1).

    Enumerates every (victim x payload) combination, runs each one under
    each protection configuration, and tabulates which attacks succeed
    (control reached the attacker's goal), which are stopped by a defense,
    and which merely crash. The paper's headline claims this reproduces:
    CPI and CPS stop every RIPE attack; the safe stack alone stops every
    stack-based attack; stock mitigations (DEP+ASLR+cookies) stop some but
    not all; coarse CFI is bypassed by call-site gadgets and
    function-entry-redirects. *)

module P = Levee_core.Pipeline
module M = Levee_machine

type instance = {
  victim : Victims.victim;
  payload : Attack.payload;
}

type run = {
  instance : instance;
  protection : P.protection;
  outcome : M.Trap.outcome;
}

let instances ?(include_beyond_ripe = false) () =
  List.concat_map
    (fun (v : Victims.victim) ->
      if v.Victims.beyond_ripe && not include_beyond_ripe then []
      else List.map (fun p -> { victim = v; payload = p }) v.Victims.payloads)
    Victims.all

let succeeded (r : run) =
  match r.outcome with M.Trap.Hijacked _ -> true | _ -> false

(** Stopped by an explicit defense mechanism (vs. a mere crash). *)
let trapped (r : run) =
  match r.outcome with M.Trap.Trapped _ -> true | _ -> false

(** Compile each victim once; returns (victim source program, vanilla
    reference image) pairs keyed by victim id. *)
let compile_victims () =
  List.map
    (fun (v : Victims.victim) ->
      let prog = Levee_minic.Lower.compile ~name:v.Victims.vid v.Victims.source in
      let vanilla = P.build P.Vanilla prog in
      let reference = M.Loader.load vanilla.P.prog vanilla.P.config in
      (v, prog, reference))
    Victims.all

(** Run one attack instance under one protection. *)
let run_instance ~reference (built : P.built) (inst : instance) : run =
  let deployed = M.Loader.load built.P.prog built.P.config in
  let plain =
    if built.P.config.M.Config.aslr then
      M.Loader.load built.P.prog { built.P.config with M.Config.aslr = false }
    else deployed
  in
  let view = { Attack.deployed; plain; reference } in
  let input = inst.victim.Victims.build view inst.payload in
  let res = M.Interp.run ~input ~fuel:2_000_000 deployed in
  { instance = inst; protection = built.P.protection;
    outcome = res.M.Interp.outcome }

(** Validate that a victim behaves benignly (no attack input) under a
    protection: protections must not break correct programs. *)
let benign_ok (built : P.built) : bool =
  let res = M.Interp.run ~input:[||] ~fuel:2_000_000
      (M.Loader.load built.P.prog built.P.config)
  in
  match res.M.Interp.outcome with M.Trap.Exit _ -> true | _ -> false

type summary = {
  protection : P.protection;
  total : int;
  hijacked : int;
  trapped_count : int;
  crashed : int;
  stack_hijacked : int;       (* successful attacks that were stack-based *)
  runs : run list;
}

(** Run the full matrix for the given protections. *)
let run_matrix ?(include_beyond_ripe = false)
    ?(protections =
      [ P.Vanilla; P.Hardened; P.Cookies; P.Safe_stack; P.Cfi; P.Cps; P.Cpi;
        P.Softbound; P.Cfi_type; P.Cpi_crypt ]) () : summary list =
  let compiled = compile_victims () in
  List.map
    (fun prot ->
      let runs =
        List.concat_map
          (fun ((v : Victims.victim), prog, reference) ->
            if v.Victims.beyond_ripe && not include_beyond_ripe then []
            else begin
              let built = P.build prot prog in
              List.map
                (fun payload ->
                  run_instance ~reference built { victim = v; payload })
                v.Victims.payloads
            end)
          compiled
      in
      let hij = List.filter succeeded runs in
      { protection = prot;
        total = List.length runs;
        hijacked = List.length hij;
        trapped_count = List.length (List.filter trapped runs);
        crashed =
          List.length
            (List.filter
               (fun r ->
                 match r.outcome with M.Trap.Crash _ -> true | _ -> false)
               runs);
        stack_hijacked =
          List.length
            (List.filter
               (fun r ->
                 Attack.is_stack_attack r.instance.victim.Victims.target)
               hij);
        runs }
    )
    protections
