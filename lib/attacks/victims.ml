(** Vulnerable victim programs, one per RIPE dimension combination.

    Each victim is a small MiniC program with a planted memory-corruption
    vulnerability (unbounded gets/strcpy-style input) whose benign runs
    terminate cleanly, plus a payload builder that uses the attacker's view
    of the deployed binary. The shared preamble provides the attack goals:
    [backdoor] (the return-to-libc target containing system()),
    a mid-function ROP gadget inside it, and [staging], which contains a
    call-preceded gadget that defeats coarse-grained CFI return checks
    (the Gokta's/Davi-style bypass the paper cites). *)

open Attack
module M = Levee_machine

let preamble = {|
int helper(int x) { return x + 1; }
int helper2(int x) { return x + 2; }
int backdoor() {
  int mark = 7;
  mark = mark + 1;
  system("pwn");
  return mark;
}
int do_backdoor() { backdoor(); return 0; }
int staging() { helper(1); do_backdoor(); return 0; }
|}

type victim = {
  vid : string;
  technique : technique;
  location : location;
  target : target;
  source : string;
  payloads : payload list;
  beyond_ripe : bool;        (* the CPS-relaxation demo, not a RIPE case *)
  build : view -> payload -> int array;
}

let fill_for = function
  | Shellcode -> M.Layout.shellcode_magic
  | To_function | To_gadget | To_callsite | To_function_leak -> 0x41

(* Destination value the attacker wants the corrupted code pointer to take. *)
let dest view ~shell_addr payload =
  match payload with
  | To_function | To_function_leak -> backdoor_entry view payload
  | To_gadget -> gadget_addr view payload
  | To_callsite -> callsite_gadget_addr view payload
  | Shellcode -> shell_addr ()

let call_payloads = [ To_function; To_gadget; Shellcode; To_function_leak ]
let ret_payloads = [ To_function; To_gadget; To_callsite; Shellcode; To_function_leak ]

(* V1: stack / direct overflow / return address. *)
let v1 =
  { vid = "stack-direct-ret";
    technique = Direct_overflow; location = Stack_loc; target = Ret_addr;
    payloads = ret_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
int vuln() {
  char buf[12];
  gets(buf);
  return buf[0];
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let buf = slot_for view "vuln" 0 in
        let dist = buf.M.Loader.sl_offset - 1 in
        let shell_addr () =
          frame_base (image_for view payload) [ "main"; "vuln" ]
          - buf.M.Loader.sl_offset
        in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V2: stack / direct overflow / function pointer in a local variable. *)
let v2 =
  { vid = "stack-direct-fptr";
    technique = Direct_overflow; location = Stack_loc; target = Fptr_stack;
    payloads = call_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
int vuln() {
  int (*fp)(int);
  char buf[12];
  fp = helper;
  gets(buf);
  return fp(7);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let buf = slot_for view "vuln" 1 in
        let fp = slot_for view "vuln" 0 in
        let dist = buf.M.Loader.sl_offset - fp.M.Loader.sl_offset in
        let shell_addr () =
          frame_base (image_for view payload) [ "main"; "vuln" ]
          - buf.M.Loader.sl_offset
        in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V3: stack / direct overflow / function pointer inside a struct. *)
let v3 =
  { vid = "stack-direct-struct-fptr";
    technique = Direct_overflow; location = Stack_loc; target = Struct_fptr_stack;
    payloads = call_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
struct handler { int id; int (*fn)(int); };
int vuln() {
  struct handler h;
  char buf[12];
  h.id = 1;
  h.fn = helper2;
  gets(buf);
  return h.fn(3);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let buf = slot_for view "vuln" 1 in
        let h = slot_for view "vuln" 0 in
        (* fn is the second field of h: one word above the struct base *)
        let dist = buf.M.Loader.sl_offset - (h.M.Loader.sl_offset - 1) in
        let shell_addr () =
          frame_base (image_for view payload) [ "main"; "vuln" ]
          - buf.M.Loader.sl_offset
        in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V4: stack / indirect / return address: corrupt a data pointer, the
   program's own write through it becomes an arbitrary one-word write. *)
let v4 =
  { vid = "stack-indirect-ret";
    technique = Indirect_ptr; location = Stack_loc; target = Ret_addr;
    payloads = ret_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
int sink;
int vuln() {
  int *p;
  char buf[12];
  p = &sink;
  gets(buf);
  *p = read_int();
  return 0;
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let buf = slot_for view "vuln" 1 in
        let p = slot_for view "vuln" 0 in
        let dist = buf.M.Loader.sl_offset - p.M.Loader.sl_offset in
        let shell_addr () =
          frame_base (image_for view payload) [ "main"; "vuln" ]
          - buf.M.Loader.sl_offset
        in
        (* Point p at vuln's return-address slot, then feed the hijack
           destination to the read_int write. *)
        let ret_slot =
          frame_base (image_for view payload) [ "main"; "vuln" ] - 1
        in
        let ov = overflow_payload ~fill:(fill_for payload) ~dist ret_slot in
        (* newline terminates gets(); the next word feeds read_int *)
        Array.append ov [| 10; dest view ~shell_addr payload |]) }

(* V5: global / indirect / function pointer reached through a pointer to a
   sensitive pointer: the CPI-specific propagation case (Fig. 1). *)
let v5 =
  { vid = "global-indirect-fptr";
    technique = Indirect_ptr; location = Global_loc; target = Fptr_global;
    payloads = [ To_function; To_gadget; To_function_leak ];
    beyond_ripe = false;
    source = preamble ^ {|
int (*gfp)(int) = helper;
char gbuf[12];
int (**gpp)(int) = gfp;
int vuln() {
  gets(gbuf);
  return (*gpp)(1);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        (* Plant the destination inside gbuf, then overflow gbuf so that
           gpp points back into gbuf. *)
        let dist = global_distance view ~from:"gbuf" ~to_:"gpp" in
        let gbuf = global_of view payload "gbuf" in
        let ov =
          overflow_payload ~fill:(fill_for payload) ~dist gbuf
        in
        ov.(0) <- dest view ~shell_addr:(fun () -> gbuf) payload;
        ov) }

(* V6: global / direct / global function pointer. *)
let v6 =
  { vid = "global-direct-fptr";
    technique = Direct_overflow; location = Global_loc; target = Fptr_global;
    payloads = call_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
char gbuf[12];
int (*gfp)(int) = helper;
int vuln() {
  gets(gbuf);
  return gfp(2);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let dist = global_distance view ~from:"gbuf" ~to_:"gfp" in
        let shell_addr () = global_of view payload "gbuf" in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V7: heap / direct / function pointer inside the same heap object
   (intra-object overflow). *)
let v7 =
  { vid = "heap-direct-struct-fptr";
    technique = Direct_overflow; location = Heap_loc; target = Struct_fptr_heap;
    payloads = call_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
struct obj { char name[12]; int (*cb)(int); };
int vuln() {
  struct obj *o;
  o = (struct obj*) malloc(sizeof(struct obj));
  o->cb = helper;
  gets(o->name);
  return o->cb(4);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let dist = 12 in   (* cb sits right after name[12] *)
        let shell_addr () =
          M.Layout.heap_base + (image_for view payload).M.Loader.slide + 1
        in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V8: heap / direct / function pointer in an adjacent heap object. *)
let v8 =
  { vid = "heap-direct-fptr";
    technique = Direct_overflow; location = Heap_loc; target = Fptr_heap;
    payloads = call_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
int vuln() {
  char *buf;
  int (**slot)(int);
  buf = (char*) malloc(12);
  slot = (int (**)(int)) malloc(1);
  *slot = helper;
  gets(buf);
  return (*slot)(5);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        (* buf block: 12 words + 1 header; slot follows *)
        let dist = 13 in
        let shell_addr () =
          M.Layout.heap_base + (image_for view payload).M.Loader.slide + 1
        in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V9: longjmp buffer corruption (global jmp_buf). *)
let v9 =
  { vid = "global-direct-longjmp";
    technique = Direct_overflow; location = Global_loc; target = Longjmp_buf;
    payloads = ret_payloads;
    beyond_ripe = false;
    source = preamble ^ {|
char gbuf[8];
int jb[4];
int do_jump() { longjmp(jb, 1); return 0; }
int vuln() {
  gets(gbuf);
  do_jump();
  return 0;
}
int main() {
  if (setjmp(jb)) { print_str("resumed"); return 0; }
  vuln();
  return 0;
}
|};
    build =
      (fun view payload ->
        let dist = global_distance view ~from:"gbuf" ~to_:"jb" in
        let shell_addr () = global_of view payload "gbuf" in
        overflow_payload ~fill:(fill_for payload) ~dist
          (dest view ~shell_addr payload)) }

(* V10: fake-vtable attack (the C++ COOP pattern): redirect an object's
   vtable pointer at attacker-controlled data. *)
let v10 =
  { vid = "heap-direct-vtable-fake";
    technique = Direct_overflow; location = Heap_loc; target = Vtable_fake;
    payloads = [ To_function; To_gadget; To_function_leak ];
    beyond_ripe = false;
    source = preamble ^ {|
struct vtbl { int (*m0)(int); int (*m1)(int); };
struct widget { char tag[8]; struct vtbl *vt; };
struct vtbl vt_user = { helper, helper2 };
char scratch[4];
int vuln() {
  struct widget *w;
  w = (struct widget*) malloc(sizeof(struct widget));
  w->vt = &vt_user;
  read_input(scratch, 4);
  gets(w->tag);
  return w->vt->m0(1);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let scratch = global_of view payload "scratch" in
        let fake_table =
          [| dest view ~shell_addr:(fun () -> scratch) payload; 0x42; 0x43; 0x44 |]
        in
        let ov = overflow_payload ~fill:(fill_for payload) ~dist:8 scratch in
        Array.append fake_table ov) }

(* V11: vtable swap: redirect the vtable pointer at a DIFFERENT legitimate
   vtable whose entries were stored by genuine code-pointer stores. CPS
   permits this by design (valid code pointers are interchangeable,
   Section 3.3); CPI does not. Not part of the RIPE matrix. *)
let v11 =
  { vid = "heap-direct-vtable-swap";
    technique = Direct_overflow; location = Heap_loc; target = Vtable_swap;
    payloads = [ To_function; To_function_leak ];
    beyond_ripe = true;
    source = preamble ^ {|
struct vtbl { int (*m0)(int); };
struct widget { char tag[8]; struct vtbl *vt; };
int admin_m0(int x) { system("admin"); return x; }
struct vtbl vt_user = { helper };
struct vtbl vt_admin = { admin_m0 };
int vuln() {
  struct widget *w;
  w = (struct widget*) malloc(sizeof(struct widget));
  w->vt = &vt_user;
  gets(w->tag);
  return w->vt->m0(1);
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        let vt_admin = global_of view payload "vt_admin" in
        overflow_payload ~fill:0x41 ~dist:8 vt_admin) }

(* ---- vulnerable-function dimension ----
   RIPE exercises each overflow through several vulnerable libc functions.
   Every direct-overflow victim above uses gets(); [expand_vulns] derives
   strcpy- and attacker-length-memcpy variants from it mechanically:

     gets(BUF);                                    (original)
     gets(staging); strcpy(BUF, staging);          (strcpy variant)
     gets(staging); memcpy(BUF, staging, read_int());   (memcpy variant)

   The payload is unchanged for strcpy (it contains no NUL words); the
   memcpy variant appends a newline (ending gets) and the attacker-chosen
   length. *)

let staging_decl = "char staging[96];\n"

let rewrite_vuln ~vid_suffix ~vuln_line (v : victim) ~adapt =
  match String.index_opt v.source 'g' with
  | None -> None
  | Some _ ->
    let marker_re = Str.regexp {|gets(\([A-Za-z_>.()-]*\));|} in
    (try
       let _ = Str.search_forward marker_re v.source 0 in
       let buf = Str.matched_group 1 v.source in
       let replaced =
         Str.replace_first marker_re (vuln_line buf) v.source
       in
       (* put the staging buffer after the preamble so it never sits
          between the overflowed buffer and its target *)
       Some
         { v with
           vid = v.vid ^ "-" ^ vid_suffix;
           source = staging_decl ^ replaced;
           build = (fun view payload -> adapt (v.build view payload)) }
     with Not_found -> None)

let strcpy_variant v =
  rewrite_vuln ~vid_suffix:"strcpy"
    ~vuln_line:(fun buf ->
      Printf.sprintf "gets(staging); strcpy(%s, staging);" buf)
    v
    ~adapt:(fun p -> p)

let memcpy_variant v =
  rewrite_vuln ~vid_suffix:"memcpy"
    ~vuln_line:(fun buf ->
      Printf.sprintf "gets(staging); memcpy(%s, staging, read_int());" buf)
    v
    ~adapt:(fun p -> Array.concat [ p; [| 10; Array.length p |] ])

(* V12: heap / use-after-free / function pointer in a recycled object.
   The dangling dispatch reads whatever the attacker put into the reused
   allocation. CPI's temporal id on the sensitive pointer detects the
   stale object; CPS's stale-but-genuine safe-store entry makes the attack
   silently ineffective; everything else reads attacker data. *)
let v12 =
  { vid = "heap-uaf-fptr";
    technique = Use_after_free; location = Heap_loc; target = Fptr_heap;
    payloads = [ To_function; To_gadget; To_function_leak ];
    beyond_ripe = false;
    source = preamble ^ {|
struct obj { int pad; int (*cb)(int); };
int vuln() {
  struct obj *o;
  int *recycled;
  o = (struct obj *) malloc(sizeof(struct obj));
  o->pad = 1;
  o->cb = helper;
  free((void *) o);
  // the allocator recycles the block for an attacker-filled buffer
  recycled = (int *) malloc(sizeof(struct obj));
  if (gets((char *) recycled) == 0) { return helper(6); }
  return o->cb(6);      // dangling virtual dispatch, input-triggered
}
int main() { vuln(); print_str("benign"); return 0; }
|};
    build =
      (fun view payload ->
        (* the recycled block starts where the freed object was: word 0 is
           pad, word 1 is the cb slot *)
        let shell_addr () =
          M.Layout.heap_base + (image_for view payload).M.Loader.slide + 1
        in
        [| 0x41; dest view ~shell_addr payload |]) }

let direct_base = [ v1; v2; v3; v6; v7; v8 ]

let vuln_variants =
  List.concat_map
    (fun v -> List.filter_map (fun f -> f v) [ strcpy_variant; memcpy_variant ])
    direct_base

let all = [ v1; v2; v3; v4; v5; v6; v7; v8; v9; v10; v11; v12 ] @ vuln_variants
