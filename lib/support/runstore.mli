(** Append-only run-store: the repo's performance-trajectory history.

    Every harness in the tree — the bench journals, the wall-clock perf
    harness, fault campaigns, `levee conc` — appends one summary
    {!record} per run to a single JSONL file ([RUNS.jsonl] by default):
    one JSON object per line, envelope version [levee-history/1], keyed
    by [(schema, commit, config, seed)]. The file is append-only and
    diffable; `levee history` lists the trajectory, diffs any two runs
    field-by-field, and gates per-field deltas against tolerances so a
    perf regression is a test failure, not a prose convention.

    Records are deterministic bytes: producers zero [wall_us] (or the
    caller ignores it), metric order is the insertion order, and floats
    use {!Jsonenc.float_str}'s single dialect — so the same run appended
    under any [--jobs] width yields byte-identical lines. *)

(** A metric value. Ints dominate; floats (one-decimal dialect) carry
    rates such as [cells_per_sec]; strings carry verdicts. *)
type value = Int of int | Float of float | Str of string

type record = {
  schema : string;   (** producer schema, e.g. ["levee-bench-journal/4"] *)
  kind : string;     (** producer family: ["bench"], ["perf"], ["conc"], ["faults"] *)
  commit : string;   (** source revision, or ["unknown"] *)
  config : string;   (** run configuration, e.g. ["table1"], ["web-conc-t4-s0"] *)
  seed : int;        (** campaign / scheduler seed (0 when inert) *)
  wall_us : int;     (** wall-clock microseconds; 0 for deterministic producers *)
  metrics : (string * value) list;
      (** ordered open-ended metrics ([cycles], [checks_elided], [races],
          p-latencies when a producer reports them, ...) *)
}

(** ["levee-history/1"] — the record envelope version. *)
val envelope : string

(** ["RUNS.jsonl"] *)
val default_path : string

(** [$LEVEE_COMMIT] if set, else [git rev-parse --short HEAD], else
    ["unknown"]. Never raises. *)
val detect_commit : unit -> string

(** [commit] defaults to {!detect_commit}; [seed] and [wall_us] to 0. *)
val make :
  schema:string ->
  kind:string ->
  ?commit:string ->
  config:string ->
  ?seed:int ->
  ?wall_us:int ->
  (string * value) list ->
  record

(** The identity of a run in the history. *)
val key : record -> string * string * string * int

(** One line of JSON, no trailing newline. Deterministic bytes. *)
val to_line : record -> string

(** Parse one line. Malformed or truncated input yields [Error] with a
    precise message (offset / missing field / version mismatch) — never
    an exception. *)
val of_line : string -> (record, string) result

(** Append one record (plus newline) to the store, creating it if
    needed. *)
val append : ?path:string -> record -> unit

(** Read the whole store in append order. Blank lines are skipped; the
    first malformed line yields [Error "<path>:<line>: <why>"]. *)
val load : ?path:string -> unit -> (record list, string) result

(** Resolve a run spec against a loaded store: a 0-based index (negative
    counts from the end), ["last"], ["prev"], or a config name (most
    recent match). *)
val find : record list -> string -> (record, string) result

(** One field of a diff: values from run a and run b (either may be
    absent) and the signed percentage delta when both are numeric,
    relative to |a| (or |b| when a is zero; 0 when both are zero). *)
type delta = {
  field : string;
  va : value option;
  vb : value option;
  pct : float option;
}

(** Field-by-field comparison: [wall_us] first, then the union of both
    records' metrics in a's order (b-only fields last). *)
val diff : record -> record -> delta list

(** Rendered diff table; deterministic (pinned by golden tests). *)
val diff_human : record -> record -> string

(** Per-field percentage tolerances the gate applies by default:
    [cycles]/[sim_cycles] and the serve latency percentiles
    ([p50_cycles]/[p99_cycles]/[p999_cycles]) 5%, [wall_us]/
    [wall_us_total] 50%, and exact-count fields (analysis findings,
    serve terminal accounting) 0%. Fields not listed are reported by
    {!diff} but never gated. *)
val default_tolerances : (string * float) list

type violation = {
  vfield : string;
  vbase : float;
  vnew : float;
  vpct : float;
  vtol : float;
}

(** The regression gate: every gated field whose |delta| exceeds its
    tolerance. Empty means the gate passes. Tolerances are consulted
    first-match, so prepending to {!default_tolerances} overrides. *)
val gate : ?tolerances:(string * float) list -> record -> record -> violation list

(** ["gate: OK ..."] or ["gate: FAIL"] plus one line per violation
    naming the offending field. *)
val gate_human : violation list -> string

(** The trajectory table `levee history` prints. *)
val list_human : record list -> string
