(** Deterministic pseudo-random number generation.

    All randomized components of the reproduction (workload inputs, attack
    payload choices, property-test corpora seeds) draw from this SplitMix64
    generator so every run of the benchmarks and tests is bit-for-bit
    reproducible. We deliberately avoid [Stdlib.Random] global state. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64's split: draw one output from the parent and use it as the
   child's state, re-mixed with the golden-gamma constant so the child
   stream is decorrelated from the parent's subsequent outputs. The parent
   advances by exactly one step, so split streams are fully determined by
   the parent seed and the order of splits. *)
let split t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  { state = logxor z (shift_right_logical z 31) }

(* SplitMix64 step: the standard constants from Steele et al. (2014). *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
let int t bound =
  assert (bound > 0);
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

(** [range t lo hi] is uniform in [lo, hi] inclusive. *)
let range t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let bool t = int t 2 = 0

(** [pick t arr] selects a uniformly random element of a non-empty array. *)
let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

(** [pick_list t l] selects a uniformly random element of a non-empty list. *)
let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
