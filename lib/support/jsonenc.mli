(** Shared JSON emission and parsing helpers.

    The toolchain has no JSON library; every schema in the repo
    ([levee-bench-journal/*], [levee-bench-perf/*], [levee-analyze/*],
    [levee-faults/*], [levee-history/*]) emits objects, arrays, strings
    and numbers by hand. This module is the single definition of the
    string-escaping and float-formatting dialect, the field/object
    combinators, and the reader, so every emitter produces — and every
    consumer accepts — the same bytes for the same data. *)

(** Escape a string for inclusion inside JSON double quotes. *)
val escape : string -> string

(** The one float dialect every schema uses: fixed-point with one
    decimal ([197.4]), locale-independent. Negative zero normalizes to
    ["0.0"]; non-finite values (unrepresentable in JSON, never produced
    by a real schema) also collapse to ["0.0"]. *)
val float_str : float -> string

(** ["key":"escaped value"] *)
val str : string -> string -> string

(** ["key":42] *)
val int : string -> int -> string

(** ["key":3.1] — formatted with {!float_str}. *)
val float1 : string -> float -> string

(** ["key":true] *)
val bool : string -> bool -> string

(** [obj fields] = [{f1,f2,...}] on one line. *)
val obj : string list -> string

(** [arr elems] = [[e1,\ne2,\n...]] with one element per line, matching
    the journal emitter's layout. *)
val arr : string list -> string

(** {2 Parsing} *)

type json =
  | Jstr of string
  | Jint of int
  | Jfloat of float
  | Jbool of bool
  | Jnull
  | Jlist of json list
  | Jobj of (string * json) list

(** Raised by {!parse} and the accessors below, with a message that
    pinpoints the offset or the missing/ill-typed field. *)
exception Bad of string

(** Parse a complete JSON document (objects, arrays, strings, ints,
    floats, bools, null). Object member order is preserved.
    @raise Bad on malformed input, including trailing garbage. *)
val parse : string -> json

(** Project a field out of an object. @raise Bad if absent. *)
val field : string -> json -> json

val field_opt : string -> json -> json option
val as_str : json -> string
val as_int : json -> int

(** Accepts both [Jfloat] and [Jint]. *)
val as_float : json -> float

val as_bool : json -> bool
val as_list : json -> json list
