(** Shared JSON emission helpers.

    The toolchain has no JSON library; every schema in the repo
    ([levee-bench-journal/*], [levee-bench-perf/*], [levee-analyze/*],
    [levee-faults/*]) emits objects, arrays, strings and ints by hand.
    This module is the single definition of the string-escaping dialect
    and the field/object combinators, so every emitter produces the same
    bytes for the same data. *)

(** Escape a string for inclusion inside JSON double quotes. *)
val escape : string -> string

(** ["key":"escaped value"] *)
val str : string -> string -> string

(** ["key":42] *)
val int : string -> int -> string

(** ["key":3.1] — printed with [%.1f], the dialect the perf schema uses. *)
val float1 : string -> float -> string

(** ["key":true] *)
val bool : string -> bool -> string

(** [obj fields] = [{f1,f2,...}] on one line. *)
val obj : string list -> string

(** [arr elems] = [[e1,\ne2,\n...]] with one element per line, matching
    the journal emitter's layout. *)
val arr : string list -> string
