(* Shared JSON emission helpers (see jsonenc.mli). *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let str k v = Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)
let int k v = Printf.sprintf "\"%s\":%d" (escape k) v
let float1 k v = Printf.sprintf "\"%s\":%.1f" (escape k) v
let bool k v = Printf.sprintf "\"%s\":%s" (escape k) (if v then "true" else "false")
let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr elems = "[\n" ^ String.concat ",\n" elems ^ "\n]"
