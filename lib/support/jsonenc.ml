(* Shared JSON emission and parsing helpers (see jsonenc.mli). *)

let escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* One canonical float dialect for every schema: fixed-point, one decimal,
   independent of any locale (OCaml's Printf never consults the locale,
   unlike C's). Non-finite values cannot be represented in JSON and no
   schema legitimately produces them, so they collapse to 0.0 rather than
   emitting a document other parsers reject; negative zero is normalized
   so equal values always serialize to equal bytes. *)
let float_str v =
  let v = if v <> v || v = infinity || v = neg_infinity then 0.0 else v in
  let v = if v = 0.0 then 0.0 else v in
  Printf.sprintf "%.1f" v

let str k v = Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)
let int k v = Printf.sprintf "\"%s\":%d" (escape k) v
let float1 k v = Printf.sprintf "\"%s\":%s" (escape k) (float_str v)
let bool k v = Printf.sprintf "\"%s\":%s" (escape k) (if v then "true" else "false")
let obj fields = "{" ^ String.concat "," fields ^ "}"
let arr elems = "[\n" ^ String.concat ",\n" elems ^ "\n]"

(* ---------- parser ---------- *)

(* Minimal recursive-descent reader covering the subset the repo's
   emitters produce (plus arbitrary nesting, so a future schema bump
   still parses). Shared by the journal parser and the run-store. *)

type json =
  | Jstr of string
  | Jint of int
  | Jfloat of float
  | Jbool of bool
  | Jnull
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else fail "expected value"
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code =
             match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
             | Some c -> c
             | None -> fail "bad \\u escape"
           in
           Buffer.add_char b (Char.chr (code land 0xff));
           pos := !pos + 4
         | _ -> fail "bad escape");
        loop ()
      | Some c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    let is_float = ref false in
    (match peek () with Some '-' -> advance () | _ -> ());
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') -> advance (); digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start || (!pos = start + 1 && s.[start] = '-') then
      fail "expected number";
    (match peek () with
     | Some '.' -> is_float := true; advance (); digits ()
     | _ -> ());
    (match peek () with
     | Some ('e' | 'E') ->
       is_float := true;
       advance ();
       (match peek () with Some ('+' | '-') -> advance () | _ -> ());
       digits ()
     | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then
      match float_of_string_opt text with
      | Some f -> Jfloat f
      | None -> fail "bad float"
    else
      match int_of_string_opt text with
      | Some i -> Jint i
      | None -> fail "bad integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some 't' -> literal "true" (Jbool true)
    | Some 'f' -> literal "false" (Jbool false)
    | Some 'n' -> literal "null" Jnull
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jlist [])
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jlist (elems [])
      end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | _ -> fail "expected value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Jobj kvs ->
    (match List.assoc_opt name kvs with
     | Some v -> v
     | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad "expected object")

let field_opt name = function
  | Jobj kvs -> List.assoc_opt name kvs
  | _ -> None

let as_str = function Jstr s -> s | _ -> raise (Bad "expected string")
let as_int = function Jint i -> i | _ -> raise (Bad "expected int")
let as_float = function
  | Jfloat f -> f
  | Jint i -> float_of_int i
  | _ -> raise (Bad "expected number")
let as_bool = function Jbool b -> b | _ -> raise (Bad "expected bool")
let as_list = function Jlist l -> l | _ -> raise (Bad "expected array")
