(* Structured run journal: a thread-safe accumulator of per-cell records
   plus a self-contained JSON emitter/parser (the toolchain has no JSON
   library; the schema only needs objects, arrays, strings and ints). *)

type entry = {
  workload : string;
  protection : string;
  store : string;
  outcome : string;
  status : int;
  cycles : int;
  instrs : int;
  mem_ops : int;
  instrumented_mem_ops : int;
  store_accesses : int;
  store_footprint : int;
  heap_peak : int;
  checksum : int;
  checks_elided : int;
  mem_ops_demoted : int;
  threads : int;
  ctx_switches : int;
  races : int;
  attempts : int;
  wall_us : int;
}

type t = {
  target_name : string;
  jobs_used : int;
  m : Mutex.t;
  mutable rev_entries : entry list;
}

let schema_id = "levee-bench-journal/4"

let create ?(jobs = 1) ~target () =
  { target_name = target; jobs_used = jobs; m = Mutex.create ();
    rev_entries = [] }

let target t = t.target_name
let jobs t = t.jobs_used

let record t e =
  Mutex.lock t.m;
  t.rev_entries <- e :: t.rev_entries;
  Mutex.unlock t.m

let entries t =
  Mutex.lock t.m;
  let es = List.rev t.rev_entries in
  Mutex.unlock t.m;
  es

let failures t = List.filter (fun e -> e.status <> 0) (entries t)

(* ---------- emitter ---------- *)

let escape = Jsonenc.escape

let entry_to_json e =
  Printf.sprintf
    "{\"workload\":\"%s\",\"protection\":\"%s\",\"store\":\"%s\",\
     \"outcome\":\"%s\",\"status\":%d,\"cycles\":%d,\"instrs\":%d,\
     \"mem_ops\":%d,\"instrumented_mem_ops\":%d,\"store_accesses\":%d,\
     \"store_footprint\":%d,\"heap_peak\":%d,\"checksum\":%d,\
     \"checks_elided\":%d,\"mem_ops_demoted\":%d,\"threads\":%d,\
     \"ctx_switches\":%d,\"races\":%d,\"attempts\":%d,\
     \"wall_us\":%d}"
    (escape e.workload) (escape e.protection) (escape e.store)
    (escape e.outcome) e.status e.cycles e.instrs e.mem_ops
    e.instrumented_mem_ops e.store_accesses e.store_footprint e.heap_peak
    e.checksum e.checks_elided e.mem_ops_demoted e.threads e.ctx_switches
    e.races e.attempts e.wall_us

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\n\"schema\":\"%s\",\n\"target\":\"%s\",\n\"jobs\":%d,\n\"entries\":[\n"
       schema_id (escape t.target_name) t.jobs_used);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (entry_to_json e))
    (entries t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ---------- parser ---------- *)

(* The recursive-descent JSON reader lives in Jsonenc, shared with the
   run-store; only the entry projection is journal-specific. *)

exception Bad = Jsonenc.Bad

let parse_json = Jsonenc.parse
let field = Jsonenc.field
let as_str = Jsonenc.as_str
let as_int = Jsonenc.as_int
let as_list = Jsonenc.as_list

let entry_of_json j =
  let str k = as_str (field k j) and int k = as_int (field k j) in
  { workload = str "workload"; protection = str "protection";
    store = str "store"; outcome = str "outcome"; status = int "status";
    cycles = int "cycles"; instrs = int "instrs"; mem_ops = int "mem_ops";
    instrumented_mem_ops = int "instrumented_mem_ops";
    store_accesses = int "store_accesses";
    store_footprint = int "store_footprint"; heap_peak = int "heap_peak";
    checksum = int "checksum"; checks_elided = int "checks_elided";
    mem_ops_demoted = int "mem_ops_demoted"; threads = int "threads";
    ctx_switches = int "ctx_switches"; races = int "races";
    attempts = int "attempts"; wall_us = int "wall_us" }

let of_json s =
  try
    let j = parse_json s in
    let schema = as_str (field "schema" j) in
    if schema <> schema_id then
      raise (Bad ("unknown schema " ^ schema));
    let t =
      create ~jobs:(as_int (field "jobs" j))
        ~target:(as_str (field "target" j)) ()
    in
    List.iter (fun e -> record t (entry_of_json e)) (as_list (field "entries" j));
    t
  with
  | Bad msg -> failwith ("Journal.of_json: " ^ msg)
  | Failure msg -> failwith ("Journal.of_json: " ^ msg)

(* ---------- comparison / reporting ---------- *)

let equal ?(ignore_wall = true) a b =
  let strip e = if ignore_wall then { e with wall_us = 0 } else e in
  a.target_name = b.target_name
  && List.map strip (entries a) = List.map strip (entries b)

let summary_line t =
  let es = entries t in
  let failed = List.length (List.filter (fun e -> e.status <> 0) es) in
  let cycles = List.fold_left (fun acc e -> acc + e.cycles) 0 es in
  let wall = List.fold_left (fun acc e -> acc + e.wall_us) 0 es in
  Printf.sprintf
    "[journal] %s: %d runs (%d failed), %d model cycles, %.1f ms wall, jobs=%d"
    t.target_name (List.length es) failed cycles
    (float_of_int wall /. 1000.) t.jobs_used

let write ?(dir = ".") t =
  let path = Filename.concat dir ("BENCH_" ^ t.target_name ^ ".json") in
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc;
  path

(* ---------- run-store projection ---------- *)

(* One aggregate record per journal: the trajectory tracks whole-target
   totals, the per-cell detail stays in BENCH_<target>.json. Metric
   order is fixed, so the record's bytes are deterministic. *)
let to_record ?(kind = "bench") ?commit ?(seed = 0) ?(zero_wall = false) t =
  let es = entries t in
  let sum f = List.fold_left (fun acc e -> acc + f e) 0 es in
  let wall_us = if zero_wall then 0 else sum (fun e -> e.wall_us) in
  Runstore.make ~schema:schema_id ~kind ?commit ~config:t.target_name ~seed
    ~wall_us
    [ ("cells", Runstore.Int (List.length es));
      ("failures", Runstore.Int (List.length (failures t)));
      ("cycles", Runstore.Int (sum (fun e -> e.cycles)));
      ("instrs", Runstore.Int (sum (fun e -> e.instrs)));
      ("mem_ops", Runstore.Int (sum (fun e -> e.mem_ops)));
      ("instrumented_mem_ops", Runstore.Int (sum (fun e -> e.instrumented_mem_ops)));
      ("store_accesses", Runstore.Int (sum (fun e -> e.store_accesses)));
      ("checks_elided", Runstore.Int (sum (fun e -> e.checks_elided)));
      ("mem_ops_demoted", Runstore.Int (sum (fun e -> e.mem_ops_demoted)));
      ("ctx_switches", Runstore.Int (sum (fun e -> e.ctx_switches)));
      ("races", Runstore.Int (sum (fun e -> e.races)));
      ("checksum", Runstore.Int (sum (fun e -> e.checksum))) ]
