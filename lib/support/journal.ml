(* Structured run journal: a thread-safe accumulator of per-cell records
   plus a self-contained JSON emitter/parser (the toolchain has no JSON
   library; the schema only needs objects, arrays, strings and ints). *)

type entry = {
  workload : string;
  protection : string;
  store : string;
  outcome : string;
  status : int;
  cycles : int;
  instrs : int;
  mem_ops : int;
  instrumented_mem_ops : int;
  store_accesses : int;
  store_footprint : int;
  heap_peak : int;
  checksum : int;
  checks_elided : int;
  mem_ops_demoted : int;
  threads : int;
  ctx_switches : int;
  races : int;
  attempts : int;
  wall_us : int;
}

type t = {
  target_name : string;
  jobs_used : int;
  m : Mutex.t;
  mutable rev_entries : entry list;
}

let schema_id = "levee-bench-journal/4"

let create ?(jobs = 1) ~target () =
  { target_name = target; jobs_used = jobs; m = Mutex.create ();
    rev_entries = [] }

let target t = t.target_name
let jobs t = t.jobs_used

let record t e =
  Mutex.lock t.m;
  t.rev_entries <- e :: t.rev_entries;
  Mutex.unlock t.m

let entries t =
  Mutex.lock t.m;
  let es = List.rev t.rev_entries in
  Mutex.unlock t.m;
  es

let failures t = List.filter (fun e -> e.status <> 0) (entries t)

(* ---------- emitter ---------- *)

let escape = Jsonenc.escape

let entry_to_json e =
  Printf.sprintf
    "{\"workload\":\"%s\",\"protection\":\"%s\",\"store\":\"%s\",\
     \"outcome\":\"%s\",\"status\":%d,\"cycles\":%d,\"instrs\":%d,\
     \"mem_ops\":%d,\"instrumented_mem_ops\":%d,\"store_accesses\":%d,\
     \"store_footprint\":%d,\"heap_peak\":%d,\"checksum\":%d,\
     \"checks_elided\":%d,\"mem_ops_demoted\":%d,\"threads\":%d,\
     \"ctx_switches\":%d,\"races\":%d,\"attempts\":%d,\
     \"wall_us\":%d}"
    (escape e.workload) (escape e.protection) (escape e.store)
    (escape e.outcome) e.status e.cycles e.instrs e.mem_ops
    e.instrumented_mem_ops e.store_accesses e.store_footprint e.heap_peak
    e.checksum e.checks_elided e.mem_ops_demoted e.threads e.ctx_switches
    e.races e.attempts e.wall_us

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\n\"schema\":\"%s\",\n\"target\":\"%s\",\n\"jobs\":%d,\n\"entries\":[\n"
       schema_id (escape t.target_name) t.jobs_used);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b (entry_to_json e))
    (entries t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ---------- parser ---------- *)

(* Minimal recursive-descent JSON reader covering the subset the emitter
   produces (plus arbitrary nesting, so a future schema bump still parses). *)

type json =
  | Jstr of string
  | Jint of int
  | Jlist of json list
  | Jobj of (string * json) list

exception Bad of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
         | Some '"' -> Buffer.add_char b '"'; advance ()
         | Some '\\' -> Buffer.add_char b '\\'; advance ()
         | Some 'n' -> Buffer.add_char b '\n'; advance ()
         | Some 't' -> Buffer.add_char b '\t'; advance ()
         | Some 'u' ->
           advance ();
           if !pos + 4 > n then fail "bad \\u escape";
           let code = int_of_string ("0x" ^ String.sub s !pos 4) in
           Buffer.add_char b (Char.chr (code land 0xff));
           pos := !pos + 4
         | _ -> fail "bad escape");
        loop ()
      | Some c -> Buffer.add_char b c; advance (); loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_int () =
    skip_ws ();
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let rec digits () =
      match peek () with
      | Some ('0' .. '9') -> advance (); digits ()
      | _ -> ()
    in
    digits ();
    if !pos = start then fail "expected integer";
    int_of_string (String.sub s start (!pos - start))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then (advance (); Jobj [])
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); members ((k, v) :: acc)
          | Some '}' -> advance (); List.rev ((k, v) :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Jobj (members [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then (advance (); Jlist [])
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        Jlist (elems [])
      end
    | Some ('-' | '0' .. '9') -> Jint (parse_int ())
    | _ -> fail "expected value"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let field name = function
  | Jobj kvs ->
    (match List.assoc_opt name kvs with
     | Some v -> v
     | None -> raise (Bad ("missing field " ^ name)))
  | _ -> raise (Bad "expected object")

let as_str = function Jstr s -> s | _ -> raise (Bad "expected string")
let as_int = function Jint i -> i | _ -> raise (Bad "expected int")
let as_list = function Jlist l -> l | _ -> raise (Bad "expected array")

let entry_of_json j =
  let str k = as_str (field k j) and int k = as_int (field k j) in
  { workload = str "workload"; protection = str "protection";
    store = str "store"; outcome = str "outcome"; status = int "status";
    cycles = int "cycles"; instrs = int "instrs"; mem_ops = int "mem_ops";
    instrumented_mem_ops = int "instrumented_mem_ops";
    store_accesses = int "store_accesses";
    store_footprint = int "store_footprint"; heap_peak = int "heap_peak";
    checksum = int "checksum"; checks_elided = int "checks_elided";
    mem_ops_demoted = int "mem_ops_demoted"; threads = int "threads";
    ctx_switches = int "ctx_switches"; races = int "races";
    attempts = int "attempts"; wall_us = int "wall_us" }

let of_json s =
  try
    let j = parse_json s in
    let schema = as_str (field "schema" j) in
    if schema <> schema_id then
      raise (Bad ("unknown schema " ^ schema));
    let t =
      create ~jobs:(as_int (field "jobs" j))
        ~target:(as_str (field "target" j)) ()
    in
    List.iter (fun e -> record t (entry_of_json e)) (as_list (field "entries" j));
    t
  with
  | Bad msg -> failwith ("Journal.of_json: " ^ msg)
  | Failure msg -> failwith ("Journal.of_json: " ^ msg)

(* ---------- comparison / reporting ---------- *)

let equal ?(ignore_wall = true) a b =
  let strip e = if ignore_wall then { e with wall_us = 0 } else e in
  a.target_name = b.target_name
  && List.map strip (entries a) = List.map strip (entries b)

let summary_line t =
  let es = entries t in
  let failed = List.length (List.filter (fun e -> e.status <> 0) es) in
  let cycles = List.fold_left (fun acc e -> acc + e.cycles) 0 es in
  let wall = List.fold_left (fun acc e -> acc + e.wall_us) 0 es in
  Printf.sprintf
    "[journal] %s: %d runs (%d failed), %d model cycles, %.1f ms wall, jobs=%d"
    t.target_name (List.length es) failed cycles
    (float_of_int wall /. 1000.) t.jobs_used

let write ?(dir = ".") t =
  let path = Filename.concat dir ("BENCH_" ^ t.target_name ^ ".json") in
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc;
  path
