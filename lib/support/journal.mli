(** Structured run journal for the benchmark harness.

    Every (workload x protection x store) execution is recorded as one
    [entry]; a whole bench target serializes to [BENCH_<target>.json] so
    the performance trajectory can be tracked machine-readably across
    commits. The cost model is deterministic, so two journals for the same
    target are equal modulo the [wall_us] field whatever [--jobs] was. *)

type entry = {
  workload : string;           (** workload name, e.g. ["400.perlbench"] *)
  protection : string;         (** [Pipeline.protection_name] *)
  store : string;              (** [Safestore.impl_name] *)
  outcome : string;            (** [Trap.outcome_to_string] *)
  status : int;                (** 0 iff the run ended in [Exit 0] *)
  cycles : int;
  instrs : int;
  mem_ops : int;
  instrumented_mem_ops : int;
  store_accesses : int;        (** safe-pointer-store get/set/clear ops *)
  store_footprint : int;
  heap_peak : int;
  checksum : int;
  checks_elided : int;         (** checks removed by static elision *)
  mem_ops_demoted : int;       (** accesses demoted by points-to refinement *)
  threads : int;               (** total threads, including main (>= 1) *)
  ctx_switches : int;          (** deterministic-scheduler context switches *)
  races : int;                 (** lockset-detector race reports *)
  attempts : int;              (** executions before this result (>= 1) *)
  wall_us : int;               (** wall-clock microseconds for this cell *)
}

type t

val create : ?jobs:int -> target:string -> unit -> t
val target : t -> string
val jobs : t -> int

(** Append an entry; thread-safe. *)
val record : t -> entry -> unit

(** Entries in the order they were recorded. *)
val entries : t -> entry list

(** Entries whose [status] is non-zero. *)
val failures : t -> entry list

(** Serialize to the [BENCH_*.json] schema (see EXPERIMENTS.md). *)
val to_json : t -> string

(** JSON string escaping, shared with the other emitters in the repo so
    every schema agrees on one dialect. *)
val escape : string -> string

(** Parse [to_json] output back. @raise Failure on malformed input. *)
val of_json : string -> t

(** Structural equality; [ignore_wall] (default true) zeroes the
    nondeterministic [wall_us] fields before comparing. *)
val equal : ?ignore_wall:bool -> t -> t -> bool

(** One-line human summary: entry count, failures, total cycles. *)
val summary_line : t -> string

(** Write [BENCH_<target>.json] under [dir] (default ["."]) and return
    the path. *)
val write : ?dir:string -> t -> string

(** Project the journal to one aggregate {!Runstore.record} (sums over
    the entries; [config] is the journal's target) for appending to the
    run-store. [zero_wall] drops the only nondeterministic field so the
    record's bytes are a pure function of the run; deterministic
    producers (e.g. `levee conc`) already record [wall_us = 0]. *)
val to_record :
  ?kind:string ->
  ?commit:string ->
  ?seed:int ->
  ?zero_wall:bool ->
  t ->
  Runstore.record
