(* Fixed-size Domain-based worker pool with deterministic result order.

   Tasks are erased to [unit -> bool] closures that write into their own
   result slot; the queue/counters are protected by one mutex. Workers
   never die on a task exception: the wrapper catches it into the slot.
   The boolean tells the worker whether to keep serving the queue —
   [false] means the task was abandoned by the watchdog and a replacement
   worker already exists, so this (previously stuck) domain retires.

   A batch is complete when its own [remaining] counter drops to zero, at
   which point the submitter is woken (or notices, when it is polling as
   the watchdog). Completion is per-batch, not pool-global, so a slot
   abandoned by the watchdog finishes the batch even though the stuck
   task is still running somewhere. *)

type failure =
  | Exn of exn
  | Timed_out of float

type 'a outcome = { result : ('a, failure) result; attempts : int }

type t = {
  size : int;
  m : Mutex.t;
  work_cv : Condition.t;            (* workers: queue non-empty or stop *)
  done_cv : Condition.t;            (* submitter: batch drained *)
  queue : (unit -> bool) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
  mutable abandoned_n : int;        (* timed-out tasks still running *)
  mutable in_inline_task : bool;    (* jobs<=1: inside an inline task *)
}

let jobs p = p.size

let default_jobs () = Domain.recommended_domain_count ()

let default_backoff k = 0.01 *. float_of_int (1 lsl (k - 1))

(* Which pool this domain is a worker of, for re-entrancy detection. *)
let current_pool : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let rec worker p =
  Mutex.lock p.m;
  while Queue.is_empty p.queue && not p.stop do
    Condition.wait p.work_cv p.m
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.m (* stop requested *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.m;
    if task () then worker p        (* never raises: see [make_task] *)
  end

let spawn_worker p =
  Domain.spawn (fun () ->
    Domain.DLS.set current_pool (Some p);
    worker p)

let create ~jobs =
  let size = max 1 jobs in
  let p =
    { size; m = Mutex.create (); work_cv = Condition.create ();
      done_cv = Condition.create (); queue = Queue.create ();
      stop = false; workers = []; abandoned_n = 0; in_inline_task = false }
  in
  if size > 1 then
    p.workers <- List.init size (fun _ -> spawn_worker p);
  p

let assert_not_reentrant p =
  let from_worker =
    match Domain.DLS.get current_pool with
    | Some q -> q == p
    | None -> false
  in
  if from_worker || p.in_inline_task then
    invalid_arg "Pool.run: re-entrant use from inside a pool task"

(* Execute one thunk with bounded, deterministic retry. Never raises. *)
let attempt ~retries ~backoff th =
  let rec go k =
    match th () with
    | v -> (Ok v, k)
    | exception e ->
      if k > retries then (Error (Exn e), k)
      else begin
        (try Unix.sleepf (backoff k) with _ -> ());
        go (k + 1)
      end
  in
  go 1

let run_guarded ?timeout ?(retries = 0) ?(backoff = default_backoff) p thunks =
  assert_not_reentrant p;
  let retries = max 0 retries in
  let n = List.length thunks in
  let slots = Array.make n None in
  if p.size <= 1 then
    (* Inline pool: sequential, in submission order. The watchdog needs
       worker domains, so [timeout] cannot preempt here and is ignored. *)
    List.iteri
      (fun i th ->
        p.in_inline_task <- true;
        let result, attempts =
          Fun.protect
            ~finally:(fun () -> p.in_inline_task <- false)
            (fun () -> attempt ~retries ~backoff th)
        in
        slots.(i) <- Some { result; attempts })
      thunks
  else begin
    let started = Array.make n 0.0 in   (* 0. = still queued *)
    let remaining = ref n in
    let make_task i th () =
      Mutex.lock p.m;
      if slots.(i) <> None then (Mutex.unlock p.m; true)
        (* timed out while still queued: the batch already reported it *)
      else begin
        started.(i) <- Unix.gettimeofday ();
        Mutex.unlock p.m;
        let result, attempts = attempt ~retries ~backoff th in
        Mutex.lock p.m;
        let keep =
          if slots.(i) = None then begin
            slots.(i) <- Some { result; attempts };
            decr remaining;
            if !remaining = 0 then Condition.broadcast p.done_cv;
            true
          end else begin
            (* Abandoned mid-run; a replacement worker took this one's
               place, so the domain retires once we return [false]. *)
            p.abandoned_n <- p.abandoned_n - 1;
            Condition.broadcast p.done_cv;
            false
          end
        in
        Mutex.unlock p.m;
        keep
      end
    in
    Mutex.lock p.m;
    List.iteri (fun i th -> Queue.push (make_task i th) p.queue) thunks;
    Condition.broadcast p.work_cv;
    (match timeout with
     | None ->
       while !remaining > 0 do Condition.wait p.done_cv p.m done
     | Some budget ->
       (* OCaml has no timed condition wait: the submitter doubles as the
          watchdog, polling for overdue tasks at a short interval. *)
       while !remaining > 0 do
         Mutex.unlock p.m;
         Unix.sleepf 0.002;
         Mutex.lock p.m;
         if !remaining > 0 then begin
           let now = Unix.gettimeofday () in
           for i = 0 to n - 1 do
             if slots.(i) = None && started.(i) > 0.0
                && now -. started.(i) > budget
             then begin
               slots.(i) <-
                 Some { result = Error (Timed_out (now -. started.(i)));
                        attempts = 1 };
               decr remaining;
               p.abandoned_n <- p.abandoned_n + 1;
               p.workers <- spawn_worker p :: p.workers
             end
           done;
           if !remaining = 0 then Condition.broadcast p.done_cv
         end
       done);
    Mutex.unlock p.m
  end;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) slots)

let run p thunks =
  List.map
    (fun o ->
      match o.result with
      | Ok v -> Ok v
      | Error (Exn e) -> Error e
      | Error (Timed_out _) -> assert false (* no timeout requested *))
    (run_guarded p thunks)

let map p f xs = run p (List.map (fun x () -> f x) xs)

let abandoned p =
  Mutex.lock p.m;
  let k = p.abandoned_n in
  Mutex.unlock p.m;
  k

let shutdown p =
  (* Give abandoned tasks a moment to drain so their domains terminate
     and every spawn is joinable; a domain still stuck after the grace
     period is leaked rather than hanging the caller forever. *)
  Mutex.lock p.m;
  let waited = ref 0.0 in
  while p.abandoned_n > 0 && !waited < 1.0 do
    Mutex.unlock p.m;
    Unix.sleepf 0.02;
    waited := !waited +. 0.02;
    Mutex.lock p.m
  done;
  p.stop <- true;
  Condition.broadcast p.work_cv;
  let ws = p.workers in
  p.workers <- [];
  let leak = p.abandoned_n > 0 in
  Mutex.unlock p.m;
  if not leak then List.iter Domain.join ws
