(* Fixed-size Domain-based worker pool with deterministic result order.

   Tasks are erased to [unit -> unit] closures that write into their own
   result slot; the queue/counters are protected by one mutex. Workers
   never die on a task exception: the wrapper catches it into the slot.
   A batch is complete when [outstanding] drops back to zero, at which
   point the submitter is woken. *)

type t = {
  size : int;
  m : Mutex.t;
  work_cv : Condition.t;            (* workers: queue non-empty or stop *)
  done_cv : Condition.t;            (* submitter: batch drained *)
  queue : (unit -> unit) Queue.t;
  mutable outstanding : int;        (* queued + running tasks *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs p = p.size

let default_jobs () = Domain.recommended_domain_count ()

let rec worker p =
  Mutex.lock p.m;
  while Queue.is_empty p.queue && not p.stop do
    Condition.wait p.work_cv p.m
  done;
  if Queue.is_empty p.queue then Mutex.unlock p.m (* stop requested *)
  else begin
    let task = Queue.pop p.queue in
    Mutex.unlock p.m;
    task ();                        (* never raises: see [slot_of] *)
    Mutex.lock p.m;
    p.outstanding <- p.outstanding - 1;
    if p.outstanding = 0 then Condition.broadcast p.done_cv;
    Mutex.unlock p.m;
    worker p
  end

let create ~jobs =
  let size = max 1 jobs in
  let p =
    { size; m = Mutex.create (); work_cv = Condition.create ();
      done_cv = Condition.create (); queue = Queue.create ();
      outstanding = 0; stop = false; workers = [] }
  in
  if size > 1 then
    p.workers <- List.init size (fun _ -> Domain.spawn (fun () -> worker p));
  p

let slot_of slots i thunk () =
  slots.(i) <- Some (try Ok (thunk ()) with e -> Error e)

let run p thunks =
  let n = List.length thunks in
  let slots = Array.make n None in
  if p.size <= 1 then
    List.iteri (fun i th -> slot_of slots i th ()) thunks
  else begin
    Mutex.lock p.m;
    List.iteri (fun i th -> Queue.push (slot_of slots i th) p.queue) thunks;
    p.outstanding <- p.outstanding + n;
    Condition.broadcast p.work_cv;
    while p.outstanding > 0 do
      Condition.wait p.done_cv p.m
    done;
    Mutex.unlock p.m
  end;
  Array.to_list
    (Array.map (function Some r -> r | None -> assert false) slots)

let map p f xs = run p (List.map (fun x () -> f x) xs)

let shutdown p =
  let ws =
    Mutex.lock p.m;
    p.stop <- true;
    Condition.broadcast p.work_cv;
    let ws = p.workers in
    p.workers <- [];
    Mutex.unlock p.m;
    ws
  in
  List.iter Domain.join ws
