(* Append-only run-store (see runstore.mli).

   One JSONL history file — RUNS.jsonl by default — where every harness
   (bench journals, the perf harness, fault campaigns, `levee conc`)
   appends exactly one summary record per run. A record is a single
   line, so appends from different invocations never interleave
   partially, the file is trivially diffable, and truncation corrupts at
   most the final line (which the loader reports precisely instead of
   crashing on). *)

module J = Jsonenc

type value = Int of int | Float of float | Str of string

type record = {
  schema : string;
  kind : string;
  commit : string;
  config : string;
  seed : int;
  wall_us : int;
  metrics : (string * value) list;
}

let envelope = "levee-history/1"
let default_path = "RUNS.jsonl"

let detect_commit () =
  match Sys.getenv_opt "LEVEE_COMMIT" with
  | Some c when c <> "" -> c
  | _ ->
    (try
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let make ~schema ~kind ?commit ~config ?(seed = 0) ?(wall_us = 0) metrics =
  let commit = match commit with Some c -> c | None -> detect_commit () in
  { schema; kind; commit; config; seed; wall_us; metrics }

let key r = (r.schema, r.commit, r.config, r.seed)

(* ---------- encoding ---------- *)

let value_json = function
  | Int i -> string_of_int i
  | Float f -> J.float_str f
  | Str s -> "\"" ^ J.escape s ^ "\""

let to_line r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"v\":\"%s\",\"schema\":\"%s\",\"kind\":\"%s\",\"commit\":\"%s\",\
        \"config\":\"%s\",\"seed\":%d,\"wall_us\":%d,\"metrics\":{"
       (J.escape envelope) (J.escape r.schema) (J.escape r.kind)
       (J.escape r.commit) (J.escape r.config) r.seed r.wall_us);
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%s" (J.escape k) (value_json v)))
    r.metrics;
  Buffer.add_string b "}}";
  Buffer.contents b

let of_line line =
  try
    let j = J.parse line in
    let str k = J.as_str (J.field k j) in
    let int k = J.as_int (J.field k j) in
    let v = str "v" in
    if v <> envelope then
      Error (Printf.sprintf "unknown record version %s (want %s)" v envelope)
    else begin
      let metrics =
        match J.field "metrics" j with
        | J.Jobj kvs ->
          List.map
            (fun (k, v) ->
              match v with
              | J.Jint i -> (k, Int i)
              | J.Jfloat f -> (k, Float f)
              | J.Jstr s -> (k, Str s)
              | _ ->
                raise
                  (J.Bad
                     (Printf.sprintf "metric %s: expected int, float or string"
                        k)))
            kvs
        | _ -> raise (J.Bad "metrics: expected object")
      in
      Ok
        { schema = str "schema"; kind = str "kind"; commit = str "commit";
          config = str "config"; seed = int "seed"; wall_us = int "wall_us";
          metrics }
    end
  with J.Bad msg -> Error ("malformed record: " ^ msg)

(* ---------- the store ---------- *)

let append ?(path = default_path) r =
  let oc = open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path in
  output_string oc (to_line r);
  output_char oc '\n';
  close_out oc

let load ?(path = default_path) () =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "%s: no such run store" path)
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (lineno + 1) acc
          | line ->
            (match of_line line with
             | Ok r -> go (lineno + 1) (r :: acc)
             | Error msg ->
               Error (Printf.sprintf "%s:%d: %s" path lineno msg))
        in
        go 1 [])
  end

let find rs spec =
  let n = List.length rs in
  let by_index i =
    if i >= 0 && i < n then Ok (List.nth rs i)
    else
      Error
        (Printf.sprintf "run %d out of range (store has %d run%s)" i n
           (if n = 1 then "" else "s"))
  in
  match spec with
  | "last" -> if n = 0 then Error "empty run store" else by_index (n - 1)
  | "prev" ->
    if n < 2 then Error "run store holds fewer than two runs"
    else by_index (n - 2)
  | s ->
    (match int_of_string_opt s with
     | Some i -> by_index (if i < 0 then n + i else i)
     | None ->
       (match List.filter (fun r -> r.config = s) rs with
        | [] -> Error (Printf.sprintf "no run with config %S" s)
        | l -> Ok (List.nth l (List.length l - 1))))

(* ---------- diffing ---------- *)

type delta = {
  field : string;
  va : value option;
  vb : value option;
  pct : float option;
}

let numeric = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Str _ -> None

let delta_pct va vb =
  match (va, vb) with
  | Some x, Some y ->
    (match (numeric x, numeric y) with
     | Some fx, Some fy ->
       let den =
         if fx <> 0.0 then abs_float fx
         else if fy <> 0.0 then abs_float fy
         else 1.0
       in
       Some ((fy -. fx) /. den *. 100.0)
     | _ -> None)
  | _ -> None

let diff a b =
  let an = List.map fst a.metrics in
  let bn = List.map fst b.metrics in
  let names = an @ List.filter (fun k -> not (List.mem k an)) bn in
  let row field va vb = { field; va; vb; pct = delta_pct va vb } in
  row "wall_us" (Some (Int a.wall_us)) (Some (Int b.wall_us))
  :: List.map
       (fun k ->
         row k (List.assoc_opt k a.metrics) (List.assoc_opt k b.metrics))
       names

let value_display = function
  | Int i -> string_of_int i
  | Float f -> J.float_str f
  | Str s -> s

let signed_pct p =
  let s = J.float_str p in
  if String.length s > 0 && s.[0] = '-' then s ^ "%" else "+" ^ s ^ "%"

let describe r =
  Printf.sprintf "%s/%s seed %d commit %s (%s)" r.kind r.config r.seed
    r.commit r.schema

let diff_human a b =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "a: %s\n" (describe a));
  Buffer.add_string buf (Printf.sprintf "b: %s\n" (describe b));
  Buffer.add_string buf
    (Printf.sprintf "  %-22s %14s %14s %10s\n" "field" "a" "b" "delta");
  List.iter
    (fun d ->
      let v = function Some x -> value_display x | None -> "-" in
      let pct =
        match d.pct with Some p -> signed_pct p | None -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-22s %14s %14s %10s\n" d.field (v d.va) (v d.vb)
           pct))
    (diff a b);
  Buffer.contents buf

(* ---------- the regression gate ---------- *)

let default_tolerances =
  [ ("cycles", 5.0); ("sim_cycles", 5.0); ("wall_us", 50.0);
    ("wall_us_total", 50.0);
    (* Static-analysis and cross-validation counts are pure functions of
       the analyzed source, so they gate at exactly 0%: any drift is a
       real behaviour change to re-baseline deliberately, never noise. *)
    ("functions", 0.0); ("findings_errors", 0.0);
    ("findings_warnings", 0.0); ("findings_info", 0.0);
    ("races_static", 0.0); ("sep_certified", 0.0); ("sep_unproven", 0.0);
    ("sep_replay_ok", 0.0); ("subjects", 0.0); ("cells", 0.0);
    ("static_races", 0.0); ("dynamic_race_cells", 0.0); ("uncovered", 0.0);
    ("invariants_ok", 0.0);
    (* Serve records (levee-serve/1): latency percentiles are simulated
       cycles, so they may drift with deliberate cost-model changes —
       gate them like cycles, at 5%. The terminal accounting and fault
       bookkeeping are exact, so those gate at 0%. *)
    ("p50_cycles", 5.0); ("p99_cycles", 5.0); ("p999_cycles", 5.0);
    ("arrivals", 0.0); ("served", 0.0); ("shed", 0.0); ("timed_out", 0.0);
    ("retried", 0.0); ("killed_workers", 0.0); ("breaker_trips", 0.0);
    (* Fault-campaign records (levee-faults/3): the run classification and
       the per-backend hijack counts over the protection spectrum are
       exact functions of the campaign seed, so any drift is a behaviour
       change — gate at 0%. Aggregate simulated cycles gate like every
       other cycle metric, at 5% (the "cycles" entry above covers them).
       The perf-harness simulated totals (levee-bench-perf/3) likewise
       ride the existing sim_cycles/sim_instrs entries. *)
    ("runs", 0.0); ("hijacked", 0.0); ("trapped", 0.0); ("crash", 0.0);
    ("masked", 0.0); ("benign", 0.0); ("fuel_exhausted", 0.0);
    ("hijacked_vanilla", 0.0); ("hijacked_cfi", 0.0);
    ("hijacked_cfi_type", 0.0); ("hijacked_cpi", 0.0);
    ("hijacked_cpi_crypt", 0.0);
    ("sim_instrs", 5.0) ]

type violation = {
  vfield : string;
  vbase : float;
  vnew : float;
  vpct : float;
  vtol : float;
}

let gate ?(tolerances = default_tolerances) a b =
  List.filter_map
    (fun d ->
      match (List.assoc_opt d.field tolerances, d.pct) with
      | Some tol, Some pct when abs_float pct > tol ->
        let f = function
          | Some v -> (match numeric v with Some x -> x | None -> 0.0)
          | None -> 0.0
        in
        Some
          { vfield = d.field; vbase = f d.va; vnew = f d.vb; vpct = pct;
            vtol = tol }
      | _ -> None)
    (diff a b)

let num_display v =
  if Float.is_integer v && abs_float v < 1e15 then
    Printf.sprintf "%.0f" v
  else J.float_str v

let gate_human violations =
  match violations with
  | [] -> "gate: OK (all gated deltas within tolerance)\n"
  | vs ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf "gate: FAIL\n";
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf "  %s: %s -> %s (%s exceeds tolerance %s%%)\n"
             v.vfield (num_display v.vbase) (num_display v.vnew)
             (signed_pct v.vpct) (J.float_str v.vtol)))
      vs;
    Buffer.contents buf

(* ---------- trajectory listing ---------- *)

let list_human rs =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "  %3s  %-7s %-24s %-10s %5s %12s %12s  %s\n" "#" "kind"
       "config" "commit" "seed" "cycles" "wall_us" "schema");
  List.iteri
    (fun i r ->
      let cycles =
        match
          ( List.assoc_opt "cycles" r.metrics,
            List.assoc_opt "sim_cycles" r.metrics )
        with
        | Some v, _ | None, Some v -> value_display v
        | None, None -> "-"
      in
      Buffer.add_string buf
        (Printf.sprintf "  %3d  %-7s %-24s %-10s %5d %12s %12d  %s\n" i
           r.kind r.config r.commit r.seed cycles r.wall_us r.schema))
    rs;
  Buffer.contents buf
