(** Small statistics helpers used by the benchmark harness to summarize
    per-benchmark overheads exactly the way the paper's Table 1 does
    (average / median / maximum over a set of benchmarks). *)

let mean = function
  | [] -> 0.0
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let median = function
  | [] -> 0.0
  | l ->
    let a = Array.of_list l in
    Array.sort compare a;
    let n = Array.length a in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let maximum = function
  | [] -> 0.0
  | x :: rest -> List.fold_left max x rest

let minimum = function
  | [] -> 0.0
  | x :: rest -> List.fold_left min x rest

(** Geometric mean of ratios; inputs must be positive. *)
let geomean = function
  | [] -> 1.0
  | l ->
    let s = List.fold_left (fun acc x -> acc +. log x) 0.0 l in
    exp (s /. float_of_int (List.length l))

(** [overhead_pct ~base ~instrumented] is the percent slowdown of
    [instrumented] relative to [base]; negative means a speedup. *)
let overhead_pct ~base ~instrumented =
  if base = 0 then 0.0
  else (float_of_int instrumented -. float_of_int base) /. float_of_int base *. 100.0

(** [pct x] formats a percentage with one decimal, e.g. ["8.4%"]. *)
let pct x = Printf.sprintf "%.1f%%" x
