(** Statistics helpers used by the benchmark harness to summarize
    per-benchmark overheads the way the paper's Table 1 does. *)

val mean : float list -> float
val median : float list -> float
val maximum : float list -> float
val minimum : float list -> float

(** Geometric mean of positive ratios. *)
val geomean : float list -> float

(** Percent slowdown of [instrumented] relative to [base]; negative means
    a speedup. *)
val overhead_pct : base:int -> instrumented:int -> float

(** Format a percentage with one decimal, e.g. ["8.4%"]. *)
val pct : float -> string
