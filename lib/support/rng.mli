(** Deterministic pseudo-random number generation (SplitMix64).

    All randomized components of the reproduction draw from this generator
    so every run is bit-for-bit reproducible. *)

type t

val create : int -> t
val copy : t -> t

(** [split t] derives an independent child generator and advances [t] by
    one step. Split streams are deterministic (same parent seed and split
    order ⇒ same children) and pairwise decorrelated from each other and
    from the parent's later outputs. *)
val split : t -> t

val next_int64 : t -> int64

(** Uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** Uniform in [lo, hi] inclusive. *)
val range : t -> int -> int -> int

val bool : t -> bool
val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
val shuffle : t -> 'a array -> unit
