(** A fixed-size Domain-based worker pool.

    The benchmark harness fans independent (workload x protection x store)
    cells out across OCaml 5 domains. The pool guarantees:

    - results come back ordered by submission index, regardless of which
      worker finished first, so a parallel run is bit-for-bit comparable
      with a sequential one;
    - a raising task is captured as [Error exn] in its own slot and does
      not kill the worker or poison the rest of the batch;
    - [jobs = 1] executes every task inline in the submitting domain, in
      submission order, spawning no domains at all — the sequential
      baseline path. *)

type t

(** [create ~jobs] spawns [jobs] worker domains when [jobs > 1];
    [jobs <= 1] creates an inline pool that runs tasks in the caller and
    spawns nothing. *)
val create : jobs:int -> t

(** The pool's configured size (>= 1). *)
val jobs : t -> int

(** [Domain.recommended_domain_count ()], the default for [--jobs]. *)
val default_jobs : unit -> int

(** [run p thunks] executes all thunks and returns their outcomes in
    submission order. Blocks until the whole batch is done. *)
val run : t -> (unit -> 'a) list -> ('a, exn) result list

(** [map p f xs] = [run p (List.map (fun x () -> f x) xs)]. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** Stop the workers and join their domains. The pool must not be used
    afterwards; idempotent. *)
val shutdown : t -> unit
