(** A fixed-size Domain-based worker pool.

    The benchmark harness fans independent (workload x protection x store)
    cells out across OCaml 5 domains. The pool guarantees:

    - results come back ordered by submission index, regardless of which
      worker finished first, so a parallel run is bit-for-bit comparable
      with a sequential one;
    - a raising task is captured as an [Error] in its own slot and does
      not kill the worker or poison the rest of the batch;
    - [jobs = 1] executes every task inline in the submitting domain, in
      submission order, spawning no domains at all — the sequential
      baseline path;
    - a stuck task cannot hang a batch: [run_guarded ~timeout] abandons
      it and reports [Timed_out] while sibling results are kept;
    - calling [run] from inside a pool task is detected and rejected with
      [Invalid_argument] instead of deadlocking the pool. *)

type t

(** Why a task produced no value. *)
type failure =
  | Exn of exn          (** last exception, after all retry attempts *)
  | Timed_out of float  (** abandoned by the watchdog after this many s *)

(** One task's result plus how many executions it took (>= 1). *)
type 'a outcome = { result : ('a, failure) result; attempts : int }

(** [create ~jobs] spawns [jobs] worker domains when [jobs > 1];
    [jobs <= 1] creates an inline pool that runs tasks in the caller and
    spawns nothing. *)
val create : jobs:int -> t

(** The pool's configured size (>= 1). *)
val jobs : t -> int

(** [Domain.recommended_domain_count ()], the default for [--jobs]. *)
val default_jobs : unit -> int

(** Deterministic exponential backoff: [default_backoff k] seconds are
    slept before retry [k] (1-based), doubling each time. No jitter, so a
    retried batch replays identically. *)
val default_backoff : int -> float

(** [run_guarded p thunks] executes all thunks and returns their outcomes
    in submission order. Blocks until every slot is decided.

    [timeout] is a per-task wall-clock budget in seconds, measured from
    the moment the task starts executing (it covers all retry attempts).
    An over-budget task is abandoned: its slot becomes [Timed_out] and a
    replacement worker is spawned so pool capacity is preserved; the
    abandoned domain is left to finish (OCaml domains cannot be killed)
    and is not joined by [shutdown] if still running. The watchdog needs
    worker domains, so an inline ([jobs <= 1]) pool ignores [timeout].

    [retries] (default 0) is the number of extra attempts after a raising
    execution; [backoff] (default {!default_backoff}) gives the sleep
    before each retry. [attempts] in the outcome counts executions.

    @raise Invalid_argument when called from inside a task of [p]. *)
val run_guarded :
  ?timeout:float ->
  ?retries:int ->
  ?backoff:(int -> float) ->
  t -> (unit -> 'a) list -> 'a outcome list

(** [run p thunks] = {!run_guarded} with no timeout and no retries,
    flattened to the classic result list.

    @raise Invalid_argument when called from inside a task of [p]. *)
val run : t -> (unit -> 'a) list -> ('a, exn) result list

(** [map p f xs] = [run p (List.map (fun x () -> f x) xs)]. *)
val map : t -> ('a -> 'b) -> 'a list -> ('b, exn) result list

(** Number of timed-out tasks that are still executing in abandoned
    worker domains. *)
val abandoned : t -> int

(** Stop the workers and join their domains. Waits briefly for abandoned
    tasks to drain; if one is still stuck, its domain is leaked rather
    than hanging the caller. The pool must not be used afterwards;
    idempotent. *)
val shutdown : t -> unit
