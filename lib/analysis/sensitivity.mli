(** Type-based sensitivity classification (paper Section 3.2.1, Fig. 7). *)

module Ty = Levee_ir.Ty

type ctx

(** [create tenv ~annotated] builds a classification context;
    [annotated] lists programmer-marked sensitive struct names. *)
val create : Ty.env -> annotated:string list -> ctx

(** The [sensitive] criterion of Fig. 7: function pointers, pointers to
    sensitive types, pointers to composites with a sensitive member, and
    universal pointers. *)
val is_sensitive : ctx -> Ty.t -> bool

(** CPS's restricted criterion: code pointers (and universal pointers,
    which may hold code pointers at runtime) only. *)
val is_cps_sensitive : ctx -> Ty.t -> bool

(** Must a dereference *through* a pointer to [ty] be safety-checked?
    True when [Ptr ty] is itself sensitive. *)
val deref_needs_check : ctx -> Ty.t -> bool
