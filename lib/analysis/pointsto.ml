(** Flow-insensitive, field-insensitive Andersen-style points-to analysis
    over Levee IR, interprocedural via a call graph over direct calls and
    type-compatible indirect-call targets.

    The abstract objects are allocation sites (globals, allocas, malloc
    sites) plus two pseudo-objects: [O_code], standing for every code
    address, and [O_unknown], standing for memory the analysis cannot
    model (int-to-pointer laundering, unresolved calls, parameters of
    address-taken functions). Inclusion constraints are solved to a
    fixpoint, then a transitive [reaches_code] closure marks every object
    whose contents may — through any chain of loads — yield a code
    pointer.

    Consumers: the sensitivity refinement ([refine_cpi]/[refine_cps])
    demotes accesses the type rule over-approximates as sensitive but
    whose points-to sets provably never reach a code pointer, and the
    [Diag] lint front end reports the classification. Everything here is
    deliberately monotone and conservative: imprecision only leaves extra
    instrumentation in place, never removes protection from a pointer
    that could carry a code pointer. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

type obj =
  | O_global of string
  | O_alloca of string * int (* function, alloca dst register *)
  | O_malloc of string * int * int (* function, block, instr index *)
  | O_fun of string (* the code address of one named function; always
                       seeded alongside [O_code] so every existing
                       reaches/demotion answer is unchanged — the named
                       object only adds precision for cfi-type *)
  | O_code (* any code address *)
  | O_unknown (* memory the analysis cannot model *)

module ISet = Set.Make (Int)

(* Points-to graph nodes: virtual registers, object contents (one cell
   per object — field-insensitive), function return values, and one
   synthetic node per distinct non-register operand so that [Glob]/[Fun]
   operands can seed base sets uniformly. *)
type node =
  | N_reg of string * int
  | N_obj of int
  | N_ret of string
  | N_op of I.operand

(* Inclusion constraints. [C_load]/[C_store]/[C_contents]/[C_store_obj]
   are the "complex" constraints re-expanded every round against the
   current solution. *)
type constr =
  | C_copy of int * int (* pts(src) ⊆ pts(dst) *)
  | C_load of int * int (* addr node, dst node *)
  | C_store of int * int (* value node, addr node *)
  | C_contents of int * int (* memcpy-style: dst addr node, src addr node *)
  | C_store_obj of int * int (* object id, addr node *)

type t = {
  prog : Prog.t;
  objs : obj array;
  obj_ids : (obj, int) Hashtbl.t;
  node_ids : (node, int) Hashtbl.t;
  obj_node : int array; (* object id -> node id of its contents *)
  pts : ISet.t array; (* node id -> points-to set (object ids) *)
  reaches : bool array; (* object id -> contents may reach a code pointer *)
  hazard : bool array; (* object id -> moved by memcpy/strcpy/setjmp *)
  code_id : int;
  unknown_id : int;
}

let fn_ty (g : Prog.func) =
  Ty.Fn (List.map snd g.Prog.params, g.Prog.ret_ty)

let analyze (prog : Prog.t) : t =
  ignore (Prog.compute_address_taken prog);
  let obj_ids : (obj, int) Hashtbl.t = Hashtbl.create 64 in
  let objs_rev = ref [] in
  let nobjs = ref 0 in
  let obj_id o =
    match Hashtbl.find_opt obj_ids o with
    | Some i -> i
    | None ->
      let i = !nobjs in
      incr nobjs;
      Hashtbl.replace obj_ids o i;
      objs_rev := o :: !objs_rev;
      i
  in
  let code_id = obj_id O_code in
  let unknown_id = obj_id O_unknown in
  let node_ids : (node, int) Hashtbl.t = Hashtbl.create 256 in
  let nnodes = ref 0 in
  let node_id n =
    match Hashtbl.find_opt node_ids n with
    | Some i -> i
    | None ->
      let i = !nnodes in
      incr nnodes;
      Hashtbl.replace node_ids n i;
      i
  in
  let base : (int, ISet.t ref) Hashtbl.t = Hashtbl.create 256 in
  let add_base n o =
    let r =
      match Hashtbl.find_opt base n with
      | Some r -> r
      | None ->
        let r = ref ISet.empty in
        Hashtbl.replace base n r;
        r
    in
    r := ISet.add o !r
  in
  let constrs = ref [] in
  let add_c c = constrs := c :: !constrs in
  let op_node fname (o : I.operand) =
    match o with
    | I.Reg r -> node_id (N_reg (fname, r))
    | I.Glob g ->
      let n = node_id (N_op o) in
      add_base n (obj_id (O_global g));
      n
    | I.Fun f ->
      let n = node_id (N_op o) in
      add_base n code_id;
      add_base n (obj_id (O_fun f));
      n
    | I.Imm _ | I.Nullp -> node_id (N_op o)
  in
  (* Global initializers: code addresses and global addresses stored in
     static data are contents facts. *)
  List.iter
    (fun (g : Prog.global) ->
      let oid = obj_id (O_global g.Prog.gname) in
      Array.iter
        (fun cell ->
          match cell with
          | Prog.Cint _ -> ()
          | Prog.Cfun f ->
            add_base (node_id (N_obj oid)) code_id;
            add_base (node_id (N_obj oid)) (obj_id (O_fun f))
          | Prog.Cglob (g2, _) ->
            add_base (node_id (N_obj oid)) (obj_id (O_global g2)))
        g.Prog.init)
    prog.Prog.globals;
  (* Address-taken functions may be entered from call sites the call
     graph cannot see; their parameters are unknown. *)
  let targets = ref [] in
  Prog.iter_funcs prog (fun fn ->
      if fn.Prog.address_taken then begin
        targets := fn :: !targets;
        List.iteri
          (fun i (_ : string * Ty.t) ->
            add_base (node_id (N_reg (fn.Prog.fname, i))) unknown_id)
          fn.Prog.params
      end);
  let targets = List.rev !targets in
  let hazard_args = ref [] in
  Prog.iter_funcs prog (fun fn ->
      let fname = fn.Prog.fname in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx (i : I.instr) ->
              match i with
              | I.Alloca { dst; _ } ->
                add_base
                  (node_id (N_reg (fname, dst)))
                  (obj_id (O_alloca (fname, dst)))
              | I.Bin { dst; l; r; _ } ->
                let d = node_id (N_reg (fname, dst)) in
                add_c (C_copy (op_node fname l, d));
                add_c (C_copy (op_node fname r, d))
              | I.Cmp _ -> ()
              | I.Load { dst; addr; _ } ->
                add_c (C_load (op_node fname addr, node_id (N_reg (fname, dst))))
              | I.Store { v; addr; _ } ->
                add_c (C_store (op_node fname v, op_node fname addr))
              | I.Gep { dst; base = bs; _ } ->
                add_c (C_copy (op_node fname bs, node_id (N_reg (fname, dst))))
              | I.Cast { dst; kind; v; _ } ->
                let d = node_id (N_reg (fname, dst)) in
                add_c (C_copy (op_node fname v, d));
                (match kind with
                 | I.IntToPtr -> add_base d unknown_id
                 | I.Bitcast | I.PtrToInt -> ())
              | I.Call { dst; callee; args; fty; _ } ->
                let link (g : Prog.func) =
                  let nparams = List.length g.Prog.params in
                  List.iteri
                    (fun k a ->
                      if k < nparams then
                        add_c
                          (C_copy
                             (op_node fname a, node_id (N_reg (g.Prog.fname, k)))))
                    args;
                  match dst with
                  | Some d ->
                    add_c
                      (C_copy
                         (node_id (N_ret g.Prog.fname), node_id (N_reg (fname, d))))
                  | None -> ()
                in
                let unresolved () =
                  match dst with
                  | Some d -> add_base (node_id (N_reg (fname, d))) unknown_id
                  | None -> ()
                in
                (match callee with
                 | I.Direct f ->
                   if Prog.has_func prog f then link (Prog.find_func prog f)
                   else unresolved ()
                 | I.Indirect _ ->
                   let compat =
                     List.filter (fun g -> Ty.equal fty (fn_ty g)) targets
                   in
                   let compat =
                     if compat = [] then
                       List.filter
                         (fun (g : Prog.func) ->
                           List.length g.Prog.params = List.length args)
                         targets
                     else compat
                   in
                   if compat = [] then unresolved ()
                   else List.iter link compat)
              | I.Intrin { dst; op; args } ->
                (match op, args with
                 | I.I_malloc, _ ->
                   (match dst with
                    | Some d ->
                      add_base
                        (node_id (N_reg (fname, d)))
                        (obj_id (O_malloc (fname, b.Prog.bid, idx)))
                    | None -> ())
                 | (I.I_memcpy | I.I_cpi_memcpy | I.I_strcpy), d :: s :: _ ->
                   add_c (C_contents (op_node fname d, op_node fname s));
                   hazard_args := (fname, d) :: (fname, s) :: !hazard_args
                 | (I.I_setjmp | I.I_longjmp), bufp :: _ ->
                   (* a jmp_buf stores a code (return) address *)
                   add_c (C_store_obj (code_id, op_node fname bufp));
                   hazard_args := (fname, bufp) :: !hazard_args
                 | I.I_thread_spawn, fp :: arg :: _ ->
                   (* the spawned function is an indirect-call target and
                      receives [arg] as its first parameter *)
                   hazard_args := (fname, fp) :: (fname, arg) :: !hazard_args;
                   (match fp with
                    | I.Fun f when Prog.has_func prog f ->
                      let g = Prog.find_func prog f in
                      if g.Prog.params <> [] then
                        add_c
                          (C_copy
                             (op_node fname arg,
                              node_id (N_reg (g.Prog.fname, 0))))
                    | _ -> ())
                 | I.I_atomic_add, p :: _ ->
                   hazard_args := (fname, p) :: !hazard_args
                 | _ -> ()))
            b.Prog.instrs;
          match b.Prog.term with
          | I.Ret (Some o) ->
            add_c (C_copy (op_node fname o, node_id (N_ret fname)))
          | I.Ret None | I.Br _ | I.Jmp _ | I.Switch _ | I.Unreachable -> ())
        fn.Prog.blocks);
  let objs = Array.of_list (List.rev !objs_rev) in
  let obj_node = Array.init (Array.length objs) (fun i -> node_id (N_obj i)) in
  (* loading through unmodelled memory yields unmodelled pointers *)
  add_base obj_node.(unknown_id) unknown_id;
  let n = !nnodes in
  let pts = Array.make (max n 1) ISet.empty in
  Hashtbl.iter (fun nid r -> pts.(nid) <- !r) base;
  let constrs = Array.of_list (List.rev !constrs) in
  let changed = ref true in
  let union src dst =
    if not (ISet.subset pts.(src) pts.(dst)) then begin
      pts.(dst) <- ISet.union pts.(dst) pts.(src);
      changed := true
    end
  in
  let iters = ref 0 in
  while !changed && !iters < 10_000 do
    changed := false;
    incr iters;
    Array.iter
      (fun c ->
        match c with
        | C_copy (s, d) -> union s d
        | C_load (a, d) -> ISet.iter (fun o -> union obj_node.(o) d) pts.(a)
        | C_store (v, a) -> ISet.iter (fun o -> union v obj_node.(o)) pts.(a)
        | C_contents (da, sa) ->
          ISet.iter
            (fun od ->
              ISet.iter (fun os -> union obj_node.(os) obj_node.(od)) pts.(sa))
            pts.(da)
        | C_store_obj (o, a) ->
          ISet.iter
            (fun od ->
              if not (ISet.mem o pts.(obj_node.(od))) then begin
                pts.(obj_node.(od)) <- ISet.add o pts.(obj_node.(od));
                changed := true
              end)
            pts.(a))
      constrs
  done;
  (* Transitive closure: an object reaches code when its contents can,
     through any chain of loads, yield a code pointer (or unmodelled
     memory, which must be assumed to). *)
  let nobj = Array.length objs in
  let reaches = Array.make nobj false in
  reaches.(code_id) <- true;
  reaches.(unknown_id) <- true;
  (* Named function objects ARE code: seed them like [O_code] so the
     closure (and every demotion decision downstream) is unchanged. *)
  Array.iteri
    (fun i o -> match o with O_fun _ -> reaches.(i) <- true | _ -> ())
    objs;
  let rchanged = ref true in
  while !rchanged do
    rchanged := false;
    for o = 0 to nobj - 1 do
      if (not reaches.(o)) && ISet.exists (fun o' -> reaches.(o')) pts.(obj_node.(o))
      then begin
        reaches.(o) <- true;
        rchanged := true
      end
    done
  done;
  (* Objects whose safe-store entries may be moved wholesale (memcpy and
     friends, jmp_bufs): never demote these — the type-aware intrinsic
     variants must keep seeing consistent routing. *)
  let hazard = Array.make nobj false in
  let t =
    { prog; objs; obj_ids; node_ids; obj_node; pts; reaches; hazard; code_id;
      unknown_id }
  in
  List.iter
    (fun (fname, arg) ->
      match arg with
      | I.Reg r ->
        (match Hashtbl.find_opt node_ids (N_reg (fname, r)) with
         | Some nid -> ISet.iter (fun o -> hazard.(o) <- true) pts.(nid)
         | None -> ())
      | I.Glob g ->
        (match Hashtbl.find_opt obj_ids (O_global g) with
         | Some o -> hazard.(o) <- true
         | None -> ())
      | I.Imm _ | I.Fun _ | I.Nullp -> ())
    !hazard_args;
  t

(* ---------- queries ---------- *)

let pts_ids t ~fname (o : I.operand) : ISet.t =
  match o with
  | I.Reg r ->
    (match Hashtbl.find_opt t.node_ids (N_reg (fname, r)) with
     | Some nid -> t.pts.(nid)
     | None -> ISet.empty)
  | I.Glob g ->
    (match Hashtbl.find_opt t.obj_ids (O_global g) with
     | Some i -> ISet.singleton i
     | None -> ISet.empty)
  | I.Fun _ -> ISet.singleton t.code_id
  | I.Imm _ | I.Nullp -> ISet.empty

let points_to t ~fname o : obj list =
  List.map (fun i -> t.objs.(i)) (ISet.elements (pts_ids t ~fname o))

let reaches_code t o =
  match Hashtbl.find_opt t.obj_ids o with
  | Some i -> t.reaches.(i)
  | None -> true

(* May the *memory addressed by* [o] (transitively) hold a code pointer?
   An empty points-to set means the address is unmodelled: assume yes. *)
let addr_may_reach_code t ~fname o =
  let s = pts_ids t ~fname o in
  ISet.is_empty s || ISet.exists (fun i -> t.reaches.(i)) s

(* May the *value* [o] itself be a code pointer? *)
let value_may_be_code t ~fname o =
  match o with
  | I.Fun _ -> true
  | _ ->
    ISet.exists
      (fun i -> i = t.code_id || i = t.unknown_id)
      (pts_ids t ~fname o)

let obj_to_string = function
  | O_global g -> Printf.sprintf "global:%s" g
  | O_alloca (f, r) -> Printf.sprintf "alloca:%s/r%d" f r
  | O_malloc (f, b, i) -> Printf.sprintf "malloc:%s/b%d.%d" f b i
  | O_fun f -> Printf.sprintf "fun:%s" f
  | O_code -> "<code>"
  | O_unknown -> "<unknown>"

(** Possible *named-function* targets of an indirect-call operand, read
    off the Andersen solution: [Some names] (sorted, deduplicated) when
    the operand's code sources are all named functions; [None] when the
    set is unmodelled (empty or containing [O_unknown]) or carries code
    provenance with no name (e.g. a setjmp-saved resume address). *)
let callee_targets t ~fname o : string list option =
  let s = pts_ids t ~fname o in
  if ISet.is_empty s || ISet.mem t.unknown_id s then None
  else
    let names =
      ISet.fold
        (fun i acc -> match t.objs.(i) with O_fun f -> f :: acc | _ -> acc)
        s []
    in
    if names = [] then None else Some (List.sort_uniq compare names)

(* ---------- sensitivity refinement ---------- *)

(* One memory access, as the consistency fixpoint sees it. *)
type acc = {
  ac_fname : string;
  ac_pos : int * int;
  ac_load : bool;
  ac_ty : Ty.t;
  ac_addr : I.operand;
  ac_dst : int; (* load destination register, -1 for stores *)
}

let collect_accesses prog =
  let accs = ref [] in
  Prog.iter_funcs prog (fun fn ->
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx (i : I.instr) ->
              match i with
              | I.Load { dst; ty; addr; _ } ->
                accs :=
                  { ac_fname = fn.Prog.fname; ac_pos = (b.Prog.bid, idx);
                    ac_load = true; ac_ty = ty; ac_addr = addr; ac_dst = dst }
                  :: !accs
              | I.Store { ty; addr; _ } ->
                accs :=
                  { ac_fname = fn.Prog.fname; ac_pos = (b.Prog.bid, idx);
                    ac_load = false; ac_ty = ty; ac_addr = addr; ac_dst = -1 }
                  :: !accs
              | I.Alloca _ | I.Bin _ | I.Cmp _ | I.Gep _ | I.Cast _ | I.Call _
              | I.Intrin _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  List.rev !accs

(* Intrinsics through which a value loaded from a demoted (plain) object
   may flow without observable difference: they consume the value as
   data/string/size and never interact with per-pointer metadata. *)
let audit_ok_intrin (op : I.intrin) =
  match op with
  | I.I_strlen | I.I_strcmp | I.I_print_int | I.I_print_str | I.I_checksum
  | I.I_free | I.I_exit | I.I_abort | I.I_malloc | I.I_read_int
  | I.I_read_input | I.I_memset | I.I_cpi_memset -> true
  | I.I_memcpy | I.I_cpi_memcpy | I.I_strcpy | I.I_setjmp | I.I_longjmp
  | I.I_system | I.I_thread_spawn | I.I_thread_join | I.I_mutex_lock
  | I.I_mutex_unlock | I.I_atomic_add -> false

let refine_cpi t ~ctx ~keep ~skip : (string * int * int, unit) Hashtbl.t =
  let prog = t.prog in
  let accs = collect_accesses prog in
  let nobj = Array.length t.objs in
  let in_c = Array.make nobj false in
  Array.iteri
    (fun o obj ->
      in_c.(o) <-
        (match obj with
         | O_code | O_unknown | O_fun _ -> false
         | O_global _ | O_alloca _ | O_malloc _ ->
           (not t.reaches.(o)) && not t.hazard.(o)))
    t.objs;
  let uds : (string, Usedef.t) Hashtbl.t = Hashtbl.create 16 in
  let ud_of fname =
    match Hashtbl.find_opt uds fname with
    | Some ud -> ud
    | None ->
      let ud = Usedef.build (Prog.find_func prog fname) in
      Hashtbl.replace uds fname ud;
      ud
  in
  let sub_c s = (not (ISet.is_empty s)) && ISet.for_all (fun o -> in_c.(o)) s in
  let acc_pts a = pts_ids t ~fname:a.ac_fname a.ac_addr in
  let sensitive a = Sensitivity.is_sensitive ctx a.ac_ty in
  (* Demoting a load means the loaded register carries no metadata; that
     is only invisible when every (transitive) use is metadata-blind or
     itself part of the demoted family. *)
  let rec audit_uses ud fname ~depth reg =
    depth > 0
    && List.for_all
         (fun (u : Usedef.use) ->
           let pos_addr (p : Usedef.pos) =
             let fn = (ud : Usedef.t).Usedef.fn in
             match fn.Prog.blocks.(p.Usedef.block).Prog.instrs.(p.Usedef.idx)
             with
             | I.Load { ty; addr; _ } | I.Store { ty; addr; _ } -> Some (ty, addr)
             | I.Alloca _ | I.Bin _ | I.Cmp _ | I.Gep _ | I.Cast _ | I.Call _
             | I.Intrin _ -> None
           in
           let deref_ok p =
             match pos_addr p with
             | None -> false
             | Some (ty, addr) ->
               (match ty with
                | Ty.Char -> sub_c (pts_ids t ~fname addr)
                | _ when Sensitivity.is_sensitive ctx ty ->
                  sub_c (pts_ids t ~fname addr)
                | _ -> not (Sensitivity.deref_needs_check ctx ty))
           in
           match u with
           | Usedef.Cmp_op _ | Usedef.Branch_cond | Usedef.Gep_index _ -> true
           | Usedef.Bin_op (_, d) | Usedef.Gep_base (_, d)
           | Usedef.Cast_src (_, d, _) ->
             audit_uses ud fname ~depth:(depth - 1) d
           | Usedef.Load_addr (p, _) | Usedef.Store_addr (p, _) -> deref_ok p
           | Usedef.Store_val (p, _) ->
             (match pos_addr p with
              | Some (_, addr) -> sub_c (pts_ids t ~fname addr)
              | None -> false)
           | Usedef.Intrin_arg (_, op, _) -> audit_ok_intrin op
           | Usedef.Callee _ | Usedef.Call_arg _ | Usedef.Ret_val -> false)
         (Usedef.uses_of ud reg)
  in
  let changed = ref true in
  let iters = ref 0 in
  while !changed && !iters < 100 do
    changed := false;
    incr iters;
    List.iter
      (fun a ->
        if sensitive a && not (skip a.ac_fname a.ac_pos) then begin
          let s = acc_pts a in
          let demotable = (not (keep a.ac_fname a.ac_pos)) && sub_c s in
          let drop () =
            ISet.iter
              (fun o ->
                if in_c.(o) then begin
                  in_c.(o) <- false;
                  changed := true
                end)
              s
          in
          if not demotable then
            (* stays instrumented: the objects it touches must keep their
               safe-store routing everywhere *)
            drop ()
          else if a.ac_load
                  && not (audit_uses (ud_of a.ac_fname) a.ac_fname ~depth:8 a.ac_dst)
          then drop ()
        end)
      accs
  done;
  let result = Hashtbl.create 32 in
  List.iter
    (fun a ->
      if sensitive a
         && (not (skip a.ac_fname a.ac_pos))
         && (not (keep a.ac_fname a.ac_pos))
         && sub_c (acc_pts a)
      then
        let b, i = a.ac_pos in
        Hashtbl.replace result (a.ac_fname, b, i) ())
    accs;
  result

let refine_cps t ~instrumented ~skip : (string * int * int, unit) Hashtbl.t =
  let accs = collect_accesses t.prog in
  let never_code s =
    (not (ISet.is_empty s)) && ISet.for_all (fun o -> not t.reaches.(o)) s
  in
  let result = Hashtbl.create 32 in
  List.iter
    (fun a ->
      if instrumented a.ac_ty
         && (not (skip a.ac_fname a.ac_pos))
         && never_code (pts_ids t ~fname:a.ac_fname a.ac_addr)
      then
        let b, i = a.ac_pos in
        Hashtbl.replace result (a.ac_fname, b, i) ())
    accs;
  result
