(** Type-based sensitivity classification (Section 3.2.1, Fig. 7).

    Sensitive types are: pointers to functions, pointers to sensitive
    types, pointers to composite types with at least one sensitive member,
    and universal pointers (void*/char pointers and, in full C, opaque
    forward-declared structs). Programmer-annotated structs (the paper's
    struct-ucred example) are additionally sensitive. *)

module Ty = Levee_ir.Ty

type ctx = {
  tenv : Ty.env;
  annotated : (string, unit) Hashtbl.t;     (* programmer-marked structs *)
  memo : (Ty.t, bool) Hashtbl.t;
}

let create tenv ~annotated =
  let tbl = Hashtbl.create 8 in
  List.iter (fun s -> Hashtbl.replace tbl s ()) annotated;
  { tenv; annotated = tbl; memo = Hashtbl.create 64 }

(** [is_sensitive ctx ty] implements the [sensitive] criterion of Fig. 7.
    Recursion through struct pointers is cut with a visited set (a pointer
    cycle that reaches no function pointer is not sensitive). *)
let is_sensitive ctx ty =
  let rec go visited ty =
    match Hashtbl.find_opt ctx.memo ty with
    | Some r -> r
    | None ->
      let r =
        match ty with
        | Ty.Void | Ty.Int | Ty.Char -> false
        | Ty.Fn _ -> true
        | Ty.Ptr Ty.Void | Ty.Ptr Ty.Char -> true      (* universal *)
        | Ty.Ptr t -> go visited t
        | Ty.Arr (t, _) -> go visited t
        | Ty.Struct s ->
          Hashtbl.mem ctx.annotated s
          || (if List.mem s visited then false
              else
                List.exists
                  (fun (_, ft) -> go (s :: visited) ft)
                  (Ty.struct_fields ctx.tenv s))
      in
      (* Only memoize cycle-free answers. *)
      if visited = [] then Hashtbl.replace ctx.memo ty r;
      r
  in
  go [] ty

(** CPS's restricted criterion: code pointers only (plus universal
    pointers, which may hold code pointers at runtime). *)
let is_cps_sensitive _ctx ty =
  match ty with
  | Ty.Ptr (Ty.Fn _) -> true
  | Ty.Ptr Ty.Void | Ty.Ptr Ty.Char -> true
  | Ty.Void | Ty.Int | Ty.Char | Ty.Ptr _ | Ty.Fn _ | Ty.Struct _ | Ty.Arr _ -> false

(** Is [ty] dereferenceable-sensitive, i.e. must a dereference *through* a
    pointer to [ty] be safety-checked? True when the pointer type [Ptr ty]
    is itself sensitive. *)
let deref_needs_check ctx ty = is_sensitive ctx (Ty.Ptr ty)
