(** The static race detector and safe-region soundness pass: the static
    counterpart of the machine's dynamic Eraser detector
    ({!Levee_machine.Race}) and of its safe-region isolation.

    {b Races.} Accesses are grouped by Andersen points-to object; two
    accesses race when they may execute in two concurrently live threads
    ({!Lockset.may_overlap}), at least one writes, and their must-held
    locksets share no lock. The verdict is designed to *include* every
    race the dynamic detector can observe under any scheduler seed (the
    cross-validation harness checks that empirically), while staying
    silent on the machine's happens-before concessions: joined-before
    accesses, single-instance spawn classes, a thread's own stack.

    {b Separation.} On a CPI-instrumented program, every plain
    ([Regular]) store is either *certified* — its points-to set is
    non-empty, fully modelled, and disjoint from every object reached by
    a safe-routed access, with locally decidable provenance — or
    reported unproven with a reason. Certificates are replayed by
    {!Levee_ir.Verify.check_separation}, which re-derives both halves of
    the claim from the instrumented program alone. *)

module Prog = Levee_ir.Prog
module V = Levee_ir.Verify

(** One access participating in a potential race. *)
type site = {
  st_func : string;
  st_block : int;
  st_idx : int;
  st_write : bool;
  st_locked : bool;  (** some lock is must-held (but not a common one) *)
}

type race = {
  rc_obj : string;  (** {!Pointsto.obj_to_string} of the racy object *)
  rc_storage : string;
      (** ["safe-region"] when a participating access has a sensitive
          type (the race would hit CPI-protected storage under CPI),
          else ["shared-data"] *)
  rc_sites : site list;  (** program order *)
}

(** Static race verdicts over the uninstrumented program, sorted by
    object key. Empty when the program never spawns a thread. *)
val races : ?annotated:string list -> Prog.t -> race list

(** One unproven plain store and why it could not be certified. *)
type unproven = {
  up_func : string;
  up_block : int;
  up_idx : int;
  up_reason : string;
}

type separation = {
  sp_plain : int;      (** plain stores examined *)
  sp_safe : int;       (** safe-routed accesses (the protected set) *)
  sp_certs : V.separation_cert list;   (** certified stores *)
  sp_unproven : unproven list;
  sp_model : V.separation_model;
  sp_replay : (unit, string) result;
      (** the verdict of {!V.check_separation} on the emitted
          certificates — [Error] indicates a bug in this pass *)
}

(** Safe-region soundness over a CPI-instrumented program. *)
val separation : Prog.t -> separation
