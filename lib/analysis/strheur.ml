(** The char* string heuristic (Section 3.2.1).

    char* is a universal pointer type and hence sensitive, but most char*
    in C programs are plain strings. The paper's heuristic assumes char*
    pointers that are passed to the standard libc string functions or that
    are assigned to point to string constants are not universal.

    The decision is made per pointer *site* (the alloca or global that
    stores the char* value), not per instruction: all accesses of a
    demoted pointer are demoted together, or none are — otherwise a store
    routed to the safe store paired with a plain load would read a stale
    regular copy. A site is demoted iff every value stored into it is
    string-like data (string constants, char buffers, fresh allocations)
    and every value loaded from it is consumed only by string operations.
    Heuristic misses merely leave extra instrumentation; they never remove
    protection from a pointer that could carry a code pointer. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

let is_string_global name =
  String.length name >= 4 && String.sub name 0 4 = ".str"

let string_intrinsic (op : I.intrin) =
  match op with
  | I.I_strcpy | I.I_strlen | I.I_strcmp | I.I_print_str | I.I_read_input
  | I.I_system | I.I_memcpy | I.I_memset | I.I_free -> true
  | I.I_malloc | I.I_cpi_memcpy | I.I_cpi_memset | I.I_read_int
  | I.I_print_int | I.I_checksum | I.I_setjmp | I.I_longjmp | I.I_exit
  | I.I_abort | I.I_thread_spawn | I.I_thread_join | I.I_mutex_lock
  | I.I_mutex_unlock | I.I_atomic_add -> false

let stringy_global (prog : Prog.t) g =
  is_string_global g
  || (match Prog.find_global prog g with
      | Some { Prog.gty = Ty.Arr (Ty.Char, _); _ } -> true
      | Some _ | None -> false)

(* A stored value is string-like when it denotes string/character data and
   can never be a laundered code pointer. *)
let stringy_value prog ud v =
  match Usedef.origin ud v with
  | Usedef.From_global g -> stringy_global prog g
  | Usedef.From_alloca ty ->
    (match ty with Ty.Arr (Ty.Char, _) | Ty.Char -> true | _ -> false)
  | Usedef.From_malloc | Usedef.From_const -> true
  | Usedef.From_param i ->
    (* a char* parameter spilled into its slot: string-like iff declared
       char* (the store type already guarantees that here) *)
    (match List.nth_opt ud.Usedef.fn.Prog.params i with
     | Some (_, Ty.Ptr Ty.Char) -> true
     | Some _ | None -> false)
  | Usedef.From_fun _ | Usedef.From_load _ | Usedef.From_call | Usedef.Unknown ->
    false

(* A loaded char* is string-consumed when it only feeds string intrinsics,
   comparisons and character-granularity accesses. *)
let rec stringy_uses ud ~depth reg =
  depth > 0
  && List.for_all
       (fun (u : Usedef.use) ->
         match u with
         | Usedef.Intrin_arg (_, op, _) -> string_intrinsic op
         | Usedef.Cmp_op _ | Usedef.Branch_cond -> true
         | Usedef.Load_addr (_, Ty.Char) | Usedef.Store_addr (_, Ty.Char) -> true
         | Usedef.Gep_base (_, dst) | Usedef.Bin_op (_, dst) ->
           stringy_uses ud ~depth:(depth - 1) dst
         | Usedef.Store_val (_, Ty.Ptr Ty.Char) -> true   (* string ptr copy *)
         | Usedef.Store_val _ | Usedef.Load_addr _ | Usedef.Store_addr _
         | Usedef.Cast_src _ | Usedef.Call_arg _ | Usedef.Callee _
         | Usedef.Ret_val | Usedef.Gep_index _ -> false)
       (Usedef.uses_of ud reg)

(* Site keys must be program-global: allocas are function-local, globals
   are shared across functions. *)
type site = Local of string * int | Global of string

type access = {
  a_fname : string;
  a_pos : int * int;      (* block, idx *)
}

(** Program-level demotion map: [(fname, block, idx)] positions of char*
    loads/stores that the heuristic treats as non-sensitive. *)
let demoted (prog : Prog.t) : (string * int * int, unit) Hashtbl.t =
  (* Per-site evidence: all stores stringy? all loads string-consumed? *)
  let ok : (site, bool ref) Hashtbl.t = Hashtbl.create 32 in
  let accesses : (site, access list ref) Hashtbl.t = Hashtbl.create 32 in
  let record site fname pos good =
    let flag =
      match Hashtbl.find_opt ok site with
      | Some f -> f
      | None ->
        let f = ref true in
        Hashtbl.replace ok site f;
        f
    in
    flag := !flag && good;
    let l =
      match Hashtbl.find_opt accesses site with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace accesses site l;
        l
    in
    l := { a_fname = fname; a_pos = pos } :: !l
  in
  Prog.iter_funcs prog (fun fn ->
      let ud = Usedef.build fn in
      let site_of addr =
        match Usedef.root_site ud addr with
        | Usedef.Site_alloca r -> Some (Local (fn.Prog.fname, r))
        | Usedef.Site_global g -> Some (Global g)
        | Usedef.Site_unknown -> None
      in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx (i : I.instr) ->
              match i with
              | I.Store { ty = Ty.Ptr Ty.Char; v; addr; _ } ->
                (match site_of addr with
                 | Some s ->
                   record s fn.Prog.fname (b.Prog.bid, idx) (stringy_value prog ud v)
                 | None -> ())
              | I.Load { ty = Ty.Ptr Ty.Char; dst; addr; _ } ->
                (match site_of addr with
                 | Some s ->
                   record s fn.Prog.fname (b.Prog.bid, idx)
                     (stringy_uses ud ~depth:6 dst)
                 | None -> ())
              | _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  let result = Hashtbl.create 32 in
  Hashtbl.iter
    (fun site flag ->
      if !flag then
        match Hashtbl.find_opt accesses site with
        | Some l ->
          List.iter
            (fun a ->
              let b, i = a.a_pos in
              Hashtbl.replace result (a.a_fname, b, i) ())
            !l
        | None -> ())
    ok;
  result

(** Per-function view used by the passes. *)
let demoted_positions_in demoted_map (fn : Prog.func) : (int * int, unit) Hashtbl.t =
  let t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (fname, b, i) () ->
      if fname = fn.Prog.fname then Hashtbl.replace t (b, i) ())
    demoted_map;
  t
