(** The char* string heuristic (paper Section 3.2.1).

    char* is a universal pointer type and hence sensitive, but most char*
    in C programs are plain strings; the heuristic assumes char* pointers
    that are passed to the libc string functions or assigned string
    constants are not universal. The decision is made per pointer *site*
    (the alloca or global storing the char* value): all accesses of a
    demoted pointer are demoted together, or none are — anything else
    would desynchronize the safe store and the regular copy. Heuristic
    misses only leave extra instrumentation (or cause false violation
    reports, as the paper notes); they never expose a code pointer. *)

(** Program-level demotion map: [(function, block, index)] positions of
    char* loads/stores treated as non-sensitive. *)
val demoted : Levee_ir.Prog.t -> (string * int * int, unit) Hashtbl.t

(** Restrict the program-level map to one function's positions. *)
val demoted_positions_in :
  (string * int * int, unit) Hashtbl.t -> Levee_ir.Prog.func ->
  (int * int, unit) Hashtbl.t
