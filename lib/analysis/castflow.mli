(** Data-flow augmentation for unsafe pointer casts (paper Section 3.2.1).

    If a value is cast to a sensitive pointer type, the load that produced
    it must also be routed through the safe store so its based-on metadata
    survives the detour through the non-sensitive type. Like the paper's
    analysis this is intra-procedural and may miss flows it cannot recover,
    which can cause false violation reports but no loss of protection. *)

(** Positions (block, index) of loads to force-instrument in [fn]. *)
val forced_load_positions :
  Sensitivity.ctx -> Levee_ir.Prog.func -> (int * int, unit) Hashtbl.t

(** Positions (block, index) of casts producing a sensitive pointer type:
    the unsafe casts whose source provenance the dataflow recovers. *)
val unsafe_cast_positions :
  Sensitivity.ctx -> Levee_ir.Prog.func -> (int * int, unit) Hashtbl.t
