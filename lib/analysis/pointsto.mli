(** Flow-insensitive Andersen-style points-to analysis over Levee IR,
    interprocedural via direct calls and type-compatible indirect-call
    targets. Feeds the sensitivity refinement (demoting accesses whose
    points-to sets provably never reach a code pointer) and the
    [levee analyze] diagnostics. Conservative by construction:
    imprecision only leaves extra instrumentation in place. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

(** Abstract memory objects: allocation sites plus the [O_code] /
    [O_unknown] pseudo-objects (any code address / unmodelled memory). *)
type obj =
  | O_global of string
  | O_alloca of string * int (* function, alloca dst register *)
  | O_malloc of string * int * int (* function, block, instr index *)
  | O_fun of string (* the code address of one named function *)
  | O_code
  | O_unknown

type t

(** Solve the inclusion constraints for a whole program. Also computes
    per-object [reaches_code] (contents may transitively yield a code
    pointer) and hazard flags (objects moved wholesale by memcpy-style
    intrinsics or aliased by jmp_bufs). *)
val analyze : Prog.t -> t

(** Objects an operand may point to, in a deterministic order. *)
val points_to : t -> fname:string -> I.operand -> obj list

(** May the contents of [obj] transitively hold a code pointer? Unknown
    objects answer [true]. *)
val reaches_code : t -> obj -> bool

(** May the memory addressed by the operand transitively hold a code
    pointer? An empty points-to set is unmodelled: answers [true]. *)
val addr_may_reach_code : t -> fname:string -> I.operand -> bool

(** May the operand's own value be a code pointer? *)
val value_may_be_code : t -> fname:string -> I.operand -> bool

val obj_to_string : obj -> string

(** Possible named-function targets of an indirect-call operand:
    [Some names] (sorted) when the operand's code sources are all named
    functions, [None] when the set is unmodelled or carries unnamed code
    provenance. Feeds the cfi-type per-call-site target sets. *)
val callee_targets : t -> fname:string -> I.operand -> string list option

(** Positions (function, block, index) of type-rule-sensitive accesses
    that are provably data-only and safe to demote to plain accesses.
    [keep] marks positions that must stay instrumented (Castflow-forced,
    annotated-struct paths); [skip] marks positions that are not
    instrumented in the first place (safe-slot accesses, accesses already
    demoted by the char* heuristic). Demotion is consistent per object:
    either every access that may touch an object is demoted, or none is,
    and loads are demoted only when every transitive use of the loaded
    value is metadata-blind. *)
val refine_cpi :
  t ->
  ctx:Sensitivity.ctx ->
  keep:(string -> int * int -> bool) ->
  skip:(string -> int * int -> bool) ->
  (string * int * int, unit) Hashtbl.t

(** CPS variant: demote accesses of [instrumented] types whose points-to
    sets never reach code. No use audit is needed — [SafeValue] routing
    of never-code values is observationally identical to plain access. *)
val refine_cps :
  t ->
  instrumented:(Ty.t -> bool) ->
  skip:(string -> int * int -> bool) ->
  (string * int * int, unit) Hashtbl.t
