(** Data-flow augmentation for unsafe pointer casts (Section 3.2.1).

    If a value is cast to a sensitive pointer type, the value itself must be
    treated as sensitive so its based-on metadata survives the detour
    through the non-sensitive type: in particular, the load that produced
    it must be routed through the safe store. This is the paper's
    augmentation of the purely type-based analysis; like the paper's, it
    is local (intra-procedural) and may fail for flows it cannot recover,
    which can cause false violation reports but no loss of protection. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

(** Positions of loads that must be force-instrumented because their result
    flows (locally) into a cast to a sensitive pointer type. *)
let forced_load_positions sens_ctx (fn : Prog.func) : (int * int, unit) Hashtbl.t =
  let ud = Usedef.build fn in
  let forced = Hashtbl.create 8 in
  Prog.iter_instrs fn (fun (i : I.instr) ->
      match i with
      | I.Cast { ty; v; _ } when Sensitivity.is_sensitive sens_ctx ty ->
        (match Usedef.origin ud v with
         | Usedef.From_load pos ->
           Hashtbl.replace forced (pos.Usedef.block, pos.Usedef.idx) ()
         | _ -> ())
      | _ -> ());
  forced
