(** Data-flow augmentation for unsafe pointer casts (Section 3.2.1).

    If a value is cast to a sensitive pointer type, the value itself must be
    treated as sensitive so its based-on metadata survives the detour
    through the non-sensitive type: in particular, the load that produced
    it must be routed through the safe store. This is the paper's
    augmentation of the purely type-based analysis; like the paper's, it
    is local (intra-procedural) and may fail for flows it cannot recover,
    which can cause false violation reports but no loss of protection. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

(** Positions of loads that must be force-instrumented because their result
    flows (locally) into a cast to a sensitive pointer type.

    The walk follows every value-propagating def — casts, gep base copies
    and *both* operands of pointer arithmetic — so a cast routed through an
    intermediate [Bin]/[Gep] copy (e.g. [w = 0 + v; (fnptr) w]) still forces
    the load that produced the value. Over-approximating here only adds
    instrumentation; it never loses protection. *)
let forced_load_positions sens_ctx (fn : Prog.func) : (int * int, unit) Hashtbl.t =
  let ud = Usedef.build fn in
  let forced = Hashtbl.create 8 in
  let rec mark ~depth visited (o : I.operand) =
    match o with
    | I.Reg r when depth > 0 && not (Hashtbl.mem visited r) ->
      Hashtbl.add visited r ();
      (match Usedef.def ud r with
       | Some (pos, I.Load _) ->
         Hashtbl.replace forced (pos.Usedef.block, pos.Usedef.idx) ()
       | Some (_, I.Cast { v; _ }) -> mark ~depth:(depth - 1) visited v
       | Some (_, I.Gep { base; _ }) -> mark ~depth:(depth - 1) visited base
       | Some (_, I.Bin { l; r = rr; _ }) ->
         mark ~depth:(depth - 1) visited l;
         mark ~depth:(depth - 1) visited rr
       | Some (_, (I.Alloca _ | I.Cmp _ | I.Store _ | I.Call _ | I.Intrin _))
       | None -> ())
    | I.Reg _ | I.Imm _ | I.Glob _ | I.Fun _ | I.Nullp -> ()
  in
  Prog.iter_instrs fn (fun (i : I.instr) ->
      match i with
      | I.Cast { ty; v; _ } when Sensitivity.is_sensitive sens_ctx ty ->
        mark ~depth:16 (Hashtbl.create 8) v
      | I.Cast _ | I.Alloca _ | I.Bin _ | I.Cmp _ | I.Load _ | I.Store _
      | I.Gep _ | I.Call _ | I.Intrin _ -> ());
  forced

(** Positions of the casts themselves: every cast that *produces* a
    sensitive pointer type is an unsafe cast in the paper's sense — the
    source value's provenance must be recovered for the result to carry
    valid metadata. Reported by [levee analyze]. *)
let unsafe_cast_positions sens_ctx (fn : Prog.func) : (int * int, unit) Hashtbl.t
    =
  let t = Hashtbl.create 8 in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iteri
        (fun idx (i : I.instr) ->
          match i with
          | I.Cast { ty; _ } when Sensitivity.is_sensitive sens_ctx ty ->
            Hashtbl.replace t (b.Prog.bid, idx) ()
          | I.Cast _ | I.Alloca _ | I.Bin _ | I.Cmp _ | I.Load _ | I.Store _
          | I.Gep _ | I.Call _ | I.Intrin _ -> ())
        b.Prog.instrs)
    fn.Prog.blocks;
  t
