(** Structured lint findings over MiniC programs: the back end of the
    [levee analyze] subcommand. Combines the static analyses into one
    deterministic report — unsafe casts, Castflow-forced loads, dead
    instrumentation (accesses the points-to refinement proves data-only),
    unreachable blocks, never-code indirect calls, and per-function
    Table-2-style instrumentation statistics. *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type finding = {
  severity : severity;
  kind : string;  (** stable identifier, e.g. ["unsafe-cast"] *)
  func : string;  (** [""] for whole-program findings *)
  block : int;    (** [-1] when not tied to a position *)
  idx : int;
  msg : string;
}

type func_stats = {
  fs_name : string;
  fs_mem_ops : int;
  fs_sensitive : int;     (** type-rule sensitive accesses (Fig. 7) *)
  fs_forced : int;        (** loads forced by the unsafe-cast dataflow *)
  fs_char_demoted : int;  (** accesses demoted by the char* heuristic *)
  fs_demotable : int;     (** proven data-only by the points-to refinement *)
  fs_indirect_calls : int;
}

type report = {
  source : string;
  findings : finding list;  (** sorted by function, block, index, kind *)
  funcs : func_stats list;  (** program order *)
}

val count : severity -> report -> int

(** [Error]-severity findings indicate internal inconsistencies (compiler
    bugs), never user errors; [levee analyze] exits non-zero on them. *)
val has_errors : report -> bool

(** Lint the (uninstrumented) program. [annotated] lists programmer-marked
    sensitive structs; [name] labels the report. Deterministic: equal
    inputs produce byte-equal reports. *)
val analyze :
  ?annotated:string list -> ?name:string -> Levee_ir.Prog.t -> report

(** Human-readable rendering. [elided]/[demoted] append the CPI pipeline's
    authoritative elision/demotion counts when the caller has built the
    instrumented program. *)
val to_human : ?elided:int -> ?demoted:int -> report -> string

(** The ["levee-analyze/1"] JSON document (see README). Same optional
    pipeline counts as [to_human]. *)
val to_json : ?elided:int -> ?demoted:int -> report -> string

val schema_id : string
