(** Structured lint findings over MiniC programs: the back end of the
    [levee analyze] subcommand. Combines the static analyses into one
    deterministic report — unsafe casts, Castflow-forced loads, dead
    instrumentation (accesses the points-to refinement proves data-only),
    unreachable blocks, never-code indirect calls, and per-function
    Table-2-style instrumentation statistics. *)

type severity = Info | Warning | Error

val severity_name : severity -> string

type finding = {
  severity : severity;
  kind : string;  (** stable identifier, e.g. ["unsafe-cast"] *)
  func : string;  (** [""] for whole-program findings *)
  block : int;    (** [-1] when not tied to a position *)
  idx : int;
  msg : string;
}

type func_stats = {
  fs_name : string;
  fs_mem_ops : int;
  fs_sensitive : int;     (** type-rule sensitive accesses (Fig. 7) *)
  fs_forced : int;        (** loads forced by the unsafe-cast dataflow *)
  fs_char_demoted : int;  (** accesses demoted by the char* heuristic *)
  fs_demotable : int;     (** proven data-only by the points-to refinement *)
  fs_indirect_calls : int;
}

(** Aggregate of the safe-region separation pass, carried by the report
    when [levee analyze --races] ran it (counts from
    {!Racecheck.separation}; the certificate replay verdict is folded
    into the findings). *)
type sep_stats = {
  ss_plain : int;      (** plain stores examined *)
  ss_certified : int;  (** separation certificates emitted *)
  ss_unproven : int;
  ss_opaque : int;     (** safe accesses with opaque provenance *)
  ss_replay_ok : bool; (** [Verify.check_separation] accepted the certs *)
}

type report = {
  source : string;
  findings : finding list;  (** sorted by function, block, index, kind *)
  funcs : func_stats list;  (** program order *)
  races : Racecheck.race list option;  (** static race verdicts, when run *)
  sep : sep_stats option;
}

val count : severity -> report -> int

(** [Error]-severity findings indicate internal inconsistencies (compiler
    bugs), never user errors; [levee analyze] exits non-zero on them. *)
val has_errors : report -> bool

(** Lint the (uninstrumented) program. [annotated] lists programmer-marked
    sensitive structs; [name] labels the report. Deterministic: equal
    inputs produce byte-equal reports. *)
val analyze :
  ?annotated:string list -> ?name:string -> Levee_ir.Prog.t -> report

(** Fold static race verdicts ({!Racecheck.races}) into a report: one
    ["potential-race"] warning per racy object, plus the [races] section
    of the JSON document. Findings are re-sorted canonically. *)
val add_races : report -> Racecheck.race list -> report

(** Fold the safe-region separation pass ({!Racecheck.separation}, run on
    the CPI-instrumented program) into a report: one
    ["unproven-separation"] info per unproven store, a
    ["separation-replay"] error if the certificate replay failed, and
    the [separation] JSON section. Findings are re-sorted canonically. *)
val add_separation : report -> Racecheck.separation -> report

(** Human-readable rendering. [elided]/[demoted] append the CPI pipeline's
    authoritative elision/demotion counts when the caller has built the
    instrumented program. *)
val to_human : ?elided:int -> ?demoted:int -> report -> string

(** The ["levee-analyze/2"] JSON document (see README). Same optional
    pipeline counts as [to_human]. [races] / [separation] sections appear
    exactly when the corresponding pass ran. *)
val to_json : ?elided:int -> ?demoted:int -> report -> string

val schema_id : string

(** One run-store record (schema [levee-analyze/2], kind ["analyze"],
    [config = name], [wall_us = 0]): finding counts plus, when the race
    and separation passes ran, their verdict counts. All fields are
    deterministic, so `levee history --gate` holds them at 0%%
    tolerance. *)
val to_record :
  ?commit:string -> ?name:string -> report -> Levee_support.Runstore.record
