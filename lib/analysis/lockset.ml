(** Interprocedural must-lockset / concurrency-context analysis.

    Mirrors the dynamic Eraser detector's happens-before concessions so
    the static verdicts can be compared against it 1:1:

    - lock identity is the points-to object of the [mutex_lock] argument
      (the machine keys mutexes by address; one abstract object per
      static lock is the sound analogue);
    - a lock with an unresolvable identity adds nothing on lock (it is
      not a *must*-held lock) and clears the set on unlock (it may
      release anything);
    - the machine only tracks races while more than one thread is live,
      so main-side accesses after every spawned thread has been joined
      are not concurrent with anything — the may-live counter reproduces
      that edge (sound because [thread_join] on a bogus id crashes the
      machine rather than silently under-counting). *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

module OSet = Set.Make (struct
  type t = Pointsto.obj
  let compare = compare
end)

module ISet = Set.Make (Int)

type ctx = {
  cx_locks : Pointsto.obj list;
  cx_classes : int list;
  cx_mainlive : bool;
}

(* Entry summary of one function: the meet over every call site. *)
type fentry = {
  mutable e_locks : OSet.t option; (* None = never invoked (top) *)
  mutable e_live : int;            (* max may-live spawns at any call site *)
  mutable e_classes : ISet.t;      (* spawn classes the body may run under *)
}

(* Intra state: must-held locks plus this thread's own unjoined spawns.
   [None] is the unvisited (bottom) element. *)
type st = (OSet.t * int) option

type t = {
  entries : (string, fentry) Hashtbl.t;
  states : (string, st array) Hashtbl.t;   (* block-entry fixpoints *)
  sites : (string * int * int) array;      (* spawn site id -> position *)
  site_multi : bool array;
  funcs : (string, Prog.func) Hashtbl.t;
  pt : Pointsto.t;
}

let live_cap = 8

(* The mutex object a lock/unlock argument denotes, when it provably
   denotes exactly one. *)
let lock_id pt ~fname op =
  match Pointsto.points_to pt ~fname op with
  | [ o ] when o <> Pointsto.O_unknown && o <> Pointsto.O_code -> Some o
  | _ -> None

let step pt fname ((locks, live) : OSet.t * int) (ins : I.instr) =
  match ins with
  | I.Intrin { op = I.I_mutex_lock; args = a :: _; _ } ->
    (match lock_id pt ~fname a with
     | Some o -> (OSet.add o locks, live)
     | None -> (locks, live))
  | I.Intrin { op = I.I_mutex_unlock; args = a :: _; _ } ->
    (match lock_id pt ~fname a with
     | Some o -> (OSet.remove o locks, live)
     | None -> (OSet.empty, live))
  | I.Intrin { op = I.I_thread_spawn; _ } -> (locks, min live_cap (live + 1))
  | I.Intrin { op = I.I_thread_join; _ } -> (locks, max 0 (live - 1))
  | _ -> (locks, live)

let join (a : st) (b : st) =
  match (a, b) with
  | None, x | x, None -> x
  | Some (l1, v1), Some (l2, v2) -> Some (OSet.inter l1 l2, max v1 v2)

let st_equal (a : st) (b : st) =
  match (a, b) with
  | None, None -> true
  | Some (l1, v1), Some (l2, v2) -> v1 = v2 && OSet.equal l1 l2
  | _ -> false

let solve_func pt (fn : Prog.func) ~(entry : OSet.t * int) : st array =
  let cfg = Dataflow.build fn in
  let transfer b s =
    match s with
    | None -> None
    | Some s ->
      Some (Array.fold_left (step pt fn.Prog.fname) s fn.Prog.blocks.(b).Prog.instrs)
  in
  Dataflow.solve cfg ~entry:(Some entry) ~bottom:None ~join ~equal:st_equal
    ~transfer

(* ---------- multiple-invocation analysis ---------- *)

(* Is block [b] part of a CFG cycle (reachable from its own successors)? *)
let block_in_cycle (fn : Prog.func) =
  let cfg = Dataflow.build fn in
  let n = cfg.Dataflow.nblocks in
  fun b ->
    let seen = Array.make n false in
    let rec dfs x =
      x = b
      || (not seen.(x)
          && begin
            seen.(x) <- true;
            List.exists dfs cfg.Dataflow.succs.(x)
          end)
    in
    List.exists dfs cfg.Dataflow.succs.(b)

(* May a function's body execute in two or more dynamic instances
   (hence: may a spawn site inside it fire twice)? Fixpoint over
   "invoked >= 2 times, from a loop, recursively, or from a function
   that itself executes multiply". *)
let multi_invoked (prog : Prog.t) (taken : string list) =
  let sites : (string, (string * bool) list) Hashtbl.t = Hashtbl.create 16 in
  let add callee site =
    Hashtbl.replace sites callee (site :: (Option.value ~default:[] (Hashtbl.find_opt sites callee)))
  in
  let edges : (string, string list) Hashtbl.t = Hashtbl.create 16 in
  let add_edge caller callee =
    Hashtbl.replace edges caller (callee :: (Option.value ~default:[] (Hashtbl.find_opt edges caller)))
  in
  Prog.iter_funcs prog (fun fn ->
      let in_cycle = block_in_cycle fn in
      Array.iter
        (fun (b : Prog.block) ->
          let looped = in_cycle b.Prog.bid in
          Array.iter
            (fun ins ->
              let targets =
                match ins with
                | I.Call { callee = I.Direct g; _ } -> [ g ]
                | I.Call { callee = I.Indirect _; _ } -> taken
                | I.Intrin { op = I.I_thread_spawn; args = I.Fun g :: _; _ } ->
                  [ g ]
                | I.Intrin { op = I.I_thread_spawn; args = _ :: _; _ } -> taken
                | _ -> []
              in
              List.iter
                (fun g ->
                  if Prog.has_func prog g then begin
                    add g (fn.Prog.fname, looped);
                    add_edge fn.Prog.fname g
                  end)
                targets)
            b.Prog.instrs)
        fn.Prog.blocks);
  let self_reaches f =
    let seen = Hashtbl.create 8 in
    let rec dfs g =
      List.exists
        (fun h ->
          h = f
          || (not (Hashtbl.mem seen h)
              && begin
                Hashtbl.replace seen h ();
                dfs h
              end))
        (Option.value ~default:[] (Hashtbl.find_opt edges g))
    in
    dfs f
  in
  let multi = Hashtbl.create 16 in
  let get f = Hashtbl.mem multi f in
  let changed = ref true in
  while !changed do
    changed := false;
    Prog.iter_funcs prog (fun fn ->
        let f = fn.Prog.fname in
        if not (get f) then begin
          let ss = Option.value ~default:[] (Hashtbl.find_opt sites f) in
          let m =
            List.length ss >= 2
            || List.exists (fun (_, looped) -> looped) ss
            || List.exists (fun (caller, _) -> get caller) ss
            || self_reaches f
          in
          if m then begin
            Hashtbl.replace multi f ();
            changed := true
          end
        end)
  done;
  get

(* ---------- interprocedural driver ---------- *)

(* Functions whose address escapes into data flow (stored, passed as a
   plain argument, returned, used in arithmetic, seeded by a global
   initialiser). A [Fun] literal consumed directly as the target of a
   [thread_spawn] never becomes a first-class value, so it cannot
   surface behind an indirect call or a spawn-target register — the
   whole-program address-taken set would call every spawn body
   "multiply invoked" as soon as any indirect call exists. *)
let escaped_functions (prog : Prog.t) =
  let taken = Hashtbl.create 16 in
  let mark = function I.Fun f -> Hashtbl.replace taken f () | _ -> () in
  let check (ins : I.instr) =
    match ins with
    | I.Intrin { op = I.I_thread_spawn; args = I.Fun _ :: rest; _ } ->
      List.iter mark rest
    | I.Bin { l; r; _ } | I.Cmp { l; r; _ } ->
      mark l;
      mark r
    | I.Load { addr; _ } -> mark addr
    | I.Store { v; addr; _ } ->
      mark v;
      mark addr
    | I.Gep { base; path; _ } ->
      mark base;
      List.iter (function I.Index (_, o) -> mark o | I.Field _ -> ()) path
    | I.Cast { v; _ } -> mark v
    | I.Call { callee; args; _ } ->
      (match callee with I.Indirect o -> mark o | I.Direct _ -> ());
      List.iter mark args
    | I.Intrin { args; _ } -> List.iter mark args
    | I.Alloca _ -> ()
  in
  Prog.iter_funcs prog (fun fn ->
      Prog.iter_instrs fn check;
      Array.iter
        (fun (b : Prog.block) ->
          match b.Prog.term with
          | I.Ret (Some o) -> mark o
          | I.Br (o, _, _) | I.Switch (o, _, _) -> mark o
          | I.Ret None | I.Jmp _ | I.Unreachable -> ())
        fn.Prog.blocks);
  List.iter
    (fun (g : Prog.global) ->
      Array.iter
        (function
          | Prog.Cfun f -> Hashtbl.replace taken f ()
          | Prog.Cint _ | Prog.Cglob _ -> ())
        g.Prog.init)
    prog.Prog.globals;
  taken

let analyze (prog : Prog.t) (pt : Pointsto.t) : t =
  let taken_tbl = escaped_functions prog in
  let taken =
    List.filter
      (fun f -> Hashtbl.mem taken_tbl f && Prog.has_func prog f)
      prog.Prog.func_order
  in
  (* Enumerate spawn sites in program order. *)
  let sites = ref [] in
  Prog.iter_funcs prog (fun fn ->
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx ins ->
              match ins with
              | I.Intrin { op = I.I_thread_spawn; _ } ->
                sites := (fn.Prog.fname, b.Prog.bid, idx) :: !sites
              | _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  let sites = Array.of_list (List.rev !sites) in
  let site_id = Hashtbl.create 8 in
  Array.iteri (fun i pos -> Hashtbl.replace site_id pos i) sites;
  let minvoke = multi_invoked prog taken in
  let site_multi =
    Array.map
      (fun (f, b, _) ->
        let fn = Prog.find_func prog f in
        block_in_cycle fn b || minvoke f)
      sites
  in
  let entries = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace entries fn.Prog.fname
        { e_locks = None; e_live = 0; e_classes = ISet.empty });
  (match Hashtbl.find_opt entries "main" with
   | Some e -> e.e_locks <- Some OSet.empty
   | None -> ());
  let states = Hashtbl.create 16 in
  let changed = ref true in
  let contribute callee ~locks ~live ~classes =
    match Hashtbl.find_opt entries callee with
    | None -> ()
    | Some e ->
      (match e.e_locks with
       | None ->
         e.e_locks <- Some locks;
         changed := true
       | Some cur ->
         let m = OSet.inter cur locks in
         if not (OSet.equal m cur) then begin
           e.e_locks <- Some m;
           changed := true
         end);
      if live > e.e_live then begin
        e.e_live <- live;
        changed := true
      end;
      let u = ISet.union e.e_classes classes in
      if not (ISet.equal u e.e_classes) then begin
        e.e_classes <- u;
        changed := true
      end
  in
  let visit emit fn =
    let e = Hashtbl.find entries fn.Prog.fname in
    match e.e_locks with
    | None -> ()
    | Some entry_locks ->
      let sts = solve_func pt fn ~entry:(entry_locks, e.e_live) in
      Hashtbl.replace states fn.Prog.fname sts;
      if emit then
        Array.iteri
          (fun bi (b : Prog.block) ->
            match sts.(bi) with
            | None -> ()
            | Some s0 ->
              let s = ref s0 in
              Array.iteri
                (fun idx ins ->
                  let locks, live = !s in
                  (match ins with
                   | I.Call { callee = I.Direct g; _ } ->
                     contribute g ~locks ~live ~classes:e.e_classes
                   | I.Call { callee = I.Indirect _; _ } ->
                     List.iter
                       (fun g -> contribute g ~locks ~live ~classes:e.e_classes)
                       taken
                   | I.Intrin { op = I.I_thread_spawn; args; _ } ->
                     let cls =
                       match
                         Hashtbl.find_opt site_id (fn.Prog.fname, b.Prog.bid, idx)
                       with
                       | Some s -> ISet.add s e.e_classes
                       | None -> e.e_classes
                     in
                     let targets =
                       match args with
                       | I.Fun g :: _ -> [ g ]
                       | _ -> taken
                     in
                     List.iter
                       (fun g ->
                         contribute g ~locks:OSet.empty ~live:0 ~classes:cls)
                       targets
                   | _ -> ());
                  s := step pt fn.Prog.fname !s ins)
                b.Prog.instrs)
          fn.Prog.blocks
  in
  let rounds = ref 0 in
  while !changed && !rounds < 64 do
    changed := false;
    incr rounds;
    Prog.iter_funcs prog (visit true)
  done;
  (* One quiet pass so every stored state reflects the converged entries. *)
  Prog.iter_funcs prog (visit false);
  { entries; states;
    sites; site_multi;
    funcs = prog.Prog.funcs; pt }

let has_spawn t = Array.length t.sites > 0

let multi_class t c = c >= 0 && c < Array.length t.site_multi && t.site_multi.(c)

let ctx_at t ~fname ~block ~idx =
  match
    (Hashtbl.find_opt t.entries fname, Hashtbl.find_opt t.states fname,
     Hashtbl.find_opt t.funcs fname)
  with
  | Some e, Some sts, Some fn when block >= 0 && block < Array.length sts ->
    (match sts.(block) with
     | None -> None
     | Some s0 ->
       let instrs = fn.Prog.blocks.(block).Prog.instrs in
       let n = min idx (Array.length instrs) in
       let s = ref s0 in
       for i = 0 to n - 1 do
         s := step t.pt fname !s instrs.(i)
       done;
       let locks, live = !s in
       Some
         { cx_locks = OSet.elements locks;
           cx_classes = ISet.elements e.e_classes;
           cx_mainlive = live > 0 })
  | _ -> None

let may_overlap t a b =
  let cross =
    List.exists
      (fun s ->
        List.exists (fun u -> s <> u || multi_class t s) b.cx_classes)
      a.cx_classes
  in
  cross
  || (a.cx_mainlive && b.cx_classes <> [])
  || (b.cx_mainlive && a.cx_classes <> [])
