(** Per-function control-flow graphs, dominator trees and a generic
    forward worklist solver.

    This is the reusable substrate for the flow-sensitive analyses: the
    redundant-check elision pass solves a must-availability problem over
    it, and the diagnostics front end uses the dominator tree to report
    instrumentation structure. CFGs in this IR are tiny (every function
    is lowered from a single MiniC body), so the implementations favour
    clarity over asymptotic heroics: dominators are the classic iterative
    Cooper–Harvey–Kennedy scheme over a reverse postorder, and the solver
    is a plain worklist that reuses that order. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

type cfg = {
  nblocks : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;           (** reverse postorder of reachable blocks *)
  rpo_index : int array;     (** block id -> position in [rpo], -1 if dead *)
}

let successors (t : I.term) =
  match t with
  | I.Ret _ | I.Unreachable -> []
  | I.Jmp b -> [ b ]
  | I.Br (_, b1, b2) -> if b1 = b2 then [ b1 ] else [ b1; b2 ]
  | I.Switch (_, cases, dflt) ->
    let seen = Hashtbl.create 8 in
    List.filter
      (fun b ->
        if Hashtbl.mem seen b then false else (Hashtbl.add seen b (); true))
      (List.map snd cases @ [ dflt ])

let build (fn : Prog.func) : cfg =
  let n = Array.length fn.Prog.blocks in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iter
    (fun (b : Prog.block) ->
      let ss = successors b.Prog.term in
      succs.(b.Prog.bid) <- ss;
      List.iter (fun s -> preds.(s) <- b.Prog.bid :: preds.(s)) ss)
    fn.Prog.blocks;
  Array.iteri (fun i l -> preds.(i) <- List.rev l) preds;
  (* Depth-first postorder from the entry block; unreachable blocks keep
     rpo_index -1 and are skipped by the solver. *)
  let visited = Array.make n false in
  let post = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succs.(b);
      post := b :: !post
    end
  in
  if n > 0 then dfs 0;
  let rpo = Array.of_list !post in
  let rpo_index = Array.make n (-1) in
  Array.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  { nblocks = n; succs; preds; rpo; rpo_index }

(* ---------- dominators ---------- *)

(** [idom.(b)] is the immediate dominator of [b]; the entry block is its
    own idom, unreachable blocks carry -1. *)
let dominators (g : cfg) : int array =
  let idom = Array.make g.nblocks (-1) in
  if g.nblocks = 0 then idom
  else begin
    idom.(0) <- 0;
    let intersect a b =
      if a = b then a
      else begin
        (* walk up the tree: "lower" means later in reverse postorder *)
        let a = ref a and b = ref b in
        while !a <> !b do
          while g.rpo_index.(!a) > g.rpo_index.(!b) do a := idom.(!a) done;
          while g.rpo_index.(!b) > g.rpo_index.(!a) do b := idom.(!b) done
        done;
        !a
      end
    in
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if b <> 0 then begin
            let processed p = idom.(p) <> -1 in
            match List.filter processed g.preds.(b) with
            | [] -> ()
            | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
          end)
        g.rpo
    done;
    idom
  end

(** [dominates idom a b]: does block [a] dominate block [b]? Reflexive;
    false when either block is unreachable. *)
let dominates (idom : int array) a b =
  if a < 0 || b < 0 || a >= Array.length idom || b >= Array.length idom then
    false
  else if idom.(a) = -1 || idom.(b) = -1 then false
  else begin
    let rec walk x =
      if x = a then true
      else if x = 0 then a = 0
      else walk idom.(x)
    in
    walk b
  end

(* ---------- generic forward solver ---------- *)

(** Forward dataflow over block-level transfer functions.

    [solve g ~entry ~bottom ~join ~equal ~transfer] returns the fixpoint
    array of block *entry* states. [entry] seeds block 0; every other
    reachable block starts at [bottom] (the identity of [join], i.e. the
    "unvisited" state — for a must-analysis this is the full set, for a
    may-analysis the empty set). [transfer b s] must be pure. Blocks are
    revisited in reverse postorder until convergence, which is guaranteed
    for monotone transfers over finite-height lattices. *)
let solve (g : cfg) ~(entry : 'a) ~(bottom : 'a) ~(join : 'a -> 'a -> 'a)
    ~(equal : 'a -> 'a -> bool) ~(transfer : int -> 'a -> 'a) : 'a array =
  let in_state = Array.make (max g.nblocks 1) bottom in
  if g.nblocks = 0 then [||]
  else begin
    in_state.(0) <- entry;
    let out_state = Array.make g.nblocks bottom in
    let out_valid = Array.make g.nblocks false in
    let changed = ref true in
    let iters = ref 0 in
    while !changed && !iters < 10_000 do
      changed := false;
      incr iters;
      Array.iter
        (fun b ->
          let inp =
            if b = 0 then entry
            else begin
              (* joins ignore predecessors not yet visited: their "out" is
                 the unvisited state, the identity of [join] *)
              let states =
                List.filter_map
                  (fun p -> if out_valid.(p) then Some out_state.(p) else None)
                  g.preds.(b)
              in
              match states with
              | [] -> bottom
              | s :: rest -> List.fold_left join s rest
            end
          in
          in_state.(b) <- inp;
          let out = transfer b inp in
          if (not out_valid.(b)) || not (equal out out_state.(b)) then begin
            out_state.(b) <- out;
            out_valid.(b) <- true;
            changed := true
          end)
        g.rpo
    done;
    in_state
  end
