(** Interprocedural must-lockset and concurrency-context analysis: the
    RacerD-style substrate of the static race detector ({!Racecheck}).

    For every reachable program point the analysis computes (a) the set of
    mutexes that are *must*-held (identified by the points-to object of
    the [mutex_lock] argument), (b) the spawn classes the enclosing
    function may execute under (one class per static [thread_spawn]
    site), and (c) for main-side code, whether spawned threads may still
    be live there (a capped spawn/join counter — the static analogue of
    the machine's "track only while [live > 1]" rule, justified because
    [thread_join] on an invalid handle crashes the machine). *)

module Prog = Levee_ir.Prog

(** The concurrency context of one program point. *)
type ctx = {
  cx_locks : Pointsto.obj list;  (** must-held locks, sorted *)
  cx_classes : int list;         (** spawn classes (site ids), sorted *)
  cx_mainlive : bool;  (** main-side code while spawned threads may be live *)
}

type t

(** [analyze prog pt] solves the interprocedural fixpoint. Deterministic:
    functions are iterated in declaration order. *)
val analyze : Prog.t -> Pointsto.t -> t

(** Does the program contain any [thread_spawn] site at all? *)
val has_spawn : t -> bool

(** May the spawn site of this class produce two or more concurrently
    live threads (site in a loop, spawning function itself spawned or
    multiply called)? *)
val multi_class : t -> int -> bool

(** Context at instruction [idx] of block [block], or [None] when the
    point is statically unreachable (never-called function, dead
    block). *)
val ctx_at : t -> fname:string -> block:int -> idx:int -> ctx option

(** May two accesses with these contexts execute concurrently in two
    distinct threads? True for two distinct spawn classes, a shared
    multi-instance class, or spawned code against live main-side code.
    Lock disjointness is the caller's business. *)
val may_overlap : t -> ctx -> ctx -> bool
