(** Safe stack analysis (paper Section 3.2.4).

    An alloca can live on the safe stack iff every access to it is
    statically provably safe: direct loads/stores of the slot, or accesses
    through constant in-bounds offsets whose derived pointers never escape.
    Everything else — address passed to a callee or intrinsic, stored to
    memory, dynamic indexing, casts — forces the object onto the regular
    (unsafe) stack. *)

type verdict = Safe | Unsafe

(** Classify every alloca of a function: the per-register verdicts plus
    whether the function needs an unsafe frame at all (the FNUStack
    numerator). *)
val classify :
  Levee_ir.Ty.env -> Levee_ir.Prog.func -> (int, verdict) Hashtbl.t * bool
