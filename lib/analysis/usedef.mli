(** Per-function use-def maps over the IR, shared by the char* heuristic,
    the unsafe-cast data-flow augmentation, the points-to refinement and
    the safe stack analysis. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

(** Position of an instruction within its function. *)
type pos = { block : int; idx : int }

type use =
  | Load_addr of pos * Levee_ir.Ty.t (* reg used as load address *)
  | Store_addr of pos * Levee_ir.Ty.t
  | Store_val of pos * Levee_ir.Ty.t (* reg stored as a value *)
  | Gep_base of pos * int (* dst register of the gep *)
  | Gep_index of pos
  | Bin_op of pos * int (* dst register *)
  | Cmp_op of pos
  | Cast_src of pos * int * Levee_ir.Ty.t (* dst register, target type *)
  | Call_arg of pos
  | Intrin_arg of pos * I.intrin * int (* which argument position *)
  | Callee of pos
  | Ret_val
  | Branch_cond

type t = {
  fn : Prog.func;
  defs : (int, pos * I.instr) Hashtbl.t; (* reg -> defining instruction *)
  uses : (int, use list ref) Hashtbl.t;
}

val build : Prog.func -> t

(** The defining instruction of a virtual register, if any. Parameters
    are bound to registers without a defining instruction. *)
val def : t -> int -> (pos * I.instr) option

(** Every recorded use of a register (order unspecified). *)
val uses_of : t -> int -> use list

(** Local origin of an operand, traced through copies, casts, geps and
    the left operand of pointer arithmetic. *)
type origin =
  | From_alloca of Levee_ir.Ty.t
  | From_global of string
  | From_malloc
  | From_load of pos
  | From_call
  | From_fun of string
  | From_const
  | From_param of int (* the i-th parameter of the enclosing function *)
  | Unknown

(** The storage site an address operand roots at, if locally traceable. *)
type site = Site_alloca of int | Site_global of string | Site_unknown

val root_site : ?depth:int -> t -> I.operand -> site
val origin : ?depth:int -> t -> I.operand -> origin
