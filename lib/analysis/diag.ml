(** Structured lint findings over MiniC programs: the back end of the
    [levee analyze] subcommand.

    The report combines the repo's static analyses into one deterministic
    document: unsafe casts and the loads the Castflow dataflow forces into
    the safe store, instrumentation the points-to refinement proves dead
    (provably data-only sensitive accesses), unreachable blocks, indirect
    calls whose callee can never be code, and per-function Table-2-style
    instrumentation percentages.

    Severity [Error] is reserved for internal inconsistencies — the IR
    failing structural verification, or the refinement demoting a position
    the other analyses say must stay instrumented. A clean program lints
    with warnings and infos only; an error means a compiler bug. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

type severity = Info | Warning | Error

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

type finding = {
  severity : severity;
  kind : string;   (* stable identifier, e.g. "unsafe-cast" *)
  func : string;   (* "" for whole-program findings *)
  block : int;     (* -1 when not tied to a position *)
  idx : int;
  msg : string;
}

(* Table-2-style per-function statistics, computed on the uninstrumented
   program: what the CPI pass *would* do, before safe-stack rewriting. *)
type func_stats = {
  fs_name : string;
  fs_mem_ops : int;
  fs_sensitive : int;     (* type-rule sensitive accesses (Fig. 7) *)
  fs_forced : int;        (* loads forced by the unsafe-cast dataflow *)
  fs_char_demoted : int;  (* accesses demoted by the char* heuristic *)
  fs_demotable : int;     (* proven data-only by the points-to refinement *)
  fs_indirect_calls : int;
}

type sep_stats = {
  ss_plain : int;
  ss_certified : int;
  ss_unproven : int;
  ss_opaque : int;
  ss_replay_ok : bool;
}

type report = {
  source : string;
  findings : finding list;     (* sorted: func, block, idx, kind *)
  funcs : func_stats list;     (* program order *)
  races : Racecheck.race list option;
  sep : sep_stats option;
}

let count sev r =
  List.length (List.filter (fun f -> f.severity = sev) r.findings)

let has_errors r = List.exists (fun f -> f.severity = Error) r.findings

(* Registers locally addressing into a programmer-annotated struct
   (mirrors the CPI pass: those accesses must stay instrumented). *)
let annotated_regs annotated (fn : Prog.func) =
  let marked = Hashtbl.create 8 in
  let is_annot s = List.mem s annotated in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Alloca { dst; ty = Ty.Struct s; _ } when is_annot s ->
        Hashtbl.replace marked dst ()
      | I.Gep { dst; base_ty = Ty.Struct s; _ } when is_annot s ->
        Hashtbl.replace marked dst ()
      | I.Gep { dst; base = I.Reg r; _ } | I.Cast { dst; v = I.Reg r; _ }
        when Hashtbl.mem marked r ->
        Hashtbl.replace marked dst ()
      | I.Alloca _ | I.Gep _ | I.Cast _ | I.Bin _ | I.Cmp _ | I.Load _
      | I.Store _ | I.Call _ | I.Intrin _ -> ());
  marked

let analyze ?(annotated = []) ?(name = "<program>") (prog : Prog.t) : report =
  let findings = ref [] in
  let emit severity kind func block idx msg =
    findings := { severity; kind; func; block; idx; msg } :: !findings
  in
  (match Levee_ir.Verify.program_result prog with
   | Ok () -> ()
   | Error e -> emit Error "invalid-ir" "" (-1) (-1) e);
  let ctx = Sensitivity.create prog.Prog.tenv ~annotated in
  let pt = Pointsto.analyze prog in
  let demoted_map = Strheur.demoted prog in
  (* Per-function analysis tables, shared by the findings below and by the
     keep/skip predicates handed to the refinement. *)
  let tables = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace tables fn.Prog.fname
        ( fn,
          Castflow.forced_load_positions ctx fn,
          Castflow.unsafe_cast_positions ctx fn,
          Strheur.demoted_positions_in demoted_map fn,
          annotated_regs annotated fn ));
  let access_addr (fn : Prog.func) (blk, idx) =
    if blk < 0 || blk >= Array.length fn.Prog.blocks then None
    else
      let b = fn.Prog.blocks.(blk) in
      if idx < 0 || idx >= Array.length b.Prog.instrs then None
      else
        match b.Prog.instrs.(idx) with
        | I.Load { addr; _ } | I.Store { addr; _ } -> Some addr
        | _ -> None
  in
  let keep fname pos =
    match Hashtbl.find_opt tables fname with
    | None -> true
    | Some (fn, forced, _, _, annot) ->
      Hashtbl.mem forced pos
      || (match access_addr fn pos with
          | Some (I.Reg r) -> Hashtbl.mem annot r
          | Some _ -> false
          | None -> true)
  in
  let skip fname pos =
    match Hashtbl.find_opt tables fname with
    | None -> false
    | Some (_, _, _, demoted, _) -> Hashtbl.mem demoted pos
  in
  let demotable = Pointsto.refine_cpi pt ~ctx ~keep ~skip in
  (* Functions reachable from a thread_spawn target via direct calls:
     sensitive accesses there execute concurrently with other threads,
     so the safe-store traffic they imply (sp-load/sp-store under CPI)
     must be serialised by a dominating mutex_lock. *)
  let spawn_reachable = Hashtbl.create 8 in
  Prog.iter_funcs prog (fun fn ->
      Prog.iter_instrs fn (fun i ->
          match i with
          | I.Intrin { op = I.I_thread_spawn; args = I.Fun f :: _; _ }
            when Prog.has_func prog f ->
            Hashtbl.replace spawn_reachable f ()
          | _ -> ()));
  let changed = ref true in
  while !changed do
    changed := false;
    Prog.iter_funcs prog (fun fn ->
        if Hashtbl.mem spawn_reachable fn.Prog.fname then
          Prog.iter_instrs fn (fun i ->
              match i with
              | I.Call { callee = I.Direct g; _ }
                when Prog.has_func prog g
                     && not (Hashtbl.mem spawn_reachable g) ->
                Hashtbl.replace spawn_reachable g ();
                changed := true
              | _ -> ()))
  done;
  let funcs = ref [] in
  Prog.iter_funcs prog (fun fn ->
      let fname = fn.Prog.fname in
      let _, forced, casts, demoted, _ = Hashtbl.find tables fname in
      let mem_ops = ref 0 and sensitive = ref 0 and indirect = ref 0 in
      let g = Dataflow.build fn in
      Array.iteri
        (fun bi (b : Prog.block) ->
          (* Empty unreachable blocks are lowering plumbing (join points
             after returns); only flag dead blocks holding real code. *)
          if g.Dataflow.rpo_index.(bi) < 0 && Array.length b.Prog.instrs > 0
          then
            emit Warning "dead-block" fname b.Prog.bid (-1)
              "unreachable basic block (never analysed or instrumented)";
          Array.iteri
            (fun idx (i : I.instr) ->
              match i with
              | I.Load { ty; _ } | I.Store { ty; _ } ->
                incr mem_ops;
                if Sensitivity.is_sensitive ctx ty then incr sensitive;
                if Hashtbl.mem demotable (fname, b.Prog.bid, idx) then
                  emit Info "dead-instrumentation" fname b.Prog.bid idx
                    "sensitive access is provably data-only; CPI demotes it \
                     to a plain access"
              | I.Call { callee = I.Indirect op; _ } ->
                incr indirect;
                let objs = Pointsto.points_to pt ~fname op in
                if objs <> [] && not (Pointsto.value_may_be_code pt ~fname op)
                then
                  emit Warning "never-code-callee" fname b.Prog.bid idx
                    "indirect call through a value that can never hold a \
                     code pointer; this call can only trap"
              | I.Alloca _ | I.Bin _ | I.Cmp _ | I.Gep _ | I.Cast _
              | I.Call _ | I.Intrin _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks;
      if Hashtbl.mem spawn_reachable fname then begin
        (* Minimum lock depth at each point (forward dataflow, join =
           min): a sensitive shared access at possible depth 0 may race
           on the safe store from a spawned thread. *)
        let locals = Hashtbl.create 8 in
        Prog.iter_instrs fn (fun i ->
            match i with
            | I.Alloca { dst; _ } -> Hashtbl.replace locals dst ()
            | _ -> ());
        let step d (i : I.instr) =
          match i with
          | I.Intrin { op = I.I_mutex_lock; _ } -> d + 1
          | I.Intrin { op = I.I_mutex_unlock; _ } -> max 0 (d - 1)
          | _ -> d
        in
        let entry_depth =
          Dataflow.solve g ~entry:(Some 0) ~bottom:None
            ~join:(fun a b ->
              match (a, b) with
              | None, x | x, None -> x
              | Some a, Some b -> Some (min a b))
            ~equal:( = )
            ~transfer:(fun bi d ->
              match d with
              | None -> None
              | Some d ->
                Some
                  (Array.fold_left step d fn.Prog.blocks.(bi).Prog.instrs))
        in
        Array.iteri
          (fun bi (b : Prog.block) ->
            match entry_depth.(bi) with
            | None -> ()
            | Some d0 ->
              let d = ref d0 in
              Array.iteri
                (fun idx (i : I.instr) ->
                  (match i with
                   | I.Load { ty; addr; _ } | I.Store { ty; addr; _ }
                     when Sensitivity.is_sensitive ctx ty ->
                     let local =
                       match addr with
                       | I.Reg r -> Hashtbl.mem locals r
                       | _ -> false
                     in
                     if !d = 0 && not local then
                       emit Warning "thread-unsafe-intrinsic" fname
                         b.Prog.bid idx
                         "sensitive access reachable from a spawned thread \
                          without a dominating lock; concurrent safe-store \
                          updates can race"
                   | _ -> ());
                  d := step !d i)
                b.Prog.instrs)
          fn.Prog.blocks
      end;
      Hashtbl.iter
        (fun (blk, idx) () ->
          emit Warning "unsafe-cast" fname blk idx
            "cast produces a sensitive pointer type; the source value's \
             provenance must be recovered")
        casts;
      Hashtbl.iter
        (fun (blk, idx) () ->
          emit Warning "castflow-forced-load" fname blk idx
            "load forced through the safe store: its value flows into a \
             cast to a sensitive pointer type")
        forced;
      (* Internal consistency: the refinement must never demote a position
         the other analyses exclude. *)
      Hashtbl.iter
        (fun (f, blk, idx) () ->
          if f = fname
             && (Hashtbl.mem forced (blk, idx) || Hashtbl.mem demoted (blk, idx))
          then
            emit Error "inconsistent-demotion" fname blk idx
              "points-to refinement demoted a position that must stay \
               instrumented (analysis bug)")
        demotable;
      let demotable_here = ref 0 in
      Hashtbl.iter
        (fun (f, _, _) () -> if f = fname then incr demotable_here)
        demotable;
      funcs :=
        { fs_name = fname;
          fs_mem_ops = !mem_ops;
          fs_sensitive = !sensitive;
          fs_forced = Hashtbl.length forced;
          fs_char_demoted = Hashtbl.length demoted;
          fs_demotable = !demotable_here;
          fs_indirect_calls = !indirect }
        :: !funcs);
  let order f = (f.func, f.block, f.idx, f.kind, f.msg) in
  { source = name;
    findings = List.sort (fun a b -> compare (order a) (order b)) !findings;
    funcs = List.rev !funcs;
    races = None;
    sep = None }

(* Canonical diagnostic order: position first, then kind and message, so
   the report (and its JSON bytes) are independent of emission order. *)
let sort_findings fs =
  let order f = (f.func, f.block, f.idx, f.kind, f.msg) in
  List.sort (fun a b -> compare (order a) (order b)) fs

let add_races r (races : Racecheck.race list) =
  let findings =
    List.fold_left
      (fun acc (rc : Racecheck.race) ->
        match rc.Racecheck.rc_sites with
        | [] -> acc
        | (first : Racecheck.site) :: _ ->
          { severity = Warning;
            kind = "potential-race";
            func = first.Racecheck.st_func;
            block = first.Racecheck.st_block;
            idx = first.Racecheck.st_idx;
            msg =
              Printf.sprintf
                "%s (%s) is written without a common lock by concurrent \
                 threads (%d access sites)"
                rc.Racecheck.rc_obj rc.Racecheck.rc_storage
                (List.length rc.Racecheck.rc_sites) }
          :: acc)
      r.findings races
  in
  { r with races = Some races; findings = sort_findings findings }

let add_separation r (sep : Racecheck.separation) =
  let findings =
    List.fold_left
      (fun acc (u : Racecheck.unproven) ->
        { severity = Info;
          kind = "unproven-separation";
          func = u.Racecheck.up_func;
          block = u.Racecheck.up_block;
          idx = u.Racecheck.up_idx;
          msg =
            "plain store not certified as separate from safe-region \
             storage: " ^ u.Racecheck.up_reason }
        :: acc)
      r.findings sep.Racecheck.sp_unproven
  in
  let findings =
    match sep.Racecheck.sp_replay with
    | Ok () -> findings
    | Error e ->
      { severity = Error; kind = "separation-replay"; func = ""; block = -1;
        idx = -1;
        msg = "separation certificates failed independent replay: " ^ e }
      :: findings
  in
  let stats =
    { ss_plain = sep.Racecheck.sp_plain;
      ss_certified = List.length sep.Racecheck.sp_certs;
      ss_unproven = List.length sep.Racecheck.sp_unproven;
      ss_opaque = List.length sep.Racecheck.sp_model.Levee_ir.Verify.sm_opaque;
      ss_replay_ok = sep.Racecheck.sp_replay = Ok () }
  in
  { r with sep = Some stats; findings = sort_findings findings }

(* ---------- rendering ---------- *)

let pct num den =
  if den = 0 then 0.0 else 100.0 *. float_of_int num /. float_of_int den

let finding_to_string f =
  let where =
    if f.block < 0 then f.func
    else if f.idx < 0 then Printf.sprintf "%s@b%d" f.func f.block
    else Printf.sprintf "%s@b%d.%d" f.func f.block f.idx
  in
  Printf.sprintf "%-7s %-22s %-16s %s" (severity_name f.severity) f.kind
    where f.msg

let to_human ?elided ?demoted r =
  let b = Buffer.create 1024 in
  Buffer.add_string b (Printf.sprintf "== levee analyze: %s ==\n" r.source);
  Buffer.add_string b
    (Printf.sprintf "%-16s %7s %9s %6s %6s %9s %8s\n" "function" "mem-ops"
       "sensitive" "forced" "char-" "demotable" "icalls");
  List.iter
    (fun fs ->
      Buffer.add_string b
        (Printf.sprintf "%-16s %7d %4d(%4.1f%%) %6d %6d %9d %8d\n" fs.fs_name
           fs.fs_mem_ops fs.fs_sensitive
           (pct fs.fs_sensitive fs.fs_mem_ops)
           fs.fs_forced fs.fs_char_demoted fs.fs_demotable
           fs.fs_indirect_calls))
    r.funcs;
  if r.findings <> [] then begin
    Buffer.add_string b "\n";
    List.iter
      (fun f -> Buffer.add_string b (finding_to_string f ^ "\n"))
      r.findings
  end;
  (match r.races with
   | None -> ()
   | Some races ->
     Buffer.add_string b
       (Printf.sprintf "\nstatic races: %d racy object(s)\n"
          (List.length races));
     List.iter
       (fun (rc : Racecheck.race) ->
         Buffer.add_string b
           (Printf.sprintf "  %-24s %-12s %d site(s)\n" rc.Racecheck.rc_obj
              rc.Racecheck.rc_storage
              (List.length rc.Racecheck.rc_sites)))
       races);
  (match r.sep with
   | None -> ()
   | Some s ->
     Buffer.add_string b
       (Printf.sprintf
          "\nsafe-region separation: %d plain store(s), %d certified, %d \
           unproven, %d opaque-safe; certificate replay: %s\n"
          s.ss_plain s.ss_certified s.ss_unproven s.ss_opaque
          (if s.ss_replay_ok then "ok" else "FAILED")));
  (match (elided, demoted) with
   | Some e, Some d ->
     Buffer.add_string b
       (Printf.sprintf "\ncpi pipeline: %d checks elided, %d accesses demoted\n"
          e d)
   | Some e, None ->
     Buffer.add_string b (Printf.sprintf "\ncpi pipeline: %d checks elided\n" e)
   | None, Some d ->
     Buffer.add_string b
       (Printf.sprintf "\ncpi pipeline: %d accesses demoted\n" d)
   | None, None -> ());
  Buffer.add_string b
    (Printf.sprintf "%d error(s), %d warning(s), %d info(s)\n" (count Error r)
       (count Warning r) (count Info r));
  Buffer.contents b

(* /2 added the optional "races" and "separation" sections and pinned the
   canonical finding order; /1 documents are a strict subset. *)
let schema_id = "levee-analyze/2"

(* Shared escaping and float formatting so every JSON dialect agrees. *)
let escape = Levee_support.Jsonenc.escape

let to_json ?elided ?demoted r =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\n\"schema\":\"%s\",\n\"source\":\"%s\",\n" schema_id
       (escape r.source));
  Buffer.add_string b "\"findings\":[\n";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"severity\":\"%s\",\"kind\":\"%s\",\"func\":\"%s\",\
            \"block\":%d,\"idx\":%d,\"msg\":\"%s\"}"
           (severity_name f.severity) (escape f.kind) (escape f.func) f.block
           f.idx (escape f.msg)))
    r.findings;
  Buffer.add_string b "\n],\n\"functions\":[\n";
  List.iteri
    (fun i fs ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"mem_ops\":%d,\"sensitive\":%d,\
            \"sensitive_pct\":%s,\"forced\":%d,\"char_demoted\":%d,\
            \"demotable\":%d,\"indirect_calls\":%d}"
           (escape fs.fs_name) fs.fs_mem_ops fs.fs_sensitive
           (Levee_support.Jsonenc.float_str (pct fs.fs_sensitive fs.fs_mem_ops))
           fs.fs_forced fs.fs_char_demoted fs.fs_demotable
           fs.fs_indirect_calls))
    r.funcs;
  Buffer.add_string b "\n],\n";
  (match r.races with
   | None -> ()
   | Some races ->
     Buffer.add_string b "\"races\":[\n";
     List.iteri
       (fun i (rc : Racecheck.race) ->
         if i > 0 then Buffer.add_string b ",\n";
         Buffer.add_string b
           (Printf.sprintf "{\"object\":\"%s\",\"storage\":\"%s\",\"sites\":["
              (escape rc.Racecheck.rc_obj)
              (escape rc.Racecheck.rc_storage));
         List.iteri
           (fun j (s : Racecheck.site) ->
             if j > 0 then Buffer.add_string b ",";
             Buffer.add_string b
               (Printf.sprintf
                  "{\"func\":\"%s\",\"block\":%d,\"idx\":%d,\"write\":%b,\
                   \"locked\":%b}"
                  (escape s.Racecheck.st_func) s.Racecheck.st_block
                  s.Racecheck.st_idx s.Racecheck.st_write
                  s.Racecheck.st_locked))
           rc.Racecheck.rc_sites;
         Buffer.add_string b "]}")
       races;
     Buffer.add_string b "\n],\n");
  (match r.sep with
   | None -> ()
   | Some s ->
     Buffer.add_string b
       (Printf.sprintf
          "\"separation\":{\"plain_stores\":%d,\"certified\":%d,\
           \"unproven\":%d,\"opaque_safe\":%d,\"replay_ok\":%b},\n"
          s.ss_plain s.ss_certified s.ss_unproven s.ss_opaque s.ss_replay_ok));
  (match (elided, demoted) with
   | Some e, Some d ->
     Buffer.add_string b
       (Printf.sprintf "\"cpi\":{\"checks_elided\":%d,\"mem_ops_demoted\":%d},\n"
          e d)
   | Some e, None ->
     Buffer.add_string b (Printf.sprintf "\"cpi\":{\"checks_elided\":%d},\n" e)
   | None, Some d ->
     Buffer.add_string b
       (Printf.sprintf "\"cpi\":{\"mem_ops_demoted\":%d},\n" d)
   | None, None -> ());
  Buffer.add_string b
    (Printf.sprintf "\"totals\":{\"errors\":%d,\"warnings\":%d,\"info\":%d}\n}\n"
       (count Error r) (count Warning r) (count Info r));
  Buffer.contents b

(* Analysis counts are a pure function of the source, so every field sits
   at 0% tolerance under `levee history --gate`: any drift in finding or
   certification counts is a regression (or an intentional change to be
   re-baselined), never noise. *)
let to_record ?commit ?(name = "<program>") r =
  let module Runstore = Levee_support.Runstore in
  Runstore.make ~schema:schema_id ~kind:"analyze" ?commit ~config:name ~seed:0
    ~wall_us:0
    ([ ("functions", Runstore.Int (List.length r.funcs));
       ("findings_errors", Runstore.Int (count Error r));
       ("findings_warnings", Runstore.Int (count Warning r));
       ("findings_info", Runstore.Int (count Info r)) ]
    @ (match r.races with
      | None -> []
      | Some races -> [ ("races_static", Runstore.Int (List.length races)) ])
    @
    match r.sep with
    | None -> []
    | Some s ->
      [ ("sep_certified", Runstore.Int s.ss_certified);
        ("sep_unproven", Runstore.Int s.ss_unproven);
        ("sep_replay_ok", Runstore.Int (if s.ss_replay_ok then 1 else 0)) ])
