(** Per-function CFG, dominator tree and generic forward worklist solver:
    the substrate shared by the flow-sensitive analyses (redundant-check
    elision, diagnostics). *)

type cfg = {
  nblocks : int;
  succs : int list array;
  preds : int list array;
  rpo : int array;           (** reverse postorder of reachable blocks *)
  rpo_index : int array;     (** block id -> position in [rpo], -1 if dead *)
}

(** Successor block ids of a terminator, deduplicated. *)
val successors : Levee_ir.Instr.term -> int list

val build : Levee_ir.Prog.func -> cfg

(** Immediate-dominator array (iterative Cooper–Harvey–Kennedy).
    [idom.(0) = 0]; unreachable blocks carry -1. *)
val dominators : cfg -> int array

(** [dominates idom a b]: block [a] dominates block [b] (reflexive). *)
val dominates : int array -> int -> int -> bool

(** Forward dataflow returning the fixpoint block-entry states. [entry]
    seeds block 0, [bottom] is the unvisited state (identity of [join]);
    [transfer] must be pure and monotone. *)
val solve :
  cfg ->
  entry:'a ->
  bottom:'a ->
  join:('a -> 'a -> 'a) ->
  equal:('a -> 'a -> bool) ->
  transfer:(int -> 'a -> 'a) ->
  'a array
