(** Static race detection and safe-region separation (see the .mli). *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module V = Levee_ir.Verify

(* ---------- potential data races ---------- *)

type site = {
  st_func : string;
  st_block : int;
  st_idx : int;
  st_write : bool;
  st_locked : bool;
}

type race = {
  rc_obj : string;
  rc_storage : string;
  rc_sites : site list;
}

type ev = {
  ev_func : string;
  ev_block : int;
  ev_idx : int;
  ev_write : bool;
  ev_ty : Ty.t option; (* None for intrinsic (untyped) accesses *)
  ev_ctx : Lockset.ctx;
}

(* Memory effects of the intrinsics whose implementation goes through the
   machine's race-tracked plain access path ([plain_read]/[plain_write]).
   [I_atomic_add] is deliberately absent: the machine mutes the detector
   for its RMW, so the static model treats it as synchronised too. *)
let intrin_effects (op : I.intrin) : (int * bool) list =
  match op with
  | I.I_memcpy | I.I_cpi_memcpy | I.I_strcpy -> [ (0, true); (1, false) ]
  | I.I_memset | I.I_cpi_memset | I.I_read_input | I.I_setjmp -> [ (0, true) ]
  | I.I_strlen | I.I_longjmp -> [ (0, false) ]
  | I.I_strcmp -> [ (0, false); (1, false) ]
  | _ -> []

(* Registers locally derived from each alloca, then the allocas whose
   address escapes the frame (stored as a value, passed to a call or to
   thread_spawn): only those can be touched by another thread, so only
   those participate in same-function race pairs — two instances of a
   spawned worker each own a distinct copy of an unescaped local. *)
let published_allocas (fn : Prog.func) : (int, unit) Hashtbl.t =
  let derived : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let roots_of r = Option.value ~default:[] (Hashtbl.find_opt derived r) in
  let roots_of_op = function I.Reg r -> roots_of r | _ -> [] in
  for _pass = 1 to 2 do
    Prog.iter_instrs fn (fun i ->
        match i with
        | I.Alloca { dst; _ } -> Hashtbl.replace derived dst [ dst ]
        | I.Cast { dst; v; _ } -> Hashtbl.replace derived dst (roots_of_op v)
        | I.Gep { dst; base; _ } -> Hashtbl.replace derived dst (roots_of_op base)
        | I.Bin { dst; l; r; _ } ->
          Hashtbl.replace derived dst (roots_of_op l @ roots_of_op r)
        | _ -> ())
  done;
  let pub = Hashtbl.create 8 in
  let publish o = List.iter (fun r -> Hashtbl.replace pub r ()) (roots_of_op o) in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Store { v; _ } -> publish v
      | I.Call { args; _ } -> List.iter publish args
      | I.Intrin { op = I.I_thread_spawn; args; _ } -> List.iter publish args
      | _ -> ());
  pub

let races ?(annotated = []) (prog : Prog.t) : race list =
  let pt = Pointsto.analyze prog in
  let ls = Lockset.analyze prog pt in
  if not (Lockset.has_spawn ls) then []
  else begin
    let sctx = Sensitivity.create prog.Prog.tenv ~annotated in
    let published = Hashtbl.create 8 in
    Prog.iter_funcs prog (fun fn ->
        Hashtbl.replace published fn.Prog.fname (published_allocas fn));
    let events : (Pointsto.obj, ev list ref) Hashtbl.t = Hashtbl.create 32 in
    let obj_order = ref [] in
    let record fname bid idx ~write ~ty addr =
      match Lockset.ctx_at ls ~fname ~block:bid ~idx with
      | None -> ()
      | Some ctx ->
        let objs =
          match Pointsto.points_to pt ~fname addr with
          | [] -> [ Pointsto.O_unknown ]
          | objs -> List.filter (fun o -> o <> Pointsto.O_code) objs
        in
        List.iter
          (fun obj ->
            let keep =
              match obj with
              | Pointsto.O_alloca (owner, r) when owner = fname ->
                (* the owner touching its own (per-instance) local is
                   private unless the address escaped the frame *)
                (match Hashtbl.find_opt published fname with
                 | Some pub -> Hashtbl.mem pub r
                 | None -> true)
              | _ -> true
            in
            if keep then begin
              if not (Hashtbl.mem events obj) then begin
                Hashtbl.replace events obj (ref []);
                obj_order := obj :: !obj_order
              end;
              let l = Hashtbl.find events obj in
              l :=
                { ev_func = fname; ev_block = bid; ev_idx = idx;
                  ev_write = write; ev_ty = ty; ev_ctx = ctx }
                :: !l
            end)
          objs
    in
    Prog.iter_funcs prog (fun fn ->
        let fname = fn.Prog.fname in
        Array.iter
          (fun (b : Prog.block) ->
            Array.iteri
              (fun idx ins ->
                match ins with
                | I.Load { ty; addr; _ } ->
                  record fname b.Prog.bid idx ~write:false ~ty:(Some ty) addr
                | I.Store { ty; addr; _ } ->
                  record fname b.Prog.bid idx ~write:true ~ty:(Some ty) addr
                | I.Intrin { op; args; _ } ->
                  List.iter
                    (fun (argi, write) ->
                      match List.nth_opt args argi with
                      | Some a ->
                        record fname b.Prog.bid idx ~write ~ty:None a
                      | None -> ())
                    (intrin_effects op)
                | _ -> ())
              b.Prog.instrs)
          fn.Prog.blocks);
    let disjoint_locks a b =
      not
        (List.exists
           (fun l -> List.mem l b.Lockset.cx_locks)
           a.Lockset.cx_locks)
    in
    let races = ref [] in
    List.iter
      (fun obj ->
        let evs = Array.of_list (List.rev !(Hashtbl.find events obj)) in
        let n = Array.length evs in
        let part = Array.make n false in
        for i = 0 to n - 1 do
          for j = i + 1 to n - 1 do
            let a = evs.(i) and b = evs.(j) in
            if
              (a.ev_write || b.ev_write)
              && Lockset.may_overlap ls a.ev_ctx b.ev_ctx
              && disjoint_locks a.ev_ctx b.ev_ctx
            then begin
              part.(i) <- true;
              part.(j) <- true
            end
          done
        done;
        let sites = ref [] and sensitive = ref false in
        Array.iteri
          (fun i e ->
            if part.(i) then begin
              (match e.ev_ty with
               | Some ty when Sensitivity.is_sensitive sctx ty ->
                 sensitive := true
               | _ -> ());
              sites :=
                { st_func = e.ev_func; st_block = e.ev_block;
                  st_idx = e.ev_idx; st_write = e.ev_write;
                  st_locked = e.ev_ctx.Lockset.cx_locks <> [] }
                :: !sites
            end)
          evs;
        if !sites <> [] then
          races :=
            { rc_obj = Pointsto.obj_to_string obj;
              rc_storage = (if !sensitive then "safe-region" else "shared-data");
              rc_sites = List.rev !sites }
            :: !races)
      (List.rev !obj_order);
    List.sort (fun a b -> compare (a.rc_obj, a.rc_storage) (b.rc_obj, b.rc_storage))
      !races
  end

(* ---------- safe-region separation ---------- *)

type unproven = {
  up_func : string;
  up_block : int;
  up_idx : int;
  up_reason : string;
}

type separation = {
  sp_plain : int;
  sp_safe : int;
  sp_certs : V.separation_cert list;
  sp_unproven : unproven list;
  sp_model : V.separation_model;
  sp_replay : (unit, string) result;
}

let is_safe_where (w : I.where) =
  match w with
  | I.SafeFull | I.SafeValue | I.SafeDebug | I.SafeData -> true
  (* Crypt accesses hit the regular region (ciphertext in place), so they
     participate in regular-region races like any plain access. *)
  | I.Regular | I.RegularMeta | I.Crypt -> false

let separation (prog : Prog.t) : separation =
  let pt = Pointsto.analyze prog in
  (* The protected set: every Andersen object a safe-routed access may
     touch, plus the replay-vocabulary model of the same facts. *)
  let safe_objs : (Pointsto.obj, unit) Hashtbl.t = Hashtbl.create 16 in
  let safe_unmodelled = ref false in
  let sm_safe = ref [] and sm_opaque = ref [] in
  let nsafe = ref 0 in
  Prog.iter_funcs prog (fun fn ->
      let fname = fn.Prog.fname in
      let walk = V.local_roots fn in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx ins ->
              let addr =
                match ins with
                | I.Load { addr; where; _ } | I.Store { addr; where; _ }
                  when is_safe_where where -> Some addr
                | _ -> None
              in
              match addr with
              | None -> ()
              | Some addr ->
                incr nsafe;
                let objs = Pointsto.points_to pt ~fname addr in
                if objs = [] || List.mem Pointsto.O_unknown objs then
                  safe_unmodelled := true;
                List.iter (fun o -> Hashtbl.replace safe_objs o ()) objs;
                (match walk addr with
                 | Some roots ->
                   List.iter
                     (fun r ->
                       sm_safe :=
                         (match r with
                          | V.Sr_global _ -> ("", r)
                          | _ -> (fname, r))
                         :: !sm_safe)
                     roots
                 | None -> sm_opaque := (fname, b.Prog.bid, idx) :: !sm_opaque))
            b.Prog.instrs)
        fn.Prog.blocks);
  let model =
    { V.sm_safe = List.sort_uniq compare !sm_safe;
      V.sm_opaque = List.sort_uniq compare !sm_opaque }
  in
  (* Judge every plain store. *)
  let certs = ref [] and unproven = ref [] and nplain = ref 0 in
  Prog.iter_funcs prog (fun fn ->
      let fname = fn.Prog.fname in
      let walk = V.local_roots fn in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx ins ->
              match ins with
              | I.Store { addr; where = I.Regular; _ } ->
                incr nplain;
                let fail reason =
                  unproven :=
                    { up_func = fname; up_block = b.Prog.bid; up_idx = idx;
                      up_reason = reason }
                    :: !unproven
                in
                let objs = Pointsto.points_to pt ~fname addr in
                if !safe_unmodelled then
                  fail "a safe-routed access is unmodelled by points-to"
                else if objs = [] then
                  fail "store address is unmodelled by points-to"
                else if List.mem Pointsto.O_unknown objs then
                  fail "store address may reach unmodelled memory"
                else if List.exists (Hashtbl.mem safe_objs) objs then
                  fail
                    "store may alias safe-region storage (authoritative copy \
                     shielded by the safe store)"
                else begin
                  match walk addr with
                  | Some roots ->
                    certs :=
                      { V.sc_func = fname; V.sc_block = b.Prog.bid;
                        V.sc_idx = idx;
                        V.sc_roots = List.sort_uniq compare roots }
                      :: !certs
                  | None -> fail "store address has opaque local provenance"
                end
              | _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  let certs = List.rev !certs in
  { sp_plain = !nplain;
    sp_safe = !nsafe;
    sp_certs = certs;
    sp_unproven = List.rev !unproven;
    sp_model = model;
    sp_replay = V.check_separation prog ~model certs }
