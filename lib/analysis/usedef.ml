(** Per-function use-def maps over the IR, shared by the char* heuristic,
    the unsafe-cast data-flow augmentation and the safe stack analysis. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

(** Position of an instruction within its function. *)
type pos = { block : int; idx : int }

type use =
  | Load_addr of pos * Levee_ir.Ty.t        (* reg used as load address *)
  | Store_addr of pos * Levee_ir.Ty.t
  | Store_val of pos * Levee_ir.Ty.t        (* reg stored as a value *)
  | Gep_base of pos * int                   (* dst register of the gep *)
  | Gep_index of pos
  | Bin_op of pos * int                     (* dst register *)
  | Cmp_op of pos
  | Cast_src of pos * int * Levee_ir.Ty.t   (* dst register, target type *)
  | Call_arg of pos
  | Intrin_arg of pos * I.intrin * int      (* which argument position *)
  | Callee of pos
  | Ret_val
  | Branch_cond

type t = {
  fn : Prog.func;
  defs : (int, pos * I.instr) Hashtbl.t;    (* reg -> defining instruction *)
  uses : (int, use list ref) Hashtbl.t;
}

let add_use t r u =
  match Hashtbl.find_opt t.uses r with
  | Some l -> l := u :: !l
  | None -> Hashtbl.replace t.uses r (ref [ u ])

let reg_of = function I.Reg r -> Some r | I.Imm _ | I.Glob _ | I.Fun _ | I.Nullp -> None

let use o t u =
  match reg_of o with
  | Some r -> add_use t r u
  | None -> ()

let build (fn : Prog.func) : t =
  let t = { fn; defs = Hashtbl.create 64; uses = Hashtbl.create 64 } in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iteri
        (fun idx (i : I.instr) ->
          let pos = { block = b.Prog.bid; idx } in
          let def r = Hashtbl.replace t.defs r (pos, i) in
          match i with
          | I.Alloca { dst; _ } -> def dst
          | I.Bin { dst; l; r; _ } ->
            use l t (Bin_op (pos, dst));
            use r t (Bin_op (pos, dst));
            def dst
          | I.Cmp { dst; l; r; _ } ->
            use l t (Cmp_op pos);
            use r t (Cmp_op pos);
            def dst
          | I.Load { dst; ty; addr; _ } ->
            use addr t (Load_addr (pos, ty));
            def dst
          | I.Store { ty; v; addr; _ } ->
            use v t (Store_val (pos, ty));
            use addr t (Store_addr (pos, ty))
          | I.Gep { dst; base; path; _ } ->
            use base t (Gep_base (pos, dst));
            List.iter
              (function
                | I.Index (_, o) -> use o t (Gep_index pos)
                | I.Field _ -> ())
              path;
            def dst
          | I.Cast { dst; ty; v; _ } ->
            use v t (Cast_src (pos, dst, ty));
            def dst
          | I.Call { dst; callee; args; _ } ->
            (match callee with
             | I.Indirect o -> use o t (Callee pos)
             | I.Direct _ -> ());
            List.iter (fun a -> use a t (Call_arg pos)) args;
            (match dst with Some d -> def d | None -> ())
          | I.Intrin { dst; op; args } ->
            List.iteri (fun k a -> use a t (Intrin_arg (pos, op, k))) args;
            (match dst with Some d -> def d | None -> ()))
        b.Prog.instrs;
      match b.Prog.term with
      | I.Ret (Some o) -> use o t Ret_val
      | I.Br (o, _, _) | I.Switch (o, _, _) -> use o t Branch_cond
      | I.Ret None | I.Jmp _ | I.Unreachable -> ())
    fn.Prog.blocks;
  t

let def t r = Hashtbl.find_opt t.defs r

let uses_of t r =
  match Hashtbl.find_opt t.uses r with
  | Some l -> !l
  | None -> []

(** Trace the local origin of an operand through copies, casts, geps and
    pointer arithmetic. *)
type origin =
  | From_alloca of Levee_ir.Ty.t
  | From_global of string
  | From_malloc
  | From_load of pos
  | From_call
  | From_fun of string
  | From_const
  | From_param of int       (* the i-th parameter of the enclosing function *)
  | Unknown

(** The storage site an address operand roots at, if locally traceable:
    the alloca register or global that owns the memory. Used to make
    per-pointer (rather than per-instruction) decisions, e.g. the char*
    heuristic must demote all accesses of a pointer or none. *)
type site = Site_alloca of int | Site_global of string | Site_unknown

let rec root_site ?(depth = 16) t (o : I.operand) : site =
  if depth = 0 then Site_unknown
  else
    match o with
    | I.Glob g -> Site_global g
    | I.Imm _ | I.Nullp | I.Fun _ -> Site_unknown
    | I.Reg r ->
      (match def t r with
       | None -> Site_unknown
       | Some (_, i) ->
         (match i with
          | I.Alloca _ -> Site_alloca r
          | I.Cast { v; _ } -> root_site ~depth:(depth - 1) t v
          | I.Gep { base; _ } -> root_site ~depth:(depth - 1) t base
          | I.Bin { op = I.Add | I.Sub; l; _ } -> root_site ~depth:(depth - 1) t l
          | I.Bin _ | I.Cmp _ | I.Load _ | I.Store _ | I.Call _ | I.Intrin _ ->
            Site_unknown))

let rec origin ?(depth = 16) t (o : I.operand) : origin =
  if depth = 0 then Unknown
  else
    match o with
    | I.Imm _ | I.Nullp -> From_const
    | I.Glob g -> From_global g
    | I.Fun f -> From_fun f
    | I.Reg r ->
      (match def t r with
       | None ->
         if r < List.length t.fn.Prog.params then From_param r else Unknown
       | Some (pos, i) ->
         (match i with
          | I.Alloca { ty; _ } -> From_alloca ty
          | I.Cast { v; _ } -> origin ~depth:(depth - 1) t v
          | I.Gep { base; _ } -> origin ~depth:(depth - 1) t base
          | I.Bin { op = I.Add | I.Sub; l; _ } -> origin ~depth:(depth - 1) t l
          | I.Bin _ | I.Cmp _ -> From_const
          | I.Load _ -> From_load pos
          | I.Intrin { op = I.I_malloc; _ } -> From_malloc
          | I.Intrin _ | I.Call _ -> From_call
          | I.Store _ -> Unknown))
