(** Safe stack analysis (Section 3.2.4).

    An alloca can live on the safe stack iff every access to it is
    statically provably safe: direct loads/stores of the slot, or accesses
    through constant, in-bounds offsets whose derived pointers never
    escape. Everything else — address passed to a callee or intrinsic,
    stored to memory, dynamic indexing, casts — forces the object onto the
    regular (unsafe) stack. Return addresses and spilled registers always
    satisfy the criterion (they are not allocas here; the machine keeps
    them on the safe stack when the configuration enables it). *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

type verdict = Safe | Unsafe

(* Constant total offset of the gep at [pos], if all steps are constant. *)
let gep_const_offset tenv (fn : Prog.func) (pos : Usedef.pos) =
  let b = fn.Prog.blocks.(pos.Usedef.block) in
  match b.Prog.instrs.(pos.Usedef.idx) with
  | I.Gep { path; _ } ->
    List.fold_left
      (fun acc step ->
        match acc, step with
        | None, _ -> None
        | Some n, I.Field (_, off, _) -> Some (n + off)
        | Some n, I.Index (ty, I.Imm k) -> Some (n + (k * Ty.size_of tenv ty))
        | Some _, I.Index (_, (I.Reg _ | I.Glob _ | I.Fun _ | I.Nullp)) -> None)
      (Some 0) path
  | _ -> None

(* Does the register [r], known to point within [remaining] words of valid
   space, have only provably-safe uses? *)
let rec safe_uses ud tenv ~depth ~remaining r =
  depth > 0
  && List.for_all
       (fun (u : Usedef.use) ->
         match u with
         | Usedef.Load_addr (_, ty) | Usedef.Store_addr (_, ty) ->
           Ty.size_of tenv ty <= remaining
         | Usedef.Gep_base (pos, dst) ->
           (match gep_const_offset tenv ud.Usedef.fn pos with
            | Some off when off >= 0 && off < remaining ->
              safe_uses ud tenv ~depth:(depth - 1) ~remaining:(remaining - off) dst
            | Some _ | None -> false)
         | Usedef.Cmp_op _ | Usedef.Branch_cond -> true
         | Usedef.Store_val _ | Usedef.Bin_op _ | Usedef.Cast_src _
         | Usedef.Call_arg _ | Usedef.Intrin_arg _ | Usedef.Callee _
         | Usedef.Ret_val | Usedef.Gep_index _ -> false)
       (Usedef.uses_of ud r)

(** Classify every alloca of [fn]. Returns the per-register verdict and
    whether the function needs an unsafe frame at all. *)
let classify tenv (fn : Prog.func) : (int, verdict) Hashtbl.t * bool =
  let ud = Usedef.build fn in
  let verdicts = Hashtbl.create 16 in
  let needs_unsafe = ref false in
  Prog.iter_instrs fn (fun (i : I.instr) ->
      match i with
      | I.Alloca { dst; ty; _ } ->
        let size = Ty.size_of tenv ty in
        let v =
          if safe_uses ud tenv ~depth:8 ~remaining:size dst then Safe else Unsafe
        in
        if v = Unsafe then needs_unsafe := true;
        Hashtbl.replace verdicts dst v
      | _ -> ());
  (verdicts, !needs_unsafe)
