(** Machine-level protection configuration.

    Most of a protection mechanism lives in the *instrumented IR* (the
    [where]/[checked] attributes, slot kinds, cookie and CFI flags set by
    the passes in [Levee_core]); this record carries the runtime switches
    the loader and interpreter need. The pass pipeline produces matched
    (program, config) pairs. *)

type isolation =
  | Segments      (* x86-32 segment-style: free isolation *)
  | Info_hiding   (* x86-64 randomized base: free, leak-proof by design *)
  | Sfi           (* software fault isolation: one mask per memory op *)

type t = {
  name : string;
  safe_stack : bool;        (* return addresses + proven-safe slots in safe region *)
  enforce_code_meta : bool; (* CPI/CPS: indirect calls require protected code ptrs *)
  protect_jmpbuf : bool;    (* setjmp's saved PC goes through the safe store *)
  cfi_calls : bool;         (* honor the cfi_checked flag on indirect calls *)
  cfi_returns : bool;       (* coarse CFI: returns must target a call site *)
  dep : bool;               (* non-executable data *)
  aslr : bool;              (* apply the ASLR slide to the layout *)
  store_impl : Safestore.impl;
  isolation : isolation;
  check_cookies : bool;     (* honor per-function cookie flags *)
  check_libc : bool;        (* bounds-check libc memory functions (SoftBound) *)
  cps_entry_words : int;    (* safe-store entry width for footprint accounting *)
  crypt_ptrs : bool;        (* cpi-crypt: key ret slots + jmp_buf PCs in place *)
  crypt_cells : (string * bool array) list;
                            (* cpi-crypt: per-global mask of init cells the
                               loader's plaintext image must be re-encrypted
                               at (sensitive words with non-zero inits) *)
}


(** Completely unprotected baseline (DEP off, ASLR off): the paper's
    "vanilla Ubuntu 6.06" reference point for RIPE. *)
let vanilla =
  { name = "vanilla"; safe_stack = false; enforce_code_meta = false;
    protect_jmpbuf = false; cfi_calls = false; cfi_returns = false;
    dep = false; aslr = false; store_impl = Safestore.Simple_array;
    isolation = Info_hiding; check_cookies = false; check_libc = false;
    cps_entry_words = 4; crypt_ptrs = false; crypt_cells = [] }

(** DEP + ASLR + cookies: a modern stock system ("vanilla Ubuntu 13.10,
    all protections enabled"). *)
let hardened_baseline =
  { vanilla with name = "dep+aslr+cookies"; dep = true; aslr = true;
                 check_cookies = true }

let safe_stack_only =
  { vanilla with name = "safestack"; safe_stack = true; dep = true }

let cps ?(store_impl = Safestore.Simple_array) () =
  { vanilla with name = "cps"; safe_stack = true; enforce_code_meta = true;
                 protect_jmpbuf = true; dep = true; store_impl;
                 cps_entry_words = 1 }

let cpi ?(store_impl = Safestore.Simple_array) () =
  { vanilla with name = "cpi"; safe_stack = true; enforce_code_meta = true;
                 protect_jmpbuf = true; dep = true; store_impl }

let softbound =
  { vanilla with name = "softbound"; dep = true; check_libc = true;
                 store_impl = Safestore.Hashtable }

let cfi =
  { vanilla with name = "cfi"; cfi_calls = true; cfi_returns = true; dep = true }

(** Per-signature CFI (Burow et al.'s "graded precision" middle point):
    same runtime switches as coarse CFI — the precision lives in the
    per-call-site target sets the [cfi-type] pass bakes into the IR. *)
let cfi_type = { cfi with name = "cfi-type" }

(** In-place pointer encryption (LIPPEN / CryptSan / PAC-style): no safe
    region and no safe stack — sensitive pointers stay in ordinary memory
    as ciphertext under a per-run key, return slots and jmp_buf PCs
    included. DEP stays on so a garbled decrypt traps instead of
    executing data. [crypt_cells] is filled in per program by the pass. *)
let cpi_crypt =
  { vanilla with name = "cpi-crypt"; dep = true; crypt_ptrs = true }

let cookies_only = { vanilla with name = "cookies"; check_cookies = true }
