(** Paged word-granular memory.

    Pages are allocated lazily and zero-filled, which both matches OS
    behaviour and lets the evaluation measure the memory footprint of each
    configuration (pages touched x page size). *)

let page_bits = 12
let page_words = 1 lsl page_bits
let page_mask = page_words - 1

type t = {
  pages : (int, int array) Hashtbl.t;
  mutable pages_allocated : int;
}

let create () = { pages = Hashtbl.create 64; pages_allocated = 0 }

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    let p = Array.make page_words 0 in
    Hashtbl.replace t.pages idx p;
    t.pages_allocated <- t.pages_allocated + 1;
    p

(** [read t addr] returns the word at [addr]; unmapped memory reads as 0
    without allocating a page. *)
let read t addr =
  match Hashtbl.find_opt t.pages (addr lsr page_bits) with
  | Some p -> p.(addr land page_mask)
  | None -> 0

let write t addr v = (page t (addr lsr page_bits)).(addr land page_mask) <- v

(** Words of memory currently backed by allocated pages. *)
let footprint_words t = t.pages_allocated * page_words

let clear t =
  Hashtbl.reset t.pages;
  t.pages_allocated <- 0
