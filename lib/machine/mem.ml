(** Paged word-granular memory.

    Pages are allocated lazily and zero-filled, which both matches OS
    behaviour and lets the evaluation measure the memory footprint of each
    configuration (pages touched x page size).

    A one-entry direct-mapped page cache fronts the page hashtable: the hot
    loop's accesses are overwhelmingly to the page they last touched (stack
    frames, the current heap object), so the common path is an integer
    compare plus an array index instead of a hashtable probe. The cache is
    invalidated by [clear]; reads of unmapped memory never allocate a page
    and never populate the cache. *)

let page_bits = 12
let page_words = 1 lsl page_bits
let page_mask = page_words - 1

(* Sentinel page index that no address maps to: [addr lsr page_bits] is
   non-negative for every int, so [min_int] never matches. *)
let no_page_idx = min_int
let no_page : int array = [||]

type t = {
  pages : (int, int array) Hashtbl.t;
  mutable pages_allocated : int;
  mutable last_idx : int;       (* page cache: index of [last_page] *)
  mutable last_page : int array;
}

let create () =
  { pages = Hashtbl.create 64; pages_allocated = 0;
    last_idx = no_page_idx; last_page = no_page }

let page t idx =
  match Hashtbl.find_opt t.pages idx with
  | Some p -> p
  | None ->
    let p = Array.make page_words 0 in
    Hashtbl.replace t.pages idx p;
    t.pages_allocated <- t.pages_allocated + 1;
    p

(** [read t addr] returns the word at [addr]; unmapped memory reads as 0
    without allocating a page. *)
let read t addr =
  let idx = addr lsr page_bits in
  (* [addr land page_mask] < page_words by construction: unchecked. *)
  if idx = t.last_idx then Array.unsafe_get t.last_page (addr land page_mask)
  else
    match Hashtbl.find_opt t.pages idx with
    | Some p ->
      t.last_idx <- idx;
      t.last_page <- p;
      Array.unsafe_get p (addr land page_mask)
    | None -> 0

let write t addr v =
  let idx = addr lsr page_bits in
  let p =
    if idx = t.last_idx then t.last_page
    else begin
      let p = page t idx in
      t.last_idx <- idx;
      t.last_page <- p;
      p
    end
  in
  Array.unsafe_set p (addr land page_mask) v

(** Words of memory currently backed by allocated pages. *)
let footprint_words t = t.pages_allocated * page_words

let clear t =
  Hashtbl.reset t.pages;
  t.pages_allocated <- 0;
  t.last_idx <- no_page_idx;
  t.last_page <- no_page
