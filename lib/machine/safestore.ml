(** The safe pointer store (Section 3.2.2, Fig. 2).

    Maps the address of a sensitive pointer, as allocated in the regular
    region, to the pointer's value and its based-on metadata: lower and
    upper bounds of the target object and a temporal id. Three
    organisations are implemented, matching Section 4's "simple array,
    two-level lookup table, and hashtable"; they differ in lookup cost and
    memory overhead, which the ablation benchmarks measure. *)

type kind =
  | Data                  (* ordinary sensitive data pointer *)
  | Code                  (* code pointer: bounds degenerate to exact target *)
  | Invalid               (* "invalid" metadata: lower > upper; never passes *)

type entry = {
  value : int;
  lower : int;
  upper : int;            (* exclusive upper bound *)
  tid : int;              (* temporal id of the target object; 0 = static *)
  kind : kind;
}

let invalid_entry value = { value; lower = 1; upper = 0; tid = 0; kind = Invalid }

type impl = Simple_array | Two_level | Hashtable | Mpx

let impl_name = function
  | Simple_array -> "array"
  | Two_level -> "two-level"
  | Hashtable -> "hashtable"
  | Mpx -> "mpx"

(* A sentinel page index that no address maps to ([addr lsr bits] is
   non-negative), plus the empty page it nominally caches. Both paged
   organisations below front their hashtable with a one-entry direct-mapped
   cache of the last page touched, so the hot loop's per-word probe is an
   integer compare on the common path. Misses on get/clear_at never
   allocate and never populate the cache with a phantom page. *)
let no_page_idx = min_int
let no_page : entry option array = [||]

(* Array organisation: one flat, lazily-paged table indexed by address
   (models the sparse-mmap-backed array; large footprint, cheapest lookup). *)
module A = struct
  let page_bits = 12
  let page_words = 1 lsl page_bits

  type t = {
    pages : (int, entry option array) Hashtbl.t;
    mutable npages : int;
    mutable last_idx : int;
    mutable last_page : entry option array;
  }

  let create () =
    { pages = Hashtbl.create 64; npages = 0;
      last_idx = no_page_idx; last_page = no_page }

  let page t idx =
    match Hashtbl.find_opt t.pages idx with
    | Some p -> p
    | None ->
      let p = Array.make page_words None in
      Hashtbl.replace t.pages idx p;
      t.npages <- t.npages + 1;
      p

  let set t addr e =
    let idx = addr lsr page_bits in
    let p =
      if idx = t.last_idx then t.last_page
      else begin
        let p = page t idx in
        t.last_idx <- idx;
        t.last_page <- p;
        p
      end
    in
    Array.unsafe_set p (addr land (page_words - 1)) (Some e)

  let get t addr =
    let idx = addr lsr page_bits in
    (* [addr land (page_words - 1)] < page_words by construction. *)
    if idx = t.last_idx then Array.unsafe_get t.last_page (addr land (page_words - 1))
    else
      match Hashtbl.find_opt t.pages idx with
      | Some p ->
        t.last_idx <- idx;
        t.last_page <- p;
        Array.unsafe_get p (addr land (page_words - 1))
      | None -> None

  let clear_at t addr =
    let idx = addr lsr page_bits in
    if idx = t.last_idx then t.last_page.(addr land (page_words - 1)) <- None
    else
      match Hashtbl.find_opt t.pages idx with
      | Some p ->
        t.last_idx <- idx;
        t.last_page <- p;
        p.(addr land (page_words - 1)) <- None
      | None -> ()

  let reset t =
    Hashtbl.reset t.pages;
    t.npages <- 0;
    t.last_idx <- no_page_idx;
    t.last_page <- no_page
end

(* Two-level organisation: directory + smaller leaves (the layout MPX uses,
   Section 4's "future MPX-based implementation"). *)
module T = struct
  let leaf_bits = 9
  let leaf_words = 1 lsl leaf_bits

  type t = {
    dirs : (int, entry option array) Hashtbl.t;
    mutable nleaves : int;
    mutable last_idx : int;
    mutable last_leaf : entry option array;
  }

  let create () =
    { dirs = Hashtbl.create 64; nleaves = 0;
      last_idx = no_page_idx; last_leaf = no_page }

  let leaf t idx =
    match Hashtbl.find_opt t.dirs idx with
    | Some l -> l
    | None ->
      let l = Array.make leaf_words None in
      Hashtbl.replace t.dirs idx l;
      t.nleaves <- t.nleaves + 1;
      l

  let set t addr e =
    let idx = addr lsr leaf_bits in
    let l =
      if idx = t.last_idx then t.last_leaf
      else begin
        let l = leaf t idx in
        t.last_idx <- idx;
        t.last_leaf <- l;
        l
      end
    in
    Array.unsafe_set l (addr land (leaf_words - 1)) (Some e)

  let get t addr =
    let idx = addr lsr leaf_bits in
    (* [addr land (leaf_words - 1)] < leaf_words by construction. *)
    if idx = t.last_idx then Array.unsafe_get t.last_leaf (addr land (leaf_words - 1))
    else
      match Hashtbl.find_opt t.dirs idx with
      | Some l ->
        t.last_idx <- idx;
        t.last_leaf <- l;
        Array.unsafe_get l (addr land (leaf_words - 1))
      | None -> None

  let clear_at t addr =
    let idx = addr lsr leaf_bits in
    if idx = t.last_idx then t.last_leaf.(addr land (leaf_words - 1)) <- None
    else
      match Hashtbl.find_opt t.dirs idx with
      | Some l ->
        t.last_idx <- idx;
        t.last_leaf <- l;
        l.(addr land (leaf_words - 1)) <- None
      | None -> ()

  let reset t =
    Hashtbl.reset t.dirs;
    t.nleaves <- 0;
    t.last_idx <- no_page_idx;
    t.last_leaf <- no_page
end

type mpx_tag = T_two | T_mpx

type backend =
  | Arr of A.t
  | Two of T.t * mpx_tag
  | Hsh of (int, entry) Hashtbl.t

(* The backend is wrapped with an access counter so the harness can
   journal how hard each run exercised the safe region. *)
type t = {
  backend : backend;
  mutable accesses : int;
}

(* The MPX organisation (Section 4's "future MPX-based implementation")
   shares the two-level layout — which is exactly the structure Intel MPX's
   bound directory/table uses — but the walk is performed by hardware, so
   its lookup cost is the cheapest of all. We model it as the same data
   structure behind a distinct cost entry. *)
let create impl =
  let backend =
    match impl with
    | Simple_array -> Arr (A.create ())
    | Two_level -> Two (T.create (), T_two)
    | Hashtable -> Hsh (Hashtbl.create 1024)
    | Mpx -> Two (T.create (), T_mpx)
  in
  { backend; accesses = 0 }

let impl_of t =
  match t.backend with
  | Arr _ -> Simple_array
  | Two (_, T_two) -> Two_level
  | Two (_, T_mpx) -> Mpx
  | Hsh _ -> Hashtable

let access_count t = t.accesses

let set t addr e =
  t.accesses <- t.accesses + 1;
  match t.backend with
  | Arr a -> A.set a addr e
  | Two (a, _) -> T.set a addr e
  | Hsh h -> Hashtbl.replace h addr e

let get t addr =
  t.accesses <- t.accesses + 1;
  match t.backend with
  | Arr a -> A.get a addr
  | Two (a, _) -> T.get a addr
  | Hsh h -> Hashtbl.find_opt h addr

let clear_at t addr =
  t.accesses <- t.accesses + 1;
  match t.backend with
  | Arr a -> A.clear_at a addr
  | Two (a, _) -> T.clear_at a addr
  | Hsh h -> Hashtbl.remove h addr

(** Drop every entry and return the store to its freshly-created state
    (including the access counter and the backend page caches). *)
let reset t =
  t.accesses <- 0;
  match t.backend with
  | Arr a -> A.reset a
  | Two (a, _) -> T.reset a
  | Hsh h -> Hashtbl.reset h

(** Lookup cost in model cycles; the differences reproduce the paper's
    finding that the superpage-backed array is fastest, the hashtable
    slowest. *)
let lookup_cost = function
  | Simple_array -> 2
  | Two_level -> 4
  | Hashtable -> 8
  | Mpx -> 1      (* hardware bound-table walk *)

(** Memory footprint of the store in words, given how many metadata words
    each entry carries ([4] for CPI's value+lower+upper+id, [1] for CPS's
    bare value). The array and two-level organisations pay for whole
    allocated pages/leaves; the hashtable pays per entry plus bucket
    overhead. *)
let footprint_words ?(entry_words = 4) t =
  match t.backend with
  | Arr a -> a.A.npages * A.page_words * entry_words
  | Two (a, _) ->
    (a.T.nleaves * T.leaf_words * entry_words) + (Hashtbl.length a.T.dirs * 2)
  | Hsh h -> Hashtbl.length h * (entry_words + 2)

(** Number of live entries (used by tests). *)
let entry_count t =
  match t.backend with
  | Arr a ->
    Hashtbl.fold
      (fun _ p acc -> Array.fold_left (fun n e -> if e = None then n else n + 1) acc p)
      a.A.pages 0
  | Two (a, _) ->
    Hashtbl.fold
      (fun _ l acc -> Array.fold_left (fun n e -> if e = None then n else n + 1) acc l)
      a.T.dirs 0
  | Hsh h -> Hashtbl.length h
