(** Dynamic data-race detection (Eraser-style lockset).

    Every access to *shared* memory — globals, heap, and the safe region,
    i.e. everything outside the accessing thread's own stack windows — is
    checked against the lockset discipline: each shared location starts
    with the full universe of candidate locks and is refined to the
    intersection of the locks held at every access. A location whose
    candidate set becomes empty while (a) at least two distinct threads
    touched it and (b) at least one touch was a write, is reported as
    racy.

    Because the scheduler is deterministic, the detector is too: the same
    seed observes the same access interleaving and reports the same races
    in the same order. Races on the safe region and on safe-store
    metadata are classified separately — a racy safe-region access is
    exactly the kind of runtime-support bug that would let one thread
    tamper with another's safe stack. *)

type kind =
  | Shared_data    (* globals / heap *)
  | Safe_region    (* safe stacks or safe-store values *)
  | Metadata       (* safe-store metadata (bounds / provenance) *)

let kind_name = function
  | Shared_data -> "shared-data"
  | Safe_region -> "safe-region"
  | Metadata -> "metadata"

type report = {
  r_addr : int;      (* unslid address *)
  r_kind : kind;
  r_first_tid : int; (* a previous owner of the location *)
  r_second_tid : int;(* the thread whose access emptied the lockset *)
  r_write : bool;    (* the racing access was a write *)
}

(* Per-location state. [cs_locks] is the candidate lockset (sorted mutex
   addresses); [cs_virgin] marks locations only ever seen with one thread,
   for which the discipline is not yet enforced (Eraser's initialisation
   state). *)
type cell = {
  mutable cs_locks : int list;
  mutable cs_tid : int;
  mutable cs_written : bool;
  mutable cs_virgin : bool;
  mutable cs_reported : bool;
}

type t = {
  cells : (int, cell) Hashtbl.t;   (* keyed by unslid address (kind-tagged) *)
  mutable reports : report list;   (* newest first *)
  mutable count : int;
}

let create () = { cells = Hashtbl.create 256; reports = []; count = 0 }

(* Metadata shadows live at the same addresses as their values; tag the
   key so a value cell and its metadata cell are tracked independently. *)
let key kind addr =
  match kind with Metadata -> addr lxor min_int | _ -> addr

let inter l1 l2 = List.filter (fun a -> List.mem a l2) l1

(** [access t ~addr ~tid ~write ~locks ~kind] records one shared access.
    [locks] is the (small) list of mutex addresses the thread holds.
    Returns [true] when this access was reported as a race (first report
    per location only). *)
let access t ~addr ~tid ~write ~locks ~kind =
  let k = key kind addr in
  match Hashtbl.find_opt t.cells k with
  | None ->
    Hashtbl.replace t.cells k
      { cs_locks = locks; cs_tid = tid; cs_written = write;
        cs_virgin = true; cs_reported = false };
    false
  | Some c ->
    if c.cs_tid = tid then begin
      (* same thread: refine nothing, remember writes *)
      c.cs_written <- c.cs_written || write;
      false
    end
    else begin
      let first = c.cs_tid in
      if c.cs_virgin then begin
        (* second thread arrives: start enforcing from its lockset *)
        c.cs_virgin <- false;
        c.cs_locks <- inter c.cs_locks locks
      end
      else c.cs_locks <- inter c.cs_locks locks;
      c.cs_tid <- tid;
      c.cs_written <- c.cs_written || write;
      if c.cs_locks = [] && c.cs_written && not c.cs_reported then begin
        c.cs_reported <- true;
        t.count <- t.count + 1;
        t.reports <-
          { r_addr = addr; r_kind = kind; r_first_tid = first;
            r_second_tid = tid; r_write = write }
          :: t.reports;
        true
      end
      else false
    end

let count t = t.count

(** Reports in occurrence order. *)
let reports t = List.rev t.reports

let describe r =
  Printf.sprintf "race(%s) addr=0x%x tids=%d/%d %s" (kind_name r.r_kind)
    r.r_addr r.r_first_tid r.r_second_tid
    (if r.r_write then "write" else "read")
