(** Keyed in-place pointer cipher for the [cpi-crypt] backend.

    LIPPEN / CryptSan / PAC-style schemes keep sensitive pointers encrypted
    in ordinary memory instead of segregating them into a safe region: a
    per-run key is folded into every sensitive load and store, so an
    attacker who overwrites a ciphertext cell (or who writes a plaintext
    code address over one) obtains a garbled target after decryption — the
    hijack becomes a trap. There is no metadata table to desynchronize or
    drop, which is exactly the property the fault campaign's
    [Meta_drop]/[Store_desync] plans probe.

    The cipher is a 4-round unbalanced Feistel permutation over OCaml's
    native [int] (lo half: 31 bits, hi half: the remaining bits including
    the sign bit treated as data), so it is a bijection on the full value
    domain — decrypt (encrypt v) = v for every [v], including negative
    sentinel values. Zero is a fixed point by construction (see
    [encrypt]): zero-initialized memory still reads as a null pointer
    through the crypt path, matching the loader's zero-fill semantics. *)

let lo_bits = 31
let lo_mask = (1 lsl lo_bits) - 1

(* splitmix64-flavoured round function with the multipliers truncated to
   OCaml's native int range; only the result's low/hi window matters, the
   constants just need good diffusion. *)
let[@inline] round_f x k =
  let z = (x + k) * 0x1E3779B97F4A7C15 in
  let z = (z lxor (z lsr 30)) * 0x3F58476D1CE4E5B9 in
  z lxor (z lsr 27)

(** Derive the per-run key from the scheduler seed: the key is part of the
    run's deterministic identity, like the scheduler's PRNG stream. *)
let key_of_seed seed =
  let z = round_f (seed + 0x632BE59B) 0x14D049BB133111EB in
  let z = round_f z 0x16E8FEB86659FD93 in
  (* Never hand out the all-zero key: it would still permute (the Feistel
     rounds keep mixing), but a visibly non-trivial key keeps the "key is
     secret per run" story honest in dumps. *)
  if z = 0 then 0x5DEECE66D else z

(* One Feistel pass: xor the round function of one half into the other,
   alternating. Inverse applies the same xors in reverse order. *)
let[@inline] split v = (v land lo_mask, v lsr lo_bits)
let[@inline] join lo hi = (hi lsl lo_bits) lor lo

let perm key v =
  let lo, hi = split v in
  let hi = hi lxor (round_f lo (key + 1) lsr lo_bits) in
  let lo = (lo lxor round_f hi (key + 2)) land lo_mask in
  let hi = hi lxor (round_f lo (key + 3) lsr lo_bits) in
  let lo = (lo lxor round_f hi (key + 4)) land lo_mask in
  join lo hi

let perm_inv key v =
  let lo, hi = split v in
  let lo = (lo lxor round_f hi (key + 4)) land lo_mask in
  let hi = hi lxor (round_f lo (key + 3) lsr lo_bits) in
  let lo = (lo lxor round_f hi (key + 2)) land lo_mask in
  let hi = hi lxor (round_f lo (key + 1) lsr lo_bits) in
  join lo hi

(** Null-preserving encryption: swap the cipher images of [0] and
    [perm 0] so that [encrypt key 0 = 0] while the map stays a bijection
    (a transposition composed with a permutation is a permutation). *)
let[@inline] encrypt key v =
  if v = 0 then 0
  else
    let c = perm key v in
    if c = 0 then perm key 0 else c

let[@inline] decrypt key c =
  if c = 0 then 0
  else
    let v = perm_inv key c in
    if v = 0 then perm_inv key 0 else v
