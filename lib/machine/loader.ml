(** Program loader.

    Assigns code addresses to every instruction (functions, blocks and
    return sites all have addresses, so corrupted code pointers can be
    decoded like a real instruction pointer), lays out globals in the
    regular region, resolves global initializers, and computes per-function
    frame layouts for the active configuration. The loader is trusted, as
    in the paper's threat model. *)

module Ty = Levee_ir.Ty
module Instr = Levee_ir.Instr
module Prog = Levee_ir.Prog
module Prepared = Levee_ir.Prepared

type code_point = { cp_fn : string; cp_block : int; cp_ip : int }

(** Metadata type the prepared program's resolved operands carry. *)
type pmeta = Meta.t option

(** Placement of one alloca slot within its frame. *)
type slot = {
  sl_on_safe : bool;      (* safe stack vs regular (unsafe) stack *)
  sl_offset : int;        (* addr = frame_base - sl_offset *)
  sl_size : int;
}

type frame_layout = {
  fl_slots : (int, slot) Hashtbl.t;  (* alloca dst register -> placement *)
  fl_regular_size : int;             (* incl. ret slot / cookie if regular *)
  fl_safe_size : int;
  fl_ret_on_safe : bool;
  fl_ret_offset : int;               (* from the frame base of its stack *)
  fl_cookie_offset : int option;     (* always on the regular stack *)
  fl_hot_words : int;                (* scalar locals: the cache-hot area *)
  fl_array_words : int;              (* aggregate locals *)
  fl_has_unsafe : bool;              (* needs a separate unsafe frame *)
}

type image = {
  prog : Prog.t;
  cfg : Config.t;
  slide : int;
  func_entry : (string, int) Hashtbl.t;
  addr_of_point : (string * int * int, int) Hashtbl.t;
  point_of_addr : (int, code_point) Hashtbl.t;
  return_sites : (int, unit) Hashtbl.t;     (* valid coarse-CFI return targets *)
  func_entries : (int, string) Hashtbl.t;   (* entry addr -> name *)
  global_addr : (string, int) Hashtbl.t;
  global_bounds : (string, int * int) Hashtbl.t;
  layouts : (string, frame_layout) Hashtbl.t;
  (* Decode-once layer: every function resolved at load time so the
     interpreter's hot loop never touches the hashtables above. *)
  p_funcs : pmeta Prepared.func array;      (* indexed by function index *)
  p_findex : (string, int) Hashtbl.t;       (* function name -> index *)
  entry_findex : (int, int) Hashtbl.t;      (* entry addr -> function index *)
  p_layouts : frame_layout array;           (* indexed by function index *)
}

let layout_of_func tenv (cfg : Config.t) (fn : Prog.func) =
  let slots = Hashtbl.create 16 in
  let hot = ref 0 and arrays = ref 0 in
  let safe_off = ref 0 and reg_off = ref 0 in
  (* Return slot sits at the very top of its frame (offset 1 from base),
     the cookie just below it; buffers grow upward toward them. *)
  let ret_on_safe = cfg.Config.safe_stack in
  if ret_on_safe then safe_off := 1 else reg_off := 1;
  let ret_offset = 1 in
  let cookie_offset =
    if cfg.Config.check_cookies && fn.Prog.cookie then begin
      incr reg_off;
      Some !reg_off
    end
    else None
  in
  (* Collect allocas in program order; later allocas end up closer to the
     cookie/return slot, so overflowing any buffer can reach them. *)
  let allocas = ref [] in
  Prog.iter_instrs fn (fun i ->
      match i with
      | Instr.Alloca { dst; ty; slot } -> allocas := (dst, ty, slot) :: !allocas
      | _ -> ());
  let allocas = List.rev !allocas in
  let has_unsafe = ref false in
  (* Assign from the bottom of the frame upward: process in reverse order so
     the first-declared alloca gets the lowest address. *)
  List.iter
    (fun (dst, ty, slot_kind) ->
      let size = Ty.size_of tenv ty in
      (match ty with
       | Ty.Arr _ | Ty.Struct _ -> arrays := !arrays + size
       | _ -> hot := !hot + size);
      let on_safe =
        match slot_kind with
        | Instr.SafeSlot -> cfg.Config.safe_stack
        | Instr.UnsafeSlot | Instr.Auto -> false
      in
      if (not on_safe) && slot_kind = Instr.UnsafeSlot then has_unsafe := true;
      let off_ref = if on_safe then safe_off else reg_off in
      off_ref := !off_ref + size;
      Hashtbl.replace slots dst { sl_on_safe = on_safe; sl_offset = !off_ref; sl_size = size })
    allocas;
  { fl_slots = slots;
    fl_regular_size = !reg_off;
    fl_safe_size = !safe_off;
    fl_ret_on_safe = ret_on_safe;
    fl_ret_offset = ret_offset;
    fl_cookie_offset = cookie_offset;
    fl_hot_words = !hot;
    fl_array_words = !arrays;
    fl_has_unsafe = !has_unsafe }

(* ---------- Decode-once preparation ---------- *)

(* Resolve an operand: immediates and null become bare constants, global
   and function references become (address, metadata) constants. The
   metadata records are built once and shared by every execution of the
   instruction; they are immutable, so sharing is safe. *)
let prepare_operand ~global_addr ~global_bounds ~func_entry
    (o : Instr.operand) : pmeta Prepared.operand =
  match o with
  | Instr.Reg r -> Prepared.Reg r
  | Instr.Imm n -> Prepared.Const (n, None)
  | Instr.Nullp -> Prepared.Const (0, None)
  | Instr.Glob g ->
    let addr = Hashtbl.find global_addr g in
    let lo, hi = Hashtbl.find global_bounds g in
    Prepared.Const
      (addr, Some { Meta.lower = lo; upper = hi; tid = 0; kind = Safestore.Data })
  | Instr.Fun f ->
    let addr = Hashtbl.find func_entry f in
    Prepared.Const
      (addr,
       Some { Meta.lower = addr; upper = addr + 1; tid = 0; kind = Safestore.Code })

(* [block_base.(bid)] is the code address of (bid, ip=0); addresses within
   a block are consecutive, so every program-point address is one add away
   and preparing a function performs no [addr_of_point] probes. *)
let prepare_func ~tenv ~global_addr ~global_bounds ~func_entry ~block_base
    ~p_findex ~(layout : frame_layout) ~findex (fn : Prog.func) :
    pmeta Prepared.func =
  let op o = prepare_operand ~global_addr ~global_bounds ~func_entry o in
  let blocks =
    Array.map
      (fun (b : Prog.block) ->
        let instrs =
          Array.mapi
            (fun ip (i : Instr.instr) ->
              match i with
              | Instr.Alloca { dst; ty = _; slot = _ } ->
                let sl = Hashtbl.find layout.fl_slots dst in
                Prepared.Alloca
                  { dst; on_safe = sl.sl_on_safe; offset = sl.sl_offset;
                    size = sl.sl_size }
              | Instr.Bin { dst; op = bop; l; r } ->
                Prepared.Bin { dst; op = bop; l = op l; r = op r }
              | Instr.Cmp { dst; op = cop; l; r } ->
                Prepared.Cmp { dst; op = cop; l = op l; r = op r }
              | Instr.Load { dst; ty; addr; where; checked } ->
                Prepared.Load
                  { dst; what = Ty.to_string ty;
                    universal = Ty.is_universal_pointer ty; addr = op addr;
                    where; checked }
              | Instr.Store { ty; v; addr; where; checked } ->
                Prepared.Store
                  { what = Ty.to_string ty;
                    universal = Ty.is_universal_pointer ty; v = op v;
                    addr = op addr; where; checked }
              | Instr.Gep { dst; base_ty = _; base; path } ->
                Prepared.Gep
                  { dst; base = op base;
                    path =
                      Array.of_list
                        (List.map
                           (function
                             | Instr.Field (_, off, fsize) ->
                               Prepared.Field (off, fsize)
                             | Instr.Index (ty, idx) ->
                               Prepared.Index (Ty.size_of tenv ty, op idx))
                           path) }
              | Instr.Cast { dst; kind = _; ty = _; v } ->
                Prepared.Cast { dst; v = op v }
              | Instr.Call { dst; callee; args; fty = _; cfi_checked; cfi_set }
                ->
                let callee =
                  match callee with
                  | Instr.Direct name ->
                    Prepared.Direct (Hashtbl.find p_findex name)
                  | Instr.Indirect o -> Prepared.Indirect (op o)
                in
                (* Resolve the cfi-type target set to sorted entry
                   addresses once, at load time. *)
                let cfi_set =
                  match cfi_set with
                  | None -> None
                  | Some names ->
                    let addrs =
                      List.map (fun n -> Hashtbl.find func_entry n) names
                    in
                    let arr = Array.of_list addrs in
                    Array.sort compare arr;
                    Some arr
                in
                Prepared.Call
                  { dst; callee; args = Array.of_list (List.map op args);
                    cfi_checked; cfi_set;
                    (* The return address a call pushes: the code address
                       of the instruction after the call site. *)
                    ret_addr = block_base.(b.Prog.bid) + ip + 1 }
              | Instr.Intrin { dst; op = iop; args } ->
                Prepared.Intrin
                  { dst; op = iop; args = Array.of_list (List.map op args) })
            b.Prog.instrs
        in
        let term =
          match b.Prog.term with
          | Instr.Ret None -> Prepared.Ret None
          | Instr.Ret (Some o) -> Prepared.Ret (Some (op o))
          | Instr.Br (c, bt, bf) -> Prepared.Br (op c, bt, bf)
          | Instr.Jmp b -> Prepared.Jmp b
          | Instr.Switch (o, cases, dflt) ->
            Prepared.Switch (op o, Prepared.switch_table cases dflt)
          | Instr.Unreachable -> Prepared.Unreachable
        in
        { Prepared.instrs; term })
      fn.Prog.blocks
  in
  let addrs =
    Array.map
      (fun (b : Prog.block) ->
        let base = block_base.(b.Prog.bid) in
        Array.init (Array.length b.Prog.instrs + 1) (fun ip -> base + ip))
      fn.Prog.blocks
  in
  { Prepared.findex; fname = fn.Prog.fname; nregs = fn.Prog.nregs;
    nparams = List.length fn.Prog.params; blocks; addrs;
    entry_addr = Hashtbl.find func_entry fn.Prog.fname }

(** [load prog cfg] builds the image and the initial memory/metadata state
    for globals. Returns the image plus an initialization function that
    populates a fresh memory. *)
let load (prog : Prog.t) (cfg : Config.t) =
  let slide = if cfg.Config.aslr then Layout.aslr_slide else 0 in
  let func_entry = Hashtbl.create 16 in
  let addr_of_point = Hashtbl.create 256 in
  let point_of_addr = Hashtbl.create 256 in
  let return_sites = Hashtbl.create 64 in
  let func_entries = Hashtbl.create 16 in
  let next_code = ref (Layout.code_base + slide) in
  (* Per-function array of block base addresses (address of ip = 0),
     consumed by [prepare_func] below. *)
  let block_bases : (string, int array) Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace func_entry fn.Prog.fname !next_code;
      Hashtbl.replace func_entries !next_code fn.Prog.fname;
      let bases = Array.make (Array.length fn.Prog.blocks) 0 in
      Hashtbl.replace block_bases fn.Prog.fname bases;
      Array.iter
        (fun (b : Prog.block) ->
          bases.(b.Prog.bid) <- !next_code;
          (* one address per instruction plus one for the terminator *)
          for ip = 0 to Array.length b.Prog.instrs do
            let addr = !next_code in
            incr next_code;
            Hashtbl.replace addr_of_point (fn.Prog.fname, b.Prog.bid, ip) addr;
            Hashtbl.replace point_of_addr addr
              { cp_fn = fn.Prog.fname; cp_block = b.Prog.bid; cp_ip = ip };
            (* the address after a call instruction is a return site *)
            if ip > 0 then
              (match b.Prog.instrs.(ip - 1) with
               | Instr.Call _ -> Hashtbl.replace return_sites addr ()
               | _ -> ())
          done)
        fn.Prog.blocks);
  (* Globals. *)
  let global_addr = Hashtbl.create 16 in
  let global_bounds = Hashtbl.create 16 in
  let next_g = ref (Layout.globals_base + slide) in
  List.iter
    (fun (g : Prog.global) ->
      let size = Ty.size_of prog.Prog.tenv g.Prog.gty in
      Hashtbl.replace global_addr g.Prog.gname !next_g;
      Hashtbl.replace global_bounds g.Prog.gname (!next_g, !next_g + size);
      next_g := !next_g + size + 1 (* one guard word between globals *))
    prog.Prog.globals;
  let layouts = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace layouts fn.Prog.fname
        (layout_of_func prog.Prog.tenv cfg fn));
  (* Decode-once layer: resolve every function into its prepared form. *)
  let funcs = ref [] in
  Prog.iter_funcs prog (fun fn -> funcs := fn :: !funcs);
  let funcs = Array.of_list (List.rev !funcs) in
  let p_findex = Hashtbl.create 16 in
  Array.iteri (fun i (fn : Prog.func) -> Hashtbl.replace p_findex fn.Prog.fname i) funcs;
  let entry_findex = Hashtbl.create 16 in
  Array.iteri
    (fun i (fn : Prog.func) ->
      Hashtbl.replace entry_findex (Hashtbl.find func_entry fn.Prog.fname) i)
    funcs;
  let p_layouts =
    Array.map (fun (fn : Prog.func) -> Hashtbl.find layouts fn.Prog.fname) funcs
  in
  let p_funcs =
    Array.mapi
      (fun i fn ->
        prepare_func ~tenv:prog.Prog.tenv ~global_addr ~global_bounds
          ~func_entry ~block_base:(Hashtbl.find block_bases fn.Prog.fname)
          ~p_findex ~layout:p_layouts.(i) ~findex:i fn)
      funcs
  in
  { prog; cfg; slide; func_entry; addr_of_point; point_of_addr;
    return_sites; func_entries; global_addr; global_bounds; layouts;
    p_funcs; p_findex; entry_findex; p_layouts }

(** Write global initializers into [mem]; code-pointer cells that the
    compiler/linker emitted (jump tables etc., Section 4 "binary level
    functionality") also get safe-store entries under CPI/CPS so that
    instrumented loads find them. *)
let init_globals (image : image) (mem : Mem.t) (store : Safestore.t) =
  let init_cells_into_store =
    (* CPI/CPS keep protected pointers in the safe store; SoftBound keeps
       bounds for every pointer in its metadata table — both need the
       loader to register pointer-valued initializers *)
    image.cfg.Config.enforce_code_meta || image.cfg.Config.check_libc
  in
  List.iter
    (fun (g : Prog.global) ->
      let base = Hashtbl.find image.global_addr g.Prog.gname in
      Array.iteri
        (fun i cell ->
          let v =
            match cell with
            | Prog.Cint n -> n
            | Prog.Cfun f -> Hashtbl.find image.func_entry f
            | Prog.Cglob (name, off) -> Hashtbl.find image.global_addr name + off
          in
          Mem.write mem (base + i) v;
          match cell with
          | Prog.Cfun _ when init_cells_into_store ->
            Safestore.set store (base + i)
              { Safestore.value = v; lower = v; upper = v + 1; tid = 0;
                kind = Safestore.Code }
          | Prog.Cglob (name, off) when init_cells_into_store ->
            let lo, hi = Hashtbl.find image.global_bounds name in
            Safestore.set store (base + i)
              { Safestore.value = v; lower = lo + off; upper = hi; tid = 0;
                kind = Safestore.Data }
          | Prog.Cint _ | Prog.Cfun _ | Prog.Cglob _ -> ())
        g.Prog.init)
    image.prog.Prog.globals

let entry_addr image name = Hashtbl.find image.func_entry name

(** Prepared form of a function. @raise Not_found if unknown. *)
let prepared image name = image.p_funcs.(Hashtbl.find image.p_findex name)

let point_addr image fname block ip =
  Hashtbl.find image.addr_of_point (fname, block, ip)

let decode image addr = Hashtbl.find_opt image.point_of_addr addr

let is_function_entry image addr = Hashtbl.mem image.func_entries addr
