(** Program loader.

    Assigns code addresses to every instruction (functions, blocks and
    return sites all have addresses, so corrupted code pointers can be
    decoded like a real instruction pointer), lays out globals in the
    regular region, resolves global initializers, and computes per-function
    frame layouts for the active configuration. The loader is trusted, as
    in the paper's threat model. *)

module Ty = Levee_ir.Ty
module Instr = Levee_ir.Instr
module Prog = Levee_ir.Prog

type code_point = { cp_fn : string; cp_block : int; cp_ip : int }

(** Placement of one alloca slot within its frame. *)
type slot = {
  sl_on_safe : bool;      (* safe stack vs regular (unsafe) stack *)
  sl_offset : int;        (* addr = frame_base - sl_offset *)
  sl_size : int;
}

type frame_layout = {
  fl_slots : (int, slot) Hashtbl.t;  (* alloca dst register -> placement *)
  fl_regular_size : int;             (* incl. ret slot / cookie if regular *)
  fl_safe_size : int;
  fl_ret_on_safe : bool;
  fl_ret_offset : int;               (* from the frame base of its stack *)
  fl_cookie_offset : int option;     (* always on the regular stack *)
  fl_hot_words : int;                (* scalar locals: the cache-hot area *)
  fl_array_words : int;              (* aggregate locals *)
  fl_has_unsafe : bool;              (* needs a separate unsafe frame *)
}

type image = {
  prog : Prog.t;
  cfg : Config.t;
  slide : int;
  func_entry : (string, int) Hashtbl.t;
  addr_of_point : (string * int * int, int) Hashtbl.t;
  point_of_addr : (int, code_point) Hashtbl.t;
  return_sites : (int, unit) Hashtbl.t;     (* valid coarse-CFI return targets *)
  func_entries : (int, string) Hashtbl.t;   (* entry addr -> name *)
  global_addr : (string, int) Hashtbl.t;
  global_bounds : (string, int * int) Hashtbl.t;
  layouts : (string, frame_layout) Hashtbl.t;
}

let layout_of_func tenv (cfg : Config.t) (fn : Prog.func) =
  let slots = Hashtbl.create 16 in
  let hot = ref 0 and arrays = ref 0 in
  let safe_off = ref 0 and reg_off = ref 0 in
  (* Return slot sits at the very top of its frame (offset 1 from base),
     the cookie just below it; buffers grow upward toward them. *)
  let ret_on_safe = cfg.Config.safe_stack in
  if ret_on_safe then safe_off := 1 else reg_off := 1;
  let ret_offset = 1 in
  let cookie_offset =
    if cfg.Config.check_cookies && fn.Prog.cookie then begin
      incr reg_off;
      Some !reg_off
    end
    else None
  in
  (* Collect allocas in program order; later allocas end up closer to the
     cookie/return slot, so overflowing any buffer can reach them. *)
  let allocas = ref [] in
  Prog.iter_instrs fn (fun i ->
      match i with
      | Instr.Alloca { dst; ty; slot } -> allocas := (dst, ty, slot) :: !allocas
      | _ -> ());
  let allocas = List.rev !allocas in
  let has_unsafe = ref false in
  (* Assign from the bottom of the frame upward: process in reverse order so
     the first-declared alloca gets the lowest address. *)
  List.iter
    (fun (dst, ty, slot_kind) ->
      let size = Ty.size_of tenv ty in
      (match ty with
       | Ty.Arr _ | Ty.Struct _ -> arrays := !arrays + size
       | _ -> hot := !hot + size);
      let on_safe =
        match slot_kind with
        | Instr.SafeSlot -> cfg.Config.safe_stack
        | Instr.UnsafeSlot | Instr.Auto -> false
      in
      if (not on_safe) && slot_kind = Instr.UnsafeSlot then has_unsafe := true;
      let off_ref = if on_safe then safe_off else reg_off in
      off_ref := !off_ref + size;
      Hashtbl.replace slots dst { sl_on_safe = on_safe; sl_offset = !off_ref; sl_size = size })
    allocas;
  { fl_slots = slots;
    fl_regular_size = !reg_off;
    fl_safe_size = !safe_off;
    fl_ret_on_safe = ret_on_safe;
    fl_ret_offset = ret_offset;
    fl_cookie_offset = cookie_offset;
    fl_hot_words = !hot;
    fl_array_words = !arrays;
    fl_has_unsafe = !has_unsafe }

(** [load prog cfg] builds the image and the initial memory/metadata state
    for globals. Returns the image plus an initialization function that
    populates a fresh memory. *)
let load (prog : Prog.t) (cfg : Config.t) =
  let slide = if cfg.Config.aslr then Layout.aslr_slide else 0 in
  let func_entry = Hashtbl.create 16 in
  let addr_of_point = Hashtbl.create 256 in
  let point_of_addr = Hashtbl.create 256 in
  let return_sites = Hashtbl.create 64 in
  let func_entries = Hashtbl.create 16 in
  let next_code = ref (Layout.code_base + slide) in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace func_entry fn.Prog.fname !next_code;
      Hashtbl.replace func_entries !next_code fn.Prog.fname;
      Array.iter
        (fun (b : Prog.block) ->
          (* one address per instruction plus one for the terminator *)
          for ip = 0 to Array.length b.Prog.instrs do
            let addr = !next_code in
            incr next_code;
            Hashtbl.replace addr_of_point (fn.Prog.fname, b.Prog.bid, ip) addr;
            Hashtbl.replace point_of_addr addr
              { cp_fn = fn.Prog.fname; cp_block = b.Prog.bid; cp_ip = ip };
            (* the address after a call instruction is a return site *)
            if ip > 0 then
              (match b.Prog.instrs.(ip - 1) with
               | Instr.Call _ -> Hashtbl.replace return_sites addr ()
               | _ -> ())
          done)
        fn.Prog.blocks);
  (* Globals. *)
  let global_addr = Hashtbl.create 16 in
  let global_bounds = Hashtbl.create 16 in
  let next_g = ref (Layout.globals_base + slide) in
  List.iter
    (fun (g : Prog.global) ->
      let size = Ty.size_of prog.Prog.tenv g.Prog.gty in
      Hashtbl.replace global_addr g.Prog.gname !next_g;
      Hashtbl.replace global_bounds g.Prog.gname (!next_g, !next_g + size);
      next_g := !next_g + size + 1 (* one guard word between globals *))
    prog.Prog.globals;
  let image =
    { prog; cfg; slide; func_entry; addr_of_point; point_of_addr;
      return_sites; func_entries; global_addr; global_bounds;
      layouts = Hashtbl.create 16 }
  in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace image.layouts fn.Prog.fname
        (layout_of_func prog.Prog.tenv cfg fn));
  image

(** Write global initializers into [mem]; code-pointer cells that the
    compiler/linker emitted (jump tables etc., Section 4 "binary level
    functionality") also get safe-store entries under CPI/CPS so that
    instrumented loads find them. *)
let init_globals (image : image) (mem : Mem.t) (store : Safestore.t) =
  let init_cells_into_store =
    (* CPI/CPS keep protected pointers in the safe store; SoftBound keeps
       bounds for every pointer in its metadata table — both need the
       loader to register pointer-valued initializers *)
    image.cfg.Config.enforce_code_meta || image.cfg.Config.check_libc
  in
  List.iter
    (fun (g : Prog.global) ->
      let base = Hashtbl.find image.global_addr g.Prog.gname in
      Array.iteri
        (fun i cell ->
          let v =
            match cell with
            | Prog.Cint n -> n
            | Prog.Cfun f -> Hashtbl.find image.func_entry f
            | Prog.Cglob (name, off) -> Hashtbl.find image.global_addr name + off
          in
          Mem.write mem (base + i) v;
          match cell with
          | Prog.Cfun _ when init_cells_into_store ->
            Safestore.set store (base + i)
              { Safestore.value = v; lower = v; upper = v + 1; tid = 0;
                kind = Safestore.Code }
          | Prog.Cglob (name, off) when init_cells_into_store ->
            let lo, hi = Hashtbl.find image.global_bounds name in
            Safestore.set store (base + i)
              { Safestore.value = v; lower = lo + off; upper = hi; tid = 0;
                kind = Safestore.Data }
          | Prog.Cint _ | Prog.Cfun _ | Prog.Cglob _ -> ())
        g.Prog.init)
    image.prog.Prog.globals

let entry_addr image name = Hashtbl.find image.func_entry name

let point_addr image fname block ip =
  Hashtbl.find image.addr_of_point (fname, block, ip)

let decode image addr = Hashtbl.find_opt image.point_of_addr addr

let is_function_entry image addr = Hashtbl.mem image.func_entries addr
