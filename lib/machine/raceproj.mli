(** Projection of dynamic race reports back onto program objects, for
    cross-validation against the static detector's verdicts. *)

(** The object class behind a raced address: a named global, somewhere
    in the heap, somewhere in a (thread) stack, the safe region, or
    unattributable. *)
type root =
  | Rglobal of string
  | Rheap
  | Rstack
  | Rsafe
  | Runknown

(** Stable key: ["global:NAME"], ["heap"], ["stack"], ["safe"],
    ["unknown"]. *)
val root_key : root -> string

(** Project one unslid address. *)
val project_addr : Loader.image -> int -> root

(** Project one dynamic race report. *)
val project : Loader.image -> Race.report -> root

(** Sorted, deduplicated keys of a run's reports. *)
val keys : Loader.image -> Race.report list -> string list
