(** Machine traps and execution outcomes.

    The outcome taxonomy mirrors what the paper's evaluation needs to
    distinguish: a program can exit normally, be stopped by a protection
    mechanism ([Trap]), crash on a wild access (an unsuccessful attack), or
    be successfully hijacked (control reached an attacker-chosen target). *)

type trap =
  | Bounds_violation of string   (* spatial check on a sensitive pointer failed *)
  | Temporal_violation           (* dereference of a pointer to a freed object *)
  | Missing_metadata of string   (* deref of a value without valid based-on metadata *)
  | Isolation_violation          (* non-instrumented access touched the safe region *)
  | Cookie_smashed               (* stack cookie mismatch at function return *)
  | Cfi_violation of string      (* indirect transfer outside the CFI valid set *)
  | Invalid_code_pointer         (* CPI/CPS: indirect call through an unprotected value *)
  | Exec_violation               (* DEP: attempted execution of a data page *)
  | Debug_mismatch               (* debug mode: safe and regular copies disagree *)
  | Double_free
  | Invalid_free
  | Division_by_zero
  | Out_of_memory

type outcome =
  | Exit of int                 (* normal termination with exit code *)
  | Hijacked of string          (* attacker-controlled control transfer executed *)
  | Trapped of trap             (* a defense mechanism stopped execution *)
  | Crash of string             (* wild pointer / undecodable control transfer *)
  | Fuel_exhausted              (* instruction budget ran out *)

let trap_to_string = function
  | Bounds_violation w -> "bounds violation (" ^ w ^ ")"
  | Temporal_violation -> "temporal violation"
  | Missing_metadata w -> "missing metadata (" ^ w ^ ")"
  | Isolation_violation -> "safe-region isolation violation"
  | Cookie_smashed -> "stack cookie smashed"
  | Cfi_violation w -> "CFI violation (" ^ w ^ ")"
  | Invalid_code_pointer -> "invalid code pointer"
  | Exec_violation -> "DEP: execution of data"
  | Debug_mismatch -> "debug-mode copy mismatch"
  | Double_free -> "double free"
  | Invalid_free -> "invalid free"
  | Division_by_zero -> "division by zero"
  | Out_of_memory -> "out of memory"

let outcome_to_string = function
  | Exit n -> Printf.sprintf "exit(%d)" n
  | Hijacked what -> Printf.sprintf "HIJACKED: %s" what
  | Trapped t -> Printf.sprintf "trapped: %s" (trap_to_string t)
  | Crash why -> Printf.sprintf "crash: %s" why
  | Fuel_exhausted -> "fuel exhausted"

(** Internal control-flow exception used by the interpreter. *)
exception Machine_stop of outcome
