(** Address-space layout of the simulated process.

    Addresses are word-granular (one 64-bit word per address unit). The
    layout follows Fig. 2 of the paper: a regular region (globals, heap,
    unsafe stacks) that ordinary memory operations may touch, and a safe
    region (safe stacks and, conceptually, the safe pointer store) that
    only CPI intrinsics may access. ASLR is modelled as an additive slide
    applied to every base. *)

let null_guard = 0x1000            (* accesses below this are null derefs *)

let globals_base = 0x0010_0000
let heap_base = 0x0100_0000
let heap_limit = 0x0800_0000
let stack_top = 0x0FFF_0000        (* regular (unsafe) stack, grows down *)
let stack_limit = 0x0800_0000

let safe_base = 0x4000_0000        (* everything >= this is the safe region *)
let safe_stack_top = 0x4FFF_0000   (* safe stacks, grow down *)
let safe_end = 0x6000_0000

(** Per-thread stack carving (paper §4.2: every thread owns an unsafe
    stack and a safe stack; the safe region and heap are shared). Thread
    [k] gets the pair of windows [thread_stack_stride] words below thread
    [k-1]'s, in both the regular and the safe region. Thread 0's windows
    are exactly the historical single-thread stacks, so single-threaded
    programs see an unchanged address space. *)
let max_threads = 8
let thread_stack_stride = 0x00F0_0000

let thread_stack_top tid = stack_top - (tid * thread_stack_stride)
let thread_safe_stack_top tid = safe_stack_top - (tid * thread_stack_stride)

(* Thread 0 keeps the historical overflow floor at [stack_limit]; later
   threads may not grow into the window of the next thread. *)
let thread_stack_floor tid =
  if tid = 0 then stack_limit
  else thread_stack_top tid - thread_stack_stride + null_guard

let code_base = 0x7000_0000        (* code addresses; read-execute only *)
let code_end = 0x7800_0000

(** The magic word an attacker plants to simulate injected shellcode; the
    machine "executes" a data address only if DEP is off and this marker is
    present. *)
let shellcode_magic = 0x51EC0DE

(** Default ASLR slide used by the evaluation when ASLR is enabled. The
    attacker does not know it unless an information leak is part of the
    attack. *)
let aslr_slide = 0x0002_A000

type region = Null | Globals | Heap | Stack | Safe | Code | Other

(* The [_s] variants take the slide as a plain argument: optional arguments
   are boxed at every call site, which the interpreter's per-access hot
   path cannot afford. *)
let[@inline] region_of_s slide addr =
  let a = addr - slide in
  if a >= code_base && a < code_end then Code
  else if a >= safe_base && a < safe_end then Safe
  else if a < null_guard then Null
  else if a >= globals_base && a < heap_base then Globals
  else if a >= heap_base && a < heap_limit then Heap
  else if a >= stack_limit && a <= stack_top then Stack
  else Other

let[@inline] in_safe_region_s slide addr =
  let a = addr - slide in
  a >= safe_base && a < safe_end

let[@inline] in_code_s slide addr =
  let a = addr - slide in
  a >= code_base && a < code_end

let region_of ?(slide = 0) addr = region_of_s slide addr
let in_safe_region ?(slide = 0) addr = in_safe_region_s slide addr
let in_code ?(slide = 0) addr = in_code_s slide addr
