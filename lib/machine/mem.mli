(** Paged word-granular memory. Pages are allocated lazily and zero-filled,
    which matches OS behaviour and lets the evaluation measure the memory
    footprint of each configuration. *)

type t

val create : unit -> t

(** [read t addr]: unmapped memory reads as 0 without allocating. *)
val read : t -> int -> int

val write : t -> int -> int -> unit

(** Words currently backed by allocated pages. *)
val footprint_words : t -> int

val clear : t -> unit
