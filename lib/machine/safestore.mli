(** The safe pointer store (paper Section 3.2.2, Fig. 2).

    Maps the address of a sensitive pointer, as allocated in the regular
    region, to the pointer's value and its based-on metadata. Three
    organisations are implemented, matching Section 4's simple array,
    two-level lookup table, and hashtable; they differ in lookup cost and
    memory footprint. *)

type kind =
  | Data      (** ordinary sensitive data pointer *)
  | Code      (** code pointer: bounds degenerate to the exact target *)
  | Invalid   (** "invalid" metadata (lower > upper): never passes checks *)

type entry = {
  value : int;
  lower : int;
  upper : int;    (** exclusive *)
  tid : int;      (** temporal id of the target object; 0 = static *)
  kind : kind;
}

(** An entry with invalid metadata holding [value]. *)
val invalid_entry : int -> entry

type impl =
  | Simple_array   (** sparse mmap-backed flat table: fastest, most memory *)
  | Two_level      (** directory + leaves, the layout Intel MPX uses *)
  | Hashtable      (** least memory, slowest lookup *)
  | Mpx            (** Section 4's future hardware-assisted variant: the
                       two-level layout with the walk performed by an
                       MPX-style bound-table unit (cheapest lookup) *)

val impl_name : impl -> string

type t

val create : impl -> t
val impl_of : t -> impl

(** Total get/set/clear operations performed on this store since creation
    (the "safe-store accesses" column of the bench journal). *)
val access_count : t -> int

val set : t -> int -> entry -> unit
val get : t -> int -> entry option
val clear_at : t -> int -> unit

(** Drop every entry and return the store to its freshly-created state,
    resetting the access counter and invalidating the backends' internal
    last-page caches. *)
val reset : t -> unit

(** Lookup cost in model cycles; the array organisation is cheapest and the
    hashtable most expensive, per the paper's measurements. *)
val lookup_cost : impl -> int

(** Memory footprint in words given the per-entry metadata width ([4] for
    CPI, [1] for CPS). Array/two-level pay page/leaf granularity, the
    hashtable pays per entry. *)
val footprint_words : ?entry_words:int -> t -> int

(** Number of live entries (used by tests). *)
val entry_count : t -> int
