(** Machine-level protection configuration.

    Most of a protection mechanism lives in the instrumented IR; this
    record carries the runtime switches the loader and interpreter need.
    The pass pipeline ([Levee_core.Pipeline]) produces matched
    (program, config) pairs — construct configs through it unless you are
    testing the machine itself. *)

type isolation =
  | Segments      (** x86-32 segment-style isolation: free *)
  | Info_hiding   (** x86-64 randomized base: free, leak-proof by design *)
  | Sfi           (** software fault isolation: one mask per store *)

type t = {
  name : string;
  safe_stack : bool;        (** return addresses + safe slots in safe region *)
  enforce_code_meta : bool; (** CPI/CPS: indirect calls need protected pointers *)
  protect_jmpbuf : bool;    (** setjmp's saved PC goes through the safe store *)
  cfi_calls : bool;
  cfi_returns : bool;       (** coarse CFI: returns must target a call site *)
  dep : bool;               (** non-executable data *)
  aslr : bool;
  store_impl : Safestore.impl;
  isolation : isolation;
  check_cookies : bool;
  check_libc : bool;        (** bounds-check libc memory functions (SoftBound) *)
  cps_entry_words : int;    (** store entry width for footprint accounting *)
  crypt_ptrs : bool;        (** cpi-crypt: key ret slots + jmp_buf PCs in place *)
  crypt_cells : (string * bool array) list;
                            (** cpi-crypt: per-global mask of initializer cells
                                to re-encrypt after the plaintext image load *)
}

(** Completely unprotected baseline (DEP and ASLR off). *)
val vanilla : t

(** DEP + ASLR + stack cookies: a stock modern system. *)
val hardened_baseline : t

val safe_stack_only : t
val cps : ?store_impl:Safestore.impl -> unit -> t
val cpi : ?store_impl:Safestore.impl -> unit -> t
val softbound : t
val cfi : t

(** Per-signature CFI: same runtime switches as [cfi] — the precision is
    in the per-call-site target sets the cfi-type pass bakes into the IR. *)
val cfi_type : t

(** In-place pointer encryption under a per-run key: no safe region, no
    safe stack. [crypt_cells] is filled in per program by the pass. *)
val cpi_crypt : t

val cookies_only : t
