(** Machine traps and execution outcomes.

    The taxonomy mirrors what the paper's evaluation distinguishes: normal
    exit, a defense stopping execution ([Trapped]), a wild crash (an
    unsuccessful attack), or a successful hijack (control reached an
    attacker-chosen target). *)

type trap =
  | Bounds_violation of string
  | Temporal_violation
  | Missing_metadata of string
  | Isolation_violation
  | Cookie_smashed
  | Cfi_violation of string
  | Invalid_code_pointer
  | Exec_violation
  | Debug_mismatch
  | Double_free
  | Invalid_free
  | Division_by_zero
  | Out_of_memory

type outcome =
  | Exit of int
  | Hijacked of string
  | Trapped of trap
  | Crash of string
  | Fuel_exhausted

val trap_to_string : trap -> string
val outcome_to_string : outcome -> string

(** Internal control-flow exception used by the machine. *)
exception Machine_stop of outcome
