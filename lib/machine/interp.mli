(** The IR interpreter: a word-granular machine with based-on metadata.

    Registers optionally carry based-on metadata (bounds + temporal id +
    kind); safe-store-routed memory operations persist it, plain operations
    drop it, checked operations verify it. Every instruction has a code
    address, so a corrupted return address or function pointer "jumps"
    exactly where the attacker pointed it — a function, a gadget in the
    middle of one, injected shellcode in a data page, or garbage. *)

(** A scheduled corruption for deterministic fault-injection campaigns.
    Addresses are absolute machine addresses (after any ASLR slide);
    symbolic sites are resolved by [Levee_attacks.Faultplan].

    [Flip_bit]/[Arb_write] go through the plain (attacker-reachable)
    access path, so the machine's isolation still applies: faulting the
    safe region without provenance traps as [Isolation_violation], the
    code segment is unwritable, the null page crashes. [Store_desync]
    (add [delta] to an existing safe-store entry's value) and [Meta_drop]
    (erase an entry) mutate the safe pointer store directly — they model
    an attacker who has already bypassed isolation.

    [Stall] and [Worker_kill] are availability faults for the resilient
    server campaigns: [Stall] charges [cycles] extra simulated cycles (an
    external stall — I/O hiccup, page-fault storm) without touching
    memory; [Worker_kill] forcibly finishes spawned thread [tid] with
    value [-1] (joiners observe it; mutexes the victim held stay held,
    so a kill inside a critical section can deadlock the survivors).
    Killing tid 0 crashes the whole machine; an invalid or already
    finished tid is a no-op. *)
type fault =
  | Flip_bit of { addr : int; bit : int }
  | Arb_write of { addr : int; value : int }
  | Store_desync of { addr : int; delta : int }
  | Meta_drop of { addr : int }
  | Stall of { cycles : int }
  | Worker_kill of { tid : int }

type result = {
  outcome : Trap.outcome;
  cycles : int;              (** deterministic cost-model cycles *)
  instrs : int;              (** instructions executed *)
  mem_ops : int;
  instrumented_mem_ops : int;
  output : string;           (** everything print_int/print_str produced *)
  checksum : int;            (** the checksum() accumulator *)
  mem_footprint : int;       (** words of regular memory touched (pages) *)
  store_footprint : int;     (** words used by the safe pointer store *)
  store_accesses : int;      (** safe-store get/set/clear operations *)
  heap_peak : int;           (** peak live heap words *)
  threads : int;             (** total threads, including main (>= 1) *)
  ctx_switches : int;        (** scheduler context switches *)
  races : int;               (** races reported by the lockset detector *)
  race_reports : string list;(** one line per race, in occurrence order *)
  race_details : Race.report list;
      (** the structured reports behind [race_reports], for projection
          back onto program objects ({!Raceproj}) *)
}

(** Run [main] of a loaded image to completion.
    @param input the attacker/workload input word stream
    @param fuel instruction budget (default 60M); exceeding it yields
           [Trap.Fuel_exhausted]
    @param faults scheduled corruptions as [(step, fault)] pairs; the
           fault fires just before instruction number [step] (0-based)
           executes. Same-step faults fire in list order; steps beyond
           the fuel budget never fire.
    @param sched_seed seed of the deterministic preemptive scheduler
           (default 0). Single-threaded programs never consult the
           scheduler, so the seed does not affect them; for multithreaded
           programs, the run is a pure function of (program, input,
           config, faults, sched_seed). *)
val run :
  ?input:int array -> ?fuel:int -> ?faults:(int * fault) list ->
  ?sched_seed:int -> Loader.image -> result

(** [run_program prog cfg] loads and runs in one step. The program must
    define [main]. *)
val run_program :
  ?input:int array -> ?fuel:int -> ?faults:(int * fault) list ->
  ?sched_seed:int -> Levee_ir.Prog.t -> Config.t -> result
