(** The IR interpreter: a word-granular machine with based-on metadata.

    Registers optionally carry based-on metadata (bounds + temporal id +
    kind); safe-store-routed memory operations persist it, plain operations
    drop it, checked operations verify it. Every instruction has a code
    address, so a corrupted return address or function pointer "jumps"
    exactly where the attacker pointed it — a function, a gadget in the
    middle of one, injected shellcode in a data page, or garbage. *)

type result = {
  outcome : Trap.outcome;
  cycles : int;              (** deterministic cost-model cycles *)
  instrs : int;              (** instructions executed *)
  mem_ops : int;
  instrumented_mem_ops : int;
  output : string;           (** everything print_int/print_str produced *)
  checksum : int;            (** the checksum() accumulator *)
  mem_footprint : int;       (** words of regular memory touched (pages) *)
  store_footprint : int;     (** words used by the safe pointer store *)
  store_accesses : int;      (** safe-store get/set/clear operations *)
  heap_peak : int;           (** peak live heap words *)
}

(** Run [main] of a loaded image to completion.
    @param input the attacker/workload input word stream
    @param fuel instruction budget (default 60M); exceeding it yields
           [Trap.Fuel_exhausted] *)
val run : ?input:int array -> ?fuel:int -> Loader.image -> result

(** [run_program prog cfg] loads and runs in one step. The program must
    define [main]. *)
val run_program :
  ?input:int array -> ?fuel:int -> Levee_ir.Prog.t -> Config.t -> result
