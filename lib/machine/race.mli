(** Dynamic data-race detection (Eraser-style lockset) over shared
    memory: globals, heap, and the safe region. Deterministic under the
    deterministic scheduler — same seed, same reports, same order. *)

type kind =
  | Shared_data    (* globals / heap *)
  | Safe_region    (* safe stacks or safe-store values *)
  | Metadata       (* safe-store metadata *)

val kind_name : kind -> string

type report = {
  r_addr : int;
  r_kind : kind;
  r_first_tid : int;
  r_second_tid : int;
  r_write : bool;
}

type t

val create : unit -> t

(** Record one shared access; [locks] is the list of mutex addresses the
    thread holds. Returns [true] iff this access produced a (first)
    race report for the location. *)
val access :
  t -> addr:int -> tid:int -> write:bool -> locks:int list -> kind:kind ->
  bool

val count : t -> int
val reports : t -> report list
val describe : report -> string
