(** Program loader.

    Assigns code addresses to every instruction (so corrupted code pointers
    decode like a real instruction pointer), lays out globals, resolves
    initializers, and computes per-function frame layouts for the active
    configuration. The loader is trusted, per the paper's threat model. *)

module Prog = Levee_ir.Prog

type code_point = { cp_fn : string; cp_block : int; cp_ip : int }

(** Metadata type carried by the prepared program's resolved operands. *)
type pmeta = Meta.t option

(** Placement of one alloca slot within its frame. *)
type slot = {
  sl_on_safe : bool;      (** safe stack vs regular (unsafe) stack *)
  sl_offset : int;        (** addr = frame_base - sl_offset *)
  sl_size : int;
}

type frame_layout = {
  fl_slots : (int, slot) Hashtbl.t;  (** alloca register -> placement *)
  fl_regular_size : int;
  fl_safe_size : int;
  fl_ret_on_safe : bool;
  fl_ret_offset : int;
  fl_cookie_offset : int option;     (** always on the regular stack *)
  fl_hot_words : int;                (** scalar locals (cache-hot area) *)
  fl_array_words : int;
  fl_has_unsafe : bool;              (** needs a separate unsafe frame *)
}

type image = {
  prog : Prog.t;
  cfg : Config.t;
  slide : int;                       (** ASLR slide actually applied *)
  func_entry : (string, int) Hashtbl.t;
  addr_of_point : (string * int * int, int) Hashtbl.t;
  point_of_addr : (int, code_point) Hashtbl.t;
  return_sites : (int, unit) Hashtbl.t;   (** coarse-CFI return targets *)
  func_entries : (int, string) Hashtbl.t;
  global_addr : (string, int) Hashtbl.t;
  global_bounds : (string, int * int) Hashtbl.t;
  layouts : (string, frame_layout) Hashtbl.t;
  (* Decode-once layer (see [Levee_ir.Prepared]): every function resolved
     at load time so the interpreter's hot loop never probes the
     hashtables above. *)
  p_funcs : pmeta Levee_ir.Prepared.func array;
  p_findex : (string, int) Hashtbl.t;
  entry_findex : (int, int) Hashtbl.t;
  p_layouts : frame_layout array;
}

(** Frame layout of one function under a configuration. *)
val layout_of_func : Levee_ir.Ty.env -> Config.t -> Prog.func -> frame_layout

(** Build the image for a program under a configuration. *)
val load : Prog.t -> Config.t -> image

(** Write global initializers into memory; pointer-valued cells also get
    store entries when the configuration keeps metadata (CPI/CPS loaders
    register linker-emitted code pointers, Section 4). *)
val init_globals : image -> Mem.t -> Safestore.t -> unit

(** Code address of a function's entry. @raise Not_found if unknown. *)
val entry_addr : image -> string -> int

(** Prepared (decode-once) form of a function.
    @raise Not_found if unknown. *)
val prepared : image -> string -> pmeta Levee_ir.Prepared.func

(** Code address of instruction [ip] of block [block] of [fname]. *)
val point_addr : image -> string -> int -> int -> int

(** Decode a code address back to its program point. *)
val decode : image -> int -> code_point option

val is_function_entry : image -> int -> bool
