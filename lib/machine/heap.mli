(** Bump-with-free-list heap allocator for the regular region.

    Every allocation carries a fresh temporal id, which CPI's metadata uses
    to detect use-after-free of sensitive pointers; freed blocks of equal
    size are reused, which is what makes use-after-free exploitable in the
    unprotected configurations. *)

type block = { addr : int; size : int; mutable tid : int; mutable live : bool }

type t = {
  mem : Mem.t;
  base : int;
  limit : int;
  mutable brk : int;
  mutable next_tid : int;
  blocks : (int, block) Hashtbl.t;
  free_lists : (int, int list ref) Hashtbl.t;
  mutable live_words : int;
  mutable peak_words : int;
  dead_tids : (int, unit) Hashtbl.t;
}

val create : Mem.t -> base:int -> limit:int -> t

(** Allocate [n] words (zeroed). Raises [Trap.Machine_stop] with
    [Out_of_memory] on exhaustion. *)
val malloc : t -> int -> block

(** Free a block. Raises [Trap.Machine_stop] with [Invalid_free] or
    [Double_free] on misuse. *)
val free : t -> int -> unit

(** Is the temporal id dead (its object freed)? *)
val tid_dead : t -> int -> bool

val block_at : t -> int -> block option
