(** The IR interpreter: a word-granular machine with based-on metadata.

    The interpreter realizes the operational semantics of Appendix A at the
    IR level: every register optionally carries based-on metadata (bounds +
    temporal id + kind), safe-store-routed memory operations persist that
    metadata, plain operations drop it, and checked operations verify it.
    Control-flow is fully decodable: every instruction has a code address,
    so a corrupted return address or function pointer "jumps" exactly where
    the attacker pointed it — into a function, a gadget in the middle of
    one, injected shellcode in a data page, or garbage. *)

module Ty = Levee_ir.Ty
module I = Levee_ir.Instr
module Prog = Levee_ir.Prog
open Trap

type meta = { lower : int; upper : int; tid : int; kind : Safestore.kind }

let meta_of_entry (e : Safestore.entry) =
  match e.Safestore.kind with
  | Safestore.Invalid -> None
  | k -> Some { lower = e.Safestore.lower; upper = e.Safestore.upper;
                tid = e.Safestore.tid; kind = k }

let entry_of_meta value = function
  | Some m ->
    { Safestore.value; lower = m.lower; upper = m.upper; tid = m.tid; kind = m.kind }
  | None -> Safestore.invalid_entry value

type frame = {
  fr_fn : Prog.func;
  regs : int array;
  rmeta : meta option array;
  mutable block : int;
  mutable ip : int;
  base_r : int;
  base_s : int;
  ret_dst : int option;        (* caller register receiving the result *)
  pushed_ret : int;            (* legitimate return target *)
  cookie_value : int;
  penalize_stack : bool;       (* hot frame exceeds the cache-friendly size *)
  layout : Loader.frame_layout;
}

type jmp_ctx = {
  jc_depth : int;
  jc_block : int;
  jc_ip : int;                 (* resume point: just after the setjmp *)
  jc_dst : int option;         (* setjmp's destination register *)
  jc_resume_addr : int;        (* code address of the resume point *)
}

type t = {
  image : Loader.image;
  cfg : Config.t;
  mem : Mem.t;
  store : Safestore.t;
  heap : Heap.t;
  cost : Cost.t;
  mutable frames : frame list;
  mutable sp_r : int;
  mutable sp_s : int;
  input : int array;
  mutable input_pos : int;
  out : Buffer.t;
  mutable checksum : int;
  mutable fuel : int;
  jmp_ctxs : (int, jmp_ctx) Hashtbl.t;
  mutable next_jmp : int;
  (* Based-on metadata shadow for safe-region addresses: the safe stack is
     isolation-protected, so values stored there keep their metadata the
     way register-resident values do after mem2reg. This is what lets the
     instrumentation passes skip proven-safe local slots, mirroring the
     paper's point that compiler optimizations remove many inserted
     checks (Section 3.2.2). *)
  safe_meta : (int, meta) Hashtbl.t;
}

type result = {
  outcome : outcome;
  cycles : int;
  instrs : int;
  mem_ops : int;
  instrumented_mem_ops : int;
  output : string;
  checksum : int;
  mem_footprint : int;         (* words of regular memory touched *)
  store_footprint : int;       (* words used by the safe pointer store *)
  store_accesses : int;        (* safe-store get/set/clear operations *)
  heap_peak : int;
}

(* Sentinel "return address" of the outermost frame; returning through it
   exits the program. *)
let exit_sentinel = Layout.code_base - 7

let stop outcome = raise (Machine_stop outcome)

let current st =
  match st.frames with
  | f :: _ -> f
  | [] -> assert false

(* ---------- Memory access with isolation ---------- *)

let charge_sfi st =
  if st.cfg.Config.isolation = Config.Sfi then Cost.add st.cost Cost.sfi_mask

(* A plain access may touch the safe region only with valid in-bounds
   provenance (a proven-safe safe-stack access). Anything else models an
   attacker-influenced access: blocked by segments / guaranteed-miss under
   leak-proof info hiding / masked by SFI — uniformly reported as an
   isolation violation. *)
let check_region st addr meta ~is_write ~size =
  let slide = st.image.Loader.slide in
  match Layout.region_of ~slide addr with
  | Layout.Safe ->
    (match meta with
     | Some m when m.kind = Safestore.Data && addr >= m.lower && addr + size <= m.upper -> ()
     | _ -> stop (Trapped Isolation_violation))
  | Layout.Code -> if is_write then stop (Crash "write to code segment")
  | Layout.Null -> stop (Crash "null-page access")
  | Layout.Globals | Layout.Heap | Layout.Stack | Layout.Other -> ()

(* SFI isolation protects the *integrity* of the safe region: only writes
   need masking (reads cannot corrupt, and the safe region's secrecy is the
   info-hiding mechanism's job). Accesses the safe stack analysis proved
   safe live in the safe region and need no mask either — this is how the
   paper keeps the SFI variant under ~5%. *)
let plain_read st addr meta =
  check_region st addr meta ~is_write:false ~size:1;
  if Layout.in_code ~slide:st.image.Loader.slide addr then 0xC0DE
  else Mem.read st.mem addr

let plain_write st addr meta v =
  check_region st addr meta ~is_write:true ~size:1;
  if not (Layout.in_safe_region ~slide:st.image.Loader.slide addr) then charge_sfi st;
  Mem.write st.mem addr v

(* Reads/writes that may hit the safe stack carry metadata through the
   shadow (see [safe_meta] above). *)
let read_with_shadow st addr meta =
  let v = plain_read st addr meta in
  let m =
    if Layout.in_safe_region ~slide:st.image.Loader.slide addr then
      Hashtbl.find_opt st.safe_meta addr
    else None
  in
  (v, m)

let write_with_shadow st addr meta v vmeta =
  plain_write st addr meta v;
  if Layout.in_safe_region ~slide:st.image.Loader.slide addr then begin
    match vmeta with
    | Some m -> Hashtbl.replace st.safe_meta addr m
    | None -> Hashtbl.remove st.safe_meta addr
  end

(* ---------- Metadata checks (the CPI runtime checks) ---------- *)

let check_deref st addr meta ~size ~what =
  Cost.charge_check st.cost;
  match meta with
  | None -> stop (Trapped (Missing_metadata what))
  | Some m ->
    (match m.kind with
     | Safestore.Invalid -> stop (Trapped (Bounds_violation "invalid metadata"))
     | Safestore.Code ->
       (* Dereferencing a code pointer as data is never safe. *)
       stop (Trapped (Bounds_violation "code pointer used as data"))
     | Safestore.Data ->
       if Heap.tid_dead st.heap m.tid then stop (Trapped Temporal_violation);
       if addr < m.lower || addr + size > m.upper then
         stop (Trapped (Bounds_violation what)))

(* ---------- Operand evaluation ---------- *)

let eval st (o : I.operand) : int * meta option =
  let fr = current st in
  match o with
  | I.Reg r -> (fr.regs.(r), fr.rmeta.(r))
  | I.Imm n -> (n, None)
  | I.Nullp -> (0, None)
  | I.Glob g ->
    let addr = Hashtbl.find st.image.Loader.global_addr g in
    let lo, hi = Hashtbl.find st.image.Loader.global_bounds g in
    (addr, Some { lower = lo; upper = hi; tid = 0; kind = Safestore.Data })
  | I.Fun f ->
    let addr = Loader.entry_addr st.image f in
    (addr, Some { lower = addr; upper = addr + 1; tid = 0; kind = Safestore.Code })

let set_reg st dst v m =
  let fr = current st in
  fr.regs.(dst) <- v;
  fr.rmeta.(dst) <- m

(* ---------- Frame management ---------- *)

let cookie_secret base = 0x600DC00C lxor (base * 31)

let push_frame st (fn : Prog.func) ~args ~ret_dst ~pushed_ret ~entry =
  let layout = Hashtbl.find st.image.Loader.layouts fn.Prog.fname in
  let base_r = st.sp_r in
  let base_s = st.sp_s in
  st.sp_r <- st.sp_r - layout.Loader.fl_regular_size;
  st.sp_s <- st.sp_s - layout.Loader.fl_safe_size;
  if st.sp_r < Layout.stack_limit + st.image.Loader.slide then
    stop (Crash "regular stack overflow");
  let regs = Array.make (max fn.Prog.nregs 1) 0 in
  let rmeta = Array.make (max fn.Prog.nregs 1) None in
  List.iteri
    (fun i (v, m) ->
      if i < Array.length regs then begin
        regs.(i) <- v;
        rmeta.(i) <- m
      end)
    args;
  let cookie_value = cookie_secret base_r in
  (match layout.Loader.fl_cookie_offset with
   | Some off ->
     Mem.write st.mem (base_r - off) cookie_value;
     Cost.add st.cost Cost.cookie_cost
   | None -> ());
  (* Write the return address into its slot (regular or safe stack). *)
  let ret_slot_base = if layout.Loader.fl_ret_on_safe then base_s else base_r in
  Mem.write st.mem (ret_slot_base - layout.Loader.fl_ret_offset) pushed_ret;
  (* Instrumentation costs of the call itself. *)
  st.cost.Cost.calls <- st.cost.Cost.calls + 1;
  Cost.add st.cost Cost.call_base;
  if st.cfg.Config.safe_stack && layout.Loader.fl_has_unsafe then begin
    st.cost.Cost.unsafe_frames <- st.cost.Cost.unsafe_frames + 1;
    Cost.add st.cost Cost.unsafe_frame_cost
  end;
  (* Locality model: a large hot frame area costs extra per call; the safe
     stack keeps the hot area small by moving buffers away. *)
  let hot_resident =
    if st.cfg.Config.safe_stack then layout.Loader.fl_safe_size
    else layout.Loader.fl_regular_size
  in
  let penalize_stack = hot_resident > Cost.hot_frame_threshold in
  let block, ip = entry in
  st.frames <-
    { fr_fn = fn; regs; rmeta; block; ip; base_r; base_s; ret_dst; pushed_ret;
      cookie_value; penalize_stack; layout }
    :: st.frames

let pop_frame st =
  match st.frames with
  | f :: rest ->
    st.frames <- rest;
    st.sp_r <- f.base_r;
    st.sp_s <- f.base_s;
    f
  | [] -> assert false

(* ---------- Control-flow diversion ---------- *)

(* [divert st target ~via] models the machine transferring control to an
   arbitrary address: the core of every hijack attempt. *)
let divert st target ~via =
  (match via, st.cfg.Config.cfi_returns with
   | `Ret, true ->
     if not (Hashtbl.mem st.image.Loader.return_sites target) then
       stop (Trapped (Cfi_violation "return target is not a call site"))
   | (`Ret | `Call | `Longjmp), _ -> ());
  match Loader.decode st.image target with
  | Some cp ->
    let fn = Prog.find_func st.image.Loader.prog cp.Loader.cp_fn in
    if Loader.is_function_entry st.image target then
      (* Jump to a function entry: executes it with garbage arguments. *)
      push_frame st fn ~args:[] ~ret_dst:None ~pushed_ret:exit_sentinel
        ~entry:(0, 0)
    else
      (* Jump into the middle of a function: a gadget; registers hold
         garbage (zeroes). *)
      push_frame st fn ~args:[] ~ret_dst:None ~pushed_ret:exit_sentinel
        ~entry:(cp.Loader.cp_block, cp.Loader.cp_ip)
  | None ->
    if Layout.in_code ~slide:st.image.Loader.slide target then
      stop (Crash "jump into code padding")
    else if st.cfg.Config.dep then stop (Trapped Exec_violation)
    else if Mem.read st.mem target = Layout.shellcode_magic then
      stop (Hijacked "shellcode executed")
    else stop (Crash "jump to non-code address")

(* ---------- Calls and returns ---------- *)

let invoke st (fn : Prog.func) args ret_dst =
  let caller = current st in
  let pushed_ret =
    Loader.point_addr st.image caller.fr_fn.Prog.fname caller.block caller.ip
  in
  push_frame st fn ~args ~ret_dst ~pushed_ret ~entry:(0, 0)

let do_call st dst callee args cfi_checked =
  Cost.add st.cost (List.length args);
  let argvals = List.map (eval st) args in
  (* Advance the caller past the call before pushing the callee, so the
     pushed return address denotes the next instruction. *)
  let caller = current st in
  caller.ip <- caller.ip + 1;
  match callee with
  | I.Direct name -> invoke st (Prog.find_func st.image.Loader.prog name) argvals dst
  | I.Indirect o ->
    let v, m = eval st o in
    if st.cfg.Config.enforce_code_meta then begin
      (* CPI/CPS: only values with genuine code-pointer provenance may be
         indirect-call targets. *)
      match m with
      | Some { kind = Safestore.Code; _ } ->
        (match Hashtbl.find_opt st.image.Loader.func_entries v with
         | Some name -> invoke st (Prog.find_func st.image.Loader.prog name) argvals dst
         | None -> stop (Crash "code pointer does not decode"))
      | Some _ | None -> stop (Trapped Invalid_code_pointer)
    end
    else begin
      if st.cfg.Config.cfi_calls && cfi_checked then begin
        Cost.add st.cost Cost.cfi_cost;
        if not (Loader.is_function_entry st.image v) then
          stop (Trapped (Cfi_violation "indirect call target not a function"))
      end;
      match Hashtbl.find_opt st.image.Loader.func_entries v with
      | Some name -> invoke st (Prog.find_func st.image.Loader.prog name) argvals dst
      | None -> divert st v ~via:`Call
    end

let do_ret st retval =
  Cost.add st.cost Cost.ret_base;
  let fr = current st in
  (* Cookie check (epilogue). *)
  (match fr.layout.Loader.fl_cookie_offset with
   | Some off when st.cfg.Config.check_cookies ->
     if Mem.read st.mem (fr.base_r - off) <> fr.cookie_value then
       stop (Trapped Cookie_smashed)
   | Some _ | None -> ());
  let ret_slot_base =
    if fr.layout.Loader.fl_ret_on_safe then fr.base_s else fr.base_r
  in
  let stored = Mem.read st.mem (ret_slot_base - fr.layout.Loader.fl_ret_offset) in
  let popped = pop_frame st in
  if stored = popped.pushed_ret then begin
    if stored = exit_sentinel || st.frames = [] then
      stop (Exit (fst retval))
    else begin
      (match popped.ret_dst with
       | Some dst -> set_reg st dst (fst retval) (snd retval)
       | None -> ())
    end
  end
  else
    (* The stored return address differs from the one the call pushed:
       memory corruption. Control goes wherever it points. *)
    divert st stored ~via:`Ret

(* ---------- Intrinsics (the runtime support library + modelled libc) ---------- *)

let input_next st =
  if st.input_pos < Array.length st.input then begin
    let v = st.input.(st.input_pos) in
    st.input_pos <- st.input_pos + 1;
    Some v
  end
  else None

let read_cstr st addr maxlen =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= maxlen then ()
    else
      let w = Mem.read st.mem (addr + i) in
      if w = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr (((w mod 256) + 256) mod 256));
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let checksum_mix cs v =
  let rotated = ((cs lsl 7) lor (cs lsr (62 - 7))) land 0x3FFF_FFFF_FFFF_FFFF in
  (rotated lxor v) land 0x3FFF_FFFF_FFFF_FFFF

(* Bounds check for libc memory functions under full memory safety. *)
let libc_check st meta addr n what =
  if st.cfg.Config.check_libc && n > 0 then check_deref st addr meta ~size:n ~what

let do_intrin st dst (op : I.intrin) args =
  let v i = fst (List.nth args i) in
  let m i = snd (List.nth args i) in
  let ret value meta = match dst with Some d -> set_reg st d value meta | None -> () in
  Cost.add st.cost Cost.intrin_setup;
  match op with
  | I.I_malloc ->
    let n = v 0 in
    let b = Heap.malloc st.heap n in
    ret b.Heap.addr
      (Some { lower = b.Heap.addr; upper = b.Heap.addr + b.Heap.size;
              tid = b.Heap.tid; kind = Safestore.Data })
  | I.I_free ->
    let p = v 0 in
    if p = 0 then () else Heap.free st.heap p
  | I.I_memcpy | I.I_cpi_memcpy ->
    let d = v 0 and s = v 1 and n = v 2 in
    libc_check st (m 0) d n "memcpy dst";
    libc_check st (m 1) s n "memcpy src";
    Cost.add st.cost (Cost.per_word_libc * max n 0);
    for i = 0 to n - 1 do
      let w = plain_read st (s + i) (m 1) in
      plain_write st (d + i) (m 0) w;
      if op = I.I_cpi_memcpy then begin
        (* Type-unknown copy: move safe-store entries along with the data
           so protected pointers survive the copy (Section 3.2.2). *)
        Cost.add st.cost (Cost.cpi_memop_per_word st.cfg.Config.store_impl);
        match Safestore.get st.store (s + i) with
        | Some e -> Safestore.set st.store (d + i) e
        | None -> Safestore.clear_at st.store (d + i)
      end
    done
  | I.I_memset | I.I_cpi_memset ->
    let d = v 0 and x = v 1 and n = v 2 in
    libc_check st (m 0) d n "memset dst";
    Cost.add st.cost (Cost.per_word_libc * max n 0);
    for i = 0 to n - 1 do
      plain_write st (d + i) (m 0) x;
      if op = I.I_cpi_memset then begin
        Cost.add st.cost (Cost.cpi_memop_per_word st.cfg.Config.store_impl);
        Safestore.clear_at st.store (d + i)
      end
    done
  | I.I_strcpy ->
    let d = v 0 and s = v 1 in
    (* classically unbounded: copies until NUL *)
    let rec go i =
      let w = plain_read st (s + i) (m 1) in
      if st.cfg.Config.check_libc then
        check_deref st (d + i) (m 0) ~size:1 ~what:"strcpy dst";
      plain_write st (d + i) (m 0) w;
      Cost.add st.cost Cost.per_word_libc;
      if w <> 0 then go (i + 1)
    in
    go 0
  | I.I_strlen ->
    let s = v 0 in
    let rec go i = if plain_read st (s + i) (m 0) = 0 then i else go (i + 1) in
    let n = go 0 in
    Cost.add st.cost (Cost.per_word_libc * n);
    ret n None
  | I.I_strcmp ->
    let a = v 0 and b = v 1 in
    let rec go i =
      let x = plain_read st (a + i) (m 0) and y = plain_read st (b + i) (m 1) in
      Cost.add st.cost Cost.per_word_libc;
      if x <> y then compare x y
      else if x = 0 then 0
      else go (i + 1)
    in
    ret (go 0) None
  | I.I_read_input ->
    (* n >= 0: read up to n words. n < 0: gets() semantics — read words
       until end of input or a newline word (10), which is consumed but
       not stored. *)
    let d = v 0 and n = v 1 in
    let limit = if n < 0 then max_int else n in
    let rec go i =
      if i >= limit then i
      else
        match input_next st with
        | None -> i
        | Some 10 when n < 0 -> i
        | Some w ->
          if st.cfg.Config.check_libc then
            check_deref st (d + i) (m 0) ~size:1 ~what:"read_input dst";
          plain_write st (d + i) (m 0) w;
          Cost.add st.cost Cost.per_word_libc;
          go (i + 1)
    in
    ret (go 0) None
  | I.I_read_int ->
    (match input_next st with
     | Some w -> ret w None
     | None -> ret 0 None)
  | I.I_print_int ->
    Buffer.add_string st.out (string_of_int (v 0));
    Buffer.add_char st.out '\n'
  | I.I_print_str ->
    Buffer.add_string st.out (read_cstr st (v 0) 4096);
    Buffer.add_char st.out '\n'
  | I.I_checksum -> st.checksum <- checksum_mix st.checksum (v 0)
  | I.I_setjmp ->
    let buf = v 0 in
    let fr = current st in
    (* Resume point: the instruction after this setjmp (ip was already
       advanced by the dispatch loop). *)
    let resume = Loader.point_addr st.image fr.fr_fn.Prog.fname fr.block fr.ip in
    let id = st.next_jmp in
    st.next_jmp <- id + 1;
    Hashtbl.replace st.jmp_ctxs id
      { jc_depth = List.length st.frames; jc_block = fr.block; jc_ip = fr.ip;
        jc_dst = dst; jc_resume_addr = resume };
    (* jmp_buf layout: [saved PC; context id]. The saved PC is an
       implicitly-created code pointer (Section 3.2.1) — protected via the
       safe store when the configuration says so. *)
    if st.cfg.Config.protect_jmpbuf then begin
      Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
      Safestore.set st.store buf
        { Safestore.value = resume; lower = resume; upper = resume + 1;
          tid = 0; kind = Safestore.Code }
    end;
    plain_write st buf (m 0) resume;
    plain_write st (buf + 1) (m 0) id;
    ret 0 None
  | I.I_longjmp ->
    let buf = v 0 and x = v 1 in
    let target =
      if st.cfg.Config.protect_jmpbuf then begin
        Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
        match Safestore.get st.store buf with
        | Some { Safestore.kind = Safestore.Code; value; _ } -> value
        | Some _ | None -> stop (Trapped Invalid_code_pointer)
      end
      else plain_read st buf (m 0)
    in
    let id = plain_read st (buf + 1) (m 0) in
    (match Hashtbl.find_opt st.jmp_ctxs id with
     | Some ctx
       when ctx.jc_resume_addr = target && ctx.jc_depth <= List.length st.frames ->
       (* Legitimate unwind. *)
       while List.length st.frames > ctx.jc_depth do
         ignore (pop_frame st)
       done;
       let fr = current st in
       fr.block <- ctx.jc_block;
       fr.ip <- ctx.jc_ip;
       (match ctx.jc_dst with
        | Some d -> set_reg st d (if x = 0 then 1 else x) None
        | None -> ())
     | Some _ | None ->
       (* Corrupted jmp_buf: control flows to the stored "PC". *)
       divert st target ~via:`Longjmp)
  | I.I_system -> stop (Hijacked "system() reached")
  | I.I_exit -> stop (Exit (v 0))
  | I.I_abort -> stop (Crash "abort() called")

(* ---------- Loads and stores ---------- *)

let do_load st dst ty addr_op where checked =
  let a, ma = eval st addr_op in
  let size = 1 in
  if checked then
    check_deref st a ma ~size ~what:(Ty.to_string ty);
  let v, m =
    match where with
    | I.Regular ->
      Cost.charge_mem st.cost ~instrumented:false Cost.load_base;
      if (current st).penalize_stack
         && a land 7 = 0
         && a <= Layout.stack_top + st.image.Loader.slide
         && a > Layout.stack_limit + st.image.Loader.slide
      then Cost.add st.cost Cost.locality_penalty;
      read_with_shadow st a ma
    | I.SafeFull | I.SafeDebug ->
      Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
      Cost.charge_mem st.cost ~instrumented:true 0;
      (match Safestore.get st.store a with
       | Some e ->
         if where = I.SafeDebug then begin
           (* debug mode: regular mirror must match *)
           let mirror = Mem.read st.mem a in
           if mirror <> e.Safestore.value then stop (Trapped Debug_mismatch)
         end;
         (e.Safestore.value, meta_of_entry e)
       | None ->
         (* No protected value here: universal pointer currently holding a
            regular value; fall back to the regular region. *)
         Cost.add st.cost Cost.load_base;
         (plain_read st a ma, None))
    | I.SafeValue ->
      st.cost.Cost.safe_store_ops <- st.cost.Cost.safe_store_ops + 1;
      Cost.charge_mem st.cost ~instrumented:true
        (Safestore.lookup_cost st.cfg.Config.store_impl + 2
         + (if Ty.is_universal_pointer ty then 1 else 0));
      (match Safestore.get st.store a with
       | Some e ->
         (e.Safestore.value,
          Some { lower = e.Safestore.value; upper = e.Safestore.value + 1;
                 tid = 0; kind = Safestore.Code })
       | None -> (plain_read st a ma, None))
    | I.SafeData ->
      Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
      Cost.charge_mem st.cost ~instrumented:true 0;
      (match Safestore.get st.store a with
       | Some e -> (e.Safestore.value, meta_of_entry e)
       | None ->
         Cost.add st.cost Cost.load_base;
         (plain_read st a ma, None))
    | I.RegularMeta ->
      Cost.charge_mem st.cost ~instrumented:true Cost.load_base;
      Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
      let v = plain_read st a ma in
      let m =
        match Safestore.get st.store a with
        | Some e when e.Safestore.value = v -> meta_of_entry e
        | Some _ | None -> None
      in
      (v, m)
  in
  set_reg st dst v m

let do_store st ty v_op addr_op where checked =
  let vv, vm = eval st v_op in
  let a, ma = eval st addr_op in
  if checked then check_deref st a ma ~size:1 ~what:(Ty.to_string ty);
  match where with
  | I.Regular ->
    Cost.charge_mem st.cost ~instrumented:false Cost.store_base;
    if (current st).penalize_stack
       && a land 7 = 0
       && a <= Layout.stack_top + st.image.Loader.slide
       && a > Layout.stack_limit + st.image.Loader.slide
    then Cost.add st.cost Cost.locality_penalty;
    write_with_shadow st a ma vv vm
  | I.SafeFull | I.SafeDebug ->
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    Cost.charge_mem st.cost ~instrumented:true 0;
    (match vm with
     | Some m ->
       Safestore.set st.store a (entry_of_meta vv (Some m));
       if where = I.SafeDebug then begin
         Cost.add st.cost Cost.store_base;
         Mem.write st.mem a vv   (* mirror copy for non-instrumented readers *)
       end
     | None ->
       (* Value without valid metadata (e.g. cast from a plain integer):
          store in the regular region with an invalidated safe entry. *)
       Safestore.clear_at st.store a;
       Cost.add st.cost Cost.store_base;
       plain_write st a ma vv)
  | I.SafeValue ->
    st.cost.Cost.safe_store_ops <- st.cost.Cost.safe_store_ops + 1;
    Cost.charge_mem st.cost ~instrumented:true
      (Safestore.lookup_cost st.cfg.Config.store_impl + 2
       + (if Ty.is_universal_pointer ty then 1 else 0));
    (match vm with
     | Some { kind = Safestore.Code; _ } ->
       Safestore.set st.store a
         { Safestore.value = vv; lower = vv; upper = vv + 1; tid = 0;
           kind = Safestore.Code }
     | Some _ | None ->
       Safestore.clear_at st.store a;
       Cost.add st.cost Cost.store_base;
       plain_write st a ma vv)
  | I.SafeData ->
    (* annotated sensitive data: the value always lives in the safe store,
       with metadata when the value has any and degenerate bounds when it
       is plain data *)
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    Cost.charge_mem st.cost ~instrumented:true 0;
    (match vm with
     | Some m -> Safestore.set st.store a (entry_of_meta vv (Some m))
     | None ->
       Safestore.set st.store a
         { Safestore.value = vv; lower = 0; upper = 0; tid = 0;
           kind = Safestore.Data })
  | I.RegularMeta ->
    Cost.charge_mem st.cost ~instrumented:true Cost.store_base;
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    plain_write st a ma vv;
    Safestore.set st.store a (entry_of_meta vv vm)

(* ---------- Instruction dispatch ---------- *)

let exec_binop op a b =
  match (op : I.binop) with
  | I.Add -> a + b
  | I.Sub -> a - b
  | I.Mul -> a * b
  | I.Div -> if b = 0 then stop (Trapped Division_by_zero) else a / b
  | I.Rem -> if b = 0 then stop (Trapped Division_by_zero) else a mod b
  | I.And -> a land b
  | I.Or -> a lor b
  | I.Xor -> a lxor b
  | I.Shl -> a lsl (b land 63)
  | I.Shr -> a asr (b land 63)

let exec_cmp op a b =
  let r =
    match (op : I.cmpop) with
    | I.Eq -> a = b
    | I.Ne -> a <> b
    | I.Lt -> a < b
    | I.Le -> a <= b
    | I.Gt -> a > b
    | I.Ge -> a >= b
  in
  if r then 1 else 0

let exec_instr st (i : I.instr) =
  match i with
  | I.Alloca { dst; ty = _; slot = _ } ->
    Cost.add st.cost Cost.alu;
    let fr = current st in
    let sl = Hashtbl.find fr.layout.Loader.fl_slots dst in
    let base = if sl.Loader.sl_on_safe then fr.base_s else fr.base_r in
    let addr = base - sl.Loader.sl_offset in
    set_reg st dst addr
      (Some { lower = addr; upper = addr + sl.Loader.sl_size; tid = 0;
              kind = Safestore.Data })
  | I.Bin { dst; op; l; r } ->
    Cost.add st.cost Cost.alu;
    let a, am = eval st l in
    let b, bm = eval st r in
    let m =
      match op, am, bm with
      | (I.Add | I.Sub), Some m, None -> Some m
      | I.Add, None, Some m -> Some m
      | _, _, _ -> None
    in
    set_reg st dst (exec_binop op a b) m
  | I.Cmp { dst; op; l; r } ->
    Cost.add st.cost Cost.alu;
    let a, _ = eval st l in
    let b, _ = eval st r in
    set_reg st dst (exec_cmp op a b) None
  | I.Load { dst; ty; addr; where; checked } -> do_load st dst ty addr where checked
  | I.Store { ty; v; addr; where; checked } -> do_store st ty v addr where checked
  | I.Gep { dst; base_ty = _; base; path } ->
    let v, m = eval st base in
    let tenv = st.image.Loader.prog.Prog.tenv in
    let addr, meta =
      List.fold_left
        (fun (a, m) step ->
          Cost.add st.cost Cost.alu;
          match step with
          | I.Field (_, off, fsize) ->
            let a = a + off in
            (* Narrow the based-on bounds to the sub-object (case iii). *)
            let m =
              match m with
              | Some mm when mm.kind = Safestore.Data ->
                Some { mm with lower = a; upper = a + fsize }
              | other -> other
            in
            (a, m)
          | I.Index (ty, idx_op) ->
            let idx, _ = eval st idx_op in
            (a + (idx * Ty.size_of tenv ty), m))
        (v, m) path
    in
    set_reg st dst addr meta
  | I.Cast { dst; kind = _; ty = _; v } ->
    Cost.add st.cost Cost.alu;
    let vv, vm = eval st v in
    set_reg st dst vv vm
  | I.Call { dst; callee; args; fty = _; cfi_checked } ->
    do_call st dst callee args cfi_checked
  | I.Intrin { dst; op; args } ->
    let argvals = List.map (eval st) args in
    do_intrin st dst op argvals

let exec_term st (t : I.term) =
  let fr = current st in
  match t with
  | I.Ret None -> do_ret st (0, None)
  | I.Ret (Some o) -> do_ret st (eval st o)
  | I.Br (c, bt, bf) ->
    Cost.add st.cost Cost.branch;
    let v, _ = eval st c in
    fr.block <- (if v <> 0 then bt else bf);
    fr.ip <- 0
  | I.Jmp b ->
    Cost.add st.cost Cost.branch;
    fr.block <- b;
    fr.ip <- 0
  | I.Switch (o, cases, dflt) ->
    Cost.add st.cost (Cost.branch + 1);
    let v, _ = eval st o in
    let target = match List.assoc_opt v cases with Some b -> b | None -> dflt in
    fr.block <- target;
    fr.ip <- 0
  | I.Unreachable -> stop (Crash "unreachable executed")

let step st =
  if st.fuel <= 0 then stop Fuel_exhausted;
  st.fuel <- st.fuel - 1;
  st.cost.Cost.instrs <- st.cost.Cost.instrs + 1;
  let fr = current st in
  let blk = fr.fr_fn.Prog.blocks.(fr.block) in
  if fr.ip < Array.length blk.Prog.instrs then begin
    let i = blk.Prog.instrs.(fr.ip) in
    (* Calls advance ip themselves (before pushing); everything else here. *)
    (match i with
     | I.Call _ -> ()
     | _ -> fr.ip <- fr.ip + 1);
    exec_instr st i
  end
  else exec_term st blk.Prog.term

(* ---------- Top level ---------- *)

let create ?(input = [||]) ?(fuel = 60_000_000) (image : Loader.image) =
  let mem = Mem.create () in
  let store = Safestore.create image.Loader.cfg.Config.store_impl in
  let slide = image.Loader.slide in
  let heap =
    Heap.create mem ~base:(Layout.heap_base + slide) ~limit:(Layout.heap_limit + slide)
  in
  Loader.init_globals image mem store;
  { image; cfg = image.Loader.cfg; mem; store; heap; cost = Cost.create ();
    frames = []; sp_r = Layout.stack_top + slide; sp_s = Layout.safe_stack_top + slide;
    input; input_pos = 0; out = Buffer.create 256; checksum = 0; fuel;
    jmp_ctxs = Hashtbl.create 8; next_jmp = 1; safe_meta = Hashtbl.create 64 }

let result_of st outcome =
  { outcome;
    cycles = st.cost.Cost.cycles;
    instrs = st.cost.Cost.instrs;
    mem_ops = st.cost.Cost.mem_ops;
    instrumented_mem_ops = st.cost.Cost.instrumented_mem_ops;
    output = Buffer.contents st.out;
    checksum = st.checksum;
    mem_footprint = Mem.footprint_words st.mem;
    store_footprint =
      Safestore.footprint_words ~entry_words:st.cfg.Config.cps_entry_words st.store;
    store_accesses = Safestore.access_count st.store;
    heap_peak = st.heap.Heap.peak_words }

(** Run [main] to completion. *)
let run ?input ?fuel (image : Loader.image) : result =
  let st = create ?input ?fuel image in
  if not (Prog.has_func st.image.Loader.prog "main") then
    invalid_arg "Interp.run: program has no main";
  let main = Prog.find_func st.image.Loader.prog "main" in
  (* A synthetic outermost frame is not needed: push main with the exit
     sentinel as its return address. *)
  (try
     push_frame st main
       ~args:(List.map (fun _ -> (0, None)) main.Prog.params)
       ~ret_dst:None ~pushed_ret:exit_sentinel ~entry:(0, 0);
     let rec loop () =
       step st;
       loop ()
     in
     loop ()
   with Machine_stop outcome -> result_of st outcome)

(** Compile-free convenience used everywhere in tests and benches. *)
let run_program ?input ?fuel (prog : Prog.t) (cfg : Config.t) : result =
  run ?input ?fuel (Loader.load prog cfg)
