(** The IR interpreter: a word-granular machine with based-on metadata.

    The interpreter realizes the operational semantics of Appendix A at the
    IR level: every register optionally carries based-on metadata (bounds +
    temporal id + kind), safe-store-routed memory operations persist that
    metadata, plain operations drop it, and checked operations verify it.
    Control-flow is fully decodable: every instruction has a code address,
    so a corrupted return address or function pointer "jumps" exactly where
    the attacker pointed it — into a function, a gadget in the middle of
    one, injected shellcode in a data page, or garbage.

    This interpreter executes the *prepared* (decode-once) form of the
    program built by [Loader.load] — see [Levee_ir.Prepared]. Operands are
    resolved, alloca placements and call return addresses are baked in, and
    switch dispatch is table-driven, so the hot loop performs no hashtable
    lookups. The deterministic cost model is charged exactly as it was by
    the decode-per-step interpreter: simulated cycles, instruction counts,
    footprints and checksums are byte-identical; only host wall-clock
    changes (asserted by the golden-determinism regression test). *)

module Ty = Levee_ir.Ty
module I = Levee_ir.Instr
module Pr = Levee_ir.Prepared
module Prog = Levee_ir.Prog
open Trap

type meta = Meta.t = { lower : int; upper : int; tid : int; kind : Safestore.kind }

let meta_of_entry = Meta.of_entry
let entry_of_meta = Meta.to_entry

type frame = {
  fr_pf : Loader.pmeta Pr.func;
  regs : int array;
  rmeta : meta option array;
  mutable block : int;
  mutable blk : Loader.pmeta Pr.block;   (* cache of fr_pf.blocks.(block) *)
  mutable ip : int;
  base_r : int;
  base_s : int;
  ret_dst : int option;        (* caller register receiving the result *)
  pushed_ret : int;            (* legitimate return target *)
  cookie_value : int;
  penalize_stack : bool;       (* hot frame exceeds the cache-friendly size *)
  layout : Loader.frame_layout;
}

type jmp_ctx = {
  jc_tid : int;                (* owning thread: cross-thread longjmp is corruption *)
  jc_depth : int;
  jc_block : int;
  jc_ip : int;                 (* resume point: just after the setjmp *)
  jc_dst : int option;         (* setjmp's destination register *)
  jc_resume_addr : int;        (* code address of the resume point *)
}

type thread_status =
  | Runnable
  | Blocked_join of int        (* waiting for thread [tid] to finish *)
  | Blocked_mutex of int       (* waiting to acquire the mutex at [addr] *)
  | Finished of int            (* thread function returned this value *)

(* One thread of the machine: its own call stack (frames) over its own
   regular+safe stack pair (paper §4.2); registers live in the frames.
   Everything else — heap, globals, safe region, safe store — is shared. *)
type thread = {
  t_id : int;
  mutable status : thread_status;
  mutable frames : frame list;
  mutable depth : int;         (* List.length frames, maintained incrementally *)
  mutable cur : frame;         (* cached head of [frames] *)
  mutable sp_r : int;
  mutable sp_s : int;
  stack_floor : int;           (* regular-stack overflow floor (slid) *)
  safe_win_lo : int;           (* own safe-stack window (slid), exclusive lo *)
  safe_win_hi : int;           (* .. inclusive hi *)
  mutable locks : int list;    (* held mutex addresses, for the race detector *)
}

(* A scheduled corruption, injected between two instruction steps. The
   addresses are absolute (post-slide) machine addresses; resolution from
   symbolic sites happens in the attack layer (Faultplan). *)
type fault =
  | Flip_bit of { addr : int; bit : int }
  | Arb_write of { addr : int; value : int }
  | Store_desync of { addr : int; delta : int }
  | Meta_drop of { addr : int }
  | Stall of { cycles : int }
  | Worker_kill of { tid : int }

type t = {
  image : Loader.image;
  cfg : Config.t;
  slide : int;                 (* image slide, cached off the hot path *)
  key : int;                   (* cpi-crypt pointer-cipher key (0 = unused) *)
  mem : Mem.t;
  store : Safestore.t;
  heap : Heap.t;
  cost : Cost.t;
  mutable running : thread;    (* the thread the hot loop is executing *)
  mutable threads : thread array;  (* index = tid; slot 0 = the main thread *)
  mutable nthreads : int;
  (* Deterministic scheduling: [mt] flips on at the first thread_spawn;
     until then the hot loop pays one boolean test per step and the
     machine is observationally identical to the single-threaded one.
     [sched_left] counts instructions down to the next preemption. *)
  sched : Sched.t;
  mutable mt : bool;
  mutable sched_left : int;
  mutable live : int;          (* threads not yet Finished (joined or not) *)
  mutexes : (int, int) Hashtbl.t;  (* mutex address -> owner tid *)
  race : Race.t;
  mutable race_mute : bool;    (* suppress tracking (atomics, fault injection) *)
  fuel0 : int;                 (* initial fuel; instrs executed = fuel0 - fuel *)
  input : int array;
  mutable input_pos : int;
  out : Buffer.t;
  mutable checksum : int;
  mutable fuel : int;
  jmp_ctxs : (int, jmp_ctx) Hashtbl.t;
  mutable next_jmp : int;
  (* Based-on metadata shadow for safe-region addresses: the safe stack is
     isolation-protected, so values stored there keep their metadata the
     way register-resident values do after mem2reg. This is what lets the
     instrumentation passes skip proven-safe local slots, mirroring the
     paper's point that compiler optimizations remove many inserted
     checks (Section 3.2.2). *)
  safe_meta : (int, meta) Hashtbl.t;
  (* Scheduled fault injection: [faults] is sorted by step; the hot loop
     pays one integer compare against [next_fault_fuel] (the fuel value
     at which the next fault fires; min_int = none pending). *)
  faults : (int * fault) array;
  mutable fault_pos : int;
  mutable next_fault_fuel : int;
}

type result = {
  outcome : outcome;
  cycles : int;
  instrs : int;
  mem_ops : int;
  instrumented_mem_ops : int;
  output : string;
  checksum : int;
  mem_footprint : int;         (* words of regular memory touched *)
  store_footprint : int;       (* words used by the safe pointer store *)
  store_accesses : int;        (* safe-store get/set/clear operations *)
  heap_peak : int;
  threads : int;               (* total threads, including main (>= 1) *)
  ctx_switches : int;          (* scheduler context switches *)
  races : int;                 (* data races reported by the lockset detector *)
  race_reports : string list;  (* human-readable race descriptions, in order *)
  race_details : Race.report list;  (* the structured reports, in order *)
}

(* Sentinel "return address" of the outermost frame; returning through it
   exits the program. *)
let exit_sentinel = Layout.code_base - 7

let stop outcome = raise (Machine_stop outcome)

(* Placeholder [cur] before the first frame is pushed; never executed. *)
let dummy_layout : Loader.frame_layout =
  { Loader.fl_slots = Hashtbl.create 1; fl_regular_size = 0; fl_safe_size = 0;
    fl_ret_on_safe = false; fl_ret_offset = 0; fl_cookie_offset = None;
    fl_hot_words = 0; fl_array_words = 0; fl_has_unsafe = false }

let dummy_pf : Loader.pmeta Pr.func =
  { Pr.findex = -1; fname = "<none>"; nregs = 0; nparams = 0; blocks = [||];
    addrs = [||]; entry_addr = 0 }

let dummy_frame () =
  { fr_pf = dummy_pf; regs = [||]; rmeta = [||]; block = 0;
    blk = { Pr.instrs = [||]; term = Pr.Unreachable }; ip = 0;
    base_r = 0; base_s = 0; ret_dst = None; pushed_ret = 0; cookie_value = 0;
    penalize_stack = false; layout = dummy_layout }

(* A fresh thread over its carved stack pair. Thread 0's windows are the
   historical single-thread stacks, so single-threaded runs are unchanged. *)
let fresh_thread ~slide tid =
  { t_id = tid; status = Runnable; frames = []; depth = 0;
    cur = dummy_frame ();
    sp_r = Layout.thread_stack_top tid + slide;
    sp_s = Layout.thread_safe_stack_top tid + slide;
    stack_floor = Layout.thread_stack_floor tid + slide;
    safe_win_lo =
      Layout.thread_safe_stack_top tid - Layout.thread_stack_stride + slide;
    safe_win_hi = Layout.thread_safe_stack_top tid + slide;
    locks = [] }

(* ---------- Memory access with isolation ---------- *)

let charge_sfi st =
  if st.cfg.Config.isolation = Config.Sfi then Cost.add st.cost Cost.sfi_mask

(* A plain access may touch the safe region only with valid in-bounds
   provenance (a proven-safe safe-stack access). Anything else models an
   attacker-influenced access: blocked by segments / guaranteed-miss under
   leak-proof info hiding / masked by SFI — uniformly reported as an
   isolation violation. *)
let check_safe_access addr meta ~size =
  match meta with
  | Some m when m.kind = Safestore.Data && addr >= m.lower && addr + size <= m.upper -> ()
  | _ -> stop (Trapped Isolation_violation)

(* SFI isolation protects the *integrity* of the safe region: only writes
   need masking (reads cannot corrupt, and the safe region's secrecy is the
   info-hiding mechanism's job). Accesses the safe stack analysis proved
   safe live in the safe region and need no mask either — this is how the
   paper keeps the SFI variant under ~5%. *)

(* ---------- Race-detector hooks ---------- *)

(* Shared-memory accesses feed the lockset detector once the machine is
   multithreaded. "Shared" means globals/heap and the safe region outside
   the accessing thread's own safe-stack window: regular-stack accesses
   (the overwhelming majority) skip the detector on two compares, and a
   single-threaded machine pays one boolean test. *)
let[@inline never] race_track st a ~write =
  let u = a - st.slide in
  let kind =
    if u < Layout.stack_limit then
      if u >= Layout.globals_base then Some Race.Shared_data else None
    else if u >= Layout.safe_base && u < Layout.safe_end then begin
      let th = st.running in
      if a <= th.safe_win_hi && a > th.safe_win_lo then None
      else Some Race.Safe_region
    end
    else None
  in
  match kind with
  | Some kind ->
    ignore
      (Race.access st.race ~addr:u ~tid:st.running.t_id ~write
         ~locks:st.running.locks ~kind)
  | None -> ()

(* Track only while more than one unfinished thread exists: thread_join
   is a happens-before edge, so accesses made once every sibling has
   finished (e.g. main reading the result after joining its workers)
   cannot race — pure lockset would misreport them. *)
let[@inline] race_data st a ~write =
  if st.mt && st.live > 1 && not st.race_mute then race_track st a ~write

(* Safe-store (metadata) accesses are tracked under their own key space:
   a racy metadata update is a runtime-support bug even when the value
   accesses themselves are ordered. *)
let[@inline] race_meta st a ~write =
  if st.mt && st.live > 1 && not st.race_mute then
    ignore
      (Race.access st.race ~addr:(a - st.slide) ~tid:st.running.t_id ~write
         ~locks:st.running.locks ~kind:Race.Metadata)

(* The region classification is fused into the accessors: the regions are
   disjoint address ranges and only Null, Safe and Code need any action, so
   the overwhelmingly common regular-region access (globals / heap / unsafe
   stack) costs two compares before touching memory. *)
let plain_read st addr meta =
  race_data st addr ~write:false;
  let a = addr - st.slide in
  if a < Layout.safe_base then begin
    if a < Layout.null_guard then stop (Crash "null-page access");
    Mem.read st.mem addr
  end
  else if a < Layout.safe_end then begin
    check_safe_access addr meta ~size:1;
    Mem.read st.mem addr
  end
  else if a >= Layout.code_base && a < Layout.code_end then 0xC0DE
  else Mem.read st.mem addr

let plain_write st addr meta v =
  race_data st addr ~write:true;
  let a = addr - st.slide in
  if a < Layout.safe_base then begin
    if a < Layout.null_guard then stop (Crash "null-page access");
    charge_sfi st;
    Mem.write st.mem addr v
  end
  else if a < Layout.safe_end then begin
    check_safe_access addr meta ~size:1;
    Mem.write st.mem addr v
  end
  else begin
    if a >= Layout.code_base && a < Layout.code_end then
      stop (Crash "write to code segment");
    charge_sfi st;
    Mem.write st.mem addr v
  end

(* Writes that may hit the safe stack carry metadata through the shadow
   (see [safe_meta] above); the matching read path is inlined in
   [do_load]'s [Regular] arm to keep it allocation-free. *)
let write_with_shadow st addr meta v vmeta =
  plain_write st addr meta v;
  if Layout.in_safe_region_s st.slide addr then begin
    match vmeta with
    | Some m -> Hashtbl.replace st.safe_meta addr m
    | None -> Hashtbl.remove st.safe_meta addr
  end

(* ---------- Metadata checks (the CPI runtime checks) ---------- *)

let check_deref st addr meta ~size ~what =
  Cost.charge_check st.cost;
  match meta with
  | None -> stop (Trapped (Missing_metadata what))
  | Some m ->
    (match m.kind with
     | Safestore.Invalid -> stop (Trapped (Bounds_violation "invalid metadata"))
     | Safestore.Code ->
       (* Dereferencing a code pointer as data is never safe. *)
       stop (Trapped (Bounds_violation "code pointer used as data"))
     | Safestore.Data ->
       if Heap.tid_dead st.heap m.tid then stop (Trapped Temporal_violation);
       if addr < m.lower || addr + size > m.upper then
         stop (Trapped (Bounds_violation what)))

(* ---------- Operand evaluation ---------- *)

(* Operands are pre-resolved: a register read or a constant, no lookups.
   The value and metadata projections are split so the hot loop never
   allocates a pair per operand (no flambda to elide it). *)
let eval fr (o : Loader.pmeta Pr.operand) : int * meta option =
  match o with
  | Pr.Reg r -> (fr.regs.(r), fr.rmeta.(r))
  | Pr.Const (v, m) -> (v, m)

(* Register indices are validated against [nregs] when the function is
   prepared, so the register files are accessed unchecked. *)
let[@inline] eval_v fr (o : Loader.pmeta Pr.operand) =
  match o with
  | Pr.Reg r -> Array.unsafe_get fr.regs r
  | Pr.Const (v, _) -> v

let[@inline] eval_m fr (o : Loader.pmeta Pr.operand) =
  match o with
  | Pr.Reg r -> Array.unsafe_get fr.rmeta r
  | Pr.Const (_, m) -> m

let[@inline] set_reg fr dst v m =
  Array.unsafe_set fr.regs dst v;
  Array.unsafe_set fr.rmeta dst m

(* ---------- Frame management ---------- *)

let cookie_secret base = 0x600DC00C lxor (base * 31)

(* Push a frame with zeroed registers onto thread [th]; the caller fills
   the argument registers afterwards (before any callee instruction runs).
   [th] is the running thread everywhere except thread_spawn, which pushes
   the outermost frame of the thread it creates. *)
let push_frame_empty st th (pf : Loader.pmeta Pr.func) ~ret_dst ~pushed_ret
    ~entry =
  let layout = st.image.Loader.p_layouts.(pf.Pr.findex) in
  let base_r = th.sp_r in
  let base_s = th.sp_s in
  th.sp_r <- th.sp_r - layout.Loader.fl_regular_size;
  th.sp_s <- th.sp_s - layout.Loader.fl_safe_size;
  if th.sp_r < th.stack_floor then
    stop (Crash "regular stack overflow");
  let regs = Array.make (max pf.Pr.nregs 1) 0 in
  let rmeta = Array.make (max pf.Pr.nregs 1) None in
  let cookie_value = cookie_secret base_r in
  (match layout.Loader.fl_cookie_offset with
   | Some off ->
     Mem.write st.mem (base_r - off) cookie_value;
     Cost.add st.cost Cost.cookie_cost
   | None -> ());
  (* Write the return address into its slot (regular or safe stack).
     cpi-crypt has no safe stack: the slot stays in the regular region but
     holds ciphertext, so an overwrite garbles rather than redirects. *)
  let ret_slot_base = if layout.Loader.fl_ret_on_safe then base_s else base_r in
  let slot_ret =
    if st.cfg.Config.crypt_ptrs then begin
      Cost.add st.cost Cost.crypt_cost;
      Ptrcipher.encrypt st.key pushed_ret
    end
    else pushed_ret
  in
  Mem.write st.mem (ret_slot_base - layout.Loader.fl_ret_offset) slot_ret;
  (* Instrumentation costs of the call itself. *)
  st.cost.Cost.calls <- st.cost.Cost.calls + 1;
  Cost.add st.cost Cost.call_base;
  if st.cfg.Config.safe_stack && layout.Loader.fl_has_unsafe then begin
    st.cost.Cost.unsafe_frames <- st.cost.Cost.unsafe_frames + 1;
    Cost.add st.cost Cost.unsafe_frame_cost
  end;
  (* Locality model: a large hot frame area costs extra per call; the safe
     stack keeps the hot area small by moving buffers away. *)
  let hot_resident =
    if st.cfg.Config.safe_stack then layout.Loader.fl_safe_size
    else layout.Loader.fl_regular_size
  in
  let penalize_stack = hot_resident > Cost.hot_frame_threshold in
  let block, ip = entry in
  let fr =
    { fr_pf = pf; regs; rmeta; block; blk = pf.Pr.blocks.(block); ip;
      base_r; base_s; ret_dst; pushed_ret; cookie_value; penalize_stack;
      layout }
  in
  th.frames <- fr :: th.frames;
  th.depth <- th.depth + 1;
  th.cur <- fr;
  fr

let push_frame st th pf ~args ~ret_dst ~pushed_ret ~entry =
  let fr = push_frame_empty st th pf ~ret_dst ~pushed_ret ~entry in
  Array.iteri
    (fun i (v, m) ->
      if i < Array.length fr.regs then begin
        fr.regs.(i) <- v;
        fr.rmeta.(i) <- m
      end)
    args

let pop_frame th =
  match th.frames with
  | f :: rest ->
    th.frames <- rest;
    th.depth <- th.depth - 1;
    (match rest with g :: _ -> th.cur <- g | [] -> ());
    th.sp_r <- f.base_r;
    th.sp_s <- f.base_s;
    f
  | [] -> assert false

(* ---------- Scheduling ---------- *)

(* Move to the next runnable thread (or stay). Called on quantum expiry
   and whenever the running thread blocks or finishes; only ever invoked
   once the machine is multithreaded, so single-threaded runs draw nothing
   from the scheduler streams. *)
let reschedule st =
  let cur_id = st.running.t_id in
  let runnable i =
    match st.threads.(i).status with Runnable -> true | _ -> false
  in
  match Sched.pick st.sched ~current:cur_id ~runnable ~n:st.nthreads with
  | None -> stop (Crash "deadlock: no runnable thread")
  | Some tid ->
    st.sched_left <- Sched.quantum st.sched;
    if tid <> cur_id then begin
      st.cost.Cost.ctx_switches <- st.cost.Cost.ctx_switches + 1;
      Cost.add st.cost Cost.ctx_switch;
      st.running <- st.threads.(tid)
    end

(* Thread termination: record the value, wake joiners, schedule away.
   (Thread 0 never comes here — its exit ends the program.) *)
let finish_thread st th rv =
  th.status <- Finished rv;
  st.live <- st.live - 1;
  for i = 0 to st.nthreads - 1 do
    let o = st.threads.(i) in
    match o.status with
    | Blocked_join j when j = th.t_id -> o.status <- Runnable
    | _ -> ()
  done;
  reschedule st

(* ---------- Control-flow diversion ---------- *)

let pf_of_index st idx = st.image.Loader.p_funcs.(idx)

(* [divert st target ~via] models the machine transferring control to an
   arbitrary address: the core of every hijack attempt. *)
let divert st target ~via =
  (match via, st.cfg.Config.cfi_returns with
   | `Ret, true ->
     if not (Hashtbl.mem st.image.Loader.return_sites target) then
       stop (Trapped (Cfi_violation "return target is not a call site"))
   | (`Ret | `Call | `Longjmp), _ -> ());
  match Loader.decode st.image target with
  | Some cp ->
    let pf =
      pf_of_index st (Hashtbl.find st.image.Loader.p_findex cp.Loader.cp_fn)
    in
    if Loader.is_function_entry st.image target then
      (* Jump to a function entry: executes it with garbage arguments. *)
      push_frame st st.running pf ~args:[||] ~ret_dst:None
        ~pushed_ret:exit_sentinel ~entry:(0, 0)
    else
      (* Jump into the middle of a function: a gadget; registers hold
         garbage (zeroes). *)
      push_frame st st.running pf ~args:[||] ~ret_dst:None
        ~pushed_ret:exit_sentinel
        ~entry:(cp.Loader.cp_block, cp.Loader.cp_ip)
  | None ->
    if Layout.in_code_s st.slide target then
      stop (Crash "jump into code padding")
    else if st.cfg.Config.dep then stop (Trapped Exec_violation)
    else if Mem.read st.mem target = Layout.shellcode_magic then
      stop (Hijacked "shellcode executed")
    else stop (Crash "jump to non-code address")

(* ---------- Calls and returns ---------- *)

(* [ret_addr] was resolved at load time: the code address of the
   instruction after the call site. *)
(* Membership probe for the cfi-type per-site target set (sorted entry
   addresses, typically tiny). *)
let in_cfi_set (set : int array) v =
  let n = Array.length set in
  let rec go i = i < n && (set.(i) = v || (set.(i) < v && go (i + 1))) in
  go 0

let do_call st fr dst callee args cfi_checked cfi_set ret_addr =
  Cost.add st.cost (Array.length args);
  (* Advance the caller past the call before pushing the callee, so the
     frame resumes at the next instruction on return. *)
  fr.ip <- fr.ip + 1;
  let invoke pf =
    (* Operand evaluation is pure, so the arguments can be read out of the
       caller's (still live) registers directly into the callee's. *)
    let nf = push_frame_empty st st.running pf ~ret_dst:dst
        ~pushed_ret:ret_addr ~entry:(0, 0) in
    let nregs = Array.length nf.regs in
    for i = 0 to Array.length args - 1 do
      if i < nregs then begin
        let o = Array.unsafe_get args i in
        Array.unsafe_set nf.regs i (eval_v fr o);
        Array.unsafe_set nf.rmeta i (eval_m fr o)
      end
    done
  in
  match callee with
  | Pr.Direct idx -> invoke (pf_of_index st idx)
  | Pr.Indirect o ->
    let v, m = eval fr o in
    if st.cfg.Config.enforce_code_meta then begin
      (* CPI/CPS: only values with genuine code-pointer provenance may be
         indirect-call targets. *)
      match m with
      | Some { kind = Safestore.Code; _ } ->
        (match Hashtbl.find_opt st.image.Loader.entry_findex v with
         | Some idx -> invoke (pf_of_index st idx)
         | None -> stop (Crash "code pointer does not decode"))
      | Some _ | None -> stop (Trapped Invalid_code_pointer)
    end
    else begin
      if st.cfg.Config.cfi_calls && cfi_checked then begin
        Cost.add st.cost Cost.cfi_cost;
        if not (Loader.is_function_entry st.image v) then
          stop (Trapped (Cfi_violation "indirect call target not a function"));
        (* cfi-type: the target must also lie in this call site's
           per-signature set, not just be some function entry. *)
        (match cfi_set with
         | Some set ->
           Cost.add st.cost Cost.cfi_set_cost;
           if not (in_cfi_set set v) then
             stop
               (Trapped (Cfi_violation "indirect call target outside type set"))
         | None -> ())
      end;
      match Hashtbl.find_opt st.image.Loader.entry_findex v with
      | Some idx -> invoke (pf_of_index st idx)
      | None -> divert st v ~via:`Call
    end

let do_ret st rv rm =
  Cost.add st.cost Cost.ret_base;
  let th = st.running in
  let fr = th.cur in
  (* Cookie check (epilogue). *)
  (match fr.layout.Loader.fl_cookie_offset with
   | Some off when st.cfg.Config.check_cookies ->
     if Mem.read st.mem (fr.base_r - off) <> fr.cookie_value then
       stop (Trapped Cookie_smashed)
   | Some _ | None -> ());
  let ret_slot_base =
    if fr.layout.Loader.fl_ret_on_safe then fr.base_s else fr.base_r
  in
  let stored = Mem.read st.mem (ret_slot_base - fr.layout.Loader.fl_ret_offset) in
  (* cpi-crypt: the slot holds ciphertext; a tampered slot decrypts to a
     garbled address and the divert below traps under DEP. *)
  let stored =
    if st.cfg.Config.crypt_ptrs then begin
      Cost.add st.cost Cost.crypt_cost;
      Ptrcipher.decrypt st.key stored
    end
    else stored
  in
  let popped = pop_frame th in
  if stored = popped.pushed_ret then begin
    if stored = exit_sentinel || th.frames = [] then begin
      (* Outermost return: program exit on the main thread, thread
         termination on a spawned one. *)
      if th.t_id = 0 then stop (Exit rv) else finish_thread st th rv
    end
    else begin
      (match popped.ret_dst with
       | Some dst -> set_reg th.cur dst rv rm
       | None -> ())
    end
  end
  else
    (* The stored return address differs from the one the call pushed:
       memory corruption. Control goes wherever it points. *)
    divert st stored ~via:`Ret

(* ---------- Intrinsics (the runtime support library + modelled libc) ---------- *)

let input_next st =
  if st.input_pos < Array.length st.input then begin
    let v = st.input.(st.input_pos) in
    st.input_pos <- st.input_pos + 1;
    Some v
  end
  else None

let read_cstr st addr maxlen =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= maxlen then ()
    else
      let w = Mem.read st.mem (addr + i) in
      if w = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr (((w mod 256) + 256) mod 256));
        go (i + 1)
      end
  in
  go 0;
  Buffer.contents buf

let checksum_mix cs v =
  let rotated = ((cs lsl 7) lor (cs lsr (62 - 7))) land 0x3FFF_FFFF_FFFF_FFFF in
  (rotated lxor v) land 0x3FFF_FFFF_FFFF_FFFF

(* Bounds check for libc memory functions under full memory safety. *)
let libc_check st meta addr n what =
  if st.cfg.Config.check_libc && n > 0 then check_deref st addr meta ~size:n ~what

(* [argv] holds the pre-evaluated arguments: one array-indexing per use
   instead of the old O(args^2) [List.nth] walks. *)
(* Arguments are evaluated on demand out of the caller's registers; every
   arm reads its operands before any frame is pushed or popped, so the
   caller frame is still live at each [v]/[m] use. *)
let do_intrin st fr dst (op : I.intrin) (args : Loader.pmeta Pr.operand array) =
  let v i = eval_v fr args.(i) in
  let m i = eval_m fr args.(i) in
  let ret value meta =
    match dst with Some d -> set_reg st.running.cur d value meta | None -> ()
  in
  Cost.add st.cost Cost.intrin_setup;
  match op with
  | I.I_malloc ->
    let n = v 0 in
    let b = Heap.malloc st.heap n in
    ret b.Heap.addr
      (Some { lower = b.Heap.addr; upper = b.Heap.addr + b.Heap.size;
              tid = b.Heap.tid; kind = Safestore.Data })
  | I.I_free ->
    let p = v 0 in
    if p = 0 then () else Heap.free st.heap p
  | I.I_memcpy | I.I_cpi_memcpy ->
    let d = v 0 and s = v 1 and n = v 2 in
    libc_check st (m 0) d n "memcpy dst";
    libc_check st (m 1) s n "memcpy src";
    Cost.add st.cost (Cost.per_word_libc * max n 0);
    for i = 0 to n - 1 do
      let w = plain_read st (s + i) (m 1) in
      plain_write st (d + i) (m 0) w;
      if op = I.I_cpi_memcpy then begin
        (* Type-unknown copy: move safe-store entries along with the data
           so protected pointers survive the copy (Section 3.2.2). *)
        Cost.add st.cost (Cost.cpi_memop_per_word st.cfg.Config.store_impl);
        match Safestore.get st.store (s + i) with
        | Some e -> Safestore.set st.store (d + i) e
        | None -> Safestore.clear_at st.store (d + i)
      end
    done
  | I.I_memset | I.I_cpi_memset ->
    let d = v 0 and x = v 1 and n = v 2 in
    libc_check st (m 0) d n "memset dst";
    Cost.add st.cost (Cost.per_word_libc * max n 0);
    for i = 0 to n - 1 do
      plain_write st (d + i) (m 0) x;
      if op = I.I_cpi_memset then begin
        Cost.add st.cost (Cost.cpi_memop_per_word st.cfg.Config.store_impl);
        Safestore.clear_at st.store (d + i)
      end
    done
  | I.I_strcpy ->
    let d = v 0 and s = v 1 in
    (* classically unbounded: copies until NUL *)
    let rec go i =
      let w = plain_read st (s + i) (m 1) in
      if st.cfg.Config.check_libc then
        check_deref st (d + i) (m 0) ~size:1 ~what:"strcpy dst";
      plain_write st (d + i) (m 0) w;
      Cost.add st.cost Cost.per_word_libc;
      if w <> 0 then go (i + 1)
    in
    go 0
  | I.I_strlen ->
    let s = v 0 in
    let rec go i = if plain_read st (s + i) (m 0) = 0 then i else go (i + 1) in
    let n = go 0 in
    Cost.add st.cost (Cost.per_word_libc * n);
    ret n None
  | I.I_strcmp ->
    let a = v 0 and b = v 1 in
    let rec go i =
      let x = plain_read st (a + i) (m 0) and y = plain_read st (b + i) (m 1) in
      Cost.add st.cost Cost.per_word_libc;
      if x <> y then compare x y
      else if x = 0 then 0
      else go (i + 1)
    in
    ret (go 0) None
  | I.I_read_input ->
    (* n >= 0: read up to n words. n < 0: gets() semantics — read words
       until end of input or a newline word (10), which is consumed but
       not stored. *)
    let d = v 0 and n = v 1 in
    let limit = if n < 0 then max_int else n in
    let rec go i =
      if i >= limit then i
      else
        match input_next st with
        | None -> i
        | Some 10 when n < 0 -> i
        | Some w ->
          if st.cfg.Config.check_libc then
            check_deref st (d + i) (m 0) ~size:1 ~what:"read_input dst";
          plain_write st (d + i) (m 0) w;
          Cost.add st.cost Cost.per_word_libc;
          go (i + 1)
    in
    ret (go 0) None
  | I.I_read_int ->
    (match input_next st with
     | Some w -> ret w None
     | None -> ret 0 None)
  | I.I_print_int ->
    Buffer.add_string st.out (string_of_int (v 0));
    Buffer.add_char st.out '\n'
  | I.I_print_str ->
    Buffer.add_string st.out (read_cstr st (v 0) 4096);
    Buffer.add_char st.out '\n'
  | I.I_checksum -> st.checksum <- checksum_mix st.checksum (v 0)
  | I.I_setjmp ->
    let buf = v 0 in
    let th = st.running in
    let fr = th.cur in
    (* Resume point: the instruction after this setjmp (ip was already
       advanced by the dispatch loop). *)
    let resume = fr.fr_pf.Pr.addrs.(fr.block).(fr.ip) in
    let id = st.next_jmp in
    st.next_jmp <- id + 1;
    Hashtbl.replace st.jmp_ctxs id
      { jc_tid = th.t_id; jc_depth = th.depth; jc_block = fr.block;
        jc_ip = fr.ip; jc_dst = dst; jc_resume_addr = resume };
    (* jmp_buf layout: [saved PC; context id]. The saved PC is an
       implicitly-created code pointer (Section 3.2.1) — protected via the
       safe store when the configuration says so. *)
    if st.cfg.Config.protect_jmpbuf then begin
      Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
      Safestore.set st.store buf
        { Safestore.value = resume; lower = resume; upper = resume + 1;
          tid = 0; kind = Safestore.Code }
    end;
    (* cpi-crypt: the saved PC is a code pointer in ordinary memory —
       keep it as ciphertext so a jmp_buf smash garbles instead of
       redirecting. The context id is not a pointer and stays plain. *)
    let saved_pc =
      if st.cfg.Config.crypt_ptrs then begin
        Cost.add st.cost Cost.crypt_cost;
        Ptrcipher.encrypt st.key resume
      end
      else resume
    in
    plain_write st buf (m 0) saved_pc;
    plain_write st (buf + 1) (m 0) id;
    ret 0 None
  | I.I_longjmp ->
    let buf = v 0 and x = v 1 in
    let target =
      if st.cfg.Config.protect_jmpbuf then begin
        Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
        match Safestore.get st.store buf with
        | Some { Safestore.kind = Safestore.Code; value; _ } -> value
        | Some _ | None -> stop (Trapped Invalid_code_pointer)
      end
      else if st.cfg.Config.crypt_ptrs then begin
        Cost.add st.cost Cost.crypt_cost;
        Ptrcipher.decrypt st.key (plain_read st buf (m 0))
      end
      else plain_read st buf (m 0)
    in
    let id = plain_read st (buf + 1) (m 0) in
    let th = st.running in
    (match Hashtbl.find_opt st.jmp_ctxs id with
     | Some ctx
       when ctx.jc_resume_addr = target && ctx.jc_tid = th.t_id
            && ctx.jc_depth <= th.depth ->
       (* Legitimate unwind: pop down to the recorded depth. The depth is
          tracked incrementally, so the unwind is O(frames popped). A
          context saved by another thread never matches: longjmp across
          threads is treated as the corruption it is. *)
       while th.depth > ctx.jc_depth do
         ignore (pop_frame th)
       done;
       let fr = th.cur in
       fr.block <- ctx.jc_block;
       fr.blk <- fr.fr_pf.Pr.blocks.(ctx.jc_block);
       fr.ip <- ctx.jc_ip;
       (match ctx.jc_dst with
        | Some d -> set_reg fr d (if x = 0 then 1 else x) None
        | None -> ())
     | Some _ | None ->
       (* Corrupted jmp_buf: control flows to the stored "PC". *)
       divert st target ~via:`Longjmp)
  | I.I_system -> stop (Hijacked "system() reached")
  | I.I_exit -> stop (Exit (v 0))
  | I.I_abort -> stop (Crash "abort() called")
  | I.I_thread_spawn ->
    (* Create a thread running [fn(arg)] over a freshly carved stack pair;
       returns the thread id. The target must be genuine code: under
       CPI/CPS it needs code-pointer provenance like any indirect call. *)
    let fv = v 0 and fm = m 0 and argv = v 1 and argm = m 1 in
    Cost.add st.cost Cost.spawn_cost;
    if st.cfg.Config.enforce_code_meta then begin
      match fm with
      | Some { kind = Safestore.Code; _ } -> ()
      | Some _ | None -> stop (Trapped Invalid_code_pointer)
    end;
    (match Hashtbl.find_opt st.image.Loader.entry_findex fv with
     | None -> stop (Crash "thread_spawn: target is not a function entry")
     | Some idx ->
       if st.nthreads >= Layout.max_threads then
         stop (Crash "thread_spawn: thread limit exceeded");
       let tid = st.nthreads in
       let th = fresh_thread ~slide:st.slide tid in
       st.threads <- Array.append st.threads [| th |];
       st.nthreads <- tid + 1;
       st.live <- st.live + 1;
       push_frame st th (pf_of_index st idx)
         ~args:[| (argv, argm) |]
         ~ret_dst:None ~pushed_ret:exit_sentinel ~entry:(0, 0);
       if not st.mt then begin
         st.mt <- true;
         st.sched_left <- Sched.quantum st.sched
       end;
       ret tid None)
  | I.I_thread_join ->
    (* Reap a finished thread's return value, or block until it finishes.
       Blocking rewinds ip so the join re-executes after wake-up. *)
    Cost.add st.cost Cost.join_cost;
    let tid = v 0 in
    if tid <= 0 || tid >= st.nthreads then
      stop (Crash "thread_join: invalid thread id");
    (match st.threads.(tid).status with
     | Finished rv -> ret rv None
     | Runnable | Blocked_join _ | Blocked_mutex _ ->
       let th = st.running in
       fr.ip <- fr.ip - 1;
       th.status <- Blocked_join tid;
       reschedule st)
  | I.I_mutex_lock ->
    (* Non-recursive mutex keyed by its address; contention blocks and
       retries after the owner unlocks. *)
    Cost.add st.cost Cost.mutex_cost;
    let a = v 0 in
    let th = st.running in
    (match Hashtbl.find_opt st.mutexes a with
     | None ->
       Hashtbl.replace st.mutexes a th.t_id;
       th.locks <- a :: th.locks
     | Some owner when owner = th.t_id -> stop (Crash "recursive mutex_lock")
     | Some _ ->
       fr.ip <- fr.ip - 1;
       th.status <- Blocked_mutex a;
       reschedule st)
  | I.I_mutex_unlock ->
    Cost.add st.cost Cost.mutex_cost;
    let a = v 0 in
    let th = st.running in
    (match Hashtbl.find_opt st.mutexes a with
     | Some owner when owner = th.t_id ->
       Hashtbl.remove st.mutexes a;
       th.locks <- List.filter (fun x -> x <> a) th.locks;
       (* Wake every waiter; the scheduler decides who retries first. *)
       for i = 0 to st.nthreads - 1 do
         let o = st.threads.(i) in
         match o.status with
         | Blocked_mutex b when b = a -> o.status <- Runnable
         | _ -> ()
       done
     | Some _ | None -> stop (Crash "mutex_unlock: not the owner"))
  | I.I_atomic_add ->
    (* Atomic fetch-and-add on shared memory: one synchronised RMW, so the
       race detector is muted for its two accesses. *)
    Cost.add st.cost Cost.atomic_cost;
    Cost.charge_mem st.cost ~instrumented:false (Cost.load_base + Cost.store_base);
    let a = v 0 and d = v 1 in
    st.race_mute <- true;
    let old = plain_read st a (m 0) in
    plain_write st a (m 0) (old + d);
    st.race_mute <- false;
    ret old None

(* ---------- Loads and stores ---------- *)

(* Each arm writes the destination register directly instead of returning a
   [(value, meta)] pair: the regular-load path must stay allocation-free. *)
let do_load st fr dst ~what ~universal addr_op where checked =
  let a = eval_v fr addr_op in
  let ma = eval_m fr addr_op in
  let size = 1 in
  if checked then
    check_deref st a ma ~size ~what;
  match where with
  | I.Regular ->
    Cost.charge_mem st.cost ~instrumented:false Cost.load_base;
    if fr.penalize_stack
       && a land 7 = 0
       && a <= Layout.stack_top + st.slide
       && a > Layout.stack_limit + st.slide
    then Cost.add st.cost Cost.locality_penalty;
    race_data st a ~write:false;
    (* plain_read with the safe-region shadow lookup fused in, so the
       address is classified once. *)
    let a' = a - st.slide in
    if a' < Layout.safe_base then begin
      if a' < Layout.null_guard then stop (Crash "null-page access");
      set_reg fr dst (Mem.read st.mem a) None
    end
    else if a' < Layout.safe_end then begin
      check_safe_access a ma ~size:1;
      set_reg fr dst (Mem.read st.mem a) (Hashtbl.find_opt st.safe_meta a)
    end
    else if a' >= Layout.code_base && a' < Layout.code_end then
      set_reg fr dst 0xC0DE None
    else set_reg fr dst (Mem.read st.mem a) None
  | I.SafeFull | I.SafeDebug ->
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    Cost.charge_mem st.cost ~instrumented:true 0;
    race_meta st a ~write:false;
    (match Safestore.get st.store a with
     | Some e ->
       if where = I.SafeDebug then begin
         (* debug mode: regular mirror must match *)
         let mirror = Mem.read st.mem a in
         if mirror <> e.Safestore.value then stop (Trapped Debug_mismatch)
       end;
       set_reg fr dst e.Safestore.value (meta_of_entry e)
     | None ->
       (* No protected value here: universal pointer currently holding a
          regular value; fall back to the regular region. *)
       Cost.add st.cost Cost.load_base;
       set_reg fr dst (plain_read st a ma) None)
  | I.SafeValue ->
    st.cost.Cost.safe_store_ops <- st.cost.Cost.safe_store_ops + 1;
    Cost.charge_mem st.cost ~instrumented:true
      (Safestore.lookup_cost st.cfg.Config.store_impl + 2
       + (if universal then 1 else 0));
    race_meta st a ~write:false;
    (match Safestore.get st.store a with
     | Some e ->
       set_reg fr dst e.Safestore.value
         (Some { lower = e.Safestore.value; upper = e.Safestore.value + 1;
                 tid = 0; kind = Safestore.Code })
     | None -> set_reg fr dst (plain_read st a ma) None)
  | I.SafeData ->
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    Cost.charge_mem st.cost ~instrumented:true 0;
    race_meta st a ~write:false;
    (match Safestore.get st.store a with
     | Some e -> set_reg fr dst e.Safestore.value (meta_of_entry e)
     | None ->
       Cost.add st.cost Cost.load_base;
       set_reg fr dst (plain_read st a ma) None)
  | I.RegularMeta ->
    Cost.charge_mem st.cost ~instrumented:true Cost.load_base;
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    race_meta st a ~write:false;
    let v = plain_read st a ma in
    let m =
      match Safestore.get st.store a with
      | Some e when e.Safestore.value = v -> meta_of_entry e
      | Some _ | None -> None
    in
    set_reg fr dst v m
  | I.Crypt ->
    (* cpi-crypt: the cell holds ciphertext in the regular region; decrypt
       with the per-run key on the way into the register. A tampered cell
       decrypts to a garbled value with no metadata — using it as a call
       or jump target traps under DEP instead of hijacking. *)
    Cost.charge_mem st.cost ~instrumented:true
      (Cost.load_base + Cost.crypt_cost);
    set_reg fr dst (Ptrcipher.decrypt st.key (plain_read st a ma)) None

let do_store st fr ~what ~universal v_op addr_op where checked =
  let vv = eval_v fr v_op in
  let vm = eval_m fr v_op in
  let a = eval_v fr addr_op in
  let ma = eval_m fr addr_op in
  if checked then check_deref st a ma ~size:1 ~what;
  match where with
  | I.Regular ->
    Cost.charge_mem st.cost ~instrumented:false Cost.store_base;
    if fr.penalize_stack
       && a land 7 = 0
       && a <= Layout.stack_top + st.slide
       && a > Layout.stack_limit + st.slide
    then Cost.add st.cost Cost.locality_penalty;
    write_with_shadow st a ma vv vm
  | I.SafeFull | I.SafeDebug ->
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    Cost.charge_mem st.cost ~instrumented:true 0;
    race_meta st a ~write:true;
    (match vm with
     | Some m ->
       Safestore.set st.store a (entry_of_meta vv (Some m));
       if where = I.SafeDebug then begin
         Cost.add st.cost Cost.store_base;
         Mem.write st.mem a vv   (* mirror copy for non-instrumented readers *)
       end
     | None ->
       (* Value without valid metadata (e.g. cast from a plain integer):
          store in the regular region with an invalidated safe entry. *)
       Safestore.clear_at st.store a;
       Cost.add st.cost Cost.store_base;
       plain_write st a ma vv)
  | I.SafeValue ->
    st.cost.Cost.safe_store_ops <- st.cost.Cost.safe_store_ops + 1;
    Cost.charge_mem st.cost ~instrumented:true
      (Safestore.lookup_cost st.cfg.Config.store_impl + 2
       + (if universal then 1 else 0));
    race_meta st a ~write:true;
    (match vm with
     | Some { kind = Safestore.Code; _ } ->
       Safestore.set st.store a
         { Safestore.value = vv; lower = vv; upper = vv + 1; tid = 0;
           kind = Safestore.Code }
     | Some _ | None ->
       Safestore.clear_at st.store a;
       Cost.add st.cost Cost.store_base;
       plain_write st a ma vv)
  | I.SafeData ->
    (* annotated sensitive data: the value always lives in the safe store,
       with metadata when the value has any and degenerate bounds when it
       is plain data *)
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    Cost.charge_mem st.cost ~instrumented:true 0;
    race_meta st a ~write:true;
    (match vm with
     | Some m -> Safestore.set st.store a (entry_of_meta vv (Some m))
     | None ->
       Safestore.set st.store a
         { Safestore.value = vv; lower = 0; upper = 0; tid = 0;
           kind = Safestore.Data })
  | I.RegularMeta ->
    Cost.charge_mem st.cost ~instrumented:true Cost.store_base;
    Cost.charge_safe_store st.cost st.cfg.Config.store_impl;
    race_meta st a ~write:true;
    plain_write st a ma vv;
    Safestore.set st.store a (entry_of_meta vv vm)
  | I.Crypt ->
    (* cpi-crypt: encrypt the value in place; no metadata survives the
       cipher (bounds/provenance are deliberately not modelled — the
       scheme trades them for the no-safe-region layout). *)
    Cost.charge_mem st.cost ~instrumented:true
      (Cost.store_base + Cost.crypt_cost);
    plain_write st a ma (Ptrcipher.encrypt st.key vv)

(* ---------- Instruction dispatch ---------- *)

let exec_binop op a b =
  match (op : I.binop) with
  | I.Add -> a + b
  | I.Sub -> a - b
  | I.Mul -> a * b
  | I.Div -> if b = 0 then stop (Trapped Division_by_zero) else a / b
  | I.Rem -> if b = 0 then stop (Trapped Division_by_zero) else a mod b
  | I.And -> a land b
  | I.Or -> a lor b
  | I.Xor -> a lxor b
  | I.Shl -> a lsl (b land 63)
  | I.Shr -> a asr (b land 63)

let exec_cmp op a b =
  let r =
    match (op : I.cmpop) with
    | I.Eq -> a = b
    | I.Ne -> a <> b
    | I.Lt -> a < b
    | I.Le -> a <= b
    | I.Gt -> a > b
    | I.Ge -> a >= b
  in
  if r then 1 else 0

(* Every arm advances [ip] past the instruction itself, except [Call],
   which must push the callee with the caller already advanced. *)
let exec_instr st fr (i : Loader.pmeta Pr.instr) =
  match i with
  | Pr.Alloca { dst; on_safe; offset; size } ->
    fr.ip <- fr.ip + 1;
    Cost.add st.cost Cost.alu;
    let base = if on_safe then fr.base_s else fr.base_r in
    let addr = base - offset in
    set_reg fr dst addr
      (Some { lower = addr; upper = addr + size; tid = 0;
              kind = Safestore.Data })
  | Pr.Bin { dst; op; l; r } ->
    fr.ip <- fr.ip + 1;
    Cost.add st.cost Cost.alu;
    let a = eval_v fr l in
    let b = eval_v fr r in
    let am = eval_m fr l in
    let bm = eval_m fr r in
    let m =
      match op, am, bm with
      | (I.Add | I.Sub), Some m, None -> Some m
      | I.Add, None, Some m -> Some m
      | _, _, _ -> None
    in
    set_reg fr dst (exec_binop op a b) m
  | Pr.Cmp { dst; op; l; r } ->
    fr.ip <- fr.ip + 1;
    Cost.add st.cost Cost.alu;
    let a = eval_v fr l in
    let b = eval_v fr r in
    set_reg fr dst (exec_cmp op a b) None
  | Pr.Load { dst; what; universal; addr; where; checked } ->
    fr.ip <- fr.ip + 1;
    do_load st fr dst ~what ~universal addr where checked
  | Pr.Store { what; universal; v; addr; where; checked } ->
    fr.ip <- fr.ip + 1;
    do_store st fr ~what ~universal v addr where checked
  | Pr.Gep { dst; base; path } ->
    fr.ip <- fr.ip + 1;
    let n = Array.length path in
    let rec go k a m =
      if k = n then set_reg fr dst a m
      else begin
        Cost.add st.cost Cost.alu;
        match path.(k) with
        | Pr.Field (off, fsize) ->
          let a = a + off in
          (* Narrow the based-on bounds to the sub-object (case iii). *)
          let m =
            match m with
            | Some mm when mm.kind = Safestore.Data ->
              Some { mm with lower = a; upper = a + fsize }
            | other -> other
          in
          go (k + 1) a m
        | Pr.Index (elem_size, idx_op) ->
          go (k + 1) (a + (eval_v fr idx_op * elem_size)) m
      end
    in
    go 0 (eval_v fr base) (eval_m fr base)
  | Pr.Cast { dst; v } ->
    fr.ip <- fr.ip + 1;
    Cost.add st.cost Cost.alu;
    set_reg fr dst (eval_v fr v) (eval_m fr v)
  | Pr.Call { dst; callee; args; cfi_checked; cfi_set; ret_addr } ->
    do_call st fr dst callee args cfi_checked cfi_set ret_addr
  | Pr.Intrin { dst; op; args } ->
    fr.ip <- fr.ip + 1;
    do_intrin st fr dst op args

let[@inline] goto fr b =
  fr.block <- b;
  fr.blk <- fr.fr_pf.Pr.blocks.(b);
  fr.ip <- 0

let exec_term st fr (t : Loader.pmeta Pr.term) =
  match t with
  | Pr.Ret None -> do_ret st 0 None
  | Pr.Ret (Some o) -> do_ret st (eval_v fr o) (eval_m fr o)
  | Pr.Br (c, bt, bf) ->
    Cost.add st.cost Cost.branch;
    goto fr (if eval_v fr c <> 0 then bt else bf)
  | Pr.Jmp b ->
    Cost.add st.cost Cost.branch;
    goto fr b
  | Pr.Switch (o, tbl) ->
    Cost.add st.cost (Cost.branch + 1);
    goto fr (Pr.switch_target tbl (eval_v fr o))
  | Pr.Unreachable -> stop (Crash "unreachable executed")

(* ---------- Fault injection ---------- *)

(* Faults go through the same plain access path the attacker-facing
   machine enforces: null page crashes, the safe region demands in-bounds
   provenance (so tampering attempts trap as [Isolation_violation]), the
   code segment is unwritable. [Store_desync]/[Meta_drop] manipulate the
   safe store directly and therefore model an attacker who already
   bypassed isolation — campaign classification treats them separately. *)
let apply_fault st = function
  | Flip_bit { addr; bit } ->
    let v = plain_read st addr None in
    plain_write st addr None (v lxor (1 lsl (bit land 62)))
  | Arb_write { addr; value } -> plain_write st addr None value
  (* Keyed backends (cpi-crypt) have an empty safe store: both metadata
     attacks below hit [None]/no-op — dropping metadata is not the same
     as leaking the key, which is exactly the spectrum invariant the
     fault campaign checks. *)
  | Store_desync { addr; delta } ->
    (match Safestore.get st.store addr with
     | Some e -> Safestore.set st.store addr { e with Safestore.value = e.Safestore.value + delta }
     | None -> ())
  | Meta_drop { addr } -> Safestore.clear_at st.store addr
  | Stall { cycles } ->
    (* An availability fault, not a corruption: the machine loses [cycles]
       simulated cycles to an external stall (I/O hiccup, page fault
       storm). Memory and metadata are untouched. *)
    Cost.add st.cost (max 0 cycles)
  | Worker_kill { tid } ->
    (* Asynchronously kill one spawned thread, as a worker crash would:
       the thread finishes with value -1 (joiners observe it), any mutex
       it holds stays held — precisely the hazard a resilient server must
       survive. Killing the main thread kills the process; a tid that is
       invalid or already finished is a no-op. *)
    if tid = 0 then stop (Crash "worker-kill: main thread killed")
    else if tid > 0 && tid < st.nthreads then begin
      let th = st.threads.(tid) in
      match th.status with
      | Finished _ -> ()
      | Runnable | Blocked_join _ | Blocked_mutex _ ->
        th.status <- Finished (-1);
        st.live <- st.live - 1;
        for i = 0 to st.nthreads - 1 do
          let o = st.threads.(i) in
          match o.status with
          | Blocked_join j when j = tid -> o.status <- Runnable
          | _ -> ()
        done;
        if st.running == th then reschedule st
    end

(* Fire every fault scheduled for the current step, then re-arm the
   sentinel. [apply_fault] may legitimately end the run (Machine_stop). *)
let inject_faults st =
  let n = Array.length st.faults in
  let at_current (s, _) = st.fuel0 - s = st.fuel in
  (* Faults model external corruption, not program accesses: they must
     not feed the race detector. [apply_fault] may end the run, so the
     mute is restored on both paths. *)
  st.race_mute <- true;
  Fun.protect
    ~finally:(fun () -> st.race_mute <- false)
    (fun () ->
      while st.fault_pos < n && at_current st.faults.(st.fault_pos) do
        let (_, f) = st.faults.(st.fault_pos) in
        st.fault_pos <- st.fault_pos + 1;
        apply_fault st f
      done);
  st.next_fault_fuel <-
    if st.fault_pos < n then st.fuel0 - fst st.faults.(st.fault_pos)
    else min_int

let step st =
  if st.fuel <= 0 then stop Fuel_exhausted;
  if st.fuel = st.next_fault_fuel then inject_faults st;
  (* Preemption check: a single decrement-and-test per step while the
     machine is multithreaded, one boolean test before that. *)
  if st.mt then begin
    if st.sched_left <= 0 then reschedule st
    else st.sched_left <- st.sched_left - 1
  end;
  st.fuel <- st.fuel - 1;
  let fr = st.running.cur in
  let blk = fr.blk in
  if fr.ip < Array.length blk.Pr.instrs then
    exec_instr st fr (Array.unsafe_get blk.Pr.instrs fr.ip)
  else exec_term st fr blk.Pr.term

(* ---------- Top level ---------- *)

let create ?(input = [||]) ?(fuel = 60_000_000) ?(faults = [])
    ?(sched_seed = 0) (image : Loader.image) =
  let mem = Mem.create () in
  let store = Safestore.create image.Loader.cfg.Config.store_impl in
  let slide = image.Loader.slide in
  let heap =
    Heap.create mem ~base:(Layout.heap_base + slide) ~limit:(Layout.heap_limit + slide)
  in
  Loader.init_globals image mem store;
  (* cpi-crypt: derive the per-run pointer-cipher key from the scheduler
     seed (part of the run's deterministic identity) and re-encrypt the
     global initializer cells the crypt pass flagged — the loader writes
     plaintext, but crypt-routed loads expect ciphertext. Zero cells are
     fixed points of the cipher, so only flagged words need touching. *)
  let cfg = image.Loader.cfg in
  let key =
    if cfg.Config.crypt_ptrs then Ptrcipher.key_of_seed sched_seed else 0
  in
  if key <> 0 then
    List.iter
      (fun (gname, mask) ->
        match Hashtbl.find_opt image.Loader.global_addr gname with
        | None -> ()
        | Some base ->
          Array.iteri
            (fun i flagged ->
              if flagged then
                Mem.write mem (base + i)
                  (Ptrcipher.encrypt key (Mem.read mem (base + i))))
            mask)
      cfg.Config.crypt_cells;
  let faults =
    (* Steps past the fuel budget can never fire; drop them up front so
       the sentinel arithmetic stays total. Stable sort keeps the plan's
       ordering for same-step faults. *)
    let a =
      Array.of_list (List.filter (fun (s, _) -> s >= 0 && s < fuel) faults)
    in
    Array.stable_sort (fun (s1, _) (s2, _) -> compare s1 s2) a;
    a
  in
  let next_fault_fuel =
    if Array.length faults > 0 then fuel - fst faults.(0) else min_int
  in
  let main_thread = fresh_thread ~slide 0 in
  { image; cfg; slide; key; mem; store; heap; cost = Cost.create ();
    running = main_thread; threads = [| main_thread |]; nthreads = 1;
    sched = Sched.create ~seed:sched_seed; mt = false; sched_left = max_int;
    live = 1;
    mutexes = Hashtbl.create 8; race = Race.create (); race_mute = false;
    fuel0 = fuel; input; input_pos = 0; out = Buffer.create 256; checksum = 0; fuel;
    jmp_ctxs = Hashtbl.create 8; next_jmp = 1; safe_meta = Hashtbl.create 64;
    faults; fault_pos = 0; next_fault_fuel }

let result_of st outcome =
  { outcome;
    cycles = st.cost.Cost.cycles;
    instrs = st.fuel0 - st.fuel;
    mem_ops = st.cost.Cost.mem_ops;
    instrumented_mem_ops = st.cost.Cost.instrumented_mem_ops;
    output = Buffer.contents st.out;
    checksum = st.checksum;
    mem_footprint = Mem.footprint_words st.mem;
    store_footprint =
      Safestore.footprint_words ~entry_words:st.cfg.Config.cps_entry_words st.store;
    store_accesses = Safestore.access_count st.store;
    heap_peak = st.heap.Heap.peak_words;
    threads = st.nthreads;
    ctx_switches = st.cost.Cost.ctx_switches;
    races = Race.count st.race;
    race_reports = List.map Race.describe (Race.reports st.race);
    race_details = Race.reports st.race }

(** Run [main] to completion. *)
let run ?input ?fuel ?faults ?sched_seed (image : Loader.image) : result =
  let st = create ?input ?fuel ?faults ?sched_seed image in
  if not (Prog.has_func st.image.Loader.prog "main") then
    invalid_arg "Interp.run: program has no main";
  let main = Loader.prepared st.image "main" in
  (* A synthetic outermost frame is not needed: push main with the exit
     sentinel as its return address. *)
  (try
     push_frame st st.running main
       ~args:(Array.make main.Pr.nparams (0, None))
       ~ret_dst:None ~pushed_ret:exit_sentinel ~entry:(0, 0);
     let rec loop () =
       step st;
       loop ()
     in
     loop ()
   with Machine_stop outcome -> result_of st outcome)

(** Compile-free convenience used everywhere in tests and benches. *)
let run_program ?input ?fuel ?faults ?sched_seed (prog : Prog.t)
    (cfg : Config.t) : result =
  run ?input ?fuel ?faults ?sched_seed (Loader.load prog cfg)
