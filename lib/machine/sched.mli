(** Deterministic preemptive scheduler policy.

    Seeded round-robin with quantum jitter and occasional out-of-order
    picks; every decision is a pure function of the seed, so one seed
    reproduces one interleaving bit-for-bit while a seed sweep explores
    many. *)

type t

val create : seed:int -> t

(** Instructions the next scheduled thread may run before preemption. *)
val quantum : t -> int

(** Next thread among ids [0..n-1] satisfying [runnable], round-robin
    after [current] with a seeded 1-in-4 chance of a uniform pick.
    [None] when nothing is runnable. *)
val pick : t -> current:int -> runnable:(int -> bool) -> n:int -> int option
