(** Deterministic cycle cost model.

    Wall-clock overheads in the paper come from extra memory accesses and
    checks inserted by the instrumentation; this model charges those costs
    explicitly so that overhead measurements are exact and reproducible.
    Base costs approximate a simple in-order core; instrumentation costs
    follow the structure of Levee's runtime: a safe-store access costs one
    table lookup (organisation-dependent) plus metadata movement, a bounds
    check costs a couple of ALU ops, etc. The absolute numbers are not
    calibrated to a Xeon E5-2697 — the *relative* behaviour (which
    mechanism is cheaper, which workloads are outliers) is what the
    benchmarks compare against the paper. *)

type t = {
  mutable cycles : int;
  mutable instrs : int;
  mutable mem_ops : int;
  mutable instrumented_mem_ops : int;
  mutable checks : int;
  mutable safe_store_ops : int;
  mutable calls : int;
  mutable unsafe_frames : int;    (* calls that set up an unsafe stack frame *)
  mutable ctx_switches : int;     (* scheduler context switches *)
}

let create () =
  { cycles = 0; instrs = 0; mem_ops = 0; instrumented_mem_ops = 0;
    checks = 0; safe_store_ops = 0; calls = 0; unsafe_frames = 0;
    ctx_switches = 0 }

let[@inline] add t n = t.cycles <- t.cycles + n

(* ---- Base instruction costs ---- *)

let alu = 1
let load_base = 2
let store_base = 2
let branch = 1
let call_base = 5
let ret_base = 3
let intrin_setup = 5
let per_word_libc = 1

(* ---- Instrumentation costs ---- *)

(* Bounds-check: two comparisons plus a fused branch. *)
let check_cost = 2

(* Metadata move accompanying a safe-store access (bounds + id). *)
let meta_move = 1

(* Per-call cost of setting up a separate unsafe stack frame. *)
let unsafe_frame_cost = 4

(* Stack cookie write + check per protected call. *)
let cookie_cost = 3

(* CFI set-membership test on an indirect transfer. *)
let cfi_cost = 3

(* Extra cost of the per-signature set check in cfi-type: the target must
   be located in the call site's sorted set, not just the global bitmap. *)
let cfi_set_cost = 1

(* Keyed encrypt/decrypt folded into a sensitive access (cpi-crypt):
   PAC-style pointer authentication adds a few cycles of ALU latency per
   protected load/store, with no extra memory traffic. *)
let crypt_cost = 2

(* SFI isolation: one mask per memory operation. *)
let sfi_mask = 1

(* Locality penalty: a frame whose hot (register-spill) area exceeds this
   many words stops fitting in the first-level stack cache lines; moving
   large buffers to the unsafe stack avoids the penalty — this reproduces
   the paper's observation that the safe stack *speeds up* some programs
   (namd improved by 4.2%). The interpreter charges the penalty on a
   deterministic 1-in-8 sample of stack accesses made from oversized
   frames, approximating a cache-miss rate. *)
let hot_frame_threshold = 24
let locality_penalty = 1

(* ---- Threading costs ---- *)

(* A context switch: save/restore of the register file plus the stack- and
   safe-stack-pointer swap the per-thread stack pairs require. Charged only
   when the scheduler actually moves to a different thread, so
   single-threaded runs never pay it. *)
let ctx_switch = 12

(* thread_spawn: carving the regular+safe stack windows and the first
   frame of the new thread (the frame itself is charged as a call). *)
let spawn_cost = 40

(* thread_join bookkeeping (successful reap or wake-up recheck). *)
let join_cost = 4

(* Uncontended mutex acquire/release: one atomic RMW. *)
let mutex_cost = 4

(* atomic_add: an atomic RMW on shared memory (load+store are charged
   separately as one memory round trip). *)
let atomic_cost = 6

(* Per-word cost of the safe-store-aware memcpy/memset variants: each word
   must probe the safe pointer store in addition to the copy itself. *)
let cpi_memop_per_word store_impl = Safestore.lookup_cost store_impl

let[@inline] charge_mem t ~instrumented n =
  t.mem_ops <- t.mem_ops + 1;
  if instrumented then t.instrumented_mem_ops <- t.instrumented_mem_ops + 1;
  add t n

let[@inline] charge_check t =
  t.checks <- t.checks + 1;
  add t check_cost

let[@inline] charge_safe_store t impl =
  t.safe_store_ops <- t.safe_store_ops + 1;
  add t (Safestore.lookup_cost impl + meta_move)
