(** Address-space layout of the simulated process (paper Fig. 2).

    Addresses are word-granular. A regular region (globals, heap, unsafe
    stacks) that ordinary memory operations may touch, and a safe region
    (safe stacks; conceptually also the safe pointer store) that only CPI
    intrinsics and proven-safe accesses may reach. ASLR is an additive
    slide over every base. *)

val null_guard : int
val globals_base : int
val heap_base : int
val heap_limit : int
val stack_top : int
val stack_limit : int
val safe_base : int
val safe_stack_top : int
val safe_end : int

(** Per-thread stack carving: thread [k] owns regular and safe stack
    windows [k * thread_stack_stride] below the thread-0 tops. Thread 0's
    windows are the historical single-thread stacks. *)
val max_threads : int

val thread_stack_stride : int
val thread_stack_top : int -> int
val thread_safe_stack_top : int -> int

(** Overflow floor for a thread's regular stack; [stack_limit] for
    thread 0. *)
val thread_stack_floor : int -> int
val code_base : int
val code_end : int

(** The magic word an attacker plants to simulate injected shellcode. *)
val shellcode_magic : int

(** Default ASLR slide when ASLR is enabled. *)
val aslr_slide : int

type region = Null | Globals | Heap | Stack | Safe | Code | Other

val region_of : ?slide:int -> int -> region
val in_safe_region : ?slide:int -> int -> bool
val in_code : ?slide:int -> int -> bool

(** Unboxed-slide variants for per-access hot paths (optional arguments
    are boxed at every call site). *)
val region_of_s : int -> int -> region
val in_safe_region_s : int -> int -> bool
val in_code_s : int -> int -> bool
