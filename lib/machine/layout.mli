(** Address-space layout of the simulated process (paper Fig. 2).

    Addresses are word-granular. A regular region (globals, heap, unsafe
    stacks) that ordinary memory operations may touch, and a safe region
    (safe stacks; conceptually also the safe pointer store) that only CPI
    intrinsics and proven-safe accesses may reach. ASLR is an additive
    slide over every base. *)

val null_guard : int
val globals_base : int
val heap_base : int
val heap_limit : int
val stack_top : int
val stack_limit : int
val safe_base : int
val safe_stack_top : int
val safe_end : int
val code_base : int
val code_end : int

(** The magic word an attacker plants to simulate injected shellcode. *)
val shellcode_magic : int

(** Default ASLR slide when ASLR is enabled. *)
val aslr_slide : int

type region = Null | Globals | Heap | Stack | Safe | Code | Other

val region_of : ?slide:int -> int -> region
val in_safe_region : ?slide:int -> int -> bool
val in_code : ?slide:int -> int -> bool

(** Unboxed-slide variants for per-access hot paths (optional arguments
    are boxed at every call site). *)
val region_of_s : int -> int -> region
val in_safe_region_s : int -> int -> bool
val in_code_s : int -> int -> bool
