(** Projection of dynamic race reports back onto program objects.

    The Eraser detector reports unslid machine addresses; cross-validating
    against static verdicts needs the *object* behind the address. The
    image's global bounds name globals exactly; heap and stack addresses
    project to their region (the static side speaks in allocation-site
    keys, which one dynamic address cannot single out). Metadata races
    are keyed by the regular-region address of the shadowed cell, so
    they project like their value cell. *)

type root =
  | Rglobal of string
  | Rheap
  | Rstack
  | Rsafe
  | Runknown

let root_key = function
  | Rglobal g -> "global:" ^ g
  | Rheap -> "heap"
  | Rstack -> "stack"
  | Rsafe -> "safe"
  | Runknown -> "unknown"

(* [u] is an unslid address (reports carry them). Global bounds in the
   image are slid, so compare in slid space. *)
let project_addr (image : Loader.image) (u : int) : root =
  match Layout.region_of u with
  | Layout.Globals ->
    let a = u + image.Loader.slide in
    let hit =
      Hashtbl.fold
        (fun name (lo, hi) acc ->
          if a >= lo && a < hi then
            match acc with
            | Some best when best <= name -> acc
            | _ -> Some name
          else acc)
        image.Loader.global_bounds None
    in
    (match hit with Some name -> Rglobal name | None -> Runknown)
  | Layout.Heap -> Rheap
  | Layout.Stack -> Rstack
  | Layout.Safe -> Rsafe
  | Layout.Null | Layout.Code | Layout.Other ->
    (* Thread stacks above thread 0 are carved below [stack_limit]; the
       coarse region map calls that span [Other]. Anything between the
       heap and the thread-0 floor is stack space. *)
    if u >= Layout.heap_limit && u < Layout.stack_top then Rstack
    else Runknown

let project (image : Loader.image) (r : Race.report) : root =
  project_addr image r.Race.r_addr

(** Sorted, deduplicated object keys of a run's race reports. *)
let keys (image : Loader.image) (reports : Race.report list) : string list =
  List.sort_uniq compare
    (List.map (fun r -> root_key (project image r)) reports)
