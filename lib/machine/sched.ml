(** Deterministic preemptive scheduler policy.

    The machine multiplexes threads over one interpreter loop; this module
    decides *when* to preempt and *which* runnable thread runs next. All
    decisions are drawn from SplitMix64 streams derived from the
    [--sched-seed], so a run is a pure function of (program, input, config,
    seed): the same seed reproduces the same interleaving bit-for-bit on
    any host and at any harness parallelism, while different seeds explore
    different interleavings.

    Policy: round-robin with seeded quantum jitter and occasional seeded
    out-of-order picks. The jitter desynchronises threads from loop
    periods in the workload (a fixed quantum would always preempt at the
    same program points), and the 1-in-4 random pick lets seed sweeps
    reach interleavings plain rotation never produces. *)

module Rng = Levee_support.Rng

type t = {
  rng_quantum : Rng.t;  (* stream for quantum lengths *)
  rng_pick : Rng.t;     (* stream for victim selection *)
}

let quantum_base = 32
let quantum_jitter = 32

let create ~seed =
  let master = Rng.create (0x5EED lxor (seed * 0x9E37)) in
  let rng_quantum = Rng.split master in
  let rng_pick = Rng.split master in
  { rng_quantum; rng_pick }

(** Number of instructions the next scheduled thread may run before the
    machine considers preemption again. *)
let quantum t = quantum_base + Rng.int t.rng_quantum quantum_jitter

(** [pick t ~current ~runnable ~n] chooses the next thread among the ids
    [0..n-1] for which [runnable] holds. Default is the first runnable
    thread strictly after [current] in cyclic order (round-robin); with
    probability 1/4 a uniformly random runnable thread is chosen instead.
    Returns [None] when no thread is runnable (deadlock); the currently
    running thread counts as runnable only if [runnable current]. *)
let pick t ~current ~runnable ~n =
  let count = ref 0 in
  for i = 0 to n - 1 do
    if runnable i then incr count
  done;
  if !count = 0 then None
  else if !count > 1 && Rng.int t.rng_pick 4 = 0 then begin
    let k = ref (Rng.int t.rng_pick !count) in
    let chosen = ref None in
    for i = 0 to n - 1 do
      if runnable i then begin
        if !k = 0 && !chosen = None then chosen := Some i;
        decr k
      end
    done;
    !chosen
  end
  else begin
    let chosen = ref None in
    for off = 1 to n do
      let i = (current + off) mod n in
      if !chosen = None && runnable i then chosen := Some i
    done;
    !chosen
  end
