(** Bump-with-free-list heap allocator for the regular region.

    Each allocation carries a header word (its size) at [addr - 1] and a
    fresh temporal id, which CPI's metadata uses to detect use-after-free
    of sensitive pointers. Freed blocks of equal size are reused, which is
    exactly what makes use-after-free exploitable in the unprotected
    configurations. *)

type block = { addr : int; size : int; mutable tid : int; mutable live : bool }

type t = {
  mem : Mem.t;
  base : int;
  limit : int;
  mutable brk : int;
  mutable next_tid : int;
  blocks : (int, block) Hashtbl.t;        (* addr -> block *)
  free_lists : (int, int list ref) Hashtbl.t;  (* size -> addresses *)
  mutable live_words : int;
  mutable peak_words : int;
  dead_tids : (int, unit) Hashtbl.t;
}

let create mem ~base ~limit =
  { mem; base; limit; brk = base; next_tid = 1; blocks = Hashtbl.create 64;
    free_lists = Hashtbl.create 16; live_words = 0; peak_words = 0;
    dead_tids = Hashtbl.create 64 }

let fresh_tid t =
  let id = t.next_tid in
  t.next_tid <- id + 1;
  id

(** [malloc t n] allocates [n] words; returns the block. Raises
    [Trap.Machine_stop] on exhaustion. *)
let malloc t n =
  let n = max n 1 in
  let reuse =
    match Hashtbl.find_opt t.free_lists n with
    | Some ({ contents = addr :: rest } as l) ->
      l := rest;
      Some addr
    | Some { contents = [] } | None -> None
  in
  let addr =
    match reuse with
    | Some addr -> addr
    | None ->
      let addr = t.brk + 1 in                   (* +1 for the header word *)
      t.brk <- addr + n;
      if t.brk >= t.limit then raise (Trap.Machine_stop (Trap.Trapped Trap.Out_of_memory));
      addr
  in
  let tid = fresh_tid t in
  let b = { addr; size = n; tid; live = true } in
  Hashtbl.replace t.blocks addr b;
  Mem.write t.mem (addr - 1) n;
  (* Zero the block: freshly mapped pages are zero, but reused ones are
     not — deliberately NOT zeroing reused blocks would model heap data
     leaks; we zero for determinism of benign workloads. *)
  for i = addr to addr + n - 1 do
    Mem.write t.mem i 0
  done;
  t.live_words <- t.live_words + n;
  if t.live_words > t.peak_words then t.peak_words <- t.live_words;
  b

let free t addr =
  match Hashtbl.find_opt t.blocks addr with
  | None -> raise (Trap.Machine_stop (Trap.Trapped Trap.Invalid_free))
  | Some b ->
    if not b.live then raise (Trap.Machine_stop (Trap.Trapped Trap.Double_free));
    b.live <- false;
    Hashtbl.replace t.dead_tids b.tid ();
    t.live_words <- t.live_words - b.size;
    let l =
      match Hashtbl.find_opt t.free_lists b.size with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.free_lists b.size l;
        l
    in
    l := addr :: !l

(** Is the temporal id [tid] dead (its object freed)? *)
let tid_dead t tid = tid <> 0 && Hashtbl.mem t.dead_tids tid

let block_at t addr = Hashtbl.find_opt t.blocks addr
