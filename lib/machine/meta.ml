(** Based-on metadata attached to register values and resolved operands.

    Lives in its own module (rather than inside the interpreter) so the
    loader can pre-build metadata for resolved [Glob]/[Fun] operands when
    it prepares a program. *)

type t = { lower : int; upper : int; tid : int; kind : Safestore.kind }

let of_entry (e : Safestore.entry) =
  match e.Safestore.kind with
  | Safestore.Invalid -> None
  | k ->
    Some { lower = e.Safestore.lower; upper = e.Safestore.upper;
           tid = e.Safestore.tid; kind = k }

let to_entry value = function
  | Some m ->
    { Safestore.value; lower = m.lower; upper = m.upper; tid = m.tid;
      kind = m.kind }
  | None -> Safestore.invalid_entry value
