(** MiniC abstract syntax.

    MiniC is the C-like source language of the reproduction: structs,
    pointers, fixed-size arrays, function pointers, void/char universal
    pointers, explicit casts, malloc/free and the classic libc string
    functions. It deliberately covers exactly the fragment the paper's
    type-based analysis distinguishes (Fig. 1 and Section 3.2.1), plus a
    [sensitive] struct annotation mirroring the paper's struct-ucred
    example. Types are shared with the IR ([Levee_ir.Ty]). *)

module Ty = Levee_ir.Ty

type binop =
  | Add | Sub | Mul | Div | Rem
  | BAnd | BOr | BXor | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr                      (* short-circuit *)

type unop = Neg | Not | BNot

(* Position = line number, for error messages. *)
type pos = int

type expr = { desc : desc; mutable ety : Ty.t; pos : pos }

and desc =
  | EInt of int
  | EChar of char
  | EStr of string                  (* string literal -> global char array *)
  | EId of string
  | EBin of binop * expr * expr
  | EUn of unop * expr
  | EAssign of expr * expr          (* lvalue = rvalue *)
  | ECond of expr * expr * expr     (* c ? a : b *)
  | ECall of expr * expr list       (* callee may be a name or an fp expr *)
  | EIndex of expr * expr           (* e[i] *)
  | EField of expr * string         (* e.f *)
  | EArrow of expr * string         (* e->f *)
  | EDeref of expr                  (* *e *)
  | EAddr of expr                   (* &e *)
  | ECast of Ty.t * expr
  | ESizeof of Ty.t

type stmt =
  | SExpr of expr
  | SDecl of Ty.t * string * expr option
  | SIf of expr * stmt list * stmt list
  | SWhile of expr * stmt list
  | SDoWhile of stmt list * expr
  | SFor of stmt option * expr option * expr option * stmt list
  | SReturn of expr option * pos
  | SBreak of pos
  | SContinue of pos
  | SBlock of stmt list
  | SSeq of stmt list              (* spliced statements, no new scope:
                                      used for multi-variable declarations *)

(** Global variable initializer. *)
type ginit =
  | GNone
  | GInt of int
  | GStr of string
  | GFun of string
  | GList of ginit list             (* aggregate initializer { ... } *)

type func_def = {
  fd_name : string;
  fd_params : (string * Ty.t) list;
  fd_ret : Ty.t;
  fd_body : stmt list;
  fd_pos : pos;
}

type top =
  | TStruct of string * (string * Ty.t) list * bool (* sensitive? *)
  | TGlobal of Ty.t * string * ginit
  | TFunc of func_def

type program = { tops : top list }

let mk ?(pos = 0) desc = { desc; ety = Ty.Void; pos }

(** Structs annotated [sensitive] by the programmer (Section 3.2.1 allows
    additional programmer-indicated sensitive types). *)
let sensitive_structs (p : program) =
  List.filter_map
    (function TStruct (n, _, true) -> Some n | TStruct _ | TGlobal _ | TFunc _ -> None)
    p.tops
