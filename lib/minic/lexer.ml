(** Hand-written MiniC lexer. *)

type token =
  | INT of int
  | CHARLIT of char
  | STR of string
  | ID of string
  | KW of string          (* keywords: int char void struct if else ... *)
  | PUNCT of string       (* operators and punctuation *)
  | EOF

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;        (* current token *)
  mutable tok_line : int;
  mutable peeked : (token * int) option;
}

exception Lex_error of string * int

let error lx fmt =
  Printf.ksprintf (fun msg -> raise (Lex_error (msg, lx.line))) fmt

let keywords =
  [ "int"; "char"; "void"; "struct"; "if"; "else"; "while"; "do"; "for";
    "return"; "break"; "continue"; "sizeof"; "sensitive" ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let peek_char lx = if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let advance lx =
  (if lx.pos < String.length lx.src && lx.src.[lx.pos] = '\n' then
     lx.line <- lx.line + 1);
  lx.pos <- lx.pos + 1

let rec skip_ws lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') -> advance lx; skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
    while peek_char lx <> None && peek_char lx <> Some '\n' do advance lx done;
    skip_ws lx
  | Some '/' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '*' ->
    advance lx; advance lx;
    let rec close () =
      match peek_char lx with
      | None -> error lx "unterminated comment"
      | Some '*' when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        advance lx; advance lx
      | Some _ -> advance lx; close ()
    in
    close (); skip_ws lx
  | Some _ | None -> ()

let escape lx = function
  | 'n' -> '\n' | 't' -> '\t' | 'r' -> '\r' | '0' -> '\000'
  | '\\' -> '\\' | '\'' -> '\'' | '"' -> '"'
  | c -> error lx "bad escape \\%c" c

let lex_string lx =
  let buf = Buffer.create 16 in
  advance lx (* opening quote *);
  let rec go () =
    match peek_char lx with
    | None -> error lx "unterminated string literal"
    | Some '"' -> advance lx
    | Some '\\' ->
      advance lx;
      (match peek_char lx with
       | None -> error lx "unterminated string literal"
       | Some c -> Buffer.add_char buf (escape lx c); advance lx; go ())
    | Some c -> Buffer.add_char buf c; advance lx; go ()
  in
  go ();
  STR (Buffer.contents buf)

let lex_number lx =
  let start = lx.pos in
  if lx.src.[lx.pos] = '0' && lx.pos + 1 < String.length lx.src
     && (lx.src.[lx.pos + 1] = 'x' || lx.src.[lx.pos + 1] = 'X')
  then begin
    advance lx; advance lx;
    let hstart = lx.pos in
    let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F') in
    while (match peek_char lx with Some c -> is_hex c | None -> false) do advance lx done;
    if lx.pos = hstart then error lx "bad hex literal";
    INT (int_of_string ("0x" ^ String.sub lx.src hstart (lx.pos - hstart)))
  end
  else begin
    while (match peek_char lx with Some c -> is_digit c | None -> false) do advance lx done;
    INT (int_of_string (String.sub lx.src start (lx.pos - start)))
  end

(* Multi-char punctuation, longest first. *)
let puncts2 = [ "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>"; "->" ]

let next_token lx =
  skip_ws lx;
  let line = lx.line in
  match peek_char lx with
  | None -> (EOF, line)
  | Some c when is_ident_start c ->
    let start = lx.pos in
    while (match peek_char lx with Some c -> is_ident c | None -> false) do advance lx done;
    let s = String.sub lx.src start (lx.pos - start) in
    ((if List.mem s keywords then KW s else ID s), line)
  | Some c when is_digit c -> (lex_number lx, line)
  | Some '"' -> (lex_string lx, line)
  | Some '\'' ->
    advance lx;
    let c =
      match peek_char lx with
      | Some '\\' ->
        advance lx;
        (match peek_char lx with
         | Some e -> let r = escape lx e in advance lx; r
         | None -> error lx "unterminated char literal")
      | Some c -> advance lx; c
      | None -> error lx "unterminated char literal"
    in
    (match peek_char lx with
     | Some '\'' -> advance lx; (CHARLIT c, line)
     | _ -> error lx "unterminated char literal")
  | Some _ ->
    let two =
      if lx.pos + 1 < String.length lx.src then
        Some (String.sub lx.src lx.pos 2)
      else None
    in
    (match two with
     | Some p when List.mem p puncts2 -> advance lx; advance lx; (PUNCT p, line)
     | _ ->
       let c = lx.src.[lx.pos] in
       advance lx;
       (PUNCT (String.make 1 c), line))

let create src =
  let lx = { src; pos = 0; line = 1; tok = EOF; tok_line = 1; peeked = None } in
  let t, l = next_token lx in
  lx.tok <- t;
  lx.tok_line <- l;
  lx

(** Advance to the next token. *)
let next lx =
  (match lx.peeked with
   | Some (t, l) -> lx.peeked <- None; lx.tok <- t; lx.tok_line <- l
   | None ->
     let t, l = next_token lx in
     lx.tok <- t;
     lx.tok_line <- l)

(** One-token lookahead beyond the current token. *)
let peek lx =
  match lx.peeked with
  | Some (t, _) -> t
  | None ->
    let t, l = next_token lx in
    lx.peeked <- Some (t, l);
    t

let token_to_string = function
  | INT i -> string_of_int i
  | CHARLIT c -> Printf.sprintf "'%c'" c
  | STR s -> Printf.sprintf "%S" s
  | ID s -> s
  | KW s -> s
  | PUNCT s -> s
  | EOF -> "<eof>"
