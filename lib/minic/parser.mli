(** Recursive-descent MiniC parser. *)

exception Parse_error of string * int
(** Message and line number. *)

(** Parse a whole MiniC translation unit.
    @raise Parse_error on syntax errors
    @raise Lexer.Lex_error on lexical errors *)
val parse_program : string -> Ast.program

(** Like [parse_program] but raises [Failure] with a formatted
    ["file:line: message"] string. *)
val parse_program_exn : ?name:string -> string -> Ast.program
