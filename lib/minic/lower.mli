(** Lowering of type-checked MiniC to the IR, plus front-end drivers.

    The translation is clang-like: every local lives in an alloca (hoisted
    to the entry block), lvalues evaluate to addresses, rvalues to loaded
    values with array-to-pointer decay, and every memory operation records
    the static type it accesses — the information the paper's type-based
    analysis runs on. All memory operations are emitted as plain accesses;
    the protection passes rewrite them. *)

exception Lower_error of string * int

(** Lower a checked program. The result passes [Levee_ir.Verify]. *)
val lower : Typecheck.checked -> Levee_ir.Prog.t

(** [compile src] parses, type-checks, lowers and verifies MiniC source.
    @raise Failure with a located message on any front-end error. *)
val compile : ?name:string -> string -> Levee_ir.Prog.t

(** Like [compile], but also returns the type-checked AST, which carries
    the programmer's [sensitive] annotations for the analysis. *)
val compile_checked : ?name:string -> string -> Typecheck.checked * Levee_ir.Prog.t
