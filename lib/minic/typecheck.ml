(** MiniC type checker.

    Annotates every expression with its static type (filling [Ast.expr.ety])
    and validates the program. The static types recorded here are exactly
    what the sensitivity analysis (Section 3.2.1) consumes: they distinguish
    function pointers, pointers to sensitive composites, and universal
    pointers. *)

module Ty = Levee_ir.Ty
open Ast

exception Type_error of string * int

let error pos fmt = Printf.ksprintf (fun msg -> raise (Type_error (msg, pos))) fmt

(** Signatures of the built-in functions (modelled libc + test harness). *)
let intrinsic_sigs : (string * (Ty.t list * Ty.t)) list =
  [ "malloc", ([ Ty.Int ], Ty.Ptr Ty.Void);
    "free", ([ Ty.Ptr Ty.Void ], Ty.Void);
    "memcpy", ([ Ty.Ptr Ty.Void; Ty.Ptr Ty.Void; Ty.Int ], Ty.Void);
    "memset", ([ Ty.Ptr Ty.Void; Ty.Int; Ty.Int ], Ty.Void);
    "strcpy", ([ Ty.Ptr Ty.Char; Ty.Ptr Ty.Char ], Ty.Void);
    "strlen", ([ Ty.Ptr Ty.Char ], Ty.Int);
    "strcmp", ([ Ty.Ptr Ty.Char; Ty.Ptr Ty.Char ], Ty.Int);
    "gets", ([ Ty.Ptr Ty.Char ], Ty.Int);
    "read_input", ([ Ty.Ptr Ty.Void; Ty.Int ], Ty.Int);
    "read_int", ([], Ty.Int);
    "print_int", ([ Ty.Int ], Ty.Void);
    "print_str", ([ Ty.Ptr Ty.Char ], Ty.Void);
    "checksum", ([ Ty.Int ], Ty.Void);
    "setjmp", ([ Ty.Ptr Ty.Int ], Ty.Int);
    "longjmp", ([ Ty.Ptr Ty.Int; Ty.Int ], Ty.Void);
    "system", ([ Ty.Ptr Ty.Char ], Ty.Int);
    "exit", ([ Ty.Int ], Ty.Void);
    "abort", ([], Ty.Void);
    "thread_spawn", ([ Ty.Ptr (Ty.Fn ([ Ty.Int ], Ty.Int)); Ty.Int ], Ty.Int);
    "thread_join", ([ Ty.Int ], Ty.Int);
    "mutex_lock", ([ Ty.Ptr Ty.Void ], Ty.Void);
    "mutex_unlock", ([ Ty.Ptr Ty.Void ], Ty.Void);
    "atomic_add", ([ Ty.Ptr Ty.Int; Ty.Int ], Ty.Int) ]

type checked = {
  ast : program;
  tenv : Ty.env;
  global_tys : (string, Ty.t) Hashtbl.t;
  func_sigs : (string, Ty.t list * Ty.t) Hashtbl.t;
  sensitive_structs : string list;
}

type scope = {
  mutable vars : (string * Ty.t) list list;  (* innermost scope first *)
}

let push_scope sc = sc.vars <- [] :: sc.vars
let pop_scope sc =
  match sc.vars with
  | _ :: rest -> sc.vars <- rest
  | [] -> assert false

let declare sc pos name ty =
  match sc.vars with
  | inner :: rest ->
    if List.mem_assoc name inner then error pos "redeclaration of %s" name;
    sc.vars <- ((name, ty) :: inner) :: rest
  | [] -> assert false

let lookup sc name =
  let rec go = function
    | [] -> None
    | inner :: rest ->
      (match List.assoc_opt name inner with Some ty -> Some ty | None -> go rest)
  in
  go sc.vars

let is_scalar = function
  | Ty.Int | Ty.Char | Ty.Ptr _ -> true
  | Ty.Void | Ty.Fn _ | Ty.Struct _ | Ty.Arr _ -> false

(** Array-to-pointer decay, as applied in rvalue contexts. *)
let decay = function Ty.Arr (t, _) -> Ty.Ptr t | t -> t

(** Implicit convertibility of [src] into [dst] (assignment, argument and
    return contexts): exact match, int/char interchange, null constants,
    any-pointer to/from universal pointers. *)
let rec compatible env dst src =
  Ty.equal dst src
  || (match dst, src with
      | (Ty.Int | Ty.Char), (Ty.Int | Ty.Char) -> true
      | Ty.Ptr Ty.Void, Ty.Ptr _ | Ty.Ptr _, Ty.Ptr Ty.Void -> true
      | Ty.Ptr Ty.Char, Ty.Ptr _ | Ty.Ptr _, Ty.Ptr Ty.Char -> true
      | Ty.Ptr a, Ty.Ptr b -> compatible env a b
      | _, _ -> false)

let check_program (ast : program) : checked =
  let tenv = Ty.create_env () in
  let global_tys = Hashtbl.create 16 in
  let func_sigs = Hashtbl.create 16 in
  (* Pass 1: collect structs, globals and function signatures so that
     forward references work. *)
  List.iter
    (function
      | TStruct (name, fields, _) -> Ty.define_struct tenv name fields
      | TGlobal (ty, name, _) ->
        if Hashtbl.mem global_tys name then
          error 0 "duplicate global %s" name;
        Hashtbl.replace global_tys name ty
      | TFunc fd ->
        if Hashtbl.mem func_sigs fd.fd_name then
          error fd.fd_pos "duplicate function %s" fd.fd_name;
        Hashtbl.replace func_sigs fd.fd_name (List.map snd fd.fd_params, fd.fd_ret))
    ast.tops;
  (* Validate that all struct field types are well-formed. *)
  let rec check_ty pos = function
    | Ty.Struct s ->
      if not (Hashtbl.mem tenv.Ty.structs s) then error pos "unknown struct %s" s
    | Ty.Ptr t -> (match t with Ty.Struct _ -> () (* opaque fwd ok *) | t -> check_ty pos t)
    | Ty.Arr (t, n) ->
      if n <= 0 then error pos "non-positive array size";
      check_ty pos t
    | Ty.Fn (args, ret) -> List.iter (check_ty pos) args; check_ty pos ret
    | Ty.Int | Ty.Char | Ty.Void -> ()
  in
  Hashtbl.iter
    (fun sname fields ->
      List.iter (fun (_, fty) ->
          check_ty 0 fty;
          match fty with
          | Ty.Struct inner when inner = sname -> error 0 "struct %s contains itself" sname
          | _ -> ())
        fields)
    tenv.Ty.structs;
  Hashtbl.iter (fun _ ty -> check_ty 0 ty) global_tys;

  let rec check_expr sc (e : expr) : Ty.t =
    let ty = infer sc e in
    e.ety <- ty;
    ty

  and infer sc e =
    match e.desc with
    | EInt _ -> Ty.Int
    | EChar _ -> Ty.Char
    | EStr _ -> Ty.Ptr Ty.Char
    | EId name ->
      (match lookup sc name with
       | Some ty -> ty
       | None ->
         (match Hashtbl.find_opt global_tys name with
          | Some ty -> ty
          | None ->
            (match Hashtbl.find_opt func_sigs name with
             | Some (args, ret) -> Ty.Ptr (Ty.Fn (args, ret))
             | None ->
               if List.mem_assoc name intrinsic_sigs then
                 let args, ret = List.assoc name intrinsic_sigs in
                 Ty.Ptr (Ty.Fn (args, ret))
               else error e.pos "unknown identifier %s" name)))
    | EBin ((Add | Sub), a, b) ->
      let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
      (match ta, tb with
       | Ty.Ptr _, (Ty.Int | Ty.Char) -> ta
       | (Ty.Int | Ty.Char), Ty.Ptr _ ->
         (match e.desc with
          | EBin (Add, _, _) -> tb
          | _ -> error e.pos "cannot subtract pointer from integer")
       | Ty.Ptr _, Ty.Ptr _ ->
         (match e.desc with
          | EBin (Sub, _, _) -> Ty.Int
          | _ -> error e.pos "cannot add two pointers")
       | (Ty.Int | Ty.Char), (Ty.Int | Ty.Char) -> Ty.Int
       | _, _ -> error e.pos "bad operands for +/- (%s, %s)" (Ty.to_string ta) (Ty.to_string tb))
    | EBin ((Mul | Div | Rem | BAnd | BOr | BXor | Shl | Shr), a, b) ->
      let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
      (match ta, tb with
       | (Ty.Int | Ty.Char), (Ty.Int | Ty.Char) -> Ty.Int
       | _, _ -> error e.pos "arithmetic on non-integers (%s, %s)" (Ty.to_string ta) (Ty.to_string tb))
    | EBin ((Eq | Ne | Lt | Le | Gt | Ge), a, b) ->
      let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
      if is_scalar ta && is_scalar tb then Ty.Int
      else error e.pos "comparison of non-scalars"
    | EBin ((LAnd | LOr), a, b) ->
      let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
      if is_scalar ta && is_scalar tb then Ty.Int
      else error e.pos "logical op on non-scalars"
    | EUn (Neg, a) | EUn (BNot, a) ->
      (match decay (check_expr sc a) with
       | Ty.Int | Ty.Char -> Ty.Int
       | t -> error e.pos "unary arithmetic on %s" (Ty.to_string t))
    | EUn (Not, a) ->
      if is_scalar (decay (check_expr sc a)) then Ty.Int
      else error e.pos "! on non-scalar"
    | EAssign (lhs, rhs) ->
      let tl = check_lvalue sc lhs in
      let tr = decay (check_expr sc rhs) in
      (match tl with
       | Ty.Arr _ -> error e.pos "cannot assign to array"
       | Ty.Struct _ -> error e.pos "struct assignment not supported; copy fields"
       | _ ->
         if compatible tenv tl tr then tl
         else if (match tl, rhs.desc with Ty.Ptr _, EInt 0 -> true | _ -> false) then tl
         else
           error e.pos "incompatible assignment: %s = %s"
             (Ty.to_string tl) (Ty.to_string tr))
    | ECond (c, a, b) ->
      if not (is_scalar (decay (check_expr sc c))) then
        error e.pos "condition must be scalar";
      let ta = decay (check_expr sc a) and tb = decay (check_expr sc b) in
      if compatible tenv ta tb then ta
      else error e.pos "branches of ?: have incompatible types"
    | ECall (callee, args) ->
      let fty =
        match callee.desc with
        | EId _ -> check_expr sc callee
        | EDeref inner ->
          (* calling through "star fp" where fp is a function pointer is
             the same call as fp(...); through a pointer-to-function-pointer
             it is a genuine load *)
          let t = check_expr sc inner in
          (match t with
           | Ty.Ptr (Ty.Fn _) -> callee.ety <- t; t
           | _ -> check_expr sc callee)
        | _ -> check_expr sc callee
      in
      let params, ret =
        match decay fty with
        | Ty.Ptr (Ty.Fn (params, ret)) | Ty.Fn (params, ret) -> (params, ret)
        | t -> error e.pos "called value is not a function: %s" (Ty.to_string t)
      in
      if List.length params <> List.length args then
        error e.pos "wrong number of arguments (%d expected, %d given)"
          (List.length params) (List.length args);
      List.iter2
        (fun pty arg ->
          let aty = decay (check_expr sc arg) in
          if not (compatible tenv pty aty
                  || (match pty, arg.desc with Ty.Ptr _, EInt 0 -> true | _ -> false))
          then
            error arg.pos "argument type mismatch: expected %s, got %s"
              (Ty.to_string pty) (Ty.to_string aty))
        params args;
      ret
    | EIndex (base, idx) ->
      (match decay (check_expr sc idx) with
       | Ty.Int | Ty.Char -> ()
       | t -> error e.pos "array index must be integer, got %s" (Ty.to_string t));
      (match check_expr sc base with
       | Ty.Arr (t, _) -> t
       | Ty.Ptr t when not (Ty.equal t Ty.Void) -> t
       | t -> error e.pos "cannot index %s" (Ty.to_string t))
    | EField (base, fname) ->
      (match check_expr sc base with
       | Ty.Struct s ->
         let _, fty = Ty.field_offset tenv s fname in
         fty
       | t -> error e.pos "field access on non-struct %s" (Ty.to_string t))
    | EArrow (base, fname) ->
      (match decay (check_expr sc base) with
       | Ty.Ptr (Ty.Struct s) ->
         let _, fty = Ty.field_offset tenv s fname in
         fty
       | t -> error e.pos "-> on non-struct-pointer %s" (Ty.to_string t))
    | EDeref inner ->
      (match decay (check_expr sc inner) with
       | Ty.Ptr Ty.Void -> error e.pos "cannot dereference void*"
       | Ty.Ptr t -> t
       | t -> error e.pos "cannot dereference %s" (Ty.to_string t))
    | EAddr inner ->
      (match inner.desc with
       | EId name when Hashtbl.mem func_sigs name ->
         (* &f on a function yields the function pointer itself *)
         check_expr sc inner
       | _ ->
         let t = check_lvalue sc inner in
         Ty.Ptr t)
    | ECast (ty, inner) ->
      let src = decay (check_expr sc inner) in
      (match ty, src with
       | (Ty.Int | Ty.Char | Ty.Ptr _), (Ty.Int | Ty.Char | Ty.Ptr _) -> ty
       | _, _ ->
         error e.pos "invalid cast from %s to %s" (Ty.to_string src) (Ty.to_string ty))
    | ESizeof _ -> Ty.Int

  (* Lvalue checking: returns the object type (arrays NOT decayed). *)
  and check_lvalue sc (e : expr) : Ty.t =
    match e.desc with
    | EId name ->
      (match lookup sc name with
       | Some ty -> e.ety <- ty; ty
       | None ->
         (match Hashtbl.find_opt global_tys name with
          | Some ty -> e.ety <- ty; ty
          | None -> error e.pos "unknown or non-assignable identifier %s" name))
    | EDeref _ | EIndex _ | EField _ | EArrow _ ->
      let t = check_expr sc e in
      t
    | _ -> error e.pos "expression is not an lvalue"
  in

  let rec check_stmt sc ~ret ~inloop (s : stmt) =
    match s with
    | SExpr e -> ignore (check_expr sc e)
    | SDecl (ty, name, init) ->
      check_ty 0 ty;
      (match ty with
       | Ty.Void -> error 0 "cannot declare void variable %s" name
       | _ -> ());
      declare sc 0 name ty;
      (match init with
       | None -> ()
       | Some e ->
         let te = decay (check_expr sc e) in
         if not (compatible tenv (decay ty) te
                 || (match ty, e.desc with Ty.Ptr _, EInt 0 -> true | _ -> false))
         then
           error e.pos "initializer type mismatch for %s: %s vs %s" name
             (Ty.to_string ty) (Ty.to_string te))
    | SIf (c, thn, els) ->
      if not (is_scalar (decay (check_expr sc c))) then error c.pos "if condition must be scalar";
      check_block sc ~ret ~inloop thn;
      check_block sc ~ret ~inloop els
    | SWhile (c, body) ->
      if not (is_scalar (decay (check_expr sc c))) then error c.pos "while condition must be scalar";
      check_block sc ~ret ~inloop:true body
    | SDoWhile (body, c) ->
      check_block sc ~ret ~inloop:true body;
      if not (is_scalar (decay (check_expr sc c))) then error c.pos "do-while condition must be scalar"
    | SFor (init, cond, step, body) ->
      push_scope sc;
      (match init with Some s -> check_stmt sc ~ret ~inloop s | None -> ());
      (match cond with
       | Some c ->
         if not (is_scalar (decay (check_expr sc c))) then
           error c.pos "for condition must be scalar"
       | None -> ());
      (match step with Some e -> ignore (check_expr sc e) | None -> ());
      check_block sc ~ret ~inloop:true body;
      pop_scope sc
    | SReturn (None, pos) ->
      if not (Ty.equal ret Ty.Void) then error pos "return without value in non-void function"
    | SReturn (Some e, pos) ->
      if Ty.equal ret Ty.Void then error pos "return with value in void function";
      let te = decay (check_expr sc e) in
      if not (compatible tenv ret te
              || (match ret, e.desc with Ty.Ptr _, EInt 0 -> true | _ -> false))
      then error pos "return type mismatch: %s vs %s" (Ty.to_string ret) (Ty.to_string te)
    | SBreak pos -> if not inloop then error pos "break outside loop"
    | SContinue pos -> if not inloop then error pos "continue outside loop"
    | SBlock body -> check_block sc ~ret ~inloop body
    | SSeq body -> List.iter (check_stmt sc ~ret ~inloop) body

  and check_block sc ~ret ~inloop body =
    push_scope sc;
    List.iter (check_stmt sc ~ret ~inloop) body;
    pop_scope sc
  in

  List.iter
    (function
      | TStruct _ -> ()
      | TGlobal (ty, name, init) ->
        (match ty with
         | Ty.Void -> error 0 "cannot declare void global %s" name
         | _ -> ());
        (* Initializer shape checking is done during lowering where the
           layout is computed; here we only check simple scalar inits. *)
        (match init, ty with
         | GFun f, _ when not (Hashtbl.mem func_sigs f || Hashtbl.mem global_tys f) ->
           error 0 "global %s initialized with unknown name %s" name f
         | _ -> ())
      | TFunc fd ->
        let sc = { vars = [] } in
        push_scope sc;
        List.iter
          (fun (n, ty) ->
            (match ty with
             | Ty.Void -> error fd.fd_pos "void parameter %s in %s" n fd.fd_name
             | Ty.Struct _ -> error fd.fd_pos "struct-by-value parameter %s in %s" n fd.fd_name
             | _ -> ());
            declare sc fd.fd_pos n ty)
          fd.fd_params;
        (match fd.fd_ret with
         | Ty.Struct _ | Ty.Arr _ -> error fd.fd_pos "function %s returns an aggregate" fd.fd_name
         | _ -> ());
        check_block sc ~ret:fd.fd_ret ~inloop:false fd.fd_body;
        pop_scope sc)
    ast.tops;
  { ast; tenv; global_tys; func_sigs; sensitive_structs = Ast.sensitive_structs ast }
