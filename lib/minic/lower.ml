(** Lowering of type-checked MiniC to the IR.

    The translation is deliberately clang-like: every local lives in an
    alloca (hoisted to the entry block), lvalues evaluate to addresses,
    rvalues to loaded values with array-to-pointer decay, and every memory
    operation records the static type it accesses — the information the
    paper's type-based static analysis runs on. All memory operations are
    emitted as plain [Regular] accesses; the protection passes rewrite
    them. *)

module Ty = Levee_ir.Ty
module Ir = Levee_ir.Instr
module Prog = Levee_ir.Prog
module B = Levee_ir.Builder
open Ast

exception Lower_error of string * int

let error pos fmt = Printf.ksprintf (fun msg -> raise (Lower_error (msg, pos))) fmt

type var = Local of int * Ty.t | GlobalVar of string * Ty.t

type env = {
  checked : Typecheck.checked;
  prog : Prog.t;
  mutable strings : (string * string) list;  (* literal -> global name *)
  mutable nstrings : int;
}

type fenv = {
  b : B.t;
  genv : env;
  mutable vars : (string * var) list list;
  mutable allocas : Ir.instr list;           (* reversed; hoisted to entry *)
  mutable break_to : int list;
  mutable continue_to : int list;
}

let tenv fe = fe.genv.prog.Prog.tenv

let push fe = fe.vars <- [] :: fe.vars
let pop fe = fe.vars <- List.tl fe.vars

let bind fe name v =
  match fe.vars with
  | inner :: rest -> fe.vars <- ((name, v) :: inner) :: rest
  | [] -> assert false

let lookup_var fe name =
  let rec go = function
    | [] ->
      (* fall back to module-level globals *)
      (match Hashtbl.find_opt fe.genv.checked.Typecheck.global_tys name with
       | Some ty -> Some (GlobalVar (name, ty))
       | None -> None)
    | inner :: rest ->
      (match List.assoc_opt name inner with Some v -> Some v | None -> go rest)
  in
  go fe.vars

(** Allocate a hoisted stack slot of type [ty]; returns the register holding
    its address. *)
let alloca_hoisted fe ty =
  let dst = B.fresh_reg ~ty:(Ty.Ptr ty) fe.b in
  fe.allocas <- Ir.Alloca { dst; ty; slot = Ir.Auto } :: fe.allocas;
  dst

(** Intern a string literal as a global char array; returns its name. *)
let intern_string genv s =
  match List.assoc_opt s genv.strings with
  | Some name -> name
  | None ->
    let name = Printf.sprintf ".str.%d" genv.nstrings in
    genv.nstrings <- genv.nstrings + 1;
    genv.strings <- (s, name) :: genv.strings;
    let cells =
      Array.init (String.length s + 1) (fun i ->
          if i < String.length s then Prog.Cint (Char.code s.[i]) else Prog.Cint 0)
    in
    Prog.add_global genv.prog
      { Prog.gname = name; gty = Ty.Arr (Ty.Char, String.length s + 1); init = cells };
    name

let elem_ty pos = function
  | Ty.Arr (t, _) -> t
  | Ty.Ptr t -> t
  | t -> error pos "expected array or pointer, got %s" (Ty.to_string t)

let rec lower_rvalue fe (e : expr) : Ir.operand =
  match e.desc with
  | EInt n -> Ir.Imm n
  | EChar c -> Ir.Imm (Char.code c)
  | EStr s -> Ir.Glob (intern_string fe.genv s)
  | EId name ->
    (match lookup_var fe name with
     | Some (Local (addr, ty)) ->
       (match ty with
        | Ty.Arr _ -> Ir.Reg addr           (* array decays to its address *)
        | _ -> Ir.Reg (B.load fe.b ty (Ir.Reg addr)))
     | Some (GlobalVar (g, ty)) ->
       (match ty with
        | Ty.Arr _ -> Ir.Glob g
        | _ -> Ir.Reg (B.load fe.b ty (Ir.Glob g)))
     | None ->
       if Hashtbl.mem fe.genv.checked.Typecheck.func_sigs name then Ir.Fun name
       else if List.mem_assoc name Typecheck.intrinsic_sigs then
         error e.pos "builtin %s can only be called" name
       else error e.pos "unbound identifier %s" name)
  | EBin ((Add | Sub) as op, a, b) -> lower_addsub fe e op a b
  | EBin ((Mul | Div | Rem | BAnd | BOr | BXor | Shl | Shr) as op, a, b) ->
    let ir_op =
      match op with
      | Mul -> Ir.Mul | Div -> Ir.Div | Rem -> Ir.Rem
      | BAnd -> Ir.And | BOr -> Ir.Or | BXor -> Ir.Xor
      | Shl -> Ir.Shl | Shr -> Ir.Shr
      | _ -> assert false
    in
    let va = lower_rvalue fe a in
    let vb = lower_rvalue fe b in
    Ir.Reg (B.bin fe.b ir_op va vb)
  | EBin ((Eq | Ne | Lt | Le | Gt | Ge) as op, a, b) ->
    let ir_op =
      match op with
      | Eq -> Ir.Eq | Ne -> Ir.Ne | Lt -> Ir.Lt
      | Le -> Ir.Le | Gt -> Ir.Gt | Ge -> Ir.Ge
      | _ -> assert false
    in
    let va = lower_rvalue fe a in
    let vb = lower_rvalue fe b in
    Ir.Reg (B.cmp fe.b ir_op va vb)
  | EBin (LAnd, a, b) -> lower_shortcircuit fe ~is_and:true a b
  | EBin (LOr, a, b) -> lower_shortcircuit fe ~is_and:false a b
  | EUn (Neg, a) ->
    let v = lower_rvalue fe a in
    Ir.Reg (B.bin fe.b Ir.Sub (Ir.Imm 0) v)
  | EUn (Not, a) ->
    let v = lower_rvalue fe a in
    Ir.Reg (B.cmp fe.b Ir.Eq v (Ir.Imm 0))
  | EUn (BNot, a) ->
    let v = lower_rvalue fe a in
    Ir.Reg (B.bin fe.b Ir.Xor v (Ir.Imm (-1)))
  | EAssign (lhs, rhs) ->
    let v = lower_rvalue fe rhs in
    let addr = lower_lvalue fe lhs in
    B.store fe.b lhs.ety v addr;
    v
  | ECond (c, a, b) ->
    let slot = alloca_hoisted fe Ty.Int in
    let vc = lower_rvalue fe c in
    let bthen = B.new_block fe.b in
    let belse = B.new_block fe.b in
    let bjoin = B.new_block fe.b in
    B.set_term fe.b (Ir.Br (vc, bthen, belse));
    B.position_at fe.b bthen;
    let va = lower_rvalue fe a in
    B.store fe.b Ty.Int va (Ir.Reg slot);
    B.set_term fe.b (Ir.Jmp bjoin);
    B.position_at fe.b belse;
    let vb = lower_rvalue fe b in
    B.store fe.b Ty.Int vb (Ir.Reg slot);
    B.set_term fe.b (Ir.Jmp bjoin);
    B.position_at fe.b bjoin;
    Ir.Reg (B.load fe.b Ty.Int (Ir.Reg slot))
  | ECall (callee, args) -> lower_call fe e callee args
  | EIndex _ | EField _ | EArrow _ | EDeref _ ->
    (match e.ety with
     | Ty.Arr _ -> lower_lvalue fe e      (* aggregate element decays *)
     | Ty.Struct _ -> lower_lvalue fe e   (* struct rvalue = its address *)
     | ty ->
       let addr = lower_lvalue fe e in
       Ir.Reg (B.load fe.b ty addr))
  | EAddr inner ->
    (match inner.desc with
     | EId name when Hashtbl.mem fe.genv.checked.Typecheck.func_sigs name -> Ir.Fun name
     | _ -> lower_lvalue fe inner)
  | ECast (ty, inner) ->
    let v = lower_rvalue fe inner in
    let src = (match inner.ety with Ty.Arr (t, _) -> Ty.Ptr t | t -> t) in
    let kind =
      match src, ty with
      | Ty.Ptr _, Ty.Ptr _ -> Ir.Bitcast
      | Ty.Ptr _, (Ty.Int | Ty.Char) -> Ir.PtrToInt
      | (Ty.Int | Ty.Char), Ty.Ptr _ -> Ir.IntToPtr
      | _, _ -> Ir.Bitcast
    in
    Ir.Reg (B.cast fe.b kind ty v)
  | ESizeof ty -> Ir.Imm (Ty.size_of (tenv fe) ty)

and lower_addsub fe _e op a b =
  let ta = (match a.ety with Ty.Arr (t, _) -> Ty.Ptr t | t -> t) in
  let tb = (match b.ety with Ty.Arr (t, _) -> Ty.Ptr t | t -> t) in
  match ta, tb, op with
  | Ty.Ptr t, (Ty.Int | Ty.Char), Add ->
    let base = lower_rvalue fe a in
    let idx = lower_rvalue fe b in
    Ir.Reg (B.gep fe.b ~base_ty:t ~base [ Ir.Index (t, idx) ])
  | Ty.Ptr t, (Ty.Int | Ty.Char), Sub ->
    let base = lower_rvalue fe a in
    let idx = lower_rvalue fe b in
    let neg = B.bin fe.b Ir.Sub (Ir.Imm 0) idx in
    Ir.Reg (B.gep fe.b ~base_ty:t ~base [ Ir.Index (t, Ir.Reg neg) ])
  | (Ty.Int | Ty.Char), Ty.Ptr t, Add ->
    let idx = lower_rvalue fe a in
    let base = lower_rvalue fe b in
    Ir.Reg (B.gep fe.b ~base_ty:t ~base [ Ir.Index (t, idx) ])
  | Ty.Ptr t, Ty.Ptr _, Sub ->
    let va = lower_rvalue fe a in
    let vb = lower_rvalue fe b in
    let diff = B.bin fe.b Ir.Sub va vb in
    let sz = Ty.size_of (tenv fe) t in
    if sz = 1 then Ir.Reg diff
    else Ir.Reg (B.bin fe.b Ir.Div (Ir.Reg diff) (Ir.Imm sz))
  | _, _, _ ->
    let ir_op = match op with Add -> Ir.Add | Sub -> Ir.Sub | _ -> assert false in
    let va = lower_rvalue fe a in
    let vb = lower_rvalue fe b in
    Ir.Reg (B.bin fe.b ir_op va vb)

and lower_shortcircuit fe ~is_and a b =
  let slot = alloca_hoisted fe Ty.Int in
  let va = lower_rvalue fe a in
  let nz_a = B.cmp fe.b Ir.Ne va (Ir.Imm 0) in
  B.store fe.b Ty.Int (Ir.Reg nz_a) (Ir.Reg slot);
  let beval = B.new_block fe.b in
  let bjoin = B.new_block fe.b in
  if is_and then B.set_term fe.b (Ir.Br (Ir.Reg nz_a, beval, bjoin))
  else B.set_term fe.b (Ir.Br (Ir.Reg nz_a, bjoin, beval));
  B.position_at fe.b beval;
  let vb = lower_rvalue fe b in
  let nz_b = B.cmp fe.b Ir.Ne vb (Ir.Imm 0) in
  B.store fe.b Ty.Int (Ir.Reg nz_b) (Ir.Reg slot);
  B.set_term fe.b (Ir.Jmp bjoin);
  B.position_at fe.b bjoin;
  Ir.Reg (B.load fe.b Ty.Int (Ir.Reg slot))

and lower_call fe e callee args =
  let lower_args () = List.map (lower_rvalue fe) args in
  match callee.desc with
  | EId name when lookup_var fe name = None
                  && not (Hashtbl.mem fe.genv.checked.Typecheck.func_sigs name) ->
    (* Built-in (intrinsic) call. *)
    let vargs = lower_args () in
    let name, vargs =
      if name = "gets" then ("read_input", vargs @ [ Ir.Imm (-1) ]) else (name, vargs)
    in
    (match Levee_ir.Instr.intrin_of_name name with
     | None -> error e.pos "unknown builtin %s" name
     | Some op ->
       let _, ret = List.assoc (Levee_ir.Instr.intrin_name op) Typecheck.intrinsic_sigs in
       (match B.intrin fe.b
                ?dst_ty:(if Ty.equal ret Ty.Void then None else Some ret)
                op vargs
        with
        | Some r -> Ir.Reg r
        | None -> Ir.Imm 0))
  | EId name when (match lookup_var fe name with Some _ -> false | None -> true) ->
    (* Direct call to a known function. *)
    let fsig = Hashtbl.find fe.genv.checked.Typecheck.func_sigs name in
    let vargs = lower_args () in
    let fty = Ty.Fn (fst fsig, snd fsig) in
    (match B.call fe.b ~fty ~ret_ty:(snd fsig) (Ir.Direct name) vargs with
     | Some r -> Ir.Reg r
     | None -> Ir.Imm 0)
  | _ ->
    (* Indirect call through a function pointer expression. *)
    let fp_expr =
      match callee.desc with
      | EDeref inner
        when (match inner.ety with Ty.Ptr (Ty.Fn _) -> true | _ -> false) ->
        inner
      | _ -> callee
    in
    let fp = lower_rvalue fe fp_expr in
    let fty =
      match (match fp_expr.ety with Ty.Arr (t, _) -> Ty.Ptr t | t -> t) with
      | Ty.Ptr (Ty.Fn _ as f) -> f
      | Ty.Fn _ as f -> f
      | t -> error e.pos "indirect call through non-function-pointer %s" (Ty.to_string t)
    in
    let ret = match fty with Ty.Fn (_, r) -> r | _ -> assert false in
    let vargs = lower_args () in
    (match B.call fe.b ~fty ~ret_ty:ret (Ir.Indirect fp) vargs with
     | Some r -> Ir.Reg r
     | None -> Ir.Imm 0)

(** Lower an lvalue expression to the address (operand) of the object. *)
and lower_lvalue fe (e : expr) : Ir.operand =
  match e.desc with
  | EId name ->
    (match lookup_var fe name with
     | Some (Local (addr, _)) -> Ir.Reg addr
     | Some (GlobalVar (g, _)) -> Ir.Glob g
     | None -> error e.pos "not an lvalue: %s" name)
  | EDeref inner -> lower_rvalue fe inner
  | EIndex (base, idx) ->
    let t = elem_ty e.pos (match base.ety with Ty.Arr _ as a -> a | t -> t) in
    let vbase = lower_rvalue fe base in   (* decayed to element pointer *)
    let vidx = lower_rvalue fe idx in
    Ir.Reg (B.gep fe.b ~base_ty:t ~base:vbase [ Ir.Index (t, vidx) ])
  | EField (base, fname) ->
    let sname =
      match base.ety with
      | Ty.Struct s -> s
      | t -> error e.pos "field access on %s" (Ty.to_string t)
    in
    let off, fty = Ty.field_offset (tenv fe) sname fname in
    let vbase = lower_lvalue fe base in
    Ir.Reg
      (B.gep fe.b ~base_ty:(Ty.Struct sname) ~base:vbase
         [ Ir.Field (fname, off, Ty.size_of (tenv fe) fty) ])
  | EArrow (base, fname) ->
    let sname =
      match (match base.ety with Ty.Arr (t, _) -> Ty.Ptr t | t -> t) with
      | Ty.Ptr (Ty.Struct s) -> s
      | t -> error e.pos "-> on %s" (Ty.to_string t)
    in
    let off, fty = Ty.field_offset (tenv fe) sname fname in
    let vbase = lower_rvalue fe base in
    Ir.Reg
      (B.gep fe.b ~base_ty:(Ty.Struct sname) ~base:vbase
         [ Ir.Field (fname, off, Ty.size_of (tenv fe) fty) ])
  | _ -> error e.pos "expression is not an lvalue"

let rec lower_stmt fe (s : stmt) =
  match s with
  | SExpr e -> ignore (lower_rvalue fe e)
  | SDecl (ty, name, init) ->
    let addr = alloca_hoisted fe ty in
    bind fe name (Local (addr, ty));
    (match init with
     | None -> ()
     | Some e ->
       let v = lower_rvalue fe e in
       B.store fe.b ty v (Ir.Reg addr))
  | SIf (c, thn, els) ->
    let vc = lower_rvalue fe c in
    let bthen = B.new_block fe.b in
    let belse = B.new_block fe.b in
    let bjoin = B.new_block fe.b in
    B.set_term fe.b (Ir.Br (vc, bthen, belse));
    B.position_at fe.b bthen;
    lower_block fe thn;
    B.set_term fe.b (Ir.Jmp bjoin);
    B.position_at fe.b belse;
    lower_block fe els;
    B.set_term fe.b (Ir.Jmp bjoin);
    B.position_at fe.b bjoin
  | SWhile (c, body) ->
    let bcond = B.new_block fe.b in
    let bbody = B.new_block fe.b in
    let bexit = B.new_block fe.b in
    B.set_term fe.b (Ir.Jmp bcond);
    B.position_at fe.b bcond;
    let vc = lower_rvalue fe c in
    B.set_term fe.b (Ir.Br (vc, bbody, bexit));
    B.position_at fe.b bbody;
    fe.break_to <- bexit :: fe.break_to;
    fe.continue_to <- bcond :: fe.continue_to;
    lower_block fe body;
    fe.break_to <- List.tl fe.break_to;
    fe.continue_to <- List.tl fe.continue_to;
    B.set_term fe.b (Ir.Jmp bcond);
    B.position_at fe.b bexit
  | SDoWhile (body, c) ->
    let bbody = B.new_block fe.b in
    let bcond = B.new_block fe.b in
    let bexit = B.new_block fe.b in
    B.set_term fe.b (Ir.Jmp bbody);
    B.position_at fe.b bbody;
    fe.break_to <- bexit :: fe.break_to;
    fe.continue_to <- bcond :: fe.continue_to;
    lower_block fe body;
    fe.break_to <- List.tl fe.break_to;
    fe.continue_to <- List.tl fe.continue_to;
    B.set_term fe.b (Ir.Jmp bcond);
    B.position_at fe.b bcond;
    let vc = lower_rvalue fe c in
    B.set_term fe.b (Ir.Br (vc, bbody, bexit));
    B.position_at fe.b bexit
  | SFor (init, cond, step, body) ->
    push fe;
    (match init with Some s -> lower_stmt fe s | None -> ());
    let bcond = B.new_block fe.b in
    let bbody = B.new_block fe.b in
    let bstep = B.new_block fe.b in
    let bexit = B.new_block fe.b in
    B.set_term fe.b (Ir.Jmp bcond);
    B.position_at fe.b bcond;
    (match cond with
     | Some c ->
       let vc = lower_rvalue fe c in
       B.set_term fe.b (Ir.Br (vc, bbody, bexit))
     | None -> B.set_term fe.b (Ir.Jmp bbody));
    B.position_at fe.b bbody;
    fe.break_to <- bexit :: fe.break_to;
    fe.continue_to <- bstep :: fe.continue_to;
    lower_block fe body;
    fe.break_to <- List.tl fe.break_to;
    fe.continue_to <- List.tl fe.continue_to;
    B.set_term fe.b (Ir.Jmp bstep);
    B.position_at fe.b bstep;
    (match step with Some e -> ignore (lower_rvalue fe e) | None -> ());
    B.set_term fe.b (Ir.Jmp bcond);
    B.position_at fe.b bexit;
    pop fe
  | SReturn (None, _) ->
    B.set_term fe.b (Ir.Ret None);
    B.position_at fe.b (B.new_block fe.b)
  | SReturn (Some e, _) ->
    let v = lower_rvalue fe e in
    B.set_term fe.b (Ir.Ret (Some v));
    B.position_at fe.b (B.new_block fe.b)
  | SBreak pos ->
    (match fe.break_to with
     | b :: _ ->
       B.set_term fe.b (Ir.Jmp b);
       B.position_at fe.b (B.new_block fe.b)
     | [] -> error pos "break outside loop")
  | SContinue pos ->
    (match fe.continue_to with
     | b :: _ ->
       B.set_term fe.b (Ir.Jmp b);
       B.position_at fe.b (B.new_block fe.b)
     | [] -> error pos "continue outside loop")
  | SBlock body -> lower_block fe body
  | SSeq body -> List.iter (lower_stmt fe) body

and lower_block fe body =
  push fe;
  List.iter (lower_stmt fe) body;
  pop fe

(** Flatten a global initializer against the layout of [ty]. *)
let rec flatten_ginit genv pos ty (init : ginit) : Prog.gcell list =
  let tenv = genv.prog.Prog.tenv in
  let zero n = List.init n (fun _ -> Prog.Cint 0) in
  match init, ty with
  | GNone, _ -> zero (Ty.size_of tenv ty)
  | GInt n, (Ty.Int | Ty.Char | Ty.Ptr _) -> [ Prog.Cint n ]
  | GStr s, Ty.Arr (Ty.Char, n) ->
    if String.length s + 1 > n then error pos "string initializer too long";
    List.init n (fun i ->
        if i < String.length s then Prog.Cint (Char.code s.[i]) else Prog.Cint 0)
  | GStr s, Ty.Ptr Ty.Char -> [ Prog.Cglob (intern_string genv s, 0) ]
  | GFun name, Ty.Ptr _ ->
    if Hashtbl.mem genv.checked.Typecheck.func_sigs name then [ Prog.Cfun name ]
    else if Hashtbl.mem genv.checked.Typecheck.global_tys name then
      [ Prog.Cglob (name, 0) ]
    else error pos "unknown name %s in initializer" name
  | GList items, Ty.Arr (et, _n) ->
    let cells = List.concat_map (flatten_ginit genv pos et) items in
    let pad = Ty.size_of tenv ty - List.length cells in
    if pad < 0 then error pos "too many array initializer elements";
    cells @ zero pad
  | GList items, Ty.Struct s ->
    let fields = Ty.struct_fields tenv s in
    if List.length items > List.length fields then
      error pos "too many struct initializer elements";
    let rec go fields items =
      match fields, items with
      | [], [] -> []
      | (_, fty) :: fs, [] -> zero (Ty.size_of tenv fty) @ go fs []
      | (_, fty) :: fs, it :: is -> flatten_ginit genv pos fty it @ go fs is
      | [], _ :: _ -> assert false
    in
    go fields items
  | _, _ -> error pos "initializer shape does not match type %s" (Ty.to_string ty)

let lower_func genv (fd : func_def) =
  let b = B.create ~name:fd.fd_name ~params:fd.fd_params ~ret_ty:fd.fd_ret in
  let fe = { b; genv; vars = [ [] ]; allocas = []; break_to = []; continue_to = [] } in
  (* Spill parameters to allocas so their address can be taken. *)
  List.iteri
    (fun i (name, ty) ->
      let addr = alloca_hoisted fe ty in
      B.store b ty (Ir.Reg (B.param_reg b i)) (Ir.Reg addr);
      bind fe name (Local (addr, ty)))
    fd.fd_params;
  lower_block fe fd.fd_body;
  (* Implicit return at the end of the function. *)
  (match fd.fd_ret with
   | Ty.Void -> B.set_term b (Ir.Ret None)
   | _ -> B.set_term b (Ir.Ret (Some (Ir.Imm 0))));
  let fn = B.finish b in
  (* Hoist allocas to the very start of the entry block. *)
  let allocas = Array.of_list (List.rev fe.allocas) in
  fn.Prog.blocks.(0).Prog.instrs <- Array.append allocas fn.Prog.blocks.(0).Prog.instrs;
  fn

(** Lower a checked program to IR. The result passes [Levee_ir.Verify]. *)
let lower (checked : Typecheck.checked) : Prog.t =
  let prog = Prog.create () in
  let genv = { checked; prog; strings = []; nstrings = 0 } in
  (* Structs first: layouts are needed everywhere. *)
  List.iter
    (function
      | TStruct (name, fields, _) -> Ty.define_struct prog.Prog.tenv name fields
      | TGlobal _ | TFunc _ -> ())
    checked.ast.tops;
  List.iter
    (function
      | TStruct _ -> ()
      | TGlobal (ty, name, init) ->
        let cells = Array.of_list (flatten_ginit genv 0 ty init) in
        Prog.add_global prog { Prog.gname = name; gty = ty; init = cells }
      | TFunc fd -> Prog.add_func prog (lower_func genv fd))
    checked.ast.tops;
  ignore (Prog.compute_address_taken prog);
  prog

(** Front-end convenience: parse, check and lower MiniC source. *)
let compile ?(name = "<input>") src : Prog.t =
  let ast = Parser.parse_program_exn ~name src in
  let checked =
    try Typecheck.check_program ast with
    | Typecheck.Type_error (msg, l) ->
      failwith (Printf.sprintf "%s:%d: type error: %s" name l msg)
  in
  let prog =
    try lower checked with
    | Lower_error (msg, l) ->
      failwith (Printf.sprintf "%s:%d: lowering error: %s" name l msg)
  in
  (match Levee_ir.Verify.program_result prog with
   | Ok () -> ()
   | Error e -> failwith (Printf.sprintf "%s: internal error: invalid IR: %s" name e));
  prog

(** [compile_checked src] also returns the type-checked AST, which carries
    the programmer's [sensitive] annotations for the analysis. *)
let compile_checked ?(name = "<input>") src : Typecheck.checked * Prog.t =
  let ast = Parser.parse_program_exn ~name src in
  let checked =
    try Typecheck.check_program ast with
    | Typecheck.Type_error (msg, l) ->
      failwith (Printf.sprintf "%s:%d: type error: %s" name l msg)
  in
  (checked, lower checked)
