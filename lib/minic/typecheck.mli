(** MiniC type checker.

    Annotates every expression with its static type (filling
    [Ast.expr.ety]) and validates the program. The static types recorded
    here are exactly what the sensitivity analysis (paper Section 3.2.1)
    consumes: they distinguish function pointers, pointers to sensitive
    composites, and universal pointers. *)

module Ty = Levee_ir.Ty

exception Type_error of string * int
(** Message and line number. *)

(** Signatures of the built-in functions (modelled libc + harness):
    malloc, free, memcpy, memset, strcpy, strlen, strcmp, gets,
    read_input, read_int, print_int, print_str, checksum, setjmp,
    longjmp, system, exit, abort. *)
val intrinsic_sigs : (string * (Ty.t list * Ty.t)) list

type checked = {
  ast : Ast.program;
  tenv : Ty.env;
  global_tys : (string, Ty.t) Hashtbl.t;
  func_sigs : (string, Ty.t list * Ty.t) Hashtbl.t;
  sensitive_structs : string list;
      (** programmer-annotated sensitive struct names *)
}

(** Check a parsed program. @raise Type_error on the first violation. *)
val check_program : Ast.program -> checked
