(** Recursive-descent MiniC parser. *)

module Ty = Levee_ir.Ty
open Ast

exception Parse_error of string * int

type t = { lx : Lexer.t }

let error p fmt =
  Printf.ksprintf (fun msg -> raise (Parse_error (msg, p.lx.Lexer.tok_line))) fmt

let tok p = p.lx.Lexer.tok
let line p = p.lx.Lexer.tok_line
let next p = Lexer.next p.lx
let peek p = Lexer.peek p.lx

let expect_punct p s =
  match tok p with
  | Lexer.PUNCT x when x = s -> next p
  | t -> error p "expected '%s', found '%s'" s (Lexer.token_to_string t)

let accept_punct p s =
  match tok p with
  | Lexer.PUNCT x when x = s -> next p; true
  | _ -> false

let expect_id p =
  match tok p with
  | Lexer.ID s -> next p; s
  | t -> error p "expected identifier, found '%s'" (Lexer.token_to_string t)

let is_type_start p =
  match tok p with
  | Lexer.KW ("int" | "char" | "void" | "struct") -> true
  | _ -> false

(* base-type := int | char | void | struct ID *)
let parse_base_type p =
  match tok p with
  | Lexer.KW "int" -> next p; Ty.Int
  | Lexer.KW "char" -> next p; Ty.Char
  | Lexer.KW "void" -> next p; Ty.Void
  | Lexer.KW "struct" ->
    next p;
    let name = expect_id p in
    Ty.Struct name
  | t -> error p "expected type, found '%s'" (Lexer.token_to_string t)

let rec parse_pointers p base =
  if accept_punct p "*" then parse_pointers p (Ty.Ptr base) else base

(* ('[' INT ']')* applied outside-in: int a[2][3] is array 2 of array 3 *)
let rec parse_array_suffix p base =
  if accept_punct p "[" then begin
    let n =
      match tok p with
      | Lexer.INT n -> next p; n
      | t -> error p "expected array size, found '%s'" (Lexer.token_to_string t)
    in
    expect_punct p "]";
    Ty.Arr (parse_array_suffix p base, n)
  end
  else base

(* Abstract parameter-type lists for function-pointer declarators. *)
let rec parse_param_types p =
  expect_punct p "(";
  if accept_punct p ")" then []
  else begin
    let rec go acc =
      let ty = parse_abstract_type p in
      if accept_punct p "," then go (ty :: acc)
      else begin
        expect_punct p ")";
        List.rev (ty :: acc)
      end
    in
    go []
  end

(* abstract-type := base '*'* [ '(' '*' ')' '(' params ')' ]   (for casts) *)
and parse_abstract_type p =
  let base = parse_base_type p in
  let base = parse_pointers p base in
  (* function-pointer abstract declarator; extra stars yield pointers to
     function pointers *)
  match tok p, peek p with
  | Lexer.PUNCT "(", Lexer.PUNCT "*" ->
    next p;
    expect_punct p "*";
    let extra = ref 0 in
    while accept_punct p "*" do incr extra done;
    expect_punct p ")";
    let args = parse_param_types p in
    let rec wrap n t = if n = 0 then t else wrap (n - 1) (Ty.Ptr t) in
    wrap !extra (Ty.Ptr (Ty.Fn (args, base)))
  | _ -> base

(* declarator := '*'* ( ID arrays | '(' '*' ID arrays ')' '(' params ')' )
   Returns (name, type). *)
let parse_declarator p base =
  let base = parse_pointers p base in
  match tok p with
  | Lexer.PUNCT "(" ->
    next p;
    expect_punct p "*";
    let extra = ref 0 in
    while accept_punct p "*" do incr extra done;
    let name = expect_id p in
    (* array-of-function-pointer declarators, e.g. an opcode table *)
    let wrap_arr = parse_array_suffix p Ty.Void in
    expect_punct p ")";
    let args = parse_param_types p in
    let fnptr = Ty.Ptr (Ty.Fn (args, base)) in
    let fnptr = (* extra stars: pointer(s) to function pointer *)
      let rec add n t = if n = 0 then t else add (n - 1) (Ty.Ptr t) in
      add !extra fnptr
    in
    let rec rebuild shape inner =
      match shape with
      | Ty.Arr (s, n) -> Ty.Arr (rebuild s inner, n)
      | _ -> inner
    in
    (name, rebuild wrap_arr fnptr)
  | _ ->
    let name = expect_id p in
    let ty = parse_array_suffix p base in
    (name, ty)

(* ---------------- Expressions ---------------- *)

let rec parse_expr p = parse_assign p

and parse_assign p =
  let lhs = parse_cond p in
  if accept_punct p "=" then
    let rhs = parse_assign p in
    mk ~pos:lhs.pos (EAssign (lhs, rhs))
  else lhs

and parse_cond p =
  let c = parse_lor p in
  if accept_punct p "?" then begin
    let a = parse_expr p in
    expect_punct p ":";
    let b = parse_cond p in
    mk ~pos:c.pos (ECond (c, a, b))
  end
  else c

and parse_binlevel p ops sub =
  let rec go lhs =
    match tok p with
    | Lexer.PUNCT s when List.mem_assoc s ops ->
      next p;
      let rhs = sub p in
      go (mk ~pos:lhs.pos (EBin (List.assoc s ops, lhs, rhs)))
    | _ -> lhs
  in
  go (sub p)

and parse_lor p = parse_binlevel p [ "||", LOr ] parse_land
and parse_land p = parse_binlevel p [ "&&", LAnd ] parse_bor
and parse_bor p = parse_binlevel p [ "|", BOr ] parse_bxor
and parse_bxor p = parse_binlevel p [ "^", BXor ] parse_band
and parse_band p = parse_binlevel p [ "&", BAnd ] parse_eq
and parse_eq p = parse_binlevel p [ "==", Eq; "!=", Ne ] parse_rel
and parse_rel p = parse_binlevel p [ "<", Lt; "<=", Le; ">", Gt; ">=", Ge ] parse_shift
and parse_shift p = parse_binlevel p [ "<<", Shl; ">>", Shr ] parse_add
and parse_add p = parse_binlevel p [ "+", Add; "-", Sub ] parse_mul
and parse_mul p = parse_binlevel p [ "*", Mul; "/", Div; "%", Rem ] parse_unary

and parse_unary p =
  let pos = line p in
  match tok p with
  | Lexer.PUNCT "-" -> next p; mk ~pos (EUn (Neg, parse_unary p))
  | Lexer.PUNCT "!" -> next p; mk ~pos (EUn (Not, parse_unary p))
  | Lexer.PUNCT "~" -> next p; mk ~pos (EUn (BNot, parse_unary p))
  | Lexer.PUNCT "*" -> next p; mk ~pos (EDeref (parse_unary p))
  | Lexer.PUNCT "&" -> next p; mk ~pos (EAddr (parse_unary p))
  | Lexer.KW "sizeof" ->
    next p;
    expect_punct p "(";
    let ty = parse_abstract_type p in
    expect_punct p ")";
    mk ~pos (ESizeof ty)
  | Lexer.PUNCT "(" when (match peek p with
                          | Lexer.KW ("int" | "char" | "void" | "struct") -> true
                          | _ -> false) ->
    next p;
    let ty = parse_abstract_type p in
    expect_punct p ")";
    mk ~pos (ECast (ty, parse_unary p))
  | _ -> parse_postfix p

and parse_postfix p =
  let rec go e =
    match tok p with
    | Lexer.PUNCT "(" ->
      next p;
      let args =
        if accept_punct p ")" then []
        else begin
          let rec collect acc =
            let a = parse_assign p in
            if accept_punct p "," then collect (a :: acc)
            else begin
              expect_punct p ")";
              List.rev (a :: acc)
            end
          in
          collect []
        end
      in
      go (mk ~pos:e.pos (ECall (e, args)))
    | Lexer.PUNCT "[" ->
      next p;
      let i = parse_expr p in
      expect_punct p "]";
      go (mk ~pos:e.pos (EIndex (e, i)))
    | Lexer.PUNCT "." ->
      next p;
      let f = expect_id p in
      go (mk ~pos:e.pos (EField (e, f)))
    | Lexer.PUNCT "->" ->
      next p;
      let f = expect_id p in
      go (mk ~pos:e.pos (EArrow (e, f)))
    | _ -> e
  in
  go (parse_primary p)

and parse_primary p =
  let pos = line p in
  match tok p with
  | Lexer.INT n -> next p; mk ~pos (EInt n)
  | Lexer.CHARLIT c -> next p; mk ~pos (EChar c)
  | Lexer.STR s -> next p; mk ~pos (EStr s)
  | Lexer.ID s -> next p; mk ~pos (EId s)
  | Lexer.PUNCT "(" ->
    next p;
    let e = parse_expr p in
    expect_punct p ")";
    e
  | t -> error p "unexpected token '%s' in expression" (Lexer.token_to_string t)

(* ---------------- Statements ---------------- *)

let rec parse_stmt p =
  match tok p with
  | Lexer.PUNCT "{" ->
    next p;
    let body = parse_stmts p in
    expect_punct p "}";
    SBlock body
  | Lexer.KW "if" ->
    next p;
    expect_punct p "(";
    let c = parse_expr p in
    expect_punct p ")";
    let thn = parse_stmt_as_list p in
    let els =
      match tok p with
      | Lexer.KW "else" -> next p; parse_stmt_as_list p
      | _ -> []
    in
    SIf (c, thn, els)
  | Lexer.KW "while" ->
    next p;
    expect_punct p "(";
    let c = parse_expr p in
    expect_punct p ")";
    SWhile (c, parse_stmt_as_list p)
  | Lexer.KW "do" ->
    next p;
    let body = parse_stmt_as_list p in
    (match tok p with
     | Lexer.KW "while" -> next p
     | t -> error p "expected 'while' after do-body, found '%s'" (Lexer.token_to_string t));
    expect_punct p "(";
    let c = parse_expr p in
    expect_punct p ")";
    expect_punct p ";";
    SDoWhile (body, c)
  | Lexer.KW "for" ->
    next p;
    expect_punct p "(";
    let init =
      if accept_punct p ";" then None
      else if is_type_start p then begin
        let s = parse_decl_stmt p in
        Some s
      end
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Some (SExpr e)
      end
    in
    let cond = if accept_punct p ";" then None
      else begin
        let e = parse_expr p in
        expect_punct p ";";
        Some e
      end
    in
    let step =
      match tok p with
      | Lexer.PUNCT ")" -> next p; None
      | _ ->
        let e = parse_expr p in
        expect_punct p ")";
        Some e
    in
    SFor (init, cond, step, parse_stmt_as_list p)
  | Lexer.KW "return" ->
    let pos = line p in
    next p;
    if accept_punct p ";" then SReturn (None, pos)
    else begin
      let e = parse_expr p in
      expect_punct p ";";
      SReturn (Some e, pos)
    end
  | Lexer.KW "break" ->
    let pos = line p in
    next p; expect_punct p ";"; SBreak pos
  | Lexer.KW "continue" ->
    let pos = line p in
    next p; expect_punct p ";"; SContinue pos
  | Lexer.KW ("int" | "char" | "void" | "struct") -> parse_decl_stmt p
  | _ ->
    let e = parse_expr p in
    expect_punct p ";";
    SExpr e

(* decl-stmt := base declarator [= expr] (, '*'* ID arrays [= expr])* ';'
   A multi-variable declaration desugars to a block of single declarations. *)
and parse_decl_stmt p =
  let base = parse_base_type p in
  let name, ty = parse_declarator p base in
  let init = if accept_punct p "=" then Some (parse_assign p) else None in
  let decls = ref [ SDecl (ty, name, init) ] in
  while accept_punct p "," do
    let name, ty = parse_declarator p base in
    let init = if accept_punct p "=" then Some (parse_assign p) else None in
    decls := SDecl (ty, name, init) :: !decls
  done;
  expect_punct p ";";
  match List.rev !decls with
  | [ single ] -> single
  | many -> SSeq many

and parse_stmt_as_list p =
  match parse_stmt p with
  | SBlock l -> l
  | s -> [ s ]

and parse_stmts p =
  let rec go acc =
    match tok p with
    | Lexer.PUNCT "}" | Lexer.EOF -> List.rev acc
    | _ -> go (parse_stmt p :: acc)
  in
  go []

(* ---------------- Top level ---------------- *)

let parse_ginit p =
  let rec go () =
    match tok p with
    | Lexer.INT n -> next p; GInt n
    | Lexer.PUNCT "-" ->
      next p;
      (match tok p with
       | Lexer.INT n -> next p; GInt (-n)
       | t -> error p "expected integer after '-', found '%s'" (Lexer.token_to_string t))
    | Lexer.CHARLIT c -> next p; GInt (Char.code c)
    | Lexer.STR s -> next p; GStr s
    | Lexer.ID f -> next p; GFun f
    | Lexer.PUNCT "{" ->
      next p;
      if accept_punct p "}" then GList []
      else begin
        let rec items acc =
          let item = go () in
          if accept_punct p "," then items (item :: acc)
          else begin
            expect_punct p "}";
            GList (List.rev (item :: acc))
          end
        in
        items []
      end
    | t -> error p "bad global initializer: '%s'" (Lexer.token_to_string t)
  in
  go ()

let parse_params p =
  expect_punct p "(";
  if accept_punct p ")" then []
  else if tok p = Lexer.KW "void" && peek p = Lexer.PUNCT ")" then begin
    next p; next p; []
  end
  else begin
    let rec go acc =
      let base = parse_base_type p in
      let name, ty = parse_declarator p base in
      (* array parameters decay to pointers, as in C *)
      let ty = match ty with Ty.Arr (t, _) -> Ty.Ptr t | t -> t in
      if accept_punct p "," then go ((name, ty) :: acc)
      else begin
        expect_punct p ")";
        List.rev ((name, ty) :: acc)
      end
    in
    go []
  end

(* Uniform handling of top-level globals and function definitions; the
   base type may carry pointer stars (functions returning pointers). *)
let parse_global_or_func p =
  let pos = line p in
  let base = parse_base_type p in
  let base = parse_pointers p base in
  match tok p with
  | Lexer.PUNCT "(" ->
    (* global function pointer declaration with optional initializer *)
    let name, ty = parse_declarator p base in
    let init = if accept_punct p "=" then parse_ginit p else GNone in
    expect_punct p ";";
    TGlobal (ty, name, init)
  | _ ->
    let name = expect_id p in
    (match tok p with
     | Lexer.PUNCT "(" ->
       let params = parse_params p in
       expect_punct p "{";
       let body = parse_stmts p in
       expect_punct p "}";
       TFunc { fd_name = name; fd_params = params; fd_ret = base;
               fd_body = body; fd_pos = pos }
     | _ ->
       let ty = parse_array_suffix p base in
       let init = if accept_punct p "=" then parse_ginit p else GNone in
       expect_punct p ";";
       TGlobal (ty, name, init))

let rec parse_top p =
  let sensitive =
    match tok p with
    | Lexer.KW "sensitive" -> next p; true
    | _ -> false
  in
  match tok p with
  | Lexer.KW "struct" when (match peek p with Lexer.ID _ -> true | _ -> false) ->
    (* Could be a struct definition or a global of struct type. *)
    let save_pos = p.lx.Lexer.pos and save_line = p.lx.Lexer.line
    and save_tok = p.lx.Lexer.tok and save_tl = p.lx.Lexer.tok_line
    and save_peek = p.lx.Lexer.peeked in
    next p;
    let name = expect_id p in
    if accept_punct p ";" then
      (* forward declaration: harmless, struct defs are order-independent *)
      parse_top p
    else if accept_punct p "{" then begin
      let fields = ref [] in
      while not (accept_punct p "}") do
        let base = parse_base_type p in
        let fname, fty = parse_declarator p base in
        expect_punct p ";";
        fields := (fname, fty) :: !fields
      done;
      expect_punct p ";";
      TStruct (name, List.rev !fields, sensitive)
    end
    else begin
      (* rewind and parse as global declaration *)
      if sensitive then error p "'sensitive' only applies to struct definitions";
      p.lx.Lexer.pos <- save_pos;
      p.lx.Lexer.line <- save_line;
      p.lx.Lexer.tok <- save_tok;
      p.lx.Lexer.tok_line <- save_tl;
      p.lx.Lexer.peeked <- save_peek;
      parse_global_or_func p
    end
  | _ ->
    if sensitive then error p "'sensitive' only applies to struct definitions";
    parse_global_or_func p

(** Parse a whole MiniC translation unit. *)
let parse_program src =
  let p = { lx = Lexer.create src } in
  let rec go acc =
    match tok p with
    | Lexer.EOF -> { tops = List.rev acc }
    | _ -> go (parse_top p :: acc)
  in
  go []

(** Parse, raising [Failure] with a formatted message on error. *)
let parse_program_exn ?(name = "<input>") src =
  try parse_program src with
  | Parse_error (msg, l) -> failwith (Printf.sprintf "%s:%d: parse error: %s" name l msg)
  | Lexer.Lex_error (msg, l) -> failwith (Printf.sprintf "%s:%d: lex error: %s" name l msg)
