(** Executable operational semantics of Appendix A.

    The evaluator implements the CPI rules literally: a runtime environment
    E = (S, Mu, Ms) with regular and safe memories over the same addresses,
    safe values carrying bounds v(b,e), and the exact rule-by-rule
    behaviour for sensitive and regular types, including the
    universal-pointer fallback ("none" marker) rules and the aborts on
    accessing sensitive values through regular lvalues. *)

type value =
  | VSafe of int * int * int    (** v(b,e): value with bounds *)
  | VReg of int                 (** regular value *)

type outcome = Done | Abort of string | Out_of_memory

exception Stop of outcome

type run = {
  outcome : outcome;
  final_mu : (int, int) Hashtbl.t;   (** final regular memory *)
  checked_derefs : int;              (** sensitive accesses performed *)
  oob_slipped : int;                 (** completed sensitive accesses found
                                         outside their based-on object: the
                                         safety theorem says this is 0 *)
}

(** Run [p] under a sensitivity criterion.

    The default criterion is Fig. 7's; passing [fun _ -> true] makes every
    type sensitive, which degenerates CPI into full memory safety
    (SoftBound) — the tests exploit this to check the paper's claim that
    the CPI rules subsume the SoftBound rules on sensitive values. *)
val run : ?sensitive:(Syntax.pty -> bool) -> Syntax.program -> run
