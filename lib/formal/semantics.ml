(** Executable operational semantics of Appendix A.

    The evaluator implements the CPI rules literally: a runtime environment
    E = (S, Mu, Ms) with a regular memory and a safe memory over the same
    addresses, safe values carrying bounds v(b,e), and the exact
    rule-by-rule behaviour for sensitive and regular types — including the
    void*-holding-a-regular-value fallback rules and the aborts on
    accessing sensitive values through regular lvalues.

    The [sensitive] criterion is a parameter: passing Fig. 7's criterion
    gives CPI; passing [fun _ -> true] makes every location safe, which is
    exactly SoftBound's semantics (the paper's observation that CPI with
    an all-sensitive classification degenerates to full memory safety).
    The tests exercise both instantiations and the correctness-proof
    invariants. *)

open Syntax

type value =
  | VSafe of int * int * int    (* v(b,e): value with bounds *)
  | VReg of int                 (* regular value *)

type outcome = Done | Abort of string | Out_of_memory

exception Stop of outcome

type env = {
  structs : senv;
  sensitive : pty -> bool;
  var_map : (string * (aty * int)) list;    (* S: var -> type, address *)
  mu : (int, int) Hashtbl.t;                (* regular memory *)
  ms : (int, (int * int * int) option) Hashtbl.t;
     (* safe memory: Some (v,b,e) = safe value; None = the "none" marker;
        absent = never written *)
  funcs : (string * cmd) list;
  fn_addr : (string * int) list;            (* code addresses of functions *)
  mutable brk : int;
  limit : int;
  (* proof-checking oracle: every allocated object's extent *)
  objects : (int, int * int) Hashtbl.t;
  mutable sensitive_derefs : int;           (* checked accesses performed *)
  mutable oob_accesses : int;               (* would-be unsafe accesses that
                                               slipped through (must be 0) *)
}

let sensitive_atomic env = function
  | TInt -> false
  | TPtr p -> env.sensitive p

(* Table 5 memory operations. *)
let readu env l = match Hashtbl.find_opt env.mu l with Some v -> v | None -> 0
let writeu env l v = Hashtbl.replace env.mu l v

let reads env l = match Hashtbl.find_opt env.ms l with Some e -> e | None -> None
let writes_val env l v b e = Hashtbl.replace env.ms l (Some (v, b, e))
let writes_none env l = Hashtbl.replace env.ms l None

let malloc env n =
  let n = max n 1 in
  let l = env.brk in
  env.brk <- env.brk + n;
  if env.brk >= env.limit then raise (Stop Out_of_memory);
  Hashtbl.replace env.objects l (l, l + n);
  l

let size_of_aty _env (_ : aty) = 1

(* Record (for the proof oracle) that address [l] was accessed as part of
   the object [b,e); count out-of-object accesses that were NOT aborted. *)
let oracle_access env l b e =
  env.sensitive_derefs <- env.sensitive_derefs + 1;
  if l < b || l >= e then env.oob_accesses <- env.oob_accesses + 1

(* Atomic result type of a pointee, for dereferencing. *)
let pointee_atomic = function
  | PA a -> Some a
  | PFn | PVoid | PS _ -> None

(* ---------- lhs evaluation: (E, lhs) =>l location ---------- *)

(* Returns (address, type-of-object-at-address, location-is-safe). *)
let rec eval_lhs env (l : lhs) : int * aty * bool =
  match l with
  | Var x ->
    (match List.assoc_opt x env.var_map with
     | Some (ty, addr) -> (addr, ty, sensitive_atomic env ty)
     | None -> raise (Stop (Abort ("unbound variable " ^ x))))
  | Deref inner ->
    let addr, ty, loc_safe = eval_lhs env inner in
    (match ty with
     | TPtr p ->
       let result_ty =
         match pointee_atomic p with
         | Some a -> a
         | None -> raise (Stop (Abort "dereference of non-atomic pointee"))
       in
       deref env ~addr ~pointee:p ~loc_safe ~result_ty
     | TInt -> raise (Stop (Abort "dereference of int")))
  | Field (base, f) ->
    let addr, ty, _ = eval_lhs env base in
    (* only struct objects reached through pointers exist in this subset;
       a direct Field is resolved against the object's struct layout *)
    field_loc env addr ty f
  | Arrow (base, f) ->
    let addr, ty, loc_safe = eval_lhs env base in
    (match ty with
     | TPtr (PS s as p) ->
       (* load the struct pointer value, then address the field *)
       let obj_addr, _, _ =
         deref env ~addr ~pointee:p ~loc_safe ~result_ty:TInt
       in
       field_of_struct env s obj_addr f
     | _ -> raise (Stop (Abort "arrow through non-struct-pointer")))

(* Dereference: fetch the pointer value stored at [addr] and return the
   location it denotes, enforcing the safe/regular rules. *)
and deref env ~addr ~pointee ~loc_safe ~result_ty : int * aty * bool =
  let a_sens = env.sensitive pointee in
  if a_sens then begin
    if loc_safe then
      match reads env addr with
      | Some (l', b, e) ->
        (* sensitive a, safe location, safe value: bounds check *)
        if l' >= b && l' <= e - size_of_aty env result_ty then begin
          (* the access proceeds: the proof oracle verifies it really is
             within the based-on object *)
          oracle_access env l' b e;
          (l', result_ty, sensitive_atomic env result_ty)
        end
        else raise (Stop (Abort "bounds violation"))
      | None ->
        (* safe memory holds the none marker: the universal pointer holds a
           regular value; fall back to regular memory *)
        let l' = readu env addr in
        (l', result_ty, false)
    else
      (* sensitive type accessed through a regular lvalue: abort *)
      raise (Stop (Abort "sensitive dereference through regular lvalue"))
  end
  else begin
    let l' = readu env addr in
    (l', result_ty, false)
  end

and field_loc env addr ty f =
  match ty with
  | TPtr (PS s) -> field_of_struct env s addr f
  | _ -> raise (Stop (Abort "field access on non-struct"))

and field_of_struct env s obj_addr f =
  match List.assoc_opt s env.structs with
  | None -> raise (Stop (Abort ("unknown struct " ^ s)))
  | Some fields ->
    let rec go i = function
      | [] -> raise (Stop (Abort ("unknown field " ^ f)))
      | (name, fty) :: rest ->
        if name = f then (obj_addr + i, fty, sensitive_atomic env fty)
        else go (i + 1) rest
    in
    go 0 fields

(* ---------- rhs evaluation: (E, rhs) =>r value ---------- *)

let rec eval_rhs env (r : rhs) : value =
  match r with
  | Int i -> VReg i
  | AddrFn f ->
    (match List.assoc_opt f env.fn_addr with
     | Some l -> VSafe (l, l, l)       (* l(l,l), per the &f rule *)
     | None -> raise (Stop (Abort ("unknown function " ^ f))))
  | Malloc sz ->
    let n = match eval_rhs env sz with VSafe (v, _, _) | VReg v -> v in
    let l = malloc env n in
    VSafe (l, l, l + n)
  | AddrLhs lhs ->
    let addr, ty, _ = eval_lhs env lhs in
    VSafe (addr, addr, addr + size_of_aty env ty)
  | Add (a, b) ->
    let va = eval_rhs env a in
    let vb = eval_rhs env b in
    (match va, vb with
     | VSafe (v, lo, hi), (VReg w | VSafe (w, _, _)) -> VSafe (v + w, lo, hi)
     | VReg v, VSafe (w, lo, hi) -> VSafe (v + w, lo, hi)
     | VReg v, VReg w -> VReg (v + w))
  | Lhs lhs ->
    let addr, ty, loc_safe = eval_lhs env lhs in
    let a_sens = sensitive_atomic env ty in
    if a_sens then begin
      if loc_safe then
        match reads env addr with
        | Some (v, b, e) -> VSafe (v, b, e)
        | None -> VReg (readu env addr)
      else raise (Stop (Abort "sensitive load through regular lvalue"))
    end
    else VReg (readu env addr)
  | Cast (a', inner) ->
    let v = eval_rhs env inner in
    (match v, sensitive_atomic env a' with
     | VSafe _, true -> v                       (* safe -> sensitive: keep *)
     | VSafe (x, _, _), false -> VReg x         (* strip bounds *)
     | VReg x, _ -> VReg x)                     (* regular stays regular *)
  | Sizeof p -> VReg (size_of_pty env.structs p)

(* ---------- commands: (E, c) =>c result ---------- *)

let rec exec env ~depth (c : cmd) : unit =
  if depth < 0 then raise (Stop (Abort "call depth exceeded"));
  match c with
  | Skip -> ()
  | Seq (a, b) ->
    exec env ~depth a;
    exec env ~depth b
  | Assign (lhs, rhs) ->
    let v = eval_rhs env rhs in
    let addr, ty, loc_safe = eval_lhs env lhs in
    let a_sens = sensitive_atomic env ty in
    if a_sens then begin
      if loc_safe then
        match v with
        | VSafe (x, b, e) -> writes_val env addr x b e
        | VReg x ->
          (* regular value into a (universal) sensitive location *)
          writeu env addr x;
          writes_none env addr
      else raise (Stop (Abort "sensitive store through regular lvalue"))
    end
    else begin
      match v with
      | VSafe (x, _, _) | VReg x -> writeu env addr x
    end
  | CallFn f ->
    (match List.assoc_opt f env.funcs with
     | Some body -> exec env ~depth:(depth - 1) body
     | None -> raise (Stop (Abort ("unknown function " ^ f))))
  | CallPtr lhs ->
    (* indirect call: the loaded code pointer must be safe *)
    let v = eval_rhs env (Lhs lhs) in
    (match v with
     | VSafe (target, _, _) ->
       (match List.find_opt (fun (_, a) -> a = target) env.fn_addr with
        | Some (name, _) -> exec env ~depth:(depth - 1) (CallFn name)
        | None -> raise (Stop (Abort "code pointer does not decode")))
     | VReg _ -> raise (Stop (Abort "indirect call through regular value")))

(* ---------- top level ---------- *)

type run = {
  outcome : outcome;
  final_mu : (int, int) Hashtbl.t;
  checked_derefs : int;
  oob_slipped : int;        (* sensitive accesses outside their object *)
}

(** Run [p] under the given sensitivity criterion (default: Fig. 7). *)
let run ?sensitive (p : program) : run =
  let sensitive =
    match sensitive with
    | Some f -> f
    | None -> fun pty -> sensitive_pty p.structs pty
  in
  let var_map =
    List.mapi (fun i (x, ty) -> (x, (ty, 1000 + i))) p.vars
  in
  let fn_addr = List.mapi (fun i (f, _) -> (f, 900_000 + i)) p.funcs in
  let env =
    { structs = p.structs; sensitive; var_map;
      mu = Hashtbl.create 64; ms = Hashtbl.create 64;
      funcs = p.funcs; fn_addr; brk = 10_000; limit = 60_000;
      objects = Hashtbl.create 16; sensitive_derefs = 0; oob_accesses = 0 }
  in
  let outcome =
    try
      exec env ~depth:64 p.body;
      Done
    with Stop o -> o
  in
  { outcome; final_mu = env.mu; checked_derefs = env.sensitive_derefs;
    oob_slipped = env.oob_accesses }
