(** Syntax of the C subset of Appendix A (Fig. 6).

    Atomic types a ::= int | p*
    Pointer types p ::= a | s | f | void
    LHS  ::= x | *lhs | lhs.id | lhs->id
    RHS  ::= i | &f | rhs + rhs | lhs | &lhs | (a) rhs | sizeof(p) | malloc(rhs)
    Cmd  ::= c;c | lhs = rhs | direct call | indirect call *)

type aty =
  | TInt
  | TPtr of pty

and pty =
  | PA of aty              (* pointer to atomic *)
  | PS of string           (* pointer to struct s *)
  | PFn                    (* pointer to function *)
  | PVoid                  (* void* *)

(** Struct definitions: name -> ordered (field, atomic type) list. *)
type senv = (string * (string * aty) list) list

type lhs =
  | Var of string
  | Deref of lhs           (* *lhs *)
  | Field of lhs * string  (* lhs.id *)
  | Arrow of lhs * string  (* lhs->id *)

type rhs =
  | Int of int
  | AddrFn of string       (* &f *)
  | Add of rhs * rhs
  | Lhs of lhs
  | AddrLhs of lhs         (* &lhs *)
  | Cast of aty * rhs
  | Sizeof of pty
  | Malloc of rhs

type cmd =
  | Seq of cmd * cmd
  | Assign of lhs * rhs
  | CallFn of string       (* f() *)
  | CallPtr of lhs         (* call through a function pointer lvalue *)
  | Skip

(** A program: struct defs, typed globals, named functions (bodies in the
    same command language), and a main command. *)
type program = {
  structs : senv;
  vars : (string * aty) list;
  funcs : (string * cmd) list;
  body : cmd;
}

(** The [sensitive] criterion of Fig. 7. *)
let rec sensitive_aty structs = function
  | TInt -> false
  | TPtr p -> sensitive_pty structs p

and sensitive_pty structs = function
  | PVoid -> true
  | PFn -> true
  | PA a -> sensitive_aty structs a
  | PS s ->
    (match List.assoc_opt s structs with
     | Some fields -> List.exists (fun (_, ft) -> sensitive_aty structs ft) fields
     | None -> false)

let rec string_of_aty = function
  | TInt -> "int"
  | TPtr p -> string_of_pty p ^ "*"

and string_of_pty = function
  | PA a -> string_of_aty a
  | PS s -> "struct " ^ s
  | PFn -> "fn"
  | PVoid -> "void"

(** Word size of the pointee type [p] (structs = field count; everything
    atomic = 1), used by sizeof and malloc layouts. *)
let size_of_pty structs = function
  | PA _ | PFn | PVoid -> 1
  | PS s ->
    (match List.assoc_opt s structs with
     | Some fields -> max 1 (List.length fields)
     | None -> 1)
