(** Static instrumentation statistics (the paper's Table 2 columns). *)

type t = {
  funcs_total : int;
  funcs_unsafe_stack : int;   (** functions needing an unsafe stack frame *)
  mem_ops_total : int;
  mem_ops_instrumented : int; (** loads/stores routed off the regular path *)
  mem_ops_checked : int;      (** loads/stores with a runtime bounds check *)
  indirect_calls : int;
  checks_elided : int;        (** checks removed by redundant-check elision *)
  mem_ops_demoted : int;      (** accesses demoted by the points-to refinement *)
}

val collect : Levee_ir.Prog.t -> t

(** FNUStack: fraction of functions that need an unsafe stack frame. *)
val fnustack : t -> float

(** MO: fraction of memory operations instrumented by the active pass
    (MOCPS / MOCPI depending on which pass produced the program). *)
val mo_instrumented : t -> float
