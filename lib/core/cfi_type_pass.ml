(** Per-signature ("type") CFI — the middle point of Burow et al.'s
    precision spectrum.

    Coarse CFI ([Cfi_pass]) admits any function entry as an indirect-call
    target; the precise end (CPI) admits only pointers with genuine
    provenance. This pass computes, for each indirect call site, a static
    set of *allowed named functions*: the signature class (address-taken
    functions whose type equals the call's function type, with the same
    arity fallback the points-to analysis uses for call-graph linking),
    widened by the Andersen callee set when the analysis can name the
    operand's code sources. The union keeps the check transparent for
    well-typed programs — a legitimate target is either
    signature-compatible or visible to the points-to analysis — while
    still refusing any function outside both, which is how cfi-type
    blocks the cross-signature hijacks coarse CFI admits.

    The machine enforces membership on top of the coarse entry check when
    a call site carries a set; sites with no usable information keep
    [cfi_set = None] and degrade to coarse behaviour. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module An = Levee_analysis

let fn_ty (g : Prog.func) = Ty.Fn (List.map snd g.Prog.params, g.Prog.ret_ty)

(** Mark indirect calls as CFI-checked and attach per-signature target
    sets. Returns the number of call sites that received a set. *)
let run (prog : Prog.t) : int =
  Cfi_pass.run prog;
  ignore (Prog.compute_address_taken prog);
  let targets = ref [] in
  Prog.iter_funcs prog (fun fn ->
      if fn.Prog.address_taken then targets := fn :: !targets);
  let targets = List.rev !targets in
  let pt = An.Pointsto.analyze prog in
  let count = ref 0 in
  Prog.iter_funcs prog (fun fn ->
      Prog.iter_instrs fn (fun i ->
          match i with
          | I.Call ({ callee = I.Indirect o; fty; args; _ } as c) ->
            let sig_class =
              let compat =
                List.filter (fun g -> Ty.equal fty (fn_ty g)) targets
              in
              let compat =
                if compat = [] then
                  List.filter
                    (fun (g : Prog.func) ->
                      List.length g.Prog.params = List.length args)
                    targets
                else compat
              in
              List.map (fun (g : Prog.func) -> g.Prog.fname) compat
            in
            let names =
              match An.Pointsto.callee_targets pt ~fname:fn.Prog.fname o with
              | None -> sig_class
              | Some andersen -> List.sort_uniq compare (sig_class @ andersen)
            in
            (match names with
             | [] -> () (* no information: coarse check only *)
             | _ ->
               c.cfi_set <- Some (List.sort_uniq compare names);
               incr count)
          | _ -> ()))
  ;
  !count
