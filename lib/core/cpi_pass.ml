(** The CPI instrumentation pass (Sections 3.2.1 and 3.2.2).

    Rewrites every memory operation on sensitive pointers to go through the
    safe pointer store ([SafeFull]; [SafeDebug] in debug mode) and marks
    every dereference through a sensitive pointer as runtime-checked. The
    sensitive set is the type-based over-approximation of Fig. 7, refined
    by the char* string heuristic and augmented by the unsafe-cast
    data-flow analysis; programmer-annotated structs are protected
    field-by-field (the struct-ucred use case). libc memory-manipulation
    calls whose arguments cannot be proven non-sensitive are replaced with
    their safe-store-aware variants.

    When [refine] is set (the default) the interprocedural points-to
    analysis additionally demotes sensitive accesses that provably never
    reach a code pointer ([Pointsto.refine_cpi]); [run] returns the
    number of accesses demoted this way. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module An = Levee_analysis

(* Registers that (locally) address into a programmer-annotated struct. *)
let annotated_addr_regs annotated (fn : Prog.func) =
  let marked = Hashtbl.create 8 in
  let is_annot s = List.mem s annotated in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Alloca { dst; ty = Ty.Struct s; _ } when is_annot s -> Hashtbl.replace marked dst ()
      | I.Gep { dst; base_ty = Ty.Struct s; _ } when is_annot s ->
        Hashtbl.replace marked dst ()
      | I.Gep { dst; base; _ } | I.Cast { dst; v = base; _ } ->
        (match base with
         | I.Reg r when Hashtbl.mem marked r -> Hashtbl.replace marked dst ()
         | _ -> ())
      | _ -> ());
  marked

(* Can we prove that the memory reachable from operand [o] holds no
   sensitive values? Used to keep plain memcpy/memset where possible.
   [summaries] holds the interprocedural parameter facts below. *)
let provably_non_sensitive ctx ud ~summaries (prog : Prog.t) o =
  match An.Usedef.origin ud o with
  | An.Usedef.From_alloca ty -> not (An.Sensitivity.is_sensitive ctx ty)
  | An.Usedef.From_global g ->
    (match Prog.find_global prog g with
     | Some { Prog.gty; _ } -> not (An.Sensitivity.is_sensitive ctx gty)
     | None -> false)
  | An.Usedef.From_const -> true
  | An.Usedef.From_param i ->
    (match Hashtbl.find_opt summaries ud.An.Usedef.fn.Prog.fname with
     | Some flags when i < Array.length flags -> flags.(i)
     | Some _ | None -> false)
  | An.Usedef.From_fun _ | An.Usedef.From_malloc | An.Usedef.From_load _
  | An.Usedef.From_call | An.Usedef.Unknown -> false

(* Interprocedural refinement of Section 3.2.2's memset/memcpy handling:
   clang-style "real type of the argument before the cast to void*". A
   pointer parameter is non-sensitive when every direct call site passes a
   provably non-sensitive pointer; address-taken functions may be called
   from anywhere, so their parameters stay unknown. Iterated to a (downward)
   fixpoint. *)
let param_summaries ctx (prog : Prog.t) =
  let summaries : (string, bool array) Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      let flags =
        Array.of_list
          (List.map
             (fun (_, ty) ->
               (match ty with Ty.Ptr _ -> true | _ -> false)
               && not fn.Prog.address_taken)
             fn.Prog.params)
      in
      Hashtbl.replace summaries fn.Prog.fname flags);
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 4 do
    changed := false;
    incr rounds;
    Prog.iter_funcs prog (fun fn ->
        let ud = An.Usedef.build fn in
        Prog.iter_instrs fn (fun i ->
            match i with
            | I.Call { callee = I.Direct f; args; _ } ->
              (match Hashtbl.find_opt summaries f with
               | Some flags ->
                 List.iteri
                   (fun k arg ->
                     if k < Array.length flags && flags.(k)
                        && not (provably_non_sensitive ctx ud ~summaries prog arg)
                     then begin
                       flags.(k) <- false;
                       changed := true
                     end)
                   args
               | None -> ())
            | _ -> ()))
  done;
  summaries

(* A char access is a universal-pointer dereference only when its address
   was loaded as a (non-demoted) char*; direct indexing into char arrays is
   based on the array and needs no check. *)
let char_deref_needs_check ud fn demoted addr =
  match An.Usedef.origin ud addr with
  | An.Usedef.From_load pos ->
    let b = fn.Prog.blocks.(pos.An.Usedef.block) in
    (match b.Prog.instrs.(pos.An.Usedef.idx) with
     | I.Load { ty = Ty.Ptr Ty.Char; _ } ->
       not (Hashtbl.mem demoted (pos.An.Usedef.block, pos.An.Usedef.idx))
     | I.Load { ty = Ty.Ptr Ty.Void; _ } -> true
     | _ -> false)
  | _ -> false

(* Registers holding the address of a proven-safe stack slot: direct
   accesses through them need no instrumentation — the slot lives in the
   isolated safe region and the machine preserves metadata there, exactly
   as a register-allocated local would behave after mem2reg. *)
let safe_slot_regs (fn : Prog.func) =
  let t = Hashtbl.create 16 in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Alloca { dst; slot = I.SafeSlot; _ } -> Hashtbl.replace t dst ()
      | _ -> ());
  t

(* Per-function analysis tables, computed up front so the points-to
   refinement can consult them when deciding which positions must be kept
   instrumented and which are already outside the instrumented set. *)
type fninfo = {
  fi_fn : Prog.func;
  fi_ud : An.Usedef.t;
  fi_demoted : (int * int, unit) Hashtbl.t; (* char* heuristic demotions *)
  fi_forced : (int * int, unit) Hashtbl.t;  (* Castflow-forced loads *)
  fi_annot : (int, unit) Hashtbl.t;         (* annotated-struct addr regs *)
  fi_safe : (int, unit) Hashtbl.t;          (* safe-slot addr regs *)
}

let reg_in tbl = function
  | I.Reg r -> Hashtbl.mem tbl r
  | I.Imm _ | I.Glob _ | I.Fun _ | I.Nullp -> false

(* Address operand of the access at [pos], if [pos] is an access. *)
let access_addr (fi : fninfo) (blk, idx) =
  if blk < 0 || blk >= Array.length fi.fi_fn.Prog.blocks then None
  else
    let b = fi.fi_fn.Prog.blocks.(blk) in
    if idx < 0 || idx >= Array.length b.Prog.instrs then None
    else
      match b.Prog.instrs.(idx) with
      | I.Load { addr; _ } | I.Store { addr; _ } -> Some addr
      | _ -> None

let run ?(debug = false) ?(refine = true) ~annotated (prog : Prog.t) : int =
  let ctx = An.Sensitivity.create prog.Prog.tenv ~annotated in
  let safe_where = if debug then I.SafeDebug else I.SafeFull in
  let demoted_map = An.Strheur.demoted prog in
  let summaries = param_summaries ctx prog in
  let infos : (string, fninfo) Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace infos fn.Prog.fname
        { fi_fn = fn;
          fi_ud = An.Usedef.build fn;
          fi_demoted = An.Strheur.demoted_positions_in demoted_map fn;
          fi_forced = An.Castflow.forced_load_positions ctx fn;
          fi_annot = annotated_addr_regs annotated fn;
          fi_safe = safe_slot_regs fn });
  (* Points-to refinement: demote type-rule-sensitive accesses whose
     points-to sets provably never reach a code pointer. Merged into the
     per-function demoted tables so the main loop below treats them
     exactly like char*-heuristic demotions. *)
  let refined_count =
    if not refine then 0
    else begin
      let pt = An.Pointsto.analyze prog in
      let keep fname pos =
        match Hashtbl.find_opt infos fname with
        | None -> true
        | Some fi ->
          Hashtbl.mem fi.fi_forced pos
          || (match access_addr fi pos with
              | Some a -> reg_in fi.fi_annot a
              | None -> true)
      in
      let skip fname pos =
        match Hashtbl.find_opt infos fname with
        | None -> false
        | Some fi ->
          Hashtbl.mem fi.fi_demoted pos
          || (match access_addr fi pos with
              | Some a -> reg_in fi.fi_safe a
              | None -> false)
      in
      let refined = An.Pointsto.refine_cpi pt ~ctx ~keep ~skip in
      Hashtbl.iter
        (fun (fname, blk, idx) () ->
          match Hashtbl.find_opt infos fname with
          | Some fi -> Hashtbl.replace fi.fi_demoted (blk, idx) ()
          | None -> ())
        refined;
      Hashtbl.length refined
    end
  in
  Prog.iter_funcs prog (fun fn ->
      let fi = Hashtbl.find infos fn.Prog.fname in
      let demoted = fi.fi_demoted in
      let forced = fi.fi_forced in
      let addr_annotated o = reg_in fi.fi_annot o in
      let ud = fi.fi_ud in
      let on_safe_slot o = reg_in fi.fi_safe o in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx (i : I.instr) ->
              let here = (b.Prog.bid, idx) in
              match i with
              | I.Load ({ ty; addr; _ } as l) when not (on_safe_slot addr) ->
                let dem = Hashtbl.mem demoted here in
                let sens =
                  (An.Sensitivity.is_sensitive ctx ty && not dem)
                  || Hashtbl.mem forced here
                in
                if sens then l.where <- safe_where
                else if addr_annotated addr then l.where <- I.SafeData;
                let needs_check =
                  match ty with
                  | Ty.Char -> char_deref_needs_check ud fn demoted addr
                  | _ -> An.Sensitivity.deref_needs_check ctx ty && not dem
                in
                if needs_check || addr_annotated addr then l.checked <- true
              | I.Store ({ ty; addr; _ } as s) when not (on_safe_slot addr) ->
                let dem = Hashtbl.mem demoted here in
                let sens = An.Sensitivity.is_sensitive ctx ty && not dem in
                if sens then s.where <- safe_where
                else if addr_annotated addr then s.where <- I.SafeData;
                let needs_check =
                  match ty with
                  | Ty.Char -> char_deref_needs_check ud fn demoted addr
                  | _ -> An.Sensitivity.deref_needs_check ctx ty && not dem
                in
                if needs_check || addr_annotated addr then s.checked <- true
              | I.Intrin { dst; op = I.I_memcpy; args = [ d; s; n ] } ->
                if not (provably_non_sensitive ctx ud ~summaries prog d
                        && provably_non_sensitive ctx ud ~summaries prog s)
                then
                  b.Prog.instrs.(idx) <-
                    I.Intrin { dst; op = I.I_cpi_memcpy; args = [ d; s; n ] }
              | I.Intrin { dst; op = I.I_memset; args = [ d; x; n ] } ->
                if not (provably_non_sensitive ctx ud ~summaries prog d) then
                  b.Prog.instrs.(idx) <-
                    I.Intrin { dst; op = I.I_cpi_memset; args = [ d; x; n ] }
              | _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  refined_count
