(** Static instrumentation statistics, reproducing the three columns of
    the paper's Table 2: FNUStack (fraction of functions that need an
    unsafe stack frame), and MO (fraction of memory operations
    instrumented) for the active pass. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

type t = {
  funcs_total : int;
  funcs_unsafe_stack : int;
  mem_ops_total : int;
  mem_ops_instrumented : int;
  mem_ops_checked : int;
  indirect_calls : int;
  checks_elided : int;
  mem_ops_demoted : int;
}

let collect (prog : Prog.t) : t =
  let funcs_total = ref 0 and funcs_unsafe = ref 0 in
  let mem_total = ref 0 and mem_instr = ref 0 and mem_checked = ref 0 in
  let icalls = ref 0 in
  Prog.iter_funcs prog (fun fn ->
      incr funcs_total;
      let unsafe = ref false in
      Prog.iter_instrs fn (fun i ->
          match i with
          | I.Alloca { slot = I.UnsafeSlot; _ } -> unsafe := true
          | I.Load { where; checked; _ } | I.Store { where; checked; _ } ->
            incr mem_total;
            if where <> I.Regular then incr mem_instr;
            if checked then incr mem_checked
          | I.Call { callee = I.Indirect _; _ } -> incr icalls
          | _ -> ());
      if !unsafe then incr funcs_unsafe);
  { funcs_total = !funcs_total;
    funcs_unsafe_stack = !funcs_unsafe;
    mem_ops_total = !mem_total;
    mem_ops_instrumented = !mem_instr;
    mem_ops_checked = !mem_checked;
    indirect_calls = !icalls;
    (* filled in by the pipeline, which knows what the passes did *)
    checks_elided = 0;
    mem_ops_demoted = 0 }

let fraction num den = if den = 0 then 0.0 else float_of_int num /. float_of_int den

(** FNUStack column of Table 2. *)
let fnustack t = fraction t.funcs_unsafe_stack t.funcs_total

(** MO column of Table 2 (for whichever pass produced the program). *)
let mo_instrumented t = fraction t.mem_ops_instrumented t.mem_ops_total
