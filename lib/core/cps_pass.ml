(** The CPS instrumentation pass (Section 3.3).

    Code-pointer separation protects only code pointers: their loads and
    stores go through the safe pointer store with no bounds or temporal
    metadata ([SafeValue]). Pointers used to access code pointers
    indirectly remain uninstrumented, and no dereference checks are added —
    this is the entire difference from CPI, and the source of its lower
    overhead. Universal pointers may carry code pointers at runtime, so
    their memory operations are routed through the store as well (the
    runtime falls back to the regular region when no protected value is
    present); the char* heuristic prunes string pointers. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module An = Levee_analysis

let cps_instrumented ty =
  match ty with
  | Ty.Ptr (Ty.Fn _) -> true
  | Ty.Ptr Ty.Void | Ty.Ptr Ty.Char -> true
  | _ -> false

(* See [Cpi_pass.safe_slot_regs]: direct accesses to proven-safe stack
   slots need no instrumentation. *)
let safe_slot_regs (fn : Prog.func) =
  let t = Hashtbl.create 16 in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Alloca { dst; slot = I.SafeSlot; _ } -> Hashtbl.replace t dst ()
      | _ -> ());
  t

(* Address operand of the access at [pos] of [fn], if it is an access. *)
let access_addr (fn : Prog.func) (blk, idx) =
  if blk < 0 || blk >= Array.length fn.Prog.blocks then None
  else
    let b = fn.Prog.blocks.(blk) in
    if idx < 0 || idx >= Array.length b.Prog.instrs then None
    else
      match b.Prog.instrs.(idx) with
      | I.Load { addr; _ } | I.Store { addr; _ } -> Some addr
      | _ -> None

(** Returns the number of accesses demoted by the points-to refinement
    ([Pointsto.refine_cps]): instrumented-type accesses whose values
    provably never hold a code pointer stay on the regular path. *)
let run ?(refine = true) (prog : Prog.t) : int =
  let demoted_map = An.Strheur.demoted prog in
  let tables : (string, Prog.func * (int * int, unit) Hashtbl.t * (int, unit) Hashtbl.t)
      Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace tables fn.Prog.fname
        (fn, An.Strheur.demoted_positions_in demoted_map fn, safe_slot_regs fn));
  let refined_count =
    if not refine then 0
    else begin
      let pt = An.Pointsto.analyze prog in
      let skip fname pos =
        match Hashtbl.find_opt tables fname with
        | None -> false
        | Some (fn, demoted, safe_slots) ->
          Hashtbl.mem demoted pos
          || (match access_addr fn pos with
              | Some (I.Reg r) -> Hashtbl.mem safe_slots r
              | Some _ | None -> false)
      in
      let refined = An.Pointsto.refine_cps pt ~instrumented:cps_instrumented ~skip in
      Hashtbl.iter
        (fun (fname, blk, idx) () ->
          match Hashtbl.find_opt tables fname with
          | Some (_, demoted, _) -> Hashtbl.replace demoted (blk, idx) ()
          | None -> ())
        refined;
      Hashtbl.length refined
    end
  in
  Prog.iter_funcs prog (fun fn ->
      let _, demoted, safe_slots = Hashtbl.find tables fn.Prog.fname in
      let on_safe_slot = function
        | I.Reg r -> Hashtbl.mem safe_slots r
        | I.Imm _ | I.Glob _ | I.Fun _ | I.Nullp -> false
      in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx (i : I.instr) ->
              let dem () = Hashtbl.mem demoted (b.Prog.bid, idx) in
              match i with
              | I.Load ({ ty; addr; _ } as l)
                when cps_instrumented ty && not (dem ()) && not (on_safe_slot addr) ->
                l.where <- I.SafeValue
              | I.Store ({ ty; addr; _ } as s)
                when cps_instrumented ty && not (dem ()) && not (on_safe_slot addr) ->
                s.where <- I.SafeValue
              | _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  refined_count
