(** The cpi-crypt instrumentation pass: in-place pointer encryption.

    LIPPEN / CryptSan / PAC-style protection keeps sensitive pointers in
    ordinary memory as ciphertext under a per-run key instead of moving
    them to a safe region. The pass routes the same sensitive-access set
    as CPI — the Fig. 7 type rule, minus the char* string-heuristic
    demotions and the points-to demotions, plus the Castflow-forced loads
    and annotated-struct paths — through the [Crypt] layout; the machine
    folds a keyed encrypt/decrypt into each such access.

    Differences from [Cpi_pass], all consequences of having no safe
    region:

    - No dereference checks are inserted: the scheme carries no bounds or
      temporal metadata — integrity comes from the cipher alone.
    - Plain [memcpy]/[memset] are left untouched: a value cipher (keyed
      on the run, not the address) moves ciphertext correctly under plain
      word copies, so the safe-store-aware variants are unnecessary and
      would charge phantom safe-store costs.
    - Proven-safe stack slots are NOT skipped: there is no safe stack to
      host them, so local sensitive slots must hold ciphertext or an
      in-frame overwrite would hijack them.
    - The pass reports which global initializer cells must be
      re-encrypted after the loader's plaintext image write (sensitive
      cells of globals with non-zero pointer initializers); the
      interpreter applies the mask at [create] time once the per-run key
      exists. Globals with such initializers are pinned as never-demoted
      so ciphertext routing stays consistent with the startup mask.

    Shares the demotion machinery with CPI ([Strheur] +
    [Pointsto.refine_cpi]); demotion is consistent per object, which is
    exactly the property a tagless in-place cipher needs — every access
    that can reach a ciphertext cell must itself be crypt-routed. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module An = Levee_analysis

(* Flattened per-word cell types of a global's layout (the IR is
   word-addressed: every scalar is exactly one word). *)
let word_types tenv (ty : Ty.t) : Ty.t array =
  let out = ref [] in
  let rec go t =
    match t with
    | Ty.Struct s -> List.iter (fun (_, ft) -> go ft) (Ty.struct_fields tenv s)
    | Ty.Arr (elt, n) ->
      for _ = 1 to n do
        go elt
      done
    | Ty.Void | Ty.Int | Ty.Char | Ty.Ptr _ | Ty.Fn _ -> out := t :: !out
  in
  go ty;
  Array.of_list (List.rev !out)

(* Globals whose initializers put a non-zero value into a sensitive cell:
   the loader writes those plaintext, so the machine must re-encrypt them
   before the first crypt-routed load — and the pass must never demote
   accesses that may reach them. Zero-valued sensitive cells need nothing
   (zero is a fixed point of the cipher). *)
let crypt_globals ctx (prog : Prog.t) : (string * bool array) list =
  List.filter_map
    (fun (g : Prog.global) ->
      let mask =
        Array.map
          (fun t -> An.Sensitivity.is_sensitive ctx t)
          (word_types prog.Prog.tenv g.Prog.gty)
      in
      let hot = ref false in
      Array.iteri
        (fun i cell ->
          if i < Array.length mask && mask.(i) then
            match cell with
            | Prog.Cint 0 -> ()
            | Prog.Cint _ | Prog.Cfun _ | Prog.Cglob _ -> hot := true)
        g.Prog.init;
      if !hot then Some (g.Prog.gname, mask) else None)
    prog.Prog.globals

(** Mark sensitive accesses as [Crypt] and compute the global re-encryption
    masks. Returns [(demoted, crypt_cells)]: the number of accesses the
    points-to refinement demoted, and the per-global masks for
    [Config.crypt_cells]. *)
let run ?(refine = true) ~annotated (prog : Prog.t) :
    int * (string * bool array) list =
  let ctx = An.Sensitivity.create prog.Prog.tenv ~annotated in
  let demoted_map = An.Strheur.demoted prog in
  let infos : (string, Cpi_pass.fninfo) Hashtbl.t = Hashtbl.create 16 in
  Prog.iter_funcs prog (fun fn ->
      Hashtbl.replace infos fn.Prog.fname
        { Cpi_pass.fi_fn = fn;
          fi_ud = An.Usedef.build fn;
          fi_demoted = An.Strheur.demoted_positions_in demoted_map fn;
          fi_forced = An.Castflow.forced_load_positions ctx fn;
          fi_annot = Cpi_pass.annotated_addr_regs annotated fn;
          (* no safe stack: nothing to skip *)
          fi_safe = Hashtbl.create 1 })
  ;
  let cells = crypt_globals ctx prog in
  let pinned = List.map fst cells in
  let refined_count =
    if not refine then 0
    else begin
      let pt = An.Pointsto.analyze prog in
      let keep fname pos =
        match Hashtbl.find_opt infos fname with
        | None -> true
        | Some fi ->
          Hashtbl.mem fi.Cpi_pass.fi_forced pos
          || (match Cpi_pass.access_addr fi pos with
              | None -> true
              | Some a ->
                Cpi_pass.reg_in fi.Cpi_pass.fi_annot a
                (* never demote an access that may reach a global whose
                   initializer cells are encrypted at startup *)
                || (pinned <> []
                    && List.exists
                         (function
                           | An.Pointsto.O_global g -> List.mem g pinned
                           | _ -> false)
                         (An.Pointsto.points_to pt ~fname a)))
      in
      let skip fname pos =
        match Hashtbl.find_opt infos fname with
        | None -> false
        | Some fi -> Hashtbl.mem fi.Cpi_pass.fi_demoted pos
      in
      let refined = An.Pointsto.refine_cpi pt ~ctx ~keep ~skip in
      Hashtbl.iter
        (fun (fname, blk, idx) () ->
          match Hashtbl.find_opt infos fname with
          | Some fi -> Hashtbl.replace fi.Cpi_pass.fi_demoted (blk, idx) ()
          | None -> ())
        refined;
      Hashtbl.length refined
    end
  in
  Prog.iter_funcs prog (fun fn ->
      let fi = Hashtbl.find infos fn.Prog.fname in
      let demoted = fi.Cpi_pass.fi_demoted in
      let forced = fi.Cpi_pass.fi_forced in
      let addr_annotated o = Cpi_pass.reg_in fi.Cpi_pass.fi_annot o in
      Array.iter
        (fun (b : Prog.block) ->
          Array.iteri
            (fun idx (i : I.instr) ->
              let here = (b.Prog.bid, idx) in
              match i with
              | I.Load ({ ty; addr; _ } as l) ->
                let dem = Hashtbl.mem demoted here in
                let sens =
                  (An.Sensitivity.is_sensitive ctx ty && not dem)
                  || Hashtbl.mem forced here
                in
                if sens || addr_annotated addr then l.where <- I.Crypt
              | I.Store ({ ty; addr; _ } as s) ->
                let dem = Hashtbl.mem demoted here in
                let sens = An.Sensitivity.is_sensitive ctx ty && not dem in
                if sens || addr_annotated addr then s.where <- I.Crypt
              | _ -> ())
            b.Prog.instrs)
        fn.Prog.blocks);
  (refined_count, cells)
