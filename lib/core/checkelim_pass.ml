(** Redundant-check elision (the Monniaux-style justified optimisation).

    A CPI dereference check [check_deref a ma] is a pure function of the
    address register's value, its based-on metadata and the temporal
    liveness of the metadata's allocation id. If on *every* path to a
    checked access an equivalent check — same symbolic address value —
    has already executed and passed, re-executing it must pass again, so
    the later check can be dropped without changing any observable
    behaviour (a check that would trap stops execution and the dominated
    position is never reached).

    "Equivalent" is decided by symbolic address values: trees over
    allocas, parameters, globals, immediates, loads ([S_mem]) and
    deterministic arithmetic. Cast metadata propagation is transparent,
    and [Bin]/[Gep] metadata propagation is a deterministic function of
    the operand values and metadata, so equal symbolic trees evaluate to
    equal (value, metadata) pairs — provided the memory cells a sym reads
    through ([S_mem]) are unchanged. Availability facts are therefore
    killed conservatively:

    - any store or memory-writing intrinsic kills facts that read memory;
    - any call (may free, changing temporal liveness) and [I_free] kill
      every fact;
    - re-executing an alloca (fresh slot address) kills facts rooted at it;
    - a fact that reads memory is generated or consumed only where its
      supporting loads are locally fresh: same block, no intervening
      kill — so the register chain provably still mirrors memory;
    - checked stores generate only memory-free facts (their own write may
      alias what a memory-reading sym depends on);
    - functions that call [setjmp] are skipped entirely ([longjmp] can
      re-enter them mid-function, invalidating the path argument).

    Every elision is recorded as a {!Levee_ir.Verify.elision_cert} and
    re-validated by [Verify.check_elision], an independent replay of the
    same argument living next to the structural verifier. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module Verify = Levee_ir.Verify
module An = Levee_analysis

type sym =
  | S_imm of int
  | S_null
  | S_glob of string
  | S_fun of string
  | S_alloca of int (* alloca dst register: unique per site *)
  | S_param of int
  | S_mem of sym (* the value currently stored at address [sym] *)
  | S_bin of I.binop * sym * sym
  | S_cmp of I.cmpop * sym * sym
  | S_gep of sym * step list

and step = St_field of int * int | St_index of Ty.t * sym

(* Intrinsics that neither write program-visible memory nor free: they
   cannot invalidate an availability fact. *)
let benign_intrin (op : I.intrin) =
  match op with
  | I.I_strlen | I.I_strcmp | I.I_print_int | I.I_print_str | I.I_checksum
  | I.I_read_int | I.I_malloc | I.I_exit | I.I_abort -> true
  | I.I_free | I.I_memcpy | I.I_memset | I.I_strcpy | I.I_cpi_memcpy
  | I.I_cpi_memset | I.I_read_input | I.I_setjmp | I.I_longjmp | I.I_system
  | I.I_thread_spawn | I.I_thread_join | I.I_mutex_lock | I.I_mutex_unlock
  | I.I_atomic_add ->
    false

(* Does executing this instruction invalidate every fact (call / free) or
   every memory-reading fact (store)? *)
type effect = Eff_none | Eff_kill_mem | Eff_kill_all

let effect_of (i : I.instr) =
  match i with
  | I.Store _ -> Eff_kill_mem
  | I.Call _ -> Eff_kill_all
  | I.Intrin { op; _ } -> if benign_intrin op then Eff_none else Eff_kill_all
  | I.Alloca _ | I.Bin _ | I.Cmp _ | I.Load _ | I.Gep _ | I.Cast _ -> Eff_none

(* ---------- symbolic addresses ---------- *)

type syminfo = {
  s_sym : sym;
  s_mem : bool; (* reads memory (contains S_mem) *)
  s_allocas : int list; (* alloca registers the sym is rooted at *)
  s_support : An.Usedef.pos list; (* positions of contributing loads *)
}

(* Per-function builder: symbolic values for single-definition registers,
   with the supporting load positions recorded so freshness can be
   checked at each use site. *)
let build_syms (fn : Prog.func) =
  let ndefs = Array.make fn.Prog.nregs 0 in
  let defs = Hashtbl.create 64 in
  Array.iter
    (fun (b : Prog.block) ->
      Array.iteri
        (fun idx (i : I.instr) ->
          let def r =
            if r >= 0 && r < fn.Prog.nregs then begin
              ndefs.(r) <- ndefs.(r) + 1;
              Hashtbl.replace defs r
                ({ An.Usedef.block = b.Prog.bid; idx }, i)
            end
          in
          match i with
          | I.Alloca { dst; _ }
          | I.Bin { dst; _ }
          | I.Cmp { dst; _ }
          | I.Load { dst; _ }
          | I.Gep { dst; _ }
          | I.Cast { dst; _ } -> def dst
          | I.Call { dst; _ } | I.Intrin { dst; _ } ->
            (match dst with Some d -> def d | None -> ())
          | I.Store _ -> ())
        b.Prog.instrs)
    fn.Prog.blocks;
  let nparams = List.length fn.Prog.params in
  let memo : (int, syminfo option) Hashtbl.t = Hashtbl.create 64 in
  let rec of_reg ~depth r =
    if depth = 0 then None
    else
      match Hashtbl.find_opt memo r with
      | Some cached -> cached
      | None ->
        (* cycle guard: a register on the walk stack resolves to None *)
        Hashtbl.replace memo r None;
        let result =
          if ndefs.(r) > 1 then None
          else
            match Hashtbl.find_opt defs r with
            | None ->
              if r < nparams then
                Some { s_sym = S_param r; s_mem = false; s_allocas = [];
                       s_support = [] }
              else None
            | Some (pos, i) ->
              (match i with
               | I.Alloca _ ->
                 Some { s_sym = S_alloca r; s_mem = false; s_allocas = [ r ];
                        s_support = [] }
               | I.Cast { v; _ } -> of_op ~depth:(depth - 1) v
               | I.Bin { op; l; r = rr; _ } ->
                 combine2 ~depth (fun a b -> S_bin (op, a, b)) l rr
               | I.Cmp { op; l; r = rr; _ } ->
                 combine2 ~depth (fun a b -> S_cmp (op, a, b)) l rr
               | I.Load { addr; _ } ->
                 (match of_op ~depth:(depth - 1) addr with
                  | Some a ->
                    Some { s_sym = S_mem a.s_sym; s_mem = true;
                           s_allocas = a.s_allocas;
                           s_support = pos :: a.s_support }
                  | None -> None)
               | I.Gep { base; path; _ } ->
                 (match of_op ~depth:(depth - 1) base with
                  | Some b ->
                    let rec steps acc = function
                      | [] -> Some (List.rev acc)
                      | I.Field (_, off, sz) :: tl ->
                        steps (St_field (off, sz) :: acc) tl
                      | I.Index (ty, o) :: tl ->
                        (match of_op ~depth:(depth - 1) o with
                         | Some s ->
                           steps (St_index (ty, s.s_sym) :: acc) tl
                         | None -> None)
                    in
                    (* index sub-syms that read memory would need their own
                       freshness tracking; keep indices register-pure *)
                    (match steps [] path with
                     | Some ss
                       when List.for_all
                              (function
                                | St_index (_, S_mem _) -> false
                                | St_index _ | St_field _ -> true)
                              ss ->
                       Some { b with s_sym = S_gep (b.s_sym, ss) }
                     | Some _ | None -> None)
                  | None -> None)
               | I.Call _ | I.Intrin _ | I.Store _ -> None)
        in
        Hashtbl.replace memo r result;
        result
  and combine2 ~depth mk l rr =
    match of_op ~depth:(depth - 1) l, of_op ~depth:(depth - 1) rr with
    | Some a, Some b ->
      Some
        { s_sym = mk a.s_sym b.s_sym;
          s_mem = a.s_mem || b.s_mem;
          s_allocas = a.s_allocas @ b.s_allocas;
          s_support = a.s_support @ b.s_support }
    | _, _ -> None
  and of_op ~depth (o : I.operand) =
    match o with
    | I.Imm n -> Some { s_sym = S_imm n; s_mem = false; s_allocas = []; s_support = [] }
    | I.Nullp -> Some { s_sym = S_null; s_mem = false; s_allocas = []; s_support = [] }
    | I.Glob g -> Some { s_sym = S_glob g; s_mem = false; s_allocas = []; s_support = [] }
    | I.Fun f -> Some { s_sym = S_fun f; s_mem = false; s_allocas = []; s_support = [] }
    | I.Reg r -> of_reg ~depth r
  in
  fun (o : I.operand) -> of_op ~depth:24 o

(* Are the supporting loads of [si] locally fresh at position (b, idx)?
   Every contributing load must sit earlier in the same block with no
   fact-invalidating instruction strictly between it and the use. *)
let fresh_at (fn : Prog.func) (si : syminfo) ~block ~idx =
  (not si.s_mem)
  || (List.for_all
        (fun (p : An.Usedef.pos) -> p.An.Usedef.block = block && p.An.Usedef.idx < idx)
        si.s_support
      &&
      let first =
        List.fold_left
          (fun acc (p : An.Usedef.pos) -> min acc p.An.Usedef.idx)
          idx si.s_support
      in
      let instrs = fn.Prog.blocks.(block).Prog.instrs in
      let ok = ref true in
      for k = first + 1 to idx - 1 do
        match effect_of instrs.(k) with
        | Eff_none -> ()
        | Eff_kill_mem | Eff_kill_all -> ok := false
      done;
      !ok)

(* ---------- the pass ---------- *)

module ISet = Set.Make (Int)

type check_site = {
  cs_idx : int; (* instruction index in its block *)
  cs_is_store : bool;
  cs_id : int; (* interned sym id *)
  cs_fresh : bool; (* supporting loads fresh at this site *)
}

let has_setjmp (fn : Prog.func) =
  let found = ref false in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Intrin { op = I.I_setjmp; _ } -> found := true
      | _ -> ());
  !found

(** Drop provably redundant dereference checks in every function of an
    instrumented program; returns the certificates justifying each
    elision, for {!Levee_ir.Verify.check_elision}. *)
let run (prog : Prog.t) : Verify.elision_cert list =
  let certs = ref [] in
  Prog.iter_funcs prog (fun fn ->
      if not (has_setjmp fn) then begin
        let sym_of = build_syms fn in
        (* intern syms; record which facts read memory / root at allocas *)
        let ids : (sym, int) Hashtbl.t = Hashtbl.create 32 in
        let mem_ids = ref ISet.empty in
        let alloca_ids : (int, ISet.t ref) Hashtbl.t = Hashtbl.create 8 in
        let nids = ref 0 in
        let intern (si : syminfo) =
          match Hashtbl.find_opt ids si.s_sym with
          | Some id -> id
          | None ->
            let id = !nids in
            incr nids;
            Hashtbl.replace ids si.s_sym id;
            if si.s_mem then mem_ids := ISet.add id !mem_ids;
            List.iter
              (fun r ->
                let s =
                  match Hashtbl.find_opt alloca_ids r with
                  | Some s -> s
                  | None ->
                    let s = ref ISet.empty in
                    Hashtbl.replace alloca_ids r s;
                    s
                in
                s := ISet.add id !s)
              si.s_allocas;
            id
        in
        (* per block: the checked accesses with a usable sym *)
        let sites = Array.make (Array.length fn.Prog.blocks) [] in
        Array.iter
          (fun (b : Prog.block) ->
            let here = ref [] in
            Array.iteri
              (fun idx (i : I.instr) ->
                match i with
                | I.Load { addr; checked = true; _ }
                | I.Store { addr; checked = true; _ } ->
                  (match sym_of addr with
                   | Some si ->
                     let is_store =
                       match i with I.Store _ -> true | _ -> false
                     in
                     here :=
                       { cs_idx = idx; cs_is_store = is_store;
                         cs_id = intern si;
                         cs_fresh = fresh_at fn si ~block:b.Prog.bid ~idx }
                       :: !here
                   | None -> ())
                | I.Load _ | I.Store _ | I.Alloca _ | I.Bin _ | I.Cmp _
                | I.Gep _ | I.Cast _ | I.Call _ | I.Intrin _ -> ())
              b.Prog.instrs;
            sites.(b.Prog.bid) <- List.rev !here)
          fn.Prog.blocks;
        if !nids > 0 then begin
          let universe = ref ISet.empty in
          for k = 0 to !nids - 1 do
            universe := ISet.add k !universe
          done;
          let universe = !universe in
          (* A check generates its fact when the sym's supporting loads are
             fresh; stores generate only memory-free facts (their own write
             may alias a memory-reading sym). *)
          let gen_of (c : check_site) =
            if c.cs_fresh && not (c.cs_is_store && ISet.mem c.cs_id !mem_ids)
            then Some c.cs_id
            else None
          in
          let step (b : Prog.block) idx state (site : check_site option) =
            let i = b.Prog.instrs.(idx) in
            let state =
              match effect_of i with
              | Eff_kill_all -> ISet.empty
              | Eff_kill_mem -> ISet.diff state !mem_ids
              | Eff_none ->
                (match i with
                 | I.Alloca { dst; _ } ->
                   (match Hashtbl.find_opt alloca_ids dst with
                    | Some s -> ISet.diff state !s
                    | None -> state)
                 | I.Bin _ | I.Cmp _ | I.Load _ | I.Store _ | I.Gep _
                 | I.Cast _ | I.Call _ | I.Intrin _ -> state)
            in
            match site with
            | Some c -> (match gen_of c with
                         | Some id -> ISet.add id state
                         | None -> state)
            | None -> state
          in
          let site_at b idx =
            List.find_opt (fun c -> c.cs_idx = idx) sites.(b)
          in
          let transfer bid state =
            let b = fn.Prog.blocks.(bid) in
            let s = ref state in
            Array.iteri
              (fun idx _ -> s := step b idx !s (site_at b.Prog.bid idx))
              b.Prog.instrs;
            !s
          in
          let g = An.Dataflow.build fn in
          let avail_in =
            An.Dataflow.solve g ~entry:ISet.empty ~bottom:universe
              ~join:ISet.inter ~equal:ISet.equal ~transfer
          in
          (* Re-walk reachable blocks; a checked access whose fact is
             already available (and locally evaluable) is elided. The fact
             stays generated: on every path its first generator survives. *)
          Array.iter
            (fun (b : Prog.block) ->
              let bid = b.Prog.bid in
              if g.An.Dataflow.rpo_index.(bid) >= 0 then begin
                let s = ref avail_in.(bid) in
                Array.iteri
                  (fun idx (i : I.instr) ->
                    let site = site_at bid idx in
                    (match site, i with
                     | Some c, I.Load l when c.cs_fresh && ISet.mem c.cs_id !s ->
                       l.checked <- false;
                       certs :=
                         { Verify.ce_func = fn.Prog.fname; ce_block = bid;
                           ce_idx = idx }
                         :: !certs
                     | Some c, I.Store st when c.cs_fresh && ISet.mem c.cs_id !s ->
                       st.checked <- false;
                       certs :=
                         { Verify.ce_func = fn.Prog.fname; ce_block = bid;
                           ce_idx = idx }
                         :: !certs
                     | _ -> ());
                    s := step b idx !s site)
                  b.Prog.instrs
              end)
            fn.Prog.blocks
        end
      end);
  List.rev !certs
