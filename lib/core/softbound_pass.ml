(** Full spatial memory safety baseline in the style of SoftBound [34].

    Every pointer-typed load/store also moves bounds metadata through a
    disjoint metadata table keyed by the pointer's location
    ([RegularMeta]), and every memory access is bounds-checked against the
    based-on metadata of the pointer it dereferences. This is the paper's
    comparison point for Table 3: the instrumentation covers *all* memory
    operations, not just the 6.5% that CPI needs. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

let run (prog : Prog.t) =
  Prog.iter_funcs prog (fun fn ->
      Prog.iter_instrs fn (fun i ->
          match i with
          | I.Load ({ ty; _ } as l) ->
            l.checked <- true;
            if Ty.is_pointer ty then l.where <- I.RegularMeta
          | I.Store ({ ty; _ } as s) ->
            s.checked <- true;
            if Ty.is_pointer ty then s.where <- I.RegularMeta
          | _ -> ()))
