(** The safe stack instrumentation pass (Section 3.2.4).

    Runs the safety analysis over every function and partitions its stack
    objects: proven-safe objects are marked [SafeSlot] (placed on the safe
    stack by the loader when the configuration enables it), the rest are
    marked [UnsafeSlot] (a separate frame in the regular region). Return
    addresses are handled by the machine: with [Config.safe_stack] they
    live on the safe stack. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

let run (prog : Prog.t) =
  Prog.iter_funcs prog (fun fn ->
      let verdicts, _needs = Levee_analysis.Stackanalysis.classify prog.Prog.tenv fn in
      Prog.iter_instrs fn (fun i ->
          match i with
          | I.Alloca ({ dst; _ } as a) ->
            (match Hashtbl.find_opt verdicts dst with
             | Some Levee_analysis.Stackanalysis.Safe -> a.slot <- I.SafeSlot
             | Some Levee_analysis.Stackanalysis.Unsafe -> a.slot <- I.UnsafeSlot
             | None -> ())
          | _ -> ()))
