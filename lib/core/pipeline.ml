(** The protection pipeline: the analogue of Levee's compiler driver flags
    (-fcpi, -fcps, -fstack-protector-safe), plus the baselines the
    evaluation compares against. [build] clones the input module,
    runs the passes for the requested protection, verifies the result, and
    returns it together with the matching machine configuration and the
    static instrumentation statistics. *)

module Prog = Levee_ir.Prog
module Config = Levee_machine.Config
module Safestore = Levee_machine.Safestore

type protection =
  | Vanilla           (* no protection, DEP and ASLR off *)
  | Hardened          (* DEP + ASLR + stack cookies: a stock modern system *)
  | Cookies           (* stack cookies only *)
  | Safe_stack        (* the safe stack alone (-fstack-protector-safe) *)
  | Cfi               (* coarse-grained CFI baseline (any function entry) *)
  | Cfi_type          (* per-signature CFI sets (Burow et al. middle point) *)
  | Cps               (* code-pointer separation (-fcps) *)
  | Cpi               (* code-pointer integrity (-fcpi) *)
  | Cpi_debug         (* CPI in debug mode: both copies kept and compared *)
  | Cpi_crypt         (* in-place pointer encryption, no safe region *)
  | Softbound         (* full spatial memory safety baseline *)

let protection_name = function
  | Vanilla -> "vanilla"
  | Hardened -> "dep+aslr+cookies"
  | Cookies -> "cookies"
  | Safe_stack -> "safestack"
  | Cfi -> "cfi"
  | Cfi_type -> "cfi-type"
  | Cps -> "cps"
  | Cpi -> "cpi"
  | Cpi_debug -> "cpi-debug"
  | Cpi_crypt -> "cpi-crypt"
  | Softbound -> "softbound"

(* New spectrum members appended so every positional expectation over the
   established prefix stays valid. *)
let all_protections =
  [ Vanilla; Hardened; Cookies; Safe_stack; Cfi; Cps; Cpi; Cpi_debug; Softbound;
    Cfi_type; Cpi_crypt ]

type built = {
  protection : protection;
  prog : Prog.t;
  config : Config.t;
  stats : Stats.t;
}

(** [build ?annotated ?store_impl ?isolation ?refine ?elide protection prog]
    instruments a copy of [prog]. [annotated] lists programmer-marked
    sensitive structs (Section 3.2.1); [store_impl] selects the
    safe-pointer-store organisation; [isolation] the safe-region isolation
    mechanism. [refine] (default on) enables the points-to sensitivity
    refinement inside the CPS/CPI passes; [elide] (default on) runs the
    redundant-check elision pass over CPI programs, with every elision
    independently re-justified by [Verify.check_elision]. *)
let build ?(annotated = []) ?(store_impl = Safestore.Simple_array)
    ?(isolation = Config.Info_hiding) ?(refine = true) ?(elide = true)
    protection (src : Prog.t) : built =
  let prog = Prog.clone src in
  let demoted = ref 0 in
  let config =
    match protection with
    | Vanilla -> Config.vanilla
    | Hardened ->
      Cookie_pass.run prog;
      Config.hardened_baseline
    | Cookies ->
      Cookie_pass.run prog;
      Config.cookies_only
    | Safe_stack ->
      Safestack_pass.run prog;
      Config.safe_stack_only
    | Cfi ->
      Cfi_pass.run prog;
      Config.cfi
    | Cfi_type ->
      ignore (Cfi_type_pass.run prog);
      Config.cfi_type
    | Cpi_crypt ->
      let d, crypt_cells = Crypt_pass.run ~refine ~annotated prog in
      demoted := d;
      { Config.cpi_crypt with Config.crypt_cells }
    | Cps ->
      Safestack_pass.run prog;
      demoted := Cps_pass.run ~refine prog;
      Config.cps ~store_impl ()
    | Cpi ->
      Safestack_pass.run prog;
      demoted := Cpi_pass.run ~refine ~annotated prog;
      Config.cpi ~store_impl ()
    | Cpi_debug ->
      Safestack_pass.run prog;
      demoted := Cpi_pass.run ~debug:true ~refine ~annotated prog;
      { (Config.cpi ~store_impl ()) with Config.name = "cpi-debug" }
    | Softbound ->
      Softbound_pass.run prog;
      { Config.softbound with Config.store_impl = store_impl }
  in
  let config = { config with Config.isolation } in
  (match Levee_ir.Verify.program_result prog with
   | Ok () -> ()
   | Error e ->
     failwith (Printf.sprintf "pipeline(%s): invalid IR after instrumentation: %s"
                 (protection_name protection) e));
  let certs =
    match protection with
    | (Cpi | Cpi_debug) when elide -> Checkelim_pass.run prog
    | _ -> []
  in
  if certs <> [] then begin
    (match Levee_ir.Verify.check_elision prog certs with
     | Ok () -> ()
     | Error e ->
       failwith (Printf.sprintf "pipeline(%s): unjustified check elision: %s"
                   (protection_name protection) e));
    (* Elision only clears [checked] flags, but re-verify anyway: the
       structural invariants must survive every pass. *)
    match Levee_ir.Verify.program_result prog with
    | Ok () -> ()
    | Error e ->
      failwith (Printf.sprintf "pipeline(%s): invalid IR after check elision: %s"
                  (protection_name protection) e)
  end;
  { protection; prog; config;
    stats =
      { (Stats.collect prog) with
        Stats.checks_elided = List.length certs;
        mem_ops_demoted = !demoted } }
