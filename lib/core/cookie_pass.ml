(** Stack cookies baseline (StackGuard [14]).

    Guards every function that allocates a stack buffer, the way
    -fstack-protector selects functions. The machine writes the cookie
    between the locals and the return address and verifies it in the
    epilogue — detecting only contiguous overflows that cross it. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog

let has_buffer (fn : Prog.func) =
  let found = ref false in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Alloca { ty = Ty.Arr _; _ } | I.Alloca { ty = Ty.Struct _; _ } -> found := true
      | _ -> ());
  !found

let run (prog : Prog.t) =
  Prog.iter_funcs prog (fun fn -> fn.Prog.cookie <- has_buffer fn)
