(** Coarse-grained control-flow integrity baseline [1, 53, 54].

    Marks every indirect call for a runtime valid-target check. Like the
    deployed CFI systems the paper compares against, the valid set is the
    coarse "any function entry" approximation, and returns are checked
    against "any call-preceded address" ([Config.cfi_returns]); the recent
    attacks the paper cites ([19, 15, 9]) exploit exactly that coarseness,
    and the RIPE-style suite reproduces them. *)

module I = Levee_ir.Instr
module Prog = Levee_ir.Prog

let run (prog : Prog.t) =
  Prog.iter_funcs prog (fun fn ->
      Prog.iter_instrs fn (fun i ->
          match i with
          | I.Call ({ callee = I.Indirect _; _ } as c) -> c.cfi_checked <- true
          | _ -> ()))
