(** The protection pipeline: the analogue of Levee's compiler-driver flags
    (-fcpi, -fcps, -fstack-protector-safe), plus the baselines the paper's
    evaluation compares against. *)

module Prog = Levee_ir.Prog
module Config = Levee_machine.Config
module Safestore = Levee_machine.Safestore

type protection =
  | Vanilla           (** no protection, DEP and ASLR off *)
  | Hardened          (** DEP + ASLR + stack cookies: a stock modern system *)
  | Cookies
  | Safe_stack        (** the safe stack alone (-fstack-protector-safe) *)
  | Cfi               (** coarse-grained CFI baseline (any function entry) *)
  | Cfi_type          (** per-signature CFI sets (Burow et al. middle point) *)
  | Cps               (** code-pointer separation (-fcps) *)
  | Cpi               (** code-pointer integrity (-fcpi) *)
  | Cpi_debug         (** CPI debug mode: both copies kept and compared *)
  | Cpi_crypt         (** in-place pointer encryption, no safe region *)
  | Softbound         (** full spatial memory safety baseline *)

val protection_name : protection -> string
val all_protections : protection list

type built = {
  protection : protection;
  prog : Prog.t;        (** instrumented clone of the input module *)
  config : Config.t;    (** the matching machine configuration *)
  stats : Stats.t;      (** Table-2-style instrumentation statistics *)
}

(** [build ?annotated ?store_impl ?isolation protection prog] instruments a
    deep copy of [prog] and verifies the result.

    @param annotated programmer-marked sensitive struct names
           (Section 3.2.1's struct-ucred case)
    @param store_impl safe-pointer-store organisation (default array)
    @param isolation safe-region isolation mechanism (default info hiding)
    @param refine enable the points-to sensitivity refinement inside the
           CPS/CPI passes (default [true]); the demotion count is reported
           in [stats.mem_ops_demoted]
    @param elide run redundant-check elision over CPI programs (default
           [true]); every elision is independently re-justified by
           [Verify.check_elision] and counted in [stats.checks_elided]
    @raise Failure if the instrumented IR fails verification (a pass bug) *)
val build :
  ?annotated:string list ->
  ?store_impl:Safestore.impl ->
  ?isolation:Config.isolation ->
  ?refine:bool ->
  ?elide:bool ->
  protection -> Prog.t -> built
