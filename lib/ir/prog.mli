(** IR functions, globals and whole programs. *)

type block = {
  bid : int;
  mutable instrs : Instr.instr array;
  mutable term : Instr.term;
}

type func = {
  fname : string;
  params : (string * Ty.t) list;    (** bound to registers 0..n-1 on entry *)
  ret_ty : Ty.t;
  mutable blocks : block array;     (** [blocks.(0)] is the entry block *)
  mutable nregs : int;
  reg_ty : (int, Ty.t) Hashtbl.t;   (** best-effort register types *)
  mutable cookie : bool;            (** stack-cookie pass: guard this frame *)
  mutable address_taken : bool;     (** legitimate indirect-call target *)
}

(** Initial contents of one word of a global object. *)
type gcell =
  | Cint of int
  | Cfun of string              (** code address of a function *)
  | Cglob of string * int       (** address of a global plus word offset *)

type global = {
  gname : string;
  gty : Ty.t;
  init : gcell array;
}

type t = {
  tenv : Ty.env;
  mutable globals : global list;
  funcs : (string, func) Hashtbl.t;
  mutable func_order : string list;       (** declaration order *)
}

val create : unit -> t

(** @raise Invalid_argument on duplicate function names. *)
val add_func : t -> func -> unit

(** @raise Invalid_argument if the function is unknown. *)
val find_func : t -> string -> func

val has_func : t -> string -> bool
val add_global : t -> global -> unit
val find_global : t -> string -> global option

(** Iterate functions in declaration order. *)
val iter_funcs : t -> (func -> unit) -> unit

val fold_funcs : t -> ('a -> func -> 'a) -> 'a -> 'a

(** Iterate over every instruction of a function. *)
val iter_instrs : func -> (Instr.instr -> unit) -> unit

(** Map every instruction array of a function in place. *)
val rewrite_blocks : func -> (Instr.instr array -> Instr.instr array) -> unit

(** Deep copy of an instruction (variants carry mutable fields). *)
val clone_instr : Instr.instr -> Instr.instr

val clone_func : func -> func

(** Deep copy of a program, for instrumenting the same module under
    several protection configurations. *)
val clone : t -> t

(** Compute the set of functions whose address is taken anywhere in the
    program and set their [address_taken] flags; returns the name set. *)
val compute_address_taken : t -> (string, unit) Hashtbl.t
