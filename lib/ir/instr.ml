(** IR instructions.

    The IR is register-based and non-SSA (like LLVM IR before mem2reg):
    locals live in allocas, virtual registers hold temporaries. The
    instrumentation passes of the paper are expressed as rewrites of the
    [where] and [checked] attributes of memory operations, plus slot-kind
    changes on allocas — exactly the three knobs Levee turns. *)

type operand =
  | Reg of int          (* virtual register *)
  | Imm of int          (* integer immediate *)
  | Glob of string      (* address of a global object *)
  | Fun of string       (* code address of a function *)
  | Nullp               (* null pointer *)

(** Where a memory operation stores/loads the value and its metadata.

    - [Regular]: plain access to regular memory, no metadata (vanilla code
      and all non-sensitive accesses under CPI/CPS).
    - [RegularMeta]: value in regular memory, bounds kept in a disjoint
      metadata table keyed by the pointer's location — SoftBound's layout.
    - [SafeFull]: value + bounds + temporal id in the safe pointer store,
      regular copy unused — CPI's layout for sensitive pointers.
    - [SafeValue]: value only in the safe pointer store, no metadata —
      CPS's layout for code pointers.
    - [SafeDebug]: like [SafeFull] but the value is mirrored into regular
      memory and compared on load — the paper's debug mode (Section 3.2.2).
    - [Crypt]: value kept in regular memory as ciphertext under the run's
      pointer-cipher key, no metadata — the in-place encryption layout of
      LIPPEN/CryptSan-style schemes (cpi-crypt). *)
type where = Regular | RegularMeta | SafeFull | SafeValue | SafeDebug | SafeData
           | Crypt

(* [SafeData] is the layout for programmer-annotated sensitive *data*
   (Section 4's struct-ucred case): the value itself is kept in the safe
   pointer store so arbitrary writes to the regular region cannot alter
   it, but it carries no based-on bounds (it is not a pointer). *)

(** Stack slot placement for allocas, decided by the safe stack pass:
    [Auto] = untouched (regular stack), [Safe] = proven-safe object on the
    safe stack, [Unsafe] = needs an unsafe frame in the regular region. *)
type slot_kind = Auto | SafeSlot | UnsafeSlot

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmpop = Eq | Ne | Lt | Le | Gt | Ge
type castkind = Bitcast | PtrToInt | IntToPtr

(** A step of address computation (flattened GEP). Field steps carry the
    field's size so the machine can narrow based-on bounds to the
    sub-object, per case (iii) of the paper's based-on definition. *)
type gep_step =
  | Field of string * int * int (* field name, word offset, field size *)
  | Index of Ty.t * operand     (* array indexing: element type, index *)

type callee = Direct of string | Indirect of operand

(** Runtime intrinsics. [Sp_*] intrinsics are inserted by passes and
    implemented by the machine's runtime support (the compiler-rt analogue);
    the rest model the relevant parts of libc, including the memory
    manipulation functions whose type-aware variants Section 3.2.2
    describes, and the classically vulnerable string functions that the
    RIPE-style attacks exploit. *)
type intrin =
  | I_malloc | I_free
  | I_memcpy | I_memset | I_strcpy | I_strlen | I_strcmp
  | I_cpi_memcpy | I_cpi_memset   (* safe-store-aware variants *)
  | I_read_input                  (* attacker-controlled byte stream *)
  | I_read_int
  | I_print_int | I_print_str
  | I_checksum                    (* fold a word into the program checksum *)
  | I_setjmp | I_longjmp
  | I_system                      (* the forbidden control-flow target *)
  | I_exit | I_abort
  (* Threading runtime (paper §4.2: per-thread stack pairs over a shared
     safe region). The deterministic scheduler lives in the machine. *)
  | I_thread_spawn | I_thread_join
  | I_mutex_lock | I_mutex_unlock
  | I_atomic_add

type instr =
  | Alloca of { dst : int; ty : Ty.t; mutable slot : slot_kind }
  | Bin of { dst : int; op : binop; l : operand; r : operand }
  | Cmp of { dst : int; op : cmpop; l : operand; r : operand }
  | Load of { dst : int; ty : Ty.t; addr : operand;
              mutable where : where; mutable checked : bool }
  | Store of { ty : Ty.t; v : operand; addr : operand;
               mutable where : where; mutable checked : bool }
  | Gep of { dst : int; base_ty : Ty.t; base : operand; path : gep_step list }
  | Cast of { dst : int; kind : castkind; ty : Ty.t; v : operand }
  | Call of { dst : int option; callee : callee; args : operand list;
              fty : Ty.t; mutable cfi_checked : bool;
              (* cfi-type: allowed target functions for this indirect call
                 site (signature class ∩ Andersen callee set); [None] means
                 the coarse any-function-entry check only. *)
              mutable cfi_set : string list option }
  | Intrin of { dst : int option; op : intrin; args : operand list }

type term =
  | Ret of operand option
  | Br of operand * int * int     (* cond, then-block, else-block *)
  | Jmp of int
  | Switch of operand * (int * int) list * int  (* value, (case, block), default *)
  | Unreachable

let intrin_name = function
  | I_malloc -> "malloc" | I_free -> "free"
  | I_memcpy -> "memcpy" | I_memset -> "memset"
  | I_strcpy -> "strcpy" | I_strlen -> "strlen" | I_strcmp -> "strcmp"
  | I_cpi_memcpy -> "cpi_memcpy" | I_cpi_memset -> "cpi_memset"
  | I_read_input -> "read_input" | I_read_int -> "read_int"
  | I_print_int -> "print_int" | I_print_str -> "print_str"
  | I_checksum -> "checksum"
  | I_setjmp -> "setjmp" | I_longjmp -> "longjmp"
  | I_system -> "system" | I_exit -> "exit" | I_abort -> "abort"
  | I_thread_spawn -> "thread_spawn" | I_thread_join -> "thread_join"
  | I_mutex_lock -> "mutex_lock" | I_mutex_unlock -> "mutex_unlock"
  | I_atomic_add -> "atomic_add"

let intrin_of_name = function
  | "malloc" -> Some I_malloc | "free" -> Some I_free
  | "memcpy" -> Some I_memcpy | "memset" -> Some I_memset
  | "strcpy" -> Some I_strcpy | "strlen" -> Some I_strlen
  | "strcmp" -> Some I_strcmp
  | "read_input" -> Some I_read_input | "read_int" -> Some I_read_int
  | "print_int" -> Some I_print_int | "print_str" -> Some I_print_str
  | "checksum" -> Some I_checksum
  | "setjmp" -> Some I_setjmp | "longjmp" -> Some I_longjmp
  | "system" -> Some I_system | "exit" -> Some I_exit | "abort" -> Some I_abort
  | "thread_spawn" -> Some I_thread_spawn | "thread_join" -> Some I_thread_join
  | "mutex_lock" -> Some I_mutex_lock | "mutex_unlock" -> Some I_mutex_unlock
  | "atomic_add" -> Some I_atomic_add
  | _ -> None

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | Div -> "div" | Rem -> "rem"
  | And -> "and" | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let cmpop_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let where_name = function
  | Regular -> "reg" | RegularMeta -> "sb" | SafeFull -> "cpi"
  | SafeValue -> "cps" | SafeDebug -> "cpi-dbg" | SafeData -> "cpi-data"
  | Crypt -> "crypt"
