(** Structural IR verifier, run after lowering and after every
    instrumentation pass (the analogue of LLVM's module verifier). A
    verification failure indicates a compiler bug, not a user error. *)

type error = { func : string; block : int; msg : string }

exception Invalid_ir of error

let fail func block fmt =
  Printf.ksprintf (fun msg -> raise (Invalid_ir { func; block; msg })) fmt

let check_operand fname bid (p : Prog.t) nregs (o : Instr.operand) =
  match o with
  | Instr.Reg r ->
    if r < 0 || r >= nregs then fail fname bid "register %%r%d out of range" r
  | Instr.Glob g ->
    if Prog.find_global p g = None then fail fname bid "unknown global @%s" g
  | Instr.Fun f ->
    if not (Prog.has_func p f) then fail fname bid "unknown function &%s" f
  | Instr.Imm _ | Instr.Nullp -> ()

let check_block_id fname bid fn target =
  if target < 0 || target >= Array.length fn.Prog.blocks then
    fail fname bid "branch to unknown block b%d" target

(** Registers must be defined before use within straight-line order; we
    check a weaker property (definition exists somewhere) plus exact checks
    for operand well-formedness, which is what the passes can break. *)
let check_func (p : Prog.t) (fn : Prog.func) =
  let fname = fn.fname in
  let defined = Hashtbl.create 64 in
  List.iteri (fun i _ -> Hashtbl.replace defined i ()) fn.params;
  let def r bid =
    if r < 0 || r >= fn.nregs then fail fname bid "destination %%r%d out of range" r;
    Hashtbl.replace defined r ()
  in
  Array.iter
    (fun (b : Prog.block) ->
      let bid = b.bid in
      Array.iter
        (fun (i : Instr.instr) ->
          let op o = check_operand fname bid p fn.nregs o in
          match i with
          | Instr.Alloca { dst; ty; _ } ->
            if Ty.size_of p.tenv ty = 0 then fail fname bid "alloca of zero-sized type";
            def dst bid
          | Instr.Bin { dst; l; r; _ } | Instr.Cmp { dst; l; r; _ } ->
            op l; op r; def dst bid
          | Instr.Load { dst; addr; ty; _ } ->
            op addr;
            if Ty.equal ty Ty.Void then fail fname bid "load of void";
            def dst bid
          | Instr.Store { v; addr; ty; _ } ->
            op v; op addr;
            if Ty.equal ty Ty.Void then fail fname bid "store of void"
          | Instr.Gep { dst; base; path; _ } ->
            op base;
            List.iter
              (function
                | Instr.Index (_, o) -> op o
                | Instr.Field (_, off, _) ->
                  if off < 0 then fail fname bid "negative field offset")
              path;
            def dst bid
          | Instr.Cast { dst; v; _ } -> op v; def dst bid
          | Instr.Call { dst; callee; args; _ } ->
            (match callee with
             | Instr.Direct f ->
               if not (Prog.has_func p f) then fail fname bid "call to unknown %s" f
             | Instr.Indirect o -> op o);
            List.iter op args;
            (match dst with Some d -> def d bid | None -> ())
          | Instr.Intrin { dst; args; _ } ->
            List.iter op args;
            (match dst with Some d -> def d bid | None -> ()))
        b.instrs;
      match b.term with
      | Instr.Ret None ->
        if not (Ty.equal fn.ret_ty Ty.Void) then
          fail fname bid "ret void in non-void function"
      | Instr.Ret (Some o) -> check_operand fname bid p fn.nregs o
      | Instr.Br (c, t1, t2) ->
        check_operand fname bid p fn.nregs c;
        check_block_id fname bid fn t1;
        check_block_id fname bid fn t2
      | Instr.Jmp t -> check_block_id fname bid fn t
      | Instr.Switch (o, cases, dflt) ->
        check_operand fname bid p fn.nregs o;
        List.iter (fun (_, t) -> check_block_id fname bid fn t) cases;
        check_block_id fname bid fn dflt
      | Instr.Unreachable -> ())
    fn.blocks;
  if Array.length fn.blocks = 0 then fail fname 0 "function has no blocks"

(** Verify a whole program; raises [Invalid_ir] on the first violation. *)
let program (p : Prog.t) = Prog.iter_funcs p (fun fn -> check_func p fn)

(** [program_result p] is [Ok ()] or [Error message]. *)
let program_result p =
  match program p with
  | () -> Ok ()
  | exception Invalid_ir e ->
    Error (Printf.sprintf "%s (in %s, block b%d)" e.msg e.func e.block)

(* ---------- elision certificates ---------- *)

(* An elided dereference check, to be re-justified independently of the
   pass that removed it. The argument replayed here: a check is a pure
   function of the address register's value, metadata and the temporal
   liveness of its allocation — so if an equivalent check (equal symbolic
   address, with the memory cells it reads through unchanged) has passed
   on every path into this position, re-checking must pass again.

   This checker is deliberately self-contained: it rebuilds symbolic
   addresses and the must-availability argument from scratch rather than
   importing the pass's machinery, so a bug in the pass cannot vouch for
   itself. *)

type elision_cert = { ce_func : string; ce_block : int; ce_idx : int }

module Elim = struct
  type sym =
    | S_imm of int
    | S_null
    | S_glob of string
    | S_fun of string
    | S_alloca of int
    | S_param of int
    | S_mem of sym
    | S_bin of Instr.binop * sym * sym
    | S_cmp of Instr.cmpop * sym * sym
    | S_gep of sym * step list

  and step = St_field of int * int | St_index of Ty.t * sym

  type syminfo = {
    s_sym : sym;
    s_mem : bool;
    s_allocas : int list;
    s_support : (int * int) list; (* (block, idx) of contributing loads *)
  }

  let benign_intrin (op : Instr.intrin) =
    match op with
    | Instr.I_strlen | Instr.I_strcmp | Instr.I_print_int | Instr.I_print_str
    | Instr.I_checksum | Instr.I_read_int | Instr.I_malloc | Instr.I_exit
    | Instr.I_abort -> true
    | Instr.I_free | Instr.I_memcpy | Instr.I_memset | Instr.I_strcpy
    | Instr.I_cpi_memcpy | Instr.I_cpi_memset | Instr.I_read_input
    | Instr.I_setjmp | Instr.I_longjmp | Instr.I_system
    | Instr.I_thread_spawn | Instr.I_thread_join | Instr.I_mutex_lock
    | Instr.I_mutex_unlock | Instr.I_atomic_add -> false

  type effect = Eff_none | Eff_kill_mem | Eff_kill_all

  let effect_of (i : Instr.instr) =
    match i with
    | Instr.Store _ -> Eff_kill_mem
    | Instr.Call _ -> Eff_kill_all
    | Instr.Intrin { op; _ } ->
      if benign_intrin op then Eff_none else Eff_kill_all
    | Instr.Alloca _ | Instr.Bin _ | Instr.Cmp _ | Instr.Load _ | Instr.Gep _
    | Instr.Cast _ -> Eff_none

  let build_syms (fn : Prog.func) =
    let ndefs = Array.make fn.Prog.nregs 0 in
    let defs = Hashtbl.create 64 in
    Array.iter
      (fun (b : Prog.block) ->
        Array.iteri
          (fun idx (i : Instr.instr) ->
            let def r =
              if r >= 0 && r < fn.Prog.nregs then begin
                ndefs.(r) <- ndefs.(r) + 1;
                Hashtbl.replace defs r ((b.Prog.bid, idx), i)
              end
            in
            match i with
            | Instr.Alloca { dst; _ }
            | Instr.Bin { dst; _ }
            | Instr.Cmp { dst; _ }
            | Instr.Load { dst; _ }
            | Instr.Gep { dst; _ }
            | Instr.Cast { dst; _ } -> def dst
            | Instr.Call { dst; _ } | Instr.Intrin { dst; _ } ->
              (match dst with Some d -> def d | None -> ())
            | Instr.Store _ -> ())
          b.Prog.instrs)
      fn.Prog.blocks;
    let nparams = List.length fn.Prog.params in
    let memo : (int, syminfo option) Hashtbl.t = Hashtbl.create 64 in
    let pure si = Some { s_sym = si; s_mem = false; s_allocas = []; s_support = [] } in
    let rec of_reg ~depth r =
      if depth = 0 then None
      else
        match Hashtbl.find_opt memo r with
        | Some cached -> cached
        | None ->
          Hashtbl.replace memo r None;
          let result =
            if ndefs.(r) > 1 then None
            else
              match Hashtbl.find_opt defs r with
              | None -> if r < nparams then pure (S_param r) else None
              | Some (pos, i) ->
                (match i with
                 | Instr.Alloca _ ->
                   Some { s_sym = S_alloca r; s_mem = false; s_allocas = [ r ];
                          s_support = [] }
                 | Instr.Cast { v; _ } -> of_op ~depth:(depth - 1) v
                 | Instr.Bin { op; l; r = rr; _ } ->
                   combine2 ~depth (fun a b -> S_bin (op, a, b)) l rr
                 | Instr.Cmp { op; l; r = rr; _ } ->
                   combine2 ~depth (fun a b -> S_cmp (op, a, b)) l rr
                 | Instr.Load { addr; _ } ->
                   (match of_op ~depth:(depth - 1) addr with
                    | Some a ->
                      Some { s_sym = S_mem a.s_sym; s_mem = true;
                             s_allocas = a.s_allocas;
                             s_support = pos :: a.s_support }
                    | None -> None)
                 | Instr.Gep { base; path; _ } ->
                   (match of_op ~depth:(depth - 1) base with
                    | Some b ->
                      let rec steps acc = function
                        | [] -> Some (List.rev acc)
                        | Instr.Field (_, off, sz) :: tl ->
                          steps (St_field (off, sz) :: acc) tl
                        | Instr.Index (ty, o) :: tl ->
                          (match of_op ~depth:(depth - 1) o with
                           | Some s -> steps (St_index (ty, s.s_sym) :: acc) tl
                           | None -> None)
                      in
                      (match steps [] path with
                       | Some ss
                         when List.for_all
                                (function
                                  | St_index (_, S_mem _) -> false
                                  | St_index _ | St_field _ -> true)
                                ss ->
                         Some { b with s_sym = S_gep (b.s_sym, ss) }
                       | Some _ | None -> None)
                    | None -> None)
                 | Instr.Call _ | Instr.Intrin _ | Instr.Store _ -> None)
          in
          Hashtbl.replace memo r result;
          result
    and combine2 ~depth mk l rr =
      match of_op ~depth:(depth - 1) l, of_op ~depth:(depth - 1) rr with
      | Some a, Some b ->
        Some
          { s_sym = mk a.s_sym b.s_sym;
            s_mem = a.s_mem || b.s_mem;
            s_allocas = a.s_allocas @ b.s_allocas;
            s_support = a.s_support @ b.s_support }
      | _, _ -> None
    and of_op ~depth (o : Instr.operand) =
      match o with
      | Instr.Imm n -> pure (S_imm n)
      | Instr.Nullp -> pure S_null
      | Instr.Glob g -> pure (S_glob g)
      | Instr.Fun f -> pure (S_fun f)
      | Instr.Reg r -> of_reg ~depth r
    in
    fun (o : Instr.operand) -> of_op ~depth:24 o

  let fresh_at (fn : Prog.func) (si : syminfo) ~block ~idx =
    (not si.s_mem)
    || (List.for_all (fun (b, i) -> b = block && i < idx) si.s_support
        &&
        let first =
          List.fold_left (fun acc (_, i) -> min acc i) idx si.s_support
        in
        let instrs = fn.Prog.blocks.(block).Prog.instrs in
        let ok = ref true in
        for k = first + 1 to idx - 1 do
          match effect_of instrs.(k) with
          | Eff_none -> ()
          | Eff_kill_mem | Eff_kill_all -> ok := false
        done;
        !ok)

  let successors (t : Instr.term) =
    match t with
    | Instr.Ret _ | Instr.Unreachable -> []
    | Instr.Jmp b -> [ b ]
    | Instr.Br (_, b1, b2) -> [ b1; b2 ]
    | Instr.Switch (_, cases, dflt) -> List.map snd cases @ [ dflt ]

  let has_setjmp (fn : Prog.func) =
    let found = ref false in
    Prog.iter_instrs fn (fun i ->
        match i with
        | Instr.Intrin { op = Instr.I_setjmp; _ } -> found := true
        | _ -> ());
    !found
end

let check_elision (p : Prog.t) (certs : elision_cert list) :
    (unit, string) result =
  let open Elim in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let by_fn : (string, elision_cert list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun c ->
      match Hashtbl.find_opt by_fn c.ce_func with
      | Some l -> l := c :: !l
      | None -> Hashtbl.replace by_fn c.ce_func (ref [ c ]))
    certs;
  let check_one (fn : Prog.func) sym_of (c : elision_cert) =
    if c.ce_block < 0 || c.ce_block >= Array.length fn.Prog.blocks then
      err "%s: certificate for unknown block b%d" c.ce_func c.ce_block
    else begin
      let b = fn.Prog.blocks.(c.ce_block) in
      if c.ce_idx < 0 || c.ce_idx >= Array.length b.Prog.instrs then
        err "%s: certificate for unknown instr b%d.%d" c.ce_func c.ce_block
          c.ce_idx
      else if has_setjmp fn then
        err "%s: elision inside a setjmp-calling function" c.ce_func
      else begin
        (* the certificate's access and its symbolic address *)
        let addr_of =
          match b.Prog.instrs.(c.ce_idx) with
          | Instr.Load { addr; checked = false; _ }
          | Instr.Store { addr; checked = false; _ } -> Some addr
          | Instr.Load _ | Instr.Store _ | Instr.Alloca _ | Instr.Bin _
          | Instr.Cmp _ | Instr.Gep _ | Instr.Cast _ | Instr.Call _
          | Instr.Intrin _ -> None
        in
        match addr_of with
        | None ->
          err "%s: certificate b%d.%d is not an unchecked memory access"
            c.ce_func c.ce_block c.ce_idx
        | Some addr ->
          (match sym_of addr with
           | None ->
             err "%s: b%d.%d address has no symbolic value" c.ce_func
               c.ce_block c.ce_idx
           | Some si ->
             if not (fresh_at fn si ~block:c.ce_block ~idx:c.ce_idx) then
               err "%s: b%d.%d supporting loads are not locally fresh"
                 c.ce_func c.ce_block c.ce_idx
             else begin
               (* Boolean must-availability of this cert's fact, generated
                  only at *surviving* (still-checked) equivalent checks. *)
               let n = Array.length fn.Prog.blocks in
               let reachable = Array.make n false in
               let rec dfs bid =
                 if not reachable.(bid) then begin
                   reachable.(bid) <- true;
                   List.iter dfs (successors fn.Prog.blocks.(bid).Prog.term)
                 end
               in
               if n > 0 then dfs 0;
               if not reachable.(c.ce_block) then
                 err "%s: b%d is unreachable from the entry" c.ce_func
                   c.ce_block
               else begin
                 let gen_here (blk : Prog.block) idx (i : Instr.instr) =
                   match i with
                   | Instr.Load { addr = a; checked = true; _ }
                   | Instr.Store { addr = a; checked = true; _ } ->
                     (match sym_of a with
                      | Some si2 ->
                        si2.s_sym = si.s_sym
                        && fresh_at fn si2 ~block:blk.Prog.bid ~idx
                        && (match i with
                            | Instr.Store _ -> not si2.s_mem
                            | _ -> true)
                      | None -> false)
                   | Instr.Load _ | Instr.Store _ | Instr.Alloca _
                   | Instr.Bin _ | Instr.Cmp _ | Instr.Gep _ | Instr.Cast _
                   | Instr.Call _ | Instr.Intrin _ -> false
                 in
                 let step blk idx avail =
                   let i = blk.Prog.instrs.(idx) in
                   let avail =
                     match effect_of i with
                     | Eff_kill_all -> false
                     | Eff_kill_mem -> avail && not si.s_mem
                     | Eff_none ->
                       (match i with
                        | Instr.Alloca { dst; _ }
                          when List.mem dst si.s_allocas -> false
                        | Instr.Alloca _ | Instr.Bin _ | Instr.Cmp _
                        | Instr.Load _ | Instr.Store _ | Instr.Gep _
                        | Instr.Cast _ | Instr.Call _ | Instr.Intrin _ ->
                          avail)
                   in
                   avail || gen_here blk idx i
                 in
                 let transfer bid avail =
                   let blk = fn.Prog.blocks.(bid) in
                   let a = ref avail in
                   Array.iteri (fun idx _ -> a := step blk idx !a) blk.Prog.instrs;
                   !a
                 in
                 let preds = Array.make n [] in
                 Array.iter
                   (fun (blk : Prog.block) ->
                     List.iter
                       (fun s ->
                         if s >= 0 && s < n then
                           preds.(s) <- blk.Prog.bid :: preds.(s))
                       (successors blk.Prog.term))
                   fn.Prog.blocks;
                 let avail_out = Array.make n true in
                 (* optimistic init for the must-analysis; iterate down *)
                 let changed = ref true in
                 while !changed do
                   changed := false;
                   for bid = 0 to n - 1 do
                     if reachable.(bid) then begin
                       let inp =
                         if bid = 0 then false
                         else
                           List.fold_left
                             (fun acc pb ->
                               acc && (not reachable.(pb) || avail_out.(pb)))
                             true preds.(bid)
                       in
                       let out = transfer bid inp in
                       if out <> avail_out.(bid) then begin
                         avail_out.(bid) <- out;
                         changed := true
                       end
                     end
                   done
                 done;
                 let inp =
                   if c.ce_block = 0 then false
                   else
                     List.fold_left
                       (fun acc pb ->
                         acc && (not reachable.(pb) || avail_out.(pb)))
                       true preds.(c.ce_block)
                 in
                 let a = ref inp in
                 for k = 0 to c.ce_idx - 1 do
                   a := step b k !a
                 done;
                 if !a then Ok ()
                 else
                   err
                     "%s: b%d.%d check is not available on every path"
                     c.ce_func c.ce_block c.ce_idx
               end
             end)
      end
    end
  in
  Hashtbl.fold
    (fun fname certs acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        if not (Prog.has_func p fname) then
          err "certificate for unknown function %s" fname
        else begin
          let fn = Prog.find_func p fname in
          let sym_of = Elim.build_syms fn in
          List.fold_left
            (fun acc c ->
              match acc with Error _ -> acc | Ok () -> check_one fn sym_of c)
            (Ok ()) !certs
        end)
    by_fn (Ok ())

(* ---------- safe-region separation certificates ---------- *)

(* A certified plain store claims: the addresses this store can produce
   are rooted in the listed allocation sites, and none of those sites
   backs safe-region (CPI-protected) storage. The replay rebuilds both
   halves from the instrumented program alone — a local, single-def
   provenance walk for the roots, and the [where] attributes for the set
   of safe-resident sites — so a bug in the emitting analysis cannot
   vouch for itself. Addresses whose provenance is not locally decidable
   (loaded pointers, call results) are *not* certifiable; the model
   records safe accesses with such addresses as opaque, and the checker
   insists the emitter declared every one of them. *)

type sep_root =
  | Sr_global of string
  | Sr_alloca of int
  | Sr_malloc of int * int

type separation_cert = {
  sc_func : string;
  sc_block : int;
  sc_idx : int;
  sc_roots : sep_root list;
}

type separation_model = {
  sm_safe : (string * sep_root) list;
  sm_opaque : (string * int * int) list;
}

let sep_root_to_string = function
  | Sr_global g -> "global:" ^ g
  | Sr_alloca r -> Printf.sprintf "alloca:r%d" r
  | Sr_malloc (b, i) -> Printf.sprintf "malloc:b%d.%d" b i

(* Scope a root for cross-function comparison: globals are program-wide,
   stack and heap sites belong to their function. *)
let qualify_root fname = function
  | Sr_global g -> ("", Sr_global g)
  | r -> (fname, r)

module Sep = struct
  (* Roots of an address operand by a purely local walk over single-def
     register chains. [None] = opaque provenance (loaded pointer, call
     result, multiply-defined register, code address). [Some []] = a
     constant address naming no object. *)
  let build_roots (fn : Prog.func) =
    let ndefs = Array.make fn.Prog.nregs 0 in
    let defs = Hashtbl.create 64 in
    Array.iter
      (fun (b : Prog.block) ->
        Array.iteri
          (fun idx (i : Instr.instr) ->
            let def r =
              if r >= 0 && r < fn.Prog.nregs then begin
                ndefs.(r) <- ndefs.(r) + 1;
                Hashtbl.replace defs r ((b.Prog.bid, idx), i)
              end
            in
            match i with
            | Instr.Alloca { dst; _ }
            | Instr.Bin { dst; _ }
            | Instr.Cmp { dst; _ }
            | Instr.Load { dst; _ }
            | Instr.Gep { dst; _ }
            | Instr.Cast { dst; _ } -> def dst
            | Instr.Call { dst; _ } | Instr.Intrin { dst; _ } ->
              (match dst with Some d -> def d | None -> ())
            | Instr.Store _ -> ())
          b.Prog.instrs)
      fn.Prog.blocks;
    let memo : (int, sep_root list option) Hashtbl.t = Hashtbl.create 64 in
    let rec of_reg ~depth r =
      if depth = 0 then None
      else
        match Hashtbl.find_opt memo r with
        | Some cached -> cached
        | None ->
          Hashtbl.replace memo r None;
          let result =
            if ndefs.(r) > 1 then None
            else
              match Hashtbl.find_opt defs r with
              | None -> None (* parameter or undefined: opaque *)
              | Some ((bid, idx), i) ->
                (match i with
                 | Instr.Alloca _ -> Some [ Sr_alloca r ]
                 | Instr.Cast { v; _ } -> of_op ~depth:(depth - 1) v
                 | Instr.Gep { base; _ } -> of_op ~depth:(depth - 1) base
                 | Instr.Bin { l; r = rr; _ } ->
                   (match
                      (of_op ~depth:(depth - 1) l, of_op ~depth:(depth - 1) rr)
                    with
                    | Some a, Some b -> Some (a @ b)
                    | _, _ -> None)
                 | Instr.Intrin { op = Instr.I_malloc; _ } ->
                   Some [ Sr_malloc (bid, idx) ]
                 | Instr.Cmp _ | Instr.Load _ | Instr.Call _ | Instr.Intrin _
                 | Instr.Store _ -> None)
          in
          Hashtbl.replace memo r result;
          result
    and of_op ~depth (o : Instr.operand) =
      match o with
      | Instr.Glob g -> Some [ Sr_global g ]
      | Instr.Imm _ | Instr.Nullp -> Some []
      | Instr.Fun _ -> None
      | Instr.Reg r -> of_reg ~depth r
    in
    fun (o : Instr.operand) -> of_op ~depth:24 o

  let is_safe_where (w : Instr.where) =
    match w with
    | Instr.SafeFull | Instr.SafeValue | Instr.SafeDebug | Instr.SafeData ->
      true
    (* Crypt cells live in the regular region (ciphertext in place), so
       they are *not* part of the separated safe region. *)
    | Instr.Regular | Instr.RegularMeta | Instr.Crypt -> false
end

let check_separation (p : Prog.t) ~(model : separation_model)
    (certs : separation_cert list) : (unit, string) result =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let roots_of = Hashtbl.create 8 in
  let walker fname =
    match Hashtbl.find_opt roots_of fname with
    | Some w -> w
    | None ->
      let w = Sep.build_roots (Prog.find_func p fname) in
      Hashtbl.replace roots_of fname w;
      w
  in
  (* 1. The model must account for every safe-routed access: concrete
     provenance lands in [sm_safe], opaque provenance in [sm_opaque]. *)
  let audit =
    Prog.fold_funcs p
      (fun acc fn ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          let fname = fn.Prog.fname in
          let w = walker fname in
          Array.fold_left
            (fun acc (b : Prog.block) ->
              let bid = b.Prog.bid in
              let n = Array.length b.Prog.instrs in
              let rec go acc idx =
                if idx >= n then acc
                else
                  match acc with
                  | Error _ -> acc
                  | Ok () ->
                    let addr =
                      match b.Prog.instrs.(idx) with
                      | Instr.Load { addr; where; _ }
                      | Instr.Store { addr; where; _ }
                        when Sep.is_safe_where where -> Some addr
                      | _ -> None
                    in
                    let acc =
                      match addr with
                      | None -> Ok ()
                      | Some addr ->
                        (match w addr with
                         | Some roots ->
                           (try
                              let missing =
                                List.find
                                  (fun r ->
                                    not
                                      (List.mem (qualify_root fname r)
                                         model.sm_safe))
                                  roots
                              in
                              err
                                "%s: safe access b%d.%d root %s missing from \
                                 the separation model"
                                fname bid idx (sep_root_to_string missing)
                            with Not_found -> Ok ())
                         | None ->
                           if List.mem (fname, bid, idx) model.sm_opaque then
                             Ok ()
                           else
                             err
                               "%s: safe access b%d.%d has opaque provenance \
                                not declared by the model"
                               fname bid idx)
                    in
                    go acc (idx + 1)
              in
              go acc 0)
            acc fn.Prog.blocks)
      (Ok ())
  in
  match audit with
  | Error _ as e -> e
  | Ok () ->
    (* 2. Replay each certificate. *)
    List.fold_left
      (fun acc (c : separation_cert) ->
        match acc with
        | Error _ -> acc
        | Ok () ->
          if not (Prog.has_func p c.sc_func) then
            err "separation certificate for unknown function %s" c.sc_func
          else begin
            let fn = Prog.find_func p c.sc_func in
            if c.sc_block < 0 || c.sc_block >= Array.length fn.Prog.blocks
            then
              err "%s: separation certificate for unknown block b%d" c.sc_func
                c.sc_block
            else begin
              let b = fn.Prog.blocks.(c.sc_block) in
              if c.sc_idx < 0 || c.sc_idx >= Array.length b.Prog.instrs then
                err "%s: separation certificate for unknown instr b%d.%d"
                  c.sc_func c.sc_block c.sc_idx
              else begin
                match b.Prog.instrs.(c.sc_idx) with
                | Instr.Store { addr; where = Instr.Regular; _ } ->
                  (match walker c.sc_func addr with
                   | None ->
                     err
                       "%s: certified store b%d.%d has opaque provenance"
                       c.sc_func c.sc_block c.sc_idx
                   | Some roots ->
                     (try
                        let stray =
                          List.find
                            (fun r -> not (List.mem r c.sc_roots))
                            roots
                        in
                        err
                          "%s: store b%d.%d reaches unclaimed root %s"
                          c.sc_func c.sc_block c.sc_idx
                          (sep_root_to_string stray)
                      with Not_found ->
                        (try
                           let unsafe =
                             List.find
                               (fun r ->
                                 List.mem
                                   (qualify_root c.sc_func r)
                                   model.sm_safe)
                               c.sc_roots
                           in
                           err
                             "%s: store b%d.%d claims safe-resident root %s \
                              as separate"
                             c.sc_func c.sc_block c.sc_idx
                             (sep_root_to_string unsafe)
                         with Not_found -> Ok ())))
                | Instr.Store _ ->
                  err "%s: certificate b%d.%d is not a plain store" c.sc_func
                    c.sc_block c.sc_idx
                | _ ->
                  err "%s: certificate b%d.%d is not a store" c.sc_func
                    c.sc_block c.sc_idx
              end
            end
          end)
      (Ok ()) certs

(** The replay's provenance walker, exported so the emitting analysis can
    phrase its claims in the exact vocabulary the replay re-derives. *)
let local_roots = Sep.build_roots
