(** Structural IR verifier, run after lowering and after every
    instrumentation pass (the analogue of LLVM's module verifier). A
    verification failure indicates a compiler bug, not a user error. *)

type error = { func : string; block : int; msg : string }

exception Invalid_ir of error

let fail func block fmt =
  Printf.ksprintf (fun msg -> raise (Invalid_ir { func; block; msg })) fmt

let check_operand fname bid (p : Prog.t) nregs (o : Instr.operand) =
  match o with
  | Instr.Reg r ->
    if r < 0 || r >= nregs then fail fname bid "register %%r%d out of range" r
  | Instr.Glob g ->
    if Prog.find_global p g = None then fail fname bid "unknown global @%s" g
  | Instr.Fun f ->
    if not (Prog.has_func p f) then fail fname bid "unknown function &%s" f
  | Instr.Imm _ | Instr.Nullp -> ()

let check_block_id fname bid fn target =
  if target < 0 || target >= Array.length fn.Prog.blocks then
    fail fname bid "branch to unknown block b%d" target

(** Registers must be defined before use within straight-line order; we
    check a weaker property (definition exists somewhere) plus exact checks
    for operand well-formedness, which is what the passes can break. *)
let check_func (p : Prog.t) (fn : Prog.func) =
  let fname = fn.fname in
  let defined = Hashtbl.create 64 in
  List.iteri (fun i _ -> Hashtbl.replace defined i ()) fn.params;
  let def r bid =
    if r < 0 || r >= fn.nregs then fail fname bid "destination %%r%d out of range" r;
    Hashtbl.replace defined r ()
  in
  Array.iter
    (fun (b : Prog.block) ->
      let bid = b.bid in
      Array.iter
        (fun (i : Instr.instr) ->
          let op o = check_operand fname bid p fn.nregs o in
          match i with
          | Instr.Alloca { dst; ty; _ } ->
            if Ty.size_of p.tenv ty = 0 then fail fname bid "alloca of zero-sized type";
            def dst bid
          | Instr.Bin { dst; l; r; _ } | Instr.Cmp { dst; l; r; _ } ->
            op l; op r; def dst bid
          | Instr.Load { dst; addr; ty; _ } ->
            op addr;
            if Ty.equal ty Ty.Void then fail fname bid "load of void";
            def dst bid
          | Instr.Store { v; addr; ty; _ } ->
            op v; op addr;
            if Ty.equal ty Ty.Void then fail fname bid "store of void"
          | Instr.Gep { dst; base; path; _ } ->
            op base;
            List.iter
              (function
                | Instr.Index (_, o) -> op o
                | Instr.Field (_, off, _) ->
                  if off < 0 then fail fname bid "negative field offset")
              path;
            def dst bid
          | Instr.Cast { dst; v; _ } -> op v; def dst bid
          | Instr.Call { dst; callee; args; _ } ->
            (match callee with
             | Instr.Direct f ->
               if not (Prog.has_func p f) then fail fname bid "call to unknown %s" f
             | Instr.Indirect o -> op o);
            List.iter op args;
            (match dst with Some d -> def d bid | None -> ())
          | Instr.Intrin { dst; args; _ } ->
            List.iter op args;
            (match dst with Some d -> def d bid | None -> ()))
        b.instrs;
      match b.term with
      | Instr.Ret None ->
        if not (Ty.equal fn.ret_ty Ty.Void) then
          fail fname bid "ret void in non-void function"
      | Instr.Ret (Some o) -> check_operand fname bid p fn.nregs o
      | Instr.Br (c, t1, t2) ->
        check_operand fname bid p fn.nregs c;
        check_block_id fname bid fn t1;
        check_block_id fname bid fn t2
      | Instr.Jmp t -> check_block_id fname bid fn t
      | Instr.Switch (o, cases, dflt) ->
        check_operand fname bid p fn.nregs o;
        List.iter (fun (_, t) -> check_block_id fname bid fn t) cases;
        check_block_id fname bid fn dflt
      | Instr.Unreachable -> ())
    fn.blocks;
  if Array.length fn.blocks = 0 then fail fname 0 "function has no blocks"

(** Verify a whole program; raises [Invalid_ir] on the first violation. *)
let program (p : Prog.t) = Prog.iter_funcs p (fun fn -> check_func p fn)

(** [program_result p] is [Ok ()] or [Error message]. *)
let program_result p =
  match program p with
  | () -> Ok ()
  | exception Invalid_ir e ->
    Error (Printf.sprintf "%s (in %s, block b%d)" e.msg e.func e.block)
