(** Imperative IR construction helper, in the style of LLVM's IRBuilder.

    A builder owns one function under construction and an insertion point;
    the MiniC lowering and the unit tests both use it. *)

open Instr

type t = {
  fn : Prog.func;
  mutable cur : Prog.block;                 (* current insertion block *)
  mutable pending : Instr.instr list;       (* reversed *)
  mutable sealed : bool;
}

let func t = t.fn

(** Create a function and a builder positioned at its (empty) entry block. *)
let create ~name ~params ~ret_ty =
  let entry = { Prog.bid = 0; instrs = [||]; term = Unreachable } in
  let fn =
    { Prog.fname = name; params; ret_ty; blocks = [| entry |];
      nregs = List.length params; reg_ty = Hashtbl.create 16;
      cookie = false; address_taken = false }
  in
  List.iteri (fun i (_, ty) -> Hashtbl.replace fn.reg_ty i ty) params;
  { fn; cur = entry; pending = []; sealed = false }

let fresh_reg ?ty t =
  let r = t.fn.nregs in
  t.fn.nregs <- r + 1;
  (match ty with Some ty -> Hashtbl.replace t.fn.reg_ty r ty | None -> ());
  r

(** Parameter register for the [i]-th parameter. *)
let param_reg _t i = i

let flush t =
  t.cur.instrs <- Array.append t.cur.instrs (Array.of_list (List.rev t.pending));
  t.pending <- []

(** Append a new block (not yet the insertion point); returns its id. *)
let new_block t =
  flush t;
  let bid = Array.length t.fn.blocks in
  let b = { Prog.bid; instrs = [||]; term = Unreachable } in
  t.fn.blocks <- Array.append t.fn.blocks [| b |];
  bid

let position_at t bid =
  flush t;
  t.cur <- t.fn.blocks.(bid)

let emit t i = t.pending <- i :: t.pending

let set_term t term =
  flush t;
  t.cur.term <- term

(* -- Typed emission helpers; each returns the destination register -- *)

let alloca t ty =
  let dst = fresh_reg ~ty:(Ty.Ptr ty) t in
  emit t (Alloca { dst; ty; slot = Auto });
  dst

let bin t op l r =
  let dst = fresh_reg ~ty:Ty.Int t in
  emit t (Bin { dst; op; l; r });
  dst

let cmp t op l r =
  let dst = fresh_reg ~ty:Ty.Int t in
  emit t (Cmp { dst; op; l; r });
  dst

let load t ty addr =
  let dst = fresh_reg ~ty t in
  emit t (Load { dst; ty; addr; where = Regular; checked = false });
  dst

let store t ty v addr = emit t (Store { ty; v; addr; where = Regular; checked = false })

let gep t ~base_ty ~base path =
  let dst = fresh_reg t in
  emit t (Gep { dst; base_ty; base; path });
  dst

let cast t kind ty v =
  let dst = fresh_reg ~ty t in
  emit t (Cast { dst; kind; ty; v });
  dst

let call t ?(fty = Ty.Fn ([], Ty.Void)) ~ret_ty callee args =
  let dst = if Ty.equal ret_ty Ty.Void then None else Some (fresh_reg ~ty:ret_ty t) in
  emit t (Call { dst; callee; args; fty; cfi_checked = false; cfi_set = None });
  dst

let intrin t ?dst_ty op args =
  let dst = match dst_ty with None -> None | Some ty -> Some (fresh_reg ~ty t) in
  emit t (Intrin { dst; op; args });
  dst

(** Finish construction; the function must not be modified afterwards
    through this builder. *)
let finish t =
  flush t;
  t.sealed <- true;
  t.fn
