(** IR types.

    The IR is word-addressed: every atomic value (integer, character,
    pointer, code pointer) occupies exactly one 64-bit word. This mirrors
    how the paper's analysis reasons about memory (objects, sub-objects and
    pointer-sized slots) while keeping the machine simulator simple: bounds
    and offsets are measured in words. *)

type t =
  | Void
  | Int                      (* 64-bit integer word *)
  | Char                     (* character; distinct from Int so that
                                [Ptr Char] can be classified as a universal
                                pointer, as in the paper's char* handling *)
  | Ptr of t                 (* pointer to [t]; [Ptr Void] is void* *)
  | Fn of t list * t         (* function type: arguments, return *)
  | Struct of string         (* named struct; layout lives in [env] *)
  | Arr of t * int           (* fixed-size array *)

(** Struct layout environment: struct name -> ordered fields. *)
type env = { structs : (string, (string * t) list) Hashtbl.t }

let create_env () = { structs = Hashtbl.create 16 }

let define_struct env name fields =
  if Hashtbl.mem env.structs name then
    invalid_arg ("Ty.define_struct: duplicate struct " ^ name);
  Hashtbl.replace env.structs name fields

let struct_fields env name =
  match Hashtbl.find_opt env.structs name with
  | Some fs -> fs
  | None -> invalid_arg ("Ty.struct_fields: unknown struct " ^ name)

(** [size_of env t] is the size of [t] in words. *)
let rec size_of env = function
  | Void -> 0
  | Int | Char | Ptr _ | Fn _ -> 1
  | Arr (t, n) -> n * size_of env t
  | Struct s ->
    List.fold_left (fun acc (_, ft) -> acc + size_of env ft) 0 (struct_fields env s)

(** [field_offset env sname fname] is the word offset of field [fname]
    within struct [sname], together with the field type. *)
let field_offset env sname fname =
  let rec go off = function
    | [] -> invalid_arg (Printf.sprintf "Ty.field_offset: %s has no field %s" sname fname)
    | (n, ft) :: rest ->
      if n = fname then (off, ft) else go (off + size_of env ft) rest
  in
  go 0 (struct_fields env sname)

let is_pointer = function Ptr _ -> true | _ -> false

(** A code pointer: pointer to function type. *)
let is_code_pointer = function Ptr (Fn _) -> true | _ -> false

(** Universal pointers may point to values of any type at runtime
    (void pointers and char pointers), per the paper's Section 3.2.1. *)
let is_universal_pointer = function
  | Ptr Void | Ptr Char -> true
  | _ -> false

let rec equal a b =
  match a, b with
  | Void, Void | Int, Int | Char, Char -> true
  | Ptr a, Ptr b -> equal a b
  | Arr (a, n), Arr (b, m) -> n = m && equal a b
  | Struct a, Struct b -> String.equal a b
  | Fn (aa, ar), Fn (ba, br) ->
    equal ar br
    && List.length aa = List.length ba
    && List.for_all2 equal aa ba
  | (Void | Int | Char | Ptr _ | Arr _ | Struct _ | Fn _), _ -> false

let rec to_string = function
  | Void -> "void"
  | Int -> "int"
  | Char -> "char"
  | Ptr t -> to_string t ^ "*"
  | Fn (args, ret) ->
    Printf.sprintf "%s(%s)" (to_string ret)
      (String.concat ", " (List.map to_string args))
  | Struct s -> "struct " ^ s
  | Arr (t, n) -> Printf.sprintf "%s[%d]" (to_string t) n
