(** Decode-once (prepared) program representation.

    The interpreter used to re-resolve every operand on every execution:
    [Glob]/[Fun] operands went through the loader's hashtables, allocas
    probed the frame layout's slot table, switches walked an assoc list and
    call sites re-derived their return address from the code-address map —
    per instruction executed. A prepared function resolves all of that
    exactly once, at load time, into the types below:

    - operands are either registers or fully resolved constants carrying
      their value and (pre-built) metadata;
    - allocas carry their frame placement directly;
    - loads/stores carry the precomputed trap message and type attributes;
    - GEP index steps carry the element size instead of the type;
    - calls carry the callee's function index and the return address the
      call pushes;
    - switches carry a dense jump table or a hashed case map.

    The representation is parameterized over the metadata type ['m] so this
    library does not depend on the machine: the loader instantiates ['m]
    with its based-on metadata. Preparation happens after instrumentation
    (the passes mutate [Instr.instr] attributes in place); a prepared
    function is a snapshot and does not track later mutation of its source. *)

module I = Instr

type 'm operand =
  | Reg of int            (** virtual register *)
  | Const of int * 'm     (** resolved Imm/Nullp/Glob/Fun: value + metadata *)

type 'm gep_step =
  | Field of int * int           (** word offset, field size (bounds narrowing) *)
  | Index of int * 'm operand    (** element size in words, index operand *)

type 'm callee =
  | Direct of int         (** function index in the prepared program *)
  | Indirect of 'm operand

(** Compiled switch dispatch. [Dense] is used when the case values span a
    small range; [Sparse] hashes the cases. Both preserve the semantics of
    [List.assoc_opt] over the source case list (first binding wins). *)
type switch_table =
  | Dense of { base : int; targets : int array; default : int }
  | Sparse of { cases : (int, int) Hashtbl.t; default : int }

type 'm instr =
  | Alloca of { dst : int; on_safe : bool; offset : int; size : int }
  | Bin of { dst : int; op : I.binop; l : 'm operand; r : 'm operand }
  | Cmp of { dst : int; op : I.cmpop; l : 'm operand; r : 'm operand }
  | Load of { dst : int; what : string; universal : bool; addr : 'm operand;
              where : I.where; checked : bool }
  | Store of { what : string; universal : bool; v : 'm operand;
               addr : 'm operand; where : I.where; checked : bool }
  | Gep of { dst : int; base : 'm operand; path : 'm gep_step array }
  | Cast of { dst : int; v : 'm operand }
  | Call of { dst : int option; callee : 'm callee; args : 'm operand array;
              cfi_checked : bool;
              (* cfi-type: allowed target entry addresses (sorted) for this
                 indirect call; [None] = coarse any-entry check only. *)
              cfi_set : int array option;
              ret_addr : int }
  | Intrin of { dst : int option; op : I.intrin; args : 'm operand array }

type 'm term =
  | Ret of 'm operand option
  | Br of 'm operand * int * int
  | Jmp of int
  | Switch of 'm operand * switch_table
  | Unreachable

type 'm block = { instrs : 'm instr array; term : 'm term }

type 'm func = {
  findex : int;             (** position in the prepared program's array *)
  fname : string;
  nregs : int;
  nparams : int;
  blocks : 'm block array;
  addrs : int array array;  (** code address of (block, ip); one extra slot
                                per block for the terminator position *)
  entry_addr : int;
}

(* A dense table pays one slot per value in [min, max]; cap the waste at a
   small multiple of the case count so pathological sparse switches fall
   back to hashing. *)
let dense_limit ncases = (4 * ncases) + 8

(* Sentinel for "no case claimed this slot yet" while building the dense
   table; block ids are array indices, hence non-negative. *)
let unset = min_int

let switch_table (cases : (int * int) list) (default : int) : switch_table =
  match cases with
  | [] -> Dense { base = 0; targets = [||]; default }
  | (v0, _) :: _ ->
    let lo = List.fold_left (fun a (v, _) -> min a v) v0 cases in
    let hi = List.fold_left (fun a (v, _) -> max a v) v0 cases in
    let span = hi - lo + 1 in
    if span <= dense_limit (List.length cases) then begin
      let targets = Array.make span unset in
      List.iter
        (fun (v, b) -> if targets.(v - lo) = unset then targets.(v - lo) <- b)
        cases;
      Array.iteri (fun i t -> if t = unset then targets.(i) <- default) targets;
      Dense { base = lo; targets; default }
    end
    else begin
      let tbl = Hashtbl.create (2 * List.length cases) in
      List.iter (fun (v, b) -> if not (Hashtbl.mem tbl v) then Hashtbl.add tbl v b) cases;
      Sparse { cases = tbl; default }
    end

let switch_target (t : switch_table) v =
  match t with
  | Dense { base; targets; default } ->
    let i = v - base in
    if i >= 0 && i < Array.length targets then targets.(i) else default
  | Sparse { cases; default } ->
    (match Hashtbl.find_opt cases v with Some b -> b | None -> default)
