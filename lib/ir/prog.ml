(** IR functions, globals and whole programs. *)

type block = {
  bid : int;
  mutable instrs : Instr.instr array;
  mutable term : Instr.term;
}

type func = {
  fname : string;
  params : (string * Ty.t) list;    (* bound to registers 0 .. n-1 on entry *)
  ret_ty : Ty.t;
  mutable blocks : block array;     (* blocks.(0) is the entry block *)
  mutable nregs : int;
  reg_ty : (int, Ty.t) Hashtbl.t;   (* best-effort register types *)
  mutable cookie : bool;            (* stack-cookie pass: guard this frame *)
  mutable address_taken : bool;     (* is a legitimate indirect-call target *)
}

(** Initial contents of one word of a global object. *)
type gcell =
  | Cint of int
  | Cfun of string        (* code address of a function *)
  | Cglob of string * int (* address of a global plus word offset *)

type global = {
  gname : string;
  gty : Ty.t;
  init : gcell array;     (* length = size_of gty; zero-filled if shorter *)
}

type t = {
  tenv : Ty.env;
  mutable globals : global list;          (* in declaration order *)
  funcs : (string, func) Hashtbl.t;
  mutable func_order : string list;       (* declaration order *)
}

let create () =
  { tenv = Ty.create_env (); globals = []; funcs = Hashtbl.create 16; func_order = [] }

let add_func p f =
  if Hashtbl.mem p.funcs f.fname then
    invalid_arg ("Prog.add_func: duplicate function " ^ f.fname);
  Hashtbl.replace p.funcs f.fname f;
  p.func_order <- p.func_order @ [ f.fname ]

let find_func p name =
  match Hashtbl.find_opt p.funcs name with
  | Some f -> f
  | None -> invalid_arg ("Prog.find_func: unknown function " ^ name)

let has_func p name = Hashtbl.mem p.funcs name

let add_global p g = p.globals <- p.globals @ [ g ]

let find_global p name = List.find_opt (fun g -> g.gname = name) p.globals

let iter_funcs p f =
  List.iter (fun name -> f (Hashtbl.find p.funcs name)) p.func_order

let fold_funcs p f acc =
  List.fold_left (fun acc name -> f acc (Hashtbl.find p.funcs name)) acc p.func_order

(** Iterate over every instruction of a function. *)
let iter_instrs (fn : func) f =
  Array.iter (fun b -> Array.iter f b.instrs) fn.blocks

(** Map every instruction array of a function in place, allowing
    instrumentation passes to insert or remove instructions. *)
let rewrite_blocks (fn : func) f =
  Array.iter (fun b -> b.instrs <- f b.instrs) fn.blocks

(** Deep copy of an instruction: variants carry mutable fields, so passes
    must never share instruction values between program copies. *)
let clone_instr (i : Instr.instr) : Instr.instr =
  match i with
  | Instr.Alloca { dst; ty; slot } -> Instr.Alloca { dst; ty; slot }
  | Instr.Bin { dst; op; l; r } -> Instr.Bin { dst; op; l; r }
  | Instr.Cmp { dst; op; l; r } -> Instr.Cmp { dst; op; l; r }
  | Instr.Load { dst; ty; addr; where; checked } ->
    Instr.Load { dst; ty; addr; where; checked }
  | Instr.Store { ty; v; addr; where; checked } ->
    Instr.Store { ty; v; addr; where; checked }
  | Instr.Gep { dst; base_ty; base; path } -> Instr.Gep { dst; base_ty; base; path }
  | Instr.Cast { dst; kind; ty; v } -> Instr.Cast { dst; kind; ty; v }
  | Instr.Call { dst; callee; args; fty; cfi_checked; cfi_set } ->
    Instr.Call { dst; callee; args; fty; cfi_checked; cfi_set }
  | Instr.Intrin { dst; op; args } -> Instr.Intrin { dst; op; args }

let clone_func (fn : func) : func =
  { fn with
    blocks =
      Array.map
        (fun b -> { b with instrs = Array.map clone_instr b.instrs })
        fn.blocks;
    reg_ty = Hashtbl.copy fn.reg_ty }

(** Deep copy of a program, for instrumenting the same module under several
    protection configurations. The type environment and globals are
    immutable and shared. *)
let clone (p : t) : t =
  let funcs = Hashtbl.create (Hashtbl.length p.funcs) in
  Hashtbl.iter (fun name fn -> Hashtbl.replace funcs name (clone_func fn)) p.funcs;
  { tenv = p.tenv; globals = p.globals; funcs; func_order = p.func_order }

(** Functions whose address is taken anywhere in the program (operand
    [Fun f] outside of direct calls, or stored in global initializers).
    This is the valid-target set that a CFI pass would compute. *)
let compute_address_taken (p : t) =
  let taken = Hashtbl.create 16 in
  let mark name = Hashtbl.replace taken name () in
  let check_op = function Instr.Fun f -> mark f | _ -> () in
  let check_instr (i : Instr.instr) =
    match i with
    | Instr.Bin { l; r; _ } | Instr.Cmp { l; r; _ } -> check_op l; check_op r
    | Instr.Load { addr; _ } -> check_op addr
    | Instr.Store { v; addr; _ } -> check_op v; check_op addr
    | Instr.Gep { base; path; _ } ->
      check_op base;
      List.iter (function Instr.Index (_, o) -> check_op o | Instr.Field _ -> ()) path
    | Instr.Cast { v; _ } -> check_op v
    | Instr.Call { callee; args; _ } ->
      (match callee with Instr.Indirect o -> check_op o | Instr.Direct _ -> ());
      List.iter check_op args
    | Instr.Intrin { args; _ } -> List.iter check_op args
    | Instr.Alloca _ -> ()
  in
  iter_funcs p (fun fn ->
      iter_instrs fn check_instr;
      Array.iter
        (fun b ->
          match b.term with
          | Instr.Ret (Some o) -> check_op o
          | Instr.Br (o, _, _) | Instr.Switch (o, _, _) -> check_op o
          | Instr.Ret None | Instr.Jmp _ | Instr.Unreachable -> ())
        fn.blocks);
  List.iter
    (fun g ->
      Array.iter (function Cfun f -> mark f | Cint _ | Cglob _ -> ()) g.init)
    p.globals;
  iter_funcs p (fun fn -> fn.address_taken <- Hashtbl.mem taken fn.fname);
  taken
