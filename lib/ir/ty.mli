(** IR types.

    The IR is word-addressed: every atomic value (integer, character,
    pointer, code pointer) occupies exactly one 64-bit word, so sizes,
    bounds and field offsets are all measured in words. *)

type t =
  | Void
  | Int                      (** 64-bit integer word *)
  | Char                     (** character; kept distinct from [Int] so
                                 that [Ptr Char] can be classified as a
                                 universal pointer *)
  | Ptr of t                 (** pointer; [Ptr Void] is C's void* *)
  | Fn of t list * t         (** function type: arguments, return *)
  | Struct of string         (** named struct; layout lives in [env] *)
  | Arr of t * int           (** fixed-size array *)

(** Struct layout environment: struct name -> ordered fields. *)
type env = { structs : (string, (string * t) list) Hashtbl.t }

val create_env : unit -> env

(** [define_struct env name fields] registers a struct layout.
    @raise Invalid_argument on duplicate definition. *)
val define_struct : env -> string -> (string * t) list -> unit

(** Ordered fields of a struct. @raise Invalid_argument if unknown. *)
val struct_fields : env -> string -> (string * t) list

(** [size_of env t] is the size of [t] in words. *)
val size_of : env -> t -> int

(** [field_offset env sname fname] is the word offset and type of field
    [fname] within struct [sname]. @raise Invalid_argument if unknown. *)
val field_offset : env -> string -> string -> int * t

val is_pointer : t -> bool

(** A code pointer: pointer to function type. *)
val is_code_pointer : t -> bool

(** Universal pointers may point to values of any type at runtime
    (void and char pointers), per the paper's Section 3.2.1. *)
val is_universal_pointer : t -> bool

val equal : t -> t -> bool
val to_string : t -> string
