(** Imperative IR construction, in the style of LLVM's IRBuilder: a builder
    owns one function under construction and an insertion point. *)

type t

(** Create a function and a builder positioned at its empty entry block.
    Parameters are bound to registers [0..n-1]. *)
val create : name:string -> params:(string * Ty.t) list -> ret_ty:Ty.t -> t

val func : t -> Prog.func

(** Allocate a fresh virtual register, optionally recording its type. *)
val fresh_reg : ?ty:Ty.t -> t -> int

(** Register holding the [i]-th parameter. *)
val param_reg : t -> int -> int

(** Append a new block (not yet the insertion point); returns its id. *)
val new_block : t -> int

(** Move the insertion point to block [bid], flushing pending instructions. *)
val position_at : t -> int -> unit

(** Append a raw instruction at the insertion point. *)
val emit : t -> Instr.instr -> unit

(** Seal the current block with a terminator. *)
val set_term : t -> Instr.term -> unit

(** Typed emission helpers; each returns the destination register. *)

val alloca : t -> Ty.t -> int
val bin : t -> Instr.binop -> Instr.operand -> Instr.operand -> int
val cmp : t -> Instr.cmpop -> Instr.operand -> Instr.operand -> int
val load : t -> Ty.t -> Instr.operand -> int
val store : t -> Ty.t -> Instr.operand -> Instr.operand -> unit

val gep :
  t -> base_ty:Ty.t -> base:Instr.operand -> Instr.gep_step list -> int

val cast : t -> Instr.castkind -> Ty.t -> Instr.operand -> int

(** [call t ~fty ~ret_ty callee args] returns the destination register,
    or [None] for void calls. *)
val call :
  t -> ?fty:Ty.t -> ret_ty:Ty.t -> Instr.callee -> Instr.operand list ->
  int option

val intrin :
  t -> ?dst_ty:Ty.t -> Instr.intrin -> Instr.operand list -> int option

(** Finish construction; the function must not be modified through this
    builder afterwards. *)
val finish : t -> Prog.func
