(** Human-readable IR printing, used by the CLI driver's [-emit-ir] mode and
    by tests that assert on instrumentation results. *)

open Instr

let operand = function
  | Reg r -> Printf.sprintf "%%r%d" r
  | Imm i -> string_of_int i
  | Glob g -> "@" ^ g
  | Fun f -> "&" ^ f
  | Nullp -> "null"

let gep_step = function
  | Field (name, off, _) -> Printf.sprintf ".%s(+%d)" name off
  | Index (ty, o) -> Printf.sprintf "[%s x %s]" (operand o) (Ty.to_string ty)

let attrs where checked =
  let w = match where with Regular -> "" | w -> " !" ^ where_name w in
  let c = if checked then " !chk" else "" in
  w ^ c

let instr (i : instr) =
  match i with
  | Alloca { dst; ty; slot } ->
    let s = match slot with Auto -> "" | SafeSlot -> " !safe" | UnsafeSlot -> " !unsafe" in
    Printf.sprintf "%%r%d = alloca %s%s" dst (Ty.to_string ty) s
  | Bin { dst; op; l; r } ->
    Printf.sprintf "%%r%d = %s %s, %s" dst (binop_name op) (operand l) (operand r)
  | Cmp { dst; op; l; r } ->
    Printf.sprintf "%%r%d = cmp.%s %s, %s" dst (cmpop_name op) (operand l) (operand r)
  | Load { dst; ty; addr; where; checked } ->
    Printf.sprintf "%%r%d = load %s, %s%s" dst (Ty.to_string ty) (operand addr)
      (attrs where checked)
  | Store { ty; v; addr; where; checked } ->
    Printf.sprintf "store %s %s, %s%s" (Ty.to_string ty) (operand v) (operand addr)
      (attrs where checked)
  | Gep { dst; base_ty; base; path } ->
    Printf.sprintf "%%r%d = gep %s %s %s" dst (Ty.to_string base_ty) (operand base)
      (String.concat " " (List.map gep_step path))
  | Cast { dst; kind; ty; v } ->
    let k = match kind with
      | Bitcast -> "bitcast" | PtrToInt -> "ptrtoint" | IntToPtr -> "inttoptr"
    in
    Printf.sprintf "%%r%d = %s %s to %s" dst k (operand v) (Ty.to_string ty)
  | Call { dst; callee; args; cfi_checked; _ } ->
    let d = match dst with Some r -> Printf.sprintf "%%r%d = " r | None -> "" in
    let c = match callee with
      | Direct f -> f
      | Indirect o -> "*" ^ operand o
    in
    Printf.sprintf "%scall %s(%s)%s" d c
      (String.concat ", " (List.map operand args))
      (if cfi_checked then " !cfi" else "")
  | Intrin { dst; op; args } ->
    let d = match dst with Some r -> Printf.sprintf "%%r%d = " r | None -> "" in
    Printf.sprintf "%s%s(%s)" d (intrin_name op)
      (String.concat ", " (List.map operand args))

let term = function
  | Ret None -> "ret"
  | Ret (Some o) -> "ret " ^ operand o
  | Br (c, a, b) -> Printf.sprintf "br %s, b%d, b%d" (operand c) a b
  | Jmp b -> Printf.sprintf "jmp b%d" b
  | Switch (o, cases, dflt) ->
    Printf.sprintf "switch %s [%s] default b%d" (operand o)
      (String.concat "; " (List.map (fun (v, b) -> Printf.sprintf "%d->b%d" v b) cases))
      dflt
  | Unreachable -> "unreachable"

let func (fn : Prog.func) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "func %s(%s) : %s%s {\n" fn.fname
       (String.concat ", "
          (List.map (fun (n, ty) -> n ^ " : " ^ Ty.to_string ty) fn.params))
       (Ty.to_string fn.ret_ty)
       (if fn.cookie then " !cookie" else ""));
  Array.iter
    (fun (b : Prog.block) ->
      Buffer.add_string buf (Printf.sprintf "b%d:\n" b.bid);
      Array.iter (fun i -> Buffer.add_string buf ("  " ^ instr i ^ "\n")) b.instrs;
      Buffer.add_string buf ("  " ^ term b.term ^ "\n"))
    fn.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let program (p : Prog.t) =
  let buf = Buffer.create 1024 in
  Hashtbl.iter
    (fun name fields ->
      Buffer.add_string buf
        (Printf.sprintf "struct %s { %s }\n" name
           (String.concat "; "
              (List.map (fun (n, ty) -> n ^ " : " ^ Ty.to_string ty) fields))))
    p.Prog.tenv.Ty.structs;
  List.iter
    (fun (g : Prog.global) ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s : %s\n" g.gname (Ty.to_string g.gty)))
    p.Prog.globals;
  Prog.iter_funcs p (fun fn -> Buffer.add_string buf (func fn));
  Buffer.contents buf
