(** Structural IR verifier, run after lowering and after every
    instrumentation pass (the analogue of LLVM's module verifier). A
    verification failure indicates a compiler bug, not a user error. *)

type error = { func : string; block : int; msg : string }

exception Invalid_ir of error

(** Verify one function. @raise Invalid_ir on the first violation. *)
val check_func : Prog.t -> Prog.func -> unit

(** Verify a whole program. @raise Invalid_ir on the first violation. *)
val program : Prog.t -> unit

(** [program_result p] is [Ok ()] or [Error message]. *)
val program_result : Prog.t -> (unit, string) result

(** One elided dereference check: the access at [ce_block.ce_idx] of
    [ce_func] had its [checked] flag cleared by the redundant-check
    elision pass. *)
type elision_cert = { ce_func : string; ce_block : int; ce_idx : int }

(** Independently re-justify every elision: rebuild the symbolic address
    of each elided access and replay the must-availability argument — an
    equivalent, still-present check passes on every path into the elided
    position, with no intervening store, call, free or re-allocation that
    could change the checked value, metadata or temporal liveness. Errors
    indicate a bug in the elision pass. *)
val check_elision : Prog.t -> elision_cert list -> (unit, string) result

(** An allocation site a plain store's address may be rooted in:
    a global, an alloca (by destination register, scoped to the
    certificate's function) or a malloc site (by block/index position,
    same scoping). *)
type sep_root =
  | Sr_global of string
  | Sr_alloca of int
  | Sr_malloc of int * int

(** A safe-region separation certificate: the plain ([Regular]) store at
    [sc_block.sc_idx] of [sc_func] only ever writes memory rooted in
    [sc_roots], none of which backs safe-region storage. Emitted by the
    static soundness pass ({!Levee_analysis.Racecheck}). *)
type separation_cert = {
  sc_func : string;
  sc_block : int;
  sc_idx : int;
  sc_roots : sep_root list;
}

(** The emitting analysis's account of where safe-region storage lives:
    [sm_safe] lists every allocation site reached by a safe-routed
    access, qualified by function name ([""] for globals); [sm_opaque]
    lists safe accesses whose provenance the local walk cannot decide
    (the checker insists they are declared rather than forgotten). *)
type separation_model = {
  sm_safe : (string * sep_root) list;
  sm_opaque : (string * int * int) list;
}

val sep_root_to_string : sep_root -> string

(** Independently replay every separation certificate against the
    instrumented program: (1) audit the model — every safe-routed access
    must either walk to roots listed in [sm_safe] or be declared opaque;
    (2) for each certificate, re-derive the store's roots with a local
    single-def provenance walk and check they are claimed and disjoint
    from [sm_safe]. Errors indicate a bug in the static pass. *)
val check_separation :
  Prog.t ->
  model:separation_model ->
  separation_cert list ->
  (unit, string) result

(** [local_roots fn] is the separation replay's own provenance walker:
    roots of an address operand by a local single-def walk, [None] when
    provenance is opaque (loaded pointer, call result, multiply-defined
    register). Exposed so the emitting analysis speaks the same
    vocabulary; the replay never trusts the emitter's call. *)
val local_roots :
  Prog.func -> Instr.operand -> sep_root list option
