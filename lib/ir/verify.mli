(** Structural IR verifier, run after lowering and after every
    instrumentation pass (the analogue of LLVM's module verifier). A
    verification failure indicates a compiler bug, not a user error. *)

type error = { func : string; block : int; msg : string }

exception Invalid_ir of error

(** Verify one function. @raise Invalid_ir on the first violation. *)
val check_func : Prog.t -> Prog.func -> unit

(** Verify a whole program. @raise Invalid_ir on the first violation. *)
val program : Prog.t -> unit

(** [program_result p] is [Ok ()] or [Error message]. *)
val program_result : Prog.t -> (unit, string) result

(** One elided dereference check: the access at [ce_block.ce_idx] of
    [ce_func] had its [checked] flag cleared by the redundant-check
    elision pass. *)
type elision_cert = { ce_func : string; ce_block : int; ce_idx : int }

(** Independently re-justify every elision: rebuild the symbolic address
    of each elided access and replay the must-availability argument — an
    equivalent, still-present check passes on every path into the elided
    position, with no intervening store, call, free or re-allocation that
    could change the checked value, metadata or temporal liveness. Errors
    indicate a bug in the elision pass. *)
val check_elision : Prog.t -> elision_cert list -> (unit, string) result
