(** Structural IR verifier, run after lowering and after every
    instrumentation pass (the analogue of LLVM's module verifier). A
    verification failure indicates a compiler bug, not a user error. *)

type error = { func : string; block : int; msg : string }

exception Invalid_ir of error

(** Verify one function. @raise Invalid_ir on the first violation. *)
val check_func : Prog.t -> Prog.func -> unit

(** Verify a whole program. @raise Invalid_ir on the first violation. *)
val program : Prog.t -> unit

(** [program_result p] is [Ok ()] or [Error message]. *)
val program_result : Prog.t -> (unit, string) result
