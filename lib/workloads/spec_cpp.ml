(** SPEC CPU2006-like workloads, part 4: the C++ group — omnetpp,
    xalancbmk, dealII, soplex, povray. MiniC models virtual dispatch the
    way clang lowers it: objects hold a pointer to a table of function
    pointers. Pointers to such objects are sensitive under CPI's Fig. 7
    criterion, which is exactly why the paper's C++ benchmarks have the
    highest instrumentation fractions (Table 2) and overheads (Fig. 3). *)

(* 471.omnetpp: discrete-event simulation; every event delivery is a
   virtual call, and the future-event set stores pointers to sensitive
   objects. The paper's worst case for CPI (36.6% of memory ops). *)
let omnetpp =
  { Workload.name = "471.omnetpp";
    lang = Workload.Cpp;
    description = "discrete-event simulator with virtual message handlers";
    input = [||];
    fuel = 60_000_000;
    source = {|
struct module;
struct modvtbl {
  int (*handle)(struct module *, int);
  int (*stats)(struct module *);
};
struct module {
  struct modvtbl *vt;
  int id;
  int state;
  int out;          // index of downstream module
};
struct event;
struct evtvtbl {
  int (*before)(struct event *, struct event *);
};
struct event {
  struct evtvtbl *vt;
  int time;
  int payload;
  void *ctx;          // opaque per-event context, as real simulators keep
  struct module *dst;
};

int evt_before(struct event *a, struct event *b) {
  if (a->time != b->time) { return a->time < b->time; }
  return a->payload <= b->payload;
}
struct evtvtbl vt_evt = { evt_before };

struct event *fes[512];
int fes_n;
int now;
struct module *mods[32];
int delivered;
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void fes_push(struct event *e) {
  int i = fes_n;
  fes_n = fes_n + 1;
  fes[i] = e;
  while (i > 0) {
    int p = (i - 1) / 2;
    if (fes[p]->vt->before(fes[p], fes[i])) { break; }
    struct event *t = fes[p]; fes[p] = fes[i]; fes[i] = t;
    i = p;
  }
}

struct event *fes_pop() {
  struct event *top = fes[0];
  int i = 0;
  fes_n = fes_n - 1;
  fes[0] = fes[fes_n];
  while (1) {
    int l = i * 2 + 1;
    int r = l + 2 - 1;
    int m = i;
    if (l < fes_n && fes[l]->vt->before(fes[l], fes[m]) && fes[l]->time != fes[m]->time) { m = l; }
    if (r < fes_n && fes[r]->vt->before(fes[r], fes[m]) && fes[r]->time != fes[m]->time) { m = r; }
    if (m == i) { break; }
    struct event *t = fes[m]; fes[m] = fes[i]; fes[i] = t;
    i = m;
  }
  return top;
}

void schedule(struct module *dst, int dt, int payload) {
  struct event *e;
  if (fes_n >= 500) { return; }
  e = (struct event *) malloc(sizeof(struct event));
  e->vt = &vt_evt;
  e->time = now + dt;
  e->payload = payload;
  e->ctx = (void *) dst;
  e->dst = dst;
  fes_push(e);
}

int queue_handle(struct module *self, int pay) {
  self->state = self->state + pay;
  if (self->state > 50) {
    schedule(mods[self->out], 1 + (pay & 3), self->state / 2);
    self->state = 0;
  }
  return self->state;
}
int queue_stats(struct module *self) { return self->state * 2 + self->id; }

int src_handle(struct module *self, int pay) {
  schedule(mods[self->out], 1 + (pay & 7), 1 + (self->id & 15));
  schedule(self, 2 + (self->state & 3), pay & 31);
  self->state = self->state + 1;
  return pay;
}
int src_stats(struct module *self) { return self->state + 1000; }

int sink_handle(struct module *self, int pay) {
  self->state = (self->state + pay) & 65535;
  return 0;
}
int sink_stats(struct module *self) { return self->state; }

struct modvtbl vt_queue = { queue_handle, queue_stats };
struct modvtbl vt_src = { src_handle, src_stats };
struct modvtbl vt_sink = { sink_handle, sink_stats };

int main() {
  int i;
  int acc = 0;
  seed = 3;
  for (i = 0; i < 32; i = i + 1) {
    struct module *mo = (struct module *) malloc(sizeof(struct module));
    mo->id = i;
    mo->state = 0;
    mo->out = (i + 1) % 32;
    mo->vt = &vt_queue;
    if (i % 8 == 0) { mo->vt = &vt_src; }
    if (i % 8 == 7) { mo->vt = &vt_sink; }
    mods[i] = mo;
  }
  fes_n = 0;
  now = 0;
  for (i = 0; i < 8; i = i + 1) { schedule(mods[i * 4], i + 1, 5); }
  delivered = 0;
  while (fes_n > 0 && delivered < 60000) {
    struct event *e = fes_pop();
    struct module *target = (struct module *) e->ctx;
    now = e->time;
    acc = (acc + target->vt->handle(e->dst, e->payload)) & 16777215;
    delivered = delivered + 1;
    free(e);
  }
  for (i = 0; i < 32; i = i + 1) {
    acc = (acc + mods[i]->vt->stats(mods[i])) & 16777215;
  }
  checksum(acc + delivered);
  print_int(acc + delivered);
  return 0;
}
|} }

(* 483.xalancbmk: XML-like tree transformation; every node access goes
   through a virtual handler table, and the tree is pointer-dense. *)
let xalancbmk =
  { Workload.name = "483.xalancbmk";
    lang = Workload.Cpp;
    description = "XML-tree transformation with per-node-kind virtual handlers";
    input = [||];
    fuel = 60_000_000;
    source = {|
struct xnode;
struct xvtbl {
  int (*render)(struct xnode *, int);
  int (*match)(struct xnode *, int);
};
struct xnode {
  struct xvtbl *vt;
  int tag;
  int value;
  struct xnode *child;
  struct xnode *sibling;
};

int seed;
int out_len;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int elem_render(struct xnode *n, int depth) {
  int s = n->tag * 2 + depth;
  struct xnode *c = n->child;
  out_len = out_len + 2;
  while (c != 0) {
    s = (s + c->vt->render(c, depth + 1)) & 16777215;
    c = c->sibling;
  }
  return s;
}
int elem_match(struct xnode *n, int pat) {
  if ((n->tag & 7) == (pat & 7)) { return 1; }
  return 0;
}

int text_render(struct xnode *n, int depth) {
  out_len = out_len + 1;
  return (n->value + depth) & 65535;
}
int text_match(struct xnode *n, int pat) {
  if (n->value % 5 == pat % 5) { return 1; }
  return 0;
}

struct xvtbl vt_elem = { elem_render, elem_match };
struct xvtbl vt_text = { text_render, text_match };

struct xnode *mknode(int depth) {
  struct xnode *n = (struct xnode *) malloc(sizeof(struct xnode));
  n->tag = rnd(64);
  n->value = rnd(1000);
  n->child = 0;
  n->sibling = 0;
  if (depth > 0 && rnd(3) != 0) {
    int kids = 1 + rnd(3);
    int i;
    struct xnode *prev = 0;
    n->vt = &vt_elem;
    for (i = 0; i < kids; i = i + 1) {
      struct xnode *c = mknode(depth - 1);
      c->sibling = prev;
      prev = c;
    }
    n->child = prev;
  }
  if (n->child == 0) { n->vt = &vt_text; }
  return n;
}

int count_matches(struct xnode *n, int pat) {
  int c = n->vt->match(n, pat);
  struct xnode *k = n->child;
  while (k != 0) {
    c = c + count_matches(k, pat);
    k = k->sibling;
  }
  return c;
}

int main() {
  int doc;
  int acc = 0;
  seed = 12;
  for (doc = 0; doc < 60; doc = doc + 1) {
    struct xnode *root = mknode(6);
    int p;
    out_len = 0;
    acc = (acc + root->vt->render(root, 0)) & 16777215;
    for (p = 0; p < 8; p = p + 1) {
      acc = (acc + count_matches(root, p)) & 16777215;
    }
    acc = (acc + out_len) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 447.dealII: finite-element-like assembly where each element type
   provides shape-function callbacks through a vtable, mixed with dense
   matrix arithmetic. *)
let dealii =
  { Workload.name = "447.dealII";
    lang = Workload.Cpp;
    description = "FEM-like assembly with element vtables plus dense kernels";
    input = [||];
    fuel = 60_000_000;
    source = {|
struct elem;
struct evtbl {
  int (*shape)(struct elem *, int, int);
  int (*jacobian)(struct elem *);
};
struct elem {
  struct evtbl *vt;
  int kind;
  int coords[8];
};

int stiffness[64][64];
struct elem *elems[128];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int quad_shape(struct elem *e, int i, int q) {
  return (e->coords[i & 7] * (q + 1)) / 4 + i;
}
int quad_jac(struct elem *e) {
  return 1 + ((e->coords[0] * e->coords[3] - e->coords[1] * e->coords[2]) & 255);
}
int tri_shape(struct elem *e, int i, int q) {
  return (e->coords[i % 6] * (q + 2)) / 3 - i;
}
int tri_jac(struct elem *e) {
  return 1 + ((e->coords[0] + e->coords[1] * 2 + e->coords[2]) & 127);
}

struct evtbl vt_quad = { quad_shape, quad_jac };
struct evtbl vt_tri = { tri_shape, tri_jac };

void assemble(struct elem *e) {
  int i, j, q;
  struct evtbl *vt = e->vt;
  int jac = vt->jacobian(e);
  for (i = 0; i < 4; i = i + 1) {
    for (j = 0; j < 4; j = j + 1) {
      int acc = 0;
      for (q = 0; q < 4; q = q + 1) {
        acc = acc + vt->shape(e, i, q) * vt->shape(e, j, q);
      }
      int r = (e->coords[i] & 63);
      int c = (e->coords[j + 4 - 4] & 63);
      stiffness[r][c] = (stiffness[r][c] + acc / jac) & 16777215;
    }
  }
}

int smooth() {
  int i, j;
  int s = 0;
  for (i = 1; i < 63; i = i + 1) {
    for (j = 1; j < 63; j = j + 1) {
      stiffness[i][j] =
        (stiffness[i][j] * 2 + stiffness[i - 1][j] + stiffness[i + 1][j]) / 4;
      s = (s + stiffness[i][j]) & 16777215;
    }
  }
  return s;
}

int main() {
  int round;
  int acc = 0;
  int i, k;
  seed = 21;
  for (i = 0; i < 128; i = i + 1) {
    struct elem *e = (struct elem *) malloc(sizeof(struct elem));
    e->kind = rnd(2);
    if (e->kind == 0) { e->vt = &vt_quad; } else { e->vt = &vt_tri; }
    for (k = 0; k < 8; k = k + 1) { e->coords[k] = rnd(100); }
    elems[i] = e;
  }
  for (round = 0; round < 24; round = round + 1) {
    for (i = 0; i < 128; i = i + 1) { assemble(elems[i]); }
    acc = (acc + smooth()) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 450.soplex: revised-simplex-like iterations: dense ratio tests and
   pivots, with the pricing rule chosen through a function pointer. *)
let soplex =
  { Workload.name = "450.soplex";
    lang = Workload.Cpp;
    description = "simplex pivoting with function-pointer pricing rules";
    input = [||];
    fuel = 60_000_000;
    source = {|
int tableau[48][64];
int basis[48];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int price_dantzig(int col) {
  return tableau[0][col];
}
int price_steepest(int col) {
  int i;
  int norm = 1;
  for (i = 1; i < 48; i = i + 4) {
    norm = norm + (tableau[i][col] * tableau[i][col]) / 256;
  }
  return (tableau[0][col] * 64) / norm;
}

int (*pricer)(int);

int choose_col() {
  int c;
  int best = 0;
  int bestv = 0;
  for (c = 1; c < 64; c = c + 1) {
    int v = pricer(c);
    if (v > bestv) { bestv = v; best = c; }
  }
  return best;
}

int choose_row(int col) {
  int r;
  int best = -1;
  int bestv = 1000000000;
  for (r = 1; r < 48; r = r + 1) {
    if (tableau[r][col] > 0) {
      int ratio = (tableau[r][0] * 256) / tableau[r][col];
      if (ratio < bestv) { bestv = ratio; best = r; }
    }
  }
  return best;
}

void pivot(int row, int col) {
  int r, c;
  int p = tableau[row][col];
  if (p == 0) { return; }
  for (r = 0; r < 48; r = r + 1) {
    if (r != row && tableau[r][col] != 0) {
      int f = (tableau[r][col] * 256) / p;
      for (c = 0; c < 64; c = c + 1) {
        tableau[r][c] = tableau[r][c] - (f * tableau[row][c]) / 256;
      }
    }
  }
  basis[row] = col;
}

int main() {
  int round;
  int acc = 0;
  int r, c;
  seed = 17;
  for (round = 0; round < 30; round = round + 1) {
    int it;
    for (r = 0; r < 48; r = r + 1) {
      basis[r] = r;
      for (c = 0; c < 64; c = c + 1) { tableau[r][c] = rnd(41) - 10; }
      tableau[r][0] = 10 + rnd(100);
    }
    if (round % 2 == 0) { pricer = price_dantzig; } else { pricer = price_steepest; }
    for (it = 0; it < 12; it = it + 1) {
      int col = choose_col();
      int row;
      if (col == 0) { break; }
      row = choose_row(col);
      if (row < 0) { break; }
      pivot(row, col);
    }
    for (r = 0; r < 48; r = r + 1) { acc = (acc + basis[r] + tableau[r][0]) & 16777215; }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 453.povray: ray/object intersection where each object kind provides
   its intersection test through a vtable; moderate dispatch rate over
   mostly arithmetic code. *)
let povray =
  { Workload.name = "453.povray";
    lang = Workload.Cpp;
    description = "ray tracer with per-object virtual intersection tests";
    input = [||];
    fuel = 60_000_000;
    source = {|
struct shape;
struct svtbl {
  int (*hit)(struct shape *, int, int, int);
  int (*shade)(struct shape *, int);
};
struct shape {
  struct svtbl *vt;
  int cx; int cy; int cz;
  int r;
  int color;
};

struct shape *scene[24];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

/* analytic first-hit of the ray from the origin toward (dx,dy,64) by
   coarse discriminant search: the virtual call happens once per object
   per ray, with plenty of arithmetic behind it, as in a real tracer */
int sphere_hit(struct shape *s, int dx, int dy, int t0) {
  int best = -1;
  int t;
  for (t = t0; t < 96; t = t + 16) {
    int px = (dx * t) / 64 - s->cx;
    int py = (dy * t) / 64 - s->cy;
    int pz = t - s->cz;
    int d2 = px * px + py * py + pz * pz;
    if (d2 < s->r * s->r) { best = t; break; }
  }
  return best;
}
int sphere_shade(struct shape *s, int t) { return (s->color * (256 - t)) / 256; }

int plane_hit(struct shape *s, int dx, int dy, int t0) {
  int t;
  for (t = t0; t < 96; t = t + 16) {
    int py = (dy * t) / 64;
    if (py <= -s->cy && t > 4) { return t; }
  }
  return -1;
}
int plane_shade(struct shape *s, int t) {
  return ((s->color + t) & 1) * 200 + 20;
}

struct svtbl vt_sphere = { sphere_hit, sphere_shade };
struct svtbl vt_plane = { plane_hit, plane_shade };

int trace(int dx, int dy) {
  int i;
  int best_t = 1000000;
  struct shape *best_s = 0;
  for (i = 0; i < 24; i = i + 1) {
    struct shape *s = scene[i];
    int h = s->vt->hit(s, dx, dy, 4);
    if (h >= 0 && h < best_t) { best_t = h; best_s = s; }
  }
  if (best_s != 0) { return best_s->vt->shade(best_s, best_t); }
  return 0;
}

int main() {
  int x, y;
  int acc = 0;
  int i;
  seed = 88;
  for (i = 0; i < 24; i = i + 1) {
    struct shape *s = (struct shape *) malloc(sizeof(struct shape));
    s->cx = rnd(128) - 64;
    s->cy = rnd(128) - 64;
    s->cz = 20 + rnd(60);
    s->r = 4 + rnd(12);
    s->color = rnd(256);
    if (i % 6 == 5) { s->vt = &vt_plane; } else { s->vt = &vt_sphere; }
    scene[i] = s;
  }
  for (y = -32; y < 32; y = y + 1) {
    for (x = -32; x < 32; x = x + 1) {
      acc = (acc + trace(x, y)) & 16777215;
    }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }
