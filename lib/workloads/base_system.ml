(** Base-system packages (Section 5.3).

    The paper's FreeBSD case study rebuilds the base system — libraries,
    development tools, and services like bind and openssh — under
    CPI/CPS/SafeStack. This module models a representative sample of such
    tools; the `distro` bench target requires each to build, verify and run
    identically under every protection. *)

let mk name description source =
  { Workload.name; lang = Workload.C; description; input = [||];
    fuel = 30_000_000; source }

let rnd = {|
int seed;
int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}
|}

(* grep-like: substring scan with a bad-character skip table. *)
let grep =
  mk "base/grep" "Boyer-Moore-Horspool substring scan over generated text" (rnd ^ {|
char text[8192];
char pat[8];
int skip[32];

int search() {
  int m = strlen(pat);
  int i;
  int found = 0;
  for (i = 0; i < 32; i = i + 1) { skip[i] = m; }
  for (i = 0; i < m - 1; i = i + 1) { skip[(pat[i] - 97) & 31] = m - 1 - i; }
  i = 0;
  while (i + m <= 8192) {
    int j = m - 1;
    while (j >= 0 && text[i + j] == pat[j]) { j = j - 1; }
    if (j < 0) { found = found + 1; i = i + 1; }
    else { i = i + skip[(text[i + m - 1] - 97) & 31]; }
  }
  return found;
}

int main() {
  int round;
  int acc = 0;
  int i;
  seed = 7;
  for (i = 0; i < 8192; i = i + 1) { text[i] = 97 + rnd(26); }
  for (round = 0; round < 50; round = round + 1) {
    for (i = 0; i < 3; i = i + 1) { pat[i] = 97 + rnd(26); }
    pat[3] = 0;
    acc = (acc + search()) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* sort-like: merge sort over records via an index array. *)
let sort =
  mk "base/sort" "bottom-up merge sort over keyed records" (rnd ^ {|
int keys[2048];
int idx[2048];
int tmp[2048];

void merge_pass(int width) {
  int lo;
  for (lo = 0; lo < 2048; lo = lo + width * 2) {
    int mid = lo + width;
    int hi = lo + width * 2;
    int a = lo;
    int b = mid;
    int o = lo;
    if (mid > 2048) { mid = 2048; }
    if (hi > 2048) { hi = 2048; }
    while (a < mid && b < hi) {
      if (keys[idx[a]] <= keys[idx[b]]) { tmp[o] = idx[a]; a = a + 1; }
      else { tmp[o] = idx[b]; b = b + 1; }
      o = o + 1;
    }
    while (a < mid) { tmp[o] = idx[a]; a = a + 1; o = o + 1; }
    while (b < hi) { tmp[o] = idx[b]; b = b + 1; o = o + 1; }
  }
  for (lo = 0; lo < 2048; lo = lo + 1) { idx[lo] = tmp[lo]; }
}

int main() {
  int round;
  int acc = 0;
  int i, w;
  seed = 9;
  for (round = 0; round < 8; round = round + 1) {
    for (i = 0; i < 2048; i = i + 1) { keys[i] = rnd(100000); idx[i] = i; }
    for (w = 1; w < 2048; w = w * 2) { merge_pass(w); }
    acc = (acc + keys[idx[0]] + keys[idx[2047]] + keys[idx[1024]]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* sh-like: tokenize a command line and dispatch builtins through a
   function-pointer table (a small amount of sensitive traffic, like a
   real shell). *)
let sh =
  mk "base/sh" "command tokenizer + builtin dispatch table" (rnd ^ {|
char cmdline[64];
char tok[8][12];
int ntok;
int env_val[16];

int bi_echo(int argc) { return argc; }
int bi_set(int argc) { env_val[argc & 15] = argc * 2; return 1; }
int bi_get(int argc) { return env_val[argc & 15]; }
int bi_true(int argc) { return 0; }

int (*builtins[4])(int) = { bi_echo, bi_set, bi_get, bi_true };

void gen_cmdline() {
  int i;
  int n = 10 + rnd(40);
  for (i = 0; i < n; i = i + 1) {
    cmdline[i] = 97 + rnd(26);
    if (rnd(5) == 0) { cmdline[i] = 32; }
  }
  cmdline[n] = 0;
}

int tokenize() {
  int i = 0;
  int t = 0;
  int o = 0;
  ntok = 0;
  while (cmdline[i] != 0 && t < 8) {
    if (cmdline[i] == 32) {
      if (o > 0) { tok[t][o] = 0; t = t + 1; o = 0; }
    }
    else {
      if (o < 11) { tok[t][o] = cmdline[i]; o = o + 1; }
    }
    i = i + 1;
  }
  if (o > 0) { tok[t][o] = 0; t = t + 1; }
  ntok = t;
  return t;
}

int main() {
  int round;
  int acc = 0;
  seed = 13;
  for (round = 0; round < 8000; round = round + 1) {
    gen_cmdline();
    int n = tokenize();
    if (n > 0) {
      int which = (tok[0][0] + n) & 3;
      acc = (acc + builtins[which](n)) & 16777215;
    }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* bind-like: DNS message name decompression and label parsing. *)
let bind =
  mk "base/bind" "DNS-like label parsing with compression pointers" (rnd ^ {|
char msg[512];

void gen_msg() {
  int i = 0;
  while (i < 400) {
    int len = 1 + rnd(12);
    if (i + len + 1 >= 400) { break; }
    msg[i] = len;
    int j;
    for (j = 1; j <= len; j = j + 1) { msg[i + j] = 97 + rnd(26); }
    i = i + len + 1;
  }
  msg[i] = 0;
}

int parse_name(int start) {
  int i = start;
  int total = 0;
  int hops = 0;
  while (msg[i] != 0 && hops < 64) {
    int len = msg[i] & 63;
    if (len == 0) { break; }
    total = total + len;
    i = i + len + 1;
    hops = hops + 1;
    if (i >= 500) { break; }
  }
  return total;
}

int main() {
  int round;
  int acc = 0;
  seed = 17;
  for (round = 0; round < 1200; round = round + 1) {
    gen_msg();
    acc = (acc + parse_name(0) + parse_name(rnd(64))) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* openssh-like: key-schedule-ish mixing plus MAC over a packet. *)
let openssh =
  mk "base/openssh" "cipher key schedule + MAC over packets" (rnd ^ {|
int key[16];
int sched[64];
int packet[128];

void key_schedule() {
  int i;
  for (i = 0; i < 16; i = i + 1) { sched[i] = key[i]; }
  for (i = 16; i < 64; i = i + 1) {
    int a = sched[i - 16];
    int b = sched[i - 3];
    sched[i] = ((a ^ (b << 2)) + (a >> 3) + i) & 268435455;
  }
}

int mac(int len) {
  int h = 2166136261;
  int i;
  for (i = 0; i < len; i = i + 1) {
    h = ((h ^ packet[i]) * 16777619) & 268435455;
    h = (h + sched[i & 63]) & 268435455;
  }
  return h;
}

int main() {
  int round;
  int acc = 0;
  int i;
  seed = 19;
  for (i = 0; i < 16; i = i + 1) { key[i] = rnd(65536); }
  key_schedule();
  for (round = 0; round < 4000; round = round + 1) {
    int len = 32 + rnd(96);
    for (i = 0; i < len; i = i + 1) { packet[i] = rnd(256); }
    acc = (acc + mac(len)) & 16777215;
    if ((round & 255) == 0) { key[round & 15] = acc & 65535; key_schedule(); }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(** The base-system package sample, as used by `bench/main.exe distro`. *)
let all = [ grep; sort; sh; bind; openssh ]
