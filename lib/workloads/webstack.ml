(** The web-server throughput case study (Table 4).

    The paper benchmarks FreeBSD + Apache + SQLite + mod_wsgi + Python +
    Django serving three page kinds. We model the same stack as three
    request-processing workloads over shared substrates: a static file
    server (request parsing, hook-table dispatch, block copies through
    runtime-selected frame pointers — the unprovable-memcpy case), a
    WSGI-ish page (routing + templating through a small Python-like object
    layer), and a fully dynamic page (a template interpreter over the
    dynamic object model plus an ORM query tree) — the last reproducing
    the paper's pathologically high CPI overhead for Python-generated
    pages. *)

let rnd = {|
int seed;
int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}
|}

let static_page =
  { Workload.name = "web-static";
    lang = Workload.C;
    description = "static page: parse + hook chain + sendfile through opaque pointers";
    input = [||];
    fuel = 40_000_000;
    source = rnd ^ {|
int file_a[256]; int file_b[256]; int file_c[256]; int file_d[256];
int *file_cache[4];
char reqline[48];
char headers[96];
int sockbuf[300];
int served;

// apache-style hook chain: each phase is a function pointer
int hook_auth(int r) { return r + 1; }
int hook_log(int r) { served = served + 1; return r; }
int hook_type(int r) { return r * 2 + 1; }
int hook_fixup(int r) { return r ^ 5; }

int (*hooks[4])(int) = { hook_auth, hook_type, hook_fixup, hook_log };

void gen_request(int which) {
  strcpy(reqline, "GET /file");
  reqline[9] = 48 + which;
  reqline[10] = 0;
}

int parse_request() {
  int i = 0;
  int slash = -1;
  while (reqline[i] != 0) {
    if (reqline[i] == 47) { slash = i; }
    i = i + 1;
  }
  if (slash < 0) { return -1; }
  return (reqline[i - 1] - 48) & 3;
}

void build_headers(int len) {
  int n;
  strcpy(headers, "HTTP/1.1 200 OK content-length: ");
  n = strlen(headers);
  headers[n] = 48 + (len % 10);
  headers[n + 1] = 0;
}

/* the sendfile path: source selected through a pointer table at runtime,
   so its real type is not statically recoverable (Section 3.2.2) */
void send_block(void *src, int n) {
  memcpy(sockbuf, src, n);
}

int main() {
  int req;
  int acc = 0;
  int i, h;
  seed = 23;
  file_cache[0] = file_a; file_cache[1] = file_b;
  file_cache[2] = file_c; file_cache[3] = file_d;
  for (i = 0; i < 256; i = i + 1) {
    file_a[i] = rnd(256); file_b[i] = rnd(256);
    file_c[i] = rnd(256); file_d[i] = rnd(256);
  }
  for (req = 0; req < 4000; req = req + 1) {
    int which, len, r;
    gen_request(rnd(4));
    which = parse_request();
    r = req;
    for (h = 0; h < 4; h = h + 1) { r = hooks[h](r); }
    len = 16 + rnd(64);
    build_headers(len);
    send_block(file_cache[which], len);
    acc = (acc + sockbuf[len - 1] + r + strlen(headers)) & 16777215;
  }
  checksum(acc + served);
  print_int(acc + served);
  return 0;
}
|} }

let wsgi_page =
  { Workload.name = "web-wsgi";
    lang = Workload.C;
    description = "wsgi test page: routing + templating through a Python-like object layer";
    input = [||];
    fuel = 40_000_000;
    source = rnd ^ {|
struct wobj;
struct wtype {
  int (*as_int)(struct wobj *);
  int (*render)(struct wobj *);
};
struct wobj { struct wtype *type; int ival; void *env; };

int wint_as_int(struct wobj *o) { return o->ival; }
int wint_render(struct wobj *o) { return (o->ival & 255) + 32; }
int wstr_as_int(struct wobj *o) { return o->ival * 31; }
int wstr_render(struct wobj *o) {
  struct wobj *env = (struct wobj *) o->env;
  if (env != 0) { return (o->ival + env->type->as_int(env)) & 255; }
  return o->ival & 255;
}
struct wtype wint_type = { wint_as_int, wint_render };
struct wtype wstr_type = { wstr_as_int, wstr_render };

struct wobj *context[8];
char tmpl[64];
char page[256];
int sessions[256];

int render(int user) {
  int i = 0;
  int o = 0;
  while (tmpl[i] != 0) {
    if (tmpl[i] == 36) {
      // '$': render the next context object through its type table
      struct wobj *v = context[(user + o) & 7];
      page[o] = v->type->render(v);
      o = o + 1;
    }
    else { page[o] = tmpl[i]; o = o + 1; }
    i = i + 1;
  }
  page[o] = 0;
  sessions[user & 255] = (sessions[user & 255] + 1) & 65535;
  return o;
}

int main() {
  int req;
  int acc = 0;
  int i;
  seed = 29;
  strcpy(tmpl, "$ $:$ $=$ $ $.$ $ $;$ $");
  for (i = 0; i < 8; i = i + 1) {
    struct wobj *o = (struct wobj *) malloc(sizeof(struct wobj));
    o->ival = 40 + rnd(60);
    o->env = 0;
    if (i % 2 == 0) { o->type = &wint_type; } else { o->type = &wstr_type; }
    if (i > 0) { o->env = (void *) context[i - 1]; }
    context[i] = o;
  }
  for (req = 0; req < 9000; req = req + 1) {
    int user = rnd(1000);
    acc = (acc + render(user) + sessions[user & 255]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

let dynamic_page =
  { Workload.name = "web-dynamic";
    lang = Workload.C;
    description = "dynamic page: template interpreter over a dynamic object model + query tree";
    input = [||];
    fuel = 80_000_000;
    source = rnd ^ {|
// ---- the Python-like object engine (method tables + void* payloads) ----
struct pyobj;
struct pytype {
  int (*as_int)(struct pyobj *);
  int (*item)(struct pyobj *, int);
  int (*render)(struct pyobj *);
};
struct pyobj {
  struct pytype *type;
  int ival;
  void *payload;
};

int int_as_int(struct pyobj *o) { return o->ival; }
int int_item(struct pyobj *o, int i) { return o->ival + i; }
int int_render(struct pyobj *o) { return o->ival & 255; }

int list_as_int(struct pyobj *o) { return o->ival * 2; }
int list_item(struct pyobj *o, int i) {
  struct pyobj *inner = (struct pyobj *) o->payload;
  if (inner != 0) { return inner->type->as_int(inner) + i; }
  return i;
}
int list_render(struct pyobj *o) {
  /* walk the payload chain, dispatching at every hop, like rendering a
     nested template context */
  struct pyobj *inner = (struct pyobj *) o->payload;
  int s = o->ival;
  int hops = 0;
  while (inner != 0 && hops < 6) {
    s = (s + inner->type->as_int(inner)) & 65535;
    inner = (struct pyobj *) inner->payload;
    hops = hops + 1;
  }
  return s & 65535;
}

struct pytype int_type = { int_as_int, int_item, int_render };
struct pytype list_type = { list_as_int, list_item, list_render };

struct pyobj *ctxvars[16];

// ---- the ORM-ish query tree (data pointers only) ----
struct row { int key; int val; struct row *l; struct row *r; };
struct row *db;

struct row *db_insert(struct row *n, int key, int val) {
  if (n == 0) {
    struct row *f = (struct row *) malloc(sizeof(struct row));
    f->key = key; f->val = val; f->l = 0; f->r = 0;
    return f;
  }
  if (key < n->key) { n->l = db_insert(n->l, key, val); }
  if (key > n->key) { n->r = db_insert(n->r, key, val); }
  return n;
}

int db_lookup(struct row *n, int key) {
  if (n == 0) { return 0; }
  if (key == n->key) { return n->val; }
  if (key < n->key) { return db_lookup(n->l, key); }
  return db_lookup(n->r, key);
}

/* ---- fragment cache: rendered HTML pieces appended to the response by
   opaque-pointer copies, as CPython's string joins do ---- */
int frag_a[48]; int frag_b[48]; int frag_c[48]; int frag_d[48];
int *fragments[4];
int response[4096];
int resp_n;

void emit_fragment(void *frag, int n) {
  memcpy(response + resp_n, frag, n);
  resp_n = resp_n + n;
  if (resp_n > 4000) { resp_n = 0; }
}

/* ---- the template interpreter: each template op dispatches through the
   object model and appends a rendered fragment, as CPython's eval loop
   and string joins do ---- */
int template_ops[64];

int run_template(int reqid) {
  int pc;
  int out = 0;
  for (pc = 0; pc < 64; pc = pc + 1) {
    int op = template_ops[pc];
    struct pyobj *v = ctxvars[(reqid + pc) & 15];
    if (op == 0) { out = (out + v->type->render(v)) & 16777215; }
    if (op == 1) { out = (out + v->type->as_int(v)) & 16777215; }
    if (op == 2) { out = (out + v->type->item(v, pc)) & 16777215; }
    if (op == 3) { out = (out + db_lookup(db, (reqid * 7 + pc) & 1023)) & 16777215; }
    emit_fragment(fragments[(out + pc) & 3], 24 + (out & 15));
  }
  out = out + response[resp_n & 4095];
  return out;
}

int main() {
  int req;
  int acc = 0;
  int i;
  seed = 31;
  fragments[0] = frag_a; fragments[1] = frag_b;
  fragments[2] = frag_c; fragments[3] = frag_d;
  for (i = 0; i < 48; i = i + 1) {
    frag_a[i] = 60 + i; frag_b[i] = 61 + i; frag_c[i] = 62 + i; frag_d[i] = 63 + i;
  }
  for (i = 0; i < 1024; i = i + 1) { db = db_insert(db, rnd(1024), i); }
  for (i = 0; i < 16; i = i + 1) {
    struct pyobj *o = (struct pyobj *) malloc(sizeof(struct pyobj));
    o->ival = rnd(500);
    o->payload = 0;
    if (i % 4 == 3) { o->type = &int_type; } else { o->type = &list_type; }
    if (i > 0) { o->payload = (void *) ctxvars[i - 1]; }
    ctxvars[i] = o;
  }
  for (i = 0; i < 64; i = i + 1) {
    int k = rnd(16);
    /* a real template is mostly variable interpolation with an
       occasional query: ops 0-2 dominate */
    if (k == 3) { template_ops[i] = 3; }
    else { template_ops[i] = k % 3; }
  }
  for (req = 0; req < 2500; req = req + 1) {
    acc = (acc + run_template(req)) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(** Table 4 rows, in the paper's order. *)
let all = [ static_page; wsgi_page; dynamic_page ]

(* ---- Concurrent server variants ---- *)

(* The request-processing kernel shared by every thread count: an
   apache-style hook chain dispatched through a function-pointer table
   (safe-store traffic under CPI/CPS) plus some per-request compute. Pure
   except for the atomic served counter, so requests commute. *)
let conc_kernel = {|
int queue[600]; int qhead; int qtail; int qlock;
int acclock; int acc;
int served;
int tids[8];

int hook_auth(int r) { return r + 1; }
int hook_log(int r) { atomic_add(&served, 1); return r; }
int hook_type(int r) { return r * 2 + 1; }
int hook_fixup(int r) { return r ^ 5; }

int (*hooks[4])(int) = { hook_auth, hook_type, hook_fixup, hook_log };

int process(int req) {
  int h; int k;
  int r = req;
  for (h = 0; h < 4; h = h + 1) { r = hooks[h](r); }
  for (k = 0; k < 20; k = k + 1) { r = (r * 33 + k) & 16777215; }
  return r & 65535;
}

/* one worker: drain the shared queue under qlock, fold results into the
   shared accumulator under acclock. (acc + r) & mask is addition mod 2^24,
   so the final state is independent of the interleaving: any scheduler
   seed produces the same checksum. */
int worker(int wid) {
  int done = 0;
  int mine = 0;
  while (done == 0) {
    int req = -1;
    mutex_lock(&qlock);
    if (qhead < qtail) { req = queue[qhead]; qhead = qhead + 1; }
    mutex_unlock(&qlock);
    if (req < 0) { done = 1; }
    else {
      int r = process(req);
      mutex_lock(&acclock);
      acc = (acc + r) & 16777215;
      mutex_unlock(&acclock);
      mine = mine + 1;
    }
  }
  return mine;
}
|}

(** Maximum spawnable worker threads. [Layout.max_threads] counts every
    thread *including main* (tids 0..max_threads-1), so a workload that
    spawns [Layout.max_threads] workers would crash at the last
    [thread_spawn]. Shared by [concurrent], [server] and the `levee
    conc`/`levee serve` argument validation. *)
let max_workers = Levee_machine.Layout.max_threads - 1

(** [check_workers ~flag n] rejects out-of-range worker counts with a
    message naming the CLI flag that carried them. *)
let check_workers ~flag threads =
  if threads < 1 || threads > max_workers then
    invalid_arg
      (Printf.sprintf
         "%s must be in 1..%d (the machine runs at most %d threads \
          including main)"
         flag max_workers Levee_machine.Layout.max_threads)

(** [concurrent ~threads] is the web-serving workload with [threads]
    workers draining a shared request queue. [threads = 1] spawns nothing
    — main drains the queue itself, exercising exactly the single-threaded
    machine — so its journal rows double as the byte-identity witness for
    [--threads 1]. Higher counts spawn [threads] workers and join them.
    The workload is race-free by construction and its output and checksum
    are scheduler-seed-independent; only cycles and context-switch counts
    vary with the seed. *)
let concurrent ~threads =
  check_workers ~flag:"--threads" threads;
  let drive =
    if threads = 1 then "  total = worker(0);\n"
    else
      Printf.sprintf
        "  for (t = 0; t < %d; t = t + 1) { tids[t] = thread_spawn(worker, t); }\n\
        \  total = 0;\n\
        \  for (t = 0; t < %d; t = t + 1) { total = total + thread_join(tids[t]); }\n"
        threads threads
  in
  { Workload.name = Printf.sprintf "web-conc-t%d" threads;
    lang = Workload.C;
    description =
      Printf.sprintf
        "concurrent server: %d worker(s) draining a shared request queue"
        threads;
    input = [||];
    fuel = 40_000_000;
    source =
      rnd ^ conc_kernel
      ^ Printf.sprintf {|
int main() {
  int i; int t; int total;
  seed = 37;
  for (i = 0; i < 600; i = i + 1) { queue[i] = rnd(4096); }
  qtail = 600;
%s  checksum(acc + total + served);
  print_int(acc);
  print_int(total + served);
  return 0;
}
|} drive }

(* ---- The resilient-server workload: sharded KV store behind a
   function-pointer handler table ---- *)

(** Shard-count cap: per-shard lock and KV arrays are sized statically. *)
let max_shards = 16

(** Request-count cap: the request queue is a static global array. *)
let max_requests = 4096

(** [server ~threads ~shards ~cls ~requests] is the fault-tolerant server
    kernel behind `levee serve`: [threads] workers drain a shared queue of
    [requests] requests over a KV store split into [shards] shards, each
    guarded by its own mutex. Every request is classified (static / wsgi /
    dynamic — [cls] forces one class for calibration runs, [cls = -1]
    mixes them round-robin) and dispatched through a function-pointer
    handler table, so control-flow hijack attempts against the dispatch
    path are visible to the protection under test; [backdoor] is the
    hijack witness ([system] => [Hijacked]).

    Handlers only ever *add* into KV cells (mod 2^16) and return a value
    that is a pure function of the request id, so acc, the final KV image
    and the checksum are independent of the scheduler seed — worker kills
    and stalls change cycles and per-thread work splits, never the
    surviving checksum. The workload name encodes every parameter because
    [Workload.compile] caches by name. *)
let server ~threads ~shards ~cls ~requests =
  check_workers ~flag:"--workers" threads;
  if shards < 1 || shards > max_shards then
    invalid_arg
      (Printf.sprintf "--shards must be in 1..%d" max_shards);
  if requests < 1 || requests > max_requests then
    invalid_arg
      (Printf.sprintf "Webstack.server: requests must be in 1..%d"
         max_requests);
  if cls < -1 || cls > 2 then
    invalid_arg "Webstack.server: cls must be -1 (mixed) or 0..2";
  let classify = if cls < 0 then "req % 3" else string_of_int cls in
  let drive =
    if threads = 1 then "  total = worker(0);\n"
    else
      Printf.sprintf
        "  for (t = 0; t < %d; t = t + 1) { tids[t] = thread_spawn(worker, t); }\n\
        \  total = 0;\n\
        \  for (t = 0; t < %d; t = t + 1) { total = total + thread_join(tids[t]); }\n"
        threads threads
  in
  { Workload.name =
      Printf.sprintf "web-serve-t%d-sh%d-c%d-r%d" threads shards cls requests;
    lang = Workload.C;
    description =
      Printf.sprintf
        "resilient server: %d worker(s), %d-shard KV store, class %s, %d requests"
        threads shards (if cls < 0 then "mix" else string_of_int cls) requests;
    input = [||];
    fuel = 40_000_000;
    source =
      rnd
      ^ Printf.sprintf {|
int queue[%d]; int qhead; int qtail; int qlock;
int acclock; int acc;
int served;
int tids[8];
int shard_lock[%d];
int kv[%d];

int backdoor() { system("pwn"); return 1; }

/* static page: one KV touch, almost no compute */
int handler_static(int req) {
  int s = req %% %d;
  int r = (req * 7 + 11) & 65535;
  mutex_lock(&shard_lock[s]);
  kv[s * 64 + (req & 63)] = (kv[s * 64 + (req & 63)] + r) & 65535;
  mutex_unlock(&shard_lock[s]);
  return r;
}

/* wsgi page: medium compute outside the lock, a few KV touches inside */
int handler_wsgi(int req) {
  int s = req %% %d;
  int r = req & 65535;
  int k;
  for (k = 0; k < 16; k = k + 1) { r = (r * 33 + k) & 16777215; }
  mutex_lock(&shard_lock[s]);
  for (k = 0; k < 4; k = k + 1) {
    kv[s * 64 + ((req + k) & 63)] = (kv[s * 64 + ((req + k) & 63)] + 1) & 65535;
  }
  mutex_unlock(&shard_lock[s]);
  return r & 65535;
}

/* dynamic page: heaviest compute, widest KV touch */
int handler_dyn(int req) {
  int s = req %% %d;
  int r = (req * 3 + 1) & 65535;
  int k;
  for (k = 0; k < 48; k = k + 1) { r = (r * 29 + k) & 16777215; }
  mutex_lock(&shard_lock[s]);
  for (k = 0; k < 8; k = k + 1) {
    kv[s * 64 + ((req * 3 + k) & 63)] = (kv[s * 64 + ((req * 3 + k) & 63)] + 3) & 65535;
  }
  mutex_unlock(&shard_lock[s]);
  return r & 65535;
}

int (*handlers[3])(int) = { handler_static, handler_wsgi, handler_dyn };

int classify(int req) { return %s; }

int worker(int wid) {
  int done = 0;
  int mine = 0;
  while (done == 0) {
    int req = -1;
    mutex_lock(&qlock);
    if (qhead < qtail) { req = queue[qhead]; qhead = qhead + 1; }
    mutex_unlock(&qlock);
    if (req < 0) { done = 1; }
    else {
      int c = classify(req);
      int r = handlers[c](req);
      atomic_add(&served, 1);
      mutex_lock(&acclock);
      acc = (acc + r) & 16777215;
      mutex_unlock(&acclock);
      mine = mine + 1;
    }
  }
  return mine;
}

int main() {
  int i; int t; int total;
  seed = 41;
  for (i = 0; i < %d; i = i + 1) { kv[i] = rnd(4096); }
  for (i = 0; i < %d; i = i + 1) { queue[i] = i; }
  qtail = %d;
%s  for (i = 0; i < %d; i = i + 1) { acc = (acc + kv[i]) & 16777215; }
  checksum(acc + total + served);
  print_int(acc);
  print_int(total + served);
  return 0;
}
|}
          requests shards (shards * 64) shards shards shards classify
          (shards * 64) requests requests drive (shards * 64) }
