(** SPEC CPU2006-like workloads, part 1: perlbench, bzip2, gcc, mcf,
    gobmk. Each mimics the pointer profile of its namesake (see DESIGN.md):
    perlbench dispatches opcodes through a function-pointer table, gcc
    manipulates trees whose nodes embed callbacks, bzip2/mcf/gobmk are
    data-dominated. *)

(* 400.perlbench: a stack-machine interpreter whose main loop calls opcode
   handlers through a function-pointer table — the exact dispatch structure
   Section 3.3 discusses. *)
let perlbench =
  { Workload.name = "400.perlbench";
    lang = Workload.C;
    description = "bytecode interpreter with function-pointer opcode dispatch";
    input = [||];
    fuel = 30_000_000;
    source = {|
int vm_stack[64];
int vm_sp;
int vm_vars[16];
int vm_acc;

int op_push(int a) { vm_stack[vm_sp] = a; vm_sp = vm_sp + 1; return 0; }
int op_add(int a) {
  vm_sp = vm_sp - 1;
  vm_stack[vm_sp - 1] = vm_stack[vm_sp - 1] + vm_stack[vm_sp];
  return a;
}
int op_sub(int a) {
  vm_sp = vm_sp - 1;
  vm_stack[vm_sp - 1] = vm_stack[vm_sp - 1] - vm_stack[vm_sp];
  return a;
}
int op_mul(int a) {
  vm_sp = vm_sp - 1;
  vm_stack[vm_sp - 1] = vm_stack[vm_sp - 1] * vm_stack[vm_sp];
  return a;
}
int op_load(int a) { vm_stack[vm_sp] = vm_vars[a & 15]; vm_sp = vm_sp + 1; return 0; }
int op_store(int a) { vm_sp = vm_sp - 1; vm_vars[a & 15] = vm_stack[vm_sp]; return 0; }
int op_dup(int a) {
  vm_stack[vm_sp] = vm_stack[vm_sp - 1];
  vm_sp = vm_sp + 1;
  return a;
}
int op_and(int a) {
  vm_sp = vm_sp - 1;
  vm_stack[vm_sp - 1] = vm_stack[vm_sp - 1] & vm_stack[vm_sp];
  return a;
}
int op_xor(int a) {
  vm_sp = vm_sp - 1;
  vm_stack[vm_sp - 1] = vm_stack[vm_sp - 1] ^ vm_stack[vm_sp];
  return a;
}
int op_acc(int a) {
  vm_sp = vm_sp - 1;
  vm_acc = vm_acc + (vm_stack[vm_sp] & 65535);
  return a;
}

int (*ops[10])(int) = { op_push, op_add, op_sub, op_mul, op_load,
                        op_store, op_dup, op_and, op_xor, op_acc };

int code_op[512];
int code_arg[512];
int code_len;

int seed;
int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void emit(int op, int arg) {
  code_op[code_len] = op;
  code_arg[code_len] = arg;
  code_len = code_len + 1;
}

// Generate a random straight-line script that keeps the stack balanced.
void gen_script() {
  int i;
  int depth = 0;
  emit(0, 17);
  depth = 1;
  for (i = 0; i < 400; i = i + 1) {
    int k = rnd(10);
    if (depth < 2 && (k == 1 || k == 2 || k == 3 || k == 7 || k == 8)) { k = 0; }
    if (depth > 48) { k = 9; }
    if (k == 0) { emit(0, rnd(1000)); depth = depth + 1; }
    if (k == 1) { emit(1, 0); depth = depth - 1; }
    if (k == 2) { emit(2, 0); depth = depth - 1; }
    if (k == 3) { emit(3, 0); depth = depth - 1; }
    if (k == 4) { emit(4, rnd(16)); depth = depth + 1; }
    if (k == 5) { if (depth > 1) { emit(5, rnd(16)); depth = depth - 1; } }
    if (k == 6) { emit(6, 0); depth = depth + 1; }
    if (k == 7) { emit(7, 0); depth = depth - 1; }
    if (k == 8) { emit(8, 0); depth = depth - 1; }
    if (k == 9) { if (depth > 1) { emit(9, 0); depth = depth - 1; } }
  }
  while (depth > 0) { emit(9, 0); depth = depth - 1; }
}

int run_pass() {
  int pc;
  vm_sp = 0;
  for (pc = 0; pc < code_len; pc = pc + 1) {
    ops[code_op[pc]](code_arg[pc]);
  }
  return vm_acc;
}

int main() {
  int iter;
  seed = 42;
  gen_script();
  for (iter = 0; iter < 300; iter = iter + 1) {
    vm_vars[iter & 15] = iter * 3;
    run_pass();
  }
  checksum(vm_acc);
  print_int(vm_acc);
  return 0;
}
|} }

(* 401.bzip2: run-length encoding + move-to-front over generated buffers;
   almost pure char-array manipulation. *)
let bzip2 =
  { Workload.name = "401.bzip2";
    lang = Workload.C;
    description = "RLE + move-to-front compression kernel on char buffers";
    input = [||];
    fuel = 30_000_000;
    source = {|
char inbuf[2048];
char rlebuf[4096];
char mtfbuf[4096];
char mtf_table[64];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void gen_input() {
  int i;
  int v = 7;
  for (i = 0; i < 2048; i = i + 1) {
    if (rnd(4) == 0) { v = rnd(64); }
    inbuf[i] = v;
  }
}

int rle_encode() {
  int i = 0;
  int o = 0;
  while (i < 2048) {
    int run = 1;
    while (i + run < 2048 && inbuf[i + run] == inbuf[i] && run < 63) {
      run = run + 1;
    }
    rlebuf[o] = run;
    rlebuf[o + 1] = inbuf[i];
    o = o + 2;
    i = i + run;
  }
  return o;
}

int mtf_encode(int n) {
  int i, j;
  for (i = 0; i < 64; i = i + 1) { mtf_table[i] = i; }
  for (i = 0; i < n; i = i + 1) {
    int c = rlebuf[i];
    int pos = 0;
    while (mtf_table[pos] != c) { pos = pos + 1; }
    for (j = pos; j > 0; j = j - 1) { mtf_table[j] = mtf_table[j - 1]; }
    mtf_table[0] = c;
    mtfbuf[i] = pos;
  }
  return n;
}

int entropy_proxy(int n) {
  int freq[64];
  int i;
  int bits = 0;
  for (i = 0; i < 64; i = i + 1) { freq[i] = 0; }
  for (i = 0; i < n; i = i + 1) { freq[mtfbuf[i] & 63] = freq[mtfbuf[i] & 63] + 1; }
  for (i = 0; i < 64; i = i + 1) {
    int f = freq[i];
    int cost = 6;
    if (f > n / 4) { cost = 2; }
    if (f <= n / 4 && f > n / 16) { cost = 4; }
    bits = bits + f * cost;
  }
  return bits;
}

int main() {
  int pass;
  int total = 0;
  seed = 1234;
  for (pass = 0; pass < 25; pass = pass + 1) {
    int n;
    gen_input();
    n = rle_encode();
    n = mtf_encode(n);
    total = total + entropy_proxy(n);
  }
  checksum(total);
  print_int(total);
  return 0;
}
|} }

(* 403.gcc: expression trees whose nodes carry fold callbacks — the
   "embeds function pointers in its data structures" pattern the paper
   names as the reason for gcc's higher CPI overhead. *)
let gcc =
  { Workload.name = "403.gcc";
    lang = Workload.C;
    description = "expression-tree constant folding through per-node callbacks";
    input = [||];
    fuel = 40_000_000;
    source = {|
struct tnode {
  int kind;
  int val;
  struct tnode *l;
  struct tnode *r;
  int (*fold)(struct tnode *);
};

int seed;
int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int fold_const(struct tnode *n) { return n->val; }
int fold_add(struct tnode *n) { return n->l->fold(n->l) + n->r->fold(n->r); }
int fold_sub(struct tnode *n) { return n->l->fold(n->l) - n->r->fold(n->r); }
int fold_mul(struct tnode *n) { return (n->l->fold(n->l) * n->r->fold(n->r)) & 65535; }

struct tnode *mk(int depth) {
  struct tnode *n;
  n = (struct tnode *) malloc(sizeof(struct tnode));
  if (depth <= 0 || rnd(4) == 0) {
    n->kind = 0;
    n->val = rnd(100);
    n->l = 0;
    n->r = 0;
    n->fold = fold_const;
    return n;
  }
  n->kind = 1 + rnd(3);
  n->val = 0;
  n->l = mk(depth - 1);
  n->r = mk(depth - 1);
  if (n->kind == 1) { n->fold = fold_add; }
  if (n->kind == 2) { n->fold = fold_sub; }
  if (n->kind == 3) { n->fold = fold_mul; }
  return n;
}

// simple strength-reduction rewrite: x*const with small const -> adds
int rewrite(struct tnode *n) {
  int changed = 0;
  if (n->kind == 0) { return 0; }
  changed = rewrite(n->l) + rewrite(n->r);
  if (n->kind == 3 && n->r->kind == 0 && n->r->val == 2) {
    n->kind = 1;
    n->fold = fold_add;
    n->r->val = n->l->fold(n->l);
    n->r->fold = fold_const;
    n->r->kind = 0;
    changed = changed + 1;
  }
  return changed;
}

int gen_bits[128];
int kill_bits[128];
int in_bits[128];

/* iterative dataflow over a linear CFG: the array-crunching side of a
   compiler, diluting the pointer-heavy tree phases as in real gcc */
int dataflow_pass() {
  int it, b;
  int changed = 1;
  int acc = 0;
  for (it = 0; it < 12 && changed; it = it + 1) {
    changed = 0;
    for (b = 1; b < 128; b = b + 1) {
      int inv = in_bits[b - 1] | gen_bits[b - 1];
      inv = inv & ~kill_bits[b - 1];
      if (inv != in_bits[b]) { in_bits[b] = inv; changed = 1; }
    }
  }
  for (b = 0; b < 128; b = b + 1) { acc = (acc + in_bits[b]) & 16777215; }
  return acc;
}

int main() {
  int i;
  int acc = 0;
  seed = 77;
  for (i = 0; i < 128; i = i + 1) {
    gen_bits[i] = rnd(65536);
    kill_bits[i] = rnd(65536);
  }
  for (i = 0; i < 220; i = i + 1) {
    struct tnode *t = mk(6);
    acc = acc + t->fold(t);
    acc = acc + rewrite(t);
    acc = (acc + t->fold(t)) & 16777215;
    gen_bits[i & 127] = acc & 65535;
    acc = (acc + dataflow_pass()) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 429.mcf: single-source shortest path relaxation over a linked network;
   pointer-chasing on structs that contain NO code pointers — the case
   where CPI instruments almost nothing. *)
let mcf =
  { Workload.name = "429.mcf";
    lang = Workload.C;
    description = "network relaxation over code-pointer-free linked structs";
    input = [||];
    fuel = 40_000_000;
    source = {|
struct mnode {
  int dist;
  int supply;
  struct arc *first;
  struct mnode *nextq;
};
struct arc {
  int cost;
  struct mnode *head;
  struct arc *next;
};

struct mnode *nodes[256];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void build() {
  int i, j;
  for (i = 0; i < 256; i = i + 1) {
    struct mnode *n = (struct mnode *) malloc(sizeof(struct mnode));
    n->dist = 1000000;
    n->supply = rnd(100);
    n->first = 0;
    n->nextq = 0;
    nodes[i] = n;
  }
  for (i = 0; i < 256; i = i + 1) {
    for (j = 0; j < 6; j = j + 1) {
      struct arc *a = (struct arc *) malloc(sizeof(struct arc));
      a->cost = 1 + rnd(50);
      a->head = nodes[rnd(256)];
      a->next = nodes[i]->first;
      nodes[i]->first = a;
    }
  }
}

int relax_all() {
  int i;
  int changed = 0;
  for (i = 0; i < 256; i = i + 1) {
    struct mnode *n = nodes[i];
    struct arc *a = n->first;
    while (a != 0) {
      int nd = n->dist + a->cost;
      if (nd < a->head->dist) {
        a->head->dist = nd;
        changed = changed + 1;
      }
      a = a->next;
    }
  }
  return changed;
}

int main() {
  int round;
  int acc = 0;
  int sweeps = 0;
  seed = 5;
  build();
  for (round = 0; round < 40; round = round + 1) {
    int i;
    nodes[rnd(256)]->dist = 0;
    while (relax_all() > 0 && sweeps < 4000) { sweeps = sweeps + 1; }
    for (i = 0; i < 256; i = i + 1) {
      acc = (acc + nodes[i]->dist) & 16777215;
      nodes[i]->dist = 1000000 - (acc & 1023);
    }
  }
  checksum(acc + sweeps);
  print_int(acc + sweeps);
  return 0;
}
|} }

(* 445.gobmk: board-game influence propagation on 2-D arrays plus a small
   pattern-matcher table. *)
let gobmk =
  { Workload.name = "445.gobmk";
    lang = Workload.C;
    description = "Go-like influence computation on boards, few pattern callbacks";
    input = [||];
    fuel = 40_000_000;
    source = {|
int board[21][21];
int infl[21][21];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int pat_wall(int x, int y) { return board[x][y] * 3 + board[x][y - 1]; }
int pat_corner(int x, int y) { return board[x][y] + board[x - 1][y - 1] * 2; }
int pat_jump(int x, int y) { return board[x][y] * 2 - board[x - 1][y]; }

int (*patterns[3])(int, int) = { pat_wall, pat_corner, pat_jump };

void place_stones() {
  int i;
  for (i = 0; i < 120; i = i + 1) {
    board[1 + rnd(19)][1 + rnd(19)] = 1 + rnd(2);
  }
}

void propagate() {
  int x, y, it;
  for (it = 0; it < 8; it = it + 1) {
    for (x = 1; x < 20; x = x + 1) {
      for (y = 1; y < 20; y = y + 1) {
        int v = board[x][y] * 64;
        v = v + (infl[x - 1][y] + infl[x + 1][y] + infl[x][y - 1] + infl[x][y + 1]) / 4;
        infl[x][y] = (infl[x][y] + v) / 2;
      }
    }
  }
}

int score() {
  int x, y;
  int s = 0;
  for (x = 1; x < 20; x = x + 1) {
    for (y = 1; y < 20; y = y + 1) {
      s = s + infl[x][y];
      if (x > 1 && y > 1) {
        s = s + patterns[(x + y) % 3](x, y);
      }
    }
  }
  return s & 16777215;
}

int main() {
  int game;
  int acc = 0;
  seed = 99;
  for (game = 0; game < 25; game = game + 1) {
    int x, y;
    for (x = 0; x < 21; x = x + 1) {
      for (y = 0; y < 21; y = y + 1) { board[x][y] = 0; infl[x][y] = 0; }
    }
    place_stones();
    propagate();
    acc = (acc + score()) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }
