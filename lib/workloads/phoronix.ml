(** Phoronix-like system workloads (Fig. 4).

    The paper evaluates a rebuilt FreeBSD distribution with the Phoronix
    test suite ("server" setting). We model a representative subset of
    those benchmarks as MiniC programs with matching computational
    character: web-server request handling, crypto, compression, a
    database engine, two language-runtime benchmarks (pybench is the
    paper's pathological CPI case), and media/DSP kernels. *)

let mk name description source =
  { Workload.name; lang = Workload.C; description; input = [||];
    fuel = 40_000_000; source }

let common_rnd = {|
int seed;
int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}
|}

(* apache-like: request-line parsing, routing, header assembly. *)
let apache =
  mk "apache" "HTTP request parse + route + response assembly" (common_rnd ^ {|
char reqbuf[64];
char respbuf[256];
char routes[8][16];
int hits[8];

void init_routes() {
  strcpy(routes[0], "/index");
  strcpy(routes[1], "/about");
  strcpy(routes[2], "/api/v1");
  strcpy(routes[3], "/static");
  strcpy(routes[4], "/login");
  strcpy(routes[5], "/logout");
  strcpy(routes[6], "/data");
  strcpy(routes[7], "/health");
}

void gen_request() {
  int r = rnd(8);
  strcpy(reqbuf, "GET ");
  strcpy(reqbuf + 4, routes[r]);
}

int route() {
  int i;
  for (i = 0; i < 8; i = i + 1) {
    if (strcmp(reqbuf + 4, routes[i]) == 0) { return i; }
  }
  return -1;
}

int respond(int r) {
  int n;
  strcpy(respbuf, "HTTP/1.1 200 OK ");
  n = strlen(respbuf);
  strcpy(respbuf + n, routes[r]);
  hits[r] = hits[r] + 1;
  return strlen(respbuf);
}

int main() {
  int i;
  int acc = 0;
  seed = 1;
  init_routes();
  for (i = 0; i < 30000; i = i + 1) {
    int r;
    gen_request();
    r = route();
    if (r >= 0) { acc = (acc + respond(r)) & 16777215; }
  }
  for (i = 0; i < 8; i = i + 1) { acc = (acc + hits[i]) & 16777215; }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* openssl-like: fixed-window modular exponentiation on a small bignum. *)
let openssl =
  mk "openssl" "modular exponentiation over 16-limb bignums" (common_rnd ^ {|
int base_n[16];
int mod_n[16];
int acc_n[16];
int tmp_n[32];

void mul_mod() {
  int i, j;
  for (i = 0; i < 32; i = i + 1) { tmp_n[i] = 0; }
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      tmp_n[i + j] = (tmp_n[i + j] + acc_n[i] * base_n[j]) & 65535;
    }
  }
  for (i = 0; i < 16; i = i + 1) {
    acc_n[i] = (tmp_n[i] + tmp_n[i + 16] * 3 + mod_n[i]) & 65535;
  }
}

int main() {
  int bit;
  int acc = 0;
  int i;
  seed = 9;
  for (i = 0; i < 16; i = i + 1) {
    base_n[i] = rnd(65536);
    mod_n[i] = rnd(65536);
    acc_n[i] = 1;
  }
  for (bit = 0; bit < 900; bit = bit + 1) {
    mul_mod();
    if ((bit & 3) == 1) { mul_mod(); }
    acc = (acc + acc_n[bit & 15]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* compress-gzip-like: LZ77 window matching over generated text. *)
let compress_gzip =
  mk "compress-gzip" "LZ77 window matching on char buffers" (common_rnd ^ {|
char text[4096];
int match_len[4096];
int match_dist[4096];

void gen_text() {
  int i;
  for (i = 0; i < 4096; i = i + 1) {
    if (i > 64 && rnd(3) == 0) { text[i] = text[i - 32 - rnd(32)]; }
    else { text[i] = 97 + rnd(26); }
  }
}

int lz_scan() {
  int i, d;
  int total = 0;
  for (i = 64; i < 4096; i = i + 1) {
    int best = 0;
    int bestd = 0;
    for (d = 1; d <= 32; d = d + 1) {
      int l = 0;
      while (l < 16 && i + l < 4096 && text[i + l] == text[i + l - d]) { l = l + 1; }
      if (l > best) { best = l; bestd = d; }
    }
    match_len[i] = best;
    match_dist[i] = bestd;
    if (best > 3) { i = i + best - 1; total = total + best; }
  }
  return total;
}

int main() {
  int pass;
  int acc = 0;
  seed = 4;
  for (pass = 0; pass < 3; pass = pass + 1) {
    gen_text();
    acc = (acc + lz_scan()) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* sqlite-like: B-tree-ish ordered map with inserts and range scans;
   pointer-dense but code-pointer-free. *)
let sqlite =
  mk "sqlite" "binary search tree inserts + range scans (no code pointers)"
    (common_rnd ^ {|
struct row { int key; int val; struct row *l; struct row *r; };
struct row *root;
int inserted;

struct row *insert(struct row *n, int key, int val) {
  if (n == 0) {
    struct row *f = (struct row *) malloc(sizeof(struct row));
    f->key = key;
    f->val = val;
    f->l = 0;
    f->r = 0;
    inserted = inserted + 1;
    return f;
  }
  if (key < n->key) { n->l = insert(n->l, key, val); }
  if (key > n->key) { n->r = insert(n->r, key, val); }
  if (key == n->key) { n->val = val; }
  return n;
}

int scan(struct row *n, int lo, int hi) {
  int s = 0;
  if (n == 0) { return 0; }
  if (n->key >= lo && n->key <= hi) { s = n->val; }
  if (n->key > lo) { s = s + scan(n->l, lo, hi); }
  if (n->key < hi) { s = s + scan(n->r, lo, hi); }
  return s & 16777215;
}

int main() {
  int i;
  int acc = 0;
  seed = 6;
  root = 0;
  for (i = 0; i < 3000; i = i + 1) {
    root = insert(root, rnd(8192), i);
    if (i % 8 == 0) {
      int lo = rnd(8192);
      acc = (acc + scan(root, lo, lo + 200)) & 16777215;
    }
  }
  checksum(acc + inserted);
  print_int(acc + inserted);
  return 0;
}
|})

(* pybench-like: a dynamic object model where every attribute access and
   binary operation dispatches through per-type method tables, and object
   payloads travel as void*. The paper singles pybench out as CPI's worst
   case on FreeBSD (the "emulating C++ inheritance in C" pattern). *)
let pybench =
  { Workload.name = "pybench";
    lang = Workload.C;
    description = "dynamic-object interpreter: per-type method tables + void* payloads";
    input = [||];
    fuel = 50_000_000;
    source = common_rnd ^ {|
struct pyobj;
struct pytype {
  int (*add)(struct pyobj *, struct pyobj *);
  int (*getattr)(struct pyobj *, int);
  int (*repr)(struct pyobj *);
};
struct pyobj {
  struct pytype *type;
  int ival;
  void *payload;
};

struct pyobj *pool[64];

int int_add(struct pyobj *a, struct pyobj *b) { return a->ival + b->ival; }
int int_getattr(struct pyobj *a, int slot) { return a->ival * (slot + 1); }
int int_repr(struct pyobj *a) { return a->ival; }

int str_add(struct pyobj *a, struct pyobj *b) {
  return (a->ival * 31 + b->ival) & 65535;
}
int str_getattr(struct pyobj *a, int slot) {
  struct pyobj *base = (struct pyobj *) a->payload;
  if (base != 0 && slot > 2) { return base->type->getattr(base, slot - 1); }
  return a->ival + slot;
}
int str_repr(struct pyobj *a) { return a->ival ^ 85; }

struct pytype int_type = { int_add, int_getattr, int_repr };
struct pytype str_type = { str_add, str_getattr, str_repr };

int main() {
  int it;
  int acc = 0;
  int i;
  seed = 10;
  for (i = 0; i < 64; i = i + 1) {
    struct pyobj *o = (struct pyobj *) malloc(sizeof(struct pyobj));
    o->ival = rnd(1000);
    o->payload = 0;
    if (rnd(2) == 0) { o->type = &int_type; } else { o->type = &str_type; }
    if (i > 0) { o->payload = (void *) pool[i - 1]; }
    pool[i] = o;
  }
  for (it = 0; it < 60000; it = it + 1) {
    struct pyobj *a = pool[it & 63];
    struct pyobj *b = pool[(it * 7 + 13) & 63];
    acc = (acc + a->type->add(a, b)) & 16777215;
    acc = (acc + b->type->getattr(b, it & 7)) & 16777215;
    if ((it & 15) == 0) { acc = (acc + a->type->repr(a)) & 16777215; }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* phpbench-like: hash-table string interning plus templated string
   building; universal pointers in the table, few code pointers. *)
let phpbench =
  mk "phpbench" "hash-table interning + string building" (common_rnd ^ {|
char names[128][12];
int table_key[256];
int table_val[256];
char outbuf[128];

int hash_str(char *s) {
  int h = 5381;
  int i = 0;
  while (s[i] != 0) {
    h = (h * 33 + s[i]) & 1048575;
    i = i + 1;
  }
  return h;
}

int intern(char *s, int val) {
  int h = hash_str(s) & 255;
  int probes = 0;
  while (table_key[h] != 0 && table_key[h] != hash_str(s) && probes < 256) {
    h = (h + 1) & 255;
    probes = probes + 1;
  }
  table_key[h] = hash_str(s);
  table_val[h] = val;
  return h;
}

int main() {
  int i, it;
  int acc = 0;
  seed = 13;
  for (i = 0; i < 128; i = i + 1) {
    int j;
    for (j = 0; j < 8; j = j + 1) { names[i][j] = 97 + rnd(26); }
    names[i][8] = 0;
  }
  for (it = 0; it < 9000; it = it + 1) {
    int slot = intern(names[it & 127], it);
    strcpy(outbuf, "val=");
    strcpy(outbuf + 4, names[slot & 127]);
    acc = (acc + table_val[slot] + strlen(outbuf)) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* encode-mp3-like: windowed filter bank + quantization loops. *)
let encode_mp3 =
  mk "encode-mp3" "subband filter + quantization DSP loops" (common_rnd ^ {|
int pcm[2048];
int subband[32][64];
int window[512];

int main() {
  int frame;
  int acc = 0;
  int i, s, k;
  seed = 15;
  for (i = 0; i < 512; i = i + 1) { window[i] = rnd(2048) - 1024; }
  for (i = 0; i < 2048; i = i + 1) { pcm[i] = rnd(65536) - 32768; }
  for (frame = 0; frame < 36; frame = frame + 1) {
    for (s = 0; s < 32; s = s + 1) {
      for (k = 0; k < 64; k = k + 1) {
        int sum = 0;
        int t;
        for (t = 0; t < 8; t = t + 1) {
          sum = sum + (pcm[(frame * 32 + k * 8 + t) & 2047] * window[(s * 16 + t) & 511]) / 4096;
        }
        subband[s][k] = sum;
      }
    }
    for (s = 0; s < 32; s = s + 1) {
      for (k = 0; k < 64; k = k + 1) {
        acc = (acc + subband[s][k] / 16) & 16777215;
      }
    }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* dcraw-like: Bayer demosaic over an image array. *)
let dcraw =
  mk "dcraw" "Bayer demosaic interpolation" (common_rnd ^ {|
int raw[16384];
int rgb[16384];

int main() {
  int pass;
  int acc = 0;
  int x, y;
  seed = 16;
  for (y = 0; y < 16384; y = y + 1) { raw[y] = rnd(4096); }
  for (pass = 0; pass < 10; pass = pass + 1) {
    for (y = 1; y < 127; y = y + 1) {
      for (x = 1; x < 127; x = x + 1) {
        int p = y * 128 + x;
        int v = raw[p] * 2 + raw[p - 1] + raw[p + 1] + raw[p - 128] + raw[p + 128];
        rgb[p] = v / 6;
      }
    }
    acc = (acc + rgb[pass * 777 % 16384]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* john-the-ripper-like: iterated mixing rounds over candidate keys. *)
let john =
  mk "john-the-ripper" "hash-cracking candidate loops" (common_rnd ^ {|
int target;
int cracked;

int mix(int k) {
  int h = k;
  int r;
  for (r = 0; r < 12; r = r + 1) {
    h = (h ^ (h << 5)) & 268435455;
    h = (h + (h >> 7)) & 268435455;
    h = (h * 9 + 1234567) & 268435455;
  }
  return h;
}

int main() {
  int k;
  int acc = 0;
  seed = 77;
  target = mix(123456);
  cracked = 0;
  for (k = 0; k < 60000; k = k + 1) {
    int h = mix(k * 3 + 1);
    if (h == target) { cracked = cracked + 1; }
    acc = (acc + (h & 255)) & 16777215;
  }
  checksum(acc + cracked);
  print_int(acc + cracked);
  return 0;
}
|})

(* nginx-like: header tokenization + connection-table updates. *)
let nginx =
  mk "nginx" "header tokenization + connection table" (common_rnd ^ {|
char header[128];
int conn_state[512];
int conn_time[512];

void gen_header() {
  int i;
  int n = 20 + rnd(60);
  for (i = 0; i < n; i = i + 1) {
    header[i] = 97 + rnd(26);
    if (rnd(7) == 0) { header[i] = 58; }
  }
  header[n] = 0;
}

int tokenize() {
  int i = 0;
  int tokens = 0;
  while (header[i] != 0) {
    if (header[i] == 58) { tokens = tokens + 1; }
    i = i + 1;
  }
  return tokens;
}

int main() {
  int it;
  int acc = 0;
  seed = 19;
  for (it = 0; it < 8000; it = it + 1) {
    int c = rnd(512);
    gen_header();
    conn_state[c] = (conn_state[c] + tokenize()) & 65535;
    conn_time[c] = it;
    acc = (acc + conn_state[c]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* postgresql-like: hash join between two generated tables. *)
let postgresql =
  mk "pgbench" "hash join over generated tables" (common_rnd ^ {|
int build_key[1024];
int build_val[1024];
int bucket_head[256];
int bucket_next[1024];
int probe_key[2048];

int main() {
  int i;
  int acc = 0;
  seed = 41;
  for (i = 0; i < 256; i = i + 1) { bucket_head[i] = -1; }
  for (i = 0; i < 1024; i = i + 1) {
    build_key[i] = rnd(4096);
    build_val[i] = rnd(1000);
    int b = build_key[i] & 255;
    bucket_next[i] = bucket_head[b];
    bucket_head[b] = i;
  }
  for (i = 0; i < 2048; i = i + 1) { probe_key[i] = rnd(4096); }
  int round;
  for (round = 0; round < 60; round = round + 1) {
    for (i = 0; i < 2048; i = i + 1) {
      int k = probe_key[i];
      int c = bucket_head[k & 255];
      while (c >= 0) {
        if (build_key[c] == k) { acc = (acc + build_val[c]) & 16777215; }
        c = bucket_next[c];
      }
    }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* redis-like: command dispatch through a handler table over a kv store. *)
let redis =
  { Workload.name = "redis";
    lang = Workload.C;
    description = "command dispatch through handler table over a kv array";
    input = [||];
    fuel = 40_000_000;
    source = common_rnd ^ {|
int kv[1024];

int cmd_get(int k) { return kv[k & 1023]; }
int cmd_set(int k) { kv[k & 1023] = k * 3; return 1; }
int cmd_incr(int k) { kv[k & 1023] = kv[k & 1023] + 1; return kv[k & 1023]; }
int cmd_del(int k) { kv[k & 1023] = 0; return 0; }

int (*commands[4])(int) = { cmd_get, cmd_set, cmd_incr, cmd_del };

int main() {
  int i;
  int acc = 0;
  seed = 52;
  for (i = 0; i < 120000; i = i + 1) {
    int op = rnd(4);
    int k = rnd(4096);
    acc = (acc + commands[op](k)) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* ffmpeg-like: 8x8 integer DCT butterflies over macroblocks. *)
let ffmpeg =
  mk "ffmpeg" "integer DCT butterflies over macroblocks" (common_rnd ^ {|
int mb[64];
int tmp[64];

void dct_pass() {
  int r, c;
  for (r = 0; r < 8; r = r + 1) {
    for (c = 0; c < 4; c = c + 1) {
      int a = mb[r * 8 + c];
      int b = mb[r * 8 + 7 - c];
      tmp[r * 8 + c] = a + b;
      tmp[r * 8 + 7 - c] = (a - b) * (c + 1);
    }
  }
  for (r = 0; r < 64; r = r + 1) { mb[r] = tmp[r] / 2; }
}

int main() {
  int frame;
  int acc = 0;
  seed = 61;
  for (frame = 0; frame < 2500; frame = frame + 1) {
    int i;
    for (i = 0; i < 64; i = i + 1) { mb[i] = rnd(256) - 128; }
    dct_pass();
    dct_pass();
    acc = (acc + mb[frame & 63]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(* git-like: block-based delta computation between two buffers. *)
let git =
  mk "git" "rolling-hash delta computation between buffers" (common_rnd ^ {|
char base_v[2048];
char new_v[2048];
int hash_tab[512];

int main() {
  int i;
  int acc = 0;
  int matches = 0;
  seed = 71;
  for (i = 0; i < 2048; i = i + 1) {
    base_v[i] = 97 + rnd(26);
    new_v[i] = base_v[i];
    if (rnd(10) == 0) { new_v[i] = 97 + rnd(26); }
  }
  int round;
  for (round = 0; round < 40; round = round + 1) {
    for (i = 0; i < 512; i = i + 1) { hash_tab[i] = -1; }
    for (i = 0; i + 4 <= 2048; i = i + 4) {
      int h = (base_v[i] * 31 + base_v[i + 1] * 7 + base_v[i + 2] * 3 + base_v[i + 3]) & 511;
      hash_tab[h] = i;
    }
    for (i = 0; i + 4 <= 2048; i = i + 4) {
      int h = (new_v[i] * 31 + new_v[i + 1] * 7 + new_v[i + 2] * 3 + new_v[i + 3]) & 511;
      int cand = hash_tab[h];
      if (cand >= 0 && base_v[cand] == new_v[i]) { matches = matches + 1; }
    }
    new_v[round & 2047] = 97 + (round % 26);
    acc = (acc + matches) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|})

(** The Fig. 4 suite, in display order. *)
let all : Workload.t list =
  [ apache; nginx; openssl; compress_gzip; sqlite; postgresql; redis;
    pybench; phpbench; encode_mp3; dcraw; john; ffmpeg; git ]
