(** Workload descriptors for the evaluation suites.

    A workload is a self-contained MiniC program that terminates with a
    deterministic checksum; the benchmark harness runs each one under
    several protection configurations and requires identical checksums
    across all of them before comparing cycle counts. *)

type lang = C | Cpp

type t = {
  name : string;
  lang : lang;              (** which SPEC language group it models *)
  description : string;
  source : string;          (** MiniC source *)
  input : int array;
  fuel : int;
}

val lang_name : lang -> string

(** Compile (memoized per workload name). *)
val compile : t -> Levee_ir.Prog.t

(** Compile, protect and run under [protection] (default vanilla). *)
val run :
  ?protection:Levee_core.Pipeline.protection -> t ->
  Levee_machine.Interp.result
