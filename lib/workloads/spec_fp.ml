(** SPEC CPU2006-like workloads, part 3: the "floating point" group
    modelled in fixed-point arithmetic — milc, namd, lbm, sphinx3.
    All array-sweep kernels with near-zero sensitive pointer activity;
    namd additionally stresses large per-call stack frames, the case where
    the safe stack *improves* performance (Section 5.2). *)

(* 433.milc: SU(3)-like 3x3 fixed-point matrix products over a 4-D
   lattice. *)
let milc =
  { Workload.name = "433.milc";
    lang = Workload.C;
    description = "lattice QCD-like 3x3 matrix products over a flattened lattice";
    input = [||];
    fuel = 50_000_000;
    source = {|
int lattice[6144];   // 512 sites x 12 values
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void site_mul(int s, int t, int *out) {
  int i, j, k;
  for (i = 0; i < 3; i = i + 1) {
    for (j = 0; j < 3; j = j + 1) {
      int acc = 0;
      for (k = 0; k < 3; k = k + 1) {
        acc = acc + (lattice[s * 12 + i * 3 + k] * lattice[t * 12 + k * 3 + j]) / 256;
      }
      out[i * 3 + j] = acc;
    }
  }
}

int main() {
  int sweep;
  int acc = 0;
  int i;
  int prod[9];
  seed = 11;
  for (i = 0; i < 6144; i = i + 1) { lattice[i] = rnd(512) - 256; }
  for (sweep = 0; sweep < 12; sweep = sweep + 1) {
    int s;
    for (s = 0; s < 512; s = s + 1) {
      int t = (s + 1 + (sweep % 7)) % 512;
      site_mul(s, t, prod);
      for (i = 0; i < 9; i = i + 1) {
        lattice[s * 12 + i] = (lattice[s * 12 + i] + prod[i] / 4) % 65536;
      }
      acc = (acc + prod[0]) & 16777215;
    }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 444.namd: pairwise force computation with large per-call scratch
   arrays; in the unprotected build the big hot frame costs locality, the
   safe stack moves it aside — the negative-overhead case. *)
let namd =
  { Workload.name = "444.namd";
    lang = Workload.Cpp;
    description = "molecular-dynamics-like force loops with large stack frames";
    input = [||];
    fuel = 60_000_000;
    source = {|
int px[256]; int py[256]; int pz[256];
int fx[256]; int fy[256]; int fz[256];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int pair_count;

int accumulate(int *cache, int n) {
  int s = 0;
  int j;
  for (j = 0; j < n; j = j + 1) { s = s + cache[j]; }
  return s;
}

/* per-call neighbour cache: a large array whose address escapes into
   [accumulate], hence it lives on the unsafe stack under the safe-stack
   pass; the unprotected build keeps it in the hot frame and pays cache
   pressure on every stack access — moving it away is what gives the safe
   stack its negative overhead on namd (Section 5.2) */
int force_on(int i) {
  int cache[40];
  int n = 0;
  int j;
  int f = 0;
  for (j = i - 24; j < i + 24; j = j + 1) {
    int k = (j + 256) % 256;
    if (k != i) {
      int dx = px[i] - px[k];
      int dy = py[i] - py[k];
      int dz = pz[i] - pz[k];
      int d2 = dx * dx + dy * dy + dz * dz;
      if (d2 < 1400 && n < 40) { cache[n] = k; n = n + 1; }
    }
  }
  for (j = 0; j < n; j = j + 1) {
    int k = cache[j];
    int dx = px[i] - px[k];
    int d2 = dx * dx + 1;
    f = f + (1000000 / d2) - (100000 / (d2 * d2 / 64 + 1));
  }
  pair_count = pair_count + accumulate(cache, n) % 7;
  return f;
}

int main() {
  int step;
  int acc = 0;
  int i;
  seed = 7;
  for (i = 0; i < 256; i = i + 1) {
    px[i] = rnd(64); py[i] = rnd(64); pz[i] = rnd(64);
  }
  for (step = 0; step < 55; step = step + 1) {
    for (i = 0; i < 256; i = i + 1) {
      fx[i] = force_on(i);
      px[i] = (px[i] + fx[i] / 100000) % 64;
      if (px[i] < 0) { px[i] = -px[i]; }
    }
    acc = (acc + fx[step % 256]) & 16777215;
  }
  checksum(acc + pair_count);
  print_int(acc + pair_count);
  return 0;
}
|} }

(* 470.lbm: lattice-Boltzmann stream-and-collide sweeps. *)
let lbm =
  { Workload.name = "470.lbm";
    lang = Workload.C;
    description = "lattice-Boltzmann stream/collide over a 1-D ring";
    input = [||];
    fuel = 50_000_000;
    source = {|
int f0[8192];
int f1[8192];

int main() {
  int step;
  int acc = 0;
  int i;
  for (i = 0; i < 8192; i = i + 1) { f0[i] = (i * 37) % 1000; }
  for (step = 0; step < 55; step = step + 1) {
    for (i = 0; i < 8192; i = i + 1) {
      int left = f0[(i + 8191) % 8192];
      int right = f0[(i + 1) % 8192];
      int here = f0[i];
      int eq = (left + right + here) / 3;
      f1[i] = here + (eq - here) / 4;
    }
    for (i = 0; i < 8192; i = i + 1) { f0[i] = f1[(i + 1) % 8192]; }
    acc = (acc + f0[step * 61 % 8192]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 482.sphinx3: GMM acoustic scoring: dense dot-product loops with a
   top-N tracking pass. *)
let sphinx3 =
  { Workload.name = "482.sphinx3";
    lang = Workload.C;
    description = "GMM senone scoring loops with best-score tracking";
    input = [||];
    fuel = 50_000_000;
    source = {|
int means[256][16];
int vars_inv[256][16];
int feat[16];
int scores[256];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int score_one(int g) {
  int d;
  int s = 0;
  for (d = 0; d < 16; d = d + 1) {
    int diff = feat[d] - means[g][d];
    s = s + (diff * diff * vars_inv[g][d]) / 4096;
  }
  return -s;
}

int main() {
  int frame;
  int acc = 0;
  int g, d;
  seed = 808;
  for (g = 0; g < 256; g = g + 1) {
    for (d = 0; d < 16; d = d + 1) {
      means[g][d] = rnd(200) - 100;
      vars_inv[g][d] = 1 + rnd(63);
    }
  }
  for (frame = 0; frame < 160; frame = frame + 1) {
    int best = -1000000000;
    int bestg = 0;
    for (d = 0; d < 16; d = d + 1) { feat[d] = rnd(200) - 100; }
    for (g = 0; g < 256; g = g + 1) {
      scores[g] = score_one(g);
      if (scores[g] > best) { best = scores[g]; bestg = g; }
    }
    acc = (acc + best + bestg) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }
