(** Workload descriptors for the evaluation suites.

    A workload is a self-contained MiniC program that terminates with a
    deterministic checksum; the benchmark harness runs each one under
    several protection configurations and requires the checksum to be
    identical across all of them (protections must not change program
    behaviour) before comparing cycle counts. *)

module Prog = Levee_ir.Prog

type lang = C | Cpp

type t = {
  name : string;
  lang : lang;                  (* which SPEC language group it models *)
  description : string;
  source : string;
  input : int array;
  fuel : int;
}

let lang_name = function C -> "C" | Cpp -> "C++"

(* Compilation is deterministic and pure; cache per workload. The bench
   harness compiles from several domains at once, so the table is guarded
   by a mutex (compilation itself runs outside the lock — a duplicate
   compile of the same workload is wasted work, never wrong work). *)
let cache : (string, Prog.t) Hashtbl.t = Hashtbl.create 32
let cache_m = Mutex.create ()

let compile (w : t) : Prog.t =
  let cached =
    Mutex.lock cache_m;
    let c = Hashtbl.find_opt cache w.name in
    Mutex.unlock cache_m;
    c
  in
  match cached with
  | Some p -> p
  | None ->
    let p = Levee_minic.Lower.compile ~name:w.name w.source in
    Mutex.lock cache_m;
    Hashtbl.replace cache w.name p;
    Mutex.unlock cache_m;
    p

(** Run [w] under a protection and return the interpreter result. *)
let run ?(protection = Levee_core.Pipeline.Vanilla) (w : t) =
  let prog = compile w in
  let built = Levee_core.Pipeline.build protection prog in
  Levee_machine.Interp.run_program ~input:w.input ~fuel:w.fuel
    built.Levee_core.Pipeline.prog built.Levee_core.Pipeline.config
