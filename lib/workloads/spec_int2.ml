(** SPEC CPU2006-like workloads, part 2: sjeng, libquantum, h264ref,
    astar, hmmer — the remaining integer benchmarks, all data-dominated
    with few or no code pointers. *)

(* 458.sjeng: alpha-beta game-tree search over a small board with move
   generation into local arrays (the unsafe-frame case for the safe
   stack). *)
let sjeng =
  { Workload.name = "458.sjeng";
    lang = Workload.C;
    description = "alpha-beta search with per-node move arrays";
    input = [||];
    fuel = 40_000_000;
    source = {|
int board[36];
int seed;
int nodes_visited;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int evaluate(int side) {
  int i;
  int s = 0;
  for (i = 0; i < 36; i = i + 1) {
    if (board[i] == side) { s = s + 10 + (i % 6); }
    if (board[i] == 3 - side) { s = s - 10 - (i % 6); }
  }
  return s;
}

int gen_moves(int side, int *moves) {
  int i;
  int n = 0;
  for (i = 0; i < 36; i = i + 1) {
    if (board[i] == 0 && (i + side) % 2 == 0 && n < 12) {
      moves[n] = i;
      n = n + 1;
    }
  }
  return n;
}

int search(int side, int depth, int alpha, int beta) {
  int moves[12];
  int n, i;
  nodes_visited = nodes_visited + 1;
  if (depth == 0) { return evaluate(side); }
  n = gen_moves(side, moves);
  if (n == 0) { return evaluate(side); }
  for (i = 0; i < n; i = i + 1) {
    int v;
    board[moves[i]] = side;
    v = -search(3 - side, depth - 1, -beta, -alpha);
    board[moves[i]] = 0;
    if (v > alpha) { alpha = v; }
    if (alpha >= beta) { return alpha; }
  }
  return alpha;
}

int main() {
  int game;
  int acc = 0;
  seed = 31337;
  for (game = 0; game < 12; game = game + 1) {
    int i;
    for (i = 0; i < 36; i = i + 1) { board[i] = 0; }
    for (i = 0; i < 8; i = i + 1) { board[rnd(36)] = 1 + rnd(2); }
    acc = (acc + search(1, 4, -100000, 100000)) & 16777215;
  }
  checksum(acc + nodes_visited);
  print_int(acc + nodes_visited);
  return 0;
}
|} }

(* 462.libquantum: quantum register simulation as gate sweeps over an
   amplitude table (fixed-point). *)
let libquantum =
  { Workload.name = "462.libquantum";
    lang = Workload.C;
    description = "quantum gate sweeps over a fixed-point amplitude array";
    input = [||];
    fuel = 40_000_000;
    source = {|
int re[1024];
int im[1024];

void hadamard(int target) {
  int i;
  int mask = 1 << target;
  for (i = 0; i < 1024; i = i + 1) {
    if ((i & mask) == 0) {
      int j = i | mask;
      int ar = re[i]; int ai = im[i];
      int br = re[j]; int bi = im[j];
      re[i] = (ar + br) * 46341 / 65536;
      im[i] = (ai + bi) * 46341 / 65536;
      re[j] = (ar - br) * 46341 / 65536;
      im[j] = (ai - bi) * 46341 / 65536;
    }
  }
}

void cnot(int control, int target) {
  int i;
  int cm = 1 << control;
  int tm = 1 << target;
  for (i = 0; i < 1024; i = i + 1) {
    if ((i & cm) != 0 && (i & tm) == 0) {
      int j = i | tm;
      int t = re[i]; re[i] = re[j]; re[j] = t;
      t = im[i]; im[i] = im[j]; im[j] = t;
    }
  }
}

void phase(int target, int k) {
  int i;
  int mask = 1 << target;
  for (i = 0; i < 1024; i = i + 1) {
    if ((i & mask) != 0) {
      int r = re[i];
      re[i] = (r * (65536 - k)) / 65536 - (im[i] * k) / 65536;
      im[i] = (im[i] * (65536 - k)) / 65536 + (r * k) / 65536;
    }
  }
}

int main() {
  int round;
  int acc = 0;
  re[0] = 65536;
  for (round = 0; round < 60; round = round + 1) {
    int q = round % 10;
    hadamard(q);
    cnot(q, (q + 1) % 10);
    phase((q + 2) % 10, 3000 + round * 11);
    acc = (acc + re[round % 1024] + im[(round * 7) % 1024]) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 464.h264ref: block motion estimation with row copies through void*
   helpers — the libc-memory-function overhead case of Section 3.2.2. *)
let h264ref =
  { Workload.name = "464.h264ref";
    lang = Workload.C;
    description = "motion estimation with memcpy-based block moves";
    input = [||];
    fuel = 60_000_000;
    source = {|
int frame_a[4096];
int frame_b[4096];
int *ref_frames[2];   // runtime reference-frame list, as the encoder keeps
int block[64];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void gen_frames() {
  int i;
  for (i = 0; i < 4096; i = i + 1) {
    frame_a[i] = rnd(256);
    frame_b[i] = (frame_a[i] + rnd(16)) & 255;
  }
}

// copy an 8x8 block out of a frame through an opaque buffer pointer
void load_block(void *frame, int x, int y) {
  int r;
  int *f = (int *) frame;
  for (r = 0; r < 8; r = r + 1) {
    memcpy(block + r * 8, f + ((y + r) * 64 + x), 8);
  }
}

int taps[64];

/* fetch the candidate block's rows through an opaque pointer, as the
   reference encoder's copy helpers do */
void fetch_taps(void *frame, int x, int y) {
  int *f = (int *) frame;
  int r;
  for (r = 0; r < 8; r = r + 1) {
    memcpy(taps + r * 8, f + ((y + r) * 64 + x), 8);
  }
}

int sad(int x, int y) {
  int r, c;
  int s = 0;
  fetch_taps(ref_frames[1], x, y);
  for (r = 0; r < 8; r = r + 1) {
    for (c = 0; c < 8; c = c + 1) {
      int d = block[r * 8 + c] - frame_b[(y + r) * 64 + x + c];
      if (d < 0) { d = -d; }
      s = s + d;
    }
  }
  s = s + (taps[0] + taps[63]) / 256;
  return s;
}

int best_match(int bx, int by) {
  int dx, dy;
  int best = 1000000000;
  load_block(ref_frames[0], bx, by);
  for (dy = -2; dy <= 2; dy = dy + 1) {
    for (dx = -2; dx <= 2; dx = dx + 1) {
      int x = bx + dx;
      int y = by + dy;
      if (x >= 0 && y >= 0 && x <= 56 && y <= 56) {
        int s = sad(x, y);
        if (s < best) { best = s; }
      }
    }
  }
  return best;
}

int main() {
  int pass;
  int acc = 0;
  seed = 2024;
  ref_frames[0] = frame_a;
  ref_frames[1] = frame_b;
  for (pass = 0; pass < 4; pass = pass + 1) {
    int bx, by;
    gen_frames();
    for (by = 0; by < 56; by = by + 8) {
      for (bx = 0; bx < 56; bx = bx + 8) {
        acc = (acc + best_match(bx, by)) & 16777215;
      }
    }
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 473.astar: grid pathfinding with a binary-heap open list. *)
let astar =
  { Workload.name = "473.astar";
    lang = Workload.Cpp;
    description = "A* pathfinding over a weighted grid with a heap open list";
    input = [||];
    fuel = 50_000_000;
    source = {|
int cost[48][48];
int dist[48][48];
int heap_key[4096];
int heap_pos[4096];
int heap_n;
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

void heap_push(int key, int pos) {
  int i = heap_n;
  heap_n = heap_n + 1;
  heap_key[i] = key;
  heap_pos[i] = pos;
  while (i > 0) {
    int p = (i - 1) / 2;
    if (heap_key[p] <= heap_key[i]) { break; }
    int tk = heap_key[p]; heap_key[p] = heap_key[i]; heap_key[i] = tk;
    int tp = heap_pos[p]; heap_pos[p] = heap_pos[i]; heap_pos[i] = tp;
    i = p;
  }
}

int heap_pop() {
  int top = heap_pos[0];
  int i = 0;
  heap_n = heap_n - 1;
  heap_key[0] = heap_key[heap_n];
  heap_pos[0] = heap_pos[heap_n];
  while (1) {
    int l = i * 2 + 1;
    int r = l + 1;
    int m = i;
    if (l < heap_n && heap_key[l] < heap_key[m]) { m = l; }
    if (r < heap_n && heap_key[r] < heap_key[m]) { m = r; }
    if (m == i) { break; }
    int tk = heap_key[m]; heap_key[m] = heap_key[i]; heap_key[i] = tk;
    int tp = heap_pos[m]; heap_pos[m] = heap_pos[i]; heap_pos[i] = tp;
    i = m;
  }
  return top;
}

int shortest(int sx, int sy) {
  int x, y;
  for (x = 0; x < 48; x = x + 1) {
    for (y = 0; y < 48; y = y + 1) { dist[x][y] = 1000000000; }
  }
  heap_n = 0;
  dist[sx][sy] = 0;
  heap_push(0, sx * 48 + sy);
  while (heap_n > 0) {
    int pos = heap_pop();
    int px = pos / 48;
    int py = pos % 48;
    int d = dist[px][py];
    int k;
    for (k = 0; k < 4; k = k + 1) {
      int nx = px; int ny = py;
      if (k == 0) { nx = px + 1; }
      if (k == 1) { nx = px - 1; }
      if (k == 2) { ny = py + 1; }
      if (k == 3) { ny = py - 1; }
      if (nx >= 0 && ny >= 0 && nx < 48 && ny < 48) {
        int nd = d + cost[nx][ny];
        if (nd < dist[nx][ny]) {
          dist[nx][ny] = nd;
          heap_push(nd, nx * 48 + ny);
        }
      }
    }
  }
  return dist[47][47];
}

int main() {
  int round;
  int acc = 0;
  int x, y;
  seed = 4242;
  for (x = 0; x < 48; x = x + 1) {
    for (y = 0; y < 48; y = y + 1) { cost[x][y] = 1 + rnd(9); }
  }
  for (round = 0; round < 18; round = round + 1) {
    cost[rnd(48)][rnd(48)] = 1 + rnd(9);
    acc = (acc + shortest(round % 4, round % 7)) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }

(* 456.hmmer: profile HMM Viterbi dynamic programming over int arrays. *)
let hmmer =
  { Workload.name = "456.hmmer";
    lang = Workload.C;
    description = "Viterbi dynamic programming over profile HMM scores";
    input = [||];
    fuel = 40_000_000;
    source = {|
int match_score[128][20];
int mm[2][128];
int im[2][128];
int dm[2][128];
int seq[512];
int seed;

int rnd(int m) {
  seed = (seed * 1103515245 + 12345) & 2147483647;
  return (seed >> 7) % m;
}

int max2(int a, int b) { if (a > b) { return a; } return b; }

int viterbi(int len) {
  int i, k;
  int cur = 0;
  int best = -1000000000;
  for (k = 0; k < 128; k = k + 1) { mm[0][k] = 0; im[0][k] = -10000; dm[0][k] = -10000; }
  for (i = 1; i <= len; i = i + 1) {
    int prev = cur;
    cur = 1 - cur;
    mm[cur][0] = 0;
    im[cur][0] = -10000;
    dm[cur][0] = -10000;
    for (k = 1; k < 128; k = k + 1) {
      int sc = match_score[k][seq[i - 1]];
      int m1 = max2(mm[prev][k - 1], im[prev][k - 1]);
      int m2 = max2(dm[prev][k - 1], 0);
      mm[cur][k] = max2(m1, m2) + sc;
      im[cur][k] = max2(mm[prev][k] - 11, im[prev][k] - 1);
      dm[cur][k] = max2(mm[cur][k - 1] - 11, dm[cur][k - 1] - 1);
      if (i == len && mm[cur][k] > best) { best = mm[cur][k]; }
    }
  }
  return best;
}

int main() {
  int round;
  int acc = 0;
  int i, k;
  seed = 314;
  for (k = 0; k < 128; k = k + 1) {
    for (i = 0; i < 20; i = i + 1) { match_score[k][i] = rnd(13) - 4; }
  }
  for (round = 0; round < 8; round = round + 1) {
    int len = 150 + rnd(200);
    for (i = 0; i < len; i = i + 1) { seq[i] = rnd(20); }
    acc = (acc + viterbi(len)) & 16777215;
  }
  checksum(acc);
  print_int(acc);
  return 0;
}
|} }
