(** The SPEC CPU2006-like suite: all 19 C/C++ benchmarks of the paper's
    Table 2 / Fig. 3, in the paper's order. *)

let all : Workload.t list =
  [ Spec_int1.perlbench;
    Spec_int1.bzip2;
    Spec_int1.gcc;
    Spec_int1.mcf;
    Spec_fp.milc;
    Spec_fp.namd;
    Spec_int1.gobmk;
    Spec_cpp.dealii;
    Spec_cpp.soplex;
    Spec_cpp.povray;
    Spec_int2.hmmer;
    Spec_int2.sjeng;
    Spec_int2.libquantum;
    Spec_int2.h264ref;
    Spec_fp.lbm;
    Spec_cpp.omnetpp;
    Spec_int2.astar;
    Spec_fp.sphinx3;
    Spec_cpp.xalancbmk ]

let c_only = List.filter (fun w -> w.Workload.lang = Workload.C) all

let find name = List.find (fun w -> w.Workload.name = name) all
