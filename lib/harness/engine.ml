(* The parallel benchmark execution engine (see engine.mli).

   Work is split so that all nondeterminism (domain scheduling) is
   confined to *when* a cell executes: results are integrated into the
   memo and the journal strictly in submission order, on the submitting
   domain, so a --jobs 8 run journals identically to --jobs 1. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module M = Levee_machine
module Pool = Levee_support.Pool
module Journal = Levee_support.Journal

type cell = {
  workload : W.Workload.t;
  protection : P.protection;
  store_impl : M.Safestore.impl;
}

let cell ?(store_impl = M.Safestore.Simple_array) workload protection =
  { workload; protection; store_impl }

type exec = {
  result : M.Interp.result;
  elided : int;   (* static checks removed by elision (Stats.checks_elided) *)
  demoted : int;  (* accesses demoted by the points-to refinement *)
  attempts : int; (* executions before this result (retry accounting) *)
  wall_us : int;
}

type t = {
  pool : Pool.t;
  fuel_cap : int option;
  task_timeout : float option;               (* per-cell watchdog budget *)
  retries : int;                             (* extra attempts on exception *)
  quarantine_after : int;                    (* failures before quarantine *)
  m : Mutex.t;                               (* guards memo + failures *)
  memo : (string * string, exec) Hashtbl.t;
  fail_counts : (string, int) Hashtbl.t;     (* workload -> harness failures *)
  mutable journal : Journal.t option;
  mutable rev_vanilla_failures : (string * M.Trap.outcome) list;
  mutable rev_harness_failures : (string * string) list;
}

let create ?fuel_cap ?task_timeout ?(retries = 0) ?(quarantine_after = 3)
    ~jobs () =
  { pool = Pool.create ~jobs; fuel_cap; task_timeout; retries;
    quarantine_after = max 1 quarantine_after; m = Mutex.create ();
    memo = Hashtbl.create 64; fail_counts = Hashtbl.create 8; journal = None;
    rev_vanilla_failures = []; rev_harness_failures = [] }

let jobs t = Pool.jobs t.pool
let pool t = t.pool
let set_journal t j = t.journal <- j
let shutdown t = Pool.shutdown t.pool

let key c =
  ( c.workload.W.Workload.name,
    P.protection_name c.protection ^ M.Safestore.impl_name c.store_impl )

let exec_cell t c =
  let w = c.workload in
  let fuel =
    match t.fuel_cap with
    | Some cap -> min cap w.W.Workload.fuel
    | None -> w.W.Workload.fuel
  in
  let t0 = Unix.gettimeofday () in
  let prog = W.Workload.compile w in
  let b = P.build ~store_impl:c.store_impl c.protection prog in
  let result =
    M.Interp.run_program ~input:w.W.Workload.input ~fuel b.P.prog b.P.config
  in
  let wall_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  { result;
    elided = b.P.stats.Levee_core.Stats.checks_elided;
    demoted = b.P.stats.Levee_core.Stats.mem_ops_demoted;
    attempts = 1;
    wall_us }

let entry_of c (e : exec) : Journal.entry =
  let r = e.result in
  { Journal.workload = c.workload.W.Workload.name;
    protection = P.protection_name c.protection;
    store = M.Safestore.impl_name c.store_impl;
    outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
    status = (match r.M.Interp.outcome with M.Trap.Exit 0 -> 0 | _ -> 1);
    cycles = r.M.Interp.cycles;
    instrs = r.M.Interp.instrs;
    mem_ops = r.M.Interp.mem_ops;
    instrumented_mem_ops = r.M.Interp.instrumented_mem_ops;
    store_accesses = r.M.Interp.store_accesses;
    store_footprint = r.M.Interp.store_footprint;
    heap_peak = r.M.Interp.heap_peak;
    checksum = r.M.Interp.checksum;
    checks_elided = e.elided;
    mem_ops_demoted = e.demoted;
    threads = r.M.Interp.threads;
    ctx_switches = r.M.Interp.ctx_switches;
    races = r.M.Interp.races;
    attempts = e.attempts;
    wall_us = e.wall_us }

(* Integrate one freshly executed cell: memoize, journal, track vanilla
   failures. Runs on the submitting domain, in submission order. *)
let note t c (e : exec) =
  Mutex.lock t.m;
  Hashtbl.replace t.memo (key c) e;
  (match e.result.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | M.Trap.Fuel_exhausted -> ()
     (* a clamped budget (--fuel-cap smoke runs) is not a harness bug *)
   | o ->
     if c.protection = P.Vanilla then
       t.rev_vanilla_failures <-
         (c.workload.W.Workload.name, o) :: t.rev_vanilla_failures);
  Mutex.unlock t.m;
  (match e.result.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | o ->
     Printf.printf "!! %s under %s: %s\n" c.workload.W.Workload.name
       (P.protection_name c.protection) (M.Trap.outcome_to_string o));
  match t.journal with
  | Some j -> Journal.record j (entry_of c e)
  | None -> ()

let find_memo t k =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.memo k in
  Mutex.unlock t.m;
  r

let fail_count t w =
  Mutex.lock t.m;
  let n = Option.value ~default:0 (Hashtbl.find_opt t.fail_counts w) in
  Mutex.unlock t.m;
  n

(* Record a cell the harness could not execute: journal a synthetic failed
   entry, count it against the workload (quarantine accounting), remember
   it for the end-of-run report. Runs on the submitting domain. *)
let note_failure t c ~reason ~attempts =
  let w = c.workload.W.Workload.name in
  Mutex.lock t.m;
  Hashtbl.replace t.fail_counts w
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.fail_counts w));
  t.rev_harness_failures <-
    (w ^ "/" ^ P.protection_name c.protection, reason)
    :: t.rev_harness_failures;
  Mutex.unlock t.m;
  let r : Journal.entry =
    { Journal.workload = w;
      protection = P.protection_name c.protection;
      store = M.Safestore.impl_name c.store_impl;
      outcome = reason;
      status = 1; cycles = 0; instrs = 0; mem_ops = 0;
      instrumented_mem_ops = 0; store_accesses = 0;
      store_footprint = 0; heap_peak = 0; checksum = 0;
      checks_elided = 0; mem_ops_demoted = 0; threads = 0;
      ctx_switches = 0; races = 0; attempts; wall_us = 0 }
  in
  match t.journal with Some j -> Journal.record j r | None -> ()

let prefetch t cells =
  (* Dedupe while preserving first-occurrence order, and drop cells that
     are already memoized (their executions were journalled earlier). *)
  let seen = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun c ->
        let k = key c in
        if Hashtbl.mem seen k || find_memo t k <> None then false
        else (Hashtbl.add seen k (); true))
      cells
  in
  (* Quarantine: a workload whose harness failures (exceptions/timeouts,
     not simulated traps) reached the threshold in *earlier* batches is
     not executed again — its cells are reported as quarantined. The
     check reads counts updated in submission order, so the decision is
     deterministic and identical for every [jobs]. *)
  let quarantined, runnable =
    List.partition
      (fun c -> fail_count t c.workload.W.Workload.name >= t.quarantine_after)
      fresh
  in
  List.iter
    (fun c -> note_failure t c ~reason:"quarantined" ~attempts:0)
    quarantined;
  let outcomes =
    Pool.run_guarded ?timeout:t.task_timeout ~retries:t.retries t.pool
      (List.map (fun c () -> exec_cell t c) runnable)
  in
  List.iter2
    (fun c (o : _ Pool.outcome) ->
      match o.Pool.result with
      | Ok e -> note t c { e with attempts = o.Pool.attempts }
      | Error (Pool.Exn exn) ->
        (* A crashed harness task (compile/build bug) must not take the
           whole run down: journal it as a failed cell and move on. The
           cell stays unmemoized, so a later direct lookup re-raises. *)
        note_failure t c
          ~reason:("harness-exception(" ^ Printexc.to_string exn ^ ")")
          ~attempts:o.Pool.attempts
      | Error (Pool.Timed_out s) ->
        note_failure t c
          ~reason:(Printf.sprintf "timed-out(%.1fs)" s)
          ~attempts:o.Pool.attempts)
    runnable outcomes

let run_workload t ?(store_impl = M.Safestore.Simple_array) w protection =
  let c = { workload = w; protection; store_impl } in
  match find_memo t (key c) with
  | Some e -> e.result
  | None ->
    let e = exec_cell t c in
    note t c e;
    e.result

let overhead t w prot =
  let base = run_workload t w P.Vanilla in
  let r = run_workload t w prot in
  Levee_support.Stats.overhead_pct ~base:base.M.Interp.cycles
    ~instrumented:r.M.Interp.cycles

let vanilla_failures t =
  Mutex.lock t.m;
  let l = List.rev t.rev_vanilla_failures in
  Mutex.unlock t.m;
  l

let harness_failures t =
  Mutex.lock t.m;
  let l = List.rev t.rev_harness_failures in
  Mutex.unlock t.m;
  l
