(* The parallel benchmark execution engine (see engine.mli).

   Work is split so that all nondeterminism (domain scheduling) is
   confined to *when* a cell executes: results are integrated into the
   memo and the journal strictly in submission order, on the submitting
   domain, so a --jobs 8 run journals identically to --jobs 1. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module M = Levee_machine
module Pool = Levee_support.Pool
module Journal = Levee_support.Journal

type cell = {
  workload : W.Workload.t;
  protection : P.protection;
  store_impl : M.Safestore.impl;
}

let cell ?(store_impl = M.Safestore.Simple_array) workload protection =
  { workload; protection; store_impl }

type exec = {
  result : M.Interp.result;
  elided : int;   (* static checks removed by elision (Stats.checks_elided) *)
  demoted : int;  (* accesses demoted by the points-to refinement *)
  wall_us : int;
}

type t = {
  pool : Pool.t;
  fuel_cap : int option;
  m : Mutex.t;                               (* guards memo + failures *)
  memo : (string * string, exec) Hashtbl.t;
  mutable journal : Journal.t option;
  mutable rev_vanilla_failures : (string * M.Trap.outcome) list;
}

let create ?fuel_cap ~jobs () =
  { pool = Pool.create ~jobs; fuel_cap; m = Mutex.create ();
    memo = Hashtbl.create 64; journal = None; rev_vanilla_failures = [] }

let jobs t = Pool.jobs t.pool
let pool t = t.pool
let set_journal t j = t.journal <- j
let shutdown t = Pool.shutdown t.pool

let key c =
  ( c.workload.W.Workload.name,
    P.protection_name c.protection ^ M.Safestore.impl_name c.store_impl )

let exec_cell t c =
  let w = c.workload in
  let fuel =
    match t.fuel_cap with
    | Some cap -> min cap w.W.Workload.fuel
    | None -> w.W.Workload.fuel
  in
  let t0 = Unix.gettimeofday () in
  let prog = W.Workload.compile w in
  let b = P.build ~store_impl:c.store_impl c.protection prog in
  let result =
    M.Interp.run_program ~input:w.W.Workload.input ~fuel b.P.prog b.P.config
  in
  let wall_us = int_of_float ((Unix.gettimeofday () -. t0) *. 1e6) in
  { result;
    elided = b.P.stats.Levee_core.Stats.checks_elided;
    demoted = b.P.stats.Levee_core.Stats.mem_ops_demoted;
    wall_us }

let entry_of c (e : exec) : Journal.entry =
  let r = e.result in
  { Journal.workload = c.workload.W.Workload.name;
    protection = P.protection_name c.protection;
    store = M.Safestore.impl_name c.store_impl;
    outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
    status = (match r.M.Interp.outcome with M.Trap.Exit 0 -> 0 | _ -> 1);
    cycles = r.M.Interp.cycles;
    instrs = r.M.Interp.instrs;
    mem_ops = r.M.Interp.mem_ops;
    instrumented_mem_ops = r.M.Interp.instrumented_mem_ops;
    store_accesses = r.M.Interp.store_accesses;
    store_footprint = r.M.Interp.store_footprint;
    heap_peak = r.M.Interp.heap_peak;
    checksum = r.M.Interp.checksum;
    checks_elided = e.elided;
    mem_ops_demoted = e.demoted;
    wall_us = e.wall_us }

(* Integrate one freshly executed cell: memoize, journal, track vanilla
   failures. Runs on the submitting domain, in submission order. *)
let note t c (e : exec) =
  Mutex.lock t.m;
  Hashtbl.replace t.memo (key c) e;
  (match e.result.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | M.Trap.Fuel_exhausted -> ()
     (* a clamped budget (--fuel-cap smoke runs) is not a harness bug *)
   | o ->
     if c.protection = P.Vanilla then
       t.rev_vanilla_failures <-
         (c.workload.W.Workload.name, o) :: t.rev_vanilla_failures);
  Mutex.unlock t.m;
  (match e.result.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | o ->
     Printf.printf "!! %s under %s: %s\n" c.workload.W.Workload.name
       (P.protection_name c.protection) (M.Trap.outcome_to_string o));
  match t.journal with
  | Some j -> Journal.record j (entry_of c e)
  | None -> ()

let find_memo t k =
  Mutex.lock t.m;
  let r = Hashtbl.find_opt t.memo k in
  Mutex.unlock t.m;
  r

let prefetch t cells =
  (* Dedupe while preserving first-occurrence order, and drop cells that
     are already memoized (their executions were journalled earlier). *)
  let seen = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun c ->
        let k = key c in
        if Hashtbl.mem seen k || find_memo t k <> None then false
        else (Hashtbl.add seen k (); true))
      cells
  in
  let outcomes = Pool.map t.pool (fun c -> exec_cell t c) fresh in
  List.iter2
    (fun c outcome ->
      match outcome with
      | Ok e -> note t c e
      | Error exn ->
        (* A crashed harness task (compile/build bug) must not take the
           whole run down: journal it as a failed cell and move on. The
           cell stays unmemoized, so a later direct lookup re-raises. *)
        let r : Journal.entry =
          { Journal.workload = c.workload.W.Workload.name;
            protection = P.protection_name c.protection;
            store = M.Safestore.impl_name c.store_impl;
            outcome = "harness-exception(" ^ Printexc.to_string exn ^ ")";
            status = 1; cycles = 0; instrs = 0; mem_ops = 0;
            instrumented_mem_ops = 0; store_accesses = 0;
            store_footprint = 0; heap_peak = 0; checksum = 0;
            checks_elided = 0; mem_ops_demoted = 0; wall_us = 0 }
        in
        (match t.journal with Some j -> Journal.record j r | None -> ()))
    fresh outcomes

let run_workload t ?(store_impl = M.Safestore.Simple_array) w protection =
  let c = { workload = w; protection; store_impl } in
  match find_memo t (key c) with
  | Some e -> e.result
  | None ->
    let e = exec_cell t c in
    note t c e;
    e.result

let overhead t w prot =
  let base = run_workload t w P.Vanilla in
  let r = run_workload t w prot in
  Levee_support.Stats.overhead_pct ~base:base.M.Interp.cycles
    ~instrumented:r.M.Interp.cycles

let vanilla_failures t =
  Mutex.lock t.m;
  let l = List.rev t.rev_vanilla_failures in
  Mutex.unlock t.m;
  l
