(* Fault-injection campaign driver (see faults.mli).

   Parallel structure mirrors Engine: each (subject, config) pair is one
   pool task that builds the images once, runs the un-faulted baseline
   and then every plan; the submitting domain integrates results in
   submission order, so the report is independent of [jobs]. *)

module P = Levee_core.Pipeline
module M = Levee_machine
module A = Levee_attacks
module Pool = Levee_support.Pool
module J = Levee_support.Jsonenc
module Runstore = Levee_support.Runstore

let schema_id = "levee-faults/3"

type subject = {
  sname : string;
  source : string;
  input : int array;
  fuel : int;
  splans : A.Faultplan.t list;
  sseeds : int list;  (* scheduler seeds to sweep (single-threaded: [0]) *)
}

type campaign = {
  cname : string;
  seed : int;
  subjects : subject list;
  configs : (P.protection * M.Safestore.impl) list;
}

(* ---------- the smoke campaign ---------- *)

(* Both subjects dispatch through a code pointer inside a long loop, so a
   mid-loop corruption lands while the pointer is both live and about to
   be used; [backdoor] is the hijack witness ([system] => [Hijacked]). *)

let dispatch_src = {|
int helper(int x) { return x + 1; }
int backdoor() { system("pwn"); return 1; }
int work(int n) {
  int (*fp)(int);
  int acc;
  int i;
  fp = helper;
  acc = 0;
  i = 0;
  while (i < n) {
    acc = acc + fp(i);
    i = i + 1;
  }
  checksum(acc);
  return acc;
}
int main() { work(40); print_str("done"); return 0; }
|}

let gdispatch_src = {|
int helper(int x) { return x + 2; }
int backdoor() { system("pwn"); return 1; }
int (*gfp)(int) = helper;
int main() {
  int acc;
  int i;
  acc = 0;
  i = 0;
  while (i < 30) {
    acc = acc + gfp(i);
    i = i + 1;
  }
  checksum(acc);
  print_str("done");
  return 0;
}
|}

(* Concurrent subject: two workers drain a shared queue and dispatch
   every request through a shared function-pointer table, so a
   mid-drain corruption of the table, of a worker's return slot, or of
   a worker's safe stack lands while another thread is running — the
   cross-thread variants of the classic attacks. *)
let conc_src = {|
int queue[80]; int qhead; int qtail; int qlock;
int acc; int acclock;
int backdoor() { system("pwn"); return 1; }
int step_inc(int r) { return r + 1; }
int step_mix(int r) { return r * 2 + 1; }
int (*wfp[2])(int) = { step_inc, step_mix };
int worker(int wid) {
  int mine = 0;
  int done = 0;
  while (done == 0) {
    int req = -1;
    mutex_lock(&qlock);
    if (qhead < qtail) { req = queue[qhead]; qhead = qhead + 1; }
    mutex_unlock(&qlock);
    if (req < 0) { done = 1; }
    else {
      int r = wfp[req & 1](wfp[(req + 1) & 1](req));
      mutex_lock(&acclock);
      acc = (acc + r) & 16777215;
      mutex_unlock(&acclock);
      mine = mine + 1;
    }
  }
  return mine;
}
int main() {
  int i; int t1; int t2; int total;
  for (i = 0; i < 80; i = i + 1) { queue[i] = i * 7 + 3; }
  qtail = 80;
  t1 = thread_spawn(worker, 1);
  t2 = thread_spawn(worker, 2);
  total = thread_join(t1) + thread_join(t2);
  checksum(acc + total);
  print_str("done");
  return 0;
}
|}

(* Spectrum subject (mirrors examples/minic/fptr_zoo.c): the fp call's
   signature class is {add, evil} — evil is address-taken through
   [evil_ref] but never called benignly — so a same-signature swap to
   [evil] pierces cfi-type while the cross-signature [backdoor] does not.
   CPI and cpi-crypt refuse both: the pointer is protected, not the set. *)
let fptr_zoo_src = {|
int add(int a, int b) { return a + b; }
int sub(int a, int b) { return a - b; }
int evil(int a, int b) { system("pwn"); return a; }
int backdoor() { system("pwn"); return 1; }
int (*evil_ref)(int, int) = evil;
int out(int x) { return x & 65535; }
int (*post)(int) = out;
int zoo(int n) {
  int (*fp)(int, int);
  int acc;
  int i;
  fp = add;
  acc = 0;
  i = 0;
  while (i < n) {
    acc = post(acc + fp(i, 2));
    i = i + 1;
  }
  checksum(acc);
  return acc;
}
int main() { zoo(60); print_str("done"); return 0; }
|}

let smoke ?(seed = 42) () =
  let open A.Faultplan in
  let ev step action = { step; action } in
  let backdoor = Code_entry "backdoor" in
  let chain = [ "main"; "work" ] in
  let dispatch =
    { sname = "dispatch"; source = dispatch_src; input = [||]; fuel = 200_000;
      sseeds = [ 0 ];
      splans =
        [ make ~name:"ret-to-backdoor"
            [ ev 100 (Write { site = Ret_slot chain; value = backdoor }) ];
          (* [work]'s allocas in order: the [n] parameter spill, then
             [fp], [acc], [i]. *)
          make ~name:"fptr-hijack"
            [ ev 100
                (Write
                   { site = Var_slot { chain; index = 1 }; value = backdoor })
            ];
          make ~name:"fptr-bitflip"
            [ ev 100 (Flip { site = Var_slot { chain; index = 1 }; bit = 3 }) ];
          make ~name:"acc-bitflip"
            [ ev 120 (Flip { site = Var_slot { chain; index = 2 }; bit = 0 }) ];
          make ~name:"safe-tamper"
            [ ev 80 (Write { site = Safe_site 4; value = Value 0xDEAD }) ];
        ] }
  in
  let g = Global ("gfp", 0) in
  let gdispatch =
    { sname = "gdispatch"; source = gdispatch_src; input = [||]; fuel = 200_000;
      sseeds = [ 0 ];
      splans =
        [ make ~name:"gfp-hijack" [ ev 60 (Write { site = g; value = backdoor }) ];
          make ~name:"gfp-bitflip" [ ev 60 (Flip { site = g; bit = 0 }) ];
          make ~name:"gfp-desync" [ ev 60 (Desync { site = g; delta = 3 }) ];
          make ~name:"gfp-dropmeta" [ ev 60 (Drop_meta g) ];
          make ~name:"safe-tamper"
            [ ev 80 (Write { site = Safe_site 4; value = Value 0xDEAD }) ];
        ] }
  in
  let conc =
    (* Steps ~1500-2500 land mid-drain: both workers are spawned within
       the first few hundred instructions and the queue lasts thousands. *)
    { sname = "conc"; source = conc_src; input = [||]; fuel = 200_000;
      sseeds = [ 0; 5 ];
      splans =
        [ make ~name:"wfp-hijack"
            [ ev 1500 (Write { site = Global ("wfp", 0); value = backdoor }) ];
          make ~name:"cross-thread-ret"
            [ ev 1500
                (Write
                   { site = Thread_ret { tid = 1; chain = [ "worker" ] };
                     value = backdoor }) ];
          make ~name:"cross-thread-safe-tamper"
            [ ev 1500
                (Write
                   { site = Thread_safe { tid = 1; off = 4 };
                     value = Value 0xDEAD }) ];
          make ~name:"cross-thread-stack-flip"
            [ ev 2000
                (Flip { site = Thread_stack { tid = 2; off = 8 }; bit = 5 }) ];
        ] }
  in
  let zoo_chain = [ "main"; "zoo" ] in
  let fptr_zoo =
    (* [zoo]'s allocas in order: the [n] parameter spill, then [fp],
       [acc], [i]. Step 150 lands a few iterations into the loop, with
       [fp] live and about to be dispatched through. *)
    { sname = "fptr_zoo"; source = fptr_zoo_src; input = [||]; fuel = 200_000;
      sseeds = [ 0 ];
      splans =
        [ make ~name:"same-sig-hijack"
            [ ev 150
                (Write
                   { site = Var_slot { chain = zoo_chain; index = 1 };
                     value = Code_entry "evil" }) ];
          make ~name:"cross-sig-hijack"
            [ ev 150
                (Write
                   { site = Var_slot { chain = zoo_chain; index = 1 };
                     value = backdoor }) ];
        ] }
  in
  let shared =
    List.init 4 (fun k ->
        random
          ~name:(Printf.sprintf "rand-%d" (k + 1))
          ~seed:((seed * 1000) + k + 1)
          ~events:3 ~max_step:400)
  in
  let with_shared s = { s with splans = s.splans @ shared } in
  { cname = "smoke"; seed;
    subjects =
      [ with_shared dispatch; with_shared gdispatch; with_shared conc;
        with_shared fptr_zoo ];
    configs =
      [ (P.Vanilla, M.Safestore.Simple_array);
        (P.Safe_stack, M.Safestore.Simple_array);
        (P.Cps, M.Safestore.Simple_array);
        (P.Cps, M.Safestore.Two_level);
        (P.Cps, M.Safestore.Hashtable);
        (P.Cpi, M.Safestore.Simple_array);
        (P.Cpi, M.Safestore.Two_level);
        (P.Cpi, M.Safestore.Hashtable);
        (* The graded spectrum (appended so the established rows keep
           their positions): coarse CFI, per-signature CFI, and keyed
           in-place encryption — none of which use the safe store. *)
        (P.Cfi, M.Safestore.Simple_array);
        (P.Cfi_type, M.Safestore.Simple_array);
        (P.Cpi_crypt, M.Safestore.Simple_array);
      ] }

(* ---------- execution ---------- *)

type run = {
  r_subject : string;
  r_plan : string;
  r_protection : P.protection;
  r_store : M.Safestore.impl;
  r_sched_seed : int;
  r_class : string;
  r_outcome : string;
  r_instrs : int;
  r_cycles : int;
  r_checksum : int;
  r_model : bool;
  r_tamper : bool;
  r_meta : bool;
}

type report = {
  rep_campaign : campaign;
  rep_runs : run list;
}

let runs rep = rep.rep_runs

let classify ~(baseline : M.Interp.result) (r : M.Interp.result) =
  match r.M.Interp.outcome with
  | M.Trap.Hijacked _ -> "hijacked"
  | M.Trap.Trapped _ -> "trapped"
  | M.Trap.Crash _ -> "crash"
  | M.Trap.Fuel_exhausted -> "fuel-exhausted"
  | M.Trap.Exit _ ->
    if r.M.Interp.outcome = baseline.M.Interp.outcome
       && r.M.Interp.output = baseline.M.Interp.output
       && r.M.Interp.checksum = baseline.M.Interp.checksum
    then "masked"
    else "benign"

(* One pool task: everything for one (subject, protection, store). *)
let exec_config (s, (prot, store)) =
  let prog = Levee_minic.Lower.compile ~name:s.sname s.source in
  let vb = P.build ~store_impl:store P.Vanilla prog in
  let reference = M.Loader.load vb.P.prog vb.P.config in
  let deployed =
    if prot = P.Vanilla then reference
    else
      let b = P.build ~store_impl:store prot prog in
      M.Loader.load b.P.prog b.P.config
  in
  List.concat_map
    (fun sched_seed ->
      let baseline =
        M.Interp.run ~input:s.input ~fuel:s.fuel ~sched_seed deployed
      in
      (match baseline.M.Interp.outcome with
       | M.Trap.Exit 0 -> ()
       | o ->
         failwith
           (Printf.sprintf "faults: baseline %s under %s (sched-seed %d) is %s"
              s.sname (P.protection_name prot) sched_seed
              (M.Trap.outcome_to_string o)));
      List.map
        (fun plan ->
          let faults = A.Faultplan.resolve ~reference ~deployed plan in
          let r =
            M.Interp.run ~input:s.input ~fuel:s.fuel ~faults ~sched_seed
              deployed
          in
          { r_subject = s.sname;
            r_plan = plan.A.Faultplan.name;
            r_protection = prot;
            r_store = store;
            r_sched_seed = sched_seed;
            r_class = classify ~baseline r;
            r_outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
            r_instrs = r.M.Interp.instrs;
            r_cycles = r.M.Interp.cycles;
            r_checksum = r.M.Interp.checksum;
            r_model = A.Faultplan.within_attacker_model plan;
            r_tamper = A.Faultplan.pure_safe_tamper plan;
            r_meta = A.Faultplan.pure_metadata plan })
        s.splans)
    s.sseeds

let run ?(jobs = 1) campaign =
  let cells =
    List.concat_map
      (fun s -> List.map (fun cfg -> (s, cfg)) campaign.configs)
      campaign.subjects
  in
  let pool = Pool.create ~jobs in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool exec_config cells)
  in
  let rep_runs =
    List.concat_map
      (function Ok rs -> rs | Error exn -> raise exn)
      results
  in
  { rep_campaign = campaign; rep_runs }

(* ---------- invariants ---------- *)

let isolation_str = M.Trap.outcome_to_string (M.Trap.Trapped M.Trap.Isolation_violation)

let invariants rep =
  let rs = rep.rep_runs in
  [ ( "cpi implies no hijack (attacker-model plans)",
      not
        (List.exists
           (fun r ->
             r.r_protection = P.Cpi && r.r_model && r.r_class = "hijacked")
           rs) );
    ( "vanilla hijack witnessed",
      List.exists
        (fun r -> r.r_protection = P.Vanilla && r.r_class = "hijacked")
        rs );
    ( "safe-region tamper traps as isolation violation",
      List.for_all
        (fun r -> (not r.r_tamper) || r.r_outcome = isolation_str)
        rs );
    ( "vanilla hijack witnessed under every sched seed",
      List.for_all
        (fun seed ->
          List.exists
            (fun r ->
              r.r_sched_seed = seed && r.r_protection = P.Vanilla
              && r.r_class = "hijacked")
            rs)
        (List.sort_uniq compare (List.map (fun r -> r.r_sched_seed) rs)) );
    (* ---- the protection-spectrum invariants ---- *)
    (* Keyed in-place encryption keeps no safe store, so a plan made only
       of metadata attacks (Desync/Drop_meta) hits nothing: the run must
       be observationally identical to the un-faulted baseline. *)
    ( "cpi-crypt masks pure metadata-drop plans",
      List.for_all
        (fun r ->
          (not (r.r_protection = P.Cpi_crypt && r.r_meta))
          || r.r_class = "masked")
        rs );
    (* ... while the same plans do disturb a safe-region backend: the
       campaign must witness CPI actually depending on its metadata
       (otherwise the previous invariant is vacuous). *)
    ( "safe-region metadata corruption witnessed (cpi)",
      List.exists
        (fun r ->
          r.r_protection = P.Cpi && r.r_meta && r.r_class <> "masked")
        rs );
    (* Burow et al. ordering, lower bound: at least one plan hijacks
       coarse CFI while the per-signature sets refuse it (the
       cross-signature redirects — backdoor is a function entry, but the
       wrong type). *)
    ( "coarse cfi admits a hijack cfi-type refuses",
      List.exists
        (fun r ->
          r.r_protection = P.Cfi && r.r_class = "hijacked"
          && List.exists
               (fun r' ->
                 r'.r_protection = P.Cfi_type && r'.r_subject = r.r_subject
                 && r'.r_plan = r.r_plan && r'.r_sched_seed = r.r_sched_seed
                 && r'.r_class <> "hijacked")
               rs)
        rs );
    (* ... and upper bound: the same-signature swap stays inside the type
       set, so cfi-type is pierced where the pointer-centric backends are
       not — set precision cannot substitute for pointer integrity. *)
    ( "same-signature hijack pierces cfi-type but not cpi/cpi-crypt",
      List.exists
        (fun r ->
          r.r_protection = P.Cfi_type && r.r_plan = "same-sig-hijack"
          && r.r_class = "hijacked")
        rs
      && not
           (List.exists
              (fun r ->
                (r.r_protection = P.Cpi || r.r_protection = P.Cpi_crypt)
                && r.r_plan = "same-sig-hijack" && r.r_class = "hijacked")
              rs) );
    (* cpi-crypt's guarantee is unconditional on the plan class: even
       metadata attacks (outside the software attacker model) find no
       table to corrupt, and tampered ciphertext decrypts to garbled
       targets that trap rather than hijack. *)
    ( "cpi-crypt never hijacked (all plans)",
      not
        (List.exists
           (fun r -> r.r_protection = P.Cpi_crypt && r.r_class = "hijacked")
           rs) );
  ]

let invariants_ok rep = List.for_all snd (invariants rep)

(* ---------- reporting ---------- *)

let classes = [ "hijacked"; "trapped"; "crash"; "masked"; "benign"; "fuel-exhausted" ]

let plan_descrs campaign =
  List.concat_map
    (fun s ->
      List.map (fun (p : A.Faultplan.t) -> (s.sname, p)) s.splans)
    campaign.subjects

let to_json rep =
  let c = rep.rep_campaign in
  let plan_json (sname, (p : A.Faultplan.t)) =
    J.obj
      [ J.str "subject" sname;
        J.str "name" p.A.Faultplan.name;
        J.int "seed" p.A.Faultplan.seed;
        J.int "events" (List.length p.A.Faultplan.events);
        J.bool "attacker_model" (A.Faultplan.within_attacker_model p);
        J.bool "safe_tamper" (A.Faultplan.pure_safe_tamper p);
        J.bool "targets_metadata" (A.Faultplan.targets_metadata p) ]
  in
  let run_json r =
    J.obj
      [ J.str "subject" r.r_subject;
        J.str "plan" r.r_plan;
        J.str "protection" (P.protection_name r.r_protection);
        J.str "store" (M.Safestore.impl_name r.r_store);
        J.int "sched_seed" r.r_sched_seed;
        J.str "class" r.r_class;
        J.str "outcome" r.r_outcome;
        J.int "instrs" r.r_instrs;
        J.int "cycles" r.r_cycles;
        J.int "checksum" r.r_checksum ]
  in
  let count cls = List.length (List.filter (fun r -> r.r_class = cls) rep.rep_runs) in
  let by_prot =
    List.filter_map
      (fun prot ->
        if List.exists (fun (p, _) -> p = prot) c.configs then
          Some
            (J.int (P.protection_name prot)
               (List.length
                  (List.filter
                     (fun r -> r.r_protection = prot && r.r_class = "hijacked")
                     rep.rep_runs)))
        else None)
      P.all_protections
  in
  let inv_json =
    (* Paired with [invariants] by position: one stable key per verdict,
       in the same order the invariants are declared. *)
    let keys =
      [ "cpi_no_hijack"; "vanilla_hijack_witnessed"; "safe_tamper_isolation";
        "vanilla_hijack_every_seed"; "crypt_masks_metadata_drop";
        "cpi_metadata_witness"; "coarse_cfi_gap"; "same_sig_pierces_cfi_type";
        "cpi_crypt_no_hijack" ]
    in
    List.map2 (fun key (_, ok) -> J.bool key ok) keys (invariants rep)
  in
  String.concat ""
    [ Printf.sprintf "{\n\"schema\":\"%s\",\n" schema_id;
      Printf.sprintf "\"campaign\":\"%s\",\n" (J.escape c.cname);
      Printf.sprintf "\"seed\":%d,\n" c.seed;
      "\"plans\":";
      J.arr (List.map plan_json (plan_descrs c));
      ",\n\"runs\":";
      J.arr (List.map run_json rep.rep_runs);
      ",\n\"summary\":";
      J.obj
        ([ J.int "runs" (List.length rep.rep_runs) ]
        @ List.map (fun cls -> J.int cls (count cls)) classes
        @ [ "\"hijacked_by_protection\":" ^ J.obj by_prot;
            "\"invariants\":" ^ J.obj inv_json ]);
      "\n}\n" ]

(* The campaign carries no wall-clock, so its run-store record is fully
   deterministic: class counts, total simulated cycles, and the
   invariant verdict, keyed by the campaign seed. *)
(* The per-backend hijack counts recorded in the run-store: the spectrum
   ordering (vanilla >= cfi >= cfi-type >= cpi = cpi-crypt = 0) becomes a
   history-gated regression surface, not just a one-shot invariant. *)
let record_backends =
  [ P.Vanilla; P.Cfi; P.Cfi_type; P.Cpi; P.Cpi_crypt ]

let to_record ?commit rep =
  let c = rep.rep_campaign in
  let count cls =
    List.length (List.filter (fun r -> r.r_class = cls) rep.rep_runs)
  in
  let hijacked prot =
    List.length
      (List.filter
         (fun r -> r.r_protection = prot && r.r_class = "hijacked")
         rep.rep_runs)
  in
  let field_name prot =
    "hijacked_"
    ^ String.map
        (fun ch -> if ch = '-' then '_' else ch)
        (P.protection_name prot)
  in
  Runstore.make ~schema:schema_id ~kind:"faults" ?commit ~config:c.cname
    ~seed:c.seed ~wall_us:0
    ([ ("runs", Runstore.Int (List.length rep.rep_runs)) ]
    @ List.map
        (fun cls ->
          ( (if cls = "fuel-exhausted" then "fuel_exhausted" else cls),
            Runstore.Int (count cls) ))
        classes
    @ List.map
        (fun prot -> (field_name prot, Runstore.Int (hijacked prot)))
        record_backends
    @ [ ("cycles",
         Runstore.Int
           (List.fold_left (fun acc r -> acc + r.r_cycles) 0 rep.rep_runs));
        ("invariants_ok", Runstore.Int (if invariants_ok rep then 1 else 0)) ])

let to_human rep =
  let b = Buffer.create 1024 in
  let c = rep.rep_campaign in
  Buffer.add_string b
    (Printf.sprintf "fault campaign '%s' (seed %d): %d runs\n" c.cname c.seed
       (List.length rep.rep_runs));
  Buffer.add_string b
    (Printf.sprintf "  %-22s %9s %8s %6s %7s %7s %5s\n" "config" "hijacked"
       "trapped" "crash" "masked" "benign" "fuel");
  List.iter
    (fun (prot, store) ->
      let mine =
        List.filter
          (fun r -> r.r_protection = prot && r.r_store = store)
          rep.rep_runs
      in
      let n cls = List.length (List.filter (fun r -> r.r_class = cls) mine) in
      Buffer.add_string b
        (Printf.sprintf "  %-22s %9d %8d %6d %7d %7d %5d\n"
           (P.protection_name prot ^ "/" ^ M.Safestore.impl_name store)
           (n "hijacked") (n "trapped") (n "crash") (n "masked") (n "benign")
           (n "fuel-exhausted")))
    c.configs;
  List.iter
    (fun (name, ok) ->
      Buffer.add_string b
        (Printf.sprintf "  invariant: %-48s %s\n" name
           (if ok then "OK" else "VIOLATED")))
    (invariants rep);
  Buffer.contents b
