(** Cross-validation of the static race/soundness analyzer against the
    dynamic detectors.

    The harness runs a fixed racy/race-free corpus through both sides:

    - {b static}: {!Levee_analysis.Racecheck.races} over the
      uninstrumented program;
    - {b dynamic}: the machine's Eraser detector across
      (protection × scheduler seed) cells, every dynamic report
      projected back onto its program object ({!Levee_machine.Raceproj}).

    The headline invariant is the analyzer's empirical soundness: every
    dynamically-observed race is statically flagged, in every cell. The
    converse direction is checked as corpus expectations (racy subjects
    are statically flagged *and* dynamically witnessed; guarded subjects
    are silent on both sides).

    A second link ties the separation pass to the fault campaigns: on
    the {!Faults.smoke} subjects, a CPI build whose plain stores are all
    certified (and whose certificates replay) must never be hijacked by
    an attacker-model plan. Everything is deterministic and independent
    of [jobs]. *)

module P = Levee_core.Pipeline
module M = Levee_machine
module An = Levee_analysis

(** A corpus program: self-contained MiniC whose benign run exits 0
    under every protection and scheduler seed. [x_racy] is the expected
    static verdict. *)
type subject = {
  xname : string;
  source : string;
  fuel : int;
  x_racy : bool;
}

(** The built-in corpus: an unguarded shared counter, broken
    double-checked locking, a properly-guarded web-stack fragment, and
    the single-spawn handler registry (mirrors [examples/minic]). *)
val corpus : subject list

(** One dynamic execution cell. *)
type cell = {
  c_subject : string;
  c_prot : P.protection;
  c_seed : int;
  c_outcome : string;
  c_races : string list;      (** projected dynamic race keys, sorted *)
  c_uncovered : string list;  (** dynamic keys no static verdict covers *)
}

type verdict = {
  v_subject : string;
  v_racy : bool;                      (** corpus expectation *)
  v_static : string list;             (** static racy-object keys *)
  v_races : An.Racecheck.race list;   (** full static verdicts *)
  v_cells : cell list;
}

type report

val verdicts : report -> verdict list

(** Does this static key set cover a dynamic race key? Exact for
    globals; heap/stack dynamic keys are covered by any malloc/alloca
    site key (one address cannot single out the site); ["<unknown>"]
    covers everything. *)
val covers : string list -> string -> bool

(** Run the corpus over [protections × seeds] on a [jobs]-wide pool.
    Defaults: Vanilla and CPI, seeds 0..7. Deterministic across [jobs]. *)
val run :
  ?jobs:int ->
  ?protections:P.protection list ->
  ?seeds:int list ->
  subject list ->
  report

(** The static-vs-faults link for one {!Faults.smoke} subject. *)
type faults_cross = {
  fc_subject : string;
  fc_plain : int;
  fc_certified : int;
  fc_unproven : int;
  fc_replay_ok : bool;
  fc_cpi_hijacked : bool;
      (** some attacker-model plan ended [Hijacked] under CPI *)
}

(** Run the {!Faults.smoke} campaign and the separation pass side by
    side. Deterministic. *)
val faults_cross : ?jobs:int -> ?seed:int -> unit -> faults_cross list

(** A fully-certified CPI subject is never hijacked by an
    attacker-model plan. *)
val faults_consistent : faults_cross list -> bool

(** The invariants, in order: soundness (every dynamic race statically
    covered), static-verdict-matches-corpus, racy-subjects-witnessed,
    guarded-subjects-silent, all-runs-exit-0. *)
val invariants : report -> (string * bool) list

val invariants_ok : report -> bool

(** The [levee-crossval/1] JSON document. [faults] appends the
    static-vs-faults section. *)
val to_json : ?faults:faults_cross list -> report -> string

val to_human : ?faults:faults_cross list -> report -> string

(** One aggregate run-store record (schema [levee-crossval/1], kind
    ["crossval"], config ["corpus"], [wall_us = 0]); deterministic
    across runs and [jobs] widths. *)
val to_record : ?commit:string -> report -> Levee_support.Runstore.record
