(** The parallel benchmark execution engine.

    Owns a {!Levee_support.Pool} of worker domains, a pool-safe memo of
    (workload, protection, store) cell results, and an optional
    {!Levee_support.Journal} that every fresh execution is recorded to.
    The cost model is deterministic, so any [jobs] setting produces the
    same results and the same journal (modulo wall-clock fields); cells
    are journalled in canonical submission order, not completion order. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module M = Levee_machine

type cell = {
  workload : W.Workload.t;
  protection : P.protection;
  store_impl : M.Safestore.impl;
}

val cell :
  ?store_impl:M.Safestore.impl -> W.Workload.t -> P.protection -> cell

type t

(** [create ~jobs ()] builds an engine around a [jobs]-wide pool.
    [fuel_cap], if given, clamps every workload's instruction budget (the
    tiny-fuel CI smoke path). [task_timeout] arms the pool's per-cell
    watchdog (seconds; needs [jobs > 1]): a stuck cell is journalled as
    [timed-out(..)] instead of hanging the batch. [retries] re-runs a
    cell whose harness task raised, with deterministic backoff.
    [quarantine_after] (default 3) stops executing a workload once that
    many of its cells failed in the harness (exceptions or timeouts, not
    simulated traps); further cells are journalled as [quarantined]. *)
val create :
  ?fuel_cap:int -> ?task_timeout:float -> ?retries:int ->
  ?quarantine_after:int -> jobs:int -> unit -> t

val jobs : t -> int
val pool : t -> Levee_support.Pool.t

(** Route subsequent executions' records to [j] (one journal per bench
    target). *)
val set_journal : t -> Levee_support.Journal.t option -> unit

(** [prefetch t cells] executes every not-yet-memoized cell through the
    pool and memoizes + journals the results in submission order. With
    [jobs = 1] the cells run inline, in order, in the calling domain. *)
val prefetch : t -> cell list -> unit

(** Memoized lookup; computes (and journals) inline on a miss. *)
val run_workload :
  t -> ?store_impl:M.Safestore.impl -> W.Workload.t -> P.protection ->
  M.Interp.result

(** Percent cycle overhead of [protection] over vanilla for [w]. *)
val overhead : t -> W.Workload.t -> P.protection -> float

(** Workloads whose *vanilla* run did not end in [Exit 0], in the order
    they were discovered. A non-empty list means the harness itself is
    broken and the process should exit non-zero. *)
val vanilla_failures : t -> (string * M.Trap.outcome) list

(** Cells the harness itself failed to execute (exception, timeout or
    quarantine), as [("workload/protection", reason)] pairs in discovery
    order. These are also journalled with status 1, so the journal still
    covers the full matrix. *)
val harness_failures : t -> (string * string) list

(** Shut the pool down (joins the worker domains). *)
val shutdown : t -> unit
