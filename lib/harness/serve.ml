(* Resilient-server campaign driver (see serve.mli).

   Layer 1 (machine): calibrate per-class service cycles and probe the
   real interpreter under hijack/degradation fault plans.
   Layer 2 (simulation): a deterministic discrete-event simulation of the
   same server shape — open-loop arrivals, bounded queue, deadlines,
   retries with seeded backoff, per-shard circuit breakers, injected
   kills and stalls — scaled to ~10^6 requests per cell.

   Nothing here reads a clock or iterates a hash table whose order could
   vary: cells are integrated in pool-submission order and every metric
   is in simulated cycles, so the whole report is a pure function of the
   config. *)

module P = Levee_core.Pipeline
module M = Levee_machine
module A = Levee_attacks
module W = Levee_workloads
module Pool = Levee_support.Pool
module J = Levee_support.Jsonenc
module Rng = Levee_support.Rng
module Runstore = Levee_support.Runstore

let schema_id = "levee-serve/1"

type config = {
  workers : int;
  shards : int;
  requests : int;
  protections : P.protection list;
  seeds : int list;
  faulted : bool;
}

let default =
  (* The spectrum members ride along after the paper's own columns: the
     handler-overwrite probe is cross-signature (backdoor is int(), the
     handlers are int(int)), so cfi-type refuses it and cpi-crypt garbles
     it — both must stay un-hijacked even mid-degradation. *)
  { workers = 4; shards = 4; requests = 1_000_000;
    protections = [ P.Vanilla; P.Safe_stack; P.Cpi; P.Cfi_type; P.Cpi_crypt ];
    seeds = [ 0; 1 ]; faulted = true }

let smoke = { default with requests = 12_000 }

let validate c =
  W.Webstack.check_workers ~flag:"--workers" c.workers;
  if c.shards < 1 || c.shards > W.Webstack.max_shards then
    invalid_arg (Printf.sprintf "--shards must be in 1..%d" W.Webstack.max_shards);
  if c.requests < 1 then invalid_arg "--requests must be positive";
  if c.seeds = [] then invalid_arg "serve: need at least one seed"

type probe = {
  p_plan : string;
  p_class : string;
  p_outcome : string;
  p_cycles : int;
  p_checksum : int;
}

type cell = {
  c_protection : P.protection;
  c_seed : int;
  c_svc : int array;
  c_probes : probe list;
  c_arrivals : int;
  c_served : int;
  c_shed : int;
  c_timed_out : int;
  c_retried : int;
  c_killed : int;
  c_trips : int;
  c_p50 : int;
  c_p99 : int;
  c_p999 : int;
  c_max : int;
  c_hist : (int * int) list;
}

type report = { rep_config : config; rep_cells : cell list }

(* ---------- layer 1: calibration + probes on the real machine ---------- *)

let build_images prot prog =
  let vb = P.build ~store_impl:M.Safestore.Simple_array P.Vanilla prog in
  let reference = M.Loader.load vb.P.prog vb.P.config in
  let deployed =
    if prot = P.Vanilla then reference
    else
      let b = P.build ~store_impl:M.Safestore.Simple_array prot prog in
      M.Loader.load b.P.prog b.P.config
  in
  (reference, deployed)

let run_workload prot ?(faults = []) ?(sched_seed = 0) (w : W.Workload.t) =
  let prog = W.Workload.compile w in
  let _, deployed = build_images prot prog in
  M.Interp.run ~fuel:w.W.Workload.fuel ~faults ~sched_seed deployed

(* Marginal service cycles per request class: two single-threaded runs at
   different request counts cancel out startup cost. Single-threaded runs
   never consult the scheduler, so this is seed-independent. *)
let calib_r1 = 60
let calib_r2 = 180

let calibrate cfg prot =
  Array.init 3 (fun cls ->
      let run n =
        let w =
          W.Webstack.server ~threads:1 ~shards:cfg.shards ~cls ~requests:n
        in
        let r = run_workload prot w in
        (match r.M.Interp.outcome with
         | M.Trap.Exit 0 -> ()
         | o ->
           failwith
             (Printf.sprintf "serve: calibration run (%s, class %d) is %s"
                (P.protection_name prot) cls (M.Trap.outcome_to_string o)));
        r.M.Interp.cycles
      in
      max 1 ((run calib_r2 - run calib_r1) / (calib_r2 - calib_r1)))

(* The probe subject replays the full server (all classes, real threads)
   under fault plans. 300 requests keep it fast; the hijack write lands
   mid-drain (the drain spans roughly instructions 15k..160k). *)
let probe_requests = 300

let classify ~(baseline : M.Interp.result) (r : M.Interp.result) =
  match r.M.Interp.outcome with
  | M.Trap.Hijacked _ -> "hijacked"
  | M.Trap.Trapped _ -> "trapped"
  | M.Trap.Crash _ -> "crash"
  | M.Trap.Fuel_exhausted -> "fuel-exhausted"
  | M.Trap.Exit _ ->
    if r.M.Interp.outcome = baseline.M.Interp.outcome
       && r.M.Interp.output = baseline.M.Interp.output
       && r.M.Interp.checksum = baseline.M.Interp.checksum
    then "masked"
    else "benign"

let probe_plans cfg =
  let open A.Faultplan in
  let ev step action = { step; action } in
  let hijack =
    ev 50_000
      (Write { site = Global ("handlers", 0); value = Code_entry "backdoor" })
  in
  let degrade =
    (* Kill a worker, stall the machine, then fire the same hijack write:
       the integrity check must hold mid-degradation. tid 1 is the first
       spawned worker; with one worker main drains the queue itself and
       the kill is a no-op, leaving stall + hijack. *)
    [ ev 20_000 (Kill_worker { tid = 1 });
      ev 30_000 (Stall { cycles = 50_000 });
      ev 50_000
        (Write { site = Global ("handlers", 0); value = Code_entry "backdoor" })
    ]
  in
  [ make ~name:"hijack" [ hijack ];
    make ~name:"degrade" (if cfg.faulted then degrade else [ hijack ]) ]

let run_probes cfg prot seed =
  let w =
    W.Webstack.server ~threads:cfg.workers ~shards:cfg.shards ~cls:(-1)
      ~requests:probe_requests
  in
  let prog = W.Workload.compile w in
  let reference, deployed = build_images prot prog in
  let baseline = M.Interp.run ~fuel:w.W.Workload.fuel ~sched_seed:seed deployed in
  (match baseline.M.Interp.outcome with
   | M.Trap.Exit 0 -> ()
   | o ->
     failwith
       (Printf.sprintf "serve: probe baseline under %s (seed %d) is %s"
          (P.protection_name prot) seed (M.Trap.outcome_to_string o)));
  List.map
    (fun plan ->
      let faults = A.Faultplan.resolve ~reference ~deployed plan in
      let r =
        M.Interp.run ~fuel:w.W.Workload.fuel ~faults ~sched_seed:seed deployed
      in
      { p_plan = plan.A.Faultplan.name;
        p_class = classify ~baseline r;
        p_outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
        p_cycles = r.M.Interp.cycles;
        p_checksum = r.M.Interp.checksum })
    (probe_plans cfg)

(* ---------- layer 2: the discrete-event simulation ---------- *)

(* Binary min-heap on (time, seq): seq is the push counter, so same-time
   events fire in push order — a total order independent of anything but
   the simulation itself. *)
module Heap = struct
  type 'a t = {
    mutable ts : int array;
    mutable seqs : int array;
    mutable evs : 'a array;
    mutable n : int;
    mutable seq : int;
    dummy : 'a;
  }

  let create dummy =
    { ts = Array.make 64 0; seqs = Array.make 64 0; evs = Array.make 64 dummy;
      n = 0; seq = 0; dummy }

  let lt h i j =
    h.ts.(i) < h.ts.(j) || (h.ts.(i) = h.ts.(j) && h.seqs.(i) < h.seqs.(j))

  let swap h i j =
    let t = h.ts.(i) in h.ts.(i) <- h.ts.(j); h.ts.(j) <- t;
    let s = h.seqs.(i) in h.seqs.(i) <- h.seqs.(j); h.seqs.(j) <- s;
    let e = h.evs.(i) in h.evs.(i) <- h.evs.(j); h.evs.(j) <- e

  let push h t ev =
    if h.n = Array.length h.ts then begin
      let grow a fill = Array.append a (Array.make h.n fill) in
      h.ts <- grow h.ts 0; h.seqs <- grow h.seqs 0; h.evs <- grow h.evs h.dummy
    end;
    h.ts.(h.n) <- t; h.seqs.(h.n) <- h.seq; h.evs.(h.n) <- ev;
    h.seq <- h.seq + 1;
    let i = ref h.n in
    h.n <- h.n + 1;
    while !i > 0 && lt h !i ((!i - 1) / 2) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let pop h =
    if h.n = 0 then None
    else begin
      let t = h.ts.(0) and ev = h.evs.(0) in
      h.n <- h.n - 1;
      if h.n > 0 then begin
        h.ts.(0) <- h.ts.(h.n); h.seqs.(0) <- h.seqs.(h.n);
        h.evs.(0) <- h.evs.(h.n)
      end;
      h.evs.(h.n) <- h.dummy;
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.n && lt h l !m then m := l;
        if r < h.n && lt h r !m then m := r;
        if !m = !i then continue := false
        else begin
          swap h !i !m;
          i := !m
        end
      done;
      Some (t, ev)
    end
end

type req = {
  id : int;
  cls : int;
  shard : int;
  arrival : int;
  deadline : int;
  mutable attempt : int;
}

type ev = Idle | Arrive of int | Retry of req | Free of int | Kill of int

type shard_state = {
  mutable free_at : int;
  mutable streak : int;      (* consecutive failures/slow completions *)
  mutable open_until : int;  (* breaker open while now < open_until *)
}

type sim_out = {
  s_served : int;
  s_shed : int;
  s_timed_out : int;
  s_retried : int;
  s_killed : int;
  s_trips : int;
  s_lat : int array;  (* served-request latencies, completion order *)
}

(* Tunables, all relative to the calibrated mean service time so the same
   shape holds across protections. *)
let util_pct = 85             (* open-loop load target, percent of capacity *)
let queue_cap_per_worker = 8
let deadline_mult = 50
let max_attempts = 3
let stall_factor = 8          (* hot-shard service inflation in the window *)
let slow_mult = 4             (* breaker counts svc > slow_mult*mean as slow *)
let breaker_streak = 3
let cooldown_mult = 20
let recovery_mult = 8         (* shard-lock recovery after a worker dies *)
let lock_share = 4            (* 1/lock_share of service holds the shard lock *)

let simulate cfg ~svc ~seed =
  let workers = cfg.workers and shards = cfg.shards and n = cfg.requests in
  let mean_svc = max 1 ((svc.(0) + svc.(1) + svc.(2)) / 3) in
  let mean_ia = max 1 (mean_svc * 100 / (workers * util_pct)) in
  let deadline_c = deadline_mult * mean_svc in
  let qcap = queue_cap_per_worker * workers in
  let slow_at = slow_mult * mean_svc in
  let cooldown = cooldown_mult * mean_svc in
  let recovery = recovery_mult * mean_svc in
  (* Three decorrelated streams: arrivals, the fault schedule, and the
     in-simulation draws (backoff jitter). Draw order for the last one is
     the event-processing order, itself deterministic. *)
  let arr_rng = Rng.create ((seed * 0x9E3779B9) + 1) in
  let fault_rng = Rng.create ((seed * 0x9E3779B9) + 2) in
  let sim_rng = Rng.create ((seed * 0x9E3779B9) + 3) in
  let arr_time = Array.make n 0 in
  let arr_shard = Array.make n 0 in
  let t = ref 0 in
  for i = 0 to n - 1 do
    (* Uniform integer inter-arrivals on [1, 2*mean-1]: open-loop with
       mean [mean_ia], no libm in sight. *)
    t := !t + Rng.range arr_rng 1 ((2 * mean_ia) - 1);
    arr_time.(i) <- !t;
    arr_shard.(i) <- Rng.int arr_rng shards
  done;
  let horizon = !t in
  (* Fault schedule: kill up to two workers at T/3 and T/2 (always leaving
     one alive), and pick a hot shard whose service inflates by
     [stall_factor] during the middle third of the arrival horizon. *)
  let kills =
    if not cfg.faulted then []
    else
      List.filteri (fun i _ -> i < min 2 (workers - 1))
        [ (0, horizon / 3); (1, horizon / 2) ]
  in
  let hot_shard = Rng.int fault_rng shards in
  let stall_lo = horizon / 3 and stall_hi = 2 * horizon / 3 in
  let stalling = cfg.faulted in
  let kill_time = Array.make workers max_int in
  let alive = Array.make workers true in
  let free = Array.make workers true in
  let sh =
    Array.init shards (fun _ -> { free_at = 0; streak = 0; open_until = 0 })
  in
  let q : req Queue.t = Queue.create () in
  let heap = Heap.create Idle in
  let served = ref 0 and shed = ref 0 and timed_out = ref 0 in
  let retried = ref 0 and killed = ref 0 and trips = ref 0 in
  let lat = Array.make n 0 in
  let nlat = ref 0 in
  List.iter
    (fun (w, kt) ->
      kill_time.(w) <- kt;
      Heap.push heap kt (Kill w))
    kills;
  if n > 0 then Heap.push heap arr_time.(0) (Arrive 0);
  let pick_worker () =
    let found = ref (-1) in
    for w = workers - 1 downto 0 do
      if alive.(w) && free.(w) then found := w
    done;
    !found
  in
  let shard_fail s at =
    s.streak <- s.streak + 1;
    if s.streak >= breaker_streak && at >= s.open_until then begin
      s.open_until <- at + cooldown;
      s.streak <- 0;
      incr trips
    end
  in
  let retry_path r now =
    if now > r.deadline then incr timed_out
    else if r.attempt >= max_attempts then incr shed
    else begin
      r.attempt <- r.attempt + 1;
      incr retried;
      let backoff =
        (mean_svc lsl (r.attempt - 2)) + Rng.int sim_rng ((mean_svc / 2) + 1)
      in
      Heap.push heap (now + backoff) (Retry r)
    end
  in
  let dispatch r w now =
    free.(w) <- false;
    let s = sh.(r.shard) in
    let hot =
      stalling && r.shard = hot_shard && now >= stall_lo && now < stall_hi
    in
    let service = svc.(r.cls) * if hot then stall_factor else 1 in
    let start = max now s.free_at in
    let fin = start + service in
    if kill_time.(w) < fin then begin
      (* The worker dies mid-request: the shard lock it may hold needs
         recovery, the request re-enters via the retry path, and the
         worker never frees ([Kill w] does the bookkeeping). *)
      let ft = max start kill_time.(w) in
      alive.(w) <- false;
      s.free_at <- ft + recovery;
      shard_fail s ft;
      retry_path r ft
    end
    else begin
      s.free_at <- start + max 1 (service / lock_share);
      if service > slow_at then shard_fail s fin else s.streak <- 0;
      Heap.push heap fin (Free w);
      if fin > r.deadline then incr timed_out
      else begin
        incr served;
        lat.(!nlat) <- fin - r.arrival;
        incr nlat
      end
    end
  in
  let rec try_dispatch now =
    if not (Queue.is_empty q) then begin
      let w = pick_worker () in
      if w >= 0 then begin
        let r = Queue.pop q in
        if now > r.deadline then begin
          incr timed_out;
          try_dispatch now
        end
        else if now < sh.(r.shard).open_until then begin
          (* Breaker open: fast-fail without burning a worker. *)
          retry_path r now;
          try_dispatch now
        end
        else begin
          dispatch r w now;
          try_dispatch now
        end
      end
    end
  in
  let admit r now =
    if Queue.length q >= qcap then incr shed
    else begin
      Queue.push r q;
      try_dispatch now
    end
  in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (now, ev) ->
      (match ev with
       | Idle -> ()
       | Arrive i ->
         if i + 1 < n then Heap.push heap arr_time.(i + 1) (Arrive (i + 1));
         let r =
           { id = i; cls = i mod 3; shard = arr_shard.(i);
             arrival = now; deadline = now + deadline_c; attempt = 1 }
         in
         admit r now
       | Retry r -> admit r now
       | Free w ->
         free.(w) <- true;
         try_dispatch now
       | Kill w ->
         if alive.(w) then begin
           alive.(w) <- false;
           free.(w) <- false
         end;
         incr killed);
      drain ()
  in
  drain ();
  (* All workers can be dead or wedged behind a recovered lock only up to
     a finite horizon; anything still queued when the event list is empty
     will never be served — its deadline passes in silence. *)
  Queue.iter (fun _ -> incr timed_out) q;
  Queue.clear q;
  { s_served = !served; s_shed = !shed; s_timed_out = !timed_out;
    s_retried = !retried; s_killed = !killed; s_trips = !trips;
    s_lat = Array.sub lat 0 !nlat }

(* ---------- percentiles + histogram ---------- *)

let nearest_rank sorted pct_num pct_den =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = ((n * pct_num) + (pct_den - 1)) / pct_den in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let log2_floor v =
  let v = max 1 v in
  let k = ref 0 in
  let x = ref v in
  while !x > 1 do
    x := !x lsr 1;
    incr k
  done;
  !k

let histogram lat =
  let buckets = Array.make 63 0 in
  Array.iter (fun l -> let k = log2_floor l in buckets.(k) <- buckets.(k) + 1) lat;
  let out = ref [] in
  for k = 62 downto 0 do
    if buckets.(k) > 0 then out := (1 lsl k, buckets.(k)) :: !out
  done;
  !out

(* ---------- the campaign ---------- *)

let exec_cell cfg (prot, seed) =
  let svc = calibrate cfg prot in
  let probes = run_probes cfg prot seed in
  let s = simulate cfg ~svc ~seed in
  let sorted = Array.copy s.s_lat in
  Array.sort (fun (a : int) b -> compare a b) sorted;
  let nl = Array.length sorted in
  { c_protection = prot;
    c_seed = seed;
    c_svc = svc;
    c_probes = probes;
    c_arrivals = cfg.requests;
    c_served = s.s_served;
    c_shed = s.s_shed;
    c_timed_out = s.s_timed_out;
    c_retried = s.s_retried;
    c_killed = s.s_killed;
    c_trips = s.s_trips;
    c_p50 = nearest_rank sorted 50 100;
    c_p99 = nearest_rank sorted 99 100;
    c_p999 = nearest_rank sorted 999 1000;
    c_max = (if nl = 0 then 0 else sorted.(nl - 1));
    c_hist = histogram s.s_lat }

let run ?(jobs = 1) cfg =
  validate cfg;
  let cells =
    List.concat_map
      (fun prot -> List.map (fun seed -> (prot, seed)) cfg.seeds)
      cfg.protections
  in
  let pool = Pool.create ~jobs in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool (exec_cell cfg) cells)
  in
  let rep_cells =
    List.map (function Ok c -> c | Error exn -> raise exn) results
  in
  { rep_config = cfg; rep_cells }

(* ---------- invariants ---------- *)

let accounted c = c.c_served + c.c_shed + c.c_timed_out = c.c_arrivals

let degraded c = c.c_shed + c.c_retried + c.c_timed_out > 0

let invariants rep =
  let cs = rep.rep_cells in
  let probes_of prot =
    List.concat_map
      (fun c -> if c.c_protection = prot then c.c_probes else [])
      cs
  in
  [ ( "cpi never hijacked (incl. mid-degradation)",
      List.for_all (fun p -> p.p_class <> "hijacked") (probes_of P.Cpi) );
    ( "spectrum backends never hijacked (cfi-type, cpi-crypt)",
      List.for_all
        (fun p -> p.p_class <> "hijacked")
        (probes_of P.Cfi_type @ probes_of P.Cpi_crypt) );
    ( "every admitted request terminally accounted",
      List.for_all accounted cs );
    ( "vanilla hijack witnessed",
      List.exists (fun p -> p.p_class = "hijacked") (probes_of P.Vanilla) );
    ( "degraded cells still serve",
      (not rep.rep_config.faulted)
      || (List.for_all (fun c -> c.c_served > 0) cs
          && List.exists degraded cs) );
  ]

let invariants_ok rep = List.for_all snd (invariants rep)

(* ---------- reporting ---------- *)

let to_json rep =
  let c = rep.rep_config in
  let probe_json p =
    J.obj
      [ J.str "plan" p.p_plan;
        J.str "class" p.p_class;
        J.str "outcome" p.p_outcome;
        J.int "cycles" p.p_cycles;
        J.int "checksum" p.p_checksum ]
  in
  let cell_json cl =
    J.obj
      [ J.str "protection" (P.protection_name cl.c_protection);
        J.int "seed" cl.c_seed;
        ("\"svc_cycles\":"
         ^ J.arr (Array.to_list (Array.map string_of_int cl.c_svc)));
        ("\"probes\":" ^ J.arr (List.map probe_json cl.c_probes));
        J.int "arrivals" cl.c_arrivals;
        J.int "served" cl.c_served;
        J.int "shed" cl.c_shed;
        J.int "timed_out" cl.c_timed_out;
        J.int "retried" cl.c_retried;
        J.int "killed_workers" cl.c_killed;
        J.int "breaker_trips" cl.c_trips;
        J.int "p50_cycles" cl.c_p50;
        J.int "p99_cycles" cl.c_p99;
        J.int "p999_cycles" cl.c_p999;
        J.int "max_cycles" cl.c_max;
        ("\"histogram\":"
         ^ J.arr
             (List.map
                (fun (lo, n) -> Printf.sprintf "[%d,%d]" lo n)
                cl.c_hist)) ]
  in
  let inv_json =
    List.map2
      (fun key (_, ok) -> J.bool key ok)
      [ "cpi_never_hijacked"; "spectrum_never_hijacked"; "all_accounted";
        "vanilla_hijack_witnessed"; "degraded_cells_still_serve" ]
      (invariants rep)
  in
  String.concat ""
    [ Printf.sprintf "{\n\"schema\":\"%s\",\n" schema_id;
      Printf.sprintf "\"workers\":%d,\n" c.workers;
      Printf.sprintf "\"shards\":%d,\n" c.shards;
      Printf.sprintf "\"requests\":%d,\n" c.requests;
      Printf.sprintf "\"faulted\":%b,\n" c.faulted;
      "\"cells\":";
      J.arr (List.map cell_json rep.rep_cells);
      ",\n\"invariants\":";
      J.obj inv_json;
      ",\n";
      Printf.sprintf "\"invariants_ok\":%b\n}\n" (invariants_ok rep) ]

let to_records ?commit rep =
  let c = rep.rep_config in
  List.map
    (fun cl ->
      let config =
        Printf.sprintf "serve-%s-w%d-sh%d-r%d%s"
          (P.protection_name cl.c_protection)
          c.workers c.shards c.requests
          (if c.faulted then "" else "-nofault")
      in
      Runstore.make ~schema:schema_id ~kind:"serve" ?commit ~config
        ~seed:cl.c_seed ~wall_us:0
        [ ("arrivals", Runstore.Int cl.c_arrivals);
          ("served", Runstore.Int cl.c_served);
          ("shed", Runstore.Int cl.c_shed);
          ("timed_out", Runstore.Int cl.c_timed_out);
          ("retried", Runstore.Int cl.c_retried);
          ("killed_workers", Runstore.Int cl.c_killed);
          ("breaker_trips", Runstore.Int cl.c_trips);
          ("p50_cycles", Runstore.Int cl.c_p50);
          ("p99_cycles", Runstore.Int cl.c_p99);
          ("p999_cycles", Runstore.Int cl.c_p999);
          ("invariants_ok", Runstore.Int (if invariants_ok rep then 1 else 0))
        ])
    rep.rep_cells

let to_human rep =
  let b = Buffer.create 2048 in
  let c = rep.rep_config in
  Buffer.add_string b
    (Printf.sprintf
       "serve campaign: %d worker(s), %d shard(s), %d requests/cell, faults %s\n"
       c.workers c.shards c.requests (if c.faulted then "on" else "off"));
  Buffer.add_string b
    (Printf.sprintf "  %-10s %4s %9s %7s %9s %7s %6s %6s %8s %8s %8s\n"
       "protection" "seed" "served" "shed" "timed-out" "retried" "killed"
       "trips" "p50" "p99" "p999");
  List.iter
    (fun cl ->
      Buffer.add_string b
        (Printf.sprintf "  %-10s %4d %9d %7d %9d %7d %6d %6d %8d %8d %8d\n"
           (P.protection_name cl.c_protection)
           cl.c_seed cl.c_served cl.c_shed cl.c_timed_out cl.c_retried
           cl.c_killed cl.c_trips cl.c_p50 cl.c_p99 cl.c_p999))
    rep.rep_cells;
  List.iter
    (fun cl ->
      List.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf "  probe: %-10s seed %d %-8s -> %-9s (%s)\n"
               (P.protection_name cl.c_protection)
               cl.c_seed p.p_plan p.p_class p.p_outcome))
        cl.c_probes)
    rep.rep_cells;
  List.iter
    (fun (name, ok) ->
      Buffer.add_string b
        (Printf.sprintf "  invariant: %-46s %s\n" name
           (if ok then "OK" else "VIOLATED")))
    (invariants rep);
  Buffer.contents b
