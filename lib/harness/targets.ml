(* Canonical cell enumerations for the bench targets.

   Kept in the harness library (rather than in bench/main.ml) so the test
   tier can run the exact same computation — e.g. the determinism
   regression test replays the table1 cells at --jobs 1 and --jobs 4 and
   compares journals. Order matters: cells are journalled in this order,
   whatever the pool's scheduling does. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module M = Levee_machine

(* Workload-major, protection-minor: the order the sequential harness
   computed cells in (each table row computes all its columns). *)
let cells workloads protections =
  List.concat_map
    (fun w -> List.map (fun p -> Engine.cell w p) protections)
    workloads

(* Spectrum members appended after the paper's own columns so the
   established rows keep their relative order within each workload. *)
let spec_protections =
  [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi; P.Cfi_type; P.Cpi_crypt ]

let table1 () = cells W.Spec.all spec_protections
let fig3 = table1

let table3 () =
  let ws =
    List.map W.Spec.find [ "401.bzip2"; "447.dealII"; "458.sjeng"; "464.h264ref" ]
  in
  cells ws (spec_protections @ [ P.Softbound ])

let fig4 () = cells W.Phoronix.all spec_protections
let table4 () = cells W.Webstack.all spec_protections

let fig5 () =
  table1 ()
  @ cells W.Spec.all [ P.Softbound; P.Hardened; P.Cookies; P.Cfi ]

let memtable_subset () =
  List.filter
    (fun (w : W.Workload.t) ->
      List.mem w.W.Workload.name
        [ "400.perlbench"; "403.gcc"; "447.dealII"; "450.soplex";
          "453.povray"; "471.omnetpp"; "483.xalancbmk"; "429.mcf" ])
    W.Spec.all

let memtable () =
  let subset = memtable_subset () in
  let impls =
    [ M.Safestore.Simple_array; M.Safestore.Hashtable; M.Safestore.Two_level ]
  in
  cells subset [ P.Vanilla ]
  @ List.concat_map
      (fun prot ->
        List.concat_map
          (fun impl ->
            List.map (fun w -> Engine.cell ~store_impl:impl w prot) subset)
          impls)
      [ P.Cps; P.Cpi ]

let ablation () =
  let subset = [ W.Spec.find "400.perlbench"; W.Spec.find "471.omnetpp" ] in
  cells subset [ P.Vanilla ]
  @ List.concat_map
      (fun impl ->
        List.map (fun w -> Engine.cell ~store_impl:impl w P.Cpi) subset)
      [ M.Safestore.Simple_array; M.Safestore.Two_level; M.Safestore.Hashtable;
        M.Safestore.Mpx ]
  @ cells subset [ P.Cpi_debug ]

let distro () =
  let packages =
    W.Spec.all @ W.Phoronix.all @ W.Webstack.all @ W.Base_system.all
  in
  cells packages [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi ]

let by_name =
  [ ("table1", table1); ("fig3", fig3); ("table3", table3); ("fig4", fig4);
    ("table4", table4); ("fig5", fig5); ("memtable", memtable);
    ("ablation", ablation); ("distro", distro) ]
