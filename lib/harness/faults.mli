(** Deterministic fault-injection campaigns over the defense matrix.

    A campaign sweeps a set of {!Levee_attacks.Faultplan} corruption
    plans over subject programs × (protection, safe-store organisation)
    configurations, classifies every faulted run against its un-faulted
    baseline, and checks the paper's guarantee empirically:

    - CPI ⇒ no run of an attacker-model plan (regular-region reads and
      writes only, no isolation bypass) ends [Hijacked];
    - vanilla is hijackable by the very same plans (the campaign is a
      real measurement, not a vacuous pass);
    - a plan that only tampers with the safe region through the plain
      access path ends in [Isolation_violation] in every configuration.

    The campaign also sweeps the graded protection spectrum (coarse CFI,
    per-signature cfi-type, keyed in-place cpi-crypt) and checks the
    ordering empirically: coarse CFI is hijackable by cross-signature
    redirects that cfi-type refuses, a same-signature swap pierces
    cfi-type but not the pointer-centric backends, and cpi-crypt shrugs
    off metadata-drop plans entirely (it keeps no safe store to drop).

    Everything — plan generation, the scheduler, the cost model, the
    report — is deterministic, so the [levee-faults/3] JSON report is
    byte-identical across runs and across [jobs] settings (it carries
    no wall-clock or parallelism fields). *)

module P = Levee_core.Pipeline
module M = Levee_machine
module A = Levee_attacks

(** A program under test: self-contained MiniC source whose benign run
    exits 0, with per-subject targeted plans (resolved against its
    layout) on top of the campaign's shared random plans. *)
type subject = {
  sname : string;
  source : string;
  input : int array;
  fuel : int;
  splans : A.Faultplan.t list;
  sseeds : int list;
      (** scheduler seeds swept for this subject; single-threaded
          subjects use [[0]] (the seed is inert for them) *)
}

type campaign = {
  cname : string;
  seed : int;
  subjects : subject list;
  configs : (P.protection * M.Safestore.impl) list;
}

(** The built-in smoke campaign: two code-pointer-dispatch subjects,
    a two-worker concurrent subject with cross-thread plans (another
    thread's return slot, safe stack and regular stack, swept under two
    scheduler seeds), and a function-pointer zoo with same-signature and
    cross-signature hijack plans separating the graded CFI family;
    targeted ret/fptr/global/desync/tamper plans plus seeded random
    plans, swept over vanilla, safe stack, CPS and CPI × all three
    safe-store organisations, plus the protection spectrum (coarse CFI,
    cfi-type, cpi-crypt). *)
val smoke : ?seed:int -> unit -> campaign

(** One faulted execution, classified. [r_class] is one of
    ["hijacked"], ["trapped"], ["crash"], ["fuel-exhausted"],
    ["masked"] (exit, observably identical to the un-faulted baseline)
    or ["benign"] (exit, but output/checksum/exit code diverged). *)
type run = {
  r_subject : string;
  r_plan : string;
  r_protection : P.protection;
  r_store : M.Safestore.impl;
  r_sched_seed : int;
  r_class : string;
  r_outcome : string;
  r_instrs : int;
  r_cycles : int;
  r_checksum : int;
  r_model : bool;   (** plan stays within the software attacker model *)
  r_tamper : bool;  (** plan is a pure safe-region tamper *)
  r_meta : bool;    (** plan is made only of metadata attacks
                        ([Desync]/[Drop_meta]) *)
}

type report

val runs : report -> run list

(** Execute the campaign on a [jobs]-wide pool. Results are integrated
    in submission order, so any [jobs] yields the same report. *)
val run : ?jobs:int -> campaign -> report

(** The nine invariants, in order: CPI-never-hijacked (attacker-model
    plans), vanilla-hijack-witnessed, safe-tamper-traps-as-isolation,
    vanilla-hijack-witnessed-under-every-sched-seed, then the
    protection-spectrum class — cpi-crypt masks pure metadata-drop plans
    (no safe region to drop), CPI's metadata dependence is witnessed,
    coarse CFI admits a hijack cfi-type refuses, the same-signature swap
    pierces cfi-type but not cpi/cpi-crypt (Burow et al. ordering), and
    cpi-crypt is never hijacked under any plan. *)
val invariants : report -> (string * bool) list

val invariants_ok : report -> bool

(** The [levee-faults/3] JSON document (schema in EXPERIMENTS.md). *)
val to_json : report -> string

(** Human-readable summary table + invariant verdicts. *)
val to_human : report -> string

(** One aggregate run-store record (schema [levee-faults/3], kind
    ["faults"], keyed by the campaign seed, [wall_us = 0]): per-class
    counts, per-backend hijack counts over the protection spectrum
    (vanilla/cfi/cfi-type/cpi/cpi-crypt), total simulated cycles, and
    the invariant verdict. The bytes are deterministic across runs and
    [jobs] widths. *)
val to_record : ?commit:string -> report -> Levee_support.Runstore.record
