(** The resilient-server campaign behind `levee serve`.

    Two coupled layers reproduce the "millions of users" version of the
    paper's Table 4 web-stack story:

    {b Machine layer.} The {!Levee_workloads.Webstack.server} kernel — N
    worker threads over a sharded, per-shard-mutex KV store, dispatching
    every request through a function-pointer handler table — runs on the
    deterministic machine under each protection. Per-class service costs
    are calibrated from single-threaded runs (marginal cycles per
    request), and per-(protection, seed) {e probes} replay the server
    under a hijack plan (arbitrary write of the handler table) and a
    degradation plan (worker kill + stall + the same hijack write) to
    check that CPI is never hijacked even mid-degradation.

    {b Simulation layer.} A deterministic discrete-event simulation
    drives an open-loop arrival process of [requests] requests per cell
    through the calibrated server model: bounded queue with admission
    shedding, per-request deadlines, bounded retries with seeded
    exponential backoff, a circuit breaker per shard, injected worker
    kills and a hot-shard stall window. Every number it produces is in
    simulated cycles — no wall clock — so output is byte-identical
    across [--jobs] and across runs. *)

module P = Levee_core.Pipeline

type config = {
  workers : int;   (** worker threads, 1..{!Levee_workloads.Webstack.max_workers} *)
  shards : int;    (** KV shards, 1..{!Levee_workloads.Webstack.max_shards} *)
  requests : int;  (** simulated arrivals per cell (open-loop) *)
  protections : P.protection list;
  seeds : int list;       (** cell seeds; also the probes' scheduler seeds *)
  faulted : bool;  (** inject worker kills + a hot-shard stall window *)
}

(** The campaign the ROADMAP asks for: ~10^6 requests per cell across
    {vanilla, safestack, cpi} x seeds [0; 1], faults on. *)
val default : config

(** A small matrix for tests and the [@serve-smoke] alias: same shape,
    12k requests per cell. *)
val smoke : config

(** One machine-layer probe run (plan x protection x seed). *)
type probe = {
  p_plan : string;
  p_class : string;    (** hijacked/trapped/crash/masked/benign/fuel-exhausted *)
  p_outcome : string;
  p_cycles : int;
  p_checksum : int;
}

(** One (protection, seed) cell: calibration, probes, and the simulated
    campaign's terminal accounting + latency tail. *)
type cell = {
  c_protection : P.protection;
  c_seed : int;
  c_svc : int array;       (** calibrated cycles/request per class (3) *)
  c_probes : probe list;
  c_arrivals : int;
  c_served : int;
  c_shed : int;
  c_timed_out : int;
  c_retried : int;         (** retry attempts scheduled (non-terminal) *)
  c_killed : int;          (** workers killed by the fault plan *)
  c_trips : int;           (** circuit-breaker openings *)
  c_p50 : int;
  c_p99 : int;
  c_p999 : int;
  c_max : int;
  c_hist : (int * int) list;  (** (power-of-two bucket floor, count) *)
}

type report = { rep_config : config; rep_cells : cell list }

(** Run the campaign. Cells are executed on a worker pool but integrated
    in submission order, so the report is independent of [jobs]. *)
val run : ?jobs:int -> config -> report

(** The campaign invariants, in order: CPI never hijacked (including
    mid-degradation), every admitted request terminally accounted
    (served + shed + timed out = arrivals, per cell), vanilla hijack
    witnessed, and — when faults are on — every cell kept serving while
    at least one cell actually degraded (shed/retried/timed out). *)
val invariants : report -> (string * bool) list

val invariants_ok : report -> bool

(** Deterministic [levee-serve/1] JSON document (no wall-clock). *)
val to_json : report -> string

(** One run-store record per cell (kind ["serve"]), fully deterministic:
    counts at 0% tolerance, latency percentiles gated at 5%. *)
val to_records : ?commit:string -> report -> Levee_support.Runstore.record list

val to_human : report -> string
