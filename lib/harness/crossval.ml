(* Static-vs-dynamic cross-validation (see crossval.mli).

   Parallel structure mirrors Faults: each (subject, protection) pair is
   one pool task that builds the image once and sweeps every scheduler
   seed; the submitting domain integrates results in submission order,
   so the report is independent of [jobs]. The static side runs once per
   subject on the submitting domain — it is cheap and seed-blind. *)

module P = Levee_core.Pipeline
module M = Levee_machine
module An = Levee_analysis
module Pool = Levee_support.Pool
module J = Levee_support.Jsonenc
module Runstore = Levee_support.Runstore

let schema_id = "levee-crossval/1"

type subject = {
  xname : string;
  source : string;
  fuel : int;
  x_racy : bool;
}

(* ---------- the corpus ---------- *)

(* These sources are mirrored verbatim in examples/minic/ (racy_counter.c,
   dcl.c, guarded_web.c, conc.c) so `levee analyze --races` on the
   examples and the crossval verdicts stay the same programs. *)

let racy_counter_src = {|
// Two spawned workers bump a shared counter with no lock: the canonical
// unguarded data race. Both detectors must flag `counter`; the run still
// exits 0 under every seed (the lost updates only skew the final count,
// not control flow).
int counter;

int worker(int n) {
  int i;
  i = 0;
  while (i < n) {
    counter = counter + 1;
    i = i + 1;
  }
  return n;
}

int main() {
  int t1;
  int t2;
  int r;
  t1 = thread_spawn(worker, 200);
  t2 = thread_spawn(worker, 200);
  r = thread_join(t1) + thread_join(t2);
  print_int(r);
  return 0;
}
|}

let dcl_src = {|
// Double-checked locking: the classic broken idiom. The unlocked fast
// path reads `ready` (and then calls through `handler`) with an empty
// lockset while the initialising thread writes both under the mutex, so
// the static analyzer must report both globals -- `handler` as
// safe-region storage, since it is a function pointer and lives in the
// safe region under CPI. On this sequentially-consistent machine the
// idiom still works (every run exits 0), which is exactly why the race
// needs a detector rather than a crash to be seen.
int lk;
int ready;
int (*handler)(int);

int dbl(int x) { return x * 2; }

int user(int wid) {
  if (ready == 0) {
    mutex_lock(&lk);
    if (ready == 0) {
      handler = dbl;
      ready = 1;
    }
    mutex_unlock(&lk);
  }
  return handler(wid);
}

int main() {
  int t1;
  int t2;
  int r;
  t1 = thread_spawn(user, 3);
  t2 = thread_spawn(user, 4);
  r = thread_join(t1) + thread_join(t2);
  print_int(r);
  return 0;
}
|}

let guarded_web_src = {|
// A properly guarded web-stack fragment: two workers drain a shared
// request queue and dispatch through a shared routing table, with every
// shared access under one mutex; main fills the queue before spawning
// and reads the stats after joining. Both detectors must stay silent:
// the may-live window keeps main's unlocked setup and teardown out of
// the race set, and the workers' common lock covers the rest.
int queue[16];
int qhead;
int qtail;
int served;
int total;
int lk;
int (*route[2])(int);

int route_a(int x) { return x + 1; }
int route_b(int x) { return x * 2; }

int worker(int wid) {
  int done;
  int req;
  int r;
  done = 0;
  while (done == 0) {
    req = 0 - 1;
    mutex_lock(&lk);
    if (qhead < qtail) {
      req = queue[qhead];
      qhead = qhead + 1;
    }
    mutex_unlock(&lk);
    if (req < 0) {
      done = 1;
    } else {
      mutex_lock(&lk);
      r = route[req % 2](req);
      served = served + 1;
      total = total + r;
      mutex_unlock(&lk);
    }
  }
  return wid;
}

int main() {
  int i;
  int t1;
  int t2;
  route[0] = route_a;
  route[1] = route_b;
  i = 0;
  while (i < 16) {
    queue[i] = i * 3;
    i = i + 1;
  }
  qtail = 16;
  t1 = thread_spawn(worker, 1);
  t2 = thread_spawn(worker, 2);
  i = thread_join(t1) + thread_join(t2);
  print_int(served);
  print_int(total);
  return 0;
}
|}

(* examples/minic/conc.c: a single-spawn handler registry. Statically
   race-free under the spawn-class rule (one non-multi class; main's
   unlocked install happens after the join, at may-live zero), and the
   dynamic detector agrees under every seed. *)
let registry_src = {|
int lk;
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int (*handlers[4])(int);

int install(int i) {
  handlers[i] = inc;
  return i;
}

int worker(int wid) {
  int j;
  handlers[wid] = dbl;
  mutex_lock(&lk);
  handlers[wid + 1] = inc;
  mutex_unlock(&lk);
  j = install(wid);
  return handlers[j](j);
}

int main() {
  int t;
  int r;
  t = thread_spawn(worker, 1);
  r = thread_join(t);
  handlers[0] = inc;
  print_int(r);
  return 0;
}
|}

let corpus =
  [ { xname = "racy_counter"; source = racy_counter_src; fuel = 200_000;
      x_racy = true };
    { xname = "dcl"; source = dcl_src; fuel = 50_000; x_racy = true };
    { xname = "guarded_web"; source = guarded_web_src; fuel = 200_000;
      x_racy = false };
    { xname = "registry"; source = registry_src; fuel = 50_000;
      x_racy = false } ]

(* ---------- dynamic cells ---------- *)

type cell = {
  c_subject : string;
  c_prot : P.protection;
  c_seed : int;
  c_outcome : string;
  c_races : string list;
  c_uncovered : string list;
}

type verdict = {
  v_subject : string;
  v_racy : bool;
  v_static : string list;
  v_races : An.Racecheck.race list;
  v_cells : cell list;
}

type report = {
  rep_seeds : int list;
  rep_verdicts : verdict list;
}

let verdicts rep = rep.rep_verdicts

let prefixed pre s =
  String.length s >= String.length pre && String.sub s 0 (String.length pre) = pre

(* A static key covers a dynamic key exactly for globals; heap and stack
   reports are covered by any allocation-site key of the right family
   (one faulted address cannot single out a site); "<unknown>" covers
   everything (the static side already gave up on modelling it). *)
let covers statics dyn =
  List.exists
    (fun s ->
      s = "<unknown>" || s = dyn
      || (dyn = "heap" && prefixed "malloc:" s)
      || (dyn = "stack" && prefixed "alloca:" s)
      || ((dyn = "safe" || dyn = "unknown") && s = "<unknown>"))
    statics

(* One pool task: every seed for one (subject+its static keys, protection). *)
let exec_cell ((s, statics), prot) =
  let prog = Levee_minic.Lower.compile ~name:s.xname s.source in
  let b = P.build prot prog in
  let image = M.Loader.load b.P.prog b.P.config in
  fun seeds ->
    List.map
      (fun sched_seed ->
        let r = M.Interp.run ~fuel:s.fuel ~sched_seed image in
        (match r.M.Interp.outcome with
         | M.Trap.Exit 0 -> ()
         | o ->
           failwith
             (Printf.sprintf "crossval: %s under %s (sched-seed %d) is %s"
                s.xname (P.protection_name prot) sched_seed
                (M.Trap.outcome_to_string o)));
        let keys = M.Raceproj.keys image r.M.Interp.race_details in
        { c_subject = s.xname;
          c_prot = prot;
          c_seed = sched_seed;
          c_outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
          c_races = keys;
          c_uncovered = List.filter (fun k -> not (covers statics k)) keys })
      seeds

let default_seeds = [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let static_verdict s =
  let checked, prog = Levee_minic.Lower.compile_checked ~name:s.xname s.source in
  let annotated = checked.Levee_minic.Typecheck.sensitive_structs in
  let races = An.Racecheck.races ~annotated prog in
  let keys =
    List.sort_uniq compare (List.map (fun r -> r.An.Racecheck.rc_obj) races)
  in
  (keys, races)

let run ?(jobs = 1) ?(protections = [ P.Vanilla; P.Cpi ]) ?(seeds = default_seeds)
    subjects =
  let statics = List.map (fun s -> (s, static_verdict s)) subjects in
  let cells =
    List.concat_map
      (fun (s, (keys, _)) -> List.map (fun p -> ((s, keys), p)) protections)
      statics
  in
  let pool = Pool.create ~jobs in
  let results =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool (fun c -> exec_cell c seeds) cells)
  in
  let flat =
    List.concat_map (function Ok rs -> rs | Error exn -> raise exn) results
  in
  let verdicts =
    List.map
      (fun (s, (keys, races)) ->
        { v_subject = s.xname;
          v_racy = s.x_racy;
          v_static = keys;
          v_races = races;
          v_cells = List.filter (fun c -> c.c_subject = s.xname) flat })
      statics
  in
  { rep_seeds = seeds; rep_verdicts = verdicts }

(* ---------- the faults link ---------- *)

type faults_cross = {
  fc_subject : string;
  fc_plain : int;
  fc_certified : int;
  fc_unproven : int;
  fc_replay_ok : bool;
  fc_cpi_hijacked : bool;
}

let faults_cross ?jobs ?seed () =
  let campaign = Faults.smoke ?seed () in
  let rep = Faults.run ?jobs campaign in
  let runs = Faults.runs rep in
  List.map
    (fun (s : Faults.subject) ->
      let prog = Levee_minic.Lower.compile ~name:s.Faults.sname s.Faults.source in
      let b = P.build P.Cpi prog in
      let sep = An.Racecheck.separation b.P.prog in
      { fc_subject = s.Faults.sname;
        fc_plain = sep.An.Racecheck.sp_plain;
        fc_certified = List.length sep.An.Racecheck.sp_certs;
        fc_unproven = List.length sep.An.Racecheck.sp_unproven;
        fc_replay_ok = Result.is_ok sep.An.Racecheck.sp_replay;
        fc_cpi_hijacked =
          List.exists
            (fun (r : Faults.run) ->
              r.Faults.r_subject = s.Faults.sname
              && r.Faults.r_protection = P.Cpi
              && r.Faults.r_model
              && r.Faults.r_class = "hijacked")
            runs })
    campaign.Faults.subjects

(* Full certification must imply no attacker-model hijack under CPI: the
   static proof and the dynamic campaign measure the same isolation. *)
let faults_consistent fcs =
  List.for_all
    (fun fc ->
      (not (fc.fc_unproven = 0 && fc.fc_replay_ok)) || not fc.fc_cpi_hijacked)
    fcs

(* ---------- invariants ---------- *)

let all_cells rep = List.concat_map (fun v -> v.v_cells) rep.rep_verdicts

let exit0 = M.Trap.outcome_to_string (M.Trap.Exit 0)

let invariants rep =
  let cells = all_cells rep in
  [ ( "every dynamic race is statically covered",
      List.for_all (fun c -> c.c_uncovered = []) cells );
    ( "static verdict matches the corpus expectation",
      List.for_all
        (fun v -> v.v_racy = (v.v_static <> []))
        rep.rep_verdicts );
    ( "every racy subject is dynamically witnessed",
      List.for_all
        (fun v ->
          (not v.v_racy) || List.exists (fun c -> c.c_races <> []) v.v_cells)
        rep.rep_verdicts );
    ( "race-free subjects stay dynamically silent",
      List.for_all
        (fun v -> v.v_racy || List.for_all (fun c -> c.c_races = []) v.v_cells)
        rep.rep_verdicts );
    ( "all runs exit 0",
      List.for_all (fun c -> c.c_outcome = exit0) cells ) ]

let invariants_ok rep = List.for_all snd (invariants rep)

(* ---------- reports ---------- *)

let cell_json c =
  J.obj
    [ J.str "protection" (P.protection_name c.c_prot);
      J.int "seed" c.c_seed;
      J.str "outcome" c.c_outcome;
      "\"races\":" ^ J.arr (List.map (fun k -> "\"" ^ J.escape k ^ "\"") c.c_races);
      "\"uncovered\":"
      ^ J.arr (List.map (fun k -> "\"" ^ J.escape k ^ "\"") c.c_uncovered) ]

let verdict_json v =
  J.obj
    [ J.str "subject" v.v_subject;
      J.bool "racy_expected" v.v_racy;
      "\"static\":"
      ^ J.arr (List.map (fun k -> "\"" ^ J.escape k ^ "\"") v.v_static);
      "\"cells\":" ^ J.arr (List.map cell_json v.v_cells) ]

let faults_json fc =
  J.obj
    [ J.str "subject" fc.fc_subject;
      J.int "plain_stores" fc.fc_plain;
      J.int "certified" fc.fc_certified;
      J.int "unproven" fc.fc_unproven;
      J.bool "replay_ok" fc.fc_replay_ok;
      J.bool "cpi_hijacked" fc.fc_cpi_hijacked ]

let to_json ?faults rep =
  let inv = List.map (fun (n, ok) -> J.bool n ok) (invariants rep) in
  let inv =
    match faults with
    | None -> inv
    | Some fcs ->
      inv @ [ J.bool "certified implies no cpi hijack" (faults_consistent fcs) ]
  in
  String.concat ""
    ([ "{\n\"schema\":\"" ^ schema_id ^ "\",\n";
       "\"seeds\":" ^ J.arr (List.map string_of_int rep.rep_seeds);
       ",\n\"verdicts\":";
       J.arr (List.map verdict_json rep.rep_verdicts) ]
    @ (match faults with
      | None -> []
      | Some fcs -> [ ",\n\"faults_cross\":"; J.arr (List.map faults_json fcs) ])
    @ [ ",\n\"invariants\":"; J.obj inv; "\n}\n" ])

let to_human ?faults rep =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "crossval: %d subject(s), seeds %s\n"
       (List.length rep.rep_verdicts)
       (String.concat "," (List.map string_of_int rep.rep_seeds)));
  List.iter
    (fun v ->
      let witnessed =
        List.length (List.filter (fun c -> c.c_races <> []) v.v_cells)
      in
      Buffer.add_string b
        (Printf.sprintf "  %-14s static: %-28s dynamic: %d/%d cells racy\n"
           v.v_subject
           (if v.v_static = [] then "race-free"
            else String.concat "," v.v_static)
           witnessed (List.length v.v_cells)))
    rep.rep_verdicts;
  (match faults with
   | None -> ()
   | Some fcs ->
     List.iter
       (fun fc ->
         Buffer.add_string b
           (Printf.sprintf
              "  faults %-10s %d plain store(s): %d certified, %d unproven, \
               replay %s, cpi hijack: %s\n"
              fc.fc_subject fc.fc_plain fc.fc_certified fc.fc_unproven
              (if fc.fc_replay_ok then "ok" else "FAILED")
              (if fc.fc_cpi_hijacked then "YES" else "no")))
       fcs);
  let inv = invariants rep in
  let inv =
    match faults with
    | None -> inv
    | Some fcs ->
      inv @ [ ("certified implies no cpi hijack", faults_consistent fcs) ]
  in
  List.iter
    (fun (name, ok) ->
      Buffer.add_string b
        (Printf.sprintf "  invariant: %-45s %s\n" name
           (if ok then "ok" else "VIOLATED")))
    inv;
  Buffer.contents b

let to_record ?commit rep =
  let cells = all_cells rep in
  let dyn_cells = List.filter (fun c -> c.c_races <> []) cells in
  Runstore.make ~schema:schema_id ~kind:"crossval" ?commit ~config:"corpus"
    ~seed:0 ~wall_us:0
    [ ("subjects", Runstore.Int (List.length rep.rep_verdicts));
      ("cells", Runstore.Int (List.length cells));
      ( "static_races",
        Runstore.Int
          (List.fold_left
             (fun acc v -> acc + List.length v.v_races)
             0 rep.rep_verdicts) );
      ("dynamic_race_cells", Runstore.Int (List.length dyn_cells));
      ( "uncovered",
        Runstore.Int
          (List.fold_left (fun acc c -> acc + List.length c.c_uncovered) 0 cells) );
      ("invariants_ok", Runstore.Int (if invariants_ok rep then 1 else 0)) ]
