(* Wall-clock performance benchmark for the simulator itself.

   The bench targets measure *simulated* cycles, which are deterministic
   and independent of host speed. This harness measures the opposite: how
   fast the host executes the simulation. It replays the same cells the
   CI smoke path runs (the table1 SPEC matrix plus the RIPE attack
   matrix) sequentially (--jobs 1, so the numbers are not confounded by
   domain scheduling) and writes BENCH_perf.json:

     { "schema": "levee-bench-perf/3",
       "jobs": 1, "fuel_cap": <int or 0 for full fuel>,
       "cells": <number of table1 cells>,
       "wall_us_total": <microseconds for cells + ripe>,
       "cells_wall_us": <microseconds for the table1 cells alone>,
       "ripe_wall_us": <microseconds for the RIPE matrix alone>,
       "cells_per_sec": <cells / (cells_wall_us * 1e-6)>,
       "sim_cycles": <total simulated cycles over the cells>,
       "sim_instrs": <total simulated instructions over the cells>,
       "checks_elided": <static checks removed by elision, all cells>,
       "mem_ops_demoted": <accesses demoted by the refinement, all cells>,
       "entries": [ {workload, protection, store, cycles, instrs,
                     checks_elided, mem_ops_demoted, wall_us}, ... ] }

   Simulated totals are included so a perf regression can be told apart
   from a workload change: across commits, identical sim_cycles/sim_instrs
   with differing wall_us_total is a pure host-speed (interpreter) delta.

     dune exec bench/perf.exe --              full-fuel measurement
     dune exec bench/perf.exe -- --fuel-cap 20000   tiny smoke (CI)

   Exits non-zero if any vanilla cell fails, like the main harness. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module R = Levee_attacks.Ripe
module Journal = Levee_support.Journal
module Runstore = Levee_support.Runstore
module Engine = Levee_harness.Engine
module Targets = Levee_harness.Targets

let schema_id = "levee-bench-perf/3"

let fuel_cap = ref None
let json_flag = ref true

let () =
  let rec parse = function
    | [] -> ()
    | "--fuel-cap" :: n :: rest ->
      fuel_cap := Some (int_of_string n);
      parse rest
    | "--no-json" :: rest -> json_flag := false; parse rest
    | "--json" :: rest -> json_flag := true; parse rest
    | arg :: _ ->
      Printf.eprintf "perf: unknown argument %s\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let escape = Levee_support.Jsonenc.escape

let () =
  let eng = Engine.create ?fuel_cap:!fuel_cap ~jobs:1 () in
  let journal = Journal.create ~jobs:1 ~target:"perf" () in
  Engine.set_journal eng (Some journal);
  let cells = Targets.table1 () in
  let t0 = Unix.gettimeofday () in
  Engine.prefetch eng cells;
  let t1 = Unix.gettimeofday () in
  (* The RIPE matrix: wall-clock only; its verdicts are covered by the
     main harness and the attack tests. *)
  let _summaries =
    R.run_matrix ~include_beyond_ripe:false
      ~protections:
        [ P.Vanilla; P.Hardened; P.Cookies; P.Safe_stack; P.Cfi; P.Cps;
          P.Cpi; P.Softbound; P.Cfi_type; P.Cpi_crypt ]
      ()
  in
  let t2 = Unix.gettimeofday () in
  let entries = Journal.entries journal in
  let ncells = List.length entries in
  let sim_cycles =
    List.fold_left (fun a (e : Journal.entry) -> a + e.Journal.cycles) 0 entries
  in
  let sim_instrs =
    List.fold_left (fun a (e : Journal.entry) -> a + e.Journal.instrs) 0 entries
  in
  let elided =
    List.fold_left
      (fun a (e : Journal.entry) -> a + e.Journal.checks_elided)
      0 entries
  in
  let demoted =
    List.fold_left
      (fun a (e : Journal.entry) -> a + e.Journal.mem_ops_demoted)
      0 entries
  in
  let cells_us = int_of_float ((t1 -. t0) *. 1e6) in
  let ripe_us = int_of_float ((t2 -. t1) *. 1e6) in
  let total_us = cells_us + ripe_us in
  let cells_per_sec =
    if cells_us = 0 then 0.0
    else float_of_int ncells /. (float_of_int cells_us *. 1e-6)
  in
  Printf.printf "perf: %d cells in %.1f ms (%.1f cells/s), ripe %.1f ms\n"
    ncells
    (float_of_int cells_us /. 1e3)
    cells_per_sec
    (float_of_int ripe_us /. 1e3);
  Printf.printf "perf: %d simulated cycles, %d simulated instrs\n" sim_cycles
    sim_instrs;
  if !json_flag then begin
    let b = Buffer.create 4096 in
    Buffer.add_string b
      (Printf.sprintf
         "{\n\"schema\":\"%s\",\n\"jobs\":1,\n\
          \"fuel_cap\":%d,\n\"cells\":%d,\n\"wall_us_total\":%d,\n\
          \"cells_wall_us\":%d,\n\"ripe_wall_us\":%d,\n\
          \"cells_per_sec\":%s,\n\"sim_cycles\":%d,\n\"sim_instrs\":%d,\n\
          \"checks_elided\":%d,\n\"mem_ops_demoted\":%d,\n\
          \"entries\":[\n"
         schema_id
         (match !fuel_cap with Some f -> f | None -> 0)
         ncells total_us cells_us ripe_us
         (Levee_support.Jsonenc.float_str cells_per_sec)
         sim_cycles sim_instrs elided demoted);
    List.iteri
      (fun i (e : Journal.entry) ->
        if i > 0 then Buffer.add_string b ",\n";
        Buffer.add_string b
          (Printf.sprintf
             "{\"workload\":\"%s\",\"protection\":\"%s\",\"store\":\"%s\",\
              \"cycles\":%d,\"instrs\":%d,\"checks_elided\":%d,\
              \"mem_ops_demoted\":%d,\"wall_us\":%d}"
             (escape e.Journal.workload)
             (escape e.Journal.protection)
             (escape e.Journal.store) e.Journal.cycles e.Journal.instrs
             e.Journal.checks_elided e.Journal.mem_ops_demoted
             e.Journal.wall_us))
      entries;
    Buffer.add_string b "\n]}\n";
    let oc = open_out "BENCH_perf.json" in
    output_string oc (Buffer.contents b);
    close_out oc;
    prerr_endline "perf: wrote BENCH_perf.json";
    (* The one-shot snapshot above is kept for compatibility; the
       trajectory record goes to the append-only run-store. *)
    Runstore.append
      (Runstore.make ~schema:schema_id ~kind:"perf" ~config:"perf"
         ~wall_us:total_us
         [ ("fuel_cap",
            Runstore.Int (match !fuel_cap with Some f -> f | None -> 0));
           ("cells", Runstore.Int ncells);
           ("cells_wall_us", Runstore.Int cells_us);
           ("ripe_wall_us", Runstore.Int ripe_us);
           ("cells_per_sec", Runstore.Float cells_per_sec);
           ("sim_cycles", Runstore.Int sim_cycles);
           ("sim_instrs", Runstore.Int sim_instrs);
           ("checks_elided", Runstore.Int elided);
           ("mem_ops_demoted", Runstore.Int demoted) ]);
    prerr_endline ("perf: appended to " ^ Runstore.default_path)
  end;
  (match Engine.vanilla_failures eng with
   | [] -> ()
   | fails ->
     List.iter
       (fun (name, outcome) ->
         Printf.eprintf "perf: vanilla failure: %s: %s\n" name
           (Levee_machine.Trap.outcome_to_string outcome))
       fails;
     Engine.shutdown eng;
     exit 1);
  Engine.shutdown eng
