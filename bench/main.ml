(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5). Running with no arguments produces everything;
   individual targets:

     dune exec bench/main.exe -- ripe      RIPE effectiveness (Section 5.1)
     dune exec bench/main.exe -- table1    SPEC overhead summary
     dune exec bench/main.exe -- fig3      per-benchmark SPEC overheads
     dune exec bench/main.exe -- table2    compilation statistics
     dune exec bench/main.exe -- table3    SoftBound comparison
     dune exec bench/main.exe -- fig4      Phoronix-like suite
     dune exec bench/main.exe -- table4    web stack throughput
     dune exec bench/main.exe -- fig5      design-space summary
     dune exec bench/main.exe -- memtable  memory overheads (Section 5.2)
     dune exec bench/main.exe -- ablation  design-choice ablations
     dune exec bench/main.exe -- bechamel  wall-clock microbenchmarks

   Options:
     --jobs N      fan independent (workload x protection x store) cells
                   out over N domains (default: domain count). The cost
                   model is deterministic, so any N produces the same
                   tables; --jobs 1 is the sequential baseline.
     --no-json     don't write BENCH_<target>.json run journals
                   (--json, the default, is also accepted)
     --fuel-cap N  clamp every workload's instruction budget (CI smoke)

   Cycle counts come from the machine's deterministic cost model, so every
   number below is exactly reproducible; the bechamel target additionally
   measures real wall-clock time of the simulations. Each target also
   serializes every execution to BENCH_<target>.json (schema in
   EXPERIMENTS.md) and prints a one-line summary to stderr. *)

module P = Levee_core.Pipeline
module Stats = Levee_core.Stats
module W = Levee_workloads
module M = Levee_machine
module R = Levee_attacks.Ripe
module A = Levee_attacks.Attack
module SupStats = Levee_support.Stats
module Pool = Levee_support.Pool
module Journal = Levee_support.Journal
module Runstore = Levee_support.Runstore
module Engine = Levee_harness.Engine
module Targets = Levee_harness.Targets

(* ---------- execution engine ---------- *)

let jobs_flag = ref 0                   (* 0 = Domain.recommended_domain_count *)
let json_flag = ref true
let fuel_cap = ref None

let eng =
  lazy
    (let jobs = if !jobs_flag <= 0 then Pool.default_jobs () else !jobs_flag in
     Engine.create ?fuel_cap:!fuel_cap ~jobs ())

let run_workload ?store_impl (w : W.Workload.t) prot =
  Engine.run_workload (Lazy.force eng) ?store_impl w prot

let overhead (w : W.Workload.t) prot = Engine.overhead (Lazy.force eng) w prot

let line () = print_endline (String.make 78 '-')

let header title =
  print_newline ();
  line ();
  Printf.printf "%s\n" title;
  line ()

(* ---------- Section 5.1: RIPE ---------- *)

(* The matrix is deterministic per protection, so protections fan out
   through the pool; concatenating in protection order reproduces the
   sequential run_matrix output exactly. *)
let ripe_protections =
  [ P.Vanilla; P.Hardened; P.Cookies; P.Safe_stack; P.Cfi; P.Cfi_type;
    P.Cps; P.Cpi; P.Cpi_crypt; P.Softbound ]

let ripe_summaries =
  lazy
    (let pool = Engine.pool (Lazy.force eng) in
     Pool.map pool
       (fun prot ->
         List.hd (R.run_matrix ~include_beyond_ripe:false ~protections:[ prot ] ()))
       ripe_protections
     |> List.map (function
          | Ok s -> s
          | Error e -> raise e))

(* One journal entry per protection: CI watches for a hijack slipping
   past CPS/CPI/SoftBound, which the paper says stop everything. *)
let ripe_journal_entry (s : R.summary) : Journal.entry =
  let must_stop_all =
    match s.R.protection with
    | P.Cps | P.Cpi | P.Cpi_crypt | P.Softbound -> true
    | _ -> false
  in
  { Journal.workload = "ripe-matrix";
    protection = P.protection_name s.R.protection;
    store = "array";
    outcome =
      Printf.sprintf "hijacked=%d trapped=%d crashed=%d of %d" s.R.hijacked
        s.R.trapped_count s.R.crashed s.R.total;
    status = (if must_stop_all && s.R.hijacked > 0 then 1 else 0);
    cycles = 0; instrs = 0; mem_ops = 0; instrumented_mem_ops = 0;
    store_accesses = 0; store_footprint = 0; heap_peak = 0; checksum = 0;
    checks_elided = 0; mem_ops_demoted = 0; threads = 0; ctx_switches = 0;
    races = 0; attempts = 1; wall_us = 0 }

let bench_ripe () =
  header "RIPE-style attack matrix (paper Section 5.1)";
  Printf.printf "%-20s %8s %9s %9s %9s   %s\n" "configuration" "attacks"
    "hijacked" "trapped" "crashed" "paper says";
  let paper_note = function
    | P.Vanilla -> "833-848 of 850 succeed (Ubuntu 6.06)"
    | P.Hardened -> "43-49 succeed (Ubuntu 13.10, all protections)"
    | P.Cookies -> "stops continuous stack smashes only"
    | P.Safe_stack -> "prevents all stack-based attacks"
    | P.Cfi -> "bypassable in a principled way [19,15,9]"
    | P.Cfi_type -> "per-signature sets narrow the bypass (Burow et al.)"
    | P.Cps -> "none succeed"
    | P.Cpi -> "none succeed"
    | P.Cpi_crypt -> "keyed pointers garble under tampering (LIPPEN/PAC)"
    | P.Softbound -> "full memory safety"
    | P.Cpi_debug -> ""
  in
  List.iter
    (fun (s : R.summary) ->
      Printf.printf "%-20s %8d %9d %9d %9d   %s\n"
        (P.protection_name s.R.protection) s.R.total s.R.hijacked
        s.R.trapped_count s.R.crashed (paper_note s.R.protection))
    (Lazy.force ripe_summaries);
  print_newline ();
  print_endline
    "Key claims reproduced: CPI and CPS stop 100% of the attacks; the safe";
  print_endline
    "stack alone stops all stack-based attacks; stock DEP+ASLR+cookies stop";
  print_endline "many but not all; coarse-grained CFI is bypassed."

(* ---------- Table 1 + Fig. 3: SPEC ---------- *)

let spec_rows = lazy (
  List.map
    (fun (w : W.Workload.t) ->
      (w, overhead w P.Safe_stack, overhead w P.Cps, overhead w P.Cpi))
    W.Spec.all)

let summarize sel rows =
  let l = List.map sel rows in
  (SupStats.mean l, SupStats.median l, SupStats.maximum l)

let bench_table1 () =
  header "Table 1: SPEC CPU2006 performance overhead summary";
  let rows = Lazy.force spec_rows in
  let c_rows = List.filter (fun (w, _, _, _) -> w.W.Workload.lang = W.Workload.C) rows in
  let print_group name rows (p_ss, p_cps, p_cpi) =
    let ss = summarize (fun (_, s, _, _) -> s) rows in
    let cps = summarize (fun (_, _, c, _) -> c) rows in
    let cpi = summarize (fun (_, _, _, c) -> c) rows in
    let p (a, m, x) = Printf.sprintf "%6.1f%% %6.1f%% %6.1f%%" a m x in
    Printf.printf "%-24s %s | %s | %s\n" name (p ss) (p cps) (p cpi);
    Printf.printf "%-24s paper: %s | %s | %s   (avg)\n" "" p_ss p_cps p_cpi
  in
  Printf.printf "%-24s %-22s | %-22s | %-22s\n" "" "SafeStack avg/med/max"
    "CPS avg/med/max" "CPI avg/med/max";
  print_group "All C/C++" rows ("0.0%", "1.9%", "8.4%");
  print_group "C only" c_rows ("-0.4%", "1.2%", "2.9%")

let bar v =
  let n = max 0 (min 40 (int_of_float (v /. 1.2))) in
  String.make n '#'

let bench_fig3 () =
  header "Fig. 3: per-benchmark overhead, three configurations (measured)";
  Printf.printf "%-16s %10s %10s %10s\n" "benchmark" "safestack" "cps" "cpi";
  List.iter
    (fun ((w : W.Workload.t), ss, cps, cpi) ->
      Printf.printf "%-16s %9.1f%% %9.1f%% %9.1f%%  |%s\n" w.W.Workload.name ss
        cps cpi (bar cpi))
    (Lazy.force spec_rows);
  print_newline ();
  print_endline
    "Shape checks: C++ benchmarks (omnetpp, xalancbmk, dealII) dominate CPI;";
  print_endline
    "perlbench/omnetpp are the CPS outliers; namd is negative under SafeStack."

(* ---------- Table 2: compilation statistics ---------- *)

(* paper values: benchmark, FNUStack, MOCPS, MOCPI (percent) *)
let table2_paper =
  [ ("400.perlbench", 15.0, 1.0, 13.8); ("401.bzip2", 27.2, 1.3, 1.9);
    ("403.gcc", 19.9, 0.3, 6.0); ("429.mcf", 50.0, 0.5, 0.7);
    ("433.milc", 50.9, 0.1, 0.7); ("444.namd", 75.8, 0.6, 1.1);
    ("445.gobmk", 10.3, 0.1, 0.4); ("447.dealII", 12.3, 6.6, 13.3);
    ("450.soplex", 9.5, 4.0, 2.5); ("453.povray", 26.8, 0.8, 4.7);
    ("456.hmmer", 13.6, 0.2, 2.0); ("458.sjeng", 50.0, 0.1, 0.1);
    ("462.libquantum", 28.5, 0.4, 2.3); ("464.h264ref", 20.5, 1.5, 2.8);
    ("470.lbm", 16.6, 0.6, 1.5); ("471.omnetpp", 6.9, 10.5, 36.6);
    ("473.astar", 9.0, 0.1, 3.2); ("482.sphinx3", 19.7, 0.1, 4.6);
    ("483.xalancbmk", 17.5, 17.5, 27.1) ]

let bench_table2 () =
  header "Table 2: compilation statistics (measured vs paper)";
  Printf.printf "%-16s | %-17s | %-17s | %-17s\n" "benchmark"
    "FNUStack ours/paper" "MOCPS ours/paper" "MOCPI ours/paper";
  let total_ops = ref 0 and instr_cpi = ref 0 in
  List.iter
    (fun (w : W.Workload.t) ->
      let prog = W.Workload.compile w in
      let ss = (P.build P.Safe_stack prog).P.stats in
      let cps = (P.build P.Cps prog).P.stats in
      let cpi = (P.build P.Cpi prog).P.stats in
      total_ops := !total_ops + cpi.Stats.mem_ops_total;
      instr_cpi := !instr_cpi + cpi.Stats.mem_ops_instrumented;
      let p_fnu, p_cps, p_cpi =
        match List.assoc_opt w.W.Workload.name
                (List.map (fun (n, a, b, c) -> (n, (a, b, c))) table2_paper)
        with
        | Some (a, b, c) -> (a, b, c)
        | None -> (0., 0., 0.)
      in
      Printf.printf "%-16s | %6.1f%% / %5.1f%% | %6.1f%% / %5.1f%% | %6.1f%% / %5.1f%%\n"
        w.W.Workload.name
        (100. *. Stats.fnustack ss) p_fnu
        (100. *. Stats.mo_instrumented cps) p_cps
        (100. *. Stats.mo_instrumented cpi) p_cpi)
    W.Spec.all;
  Printf.printf
    "\nOverall CPI-instrumented memory operations: %.1f%% (paper: 6.5%% of all\n\
     pointer operations need protection)\n"
    (100. *. float_of_int !instr_cpi /. float_of_int (max 1 !total_ops))

(* ---------- Table 3: SoftBound comparison ---------- *)

let bench_table3 () =
  header "Table 3: Levee vs SoftBound on the four benchmarks SoftBound handles";
  let paper =
    [ ("401.bzip2", (0.3, 1.2, 2.8, 90.2)); ("447.dealII", (0.8, -0.2, 3.7, 60.2));
      ("458.sjeng", (0.3, 1.8, 2.6, 79.0)); ("464.h264ref", (0.9, 5.5, 5.8, 249.4)) ]
  in
  Printf.printf "%-14s %22s %30s\n" "benchmark" "ours: ss/cps/cpi/sb"
    "paper: ss/cps/cpi/sb";
  List.iter
    (fun (name, (pss, pcps, pcpi, psb)) ->
      let w = W.Spec.find name in
      Printf.printf
        "%-14s %5.1f %5.1f %5.1f %6.1f   %5.1f %5.1f %5.1f %6.1f   (%%)\n" name
        (overhead w P.Safe_stack) (overhead w P.Cps) (overhead w P.Cpi)
        (overhead w P.Softbound) pss pcps pcpi psb)
    paper;
  print_newline ();
  print_endline
    "Shape check: full memory safety costs an order of magnitude more than";
  print_endline "CPI on every benchmark, 16-44x in the paper's terms."

(* ---------- Fig. 4: Phoronix ---------- *)

let bench_fig4 () =
  header "Fig. 4: Phoronix-like system benchmarks (measured)";
  Printf.printf "%-16s %10s %10s %10s\n" "benchmark" "safestack" "cps" "cpi";
  List.iter
    (fun (w : W.Workload.t) ->
      let ss = overhead w P.Safe_stack in
      let cps = overhead w P.Cps in
      let cpi = overhead w P.Cpi in
      Printf.printf "%-16s %9.1f%% %9.1f%% %9.1f%%  |%s\n" w.W.Workload.name ss
        cps cpi (bar cpi))
    W.Phoronix.all;
  print_newline ();
  print_endline
    "Shape check: most system workloads sit within noise for SafeStack/CPS;";
  print_endline "pybench (the dynamic-object interpreter) is the CPI outlier,";
  print_endline "matching the paper's 'suspiciously high pybench overhead'."

(* ---------- Table 4: web stack ---------- *)

let bench_table4 () =
  header "Table 4: web-server throughput (overhead vs vanilla)";
  let paper = [ ("web-static", (1.7, 8.9, 16.9)); ("web-wsgi", (1.0, 4.0, 15.3));
                ("web-dynamic", (1.4, 15.9, 138.8)) ] in
  Printf.printf "%-12s %26s %26s\n" "page" "ours: ss/cps/cpi" "paper: ss/cps/cpi";
  List.iter
    (fun (w : W.Workload.t) ->
      let pss, pcps, pcpi =
        match List.assoc_opt w.W.Workload.name paper with
        | Some (a, b, c) -> (a, b, c)
        | None -> (0., 0., 0.)
      in
      Printf.printf "%-12s %7.1f%% %7.1f%% %7.1f%%   %7.1f%% %7.1f%% %7.1f%%\n"
        w.W.Workload.name (overhead w P.Safe_stack) (overhead w P.Cps)
        (overhead w P.Cpi) pss pcps pcpi)
    W.Webstack.all;
  print_newline ();
  print_endline
    "Shape check: the dynamically generated page costs CPI several times more";
  print_endline "than the static and wsgi pages (interpreter-style C)."

(* ---------- Fig. 5: design space ---------- *)

let bench_fig5 () =
  header "Fig. 5: control-flow hijack defenses: guarantee vs overhead (measured)";
  let rows = Lazy.force spec_rows in
  let avg sel = SupStats.mean (List.map sel rows) in
  let avg_of prot = SupStats.mean (List.map (fun (w, _, _, _) -> overhead w prot) rows) in
  let summaries = Lazy.force ripe_summaries in
  let stops prot =
    let s = List.find (fun (s : R.summary) -> s.R.protection = prot) summaries in
    if s.R.hijacked = 0 then "yes"
    else Printf.sprintf "no (%d/%d pass)" s.R.hijacked s.R.total
  in
  Printf.printf "%-22s %-18s %12s   %s\n" "mechanism" "stops all hijacks?"
    "avg overhead" "paper overhead";
  let row name stops_s ov paper =
    Printf.printf "%-22s %-18s %11.1f%%   %s\n" name stops_s ov paper
  in
  row "Memory safety (SB)" (stops P.Softbound) (avg_of P.Softbound) "116%";
  row "CPI (this work)" (stops P.Cpi) (avg (fun (_, _, _, c) -> c)) "8.4%";
  row "CPS (this work)" (stops P.Cps) (avg (fun (_, _, c, _) -> c)) "1.9%";
  row "Safe Stack" (stops P.Safe_stack) (avg (fun (_, s, _, _) -> s)) "~0%";
  row "ASLR+DEP+cookies" (stops P.Hardened) (avg_of P.Hardened) "~2%";
  row "Stack cookies" (stops P.Cookies) (avg_of P.Cookies) "~2%";
  row "CFI (coarse)" (stops P.Cfi) (avg_of P.Cfi) "20%"

(* ---------- Section 5.2: memory overhead ---------- *)

let bench_memtable () =
  header "Memory overhead of the safe region (Section 5.2, measured medians)";
  let impls = [ M.Safestore.Simple_array; M.Safestore.Hashtable; M.Safestore.Two_level ] in
  Printf.printf "%-14s %16s %16s %16s\n" "configuration" "array" "hashtable" "two-level";
  (* memory overhead = safe-store footprint relative to the program's own
     data footprint (heap peak + globals + stacks actually touched), on the
     pointer-heavy half of the suite where the safe region is exercised *)
  let subset =
    List.filter
      (fun (w : W.Workload.t) ->
        List.mem w.W.Workload.name
          [ "400.perlbench"; "403.gcc"; "447.dealII"; "450.soplex";
            "453.povray"; "471.omnetpp"; "483.xalancbmk"; "429.mcf" ])
      W.Spec.all
  in
  let mean_ov prot =
    List.map
      (fun impl ->
        let l =
          List.map
            (fun (w : W.Workload.t) ->
              let base = run_workload w P.Vanilla in
              let data = max 1 (base.M.Interp.heap_peak + 4096) in
              let r = run_workload ~store_impl:impl w prot in
              100. *. float_of_int r.M.Interp.store_footprint /. float_of_int data)
            subset
        in
        SupStats.mean l)
      impls
  in
  (match mean_ov P.Cps with
   | [ a; h; t ] ->
     Printf.printf "%-14s %15.1f%% %15.1f%% %15.1f%%   (paper: array 5.6%%, hash 2.1%%)\n"
       "CPS" a h t
   | _ -> ());
  (match mean_ov P.Cpi with
   | [ a; h; t ] ->
     Printf.printf "%-14s %15.1f%% %15.1f%% %15.1f%%   (paper: array 105%%, hash 13.9%%)\n"
       "CPI" a h t
   | _ -> ());
  print_endline
    "\nShape check: the sparse array costs far more memory than the hashtable;";
  print_endline "CPI's metadata costs several times CPS's value-only entries."

(* ---------- ablations ---------- *)

let bench_ablation () =
  header "Ablations: design choices called out in DESIGN.md";
  (* (a) safe-store organisation: runtime on dispatch-heavy workloads *)
  let subset = [ W.Spec.find "400.perlbench"; W.Spec.find "471.omnetpp" ] in
  Printf.printf "(a) safe pointer store organisation (CPI overhead vs vanilla):\n";
  List.iter
    (fun impl ->
      let ov =
        SupStats.mean
          (List.map
             (fun (w : W.Workload.t) ->
               let base = run_workload w P.Vanilla in
               let r = run_workload ~store_impl:impl w P.Cpi in
               SupStats.overhead_pct ~base:base.M.Interp.cycles
                 ~instrumented:r.M.Interp.cycles)
             subset)
      in
      Printf.printf "    %-12s %6.2f%%\n" (M.Safestore.impl_name impl) ov)
    [ M.Safestore.Simple_array; M.Safestore.Two_level; M.Safestore.Hashtable;
      M.Safestore.Mpx ];
  print_endline
    "    (paper: the superpage-backed array was fastest; 'mpx' models the\n\
    \     Section-4 future hardware-assisted bound tables)";
  (* (b) isolation mechanism *)
  Printf.printf "\n(b) safe-region isolation (CPI, perlbench+omnetpp):\n";
  List.iter
    (fun (iso, name) ->
      let ov =
        SupStats.mean
          (List.map
             (fun (w : W.Workload.t) ->
               let prog = W.Workload.compile w in
               let b = P.build ~isolation:iso P.Cpi prog in
               let r =
                 M.Interp.run_program ~fuel:w.W.Workload.fuel b.P.prog b.P.config
               in
               let base = run_workload w P.Vanilla in
               SupStats.overhead_pct ~base:base.M.Interp.cycles
                 ~instrumented:r.M.Interp.cycles)
             subset)
      in
      Printf.printf "    %-14s %6.2f%%\n" name ov)
    [ (M.Config.Segments, "segments"); (M.Config.Info_hiding, "info-hiding");
      (M.Config.Sfi, "SFI") ];
  print_endline "    (paper: SFI adds <5% over the segment/hiding variants)";
  (* (c) debug mode *)
  Printf.printf "\n(c) CPI debug mode (both copies kept and compared):\n";
  let ov_dbg =
    SupStats.mean (List.map (fun w -> overhead w P.Cpi_debug) subset)
  in
  let ov_cpi = SupStats.mean (List.map (fun w -> overhead w P.Cpi) subset) in
  Printf.printf "    default %.2f%%  debug %.2f%%\n" ov_cpi ov_dbg

(* ---------- Section 5.3: whole-distribution practicality ---------- *)

let bench_distro () =
  header "Section 5.3: rebuilding the whole 'distribution' under each config";
  print_endline
    "The paper rebuilds FreeBSD plus >100 packages under CPI/CPS/SafeStack\n\
     and reports that everything that builds and runs vanilla also builds\n\
     and runs protected. The analogue here: every workload in the tree\n\
     (SPEC-like + Phoronix-like + web stack) must compile, instrument,\n\
     verify and run to completion with identical output under every\n\
     configuration.\n";
  let packages =
    W.Spec.all @ W.Phoronix.all @ W.Webstack.all @ W.Base_system.all
  in
  let configs = [ P.Safe_stack; P.Cps; P.Cpi ] in
  let failures = ref 0 in
  List.iter
    (fun prot ->
      let ok = ref 0 in
      List.iter
        (fun (w : W.Workload.t) ->
          let base = run_workload w P.Vanilla in
          let r = run_workload w prot in
          if
            base.M.Interp.outcome = M.Trap.Exit 0
            && r.M.Interp.outcome = base.M.Interp.outcome
            && r.M.Interp.checksum = base.M.Interp.checksum
          then incr ok
          else begin
            incr failures;
            Printf.printf "  FAIL %s under %s\n" w.W.Workload.name
              (P.protection_name prot)
          end)
        packages;
      Printf.printf "  %-12s %d/%d packages build and run correctly\n"
        (P.protection_name prot) !ok (List.length packages))
    configs;
  if !failures = 0 then
    print_endline "\nAll packages work under all protections, as in the paper."

(* ---------- bechamel wall-clock microbenchmarks ---------- *)

let bench_bechamel () =
  header "Bechamel wall-clock benchmarks (one per table/figure)";
  let open Bechamel in
  let open Toolkit in
  let exec (w : W.Workload.t) prot () =
    let prog = W.Workload.compile w in
    let b = P.build prot prog in
    ignore (M.Interp.run_program ~fuel:w.W.Workload.fuel b.P.prog b.P.config)
  in
  let attack () = ignore (R.run_matrix ~protections:[ P.Cpi ] ()) in
  let tests =
    [ Test.make ~name:"ripe:cpi-matrix" (Staged.stage attack);
      Test.make ~name:"table1:perlbench-cpi"
        (Staged.stage (exec (W.Spec.find "400.perlbench") P.Cpi));
      Test.make ~name:"fig3:omnetpp-cpi"
        (Staged.stage (exec (W.Spec.find "471.omnetpp") P.Cpi));
      Test.make ~name:"table2:stats-gcc"
        (Staged.stage (fun () ->
             ignore (P.build P.Cpi (W.Workload.compile (W.Spec.find "403.gcc")))));
      Test.make ~name:"table3:sjeng-softbound"
        (Staged.stage (exec (W.Spec.find "458.sjeng") P.Softbound));
      Test.make ~name:"fig4:pybench-cpi"
        (Staged.stage (exec (List.nth W.Phoronix.all 5) P.Cpi));
      Test.make ~name:"table4:web-dynamic-cpi"
        (Staged.stage (exec W.Webstack.dynamic_page P.Cpi));
      Test.make ~name:"fig5:bzip2-vanilla"
        (Staged.stage (exec (W.Spec.find "401.bzip2") P.Vanilla)) ]
  in
  let cfg = Benchmark.cfg ~limit:20 ~quota:(Time.second 0.8) ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
      in
      let est = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name v ->
          match Analyze.OLS.estimates v with
          | Some [ t ] -> Printf.printf "  %-28s %12.2f ms/run\n" name (t /. 1e6)
          | _ -> Printf.printf "  %-28s (no estimate)\n" name)
        est)
    tests

(* ---------- driver ---------- *)

let all_targets =
  [ ("ripe", bench_ripe); ("table1", bench_table1); ("fig3", bench_fig3);
    ("table2", bench_table2); ("table3", bench_table3); ("fig4", bench_fig4);
    ("table4", bench_table4); ("fig5", bench_fig5); ("memtable", bench_memtable);
    ("ablation", bench_ablation); ("distro", bench_distro);
    ("bechamel", bench_bechamel) ]

(* Targets whose printing code raised (a harness bug, not a simulated
   trap): the run continues to the next target and the process reports
   every failure — and exits non-zero — only after the full matrix. *)
let target_failures : (string * string) list ref = ref []

(* Run one target under its own journal: fan its independent cells out
   through the pool first (a no-op at --jobs 1 beyond ordering the
   journal), then let the unchanged printing code hit the memo. *)
let run_target name f =
  let e = Lazy.force eng in
  let j =
    if !json_flag then
      Some (Journal.create ~jobs:(Engine.jobs e) ~target:name ())
    else None
  in
  Engine.set_journal e j;
  (try
     (match List.assoc_opt name Targets.by_name with
      | Some cells -> Engine.prefetch e (cells ())
      | None -> ());
     f ();
     match j with
     | Some j when name = "ripe" ->
       List.iter
         (fun s -> Journal.record j (ripe_journal_entry s))
         (Lazy.force ripe_summaries)
     | _ -> ()
   with exn ->
     let msg = Printexc.to_string exn in
     target_failures := (name, msg) :: !target_failures;
     Printf.eprintf "[bench] target %s failed: %s\n" name msg);
  Engine.set_journal e None;
  match j with
  | Some j ->
    let path = Journal.write j in
    (* BENCH_<target>.json stays the one-shot snapshot; the aggregate
       record additionally lands in the append-only run-store, so the
       trajectory across commits is diffable with `levee history`. *)
    Runstore.append (Journal.to_record ~kind:"bench" j);
    Printf.eprintf "%s -> %s, %s\n" (Journal.summary_line j) path
      Runstore.default_path
  | None -> ()

let usage () =
  Printf.printf
    "usage: main.exe [--jobs N] [--json|--no-json] [--fuel-cap N] [target...]\n\
     targets: %s\n"
    (String.concat " " (List.map fst all_targets));
  exit 2

let () =
  let rec parse acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs_flag := n
       | _ -> usage ());
      parse acc rest
    | "--json" :: rest -> json_flag := true; parse acc rest
    | "--no-json" :: rest -> json_flag := false; parse acc rest
    | "--fuel-cap" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> fuel_cap := Some n
       | _ -> usage ());
      parse acc rest
    | ("--help" | "-h" | "--jobs" | "--fuel-cap") :: _ -> usage ()
    | name :: rest -> parse (name :: acc) rest
  in
  let names = parse [] (List.tl (Array.to_list Sys.argv)) in
  List.iter
    (fun name ->
      if not (List.mem_assoc name all_targets) then begin
        Printf.eprintf "unknown target %s; available: %s\n" name
          (String.concat " " (List.map fst all_targets));
        exit 2
      end)
    names;
  (match names with
   | [] ->
     print_endline
       "Code-Pointer Integrity (OSDI 2014) — full evaluation reproduction";
     List.iter (fun (name, f) -> run_target name f) all_targets
   | names ->
     List.iter
       (fun name -> run_target name (List.assoc name all_targets))
       names);
  (* Full matrix reported; now aggregate every failure class and only
     then decide the exit code. *)
  let vanilla = Engine.vanilla_failures (Lazy.force eng) in
  let harness = Engine.harness_failures (Lazy.force eng) in
  let targets = List.rev !target_failures in
  Engine.shutdown (Lazy.force eng);
  if vanilla <> [] then begin
    Printf.eprintf "[bench] %d vanilla run(s) did not exit cleanly:\n"
      (List.length vanilla);
    List.iter
      (fun (name, o) ->
        Printf.eprintf "  %s: %s\n" name (M.Trap.outcome_to_string o))
      vanilla
  end;
  if harness <> [] then begin
    Printf.eprintf "[bench] %d cell(s) failed in the harness:\n"
      (List.length harness);
    List.iter
      (fun (cell, reason) -> Printf.eprintf "  %s: %s\n" cell reason)
      harness
  end;
  if targets <> [] then begin
    Printf.eprintf "[bench] %d target(s) failed:\n" (List.length targets);
    List.iter
      (fun (name, msg) -> Printf.eprintf "  %s: %s\n" name msg)
      targets
  end;
  if vanilla <> [] || harness <> [] || targets <> [] then exit 1
