(* The levee command-line driver: the analogue of the paper's Levee
   compiler wrapper. Compiles a MiniC source file, applies the requested
   protection (the paper's -fcpi / -fcps / -fstack-protector-safe flags),
   and runs it on the machine simulator.

     levee [options] file.c
       -fcpi                    code-pointer integrity (default)
       -fcps                    code-pointer separation
       -fstack-protector-safe   safe stack only
       -fsoftbound              full spatial memory safety baseline
       -fcfi | -fcookies | -fvanilla | -fhardened | -fcpi-debug
       -emit-ir                 print the (instrumented) IR and exit
       -stats                   print Table-2-style instrumentation stats
       -input 1,2,3             input words fed to read_int/gets
       -fuel N                  instruction budget (default 50M)
       -store array|two-level|hash   safe-pointer-store organisation
       -sfi                     use SFI isolation instead of info hiding
       -time                    print cycle counts *)

module P = Levee_core.Pipeline
module M = Levee_machine

let usage () =
  prerr_endline
    "usage: levee [-fcpi|-fcps|-fstack-protector-safe|-fsoftbound|-fcfi|\n\
    \              -fcookies|-fvanilla|-fhardened|-fcpi-debug]\n\
    \             [-emit-ir] [-stats] [-time] [-sfi]\n\
    \             [-input w1,w2,...] [-fuel N] [-store array|two-level|hash]\n\
    \             file.c";
  exit 2

let () =
  let protection = ref P.Cpi in
  let emit_ir = ref false in
  let stats = ref false in
  let time = ref false in
  let input = ref [||] in
  let fuel = ref 50_000_000 in
  let store_impl = ref M.Safestore.Simple_array in
  let isolation = ref M.Config.Info_hiding in
  let file = ref None in
  let rec parse = function
    | [] -> ()
    | "-fcpi" :: rest -> protection := P.Cpi; parse rest
    | "-fcps" :: rest -> protection := P.Cps; parse rest
    | "-fstack-protector-safe" :: rest -> protection := P.Safe_stack; parse rest
    | "-fsoftbound" :: rest -> protection := P.Softbound; parse rest
    | "-fcfi" :: rest -> protection := P.Cfi; parse rest
    | "-fcookies" :: rest -> protection := P.Cookies; parse rest
    | "-fvanilla" :: rest -> protection := P.Vanilla; parse rest
    | "-fhardened" :: rest -> protection := P.Hardened; parse rest
    | "-fcpi-debug" :: rest -> protection := P.Cpi_debug; parse rest
    | "-emit-ir" :: rest -> emit_ir := true; parse rest
    | "-stats" :: rest -> stats := true; parse rest
    | "-time" :: rest -> time := true; parse rest
    | "-sfi" :: rest -> isolation := M.Config.Sfi; parse rest
    | "-input" :: spec :: rest ->
      input :=
        Array.of_list
          (List.map int_of_string
             (List.filter (fun s -> s <> "") (String.split_on_char ',' spec)));
      parse rest
    | "-fuel" :: n :: rest -> fuel := int_of_string n; parse rest
    | "-store" :: s :: rest ->
      (store_impl :=
         match s with
         | "array" -> M.Safestore.Simple_array
         | "two-level" -> M.Safestore.Two_level
         | "hash" -> M.Safestore.Hashtable
         | _ -> usage ());
      parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
      file := Some f;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let src =
    let ic = open_in_bin file in
    let n = in_channel_length ic in
    let s = really_input_string ic n in
    close_in ic;
    s
  in
  let checked, prog =
    try Levee_minic.Lower.compile_checked ~name:file src with
    | Failure msg ->
      prerr_endline msg;
      exit 1
  in
  let annotated = checked.Levee_minic.Typecheck.sensitive_structs in
  let built =
    P.build ~annotated ~store_impl:!store_impl ~isolation:!isolation !protection
      prog
  in
  if !stats then begin
    let s = built.P.stats in
    Printf.printf "protection:            %s\n" (P.protection_name !protection);
    Printf.printf "functions:             %d\n" s.Levee_core.Stats.funcs_total;
    Printf.printf "FNUStack:              %.1f%%\n"
      (100. *. Levee_core.Stats.fnustack s);
    Printf.printf "memory ops:            %d\n" s.Levee_core.Stats.mem_ops_total;
    Printf.printf "instrumented mem ops:  %d (%.1f%%)\n"
      s.Levee_core.Stats.mem_ops_instrumented
      (100. *. Levee_core.Stats.mo_instrumented s);
    Printf.printf "checked mem ops:       %d\n" s.Levee_core.Stats.mem_ops_checked;
    Printf.printf "indirect calls:        %d\n" s.Levee_core.Stats.indirect_calls
  end;
  if !emit_ir then begin
    print_string (Levee_ir.Printer.program built.P.prog);
    exit 0
  end;
  let r =
    M.Interp.run_program ~input:!input ~fuel:!fuel built.P.prog built.P.config
  in
  print_string r.M.Interp.output;
  if !time then begin
    Printf.printf "[levee] cycles:  %d\n" r.M.Interp.cycles;
    Printf.printf "[levee] instrs:  %d\n" r.M.Interp.instrs;
    Printf.printf "[levee] mem ops: %d (%d instrumented)\n" r.M.Interp.mem_ops
      r.M.Interp.instrumented_mem_ops
  end;
  match r.M.Interp.outcome with
  | M.Trap.Exit n -> exit n
  | o ->
    Printf.eprintf "[levee] %s\n" (M.Trap.outcome_to_string o);
    exit 101
