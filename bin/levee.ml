(* The levee command-line driver: the analogue of the paper's Levee
   compiler wrapper. Compiles a MiniC source file, applies the requested
   protection (the paper's -fcpi / -fcps / -fstack-protector-safe flags),
   and runs it on the machine simulator.

     levee [options] file.c
       -fcpi                    code-pointer integrity (default)
       -fcps                    code-pointer separation
       -fstack-protector-safe   safe stack only
       -fsoftbound              full spatial memory safety baseline
       -fcfi | -fcfi-type | -fcookies | -fvanilla | -fhardened | -fcpi-debug
       -fcpi-crypt              in-place pointer encryption (no safe region)
       -emit-ir                 print the (instrumented) IR and exit
       -stats                   print Table-2-style instrumentation stats
       -input 1,2,3             input words fed to read_int/gets
       -fuel N                  instruction budget (default 50M)
       -store array|two-level|hash   safe-pointer-store organisation
       -sfi                     use SFI isolation instead of info hiding
       -time                    print cycle counts
       -matrix                  run under ALL protections via the worker
                                pool and print a comparison table
       -jobs N                  pool width for -matrix (default 1)
       -json FILE               write a BENCH-style JSON run journal

     levee analyze [--json] [--races] [--record FILE] file.c...
       Static lint over each file: unsafe casts, Castflow-forced loads,
       dead instrumentation (provably data-only sensitive accesses),
       unreachable blocks, never-code indirect calls, and per-function
       Table-2-style statistics, plus the CPI pipeline's authoritative
       check-elision/demotion counts. --races additionally runs the
       static lockset race detector over the source program and the
       safe-region separation prover over the CPI build (certificates
       replayed through Verify). --json emits the levee-analyze/2
       document instead of the human table. Output is deterministic;
       exits 1 on error-severity findings (internal inconsistencies).
       --record appends one analyze record per file to the run-store.

     levee crossval [--json] [--jobs N] [--seeds N] [--record FILE]
       Cross-validate the static race analyzer against the dynamic
       Eraser detector: run the built-in racy/race-free corpus under
       vanilla and CPI across scheduler seeds 0..N-1 (default 8) and
       check that every dynamically-observed race is statically flagged,
       that verdicts match the corpus expectations, and that the
       fault-campaign subjects' separation proofs agree with their
       measured CPI hijack immunity. Deterministic for any --jobs;
       exits 1 iff an invariant is violated.

     levee faults [--json] [--jobs N] [--seed S]
       Run the deterministic fault-injection smoke campaign: seeded
       corruption plans swept over defense configs x store organisations,
       every run classified against its un-faulted baseline. --json emits
       the levee-faults/1 document (byte-identical for any --jobs).
       Exits 1 iff a campaign invariant is violated.

     levee conc [--threads N] [--sched-seed S] [--jobs N] [--json]
       Run the concurrent web-serving workload with N worker threads
       under the deterministic scheduler, across the protection matrix
       (CPI additionally across all three store organisations). --json
       emits a levee-bench-journal/4 document with wall_us zeroed, so
       the output is a pure function of (--threads, --sched-seed):
       byte-identical for any --jobs. Exits 1 if any run fails, any
       protection diverges from vanilla, or a race is reported.
       --record FILE additionally appends one levee-history/1 record to
       the run-store at FILE (conc and faults both take it).

     levee serve [--json] [--jobs N] [--seeds N] [--workers N] [--shards N]
                 [--requests N] [--no-faults] [--record FILE]
       Run the resilient-server campaign: per-class service costs
       calibrated on the machine, hijack/degradation fault-plan probes
       per (protection, seed) cell, then a deterministic discrete-event
       simulation of an open-loop arrival process (default 10^6 requests
       per cell) with deadlines, bounded retries, per-shard circuit
       breakers, admission shedding, and injected worker kills + a
       hot-shard stall window. --json emits the levee-serve/1 document
       (simulated cycles only, byte-identical for any --jobs). --record
       appends one record per cell to the run-store. Exits 1 iff a
       campaign invariant is violated.

     levee history [--file FILE] [--diff A B] [--gate [A B]] [--tol f=p]
       Read the append-only run-store (RUNS.jsonl by default; every
       bench/perf/conc/faults run appends one record) and print the
       trajectory. --diff compares two runs field-by-field; --gate
       additionally checks per-field tolerances (cycles/sim_cycles 5%,
       wall_us 50% unless overridden with --tol field=pct) and exits 1
       naming each offending field when a delta exceeds its tolerance.
       A and B are 0-based indices (negative counts from the end),
       "last"/"prev", or a config name (most recent match); --gate
       alone compares prev vs last. Malformed store lines are precise
       errors (file:line), exit 2. *)

module P = Levee_core.Pipeline
module M = Levee_machine
module Pool = Levee_support.Pool
module Journal = Levee_support.Journal
module Runstore = Levee_support.Runstore
module Faults = Levee_harness.Faults

let usage () =
  prerr_endline
    "usage: levee [-fcpi|-fcps|-fstack-protector-safe|-fsoftbound|-fcfi|\n\
    \              -fcfi-type|-fcpi-crypt|-fcookies|-fvanilla|-fhardened|\n\
    \              -fcpi-debug]\n\
    \             [-emit-ir] [-stats] [-time] [-sfi] [-matrix] [-jobs N]\n\
    \             [-json FILE]\n\
    \             [-input w1,w2,...] [-fuel N] [-store array|two-level|hash]\n\
    \             [-sched-seed N]\n\
    \             file.c\n\
    \       levee analyze [--json] [--races] [--record FILE] file.c...\n\
    \       levee crossval [--json] [--jobs N] [--seeds N] [--record FILE]\n\
    \       levee faults [--json] [--jobs N] [--seed S] [--record FILE]\n\
    \       levee conc [--threads N] [--sched-seed S] [--jobs N] [--json]\n\
    \                  [--record FILE]\n\
    \       levee serve [--json] [--jobs N] [--seeds N] [--workers N]\n\
    \                   [--shards N] [--requests N] [--no-faults]\n\
    \                   [--record FILE]\n\
    \       levee history [--file FILE] [--diff A B] [--gate [A B]]\n\
    \                     [--tol field=pct]";
  exit 2

let read_file file =
  let ic = open_in_bin file in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let compile_or_die file =
  try Levee_minic.Lower.compile_checked ~name:file (read_file file) with
  | Failure msg ->
    prerr_endline msg;
    exit 1

(* levee analyze [--json] [--races] [--record FILE] file.c... *)
let run_analyze args =
  let json = ref false in
  let races = ref false in
  let record = ref None in
  let files = ref [] in
  let rec parse = function
    | [] -> ()
    | ("--json" | "-json") :: rest -> json := true; parse rest
    | ("--races" | "-races") :: rest -> races := true; parse rest
    | ("--record" | "-record") :: path :: rest ->
      record := Some path;
      parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
      files := f :: !files;
      parse rest
    | _ -> usage ()
  in
  parse args;
  let files = List.rev !files in
  if files = [] then usage ();
  let any_errors = ref false in
  List.iter
    (fun file ->
      let checked, prog = compile_or_die file in
      let annotated = checked.Levee_minic.Typecheck.sensitive_structs in
      let report =
        Levee_analysis.Diag.analyze ~annotated
          ~name:(Filename.basename file) prog
      in
      (* The instrumented build supplies the authoritative pipeline
         counts: what elision and demotion actually did under CPI. *)
      let built = P.build ~annotated P.Cpi prog in
      let report =
        if not !races then report
        else
          (* Race verdicts come from the uninstrumented program (what the
             programmer wrote); the separation proof is about the CPI
             build (what actually runs). *)
          let rs = Levee_analysis.Racecheck.races ~annotated prog in
          let sep = Levee_analysis.Racecheck.separation built.P.prog in
          Levee_analysis.Diag.add_separation
            (Levee_analysis.Diag.add_races report rs)
            sep
      in
      let elided = built.P.stats.Levee_core.Stats.checks_elided in
      let demoted = built.P.stats.Levee_core.Stats.mem_ops_demoted in
      print_string
        (if !json then Levee_analysis.Diag.to_json ~elided ~demoted report
         else Levee_analysis.Diag.to_human ~elided ~demoted report);
      (match !record with
       | Some path ->
         Runstore.append ~path
           (Levee_analysis.Diag.to_record ~name:(Filename.basename file) report)
       | None -> ());
      if Levee_analysis.Diag.has_errors report then any_errors := true)
    files;
  exit (if !any_errors then 1 else 0)

(* levee crossval [--json] [--jobs N] [--seeds N] [--record FILE] *)
let run_crossval args =
  let module X = Levee_harness.Crossval in
  let json = ref false in
  let jobs = ref 1 in
  let nseeds = ref 8 in
  let record = ref None in
  let rec parse = function
    | [] -> ()
    | ("--json" | "-json") :: rest -> json := true; parse rest
    | ("--jobs" | "-jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ -> usage ());
      parse rest
    | ("--seeds" | "-seeds") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 && n <= 64 -> nseeds := n
       | _ -> usage ());
      parse rest
    | ("--record" | "-record") :: path :: rest ->
      record := Some path;
      parse rest
    | _ -> usage ()
  in
  parse args;
  let seeds = List.init !nseeds (fun i -> i) in
  let rep = X.run ~jobs:!jobs ~seeds X.corpus in
  let faults = X.faults_cross ~jobs:!jobs () in
  print_string
    (if !json then X.to_json ~faults rep else X.to_human ~faults rep);
  (match !record with
   | Some path -> Runstore.append ~path (X.to_record rep)
   | None -> ());
  exit (if X.invariants_ok rep && X.faults_consistent faults then 0 else 1)

(* levee faults [--json] [--jobs N] [--seed S] [--record FILE] *)
let run_faults args =
  let json = ref false in
  let jobs = ref 1 in
  let seed = ref 42 in
  let record = ref None in
  let rec parse = function
    | [] -> ()
    | ("--json" | "-json") :: rest -> json := true; parse rest
    | ("--jobs" | "-jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ -> usage ());
      parse rest
    | ("--seed" | "-seed") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n -> seed := n
       | None -> usage ());
      parse rest
    | ("--record" | "-record") :: path :: rest ->
      record := Some path;
      parse rest
    | _ -> usage ()
  in
  parse args;
  let rep = Faults.run ~jobs:!jobs (Faults.smoke ~seed:!seed ()) in
  print_string (if !json then Faults.to_json rep else Faults.to_human rep);
  (match !record with
   | Some path -> Runstore.append ~path (Faults.to_record rep)
   | None -> ());
  exit (if Faults.invariants_ok rep then 0 else 1)

(* levee history [--file FILE] [--diff A B] [--gate [A B]] [--tol f=p] *)
let run_history args =
  let file = ref Runstore.default_path in
  let diff = ref None in
  let gate = ref None in
  let tols = ref [] in
  (* A run spec never starts with '-' except a negative index. *)
  let is_spec s =
    String.length s > 0
    && (s.[0] <> '-' || int_of_string_opt s <> None)
  in
  let parse_tol spec =
    match String.index_opt spec '=' with
    | Some i ->
      let f = String.sub spec 0 i in
      let v = String.sub spec (i + 1) (String.length spec - i - 1) in
      (match float_of_string_opt v with
       | Some p when f <> "" -> Some (f, p)
       | _ -> None)
    | None -> None
  in
  let rec parse = function
    | [] -> ()
    | ("--file" | "-file") :: p :: rest -> file := p; parse rest
    | ("--diff" | "-diff") :: a :: b :: rest when is_spec a && is_spec b ->
      diff := Some (a, b);
      parse rest
    | ("--gate" | "-gate") :: a :: b :: rest when is_spec a && is_spec b ->
      gate := Some (a, b);
      parse rest
    | ("--gate" | "-gate") :: rest -> gate := Some ("prev", "last"); parse rest
    | ("--tol" | "-tol") :: spec :: rest ->
      (match parse_tol spec with
       | Some t -> tols := t :: !tols
       | None -> usage ());
      parse rest
    | ("--list" | "-list") :: rest -> parse rest
    | _ -> usage ()
  in
  parse args;
  match Runstore.load ~path:!file () with
  | Error msg ->
    Printf.eprintf "levee history: %s\n" msg;
    exit 2
  | Ok rs ->
    let get spec =
      match Runstore.find rs spec with
      | Ok r -> r
      | Error msg ->
        Printf.eprintf "levee history: %s: %s\n" spec msg;
        exit 2
    in
    (match (!gate, !diff) with
     | Some (a, b), _ ->
       let a = get a and b = get b in
       print_string (Runstore.diff_human a b);
       (* --tol overrides win: tolerances are consulted first-match. *)
       let tolerances = List.rev !tols @ Runstore.default_tolerances in
       let violations = Runstore.gate ~tolerances a b in
       print_string (Runstore.gate_human violations);
       exit (if violations = [] then 0 else 1)
     | None, Some (a, b) ->
       print_string (Runstore.diff_human (get a) (get b));
       exit 0
     | None, None ->
       print_string (Runstore.list_human rs);
       exit 0)

(* levee conc [--threads N] [--sched-seed S] [--jobs N] [--json]
   [--record FILE] *)
let run_conc args =
  let module W = Levee_workloads in
  let json = ref false in
  let jobs = ref 1 in
  let threads = ref 4 in
  let seed = ref 0 in
  let record = ref None in
  let rec parse = function
    | [] -> ()
    | ("--json" | "-json") :: rest -> json := true; parse rest
    | ("--record" | "-record") :: path :: rest ->
      record := Some path;
      parse rest
    | ("--jobs" | "-jobs") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ -> usage ());
      parse rest
    | ("--threads" | "-threads") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n -> threads := n
       | None -> usage ());
      parse rest
    | ("--sched-seed" | "-sched-seed") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n -> seed := n
       | None -> usage ());
      parse rest
    | _ -> usage ()
  in
  parse args;
  (* The worker cap lives with the workload (Webstack.max_workers), so
     the conc and serve CLIs can't drift from what the machine supports. *)
  (try W.Webstack.check_workers ~flag:"--threads" !threads with
   | Invalid_argument msg ->
     Printf.eprintf "levee conc: %s\n" msg;
     exit 2);
  let w = W.Webstack.concurrent ~threads:!threads in
  let prog = W.Workload.compile w in
  let stores =
    [ M.Safestore.Simple_array; M.Safestore.Two_level; M.Safestore.Hashtable ]
  in
  let cells =
    List.concat_map
      (fun prot ->
        (* CPI is the store client: sweep its organisations; the other
           protections only see the default array. *)
        if prot = P.Cpi then List.map (fun s -> (prot, s)) stores
        else [ (prot, M.Safestore.Simple_array) ])
      [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi ]
  in
  let pool = Pool.create ~jobs:!jobs in
  let outcomes =
    Pool.map pool
      (fun (prot, store_impl) ->
        let b = P.build ~store_impl prot prog in
        let r =
          M.Interp.run_program ~sched_seed:!seed ~fuel:w.W.Workload.fuel
            b.P.prog b.P.config
        in
        (b.P.stats, r))
      cells
  in
  Pool.shutdown pool;
  let runs =
    List.map2
      (fun (prot, store_impl) outcome ->
        match outcome with
        | Ok (st, r) -> (prot, store_impl, st, r)
        | Error e -> raise e)
      cells outcomes
  in
  let base =
    match runs with (_, _, _, r) :: _ -> r | [] -> assert false
  in
  let bad = ref 0 in
  let check (r : M.Interp.result) =
    r.M.Interp.outcome = M.Trap.Exit 0
    && r.M.Interp.checksum = base.M.Interp.checksum
    && r.M.Interp.output = base.M.Interp.output
    && r.M.Interp.races = 0
  in
  (* The journal is a pure function of (--threads, --sched-seed): results
     are integrated in cell order whatever the pool width, and wall_us is
     zeroed, so any --jobs emits the identical document. *)
  let j =
    Journal.create
      ~target:(Printf.sprintf "%s-s%d" w.W.Workload.name !seed) ()
  in
  List.iter
    (fun (prot, store_impl, (st : Levee_core.Stats.t), (r : M.Interp.result)) ->
      if not (check r) then incr bad;
      Journal.record j
        { Journal.workload = w.W.Workload.name;
          protection = P.protection_name prot;
          store = M.Safestore.impl_name store_impl;
          outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
          status = (if check r then 0 else 1);
          cycles = r.M.Interp.cycles; instrs = r.M.Interp.instrs;
          mem_ops = r.M.Interp.mem_ops;
          instrumented_mem_ops = r.M.Interp.instrumented_mem_ops;
          store_accesses = r.M.Interp.store_accesses;
          store_footprint = r.M.Interp.store_footprint;
          heap_peak = r.M.Interp.heap_peak; checksum = r.M.Interp.checksum;
          checks_elided = st.Levee_core.Stats.checks_elided;
          mem_ops_demoted = st.Levee_core.Stats.mem_ops_demoted;
          threads = r.M.Interp.threads;
          ctx_switches = r.M.Interp.ctx_switches;
          races = r.M.Interp.races;
          attempts = 1; wall_us = 0 })
    runs;
  if !json then print_string (Journal.to_json j)
  else begin
    Printf.printf "%-18s %-10s %-12s %10s %8s %6s %6s\n" "protection" "store"
      "outcome" "cycles" "ctxsw" "races" "ok";
    List.iter
      (fun (prot, store_impl, _, (r : M.Interp.result)) ->
        Printf.printf "%-18s %-10s %-12s %10d %8d %6d %6s\n"
          (P.protection_name prot) (M.Safestore.impl_name store_impl)
          (M.Trap.outcome_to_string r.M.Interp.outcome)
          r.M.Interp.cycles r.M.Interp.ctx_switches r.M.Interp.races
          (if check r then "yes" else "NO"))
      runs;
    Printf.printf "[conc] threads=%d sched-seed=%d checksum=%d\n" !threads
      !seed base.M.Interp.checksum
  end;
  (* wall_us is already zeroed in every entry, so the appended record is
     byte-identical whatever --jobs was (the @history-smoke contract). *)
  (match !record with
   | Some path ->
     Runstore.append ~path (Journal.to_record ~kind:"conc" ~seed:!seed j)
   | None -> ());
  exit (if !bad = 0 then 0 else 1)

(* levee serve [--json] [--jobs N] [--seeds N] [--workers N] [--shards N]
   [--requests N] [--no-faults] [--record FILE] *)
let run_serve args =
  let module Serve = Levee_harness.Serve in
  let json = ref false in
  let jobs = ref 1 in
  let cfg = ref Serve.default in
  let record = ref None in
  let int_arg n k rest parse =
    match int_of_string_opt n with
    | Some n -> k n; parse rest
    | None -> usage ()
  in
  let rec parse = function
    | [] -> ()
    | ("--json" | "-json") :: rest -> json := true; parse rest
    | ("--no-faults" | "-no-faults") :: rest ->
      cfg := { !cfg with Serve.faulted = false };
      parse rest
    | ("--record" | "-record") :: path :: rest ->
      record := Some path;
      parse rest
    | ("--jobs" | "-jobs") :: n :: rest ->
      int_arg n (fun n -> if n >= 1 then jobs := n else usage ()) rest parse
    | ("--seeds" | "-seeds") :: n :: rest ->
      int_arg n
        (fun n ->
          if n >= 1 then cfg := { !cfg with Serve.seeds = List.init n Fun.id }
          else usage ())
        rest parse
    | ("--workers" | "-workers") :: n :: rest ->
      int_arg n (fun n -> cfg := { !cfg with Serve.workers = n }) rest parse
    | ("--shards" | "-shards") :: n :: rest ->
      int_arg n (fun n -> cfg := { !cfg with Serve.shards = n }) rest parse
    | ("--requests" | "-requests") :: n :: rest ->
      int_arg n (fun n -> cfg := { !cfg with Serve.requests = n }) rest parse
    | _ -> usage ()
  in
  parse args;
  let rep =
    try Serve.run ~jobs:!jobs !cfg with
    | Invalid_argument msg ->
      Printf.eprintf "levee serve: %s\n" msg;
      exit 2
  in
  if !json then print_string (Serve.to_json rep)
  else print_string (Serve.to_human rep);
  (* Every metric is in simulated cycles (wall_us is zero), so the
     appended records are byte-identical whatever --jobs was. *)
  (match !record with
   | Some path -> List.iter (Runstore.append ~path) (Serve.to_records rep)
   | None -> ());
  exit (if Serve.invariants_ok rep then 0 else 1)

let () =
  let protection = ref P.Cpi in
  let emit_ir = ref false in
  let stats = ref false in
  let time = ref false in
  let input = ref [||] in
  let fuel = ref 50_000_000 in
  let store_impl = ref M.Safestore.Simple_array in
  let isolation = ref M.Config.Info_hiding in
  let file = ref None in
  let matrix = ref false in
  let jobs = ref 1 in
  let json_out = ref None in
  let sched_seed = ref 0 in
  (match Array.to_list Sys.argv with
   | _ :: "analyze" :: rest -> run_analyze rest
   | _ :: "crossval" :: rest -> run_crossval rest
   | _ :: "faults" :: rest -> run_faults rest
   | _ :: "conc" :: rest -> run_conc rest
   | _ :: "serve" :: rest -> run_serve rest
   | _ :: "history" :: rest -> run_history rest
   | _ -> ());
  let rec parse = function
    | [] -> ()
    | "-matrix" :: rest -> matrix := true; parse rest
    | "-jobs" :: n :: rest ->
      (match int_of_string_opt n with
       | Some n when n >= 1 -> jobs := n
       | _ -> usage ());
      parse rest
    | "-json" :: f :: rest -> json_out := Some f; parse rest
    | "-fcpi" :: rest -> protection := P.Cpi; parse rest
    | "-fcps" :: rest -> protection := P.Cps; parse rest
    | "-fstack-protector-safe" :: rest -> protection := P.Safe_stack; parse rest
    | "-fsoftbound" :: rest -> protection := P.Softbound; parse rest
    | "-fcfi" :: rest -> protection := P.Cfi; parse rest
    | "-fcfi-type" :: rest -> protection := P.Cfi_type; parse rest
    | "-fcpi-crypt" :: rest -> protection := P.Cpi_crypt; parse rest
    | "-fcookies" :: rest -> protection := P.Cookies; parse rest
    | "-fvanilla" :: rest -> protection := P.Vanilla; parse rest
    | "-fhardened" :: rest -> protection := P.Hardened; parse rest
    | "-fcpi-debug" :: rest -> protection := P.Cpi_debug; parse rest
    | "-emit-ir" :: rest -> emit_ir := true; parse rest
    | "-stats" :: rest -> stats := true; parse rest
    | "-time" :: rest -> time := true; parse rest
    | "-sfi" :: rest -> isolation := M.Config.Sfi; parse rest
    | "-input" :: spec :: rest ->
      input :=
        Array.of_list
          (List.map int_of_string
             (List.filter (fun s -> s <> "") (String.split_on_char ',' spec)));
      parse rest
    | "-fuel" :: n :: rest -> fuel := int_of_string n; parse rest
    | ("-sched-seed" | "--sched-seed") :: n :: rest ->
      (match int_of_string_opt n with
       | Some n -> sched_seed := n
       | None -> usage ());
      parse rest
    | "-store" :: s :: rest ->
      (store_impl :=
         match s with
         | "array" -> M.Safestore.Simple_array
         | "two-level" -> M.Safestore.Two_level
         | "hash" -> M.Safestore.Hashtable
         | _ -> usage ());
      parse rest
    | f :: rest when String.length f > 0 && f.[0] <> '-' ->
      file := Some f;
      parse rest
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let file = match !file with Some f -> f | None -> usage () in
  let checked, prog = compile_or_die file in
  let annotated = checked.Levee_minic.Typecheck.sensitive_structs in
  let journal_entry prot (st : Levee_core.Stats.t) (r : M.Interp.result)
      wall_us : Journal.entry =
    { Journal.workload = Filename.basename file;
      protection = P.protection_name prot;
      store = M.Safestore.impl_name !store_impl;
      outcome = M.Trap.outcome_to_string r.M.Interp.outcome;
      status = (match r.M.Interp.outcome with M.Trap.Exit 0 -> 0 | _ -> 1);
      cycles = r.M.Interp.cycles; instrs = r.M.Interp.instrs;
      mem_ops = r.M.Interp.mem_ops;
      instrumented_mem_ops = r.M.Interp.instrumented_mem_ops;
      store_accesses = r.M.Interp.store_accesses;
      store_footprint = r.M.Interp.store_footprint;
      heap_peak = r.M.Interp.heap_peak; checksum = r.M.Interp.checksum;
      checks_elided = st.Levee_core.Stats.checks_elided;
      mem_ops_demoted = st.Levee_core.Stats.mem_ops_demoted;
      threads = r.M.Interp.threads;
      ctx_switches = r.M.Interp.ctx_switches;
      races = r.M.Interp.races;
      attempts = 1;
      wall_us }
  in
  let write_journal entries =
    match !json_out with
    | None -> ()
    | Some path ->
      let j =
        Journal.create ~jobs:!jobs ~target:(Filename.basename file) ()
      in
      List.iter (Journal.record j) entries;
      (try
         let oc = open_out path in
         output_string oc (Journal.to_json j);
         close_out oc
       with Sys_error msg ->
         Printf.eprintf "levee: cannot write journal: %s\n" msg;
         exit 2)
  in
  if !matrix then begin
    (* Build + run the file under every protection, fanned out over the
       pool; vanilla is the behavioural reference. *)
    let pool = Pool.create ~jobs:!jobs in
    let prots = P.all_protections in
    let outcomes =
      Pool.map pool
        (fun prot ->
          let t0 = Unix.gettimeofday () in
          let b =
            P.build ~annotated ~store_impl:!store_impl ~isolation:!isolation
              prot prog
          in
          let r =
            M.Interp.run_program ~input:!input ~fuel:!fuel
              ~sched_seed:!sched_seed b.P.prog b.P.config
          in
          (b.P.stats, r, int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)))
        prots
    in
    Pool.shutdown pool;
    let runs =
      List.map2
        (fun prot outcome ->
          match outcome with
          | Ok (st, r, wall) -> (prot, st, r, wall)
          | Error e -> raise e)
        prots outcomes
    in
    let base =
      match List.find_opt (fun (p, _, _, _) -> p = P.Vanilla) runs with
      | Some (_, _, r, _) -> r
      | None -> assert false
    in
    Printf.printf "%-18s %-14s %10s %9s %8s  %s\n" "protection" "outcome"
      "cycles" "overhead" "memops" "agrees";
    let divergent = ref 0 in
    List.iter
      (fun (prot, _, (r : M.Interp.result), _) ->
        let agrees =
          r.M.Interp.checksum = base.M.Interp.checksum
          && r.M.Interp.output = base.M.Interp.output
          && r.M.Interp.outcome = base.M.Interp.outcome
        in
        if not agrees then incr divergent;
        Printf.printf "%-18s %-14s %10d %8.1f%% %8d  %s\n"
          (P.protection_name prot)
          (M.Trap.outcome_to_string r.M.Interp.outcome)
          r.M.Interp.cycles
          (Levee_support.Stats.overhead_pct ~base:base.M.Interp.cycles
             ~instrumented:r.M.Interp.cycles)
          r.M.Interp.mem_ops
          (if agrees then "yes" else "NO"))
      runs;
    write_journal
      (List.map (fun (p, st, r, wall) -> journal_entry p st r wall) runs);
    (match base.M.Interp.outcome with
     | M.Trap.Exit 0 -> ()
     | o ->
       Printf.eprintf "[levee] vanilla run: %s\n" (M.Trap.outcome_to_string o);
       exit 101);
    exit (if !divergent = 0 then 0 else 1)
  end;
  let built =
    P.build ~annotated ~store_impl:!store_impl ~isolation:!isolation !protection
      prog
  in
  if !stats then begin
    let s = built.P.stats in
    Printf.printf "protection:            %s\n" (P.protection_name !protection);
    Printf.printf "functions:             %d\n" s.Levee_core.Stats.funcs_total;
    Printf.printf "FNUStack:              %.1f%%\n"
      (100. *. Levee_core.Stats.fnustack s);
    Printf.printf "memory ops:            %d\n" s.Levee_core.Stats.mem_ops_total;
    Printf.printf "instrumented mem ops:  %d (%.1f%%)\n"
      s.Levee_core.Stats.mem_ops_instrumented
      (100. *. Levee_core.Stats.mo_instrumented s);
    Printf.printf "checked mem ops:       %d\n" s.Levee_core.Stats.mem_ops_checked;
    Printf.printf "checks elided:         %d\n" s.Levee_core.Stats.checks_elided;
    Printf.printf "demoted mem ops:       %d\n" s.Levee_core.Stats.mem_ops_demoted;
    Printf.printf "indirect calls:        %d\n" s.Levee_core.Stats.indirect_calls
  end;
  if !emit_ir then begin
    print_string (Levee_ir.Printer.program built.P.prog);
    exit 0
  end;
  let t0 = Unix.gettimeofday () in
  let r =
    M.Interp.run_program ~input:!input ~fuel:!fuel ~sched_seed:!sched_seed
      built.P.prog built.P.config
  in
  write_journal
    [ journal_entry !protection built.P.stats r
        (int_of_float ((Unix.gettimeofday () -. t0) *. 1e6)) ];
  print_string r.M.Interp.output;
  if !time then begin
    Printf.printf "[levee] cycles:  %d\n" r.M.Interp.cycles;
    Printf.printf "[levee] instrs:  %d\n" r.M.Interp.instrs;
    Printf.printf "[levee] mem ops: %d (%d instrumented)\n" r.M.Interp.mem_ops
      r.M.Interp.instrumented_mem_ops
  end;
  match r.M.Interp.outcome with
  | M.Trap.Exit n -> exit n
  | o ->
    Printf.eprintf "[levee] %s\n" (M.Trap.outcome_to_string o);
    exit 101
