(* Unit tests for the Domain worker pool and the run-journal round trip
   (the observability layer under bench/main.exe). *)

module Pool = Levee_support.Pool
module Journal = Levee_support.Journal

exception Boom of int

let results_testable =
  Alcotest.(list (result int Helpers.exn_testable))

let with_pool jobs f =
  let p = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown p) (fun () -> f p)

(* Make early tasks slow so out-of-order completion is likely: result
   order must still match submission order. *)
let staggered_square n i =
  let spin = (n - i) * 10_000 in
  let acc = ref 0 in
  for k = 1 to spin do
    acc := (!acc + k) land 0xffff
  done;
  ignore !acc;
  i * i

let test_order jobs () =
  let xs = List.init 20 Fun.id in
  with_pool jobs (fun p ->
      let got = Pool.map p (staggered_square 20) xs in
      Alcotest.check results_testable "submission order"
        (List.map (fun i -> Ok (i * i)) xs)
        got)

let test_exception_isolated () =
  with_pool 4 (fun p ->
      let got =
        Pool.map p
          (fun i -> if i = 2 then raise (Boom i) else i + 100)
          [ 0; 1; 2; 3; 4 ]
      in
      Alcotest.check results_testable "raising task captured in its slot"
        [ Ok 100; Ok 101; Error (Boom 2); Ok 103; Ok 104 ]
        got;
      (* the pool must survive the exception and accept another batch *)
      let again = Pool.map p (fun i -> i * 2) [ 1; 2; 3 ] in
      Alcotest.check results_testable "pool not poisoned"
        [ Ok 2; Ok 4; Ok 6 ] again)

let test_matches_sequential () =
  let xs = List.init 57 (fun i -> (i * 7919) land 1023) in
  let f x = (x * x) + (x lsr 3) in
  let seq = List.map (fun x -> Ok (f x)) xs in
  with_pool 1 (fun p ->
      Alcotest.check results_testable "jobs=1 equals List.map" seq
        (Pool.map p f xs));
  with_pool 4 (fun p ->
      Alcotest.check results_testable "jobs=4 equals List.map" seq
        (Pool.map p f xs))

let test_empty_and_defaults () =
  with_pool 3 (fun p ->
      Alcotest.(check int) "size" 3 (Pool.jobs p);
      Alcotest.check results_testable "empty batch" [] (Pool.run p []));
  Alcotest.(check bool) "default_jobs >= 1" true (Pool.default_jobs () >= 1)

(* ---------- journal round trip ---------- *)

let entry i : Journal.entry =
  { Journal.workload = Printf.sprintf "w%d \"quoted\"\n" i;
    protection = "cpi"; store = "two-level";
    outcome = (if i mod 2 = 0 then "exit(0)" else "trapped: bounds");
    status = i mod 2; cycles = 1000 + i; instrs = 900 + i;
    mem_ops = 40 * i; instrumented_mem_ops = 7 * i; store_accesses = 3 * i;
    store_footprint = 4096 + i; heap_peak = 2 * i; checksum = -i;
    checks_elided = 5 * i; mem_ops_demoted = i; threads = 1 + (i mod 3);
    ctx_switches = 6 * i; races = i mod 2; attempts = 1 + (i mod 2);
    wall_us = 31337 * i }

let test_journal_roundtrip () =
  let j = Journal.create ~jobs:4 ~target:"table1" () in
  List.iter (fun i -> Journal.record j (entry i)) [ 0; 1; 2; 3; 4 ];
  let j' = Journal.of_json (Journal.to_json j) in
  Alcotest.(check string) "target" "table1" (Journal.target j');
  Alcotest.(check int) "jobs" 4 (Journal.jobs j');
  Alcotest.(check int) "entry count" 5 (List.length (Journal.entries j'));
  Alcotest.(check bool) "exact equality (wall included)" true
    (Journal.equal ~ignore_wall:false j j');
  Alcotest.(check int) "failures counted" 2
    (List.length (Journal.failures j'))

let test_journal_equal_modulo_wall () =
  let mk wall =
    let j = Journal.create ~target:"x" () in
    Journal.record j { (entry 1) with Journal.wall_us = wall };
    j
  in
  Alcotest.(check bool) "wall ignored by default" true
    (Journal.equal (mk 1) (mk 99));
  Alcotest.(check bool) "wall respected when asked" false
    (Journal.equal ~ignore_wall:false (mk 1) (mk 99))

let test_journal_rejects_garbage () =
  let bad s =
    match Journal.of_json s with
    | exception Failure _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "not json" true (bad "nonsense");
  Alcotest.(check bool) "wrong schema" true
    (bad "{\"schema\":\"other/9\",\"target\":\"t\",\"jobs\":1,\"entries\":[]}");
  Alcotest.(check bool) "truncated" true
    (bad "{\"schema\":\"levee-bench-journal/3\",\"target\":\"t\"");
  Alcotest.(check bool) "old schema version" true
    (bad
       "{\"schema\":\"levee-bench-journal/1\",\"target\":\"t\",\"jobs\":1,\
        \"entries\":[]}");
  (* /2 journals lack the attempts field; the parser must not guess. *)
  Alcotest.(check bool) "previous schema version" true
    (bad
       "{\"schema\":\"levee-bench-journal/2\",\"target\":\"t\",\"jobs\":1,\
        \"entries\":[]}")

(* ---------- resilience: timeouts, retries, re-entrancy ---------- *)

let is_timed_out = function
  | { Pool.result = Error (Pool.Timed_out _); _ } -> true
  | _ -> false

let ok_of = function
  | { Pool.result = Ok v; _ } -> Some v
  | _ -> None

let test_timeout_keeps_siblings () =
  with_pool 2 (fun p ->
      let stuck () =
        Unix.sleepf 0.5;
        -1
      in
      let outs =
        Pool.run_guarded ~timeout:0.05 p
          [ stuck; (fun () -> 2); (fun () -> 3); (fun () -> 4) ]
      in
      Alcotest.(check int) "four slots" 4 (List.length outs);
      Alcotest.(check bool) "stuck task reported Timed_out" true
        (is_timed_out (List.nth outs 0));
      Alcotest.(check (list (option int))) "siblings all survive"
        [ None; Some 2; Some 3; Some 4 ]
        (List.map ok_of outs);
      (* capacity was replaced: the pool still runs full batches *)
      let again = Pool.map p (fun i -> i * 10) [ 1; 2; 3; 4 ] in
      Alcotest.check results_testable "pool usable after timeout"
        [ Ok 10; Ok 20; Ok 30; Ok 40 ] again;
      (* the abandoned domain drains once its sleep finishes *)
      let deadline = Unix.gettimeofday () +. 2.0 in
      while Pool.abandoned p > 0 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      Alcotest.(check int) "abandoned task drained" 0 (Pool.abandoned p))

let test_timeout_at_last_task () =
  with_pool 2 (fun p ->
      (* The stuck task is the LAST slot: the watchdog fires while the
         rest of the batch has already drained and the submitter is
         polling for a single remaining slot. *)
      let outs =
        Pool.run_guarded ~timeout:0.05 p
          [ (fun () -> 1); (fun () -> 2); (fun () -> 3);
            (fun () ->
              Unix.sleepf 0.5;
              -1) ]
      in
      Alcotest.(check (list (option int))) "only the final slot times out"
        [ Some 1; Some 2; Some 3; None ]
        (List.map ok_of outs);
      Alcotest.(check bool) "final slot reported Timed_out" true
        (is_timed_out (List.nth outs 3));
      (* the watchdog replaced the stuck worker: full-width batches run *)
      let again = Pool.map p (fun i -> i + 1) [ 1; 2; 3; 4 ] in
      Alcotest.check results_testable "pool usable after last-slot timeout"
        [ Ok 2; Ok 3; Ok 4; Ok 5 ] again;
      let deadline = Unix.gettimeofday () +. 2.0 in
      while Pool.abandoned p > 0 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      Alcotest.(check int) "abandoned task drained" 0 (Pool.abandoned p))

let test_all_attempts_time_out () =
  with_pool 2 (fun p ->
      (* Every task wedges: each slot must report Timed_out with
         attempts = 1 — the watchdog result bypasses the retry loop, so
         a requested retry budget must not inflate the accounting. *)
      let outs =
        Pool.run_guarded ~timeout:0.05 ~retries:2
          ~backoff:(fun _ -> 0.0)
          p
          [ (fun () ->
              Unix.sleepf 0.5;
              1);
            (fun () ->
              Unix.sleepf 0.5;
              2) ]
      in
      Alcotest.(check int) "both slots reported" 2 (List.length outs);
      List.iter
        (fun o ->
          Alcotest.(check bool) "slot is Timed_out" true (is_timed_out o);
          Alcotest.(check int) "timed-out slot counts one attempt" 1
            o.Pool.attempts)
        outs;
      Alcotest.(check int) "both stuck domains tracked as abandoned" 2
        (Pool.abandoned p);
      let deadline = Unix.gettimeofday () +. 2.0 in
      while Pool.abandoned p > 0 && Unix.gettimeofday () < deadline do
        Unix.sleepf 0.01
      done;
      Alcotest.(check int) "abandoned tasks drained" 0 (Pool.abandoned p);
      (* two replacement workers were spawned: capacity is intact *)
      let again = Pool.map p (fun i -> i * 3) [ 1; 2 ] in
      Alcotest.check results_testable "pool survives a fully-wedged batch"
        [ Ok 3; Ok 6 ] again)

let test_retry_deterministic () =
  (* Same failing-twice thunk under jobs=1 and jobs=2: identical outcome
     shape, identical backoff schedule. *)
  let run_once jobs =
    let tries = ref 0 in
    let slept = ref [] in
    let backoff k =
      slept := k :: !slept;
      0.0
    in
    let outs =
      with_pool jobs (fun p ->
          Pool.run_guarded ~retries:3 ~backoff p
            [ (fun () ->
                incr tries;
                if !tries < 3 then raise (Boom !tries) else 777) ])
    in
    (List.hd outs, List.rev !slept)
  in
  List.iter
    (fun jobs ->
      let o, ks = run_once jobs in
      Alcotest.(check (option int))
        (Printf.sprintf "jobs=%d succeeds on third attempt" jobs)
        (Some 777) (ok_of o);
      Alcotest.(check int)
        (Printf.sprintf "jobs=%d attempts counted" jobs)
        3 o.Pool.attempts;
      Alcotest.(check (list int))
        (Printf.sprintf "jobs=%d backoff called with 1,2" jobs)
        [ 1; 2 ] ks)
    [ 1; 2 ]

let test_retries_exhausted () =
  with_pool 1 (fun p ->
      let outs =
        Pool.run_guarded ~retries:2 ~backoff:(fun _ -> 0.0) p
          [ (fun () -> raise (Boom 9)) ]
      in
      match outs with
      | [ { Pool.result = Error (Pool.Exn (Boom 9)); attempts = 3 } ] -> ()
      | _ -> Alcotest.fail "expected Error (Boom 9) after 3 attempts")

let test_default_backoff () =
  Alcotest.(check (list (float 1e-9))) "doubling, no jitter"
    [ 0.01; 0.02; 0.04; 0.08 ]
    (List.map Pool.default_backoff [ 1; 2; 3; 4 ])

let test_reentrant_rejected jobs () =
  with_pool jobs (fun p ->
      let got = Pool.run p [ (fun () -> Pool.run p [ (fun () -> 1) ]) ] in
      (match got with
       | [ Error (Invalid_argument msg) ] ->
         Alcotest.(check bool) "message names Pool.run" true
           (String.length msg >= 8 && String.sub msg 0 8 = "Pool.run")
       | _ -> Alcotest.fail "expected Error Invalid_argument");
      (* the pool survives the rejected call *)
      Alcotest.check results_testable "pool not poisoned" [ Ok 5 ]
        (Pool.map p (fun i -> i + 4) [ 1 ]))

let () =
  Alcotest.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "order jobs=1" `Quick (test_order 1);
          Alcotest.test_case "order jobs=4" `Quick (test_order 4);
          Alcotest.test_case "exception isolated" `Quick
            test_exception_isolated;
          Alcotest.test_case "equals sequential map" `Quick
            test_matches_sequential;
          Alcotest.test_case "empty batch & defaults" `Quick
            test_empty_and_defaults ] );
      ( "resilience",
        [ Alcotest.test_case "timeout keeps siblings" `Quick
            test_timeout_keeps_siblings;
          Alcotest.test_case "timeout at the last task" `Quick
            test_timeout_at_last_task;
          Alcotest.test_case "every attempt times out" `Quick
            test_all_attempts_time_out;
          Alcotest.test_case "deterministic retry/backoff" `Quick
            test_retry_deterministic;
          Alcotest.test_case "retries exhausted" `Quick
            test_retries_exhausted;
          Alcotest.test_case "default backoff schedule" `Quick
            test_default_backoff;
          Alcotest.test_case "re-entrant run rejected jobs=1" `Quick
            (test_reentrant_rejected 1);
          Alcotest.test_case "re-entrant run rejected jobs=2" `Quick
            (test_reentrant_rejected 2) ] );
      ( "journal",
        [ Alcotest.test_case "round trip" `Quick test_journal_roundtrip;
          Alcotest.test_case "equal modulo wall" `Quick
            test_journal_equal_modulo_wall;
          Alcotest.test_case "rejects garbage" `Quick
            test_journal_rejects_garbage ] ) ]
