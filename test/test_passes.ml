(* Instrumentation pass tests: what CPI/CPS/SafeStack/SoftBound/CFI/cookie
   passes mark, the Table-2 statistics, and pipeline integrity. *)

module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module I = Levee_ir.Instr
module P = Levee_core.Pipeline
module Stats = Levee_core.Stats
module M = Levee_machine

let t name f = Alcotest.test_case name `Quick f

let fptr_prog = {|
int h1(int x) { return x + 1; }
int h2(int x) { return x * 2; }
int (*table[2])(int) = { h1, h2 };
int data[8];
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 8; i = i + 1) { data[i] = i; }
  for (i = 0; i < 8; i = i + 1) { s = s + table[i & 1](data[i]); }
  return s & 255;
}
|}

let build prot src = P.build prot (Levee_minic.Lower.compile src)

let count_instr prog pred =
  Prog.fold_funcs prog
    (fun acc fn ->
      let c = ref 0 in
      Prog.iter_instrs fn (fun i -> if pred i then incr c);
      acc + !c)
    0

let test_cpi_marks () =
  let b = build P.Cpi fptr_prog in
  let safefull =
    count_instr b.P.prog (fun i ->
        match i with
        | I.Load { where = I.SafeFull; _ } | I.Store { where = I.SafeFull; _ } -> true
        | _ -> false)
  in
  let checked =
    count_instr b.P.prog (fun i ->
        match i with
        | I.Load { checked = true; _ } | I.Store { checked = true; _ } -> true
        | _ -> false)
  in
  Alcotest.(check bool) "fptr table accesses instrumented" true (safefull > 0);
  Alcotest.(check bool) "derefs checked" true (checked > 0);
  (* plain int array accesses stay uninstrumented *)
  let total = (Stats.collect b.P.prog).Stats.mem_ops_total in
  Alcotest.(check bool) "selective (< half of mem ops)" true (safefull * 2 < total)

let test_cps_marks () =
  let b = build P.Cps fptr_prog in
  let safeval =
    count_instr b.P.prog (fun i ->
        match i with
        | I.Load { where = I.SafeValue; _ } | I.Store { where = I.SafeValue; _ } -> true
        | _ -> false)
  in
  let checked =
    count_instr b.P.prog (fun i ->
        match i with
        | I.Load { checked = true; _ } | I.Store { checked = true; _ } -> true
        | _ -> false)
  in
  Alcotest.(check bool) "code ptr accesses via SafeValue" true (safeval > 0);
  Alcotest.(check int) "CPS needs no checks" 0 checked

let test_cps_subset_of_cpi () =
  (* MOCPS <= MOCPI on every program (Table 2's key premise) *)
  List.iter
    (fun (w : Levee_workloads.Workload.t) ->
      let prog = Levee_workloads.Workload.compile w in
      let cps = (P.build P.Cps prog).P.stats in
      let cpi = (P.build P.Cpi prog).P.stats in
      Alcotest.(check bool)
        (w.Levee_workloads.Workload.name ^ ": MOCPS <= MOCPI") true
        (Stats.mo_instrumented cps <= Stats.mo_instrumented cpi +. 1e-9))
    [ Levee_workloads.Spec.find "400.perlbench";
      Levee_workloads.Spec.find "471.omnetpp";
      Levee_workloads.Spec.find "403.gcc" ]

let test_softbound_marks () =
  let b = build P.Softbound fptr_prog in
  let stats = Stats.collect b.P.prog in
  Alcotest.(check int) "all mem ops checked" stats.Stats.mem_ops_total
    stats.Stats.mem_ops_checked

let test_safestack_slots () =
  let b = build P.Safe_stack {|
int consume(int *p) { return p[0]; }
int main() {
  int scalar = 3;
  int buf[8];
  buf[0] = scalar;
  return consume(buf) + scalar;
}
|}
  in
  let safe = count_instr b.P.prog (fun i ->
      match i with I.Alloca { slot = I.SafeSlot; _ } -> true | _ -> false)
  in
  let unsafe = count_instr b.P.prog (fun i ->
      match i with I.Alloca { slot = I.UnsafeSlot; _ } -> true | _ -> false)
  in
  Alcotest.(check bool) "has safe slots" true (safe > 0);
  Alcotest.(check bool) "has unsafe slots" true (unsafe > 0)

let test_cookie_pass () =
  let b = build P.Cookies {|
int with_buf() { char b[8]; gets(b); return b[0]; }
int no_buf(int x) { return x + 1; }
int main() { return no_buf(with_buf()); }
|}
  in
  Alcotest.(check bool) "buffer function guarded" true
    (Prog.find_func b.P.prog "with_buf").Prog.cookie;
  Alcotest.(check bool) "scalar function unguarded" false
    (Prog.find_func b.P.prog "no_buf").Prog.cookie

let test_cfi_pass () =
  let b = build P.Cfi fptr_prog in
  let marked = count_instr b.P.prog (fun i ->
      match i with I.Call { callee = I.Indirect _; cfi_checked; _ } -> cfi_checked
                 | _ -> false)
  in
  Alcotest.(check bool) "indirect calls marked" true (marked > 0)

let test_pipeline_verifies_all () =
  let prog = Levee_minic.Lower.compile fptr_prog in
  List.iter
    (fun prot ->
      let b = P.build prot prog in
      match Levee_ir.Verify.program_result b.P.prog with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s: %s" (P.protection_name prot) e)
    P.all_protections

let test_behaviour_preserved () =
  (* all protections preserve the behaviour of a benign program *)
  let prog = Levee_minic.Lower.compile fptr_prog in
  let expect =
    let b = P.build P.Vanilla prog in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.outcome
  in
  List.iter
    (fun prot ->
      let b = P.build prot prog in
      let r = M.Interp.run_program b.P.prog b.P.config in
      Alcotest.(check bool)
        (P.protection_name prot ^ " behaves identically") true
        (r.M.Interp.outcome = expect))
    P.all_protections

let test_annotated_data_protection () =
  (* the struct-ucred use case: protect annotated plain data against an
     arbitrary-write corruption (Section 4, "sensitive data protection") *)
  let src = {|
sensitive struct ucred { int uid; int gid; };
char gbuf[8];
struct ucred cred;
int main() {
  cred.uid = 1000;
  gets(gbuf);               // overflows into cred in the regular region
  if (cred.uid == 0) { system("rootshell"); }
  return cred.uid == 1000 ? 0 : 1;
}
|}
  in
  let prog = Levee_minic.Lower.compile src in
  let checked, _ = Levee_minic.Lower.compile_checked src in
  let annotated = checked.Levee_minic.Typecheck.sensitive_structs in
  (* attacker overflows gbuf to set uid = 0 *)
  let dist =
    let vanilla = P.build P.Vanilla prog in
    let img = M.Loader.load vanilla.P.prog vanilla.P.config in
    Hashtbl.find img.M.Loader.global_addr "cred"
    - Hashtbl.find img.M.Loader.global_addr "gbuf"
  in
  let payload = Array.make (dist + 1) 0 in
  let outcome prot =
    let b = P.build ~annotated prot prog in
    (M.Interp.run_program ~input:payload b.P.prog b.P.config).M.Interp.outcome
  in
  (match outcome P.Vanilla with
   | M.Trap.Hijacked _ -> ()
   | o -> Alcotest.failf "vanilla uid corruption: %s" (M.Trap.outcome_to_string o));
  match outcome P.Cpi with
  | M.Trap.Exit 0 -> ()
  | o -> Alcotest.failf "cpi should keep uid intact: %s" (M.Trap.outcome_to_string o)

let test_stats_fields () =
  let b = build P.Cpi fptr_prog in
  let s = b.P.stats in
  Alcotest.(check bool) "funcs counted" true (s.Stats.funcs_total >= 3);
  Alcotest.(check bool) "fnustack fraction in range" true
    (Stats.fnustack s >= 0.0 && Stats.fnustack s <= 1.0);
  Alcotest.(check bool) "mo fraction in range" true
    (Stats.mo_instrumented s > 0.0 && Stats.mo_instrumented s < 1.0)

(* ---------- redundant-check elision ---------- *)

module Checkelim = Levee_core.Checkelim_pass
module V = Levee_ir.Verify

(* compare e->cb against null, then call through it: the second load of
   e->cb re-checks an address whose check already executed on every path,
   with no store/call in between — the textbook elidable check *)
let elidable_prog = {|
struct ev { int (*cb)(int); int armed; };
int inc(int x) { return x + 1; }
struct ev g;
int fire(struct ev *e, int x) {
  if (e->cb != 0) { return e->cb(x); }
  return 0;
}
int main() { g.cb = inc; print_int(fire(&g, 5)); return 0; }
|}

let test_elision_fires_and_counts () =
  let prog = Levee_minic.Lower.compile elidable_prog in
  let on = P.build ~elide:true P.Cpi prog in
  let off = P.build ~elide:false P.Cpi prog in
  Alcotest.(check bool) "at least one check elided" true
    (on.P.stats.Stats.checks_elided > 0);
  Alcotest.(check int) "elide:false reports zero" 0
    off.P.stats.Stats.checks_elided;
  let checked prog =
    count_instr prog (fun i ->
        match i with
        | I.Load { checked = true; _ } | I.Store { checked = true; _ } -> true
        | _ -> false)
  in
  Alcotest.(check int) "each cert removes exactly one runtime check"
    (checked off.P.prog - on.P.stats.Stats.checks_elided)
    (checked on.P.prog)

let test_elision_certs_validate () =
  (* replay the pass by hand on an un-elided build: every certificate it
     emits must survive the independent checker *)
  let b = P.build ~elide:false P.Cpi (Levee_minic.Lower.compile elidable_prog) in
  let certs = Checkelim.run b.P.prog in
  Alcotest.(check bool) "pass emits certificates" true (certs <> []);
  (match V.check_elision b.P.prog certs with
   | Ok () -> ()
   | Error m -> Alcotest.failf "checker rejected the pass's own certs: %s" m)

let test_elision_bogus_cert_rejected () =
  let b = P.build ~elide:false P.Cpi (Levee_minic.Lower.compile elidable_prog) in
  let rejected c =
    match V.check_elision b.P.prog [ c ] with
    | Ok () -> false
    | Error _ -> true
  in
  Alcotest.(check bool) "out-of-range block" true
    (rejected { V.ce_func = "main"; ce_block = 999; ce_idx = 0 });
  (* b0.0 of main is an alloca/plain instr, not an unchecked access *)
  Alcotest.(check bool) "non-access position" true
    (rejected { V.ce_func = "main"; ce_block = 0; ce_idx = 0 })

let test_elision_behaviour_identical () =
  let prog = Levee_minic.Lower.compile elidable_prog in
  let run b = M.Interp.run_program ~fuel:1_000_000 b.P.prog b.P.config in
  let on = run (P.build ~elide:true P.Cpi prog) in
  let off = run (P.build ~elide:false P.Cpi prog) in
  Alcotest.(check bool) "same outcome" true
    (on.M.Interp.outcome = off.M.Interp.outcome);
  Alcotest.(check string) "same output" off.M.Interp.output on.M.Interp.output;
  Alcotest.(check bool) "elision saves cycles" true
    (on.M.Interp.cycles < off.M.Interp.cycles)

let () =
  Alcotest.run "passes"
    [ ("cpi",
       [ t "marks sensitive ops" test_cpi_marks;
         t "annotated data protection" test_annotated_data_protection ]);
      ("cps",
       [ t "marks code pointers only" test_cps_marks;
         t "subset of CPI" test_cps_subset_of_cpi ]);
      ("baselines",
       [ t "softbound checks everything" test_softbound_marks;
         t "safestack slot partition" test_safestack_slots;
         t "cookies on buffer functions" test_cookie_pass;
         t "cfi marks indirect calls" test_cfi_pass ]);
      ("pipeline",
       [ t "verifier passes for all protections" test_pipeline_verifies_all;
         t "behaviour preserved" test_behaviour_preserved;
         t "statistics" test_stats_fields ]);
      ("elision",
       [ t "fires and is counted" test_elision_fires_and_counts;
         t "certificates validate" test_elision_certs_validate;
         t "bogus certificates rejected" test_elision_bogus_cert_rejected;
         t "behaviour identical, cycles saved" test_elision_behaviour_identical ]) ]
