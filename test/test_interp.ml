(* Interpreter semantics tests: traps, diversion decoding, cost model
   behaviour and memory accounting — the parts not covered by the
   language-feature tests. *)

open Helpers
module M = Levee_machine
module P = Levee_core.Pipeline

let t name f = Alcotest.test_case name `Quick f

let check_trap ?protection ?input src pred name =
  match outcome_of ?protection ?input src with
  | M.Trap.Trapped tr when pred tr -> ()
  | o -> Alcotest.failf "%s: got %s" name (M.Trap.outcome_to_string o)

let test_div_by_zero () =
  check_trap "int main() { int z = 0; return 5 / z; }"
    (function M.Trap.Division_by_zero -> true | _ -> false)
    "div by zero";
  check_trap "int main() { int z = 0; return 5 % z; }"
    (function M.Trap.Division_by_zero -> true | _ -> false)
    "mod by zero"

let test_null_deref () =
  (match outcome_of "int main() { int *p = 0; return *p; }" with
   | M.Trap.Crash _ -> ()
   | o -> Alcotest.failf "null deref: %s" (M.Trap.outcome_to_string o));
  match outcome_of "int main() { int *p = 0; *p = 1; return 0; }" with
  | M.Trap.Crash _ -> ()
  | o -> Alcotest.failf "null write: %s" (M.Trap.outcome_to_string o)

let test_fuel () =
  let r = run ~fuel:1000 "int main() { while (1) { } return 0; }" in
  Alcotest.check outcome_testable "fuel" M.Trap.Fuel_exhausted r.M.Interp.outcome

let test_stack_overflow () =
  match
    outcome_of ~fuel:200_000_000
      {|int boom(int n) { int pad[2048]; pad[0] = n; return boom(n + 1) + pad[0]; }
        int main() { return boom(0); }|}
  with
  | M.Trap.Crash msg when Helpers.contains msg "stack" -> ()
  | o -> Alcotest.failf "stack overflow: %s" (M.Trap.outcome_to_string o)

let test_oom () =
  check_trap
    {|int main() {
        while (1) { int *p = (int*) malloc(65536); p[0] = 1; }
        return 0;
      }|}
    (function M.Trap.Out_of_memory -> true | _ -> false)
    "heap exhaustion"

let test_double_free_traps () =
  check_trap
    {|int main() { int *p = (int*) malloc(4); free(p); free(p); return 0; }|}
    (function M.Trap.Double_free -> true | _ -> false)
    "double free"

let test_use_after_free_cpi () =
  (* A dangling sensitive pointer dereference must be caught by CPI's
     temporal id; vanilla silently reads reused memory. *)
  let src = {|
int target(int x) { return x + 1; }
int other(int x) { return x + 2; }
int main() {
  int (**slot)(int);
  slot = (int (**)(int)) malloc(1);
  *slot = target;
  free((void*) slot);
  // reallocate the same block: same address, new object
  int (**slot2)(int) = (int (**)(int)) malloc(1);
  *slot2 = other;
  return (*slot)(1);   // use after free through the stale pointer
}
|}
  in
  (match outcome_of ~protection:P.Cpi src with
   | M.Trap.Trapped M.Trap.Temporal_violation -> ()
   | o -> Alcotest.failf "cpi UAF: %s" (M.Trap.outcome_to_string o));
  (* vanilla executes the *wrong* function without noticing *)
  match outcome_of ~protection:P.Vanilla src with
  | M.Trap.Exit 3 -> ()
  | o -> Alcotest.failf "vanilla UAF: %s" (M.Trap.outcome_to_string o)

let test_oob_read_is_silent_vanilla () =
  (* out-of-bounds reads of non-sensitive data are not CPI's business *)
  let src =
    {|int main() { int a[4]; int b[4]; a[0] = 0; b[0] = 9; return a[5] < 99; }|}
  in
  Alcotest.(check int) "vanilla" 1 (exit_code (run ~protection:P.Vanilla src));
  Alcotest.(check int) "cpi ignores non-sensitive oob" 1
    (exit_code (run ~protection:P.Cpi src));
  (* ... but full memory safety traps it *)
  match outcome_of ~protection:P.Softbound src with
  | M.Trap.Trapped (M.Trap.Bounds_violation _) -> ()
  | o -> Alcotest.failf "softbound oob: %s" (M.Trap.outcome_to_string o)

let test_debug_mode_mirror () =
  (* CPI debug mode keeps both copies; a benign program runs identically *)
  let src = {|
int inc(int x) { return x + 1; }
int main() {
  int (*f)(int) = inc;
  int (*g[2])(int);
  g[0] = f;
  return g[0](41);
}
|}
  in
  Alcotest.(check int) "debug mode" 42 (exit_code (run ~protection:P.Cpi_debug src))

let test_costs_monotone () =
  let src = Helpers.compile "int main() { int i; int s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i; } checksum(s); return 0; }" in
  let cycles prot =
    let b = P.build prot src in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.cycles
  in
  let v = cycles P.Vanilla in
  Alcotest.(check bool) "positive" true (v > 0);
  Alcotest.(check bool) "softbound costs more" true (cycles P.Softbound > v)

let test_sfi_isolation_cost () =
  let prog = Helpers.compile
      "int main() { int a[64]; int i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } return a[63] - 63; }"
  in
  let cycles isolation =
    let b = P.build ~isolation P.Cpi prog in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.cycles
  in
  let seg = cycles M.Config.Segments in
  let sfi = cycles M.Config.Sfi in
  Alcotest.(check bool) "SFI strictly more expensive" true (sfi > seg);
  (* the paper reports the SFI variant stays under ~5% extra *)
  Alcotest.(check bool) "SFI under 8%" true
    (float_of_int (sfi - seg) /. float_of_int seg < 0.08)

let test_store_impl_costs () =
  let prog =
    Helpers.compile
      {|int f1(int x) { return x + 1; }
        int (*tbl[4])(int) = { f1, f1, f1, f1 };
        int main() { int i; int s = 0;
          for (i = 0; i < 200; i = i + 1) { s = s + tbl[i & 3](i); }
          return s & 127; }|}
  in
  let cycles impl =
    let b = P.build ~store_impl:impl P.Cpi prog in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.cycles
  in
  Alcotest.(check bool) "array fastest, hashtable slowest" true
    (cycles M.Safestore.Simple_array < cycles M.Safestore.Hashtable)

let test_memory_accounting () =
  let prog = Helpers.compile
      {|int h(int x) { return x; }
        int (*fp)(int) = h;
        int main() { int i; int s = 0;
          for (i = 0; i < 10; i = i + 1) { s = s + fp(i); }
          return s & 1; }|}
  in
  let b = P.build P.Cpi prog in
  let r = M.Interp.run_program b.P.prog b.P.config in
  Alcotest.(check bool) "safe store used" true (r.M.Interp.store_footprint > 0);
  let bv = P.build P.Vanilla prog in
  let rv = M.Interp.run_program bv.P.prog bv.P.config in
  Alcotest.(check int) "vanilla store empty" 0 rv.M.Interp.store_footprint

let test_output_capture () =
  let out =
    output
      {|int main() { print_int(42); print_str("done"); print_int(-1); return 0; }|}
  in
  Alcotest.(check string) "stdout" "42\ndone\n-1\n" out

let () =
  Alcotest.run "interp"
    [ ("traps",
       [ t "division by zero" test_div_by_zero;
         t "null dereference" test_null_deref;
         t "fuel exhaustion" test_fuel;
         t "stack overflow" test_stack_overflow;
         t "heap exhaustion" test_oom;
         t "double free" test_double_free_traps ]);
      ("memory safety semantics",
       [ t "use-after-free under CPI" test_use_after_free_cpi;
         t "non-sensitive OOB ignored by CPI" test_oob_read_is_silent_vanilla;
         t "debug mode mirrors" test_debug_mode_mirror ]);
      ("cost model",
       [ t "monotone" test_costs_monotone;
         t "SFI isolation cost" test_sfi_isolation_cost;
         t "store organisations" test_store_impl_costs;
         t "memory accounting" test_memory_accounting ]);
      ("io", [ t "output capture" test_output_capture ]) ]
