(* Interpreter semantics tests: traps, diversion decoding, cost model
   behaviour and memory accounting — the parts not covered by the
   language-feature tests. *)

open Helpers
module M = Levee_machine
module P = Levee_core.Pipeline

let t name f = Alcotest.test_case name `Quick f

let check_trap ?protection ?input src pred name =
  match outcome_of ?protection ?input src with
  | M.Trap.Trapped tr when pred tr -> ()
  | o -> Alcotest.failf "%s: got %s" name (M.Trap.outcome_to_string o)

let test_div_by_zero () =
  check_trap "int main() { int z = 0; return 5 / z; }"
    (function M.Trap.Division_by_zero -> true | _ -> false)
    "div by zero";
  check_trap "int main() { int z = 0; return 5 % z; }"
    (function M.Trap.Division_by_zero -> true | _ -> false)
    "mod by zero"

let test_null_deref () =
  (match outcome_of "int main() { int *p = 0; return *p; }" with
   | M.Trap.Crash _ -> ()
   | o -> Alcotest.failf "null deref: %s" (M.Trap.outcome_to_string o));
  match outcome_of "int main() { int *p = 0; *p = 1; return 0; }" with
  | M.Trap.Crash _ -> ()
  | o -> Alcotest.failf "null write: %s" (M.Trap.outcome_to_string o)

let test_fuel () =
  let r = run ~fuel:1000 "int main() { while (1) { } return 0; }" in
  Alcotest.check outcome_testable "fuel" M.Trap.Fuel_exhausted r.M.Interp.outcome

let test_stack_overflow () =
  match
    outcome_of ~fuel:200_000_000
      {|int boom(int n) { int pad[2048]; pad[0] = n; return boom(n + 1) + pad[0]; }
        int main() { return boom(0); }|}
  with
  | M.Trap.Crash msg when Helpers.contains msg "stack" -> ()
  | o -> Alcotest.failf "stack overflow: %s" (M.Trap.outcome_to_string o)

let test_oom () =
  check_trap
    {|int main() {
        while (1) { int *p = (int*) malloc(65536); p[0] = 1; }
        return 0;
      }|}
    (function M.Trap.Out_of_memory -> true | _ -> false)
    "heap exhaustion"

let test_double_free_traps () =
  check_trap
    {|int main() { int *p = (int*) malloc(4); free(p); free(p); return 0; }|}
    (function M.Trap.Double_free -> true | _ -> false)
    "double free"

let test_use_after_free_cpi () =
  (* A dangling sensitive pointer dereference must be caught by CPI's
     temporal id; vanilla silently reads reused memory. *)
  let src = {|
int target(int x) { return x + 1; }
int other(int x) { return x + 2; }
int main() {
  int (**slot)(int);
  slot = (int (**)(int)) malloc(1);
  *slot = target;
  free((void*) slot);
  // reallocate the same block: same address, new object
  int (**slot2)(int) = (int (**)(int)) malloc(1);
  *slot2 = other;
  return (*slot)(1);   // use after free through the stale pointer
}
|}
  in
  (match outcome_of ~protection:P.Cpi src with
   | M.Trap.Trapped M.Trap.Temporal_violation -> ()
   | o -> Alcotest.failf "cpi UAF: %s" (M.Trap.outcome_to_string o));
  (* vanilla executes the *wrong* function without noticing *)
  match outcome_of ~protection:P.Vanilla src with
  | M.Trap.Exit 3 -> ()
  | o -> Alcotest.failf "vanilla UAF: %s" (M.Trap.outcome_to_string o)

let test_oob_read_is_silent_vanilla () =
  (* out-of-bounds reads of non-sensitive data are not CPI's business *)
  let src =
    {|int main() { int a[4]; int b[4]; a[0] = 0; b[0] = 9; return a[5] < 99; }|}
  in
  Alcotest.(check int) "vanilla" 1 (exit_code (run ~protection:P.Vanilla src));
  Alcotest.(check int) "cpi ignores non-sensitive oob" 1
    (exit_code (run ~protection:P.Cpi src));
  (* ... but full memory safety traps it *)
  match outcome_of ~protection:P.Softbound src with
  | M.Trap.Trapped (M.Trap.Bounds_violation _) -> ()
  | o -> Alcotest.failf "softbound oob: %s" (M.Trap.outcome_to_string o)

let test_debug_mode_mirror () =
  (* CPI debug mode keeps both copies; a benign program runs identically *)
  let src = {|
int inc(int x) { return x + 1; }
int main() {
  int (*f)(int) = inc;
  int (*g[2])(int);
  g[0] = f;
  return g[0](41);
}
|}
  in
  Alcotest.(check int) "debug mode" 42 (exit_code (run ~protection:P.Cpi_debug src))

let test_costs_monotone () =
  let src = Helpers.compile "int main() { int i; int s = 0; for (i = 0; i < 100; i = i + 1) { s = s + i; } checksum(s); return 0; }" in
  let cycles prot =
    let b = P.build prot src in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.cycles
  in
  let v = cycles P.Vanilla in
  Alcotest.(check bool) "positive" true (v > 0);
  Alcotest.(check bool) "softbound costs more" true (cycles P.Softbound > v)

let test_sfi_isolation_cost () =
  let prog = Helpers.compile
      "int main() { int a[64]; int i; for (i = 0; i < 64; i = i + 1) { a[i] = i; } return a[63] - 63; }"
  in
  let cycles isolation =
    let b = P.build ~isolation P.Cpi prog in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.cycles
  in
  let seg = cycles M.Config.Segments in
  let sfi = cycles M.Config.Sfi in
  Alcotest.(check bool) "SFI strictly more expensive" true (sfi > seg);
  (* the paper reports the SFI variant stays under ~5% extra *)
  Alcotest.(check bool) "SFI under 8%" true
    (float_of_int (sfi - seg) /. float_of_int seg < 0.08)

let test_store_impl_costs () =
  let prog =
    Helpers.compile
      {|int f1(int x) { return x + 1; }
        int (*tbl[4])(int) = { f1, f1, f1, f1 };
        int main() { int i; int s = 0;
          for (i = 0; i < 200; i = i + 1) { s = s + tbl[i & 3](i); }
          return s & 127; }|}
  in
  let cycles impl =
    let b = P.build ~store_impl:impl P.Cpi prog in
    (M.Interp.run_program b.P.prog b.P.config).M.Interp.cycles
  in
  Alcotest.(check bool) "array fastest, hashtable slowest" true
    (cycles M.Safestore.Simple_array < cycles M.Safestore.Hashtable)

let test_memory_accounting () =
  let prog = Helpers.compile
      {|int h(int x) { return x; }
        int (*fp)(int) = h;
        int main() { int i; int s = 0;
          for (i = 0; i < 10; i = i + 1) { s = s + fp(i); }
          return s & 1; }|}
  in
  let b = P.build P.Cpi prog in
  let r = M.Interp.run_program b.P.prog b.P.config in
  Alcotest.(check bool) "safe store used" true (r.M.Interp.store_footprint > 0);
  let bv = P.build P.Vanilla prog in
  let rv = M.Interp.run_program bv.P.prog bv.P.config in
  Alcotest.(check int) "vanilla store empty" 0 rv.M.Interp.store_footprint

let test_output_capture () =
  let out =
    output
      {|int main() { print_int(42); print_str("done"); print_int(-1); return 0; }|}
  in
  Alcotest.(check string) "stdout" "42\ndone\n-1\n" out

(* ---- concurrency: the deterministic multithreaded machine ---- *)

(** Like [Helpers.run] but with a scheduler seed. *)
let runc ?(protection = P.Vanilla) ?(sched_seed = 0) ?(fuel = 5_000_000) src =
  let built = P.build protection (Helpers.compile src) in
  M.Interp.run_program ~sched_seed ~fuel built.P.prog built.P.config

let check_crash ?protection ?sched_seed src sub name =
  let r = runc ?protection ?sched_seed src in
  match r.M.Interp.outcome with
  | M.Trap.Crash m when contains m sub -> ()
  | o -> Alcotest.failf "%s: got %s" name (M.Trap.outcome_to_string o)

(* Two workers bump a shared counter 50 times each. With the mutex the
   final count is exactly 100 under every protection and seed; without it
   the lockset detector must report the race. *)
let counter_src ~locked =
  let lock, unlock =
    if locked then "mutex_lock(&lk);", "mutex_unlock(&lk);" else "", ""
  in
  Printf.sprintf
    {|int n; int lk;
      int worker(int w) {
        int i;
        for (i = 0; i < 50; i = i + 1) { %s n = n + 1; %s }
        return w;
      }
      int main() {
        int t1 = thread_spawn(worker, 11);
        int t2 = thread_spawn(worker, 21);
        int a = thread_join(t1);
        int b = thread_join(t2);
        print_int(n);
        return a + b + n;
      }|}
    lock unlock

let test_locked_counter () =
  List.iter
    (fun protection ->
       List.iter
         (fun sched_seed ->
            let r = runc ~protection ~sched_seed (counter_src ~locked:true) in
            Alcotest.(check int) "exit 132" 132 (exit_code r);
            Alcotest.(check string) "count" "100\n" r.M.Interp.output;
            Alcotest.(check int) "no races" 0 r.M.Interp.races;
            Alcotest.(check int) "three threads" 3 r.M.Interp.threads;
            Alcotest.(check bool) "preempted" true
              (r.M.Interp.ctx_switches > 0))
         [ 0; 1; 7 ])
    [ P.Vanilla; P.Cpi ]

let test_unlocked_counter_races () =
  let r = runc (counter_src ~locked:false) in
  (match r.M.Interp.outcome with
   | M.Trap.Exit _ -> ()
   | o -> Alcotest.failf "racy run: %s" (M.Trap.outcome_to_string o));
  Alcotest.(check bool) "race reported" true (r.M.Interp.races > 0);
  Alcotest.(check bool) "report describes shared data" true
    (List.exists (fun s -> contains s "shared-data") r.M.Interp.race_reports)

let test_atomic_add () =
  let src =
    {|int n;
      int worker(int w) {
        int i;
        for (i = 0; i < 50; i = i + 1) { atomic_add(&n, 1); }
        return w;
      }
      int main() {
        int t1 = thread_spawn(worker, 1);
        int t2 = thread_spawn(worker, 2);
        int a = thread_join(t1) + thread_join(t2);
        return n + a;
      }|}
  in
  List.iter
    (fun sched_seed ->
       let r = runc ~sched_seed src in
       Alcotest.(check int) "exact count" 103 (exit_code r);
       Alcotest.(check int) "atomics race-free" 0 r.M.Interp.races)
    [ 0; 3 ]

(* Same seed: byte-identical results. Different seed: same final state
   for a race-free program, but a different interleaving (cycles). *)
let test_sched_determinism () =
  let run seed = runc ~sched_seed:seed (counter_src ~locked:true) in
  let a = run 5 and b = run 5 and c = run 6 in
  Alcotest.(check bool) "same seed identical" true (a = b);
  Alcotest.(check int) "exit stable across seeds" (exit_code a) (exit_code c);
  Alcotest.(check string) "output stable across seeds"
    a.M.Interp.output c.M.Interp.output

let test_deadlock () =
  check_crash
    {|int lk;
      int worker(int w) { mutex_lock(&lk); return w; }
      int main() {
        mutex_lock(&lk);
        int t = thread_spawn(worker, 1);
        return thread_join(t);
      }|}
    "deadlock" "join vs held mutex"

let test_mutex_misuse () =
  check_crash
    "int lk; int main() { mutex_lock(&lk); mutex_lock(&lk); return 0; }"
    "recursive" "recursive lock";
  check_crash "int lk; int main() { mutex_unlock(&lk); return 0; }"
    "not the owner" "unlock unheld"

let test_thread_errors () =
  check_crash "int main() { return thread_join(3); }"
    "invalid thread id" "join of unspawned id";
  check_crash
    {|int worker(int w) {
        int i;
        for (i = 0; i < 1000; i = i + 1) { }
        return w;
      }
      int main() {
        int i;
        for (i = 0; i < 8; i = i + 1) { thread_spawn(worker, i); }
        return 0;
      }|}
    "thread limit" "spawn past the table"

(* thread_spawn through a function-pointer variable: under CPI the target
   must carry code metadata, so a spawned-to pointer is covered by the
   same integrity guarantee as a call. *)
let test_spawn_via_fptr () =
  let src =
    {|int f(int x) { return x + 41; }
      int (*fp)(int) = f;
      int main() {
        int t = thread_spawn(fp, 1);
        return thread_join(t);
      }|}
  in
  Alcotest.(check int) "vanilla" 42 (exit_code (runc src));
  Alcotest.(check int) "cpi" 42 (exit_code (runc ~protection:P.Cpi src))

(* The concurrent webstack workload is race-free and commutative by
   construction: every seed and protection must agree on checksum and
   output, and its thread count and preemptions must show up in the
   result. *)
let test_concurrent_workload () =
  let module W = Levee_workloads in
  let w = W.Webstack.concurrent ~threads:4 in
  let prog = W.Workload.compile w in
  let run protection sched_seed =
    let b = P.build protection prog in
    M.Interp.run_program ~sched_seed ~fuel:w.W.Workload.fuel
      b.P.prog b.P.config
  in
  let r0 = run P.Cpi 0 in
  Alcotest.(check int) "exit 0" 0 (exit_code r0);
  Alcotest.(check int) "threads" 5 r0.M.Interp.threads;
  Alcotest.(check bool) "preempted" true (r0.M.Interp.ctx_switches > 0);
  Alcotest.(check int) "race-free" 0 r0.M.Interp.races;
  let r1 = run P.Cpi 9 and rv = run P.Vanilla 0 in
  Alcotest.(check int) "checksum seed-independent"
    r0.M.Interp.checksum r1.M.Interp.checksum;
  Alcotest.(check string) "output seed-independent"
    r0.M.Interp.output r1.M.Interp.output;
  Alcotest.(check int) "checksum protection-independent"
    r0.M.Interp.checksum rv.M.Interp.checksum

let () =
  Alcotest.run "interp"
    [ ("traps",
       [ t "division by zero" test_div_by_zero;
         t "null dereference" test_null_deref;
         t "fuel exhaustion" test_fuel;
         t "stack overflow" test_stack_overflow;
         t "heap exhaustion" test_oom;
         t "double free" test_double_free_traps ]);
      ("memory safety semantics",
       [ t "use-after-free under CPI" test_use_after_free_cpi;
         t "non-sensitive OOB ignored by CPI" test_oob_read_is_silent_vanilla;
         t "debug mode mirrors" test_debug_mode_mirror ]);
      ("cost model",
       [ t "monotone" test_costs_monotone;
         t "SFI isolation cost" test_sfi_isolation_cost;
         t "store organisations" test_store_impl_costs;
         t "memory accounting" test_memory_accounting ]);
      ("io", [ t "output capture" test_output_capture ]);
      ("threads",
       [ t "locked counter" test_locked_counter;
         t "unlocked counter races" test_unlocked_counter_races;
         t "atomic add" test_atomic_add;
         t "scheduler determinism" test_sched_determinism;
         t "deadlock detection" test_deadlock;
         t "mutex misuse" test_mutex_misuse;
         t "thread errors" test_thread_errors;
         t "spawn via function pointer" test_spawn_via_fptr;
         t "concurrent workload" test_concurrent_workload ]) ]
