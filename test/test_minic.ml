(* Front-end tests: lexer, parser, type checker. *)

module L = Levee_minic.Lexer
module Pa = Levee_minic.Parser
module Tc = Levee_minic.Typecheck
module Ast = Levee_minic.Ast

(* ---------- lexer ---------- *)

let all_tokens src =
  let lx = L.create src in
  let rec go acc =
    match lx.L.tok with
    | L.EOF -> List.rev acc
    | t ->
      L.next lx;
      go (t :: acc)
  in
  go []

let test_lex_basic () =
  let toks = all_tokens "int x = 42; // comment\nx = x + 0x10;" in
  Alcotest.(check int) "token count" 11 (List.length toks);
  (match toks with
   | L.KW "int" :: L.ID "x" :: L.PUNCT "=" :: L.INT 42 :: _ -> ()
   | _ -> Alcotest.fail "unexpected token stream");
  (match List.rev toks with
   | L.PUNCT ";" :: L.INT 16 :: _ -> ()
   | _ -> Alcotest.fail "hex literal not lexed")

let test_lex_strings_chars () =
  (match all_tokens {|"hi\n" 'a' '\0'|} with
   | [ L.STR "hi\n"; L.CHARLIT 'a'; L.CHARLIT '\000' ] -> ()
   | _ -> Alcotest.fail "string/char literals");
  match all_tokens "a->b && c || d << 2 >= e" with
  | [ L.ID "a"; L.PUNCT "->"; L.ID "b"; L.PUNCT "&&"; L.ID "c"; L.PUNCT "||";
      L.ID "d"; L.PUNCT "<<"; L.INT 2; L.PUNCT ">="; L.ID "e" ] -> ()
  | _ -> Alcotest.fail "multi-char punctuation"

let test_lex_block_comment () =
  match all_tokens ("a /" ^ "* stuff \n more *" ^ "/ b") with
  | [ L.ID "a"; L.ID "b" ] -> ()
  | _ -> Alcotest.fail "block comment not skipped"

let test_lex_errors () =
  (try
     ignore (all_tokens "\"unterminated");
     Alcotest.fail "accepted unterminated string"
   with L.Lex_error _ -> ());
  try
    ignore (all_tokens "/* never closed");
    Alcotest.fail "accepted unterminated comment"
  with L.Lex_error _ -> ()

(* ---------- parser ---------- *)

let parses src = ignore (Pa.parse_program_exn src)

let rejects_parse src =
  try
    parses src;
    Alcotest.failf "parser accepted: %s" src
  with Failure _ -> ()

let test_parse_declarators () =
  parses "int x; char *s; void *p; int arr[10]; int m[4][4];";
  parses "int (*fp)(int, int);";
  parses "int (*table[8])(int);";
  parses "int (**pp)(int);";
  parses "struct s { int a; struct s *next; int (*h)(int); };";
  parses "struct s; struct s *g;";
  parses "int f(int a, char *b, int (*cb)(int)) { return a; }";
  parses "struct node { int d; }; struct node *mk(int d) { return 0; }"

let test_parse_expressions () =
  parses {|int main() { int x; x = 1 + 2 * 3 - -4; x = (1 + 2) * 3; return x; }|};
  parses {|int main() { int a[4]; return a[1] + a[2 + 1]; }|};
  parses {|int main() { return 1 < 2 && 3 != 4 || !(5 >= 6); }|};
  parses {|int main() { int x = 5; return x > 0 ? x : -x; }|};
  parses {|struct s { int x; };
           int main() { return sizeof(int) + sizeof(struct s*) + sizeof(int(*)(int)); }|};
  parses {|int main() { int *p; p = (int*) malloc(4); *p = 1; return p[0]; }|}

let test_parse_statements () =
  parses {|int main() {
    int i; int s = 0;
    for (i = 0; i < 10; i = i + 1) { s = s + i; if (s > 20) { break; } }
    while (s > 0) { s = s - 3; if (s == 9) { continue; } }
    do { s = s + 1; } while (s < 0);
    return s;
  }|};
  parses {|int main() { int a, b = 2, c; a = b; c = a + b; return c; }|}

let test_parse_globals () =
  parses {|int g = 5;
           char msg[16] = "hello";
           int tbl[4] = {1, 2, 3, 4};
           int helper(int x) { return x; }
           int (*fp)(int) = helper;
           struct pair { int a; int b; };
           struct pair origin = {0, 0};
           int main() { return g + fp(1); }|}

let test_parse_rejects () =
  rejects_parse "int main() { return 1 }";
  rejects_parse "int main() { if 1 { } }";
  rejects_parse "int = 5;";
  rejects_parse "int main() { int a[]; return 0; }";
  rejects_parse "struct { int x; };"

let test_sensitive_annotation () =
  let ast =
    Pa.parse_program_exn
      {|sensitive struct ucred { int uid; int gid; };
        struct other { int x; };
        int main() { return 0; }|}
  in
  Alcotest.(check (list string)) "annotated" [ "ucred" ] (Ast.sensitive_structs ast)

(* ---------- type checker ---------- *)

let checks src = ignore (Tc.check_program (Pa.parse_program_exn src))

let rejects_type src =
  try
    checks src;
    Alcotest.failf "typechecker accepted: %s" src
  with Tc.Type_error _ -> ()

let test_types_ok () =
  checks {|int add(int a, int b) { return a + b; }
           int main() {
             int (*f)(int, int) = add;
             int x = f(1, 2);
             void *p = (void*) &x;
             int *q = (int*) p;
             return *q + x;
           }|};
  checks {|struct node { int v; struct node *next; };
           int main() {
             struct node n;
             struct node *p = &n;
             n.v = 1;
             p->next = 0;
             return p->v;
           }|};
  checks {|int main() { char *s = "abc"; return strlen(s) + strcmp(s, "abc"); }|};
  checks {|int main() { int a[8]; int *p = a; return p[3] + *(a + 2); }|}

let test_types_rejected () =
  rejects_type {|int main() { return x; }|};
  rejects_type {|int main() { int x; x = "str"; return 0; }|};
  rejects_type {|int main() { int x; return x(); }|};
  rejects_type {|int main() { void *p; return *p; }|};
  rejects_type {|int f(int a) { return a; } int main() { return f(1, 2); }|};
  rejects_type {|int f(int a) { return a; } int main() { return f("s"); }|};
  rejects_type {|int main() { struct nope n; return 0; }|};
  rejects_type {|int main() { int a[4]; a = 0; return 0; }|};
  rejects_type
    {|struct s { int x; };
      int main() { struct s a; struct s b; a = b; return 0; }|};
  rejects_type {|void f() { return 1; } int main() { return 0; }|};
  rejects_type {|int f() { return; } int main() { return 0; }|};
  rejects_type {|int main() { int x; int x; return 0; }|}

let test_types_fnptr_mismatch () =
  rejects_type
    {|int add(int a, int b) { return a + b; }
      int main() { int (*f)(int) = 0; f = add; return f(1); }|}

let test_implicit_conversions () =
  checks {|int main() { char c = 65; int x = c; c = x; return c; }|};
  checks {|int main() { int *p = 0; return p == 0; }|};
  checks {|int main() { void *v = malloc(4); char *c = v; return c == 0; }|}

let () =
  Alcotest.run "minic"
    [ ("lexer",
       [ Alcotest.test_case "basic tokens" `Quick test_lex_basic;
         Alcotest.test_case "strings and chars" `Quick test_lex_strings_chars;
         Alcotest.test_case "block comments" `Quick test_lex_block_comment;
         Alcotest.test_case "errors" `Quick test_lex_errors ]);
      ("parser",
       [ Alcotest.test_case "declarators" `Quick test_parse_declarators;
         Alcotest.test_case "expressions" `Quick test_parse_expressions;
         Alcotest.test_case "statements" `Quick test_parse_statements;
         Alcotest.test_case "globals" `Quick test_parse_globals;
         Alcotest.test_case "rejects" `Quick test_parse_rejects;
         Alcotest.test_case "sensitive annotation" `Quick test_sensitive_annotation ]);
      ("typecheck",
       [ Alcotest.test_case "accepts valid" `Quick test_types_ok;
         Alcotest.test_case "rejects invalid" `Quick test_types_rejected;
         Alcotest.test_case "fn ptr mismatch" `Quick test_types_fnptr_mismatch;
         Alcotest.test_case "implicit conversions" `Quick test_implicit_conversions ]) ]
