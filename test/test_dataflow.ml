(* Unit tests for the reusable dataflow substrate (lib/analysis/dataflow):
   CFG construction, iterative dominators and the forward worklist solver,
   exercised on hand-built graphs — including an irreducible loop that
   MiniC lowering can never produce. *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module D = Levee_analysis.Dataflow

let t name f = Alcotest.test_case name `Quick f

let blk bid term = { Prog.bid; instrs = [||]; term }

let func blocks =
  { Prog.fname = "synthetic"; params = []; ret_ty = Ty.Int;
    blocks = Array.of_list blocks; nregs = 1; reg_ty = Hashtbl.create 4;
    cookie = false; address_taken = false }

let ret = I.Ret (Some (I.Imm 0))
let cond = I.Reg 0

(* 0 -> {1,2} -> 3: the classic diamond *)
let diamond () =
  func [ blk 0 (I.Br (cond, 1, 2)); blk 1 (I.Jmp 3); blk 2 (I.Jmp 3);
         blk 3 ret ]

(* 0 -> 1 <-> 2, 1 -> 3: a reducible while loop *)
let while_loop () =
  func [ blk 0 (I.Jmp 1); blk 1 (I.Br (cond, 2, 3)); blk 2 (I.Jmp 1);
         blk 3 ret ]

(* 0 branches into BOTH of {1, 2}, which form a cycle with each other:
   a two-entry (irreducible) loop. No single loop header dominates the
   cycle, so naive interval/structural analyses are off the table; the
   iterative dominator algorithm and the worklist solver must still
   converge. *)
let irreducible () =
  func [ blk 0 (I.Br (cond, 1, 2)); blk 1 (I.Br (cond, 2, 3));
         blk 2 (I.Jmp 1); blk 3 ret ]

(* block 2 is unreachable *)
let with_dead_block () =
  func [ blk 0 (I.Jmp 1); blk 1 ret; blk 2 (I.Jmp 1) ]

let sorted = List.sort_uniq compare

let test_successors () =
  Alcotest.(check (list int)) "jmp" [ 4 ] (D.successors (I.Jmp 4));
  Alcotest.(check (list int)) "ret" [] (D.successors ret);
  Alcotest.(check (list int)) "unreachable" [] (D.successors I.Unreachable);
  Alcotest.(check (list int)) "br dedups equal arms" [ 3 ]
    (sorted (D.successors (I.Br (cond, 3, 3))));
  Alcotest.(check (list int)) "switch dedups" [ 1; 2 ]
    (sorted (D.successors (I.Switch (cond, [ (0, 1); (5, 2); (9, 1) ], 2))))

let test_cfg_edges () =
  let cfg = D.build (diamond ()) in
  Alcotest.(check int) "nblocks" 4 cfg.D.nblocks;
  Alcotest.(check (list int)) "succs 0" [ 1; 2 ] (sorted cfg.D.succs.(0));
  Alcotest.(check (list int)) "preds 3" [ 1; 2 ] (sorted cfg.D.preds.(3));
  Alcotest.(check (list int)) "preds 0" [] cfg.D.preds.(0);
  (* rpo visits the entry first and every reachable block exactly once *)
  Alcotest.(check int) "rpo head" 0 cfg.D.rpo.(0);
  Alcotest.(check (list int)) "rpo covers graph" [ 0; 1; 2; 3 ]
    (sorted (Array.to_list cfg.D.rpo));
  Array.iteri
    (fun pos b ->
      Alcotest.(check int) "rpo_index inverts rpo" pos cfg.D.rpo_index.(b))
    cfg.D.rpo

let test_cfg_dead_block () =
  let cfg = D.build (with_dead_block ()) in
  Alcotest.(check (list int)) "dead block not in rpo" [ 0; 1 ]
    (sorted (Array.to_list cfg.D.rpo));
  Alcotest.(check int) "dead rpo_index" (-1) cfg.D.rpo_index.(2);
  let idom = D.dominators cfg in
  Alcotest.(check int) "dead idom" (-1) idom.(2)

let test_dominators_diamond () =
  let cfg = D.build (diamond ()) in
  let idom = D.dominators cfg in
  Alcotest.(check int) "entry self" 0 idom.(0);
  Alcotest.(check int) "idom 1" 0 idom.(1);
  Alcotest.(check int) "idom 2" 0 idom.(2);
  (* the join is dominated by the entry, not by either arm *)
  Alcotest.(check int) "idom 3" 0 idom.(3);
  Alcotest.(check bool) "0 dom 3" true (D.dominates idom 0 3);
  Alcotest.(check bool) "1 !dom 3" false (D.dominates idom 1 3);
  Alcotest.(check bool) "reflexive" true (D.dominates idom 2 2)

let test_dominators_loop () =
  let cfg = D.build (while_loop ()) in
  let idom = D.dominators cfg in
  Alcotest.(check int) "header idom" 0 idom.(1);
  Alcotest.(check int) "body idom" 1 idom.(2);
  Alcotest.(check int) "exit idom" 1 idom.(3);
  Alcotest.(check bool) "header dom body" true (D.dominates idom 1 2);
  Alcotest.(check bool) "body !dom header" false (D.dominates idom 2 1)

let test_dominators_irreducible () =
  let cfg = D.build (irreducible ()) in
  let idom = D.dominators cfg in
  (* neither cycle entry dominates the other: both hang off the branch *)
  Alcotest.(check int) "idom 1" 0 idom.(1);
  Alcotest.(check int) "idom 2" 0 idom.(2);
  Alcotest.(check bool) "1 !dom 2" false (D.dominates idom 1 2);
  Alcotest.(check bool) "2 !dom 1" false (D.dominates idom 2 1);
  (* the exit is only reachable through block 1 *)
  Alcotest.(check int) "idom 3" 1 idom.(3)

(* Path-set analysis: the entry state of a block is the set of block ids
   appearing on some path from the entry to it. Set union is a proper
   join-semilattice, so the solver must reach the unique least fixpoint
   on every graph — including the irreducible one. *)
let path_sets fn =
  let cfg = D.build fn in
  let states =
    D.solve cfg ~entry:[ ] ~bottom:[] ~join:(fun a b -> sorted (a @ b))
      ~equal:(fun a b -> a = b)
      ~transfer:(fun b s -> sorted (b :: s))
  in
  (cfg, states)

let test_solver_diamond () =
  let _, states = path_sets (diamond ()) in
  Alcotest.(check (list int)) "entry has no predecessors" [] states.(0);
  Alcotest.(check (list int)) "then-arm sees entry" [ 0 ] states.(1);
  (* the join merges both arms *)
  Alcotest.(check (list int)) "join sees both arms" [ 0; 1; 2 ] states.(3)

let test_solver_loop_converges () =
  let _, states = path_sets (while_loop ()) in
  (* the back edge feeds the body into the header's own entry state *)
  Alcotest.(check (list int)) "header absorbs back edge" [ 0; 1; 2 ] states.(1);
  Alcotest.(check (list int)) "exit" [ 0; 1; 2 ] states.(3)

let test_solver_irreducible_converges () =
  let _, states = path_sets (irreducible ()) in
  (* both cycle entries end up seeing the whole cycle plus the entry *)
  Alcotest.(check (list int)) "cycle entry 1" [ 0; 1; 2 ] states.(1);
  Alcotest.(check (list int)) "cycle entry 2" [ 0; 1; 2 ] states.(2);
  Alcotest.(check (list int)) "exit" [ 0; 1; 2 ] states.(3)

let test_solver_dead_block_stays_bottom () =
  let _, states = path_sets (with_dead_block ()) in
  Alcotest.(check (list int)) "reachable" [ 0 ] states.(1);
  Alcotest.(check (list int)) "unreachable keeps bottom" [] states.(2)

(* The solver on a lowered MiniC function must agree with a naive
   round-robin iteration to fixpoint — a differential check that the
   worklist bookkeeping loses no propagation. *)
let test_solver_matches_naive () =
  let prog =
    Levee_minic.Lower.compile
      {|int main() {
          int i; int s; s = 0;
          for (i = 0; i < 10; i = i + 1) {
            if (i - (i / 2) * 2) { s = s + i; } else { s = s - 1; }
          }
          return s;
        }|}
  in
  let fn = Prog.find_func prog "main" in
  let cfg = D.build fn in
  let join a b = sorted (a @ b) in
  let transfer b s = sorted (b :: s) in
  let got =
    D.solve cfg ~entry:[] ~bottom:[] ~join ~equal:( = ) ~transfer
  in
  (* naive: iterate all blocks until nothing changes *)
  let n = cfg.D.nblocks in
  let state = Array.make n [] in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to n - 1 do
      if cfg.D.rpo_index.(b) >= 0 && b <> 0 then begin
        let inc =
          List.fold_left
            (fun acc p -> join acc (transfer p state.(p)))
            [] cfg.D.preds.(b)
        in
        if inc <> state.(b) then begin
          state.(b) <- inc;
          changed := true
        end
      end
    done
  done;
  Array.iteri
    (fun b s ->
      if cfg.D.rpo_index.(b) >= 0 then
        Alcotest.(check (list int))
          (Printf.sprintf "block %d agrees with naive fixpoint" b)
          state.(b) s)
    got

let () =
  Alcotest.run "dataflow"
    [ ("cfg",
       [ t "terminator successors" test_successors;
         t "edges and rpo" test_cfg_edges;
         t "dead block excluded" test_cfg_dead_block ]);
      ("dominators",
       [ t "diamond" test_dominators_diamond;
         t "while loop" test_dominators_loop;
         t "irreducible two-entry loop" test_dominators_irreducible ]);
      ("solver",
       [ t "diamond join" test_solver_diamond;
         t "loop converges" test_solver_loop_converges;
         t "irreducible converges" test_solver_irreducible_converges;
         t "dead block stays bottom" test_solver_dead_block_stays_bottom;
         t "matches naive fixpoint on lowered code" test_solver_matches_naive ]) ]
