(* Determinism regression: the cost model is fully deterministic, so the
   table1 computation must produce identical cycle counts and identical
   journals whether it runs sequentially or fanned out over domains, and
   across repeated runs. Fuel is clamped so the whole matrix stays cheap;
   fuel-exhausted cells are themselves deterministic. *)

module Engine = Levee_harness.Engine
module Targets = Levee_harness.Targets
module Journal = Levee_support.Journal

let fuel_cap = 150_000

let run_table1 ~jobs =
  let e = Engine.create ~fuel_cap ~jobs () in
  let j = Journal.create ~jobs ~target:"table1" () in
  Engine.set_journal e (Some j);
  Engine.prefetch e (Targets.table1 ());
  Engine.set_journal e None;
  Engine.shutdown e;
  j

let cycles j = List.map (fun (e : Journal.entry) -> e.Journal.cycles) j

let keys j =
  List.map
    (fun (e : Journal.entry) ->
      (e.Journal.workload, e.Journal.protection, e.Journal.store))
    j

let test_determinism () =
  let j1a = run_table1 ~jobs:1 in
  let j1b = run_table1 ~jobs:1 in
  let j4a = run_table1 ~jobs:4 in
  let j4b = run_table1 ~jobs:4 in
  Alcotest.(check bool) "non-empty" true (Journal.entries j1a <> []);
  Alcotest.(check (list int)) "jobs=1 rerun: identical cycles"
    (cycles (Journal.entries j1a))
    (cycles (Journal.entries j1b));
  Alcotest.(check (list int)) "jobs=4 rerun: identical cycles"
    (cycles (Journal.entries j4a))
    (cycles (Journal.entries j4b));
  Alcotest.(check (list int)) "jobs=1 vs jobs=4: identical cycles"
    (cycles (Journal.entries j1a))
    (cycles (Journal.entries j4a));
  Alcotest.(check bool) "jobs=1 journals equal modulo wall-clock" true
    (Journal.equal j1a j1b);
  Alcotest.(check bool) "jobs=1 vs jobs=4 journals equal modulo wall-clock"
    true
    (Journal.equal j1a j4a);
  Alcotest.(check bool) "jobs=4 journals equal modulo wall-clock" true
    (Journal.equal j4a j4b);
  (* same cells, same canonical order, whatever the scheduling did *)
  Alcotest.(check bool) "cell order is canonical" true
    (keys (Journal.entries j1a) = keys (Journal.entries j4a))

(* The journal must also survive a disk round trip unchanged: what a
   future trajectory-comparison job reads equals what this run measured. *)
let test_journal_disk_roundtrip () =
  let j = run_table1 ~jobs:2 in
  let j' = Journal.of_json (Journal.to_json j) in
  Alcotest.(check bool) "parse (to_json j) = j" true
    (Journal.equal ~ignore_wall:false j j')

let () =
  Alcotest.run "determinism"
    [ ( "table1",
        [ Alcotest.test_case "jobs 1 vs 4, run twice" `Quick test_determinism;
          Alcotest.test_case "journal disk round trip" `Quick
            test_journal_disk_roundtrip ] ) ]
