(* Determinism regression: the cost model is fully deterministic, so the
   table1 computation must produce identical cycle counts and identical
   journals whether it runs sequentially or fanned out over domains, and
   across repeated runs. Fuel is clamped so the whole matrix stays cheap;
   fuel-exhausted cells are themselves deterministic. *)

module Engine = Levee_harness.Engine
module Targets = Levee_harness.Targets
module Journal = Levee_support.Journal

let fuel_cap = 150_000

let run_table1 ~jobs =
  let e = Engine.create ~fuel_cap ~jobs () in
  let j = Journal.create ~jobs ~target:"table1" () in
  Engine.set_journal e (Some j);
  Engine.prefetch e (Targets.table1 ());
  Engine.set_journal e None;
  Engine.shutdown e;
  j

let cycles j = List.map (fun (e : Journal.entry) -> e.Journal.cycles) j

let keys j =
  List.map
    (fun (e : Journal.entry) ->
      (e.Journal.workload, e.Journal.protection, e.Journal.store))
    j

let test_determinism () =
  let j1a = run_table1 ~jobs:1 in
  let j1b = run_table1 ~jobs:1 in
  let j4a = run_table1 ~jobs:4 in
  let j4b = run_table1 ~jobs:4 in
  Alcotest.(check bool) "non-empty" true (Journal.entries j1a <> []);
  Alcotest.(check (list int)) "jobs=1 rerun: identical cycles"
    (cycles (Journal.entries j1a))
    (cycles (Journal.entries j1b));
  Alcotest.(check (list int)) "jobs=4 rerun: identical cycles"
    (cycles (Journal.entries j4a))
    (cycles (Journal.entries j4b));
  Alcotest.(check (list int)) "jobs=1 vs jobs=4: identical cycles"
    (cycles (Journal.entries j1a))
    (cycles (Journal.entries j4a));
  Alcotest.(check bool) "jobs=1 journals equal modulo wall-clock" true
    (Journal.equal j1a j1b);
  Alcotest.(check bool) "jobs=1 vs jobs=4 journals equal modulo wall-clock"
    true
    (Journal.equal j1a j4a);
  Alcotest.(check bool) "jobs=4 journals equal modulo wall-clock" true
    (Journal.equal j4a j4b);
  (* same cells, same canonical order, whatever the scheduling did *)
  Alcotest.(check bool) "cell order is canonical" true
    (keys (Journal.entries j1a) = keys (Journal.entries j4a))

(* The journal must also survive a disk round trip unchanged: what a
   future trajectory-comparison job reads equals what this run measured. *)
let test_journal_disk_roundtrip () =
  let j = run_table1 ~jobs:2 in
  let j' = Journal.of_json (Journal.to_json j) in
  Alcotest.(check bool) "parse (to_json j) = j" true
    (Journal.equal ~ignore_wall:false j j')

(* ---------- Golden values ----------

   The tables below were captured from the seed interpreter (the
   pre-decode-once tree) and pin the simulation down to absolute values:
   cycles, instructions, memory operations, safe-store accesses, the
   output checksum, an MD5 of the program output, and the outcome string.
   The decode-once interpreter, the page-cached memory, and any future
   perf work must reproduce every row bit-for-bit — only host wall-clock
   is allowed to change. Row format:

     (workload, protection, store,
      cycles, instrs, mem_ops, store_accesses, checksum, output_md5, outcome)
*)

module P = Levee_core.Pipeline
module W = Levee_workloads
module M = Levee_machine

type golden_row =
  string * string * string * int * int * int * int * int * string * string

(* W.Spec.all x (vanilla, safestack, cps, cpi), fuel clamped to 150_000. *)
let golden_fuel_capped : golden_row list =
  [
    ("400.perlbench", "vanilla", "array", 251601, 150000, 71930, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("400.perlbench", "safestack", "array", 251601, 150000, 71930, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("400.perlbench", "cps", "array", 258065, 150000, 71930, 3242, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("400.perlbench", "cpi", "array", 261297, 150000, 71930, 3242, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("401.bzip2", "vanilla", "array", 235375, 150000, 67447, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("401.bzip2", "safestack", "array", 235375, 150000, 67447, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("401.bzip2", "cps", "array", 235375, 150000, 67447, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("401.bzip2", "cpi", "array", 235375, 150000, 67447, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("403.gcc", "vanilla", "array", 232968, 150000, 67847, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("403.gcc", "safestack", "array", 232968, 150000, 67847, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("403.gcc", "cps", "array", 234798, 150000, 67847, 915, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("403.gcc", "cpi", "array", 241652, 150000, 67847, 3076, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("429.mcf", "vanilla", "array", 252835, 150000, 72343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("429.mcf", "safestack", "array", 252835, 150000, 72343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("429.mcf", "cps", "array", 252835, 150000, 72343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("429.mcf", "cpi", "array", 252835, 150000, 72343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("433.milc", "vanilla", "array", 252002, 150000, 59999, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("433.milc", "safestack", "array", 252006, 150000, 59999, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("433.milc", "cps", "array", 252006, 150000, 59999, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("433.milc", "cpi", "array", 252006, 150000, 59999, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("444.namd", "vanilla", "array", 243450, 150000, 77731, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("444.namd", "safestack", "array", 233691, 150000, 77731, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("444.namd", "cps", "array", 233691, 150000, 77731, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("444.namd", "cpi", "array", 233691, 150000, 77731, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("445.gobmk", "vanilla", "array", 223008, 150000, 70473, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("445.gobmk", "safestack", "array", 223008, 150000, 70473, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("445.gobmk", "cps", "array", 223008, 150000, 70473, 3, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("445.gobmk", "cpi", "array", 223008, 150000, 70473, 3, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("447.dealII", "vanilla", "array", 257021, 150000, 70604, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("447.dealII", "safestack", "array", 257021, 150000, 70604, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("447.dealII", "cps", "array", 263181, 150000, 70604, 3084, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("447.dealII", "cpi", "array", 267173, 150000, 70604, 3388, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("450.soplex", "vanilla", "array", 238142, 150000, 65837, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("450.soplex", "safestack", "array", 238142, 150000, 65837, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("450.soplex", "cps", "array", 238270, 150000, 65837, 64, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("450.soplex", "cpi", "array", 238334, 150000, 65837, 64, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("453.povray", "vanilla", "array", 232318, 150000, 76861, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("453.povray", "safestack", "array", 232318, 150000, 76861, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("453.povray", "cps", "array", 233200, 150000, 76861, 445, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("453.povray", "cpi", "array", 236380, 150000, 76861, 1358, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("456.hmmer", "vanilla", "array", 255314, 150000, 66742, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("456.hmmer", "safestack", "array", 255314, 150000, 66742, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("456.hmmer", "cps", "array", 255314, 150000, 66742, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("456.hmmer", "cpi", "array", 255314, 150000, 66742, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("458.sjeng", "vanilla", "array", 214547, 150000, 61971, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("458.sjeng", "safestack", "array", 215119, 150000, 61971, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("458.sjeng", "cps", "array", 215119, 150000, 61971, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("458.sjeng", "cpi", "array", 215119, 150000, 61971, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("462.libquantum", "vanilla", "array", 223384, 150000, 73343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("462.libquantum", "safestack", "array", 223384, 150000, 73343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("462.libquantum", "cps", "array", 223384, 150000, 73343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("462.libquantum", "cpi", "array", 223384, 150000, 73343, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("464.h264ref", "vanilla", "array", 260003, 150000, 63332, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("464.h264ref", "safestack", "array", 260003, 150000, 63332, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("464.h264ref", "cps", "array", 260003, 150000, 63332, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("464.h264ref", "cpi", "array", 260003, 150000, 63332, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("470.lbm", "vanilla", "array", 217690, 150000, 67685, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("470.lbm", "safestack", "array", 217690, 150000, 67685, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("470.lbm", "cps", "array", 217690, 150000, 67685, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("470.lbm", "cpi", "array", 217690, 150000, 67685, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("471.omnetpp", "vanilla", "array", 247965, 150000, 77070, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("471.omnetpp", "safestack", "array", 247965, 150000, 77070, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("471.omnetpp", "cps", "array", 253275, 150000, 77070, 2176, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("471.omnetpp", "cpi", "array", 289926, 150000, 77070, 14150, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("473.astar", "vanilla", "array", 235393, 150000, 67895, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("473.astar", "safestack", "array", 235393, 150000, 67895, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("473.astar", "cps", "array", 235393, 150000, 67895, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("473.astar", "cpi", "array", 235393, 150000, 67895, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("482.sphinx3", "vanilla", "array", 256743, 150000, 61882, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("482.sphinx3", "safestack", "array", 256743, 150000, 61882, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("482.sphinx3", "cps", "array", 256743, 150000, 61882, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("482.sphinx3", "cpi", "array", 256743, 150000, 61882, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("483.xalancbmk", "vanilla", "array", 266266, 150000, 72222, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("483.xalancbmk", "safestack", "array", 266266, 150000, 72222, 0, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("483.xalancbmk", "cps", "array", 270832, 150000, 72222, 2287, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
    ("483.xalancbmk", "cpi", "array", 303538, 150000, 72222, 10424, 0, "d41d8cd98f00b204e9800998ecf8427e", "fuel exhausted");
  ]

(* Full default fuel: every run exits cleanly, so these rows also pin the
   complete program output (via MD5) and final checksum. *)
let golden_full_fuel : golden_row list =
  [
    ("483.xalancbmk", "vanilla", "array", 1024860, 576665, 278311, 0, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "safestack", "array", 1024860, 576665, 278311, 0, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cps", "array", 1042914, 576665, 278311, 9031, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cpi", "array", 1169278, 576665, 278311, 40472, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("git", "vanilla", "array", 3155190, 2195895, 929173, 0, 194268, "61adda0deb7e25d738f927696135f478", "exit(0)");
    ("git", "safestack", "array", 3155190, 2195895, 929173, 0, 194268, "61adda0deb7e25d738f927696135f478", "exit(0)");
    ("git", "cps", "array", 3155190, 2195895, 929173, 0, 194268, "61adda0deb7e25d738f927696135f478", "exit(0)");
    ("git", "cpi", "array", 3155190, 2195895, 929173, 0, 194268, "61adda0deb7e25d738f927696135f478", "exit(0)");
    ("sqlite", "vanilla", "array", 4988272, 2955436, 1398163, 0, 12159354, "4b58051e4711eafaeb74563a4adea5fa", "exit(0)");
    ("sqlite", "safestack", "array", 4988272, 2955436, 1398163, 0, 12159354, "4b58051e4711eafaeb74563a4adea5fa", "exit(0)");
    ("sqlite", "cps", "array", 4988272, 2955436, 1398163, 0, 12159354, "4b58051e4711eafaeb74563a4adea5fa", "exit(0)");
    ("sqlite", "cpi", "array", 4988272, 2955436, 1398163, 0, 12159354, "4b58051e4711eafaeb74563a4adea5fa", "exit(0)");
    ("403.gcc", "vanilla", "array", 5126956, 3281377, 1478496, 0, 14539704, "ebaf418a550bb837df92b7b04fa8af6d", "exit(0)");
    ("403.gcc", "safestack", "array", 5126956, 3281377, 1478496, 0, 14539704, "ebaf418a550bb837df92b7b04fa8af6d", "exit(0)");
    ("403.gcc", "cps", "array", 5177056, 3281377, 1478496, 25050, 14539704, "ebaf418a550bb837df92b7b04fa8af6d", "exit(0)");
    ("403.gcc", "cpi", "array", 5365043, 3281377, 1478496, 84489, 14539704, "ebaf418a550bb837df92b7b04fa8af6d", "exit(0)");
    ("web-static", "vanilla", "array", 3027758, 1430468, 607950, 0, 16685065, "21bd0b686c57d1db88153adf99818d4a", "exit(0)");
    ("web-static", "safestack", "array", 3027758, 1430468, 607950, 0, 16685065, "21bd0b686c57d1db88153adf99818d4a", "exit(0)");
    ("web-static", "cps", "array", 3059758, 1430468, 607950, 16004, 16685065, "21bd0b686c57d1db88153adf99818d4a", "exit(0)");
    ("web-static", "cpi", "array", 3456072, 1430468, 607950, 396318, 16685065, "21bd0b686c57d1db88153adf99818d4a", "exit(0)");
    ("400.perlbench", "vanilla", "array", 6455080, 3719740, 1936935, 0, 79151099, "46b7aad30305a5d0fe02bc87b8b27ad1", "exit(0)");
    ("400.perlbench", "safestack", "array", 6455080, 3719740, 1936935, 0, 79151099, "46b7aad30305a5d0fe02bc87b8b27ad1", "exit(0)");
    ("400.perlbench", "cps", "array", 6680680, 3719740, 1936935, 112810, 79151099, "46b7aad30305a5d0fe02bc87b8b27ad1", "exit(0)");
    ("400.perlbench", "cpi", "array", 6793480, 3719740, 1936935, 112810, 79151099, "46b7aad30305a5d0fe02bc87b8b27ad1", "exit(0)");
  ]

(* Other protections and safe-store organisations over two workloads. *)
let golden_extended : golden_row list =
  [
    ("483.xalancbmk", "softbound", "array", 2054882, 576665, 278311, 157804, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cfi", "array", 1051941, 576665, 278311, 0, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cookies", "array", 1024860, 576665, 278311, 0, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "dep+aslr+cookies", "array", 1024860, 576665, 278311, 0, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cpi-debug", "array", 1173170, 576665, 278311, 40472, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cpi", "two-level", 1250214, 576665, 278311, 40472, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cpi", "hashtable", 1412086, 576665, 278311, 40472, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("483.xalancbmk", "cpi", "mpx", 1128810, 576665, 278311, 40472, 314730, "44b9758e76739563fe116a0188ea5a53", "exit(0)");
    ("400.perlbench", "softbound", "array", 10667350, 3719740, 1936935, 112810, 79151099, "46b7aad30305a5d0fe02bc87b8b27ad1", "exit(0)");
    ("400.perlbench", "cpi-debug", "array", 6793480, 3719740, 1936935, 112810, 79151099, "46b7aad30305a5d0fe02bc87b8b27ad1", "exit(0)");
  ]

let run_row ?fuel ?(sched_seed = 0) name prot impl : golden_row =
  let w =
    match
      List.find_opt
        (fun (w : W.Workload.t) -> w.W.Workload.name = name)
        (W.Spec.all @ W.Phoronix.all @ W.Webstack.all
        @ [ W.Webstack.concurrent ~threads:2;
            W.Webstack.concurrent ~threads:4 ])
    with
    | Some w -> w
    | None -> Alcotest.failf "unknown workload %s" name
  in
  let b = P.build ~store_impl:impl prot (W.Workload.compile w) in
  let fuel = match fuel with Some f -> f | None -> w.W.Workload.fuel in
  let r =
    M.Interp.run_program ~input:w.W.Workload.input ~fuel ~sched_seed b.P.prog
      b.P.config
  in
  ( name, P.protection_name prot, M.Safestore.impl_name impl,
    r.M.Interp.cycles, r.M.Interp.instrs, r.M.Interp.mem_ops,
    r.M.Interp.store_accesses, r.M.Interp.checksum,
    Digest.to_hex (Digest.string r.M.Interp.output),
    M.Trap.outcome_to_string r.M.Interp.outcome )

let row_to_string
    (name, prot, store, cycles, instrs, mem_ops, accesses, ck, md5, outcome) =
  Printf.sprintf "%s/%s/%s cycles=%d instrs=%d mem=%d store=%d ck=%d md5=%s %s"
    name prot store cycles instrs mem_ops accesses ck md5 outcome

(* Set LEVEE_GOLDEN_DUMP=1 to print the freshly measured rows as OCaml
   literals instead of checking them, for re-capturing the tables after a
   sanctioned cost-model or instrumentation change. Review the diff before
   committing: output MD5s, checksums and outcomes should only move when
   the change is supposed to alter program behaviour. *)
let check_rows what expected actual =
  if Sys.getenv_opt "LEVEE_GOLDEN_DUMP" <> None then begin
    Printf.printf "(* %s *)\n" what;
    List.iter
      (fun (name, prot, store, cycles, instrs, mem_ops, accesses, ck, md5,
            outcome) ->
        Printf.printf "    (%S, %S, %S, %d, %d, %d, %d, %d, %S, %S);\n" name
          prot store cycles instrs mem_ops accesses ck md5 outcome)
      actual
  end
  else
    Alcotest.(check (list string)) what
      (List.map row_to_string expected)
      (List.map row_to_string actual)

let t1_protections = [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi ]

let test_golden_fuel_capped () =
  let actual =
    List.concat_map
      (fun (w : W.Workload.t) ->
        List.map
          (fun p ->
            run_row ~fuel:150_000 w.W.Workload.name p M.Safestore.Simple_array)
          t1_protections)
      W.Spec.all
  in
  check_rows "fuel-capped golden rows" golden_fuel_capped actual

let test_golden_full_fuel () =
  let actual =
    List.concat_map
      (fun name ->
        List.map (fun p -> run_row name p M.Safestore.Simple_array)
          t1_protections)
      [ "483.xalancbmk"; "git"; "sqlite"; "403.gcc"; "web-static";
        "400.perlbench" ]
  in
  check_rows "full-fuel golden rows" golden_full_fuel actual

(* Concurrent web workload, deterministic scheduler seed 3: pins the
   multithreaded machine — preemption points, context-switch charges,
   blocking mutex/join retries — across thread counts and safe-store
   organisations. Checksums must match the single-threaded drain (the
   workload is commutative), so only cycles/instrs may differ per store. *)
let golden_concurrent : golden_row list =
  [
    ("web-conc-t2", "vanilla", "array", 484943, 262983, 115263, 0, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t2", "cpi", "array", 492143, 262983, 115263, 2404, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t2", "cpi", "two-level", 496943, 262983, 115263, 2404, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t2", "cpi", "hashtable", 506543, 262983, 115263, 2404, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t4", "vanilla", "array", 489782, 263140, 115311, 0, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t4", "cpi", "array", 496982, 263140, 115311, 2404, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t4", "cpi", "two-level", 501782, 263140, 115311, 2404, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
    ("web-conc-t4", "cpi", "hashtable", 511382, 263140, 115311, 2404, 2855742, "39df63e3ec81bb9a2c2e7bb169188a33", "exit(0)");
  ]

let conc_cells =
  [ ("web-conc-t2", P.Vanilla, M.Safestore.Simple_array);
    ("web-conc-t2", P.Cpi, M.Safestore.Simple_array);
    ("web-conc-t2", P.Cpi, M.Safestore.Two_level);
    ("web-conc-t2", P.Cpi, M.Safestore.Hashtable);
    ("web-conc-t4", P.Vanilla, M.Safestore.Simple_array);
    ("web-conc-t4", P.Cpi, M.Safestore.Simple_array);
    ("web-conc-t4", P.Cpi, M.Safestore.Two_level);
    ("web-conc-t4", P.Cpi, M.Safestore.Hashtable) ]

let test_golden_concurrent () =
  let actual =
    List.map
      (fun (name, prot, impl) -> run_row ~sched_seed:3 name prot impl)
      conc_cells
  in
  check_rows "concurrent golden rows" golden_concurrent actual

let test_golden_extended () =
  let actual =
    List.map
      (fun prot -> run_row "483.xalancbmk" prot M.Safestore.Simple_array)
      [ P.Softbound; P.Cfi; P.Cookies; P.Hardened; P.Cpi_debug ]
    @ List.map
        (fun impl -> run_row "483.xalancbmk" P.Cpi impl)
        [ M.Safestore.Two_level; M.Safestore.Hashtable; M.Safestore.Mpx ]
    @ List.map
        (fun prot -> run_row "400.perlbench" prot M.Safestore.Simple_array)
        [ P.Softbound; P.Cpi_debug ]
  in
  check_rows "extended golden rows" golden_extended actual

(* ---------- Run-store determinism ----------

   The run-store's whole value rests on records being deterministic
   bytes: the same run appended under any --jobs width must produce
   byte-identical JSONL lines (wall_us is the one nondeterministic
   field; zero_wall drops it, and `levee conc` records it as 0), and
   the `levee history` renderings are pinned so the @history-smoke
   byte-compares and any downstream tooling can rely on them. *)

module RS = Levee_support.Runstore

let test_record_bytes_jobs () =
  let line jobs =
    RS.to_line
      (Journal.to_record ~kind:"bench" ~commit:"golden" ~zero_wall:true
         (run_table1 ~jobs))
  in
  let l1 = line 1 in
  Alcotest.(check string) "jobs=1 vs jobs=4: byte-identical record" l1 (line 4);
  Alcotest.(check string) "jobs=1 rerun: byte-identical record" l1 (line 1)

let hist_a =
  RS.make ~schema:"levee-bench-journal/4" ~kind:"bench" ~commit:"aaaa111"
    ~config:"table1" ~seed:0 ~wall_us:0
    [ ("cells", RS.Int 30); ("cycles", RS.Int 1000000);
      ("checks_elided", RS.Int 420); ("races", RS.Int 0);
      ("cells_per_sec", RS.Float 197.4) ]

let hist_b =
  RS.make ~schema:"levee-bench-journal/4" ~kind:"bench" ~commit:"bbbb222"
    ~config:"table1" ~seed:0 ~wall_us:0
    [ ("cells", RS.Int 30); ("cycles", RS.Int 1100000);
      ("checks_elided", RS.Int 400); ("races", RS.Int 0);
      ("cells_per_sec", RS.Float 212.9) ]

let test_golden_record_line () =
  Alcotest.(check string) "record line pinned"
    "{\"v\":\"levee-history/1\",\"schema\":\"levee-bench-journal/4\",\
     \"kind\":\"bench\",\"commit\":\"aaaa111\",\"config\":\"table1\",\
     \"seed\":0,\"wall_us\":0,\"metrics\":{\"cells\":30,\
     \"cycles\":1000000,\"checks_elided\":420,\"races\":0,\
     \"cells_per_sec\":197.4}}"
    (RS.to_line hist_a)

let test_golden_diff_human () =
  Alcotest.(check string) "diff table pinned"
    "a: bench/table1 seed 0 commit aaaa111 (levee-bench-journal/4)\n\
     b: bench/table1 seed 0 commit bbbb222 (levee-bench-journal/4)\n\
    \  field                               a              b      delta\n\
    \  wall_us                             0              0      +0.0%\n\
    \  cells                              30             30      +0.0%\n\
    \  cycles                        1000000        1100000     +10.0%\n\
    \  checks_elided                     420            400      -4.8%\n\
    \  races                               0              0      +0.0%\n\
    \  cells_per_sec                   197.4          212.9      +7.9%\n"
    (RS.diff_human hist_a hist_b)

let test_golden_gate_human () =
  Alcotest.(check string) "gate failure verdict pinned"
    "gate: FAIL\n\
    \  cycles: 1000000 -> 1100000 (+10.0% exceeds tolerance 5.0%)\n"
    (RS.gate_human (RS.gate hist_a hist_b));
  Alcotest.(check string) "gate pass verdict pinned"
    "gate: OK (all gated deltas within tolerance)\n"
    (RS.gate_human (RS.gate hist_a hist_a))

let () =
  Alcotest.run "determinism"
    [ ( "table1",
        [ Alcotest.test_case "jobs 1 vs 4, run twice" `Quick test_determinism;
          Alcotest.test_case "journal disk round trip" `Quick
            test_journal_disk_roundtrip ] );
      ( "golden",
        [ Alcotest.test_case "fuel-capped SPEC matrix" `Quick
            test_golden_fuel_capped;
          Alcotest.test_case "full-fuel exits" `Quick test_golden_full_fuel;
          Alcotest.test_case "extended protections and stores" `Quick
            test_golden_extended;
          Alcotest.test_case "concurrent machine" `Quick
            test_golden_concurrent ] );
      ( "history",
        [ Alcotest.test_case "record bytes across --jobs" `Quick
            test_record_bytes_jobs;
          Alcotest.test_case "record line pinned" `Quick
            test_golden_record_line;
          Alcotest.test_case "diff rendering pinned" `Quick
            test_golden_diff_human;
          Alcotest.test_case "gate rendering pinned" `Quick
            test_golden_gate_human ] ) ]
