(* Development scratch: Phoronix-like + webstack overhead shapes. *)
module P = Levee_core.Pipeline
module W = Levee_workloads
module I = Levee_machine.Interp
module T = Levee_machine.Trap

let () =
  (* Positional args select workloads by name (the runtest wiring runs a
     cheap subset); no args = the full suite. *)
  let requested = List.tl (Array.to_list Sys.argv) in
  let selected =
    if requested = [] then (W.Phoronix.all @ W.Webstack.all)
    else
      List.filter
        (fun (w : W.Workload.t) -> List.mem w.W.Workload.name requested)
        (W.Phoronix.all @ W.Webstack.all)
  in
  (if requested <> [] && List.length selected <> List.length requested then begin
     prerr_endline "unknown workload name among arguments";
     exit 2
   end);
  let any_fail = ref false in
  let protections = [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi ] in
  List.iter
    (fun (w : W.Workload.t) ->
      let results = List.map (fun p -> (p, W.Workload.run ~protection:p w)) protections in
      let base = List.assoc P.Vanilla results in
      let ok =
        List.for_all
          (fun (_, (r : I.result)) ->
            r.I.checksum = base.I.checksum
            && (match r.I.outcome with T.Exit 0 -> true | _ -> false))
          results
      in
      if not ok then any_fail := true;
      Printf.printf "%-16s %s base=%-9d " w.W.Workload.name (if ok then "OK  " else "FAIL") base.I.cycles;
      List.iter
        (fun (p, (r : I.result)) ->
          if p <> P.Vanilla then
            Printf.printf "%s=%+.1f%% " (P.protection_name p)
              (Levee_support.Stats.overhead_pct ~base:base.I.cycles ~instrumented:r.I.cycles))
        results;
      (match base.I.outcome with T.Exit 0 -> () | o -> Printf.printf " [%s]" (T.outcome_to_string o));
      print_newline ())
    selected;
  if !any_fail then exit 1
