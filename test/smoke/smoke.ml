(* Quick end-to-end exercise of compile -> instrument -> run, used while
   developing; the real suites live in ../ *)

let src = {|
struct node { int value; struct node *next; int (*handler)(int); };

int double_it(int x) { return x * 2; }
int triple_it(int x) { return x * 3; }

int sum_list(struct node *head) {
  int total = 0;
  while (head != 0) {
    total = total + head->handler(head->value);
    head = head->next;
  }
  return total;
}

int main() {
  struct node *a;
  struct node *b;
  int i;
  int acc = 0;
  char buf[8];
  a = (struct node*) malloc(sizeof(struct node));
  b = (struct node*) malloc(sizeof(struct node));
  a->value = 10; a->handler = double_it; a->next = b;
  b->value = 7; b->handler = triple_it; b->next = 0;
  for (i = 0; i < 3; i = i + 1) { acc = acc + sum_list(a); }
  strcpy(buf, "ok");
  print_str(buf);
  print_int(acc);
  checksum(acc);
  return acc == 123 ? 0 : 1;
}
|}

let () =
  let prog = Levee_minic.Lower.compile ~name:"smoke" src in
  let failed = ref false in
  List.iter
    (fun prot ->
      let built = Levee_core.Pipeline.build prot prog in
      let res =
        Levee_machine.Interp.run_program built.Levee_core.Pipeline.prog
          built.Levee_core.Pipeline.config
      in
      (match res.Levee_machine.Interp.outcome with
       | Levee_machine.Trap.Exit 0 -> ()
       | _ -> failed := true);
      Printf.printf "%-18s outcome=%-12s cycles=%-8d instrs=%-7d memops=%d/%d out=%s\n"
        (Levee_core.Pipeline.protection_name prot)
        (Levee_machine.Trap.outcome_to_string res.Levee_machine.Interp.outcome)
        res.Levee_machine.Interp.cycles res.Levee_machine.Interp.instrs
        res.Levee_machine.Interp.instrumented_mem_ops res.Levee_machine.Interp.mem_ops
        (String.concat "|" (String.split_on_char '\n' res.Levee_machine.Interp.output)))
    Levee_core.Pipeline.all_protections;
  if !failed then exit 1
