(* Development scratch: run the full RIPE-style matrix and print it. *)

module P = Levee_core.Pipeline
module R = Levee_attacks.Ripe
module A = Levee_attacks.Attack
module M = Levee_machine

let () =
  let verbose = Array.length Sys.argv > 1 && Sys.argv.(1) = "-v" in
  let summaries = R.run_matrix ~include_beyond_ripe:true () in
  List.iter
    (fun (s : R.summary) ->
      Printf.printf "%-18s total=%-3d hijacked=%-3d (stack:%d) trapped=%-3d crashed=%-3d\n"
        (P.protection_name s.R.protection) s.R.total s.R.hijacked s.R.stack_hijacked
        s.R.trapped_count s.R.crashed;
      if verbose then
        List.iter
          (fun (r : R.run) ->
            Printf.printf "    %-28s %-16s -> %s\n"
              r.R.instance.R.victim.Levee_attacks.Victims.vid
              (A.payload_name r.R.instance.R.payload)
              (M.Trap.outcome_to_string r.R.outcome))
          s.R.runs)
    summaries;
  (* Invariants from the paper's Section 5.1 that must never regress:
     the unprotected build is hijackable, the safe stack stops every
     stack-based attack, and CPI/SoftBound stop everything. (CPS is
     exempt here: the beyond-RIPE relaxation demo is included.) *)
  let find p =
    List.find (fun (s : R.summary) -> s.R.protection = p) summaries
  in
  let violations = ref [] in
  let check name ok = if not ok then violations := name :: !violations in
  check "vanilla must be hijackable" ((find P.Vanilla).R.hijacked > 0);
  check "safestack must stop stack attacks"
    ((find P.Safe_stack).R.stack_hijacked = 0);
  check "cpi must stop everything" ((find P.Cpi).R.hijacked = 0);
  check "softbound must stop everything" ((find P.Softbound).R.hijacked = 0);
  if !violations <> [] then begin
    List.iter (fun v -> print_endline ("ripe_smoke: FAILED: " ^ v))
      (List.rev !violations);
    exit 1
  end
