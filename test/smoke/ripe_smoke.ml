(* Development scratch: run the full RIPE-style matrix and print it. *)

module P = Levee_core.Pipeline
module R = Levee_attacks.Ripe
module A = Levee_attacks.Attack
module M = Levee_machine

let () =
  let summaries = R.run_matrix ~include_beyond_ripe:true () in
  List.iter
    (fun (s : R.summary) ->
      Printf.printf "%-18s total=%-3d hijacked=%-3d (stack:%d) trapped=%-3d crashed=%-3d\n"
        (P.protection_name s.R.protection) s.R.total s.R.hijacked s.R.stack_hijacked
        s.R.trapped_count s.R.crashed;
      if Array.length Sys.argv > 1 then
        List.iter
          (fun (r : R.run) ->
            Printf.printf "    %-28s %-16s -> %s\n"
              r.R.instance.R.victim.Levee_attacks.Victims.vid
              (A.payload_name r.R.instance.R.payload)
              (M.Trap.outcome_to_string r.R.outcome))
          s.R.runs)
    summaries
