(* Development scratch: run all SPEC-like workloads under every protection
   and check checksum equality + print overheads. *)

module P = Levee_core.Pipeline
module W = Levee_workloads
module I = Levee_machine.Interp
module T = Levee_machine.Trap

let () =
  let protections = [ P.Vanilla; P.Safe_stack; P.Cps; P.Cpi; P.Softbound ] in
  List.iter
    (fun (w : W.Workload.t) ->
      let results =
        List.map (fun p -> (p, W.Workload.run ~protection:p w)) protections
      in
      let base = List.assoc P.Vanilla results in
      let ok =
        List.for_all
          (fun (_, (r : I.result)) ->
            r.I.checksum = base.I.checksum
            && (match r.I.outcome with T.Exit 0 -> true | _ -> false))
          results
      in
      Printf.printf "%-16s %s base=%-9d " w.W.Workload.name
        (if ok then "OK  " else "FAIL")
        base.I.cycles;
      List.iter
        (fun (p, (r : I.result)) ->
          if p <> P.Vanilla then
            Printf.printf "%s=%+.1f%% "
              (P.protection_name p)
              (Levee_support.Stats.overhead_pct ~base:base.I.cycles
                 ~instrumented:r.I.cycles))
        results;
      (match base.I.outcome with
       | T.Exit 0 -> ()
       | o -> Printf.printf " [base outcome: %s]" (T.outcome_to_string o));
      print_newline ())
    W.Spec.all
