(* Development scratch: classic return-address smash via gets(). *)

module P = Levee_core.Pipeline
module M = Levee_machine

let src = {|
int helper() { return 1; }
int backdoor() { system("pwned"); return 0; }

int vuln() {
  char buf[4];
  gets(buf);
  return buf[0];
}

int main() {
  helper();
  vuln();
  print_str("done");
  return 0;
}
|}

let () =
  let prog = Levee_minic.Lower.compile ~name:"smash" src in
  let failed = ref false in
  List.iter
    (fun prot ->
      let built = P.build prot prog in
      let image = M.Loader.load built.P.prog built.P.config in
      (* Attacker knowledge: layout of vuln's frame in the unprotected
         build (no ASLR adjustment -> hardened config should crash). *)
      let layout = Hashtbl.find image.M.Loader.layouts "vuln" in
      let vuln_fn = Levee_ir.Prog.find_func built.P.prog "vuln" in
      let buf_reg =
        let r = ref (-1) in
        Levee_ir.Prog.iter_instrs vuln_fn (fun i ->
            match i with
            | Levee_ir.Instr.Alloca { dst; ty = Levee_ir.Ty.Arr _; _ } -> r := dst
            | _ -> ());
        !r
      in
      let slot = Hashtbl.find layout.M.Loader.fl_slots buf_reg in
      (* distance from buf[0] up to the return slot *)
      let dist = slot.M.Loader.sl_offset - layout.M.Loader.fl_ret_offset in
      (* attacker targets backdoor's entry in the NON-ASLR image *)
      let plain_image =
        M.Loader.load built.P.prog { built.P.config with M.Config.aslr = false }
      in
      let target = M.Loader.entry_addr plain_image "backdoor" in
      let payload = Array.make (dist + 1) 0x41 in
      payload.(dist) <- target;
      let res = M.Interp.run ~input:payload image in
      (* The smash must succeed on the unprotected build and be stopped
         (trap or harmless exit, never a hijack) by every other one. *)
      (match prot, res.M.Interp.outcome with
       | P.Vanilla, M.Trap.Hijacked _ -> ()
       | P.Vanilla, _ -> failed := true
       | _, M.Trap.Hijacked _ -> failed := true
       | _, _ -> ());
      Printf.printf "%-18s dist=%d -> %s\n" (P.protection_name prot) dist
        (M.Trap.outcome_to_string res.M.Interp.outcome))
    P.all_protections;
  if !failed then begin
    print_endline "smash: protection expectation violated";
    exit 1
  end
