(* Unit tests for the one-entry direct-mapped page caches that front the
   paged memory and the array/two-level safe-store backends.

   The caches are pure host-side accelerators: they must never change what
   a read returns, never make an unmapped read allocate a page, and must
   be invalidated by [clear] / [reset]. The tests drive exactly the access
   patterns the cache could get wrong: hit-after-miss, interleaving across
   page boundaries (each access evicts the other page's cache line), and
   reuse of a cleared store. *)

module M = Levee_machine

(* Mem.page_words is private to mem.ml; 1 lsl 12 mirrors its page size.
   Two addresses this far apart are guaranteed to live on distinct
   pages whatever the (power-of-two) page size below 1 lsl 12. *)
let page_words = 1 lsl 12

(* ---------- Mem ---------- *)

let test_mem_hit_after_miss () =
  let m = M.Mem.create () in
  let a = 0x0100_0000 in
  M.Mem.write m a 42;
  Alcotest.(check int) "read back (cached)" 42 (M.Mem.read m a);
  Alcotest.(check int) "neighbour on same page" 0 (M.Mem.read m (a + 1));
  M.Mem.write m (a + 1) 7;
  Alcotest.(check int) "second write same page" 7 (M.Mem.read m (a + 1));
  Alcotest.(check int) "first value survives" 42 (M.Mem.read m a)

let test_mem_unmapped_reads_free () =
  let m = M.Mem.create () in
  Alcotest.(check int) "unmapped reads as 0" 0 (M.Mem.read m 0x0200_0000);
  Alcotest.(check int) "no page allocated by a read" 0
    (M.Mem.footprint_words m);
  (* A read miss must not populate the cache with a phantom page either:
     the next write to the same page has to allocate for real. *)
  M.Mem.write m 0x0200_0000 1;
  Alcotest.(check int) "write after read-miss allocates one page" page_words
    (M.Mem.footprint_words m);
  Alcotest.(check int) "and the value sticks" 1 (M.Mem.read m 0x0200_0000)

let test_mem_cross_page_interleaving () =
  let m = M.Mem.create () in
  let a = 0x0100_0000 and b = 0x0100_0000 + (4 * page_words) in
  (* Alternate between two pages so every access evicts the other page
     from the one-entry cache; values must never leak across. *)
  for i = 0 to 63 do
    M.Mem.write m (a + i) (1000 + i);
    M.Mem.write m (b + i) (2000 + i)
  done;
  for i = 0 to 63 do
    Alcotest.(check int) "page A value" (1000 + i) (M.Mem.read m (a + i));
    Alcotest.(check int) "page B value" (2000 + i) (M.Mem.read m (b + i))
  done

let test_mem_clear_invalidates () =
  let m = M.Mem.create () in
  let a = 0x0100_0000 in
  M.Mem.write m a 42;
  Alcotest.(check int) "cached read" 42 (M.Mem.read m a);
  M.Mem.clear m;
  (* A stale cache line here would return 42 from the dropped page. *)
  Alcotest.(check int) "cleared memory reads 0" 0 (M.Mem.read m a);
  Alcotest.(check int) "clear drops the footprint" 0 (M.Mem.footprint_words m);
  M.Mem.write m a 9;
  Alcotest.(check int) "memory is reusable after clear" 9 (M.Mem.read m a)

(* ---------- Safestore ---------- *)

let impls =
  [ M.Safestore.Simple_array; M.Safestore.Two_level; M.Safestore.Hashtable;
    M.Safestore.Mpx ]

let entry v =
  { M.Safestore.value = v; lower = v; upper = v + 8; tid = 0;
    kind = M.Safestore.Data }

let check_entry what expected actual =
  match (expected, actual) with
  | None, None -> ()
  | Some v, Some e -> Alcotest.(check int) what v e.M.Safestore.value
  | Some _, None -> Alcotest.failf "%s: expected an entry, got None" what
  | None, Some e ->
    Alcotest.failf "%s: expected None, got value %d" what e.M.Safestore.value

let each_impl f =
  List.iter (fun impl -> f (M.Safestore.impl_name impl) impl) impls

let test_store_set_get_clear () =
  each_impl (fun name impl ->
      let s = M.Safestore.create impl in
      let a = 0x0100_0000 in
      M.Safestore.set s a (entry 11);
      check_entry (name ^ ": get after set") (Some 11) (M.Safestore.get s a);
      check_entry (name ^ ": cached re-get") (Some 11) (M.Safestore.get s a);
      M.Safestore.clear_at s a;
      check_entry (name ^ ": get after clear_at") None (M.Safestore.get s a);
      check_entry (name ^ ": empty neighbour") None
        (M.Safestore.get s (a + 1)))

let test_store_cross_page_interleaving () =
  each_impl (fun name impl ->
      let s = M.Safestore.create impl in
      let a = 0x0100_0000 and b = 0x0100_0000 + (4 * page_words) in
      for i = 0 to 31 do
        M.Safestore.set s (a + i) (entry (1000 + i));
        M.Safestore.set s (b + i) (entry (2000 + i))
      done;
      for i = 0 to 31 do
        check_entry (name ^ ": page A entry") (Some (1000 + i))
          (M.Safestore.get s (a + i));
        check_entry (name ^ ": page B entry") (Some (2000 + i))
          (M.Safestore.get s (b + i))
      done)

let test_store_reset_invalidates () =
  each_impl (fun name impl ->
      let s = M.Safestore.create impl in
      let a = 0x0100_0000 in
      M.Safestore.set s a (entry 11);
      check_entry (name ^ ": populated") (Some 11) (M.Safestore.get s a);
      M.Safestore.reset s;
      Alcotest.(check int)
        (name ^ ": reset zeroes the access counter")
        0 (M.Safestore.access_count s);
      check_entry (name ^ ": reset drops entries") None (M.Safestore.get s a);
      Alcotest.(check int)
        (name ^ ": reset drops live entries")
        0 (M.Safestore.entry_count s);
      (* A stale backend page cache after reset would resurrect the old
         entry or write through to a dropped leaf. *)
      M.Safestore.set s a (entry 21);
      check_entry (name ^ ": store is reusable after reset") (Some 21)
        (M.Safestore.get s a))

let test_store_get_miss_allocates_nothing () =
  each_impl (fun name impl ->
      let s = M.Safestore.create impl in
      let base = M.Safestore.footprint_words s in
      check_entry (name ^ ": miss on empty store") None
        (M.Safestore.get s 0x0300_0000);
      Alcotest.(check int)
        (name ^ ": read miss does not grow the footprint")
        base
        (M.Safestore.footprint_words s))

let () =
  Alcotest.run "pagecache"
    [ ( "mem",
        [ Alcotest.test_case "hit after miss" `Quick test_mem_hit_after_miss;
          Alcotest.test_case "unmapped reads allocate nothing" `Quick
            test_mem_unmapped_reads_free;
          Alcotest.test_case "cross-page interleaving" `Quick
            test_mem_cross_page_interleaving;
          Alcotest.test_case "clear invalidates the cache" `Quick
            test_mem_clear_invalidates ] );
      ( "safestore",
        [ Alcotest.test_case "set/get/clear_at" `Quick
            test_store_set_get_clear;
          Alcotest.test_case "cross-page interleaving" `Quick
            test_store_cross_page_interleaving;
          Alcotest.test_case "reset invalidates the cache" `Quick
            test_store_reset_invalidates;
          Alcotest.test_case "get miss allocates nothing" `Quick
            test_store_get_miss_allocates_nothing ] ) ]
