(* Unit tests for the Andersen points-to analysis and the sensitivity
   refinement built on it: constraint facts on small programs, positive
   and negative demotion examples, and a differential soundness check
   (refined builds behave exactly like unrefined ones). *)

module I = Levee_ir.Instr
module Ty = Levee_ir.Ty
module Prog = Levee_ir.Prog
module An = Levee_analysis
module Pt = Levee_analysis.Pointsto
module P = Levee_core.Pipeline
module M = Levee_machine

let t name f = Alcotest.test_case name `Quick f

let analyze src =
  let prog = Levee_minic.Lower.compile src in
  (prog, Pt.analyze prog)

(* ---------- constraint facts ---------- *)

let test_address_constants () =
  let _, pt =
    analyze {|int g; int f(int x) { return x; } int main() { return 0; }|}
  in
  Alcotest.(check (list string)) "global address" [ "global:g" ]
    (List.map Pt.obj_to_string (Pt.points_to pt ~fname:"main" (I.Glob "g")));
  Alcotest.(check bool) "function constant is code" true
    (Pt.value_may_be_code pt ~fname:"main" (I.Fun "f"));
  Alcotest.(check bool) "global address is not code" false
    (Pt.value_may_be_code pt ~fname:"main" (I.Glob "g"));
  Alcotest.(check bool) "null is not code" false
    (Pt.value_may_be_code pt ~fname:"main" I.Nullp);
  Alcotest.(check bool) "immediate is not code" false
    (Pt.value_may_be_code pt ~fname:"main" (I.Imm 42))

let test_reaches_code_globals () =
  let _, pt =
    analyze
      {|int f(int x) { return x; }
        int (*table[2])(int) = { f, f };
        int nums[4];
        int main() { return table[0](1) + nums[0]; }|}
  in
  Alcotest.(check bool) "fn-ptr table reaches code" true
    (Pt.reaches_code pt (Pt.O_global "table"));
  Alcotest.(check bool) "int array does not" false
    (Pt.reaches_code pt (Pt.O_global "nums"));
  Alcotest.(check bool) "table address may reach code" true
    (Pt.addr_may_reach_code pt ~fname:"main" (I.Glob "table"));
  Alcotest.(check bool) "unknown objects answer true" true
    (Pt.reaches_code pt Pt.O_unknown)

let test_store_propagates () =
  (* storing a function pointer into a global cell makes that cell reach
     code, and a load from it yields a may-be-code value *)
  let prog, pt =
    analyze
      {|int f(int x) { return x + 1; }
        int (*slot)(int);
        int main() { slot = f; return slot(2); }|}
  in
  Alcotest.(check bool) "slot reaches code after store" true
    (Pt.reaches_code pt (Pt.O_global "slot"));
  (* find the register loaded from slot in main and check its value *)
  let fn = Prog.find_func prog "main" in
  let found = ref false in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Load { dst; addr = I.Glob "slot"; _ } ->
        found := true;
        Alcotest.(check bool) "loaded value may be code" true
          (Pt.value_may_be_code pt ~fname:"main" (I.Reg dst))
      | _ -> ());
  Alcotest.(check bool) "program loads slot" true !found

let test_interprocedural_flow () =
  (* a function pointer passed through a direct call and stored via the
     callee's parameter must taint the caller's object *)
  let _, pt =
    analyze
      {|int f(int x) { return x; }
        int (*cell)(int);
        void put(int (*h)(int)) { cell = h; }
        int main() { put(f); return cell(3); }|}
  in
  Alcotest.(check bool) "callee store taints caller-visible cell" true
    (Pt.reaches_code pt (Pt.O_global "cell"))

let test_malloc_site_objects () =
  let prog, pt =
    analyze
      {|struct box { int v; };
        int main() {
          struct box *b = (struct box*) malloc(sizeof(struct box));
          b->v = 7;
          return b->v;
        }|}
  in
  let fn = Prog.find_func prog "main" in
  let saw_malloc_obj = ref false in
  Prog.iter_instrs fn (fun i ->
      match i with
      | I.Store { addr = I.Reg r; ty = Ty.Ptr _; _ }
      | I.Load { addr = I.Reg r; ty = Ty.Ptr _; _ } ->
        List.iter
          (function Pt.O_malloc _ -> saw_malloc_obj := true | _ -> ())
          (Pt.points_to pt ~fname:"main" (I.Reg r))
      | _ -> ());
  (* the alloca holding b points somewhere; the loaded b points to the
     malloc site — at least one queried register must resolve to it *)
  let any_reg_hits_malloc = ref false in
  for r = 0 to fn.Prog.nregs - 1 do
    List.iter
      (function Pt.O_malloc _ -> any_reg_hits_malloc := true | _ -> ())
      (Pt.points_to pt ~fname:"main" (I.Reg r))
  done;
  Alcotest.(check bool) "some register points to the malloc site" true
    !any_reg_hits_malloc

(* ---------- refinement: what demotes and what must not ---------- *)

let demoted src =
  let prog = Levee_minic.Lower.compile src in
  let b = P.build P.Cpi prog in
  b.P.stats.Levee_core.Stats.mem_ops_demoted

(* void* handles that are only stored, compared and freed: provably
   data-only, the paradigm demotion case (examples/minic/opaque.c) *)
let opaque_src =
  {|void *cache0; void *cache1;
    int hit; int miss;
    int lookup(void *h) {
      if (cache0 == h) { return 1; }
      if (cache1 == h) { return 1; }
      return 0;
    }
    int main() {
      void *a = malloc(4);
      void *b = malloc(4);
      cache0 = a;
      cache1 = b;
      hit = lookup(a);
      miss = lookup(b);
      free(a);
      free(b);
      print_int(hit + miss + 2);
      return 0;
    }|}

let test_refine_demotes_opaque_handles () =
  Alcotest.(check bool) "data-only void* accesses demoted" true
    (demoted opaque_src > 0)

let test_refine_keeps_function_pointers () =
  (* a dispatched function pointer reaches code: zero demotion allowed *)
  let n =
    demoted
      {|int inc(int x) { return x + 1; }
        int (*cb)(int);
        int main() { cb = inc; return cb(1) - 2; }|}
  in
  Alcotest.(check int) "fn-ptr cell never demoted" 0 n

let test_refine_keeps_laundered_void () =
  (* a void* that transports a code pointer must stay instrumented *)
  let n =
    demoted
      {|int inc(int x) { return x + 1; }
        void *sneak;
        int main() {
          sneak = (int*) 0;
          sneak = (char*) inc;
          int (*g)(int) = (int (*)(int)) sneak;
          return g(1) - 2;
        }|}
  in
  Alcotest.(check int) "code-carrying void* never demoted" 0 n

(* ---------- soundness: refinement is invisible to execution ---------- *)

let run_build b = M.Interp.run_program ~fuel:2_000_000 b.P.prog b.P.config

let same_behaviour src prot =
  let prog = Levee_minic.Lower.compile src in
  let on = run_build (P.build ~refine:true prot prog) in
  let off = run_build (P.build ~refine:false prot prog) in
  on.M.Interp.outcome = off.M.Interp.outcome
  && on.M.Interp.checksum = off.M.Interp.checksum
  && on.M.Interp.output = off.M.Interp.output

let test_refine_soundness () =
  List.iter
    (fun src ->
      Alcotest.(check bool) "cpi refine on/off identical" true
        (same_behaviour src P.Cpi);
      Alcotest.(check bool) "cps refine on/off identical" true
        (same_behaviour src P.Cps))
    [ opaque_src;
      {|int inc(int x) { return x + 1; }
        int (*cb)(int);
        int main() { cb = inc; print_int(cb(1)); return 0; }|};
      {|struct node { int v; void *next; };
        struct node *head;
        int main() {
          struct node *n = (struct node*) malloc(sizeof(struct node));
          n->v = 5; n->next = (void*) head; head = n;
          print_int(head->v);
          return 0;
        }|} ]

let () =
  Alcotest.run "pointsto"
    [ ("facts",
       [ t "address constants" test_address_constants;
         t "reaches_code on globals" test_reaches_code_globals;
         t "store propagates code" test_store_propagates;
         t "interprocedural via params" test_interprocedural_flow;
         t "malloc site objects" test_malloc_site_objects ]);
      ("refinement",
       [ t "demotes opaque handles" test_refine_demotes_opaque_handles;
         t "keeps function pointers" test_refine_keeps_function_pointers;
         t "keeps laundered void*" test_refine_keeps_laundered_void ]);
      ("soundness",
       [ t "refine on/off behaviourally identical" test_refine_soundness ]) ]
