(* Run-store tests: encode/decode round-trips for every record schema
   the producers append (journal/4, perf/2, faults/2 and the generic
   history/1 envelope) over Rng-seeded field values, precise rejection
   of malformed/truncated JSONL, the append/load file contract, run
   selection, the regression gate, and the one canonical float
   formatter every JSON dialect shares. *)

module R = Levee_support.Rng
module RS = Levee_support.Runstore
module J = Levee_support.Jsonenc
module Journal = Levee_support.Journal

(* ---------- generators ---------- *)

(* Strings stress the escaper: quotes, backslashes, newlines, tabs,
   control characters. *)
let string_alphabet =
  [| 'a'; 'b'; 'z'; 'Q'; '7'; '_'; '-'; '.'; '/'; ' '; '"'; '\\'; '\n';
     '\t'; '\x01'; '\x1f' |]

let rand_string rng =
  let n = R.int rng 12 in
  String.init n (fun _ -> R.pick rng string_alphabet)

let rand_int rng = R.range rng (-5) 10_000_000

(* One-decimal floats survive the %.1f dialect bit-for-bit. *)
let rand_float rng = float_of_int (R.range rng (-5000) 1_000_000) /. 10.0

let journal_fields =
  [ "cells"; "failures"; "cycles"; "instrs"; "mem_ops";
    "instrumented_mem_ops"; "store_accesses"; "checks_elided";
    "mem_ops_demoted"; "ctx_switches"; "races"; "checksum" ]

let perf_int_fields =
  [ "fuel_cap"; "cells"; "cells_wall_us"; "ripe_wall_us"; "sim_cycles";
    "sim_instrs"; "checks_elided"; "mem_ops_demoted" ]

let faults_fields =
  [ "runs"; "hijacked"; "trapped"; "crash"; "masked"; "benign";
    "fuel_exhausted"; "hijacked_vanilla"; "hijacked_cfi";
    "hijacked_cfi_type"; "hijacked_cpi"; "hijacked_cpi_crypt"; "cycles";
    "invariants_ok" ]

let gen_journal rng =
  RS.make ~schema:"levee-bench-journal/4" ~kind:"bench"
    ~commit:(rand_string rng) ~config:(rand_string rng)
    ~seed:(R.range rng (-3) 1000) ~wall_us:(R.int rng 1_000_000)
    (List.map (fun k -> (k, RS.Int (rand_int rng))) journal_fields)

let gen_perf rng =
  RS.make ~schema:"levee-bench-perf/3" ~kind:"perf"
    ~commit:(rand_string rng) ~config:"perf" ~wall_us:(R.int rng 1_000_000)
    (List.map (fun k -> (k, RS.Int (rand_int rng))) perf_int_fields
    @ [ ("cells_per_sec", RS.Float (rand_float rng)) ])

let gen_faults rng =
  RS.make ~schema:"levee-faults/3" ~kind:"faults" ~commit:(rand_string rng)
    ~config:(rand_string rng) ~seed:(R.int rng 10_000) ~wall_us:0
    (List.map (fun k -> (k, RS.Int (rand_int rng))) faults_fields)

(* The open envelope: arbitrary metric names and mixed value types,
   the shape future producers (p-latency histograms, ...) will use. *)
let gen_history rng =
  let n = 1 + R.int rng 8 in
  let metrics =
    List.init n (fun i ->
        let name = Printf.sprintf "%s_%d" (rand_string rng) i in
        let v =
          match R.int rng 3 with
          | 0 -> RS.Int (rand_int rng)
          | 1 -> RS.Float (rand_float rng)
          | _ -> RS.Str (rand_string rng)
        in
        (name, v))
  in
  RS.make ~schema:"levee-history/1" ~kind:(rand_string rng)
    ~commit:(rand_string rng) ~config:(rand_string rng)
    ~seed:(R.range rng (-100) 100_000) ~wall_us:(R.int rng 1_000_000)
    metrics

let has_float r =
  List.exists (fun (_, v) -> match v with RS.Float _ -> true | _ -> false)
    r.RS.metrics

(* ---------- round trips ---------- *)

let check_roundtrip what r =
  let line = RS.to_line r in
  match RS.of_line line with
  | Error e -> Alcotest.failf "%s: of_line rejected its own bytes: %s" what e
  | Ok r' ->
    Alcotest.(check string) (what ^ ": re-encoded line") line (RS.to_line r');
    Alcotest.(check bool) (what ^ ": key preserved") true (RS.key r = RS.key r');
    (* One-decimal floats are exact in both directions, so the decoded
       record is structurally identical, not just byte-identical. *)
    Alcotest.(check bool) (what ^ ": record preserved") true (r = r');
    ignore (has_float r)

let test_roundtrip_all_schemas () =
  List.iter
    (fun seed ->
      let rng = R.create seed in
      check_roundtrip "journal/4" (gen_journal rng);
      check_roundtrip "perf/2" (gen_perf rng);
      check_roundtrip "faults/2" (gen_faults rng);
      check_roundtrip "history/1" (gen_history rng))
    (List.init 50 (fun i -> 1000 + (i * 7)))

(* ---------- malformed input ---------- *)

let expect_error what line =
  match RS.of_line line with
  | Ok _ -> Alcotest.failf "%s: expected rejection, got Ok" what
  | Error msg ->
    Alcotest.(check bool)
      (what ^ ": error message is non-empty") true
      (String.length msg > 0)

let test_truncated_rejected () =
  let rng = R.create 99 in
  let r = gen_journal rng in
  let line = RS.to_line r in
  (* Every proper prefix is a truncated record: a precise Error, never
     an exception, never a bogus Ok. *)
  List.iter
    (fun cut ->
      expect_error
        (Printf.sprintf "truncated at %d" cut)
        (String.sub line 0 cut))
    [ 1; String.length line / 4; String.length line / 2;
      String.length line - 1 ]

let test_malformed_rejected () =
  let good = RS.to_line (gen_perf (R.create 7)) in
  expect_error "empty line is no record" "{}";
  expect_error "trailing garbage" (good ^ "}");
  expect_error "not JSON" "truncated{";
  expect_error "array, not object" "[1,2,3]";
  (* wrong envelope version: parseable JSON, still rejected *)
  (match
     RS.of_line
       "{\"v\":\"levee-history/0\",\"schema\":\"x\",\"kind\":\"k\",\
        \"commit\":\"c\",\"config\":\"g\",\"seed\":0,\"wall_us\":0,\
        \"metrics\":{}}"
   with
   | Ok _ -> Alcotest.fail "unknown version accepted"
   | Error msg ->
     Alcotest.(check bool) "version named in error" true
       (String.length msg > 0
       && String.sub msg 0 7 = "unknown"));
  expect_error "metrics must be an object"
    "{\"v\":\"levee-history/1\",\"schema\":\"x\",\"kind\":\"k\",\
     \"commit\":\"c\",\"config\":\"g\",\"seed\":0,\"wall_us\":0,\
     \"metrics\":[1]}";
  expect_error "missing seed"
    "{\"v\":\"levee-history/1\",\"schema\":\"x\",\"kind\":\"k\",\
     \"commit\":\"c\",\"config\":\"g\",\"wall_us\":0,\"metrics\":{}}"

(* ---------- the file contract ---------- *)

let with_store f =
  let path = Filename.temp_file "runstore" ".jsonl" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let test_append_load () =
  with_store (fun path ->
      Sys.remove path;
      (match RS.load ~path () with
       | Error _ -> ()
       | Ok _ -> Alcotest.fail "missing store should be an error");
      let rng = R.create 5 in
      let r1 = gen_journal rng and r2 = gen_faults rng in
      RS.append ~path r1;
      RS.append ~path r2;
      match RS.load ~path () with
      | Error e -> Alcotest.failf "load failed: %s" e
      | Ok rs ->
        Alcotest.(check bool) "append order preserved" true (rs = [ r1; r2 ]))

let test_load_reports_bad_line () =
  with_store (fun path ->
      let rng = R.create 6 in
      RS.append ~path (gen_journal rng);
      RS.append ~path (gen_perf rng);
      let oc = open_out_gen [ Open_append ] 0o644 path in
      output_string oc "{\"v\":\"levee-history/1\",\"schema\":\"trunc";
      close_out oc;
      match RS.load ~path () with
      | Ok _ -> Alcotest.fail "corrupt tail line accepted"
      | Error msg ->
        let expected = Printf.sprintf "%s:3:" path in
        Alcotest.(check bool)
          (Printf.sprintf "error pinpoints line 3 (%s)" msg)
          true
          (String.length msg >= String.length expected
          && String.sub msg 0 (String.length expected) = expected))

let test_find_specs () =
  let rng = R.create 8 in
  let mk config seed =
    RS.make ~schema:"s/1" ~kind:"k" ~commit:"c" ~config ~seed
      [ ("cycles", RS.Int (rand_int rng)) ]
  in
  let rs = [ mk "alpha" 0; mk "beta" 1; mk "alpha" 2 ] in
  let get spec =
    match RS.find rs spec with
    | Ok r -> r
    | Error e -> Alcotest.failf "find %s: %s" spec e
  in
  Alcotest.(check int) "index 1" 1 (get "1").RS.seed;
  Alcotest.(check int) "negative index" 2 (get "-1").RS.seed;
  Alcotest.(check int) "last" 2 (get "last").RS.seed;
  Alcotest.(check int) "prev" 1 (get "prev").RS.seed;
  Alcotest.(check int) "config picks most recent" 2 (get "alpha").RS.seed;
  (match RS.find rs "7" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "out-of-range index accepted");
  (match RS.find rs "nosuch" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unknown config accepted")

(* ---------- the regression gate ---------- *)

let rec_with_cycles ?(wall = 0) cycles =
  RS.make ~schema:"levee-bench-journal/4" ~kind:"bench" ~commit:"c"
    ~config:"g" ~wall_us:wall
    [ ("cycles", RS.Int cycles); ("races", RS.Int 0) ]

let test_gate_flags_cycle_regression () =
  (* 10% > the 5% default tolerance: the gate must fire and must name
     the offending field. *)
  let vs = RS.gate (rec_with_cycles 1000) (rec_with_cycles 1100) in
  (match vs with
   | [ v ] ->
     Alcotest.(check string) "offending field named" "cycles" v.RS.vfield;
     Alcotest.(check bool) "tolerance carried" true (v.RS.vtol = 5.0);
     Alcotest.(check bool) "delta is +10%" true (abs_float (v.RS.vpct -. 10.0) < 1e-9)
   | vs -> Alcotest.failf "expected exactly one violation, got %d" (List.length vs));
  let human = RS.gate_human vs in
  Alcotest.(check bool) "human verdict says FAIL + field" true
    (String.length human >= 10
    && String.sub human 0 10 = "gate: FAIL"
    && String.length human
       > (match String.index_opt human '\n' with Some i -> i | None -> 0))

let test_gate_within_tolerance_passes () =
  Alcotest.(check bool) "3% cycle delta passes" true
    (RS.gate (rec_with_cycles 1000) (rec_with_cycles 1030) = []);
  Alcotest.(check bool) "improvements beyond tolerance still flagged" true
    (RS.gate (rec_with_cycles 1000) (rec_with_cycles 500) <> []);
  Alcotest.(check bool) "zero-to-zero wall passes" true
    (RS.gate (rec_with_cycles ~wall:0 1000) (rec_with_cycles ~wall:0 1000) = [])

let test_gate_wall_clock () =
  let vs =
    RS.gate (rec_with_cycles ~wall:1000 100) (rec_with_cycles ~wall:2000 100)
  in
  (match vs with
   | [ v ] -> Alcotest.(check string) "wall_us gated" "wall_us" v.RS.vfield
   | _ -> Alcotest.fail "expected one wall_us violation");
  Alcotest.(check bool) "49% wall delta within default 50%" true
    (RS.gate (rec_with_cycles ~wall:1000 100) (rec_with_cycles ~wall:1490 100)
    = [])

let test_gate_tolerance_override () =
  let a = rec_with_cycles 1000 and b = rec_with_cycles 2000 in
  Alcotest.(check bool) "default tolerance fires" true (RS.gate a b <> []);
  (* blessing an intentional regression: a first-match override *)
  let tolerances = ("cycles", 200.0) :: RS.default_tolerances in
  Alcotest.(check bool) "blessed by --tol override" true
    (RS.gate ~tolerances a b = []);
  (* ungated fields never fire, whatever the delta *)
  let big_races =
    RS.make ~schema:"s/1" ~kind:"k" ~commit:"c" ~config:"g"
      [ ("cycles", RS.Int 1000); ("races", RS.Int 999) ]
  in
  Alcotest.(check bool) "races not gated by default" true
    (RS.gate (rec_with_cycles 1000) big_races = [])

(* ---------- journal projection ---------- *)

let entry workload cycles wall : Journal.entry =
  { Journal.workload; protection = "cpi"; store = "array";
    outcome = "exit(0)"; status = 0; cycles; instrs = 2 * cycles;
    mem_ops = 3; instrumented_mem_ops = 1; store_accesses = 4;
    store_footprint = 5; heap_peak = 6; checksum = 7; checks_elided = 8;
    mem_ops_demoted = 9; threads = 1; ctx_switches = 0; races = 0;
    attempts = 1; wall_us = wall }

let test_journal_to_record () =
  let j = Journal.create ~jobs:2 ~target:"table1" () in
  Journal.record j (entry "a" 100 7);
  Journal.record j (entry "b" 250 9);
  let r = Journal.to_record ~kind:"bench" ~commit:"c0" j in
  Alcotest.(check string) "config is the target" "table1" r.RS.config;
  Alcotest.(check bool) "cells" true
    (List.assoc "cells" r.RS.metrics = RS.Int 2);
  Alcotest.(check bool) "cycles summed" true
    (List.assoc "cycles" r.RS.metrics = RS.Int 350);
  Alcotest.(check bool) "checks_elided summed" true
    (List.assoc "checks_elided" r.RS.metrics = RS.Int 16);
  Alcotest.(check int) "wall summed" 16 r.RS.wall_us;
  let z = Journal.to_record ~kind:"bench" ~commit:"c0" ~zero_wall:true j in
  Alcotest.(check int) "zero_wall drops wall" 0 z.RS.wall_us;
  Alcotest.(check bool) "zero_wall is the only difference" true
    (RS.to_line { z with RS.wall_us = 16 } = RS.to_line r)

(* ---------- the float dialect ---------- *)

let test_float_str_pinned () =
  let check expected v =
    Alcotest.(check string)
      (Printf.sprintf "float_str %h" v)
      expected (J.float_str v)
  in
  check "0.0" 0.0;
  check "0.0" (-0.0);                 (* negative zero normalized *)
  check "0.0" nan;                    (* non-finite collapses *)
  check "0.0" infinity;
  check "0.0" neg_infinity;
  check "-2.4" (-2.4);
  check "-12.5" (-12.5);
  check "197.4" 197.4;
  check "1000000000000000.0" 1e15;    (* large, still fixed-point *)
  check "-1000000000000000.0" (-1e15);
  Alcotest.(check string) "float1 combinator uses the dialect"
    "\"cells_per_sec\":197.4"
    (J.float1 "cells_per_sec" 197.4)

let test_float_roundtrip_seeded () =
  List.iter
    (fun seed ->
      let rng = R.create seed in
      for _ = 1 to 200 do
        let f = rand_float rng in
        let s = J.float_str f in
        Alcotest.(check string)
          (Printf.sprintf "re-parse of %s is stable" s)
          s
          (J.float_str (float_of_string s))
      done)
    [ 11; 12; 13 ]

let () =
  Alcotest.run "runstore"
    [ ( "roundtrip",
        [ Alcotest.test_case "all record schemas, 50 seeds" `Quick
            test_roundtrip_all_schemas ] );
      ( "malformed",
        [ Alcotest.test_case "truncated lines rejected" `Quick
            test_truncated_rejected;
          Alcotest.test_case "malformed lines rejected" `Quick
            test_malformed_rejected;
          Alcotest.test_case "load pinpoints the bad line" `Quick
            test_load_reports_bad_line ] );
      ( "store",
        [ Alcotest.test_case "append/load order" `Quick test_append_load;
          Alcotest.test_case "run specs" `Quick test_find_specs ] );
      ( "gate",
        [ Alcotest.test_case "cycle regression flagged" `Quick
            test_gate_flags_cycle_regression;
          Alcotest.test_case "within tolerance passes" `Quick
            test_gate_within_tolerance_passes;
          Alcotest.test_case "wall-clock gated at 50%" `Quick
            test_gate_wall_clock;
          Alcotest.test_case "tolerance overrides / ungated fields" `Quick
            test_gate_tolerance_override ] );
      ( "journal",
        [ Alcotest.test_case "aggregate projection" `Quick
            test_journal_to_record ] );
      ( "floats",
        [ Alcotest.test_case "pinned dialect" `Quick test_float_str_pinned;
          Alcotest.test_case "seeded stability" `Quick
            test_float_roundtrip_seeded ] ) ]
